// Command tracegen synthesizes public-WLAN traffic traces matching the
// statistics the paper measures in §2 (Fig. 1): concurrent downlink
// requests, downlink traffic dominance, and the short-frame-heavy size
// distribution. With -series it also dumps the per-second active-STA count
// (Fig. 1a) and the frame-size CDF (Fig. 1b).
//
// Usage:
//
//	tracegen [-series]
package main

import (
	"flag"
	"fmt"
	"os"

	"carpool/internal/experiments"
	"carpool/internal/stats"
	"carpool/internal/traffic"
)

func main() {
	series := flag.Bool("series", false, "also dump the Fig. 1a time series and Fig. 1b CDF")
	flag.Parse()

	experiments.PrintFig1(os.Stdout)

	if !*series {
		return
	}
	tr := traffic.GenerateTrace(traffic.LibraryTraceConfig())
	fmt.Println("\nFig. 1a — active STAs per second (library trace)")
	for sec, n := range tr.ActiveSTAs {
		if sec%10 == 0 {
			fmt.Printf("t=%3ds active=%d\n", sec, n)
		}
	}
	fmt.Println("\nFig. 1b — downlink frame size CDF (library trace)")
	sizes := make([]float64, len(tr.Downlink))
	for i, a := range tr.Downlink {
		sizes[i] = float64(a.Size)
	}
	cdf := stats.NewCDF(sizes)
	for _, b := range []float64{100, 200, 300, 500, 800, 1000, 1500, 2000} {
		fmt.Printf("size<=%4.0fB: %.3f\n", b, cdf.At(b))
	}
}
