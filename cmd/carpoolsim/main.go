// Command carpoolsim runs the trace-driven MAC evaluation of §7.2: the VoIP
// sweep (Fig. 15), the background-traffic sweep (Fig. 16), and the latency
// and frame-size studies (Fig. 17a/b). It first collects PHY decode traces
// for the office locations — the expensive offline step — then replays them
// through the CSMA/CA simulator for every protocol.
//
// Usage:
//
//	carpoolsim [-scale quick|full] [-fig 15|16|17a|17b|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"carpool/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	figFlag := flag.String("fig", "all", "figure to run: 15, 16, 17a, 17b, or all")
	cacheFlag := flag.String("cache", "", "optional path to cache the PHY decode traces (gob)")
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory")
	flag.Parse()

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "carpoolsim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "carpoolsim: collecting PHY decode traces...")
	lab, err := experiments.NewMACLabWithCache(scale, *cacheFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "carpoolsim: %v\n", err)
		os.Exit(1)
	}

	run := func(name string, fn func() error) {
		if *figFlag != "all" && *figFlag != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "carpoolsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("15", func() error { return lab.PrintFig15(w) })
	run("16", func() error { return lab.PrintFig16(w) })
	run("17a", func() error { return lab.PrintFig17a(w) })
	run("17b", func() error { return lab.PrintFig17b(w) })

	if *csvDir != "" {
		if err := lab.ExportMACCSVs(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "carpoolsim: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "carpoolsim: CSVs written to %s\n", *csvDir)
	}
}
