// Command carpoolsim runs the trace-driven MAC evaluation of §7.2: the VoIP
// sweep (Fig. 15), the background-traffic sweep (Fig. 16), and the latency
// and frame-size studies (Fig. 17a/b). It first collects PHY decode traces
// for the office locations — the expensive offline step — then replays them
// through the CSMA/CA simulator for every protocol.
//
// Usage:
//
//	carpoolsim [-scale quick|full] [-fig 15|16|17a|17b|all]
//	           [-debug-addr host:port] [-trace file.json]
//
// -debug-addr serves live introspection (expvar registry snapshot at
// /debug/vars and /debug/metrics, pprof at /debug/pprof/) while the run is
// in flight. -trace records PHY/MAC events and writes them as Chrome
// trace_event JSON on exit. Either flag enables observation, which also
// makes -csv emit a *.metrics.json sidecar per figure.
package main

import (
	"flag"
	"fmt"
	"os"

	"carpool/internal/experiments"
	"carpool/internal/obs"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	figFlag := flag.String("fig", "all", "figure to run: 15, 16, 17a, 17b, or all")
	cacheFlag := flag.String("cache", "", "optional path to cache the PHY decode traces (gob)")
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (enables observation)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (enables observation)")
	flag.Parse()

	if *debugAddr != "" || *traceOut != "" {
		sink := obs.NewDefaultSink(0)
		obs.Enable(sink)
		if *debugAddr != "" {
			ds, err := obs.StartDebugServer(*debugAddr, obs.Default)
			if err != nil {
				fmt.Fprintf(os.Stderr, "carpoolsim: %v\n", err)
				os.Exit(1)
			}
			defer ds.Close()
			fmt.Fprintf(os.Stderr, "carpoolsim: debug endpoints on http://%s/debug/\n", ds.Addr())
		}
		if *traceOut != "" {
			defer func() {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "carpoolsim: trace: %v\n", err)
					return
				}
				defer f.Close()
				if err := sink.Tracer.WriteChromeTrace(f); err != nil {
					fmt.Fprintf(os.Stderr, "carpoolsim: trace: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "carpoolsim: wrote %d trace events to %s (%d dropped)\n",
					sink.Tracer.Len(), *traceOut, sink.Tracer.Dropped())
			}()
		}
	}

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "carpoolsim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "carpoolsim: collecting PHY decode traces...")
	lab, err := experiments.NewMACLabWithCache(scale, *cacheFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "carpoolsim: %v\n", err)
		os.Exit(1)
	}

	run := func(name string, fn func() error) {
		if *figFlag != "all" && *figFlag != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "carpoolsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("15", func() error { return lab.PrintFig15(w) })
	run("16", func() error { return lab.PrintFig16(w) })
	run("17a", func() error { return lab.PrintFig17a(w) })
	run("17b", func() error { return lab.PrintFig17b(w) })

	if *csvDir != "" {
		if err := lab.ExportMACCSVs(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "carpoolsim: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "carpoolsim: CSVs written to %s\n", *csvDir)
	}
}
