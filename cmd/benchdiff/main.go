// Command benchdiff runs the repository's hot-path benchmark suite —
// BenchmarkFFT64, the hard/soft/quantized Viterbi decoders on a 1500-byte
// MPDU, BenchmarkCarpoolFrameReceive, BenchmarkMACSimulationSecond, and
// the real-time engine pair (deterministic second, concurrent
// submit+drain) — parses the `go test -bench` output, and writes the
// results to
// BENCH_<date>.json so successive runs can be diffed.
//
// When a prior BENCH_*.json exists (the newest one in -dir, or the file
// named by -baseline), benchdiff prints per-benchmark deltas in ns/op and
// allocs/op against it. With -fail-over=<pct> it exits non-zero when any
// benchmark regresses by more than pct percent in either column, so CI can
// gate on the disabled-observability overhead staying flat.
//
// Usage:
//
//	benchdiff [-dir repo-root] [-out file.json] [-count n] [-bench regexp]
//	          [-benchtime t] [-baseline file.json] [-fail-over pct]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// suite is the default benchmark set: the size-64 FFT kernel, the Viterbi
// decoders on a full 1500-byte MPDU (hard, float64 soft, the quantized
// int8 fast path, and its 8-lane SWAR gate), one station's whole-frame
// Carpool receive, one simulated second of the MAC, and the real-time
// engine's deterministic second, concurrent submit+drain (per-frame and
// batched), and the batched wire round trip over loopback TCP. The
// observability arm pins what telemetry costs: the deterministic second
// with 1-in-8 lifecycle sampling, a Stats snapshot on a populated engine,
// and one ring-tracer emission. The parallel-submit family drives the
// same fixed workload through 1, 4, and 16 concurrent submitters — the
// sharded-admission scalability gate — and BenchmarkDemapSoftQ64QAM pins
// the vectorized quantized demap kernel on one OFDM symbol. The erasure
// arm gates the GF(256) Reed-Solomon kernels (encode over 4- and
// 16-subframe aggregates, worst-case two-erasure reconstruct) at zero
// allocations per op. The cluster arm covers multi-AP serving: the same
// 10k-frame submit+drain routed across 4 and 16 APs by the lock-free
// STA→AP map, and one Pick/Observe cycle of the learning spatial-reuse
// scheduler.
var suite = []string{
	"BenchmarkFFT64",
	"BenchmarkViterbiDecode1500B",
	"BenchmarkViterbiDecodeSoft1500B",
	"BenchmarkViterbiDecodeSoftQ1500B",
	"BenchmarkViterbiDecodeSoftQ8Lane1500B",
	"BenchmarkCarpoolFrameReceive",
	"BenchmarkMACSimulationSecond",
	"BenchmarkEngineDeterministicSecond",
	"BenchmarkEngineSubmitDrain10k",
	"BenchmarkEngineBatchSubmitDrain10k",
	"BenchmarkWireBatchRoundtrip",
	"BenchmarkEngineDeterministicSampled",
	"BenchmarkEngineStats",
	"BenchmarkTracerEmit",
	"BenchmarkEngineParallelSubmit1Conns",
	"BenchmarkEngineParallelSubmit4Conns",
	"BenchmarkEngineParallelSubmit16Conns",
	"BenchmarkDemapSoftQ64QAM",
	"BenchmarkRSEncode4Sub",
	"BenchmarkRSEncode16Sub",
	"BenchmarkRSReconstruct",
	"BenchmarkClusterSubmitDrain4AP",
	"BenchmarkClusterSubmitDrain16AP",
	"BenchmarkBanditSchedulerStep",
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file layout of BENCH_<date>.json.
type Report struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Bench     string   `json:"bench_regexp"`
	Results   []Result `json:"results"`
}

// benchLine matches the leading fields of go test -bench output, e.g.
//
//	BenchmarkFFT64-8   2599786   458.7 ns/op   0 B/op   0 allocs/op
//
// Extra metrics such as MB/s may appear between ns/op and the -benchmem
// columns, so those are matched separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	bytesCol  = regexp.MustCompile(`(\d+) B/op`)
	allocsCol = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	dir := flag.String("dir", ".", "repository root to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json in -dir)")
	count := flag.Int("count", 1, "benchmark repetitions (-count)")
	bench := flag.String("bench", "^("+strings.Join(suite, "|")+")$", "benchmark regexp (-bench)")
	benchtime := flag.String("benchtime", "", "per-benchmark time or iterations (-benchtime), e.g. 0.3s for a smoke run")
	baseline := flag.String("baseline", "", "prior BENCH_*.json to diff against (default: newest in -dir)")
	failOver := flag.Float64("fail-over", 0, "exit non-zero when ns/op or allocs/op regress by more than this percentage (0 disables gating)")
	flag.Parse()

	report, raw, err := run(*dir, *bench, *count, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n%s", err, raw)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCH_"+time.Now().Format("2006-01-02")+".json")
	}

	prev, prevPath, err := loadBaseline(*dir, *baseline, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	for _, r := range report.Results {
		fmt.Printf("%-32s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))

	if prev == nil {
		if *failOver > 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no prior BENCH_*.json to gate against")
		}
		return
	}
	regressions := printDeltas(report, prev, prevPath, *failOver)
	if *failOver > 0 && regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n",
			regressions, *failOver)
		os.Exit(2)
	}
}

// loadBaseline picks the report to diff against: the explicit -baseline
// file, or the newest BENCH_*.json in dir other than the output path.
// A missing implicit baseline is not an error — first runs have nothing to
// diff against.
func loadBaseline(dir, explicit, outPath string) (*Report, string, error) {
	path := explicit
	if path == "" {
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, "", err
		}
		outAbs, _ := filepath.Abs(outPath)
		sort.Strings(matches) // BENCH_<ISO date>.json sorts chronologically
		for i := len(matches) - 1; i >= 0; i-- {
			abs, _ := filepath.Abs(matches[i])
			if abs != outAbs {
				path = matches[i]
				break
			}
		}
		if path == "" {
			return nil, "", nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("baseline %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, "", fmt.Errorf("baseline %s: %w", path, err)
	}
	return &r, path, nil
}

// printDeltas renders the per-benchmark change against prev and returns how
// many benchmarks regressed beyond failOver percent (in ns/op or allocs/op).
// With failOver <= 0 nothing counts as a regression.
func printDeltas(cur, prev *Report, prevPath string, failOver float64) int {
	prior := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		prior[r.Name] = r
	}
	fmt.Printf("\ndeltas vs %s (%s):\n", prevPath, prev.Date)
	regressions := 0
	for _, r := range cur.Results {
		p, ok := prior[r.Name]
		if !ok {
			fmt.Printf("%-32s (no baseline entry)\n", r.Name)
			continue
		}
		nsPct := pctChange(p.NsPerOp, r.NsPerOp)
		allocPct := pctChange(float64(p.AllocsPerOp), float64(r.AllocsPerOp))
		flag := ""
		if failOver > 0 && (nsPct > failOver || allocPct > failOver) {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-32s %12.1f -> %12.1f ns/op (%+6.1f%%) %6d -> %6d allocs/op (%+6.1f%%)%s\n",
			r.Name, p.NsPerOp, r.NsPerOp, nsPct, p.AllocsPerOp, r.AllocsPerOp, allocPct, flag)
	}
	return regressions
}

// pctChange returns the percent increase from old to cur; a zero baseline
// regresses only if the current value is nonzero.
func pctChange(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - old) / old * 100
}

// run executes the benchmark suite and parses its output.
func run(dir, bench string, count int, benchtime string) (*Report, string, error) {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	rawBytes, err := cmd.CombinedOutput()
	raw := string(rawBytes)
	if err != nil {
		return nil, raw, fmt.Errorf("go test -bench: %w", err)
	}
	report := &Report{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: goVersion(),
		Bench:     bench,
	}
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if b := bytesCol.FindStringSubmatch(line); b != nil {
			r.BytesPerOp, _ = strconv.ParseInt(b[1], 10, 64)
		}
		if a := allocsCol.FindStringSubmatch(line); a != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(a[1], 10, 64)
		}
		report.Results = append(report.Results, r)
	}
	if len(report.Results) == 0 {
		return nil, raw, fmt.Errorf("no benchmark lines in output")
	}
	return report, raw, nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
