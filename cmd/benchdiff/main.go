// Command benchdiff runs the repository's hot-path benchmark suite —
// BenchmarkFFT64, BenchmarkViterbiDecode1500B, BenchmarkCarpoolFrameReceive
// and BenchmarkMACSimulationSecond — parses the `go test -bench` output, and
// writes the results to BENCH_<date>.json so successive runs can be diffed.
//
// Usage:
//
//	benchdiff [-dir repo-root] [-out file.json] [-count n] [-bench regexp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// suite is the default benchmark set: the size-64 FFT kernel, the Viterbi
// decoder on a full 1500-byte MPDU, one station's whole-frame Carpool
// receive, and one simulated second of the MAC.
var suite = []string{
	"BenchmarkFFT64",
	"BenchmarkViterbiDecode1500B",
	"BenchmarkCarpoolFrameReceive",
	"BenchmarkMACSimulationSecond",
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file layout of BENCH_<date>.json.
type Report struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Bench     string   `json:"bench_regexp"`
	Results   []Result `json:"results"`
}

// benchLine matches the leading fields of go test -bench output, e.g.
//
//	BenchmarkFFT64-8   2599786   458.7 ns/op   0 B/op   0 allocs/op
//
// Extra metrics such as MB/s may appear between ns/op and the -benchmem
// columns, so those are matched separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	bytesCol  = regexp.MustCompile(`(\d+) B/op`)
	allocsCol = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	dir := flag.String("dir", ".", "repository root to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json in -dir)")
	count := flag.Int("count", 1, "benchmark repetitions (-count)")
	bench := flag.String("bench", "^("+strings.Join(suite, "|")+")$", "benchmark regexp (-bench)")
	flag.Parse()

	report, raw, err := run(*dir, *bench, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n%s", err, raw)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCH_"+time.Now().Format("2006-01-02")+".json")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	for _, r := range report.Results {
		fmt.Printf("%-32s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
}

// run executes the benchmark suite and parses its output.
func run(dir, bench string, count int) (*Report, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count), ".")
	cmd.Dir = dir
	rawBytes, err := cmd.CombinedOutput()
	raw := string(rawBytes)
	if err != nil {
		return nil, raw, fmt.Errorf("go test -bench: %w", err)
	}
	report := &Report{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: goVersion(),
		Bench:     bench,
	}
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if b := bytesCol.FindStringSubmatch(line); b != nil {
			r.BytesPerOp, _ = strconv.ParseInt(b[1], 10, 64)
		}
		if a := allocsCol.FindStringSubmatch(line); a != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(a[1], 10, 64)
		}
		report.Results = append(report.Results, r)
	}
	if len(report.Results) == 0 {
		return nil, raw, fmt.Errorf("no benchmark lines in output")
	}
	return report, raw, nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
