// Command carpooltop is a top-like live viewer for a running carpoold: it
// opens a telemetry subscription over the wire protocol and redraws the
// engine's vitals on every push — goodput, carpool occupancy, latency
// percentiles, retry and drop rates, a per-station queue table (depth,
// backlog age, backoff, fail streak), the per-stage latency decomposition
// when the server samples frame lifecycles, and the health verdict when
// the server runs a monitor. Against a multi-AP cluster (carpoold -aps)
// the screen adds a per-AP breakdown table between the vitals and the
// station table, fed by the telemetry stream's per_ap records.
//
// Usage:
//
//	carpooltop [-addr host:port] [-interval dur] [-count N] [-raw]
//
// -raw prints one JSON document per update instead of the live screen —
// the scriptable form CI smoke tests consume. -count N exits after N
// updates (0 streams until the server finishes or the connection drops).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"carpool/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9048", "carpoold address")
	interval := flag.Duration("interval", time.Second, "telemetry push interval")
	count := flag.Int("count", 0, "exit after N updates (0 = until the stream ends)")
	raw := flag.Bool("raw", false, "print one JSON document per update instead of the live screen")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(engine.AppendSubscribeRecord(nil, *interval)); err != nil {
		fatalf("subscribe: %v", err)
	}

	br := bufio.NewReader(conn)
	out := bufio.NewWriter(os.Stdout)
	for n := 0; *count == 0 || n < *count; n++ {
		upd, err := engine.ReadTelemetry(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return
			}
			fatalf("telemetry stream: %v", err)
		}
		if *raw {
			doc, _ := json.Marshal(upd)
			fmt.Fprintln(out, string(doc))
		} else {
			render(out, *addr, upd)
		}
		out.Flush()
		if upd.Final {
			return
		}
	}
}

// render redraws the full screen for one update: clear + home, vitals,
// optional stage and health lines, then the per-station table sorted by
// queue depth so the busiest stations lead.
func render(out *bufio.Writer, addr string, upd engine.TelemetryUpdate) {
	st := upd.Stats
	fmt.Fprint(out, "\x1b[2J\x1b[H")
	fmt.Fprintf(out, "carpooltop — %s — update %d", addr, upd.Seq)
	if upd.Final {
		fmt.Fprint(out, " (final)")
	}
	fmt.Fprintln(out)

	rate := func(n int64) float64 {
		if upd.Delta.ElapsedNs <= 0 {
			return 0
		}
		return float64(n) / (float64(upd.Delta.ElapsedNs) / 1e9)
	}
	fmt.Fprintf(out, "goodput  %8.1f Mbit/s wall  %8.1f Mbit/s air   group %5.2f subframes/tx\n",
		st.GoodputMbps, st.AirtimeGoodputMbps, st.MeanGroupSize)
	fmt.Fprintf(out, "frames   %8.0f /s delivered %8.0f /s offered   drop rate %.4f  fairness %.4f\n",
		rate(upd.Delta.Delivered), rate(upd.Delta.Accepted+upd.Delta.Rejected), st.DropRate, st.ByteFairnessIndex)
	fmt.Fprintf(out, "latency  p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms   retries %.0f/s  pending %d\n",
		st.LatencyP50Ms, st.LatencyP95Ms, st.LatencyP99Ms, rate(upd.Delta.Retries), st.Pending)

	if s := upd.Stages; s != nil && s.SampledDelivered > 0 {
		fmt.Fprintf(out, "stages   wait %.3f  backoff %.3f  air %.3f  decode %.3f ms mean (1-in-%d, %d traced)\n",
			s.QueueWait.MeanMs, s.Backoff.MeanMs, s.Air.MeanMs, s.Decode.MeanMs,
			s.SampleEvery, s.SampledDelivered)
	}
	if h := upd.Health; h != nil {
		line := fmt.Sprintf("health   %s", h.Status)
		if len(h.Reasons) > 0 {
			line += ": " + strings.Join(h.Reasons, ", ")
		}
		fmt.Fprintln(out, line)
	}

	// Multi-AP backend (carpoold -aps): one row per AP so a roaming or
	// interference imbalance is visible at a glance, above the
	// cluster-wide station table.
	if len(upd.PerAP) > 1 {
		fmt.Fprintf(out, "\n%4s %10s %12s %10s %9s %8s %9s %9s\n",
			"AP", "DELIVERED", "BYTES", "WALL-Mbps", "AIR-Mbps", "PENDING", "RETRIES", "FAIRNESS")
		for _, ap := range upd.PerAP {
			s := ap.Stats
			fmt.Fprintf(out, "%4d %10d %12d %10.1f %9.1f %8d %9d %9.4f\n",
				ap.AP, s.Delivered, s.DeliveredBytes, s.GoodputMbps, s.AirtimeGoodputMbps,
				s.Pending, s.Retries, s.ByteFairnessIndex)
		}
	}

	rows := append([]engine.STAStat(nil), upd.PerSTA...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Queue > rows[j].Queue })
	fmt.Fprintf(out, "\n%4s %7s %12s %11s %7s %14s\n",
		"STA", "QUEUE", "BACKLOG(ms)", "BACKOFF(ms)", "STREAK", "DELIVERED(B)")
	for _, r := range rows {
		fmt.Fprintf(out, "%4d %7d %12.2f %11.2f %7d %14d\n",
			r.STA, r.Queue, r.BacklogAgeMs, r.BackoffMs, r.FailStreak, r.DeliveredBytes)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "carpooltop: "+format+"\n", args...)
	os.Exit(1)
}
