// Command conform runs the differential conformance suite: every
// fast-path/oracle pair in the codebase, driven through a matrix of
// injected faults, asserting bit-identity or each pair's documented
// divergence bound.
//
// Usage:
//
//	conform [-matrix short|full] [-pairs a,b] [-seed N] [-shrink] [-v]
//	conform -replay 'viterbi-soft|seed=3|cfo(0.004,0.3)'
//	conform -list
//
// Exit status 0 when every check conforms, 1 on any divergence, 2 on
// usage errors. Failures print replayable tokens; -replay re-runs one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"carpool/internal/conform"
	"carpool/internal/faults"
	"carpool/internal/obs"
)

func main() {
	var (
		matrixName = flag.String("matrix", "short", `scenario matrix: "short" (PR gate) or "full" (nightly sweep)`)
		pairNames  = flag.String("pairs", "", "comma-separated pair names to run (default: all)")
		seedShift  = flag.Int64("seed", 0, "offset added to every scenario seed (varies fixture payloads)")
		shrink     = flag.Bool("shrink", true, "minimize failing scenarios before reporting")
		inject     = flag.String("inject", "", `arm a deliberate bug ("llrsign", "gfmul") to validate the harness`)
		replay     = flag.String("replay", "", `re-run one failure token: "<pair>|seed=N|imp(...)|..."`)
		list       = flag.Bool("list", false, "list pairs and impairment kinds, then exit")
		verbose    = flag.Bool("v", false, "log every check")
	)
	flag.Parse()
	os.Exit(run(*matrixName, *pairNames, *seedShift, *shrink, *inject, *replay, *list, *verbose))
}

func run(matrixName, pairNames string, seedShift int64, shrink bool, inject, replay string, list, verbose bool) int {
	if list {
		pairs := conform.Pairs()
		fmt.Printf("differential pairs (%d):\n", len(pairs))
		for _, p := range pairs {
			fmt.Printf("  %-20s %s (bound: %s)\n", p.Name, p.Desc, p.Bound)
		}
		fmt.Printf("impairment kinds: %s\n", strings.Join(faults.Kinds(), ", "))
		fmt.Printf("injectable bugs:  %s, %s\n", conform.BugLLRSign, conform.BugGFMul)
		return 0
	}
	if err := conform.InjectBug(inject); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if replay != "" {
		return runReplay(replay)
	}

	pairs, code := selectPairs(pairNames)
	if code != 0 {
		return code
	}
	matrix, err := conform.MatrixByName(matrixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for i := range matrix {
		matrix[i].Seed += seedShift
	}

	reg := obs.NewRegistry()
	obs.Enable(&obs.Sink{Registry: reg})
	defer obs.Disable()

	opt := conform.Options{Shrink: shrink}
	if verbose {
		opt.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	failures := conform.Run(pairs, matrix, opt)

	snap := reg.Snapshot()
	fmt.Printf("conform: %d pairs x %d scenarios = %d checks, %d divergences\n",
		len(pairs), len(matrix), snap.Counters["conform.checks"], snap.Counters["conform.divergences"])
	if len(failures) == 0 {
		return 0
	}
	for _, f := range failures {
		fmt.Printf("FAIL %-16s %s\n     replay: %q\n", f.Pair, f.ShrunkDetail, f.Replay())
	}
	return 1
}

func selectPairs(names string) ([]conform.Pair, int) {
	if names == "" {
		return conform.Pairs(), 0
	}
	var pairs []conform.Pair
	for _, name := range strings.Split(names, ",") {
		p, ok := conform.PairByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "conform: unknown pair %q (try -list)\n", name)
			return nil, 2
		}
		pairs = append(pairs, p)
	}
	return pairs, 0
}

func runReplay(token string) int {
	pairName, scStr, found := strings.Cut(token, "|")
	if !found {
		fmt.Fprintf(os.Stderr, "conform: replay token %q is not \"<pair>|<scenario>\"\n", token)
		return 2
	}
	p, ok := conform.PairByName(pairName)
	if !ok {
		fmt.Fprintf(os.Stderr, "conform: unknown pair %q (try -list)\n", pairName)
		return 2
	}
	sc, err := faults.ParseScenario(scStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	detail, err := p.Check(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conform: harness error: %v\n", err)
		return 1
	}
	if detail != "" {
		fmt.Printf("FAIL %s under %q: %s\n", p.Name, sc.String(), detail)
		return 1
	}
	fmt.Printf("ok   %s under %q (bound: %s)\n", p.Name, sc.String(), p.Bound)
	return 0
}
