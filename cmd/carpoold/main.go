// Command carpoold runs the real-time AP aggregation engine behind a
// length-prefixed TCP (and optionally UDP) frontend. Clients stream
// frames for stations over the wire protocol in internal/engine/wire.go;
// the engine aggregates them into Carpool transmissions under the A-HDR
// receiver cap, per-STA MCS, and an airtime budget, and delivers through
// either a loss oracle (the fast serving path) or the full TX→channel→RX
// PHY pipeline.
//
// Usage:
//
//	carpoold [-listen host:port] [-udp host:port] [-stas N] [-queue-cap N]
//	         [-max-receivers N] [-agg-bytes N] [-airtime-budget dur]
//	         [-max-latency dur] [-workers N] [-shards N] [-dead-locs 1,3]
//	         [-fec K] [-phy] [-phy-seed N] [-pace] [-debug-addr host:port]
//	         [-slab bytes] [-legacy] [-sample N] [-health-interval dur]
//	         [-aps N] [-channels M] [-interference p] [-interference-seed N]
//
// -aps N serves the station space from an N-AP cluster instead of a
// single engine: stations spread over the APs by rendezvous hashing,
// RecRoam wire records migrate a station's queue (FIFO and backoff
// state intact) between APs live, and stats/telemetry report the
// cluster rollup with a per-AP breakdown (cmd/carpooltop renders it).
// -channels spreads the APs over M radio channels (default min(N, 3)),
// and -interference p couples co-channel APs with a uniform pairwise
// erasure probability — concurrent same-channel transmissions then
// degrade each other, which is what the roaming and coordination
// machinery is for. -aps=1 is exactly the bare engine.
//
// -fec K switches the engine to StrategyFEC: every aggregate carries K
// erasure-coded parity subframes (XOR for K=1, Reed-Solomon over GF(256)
// beyond), and a receiver that loses its own subframe rebuilds it from
// the shards it overheard instead of waiting for a retransmission. Works
// with both the oracle transports and -phy (where parity travels as real
// subframes addressed to reserved parity slots). The engine counts the
// machinery under engine.fec.{parity_tx,recovered,decode_fail}.
//
// -sample N traces every Nth admitted frame through its lifecycle,
// exporting per-stage latency histograms (queue wait, backoff, air,
// decode) and span events; clients read the decomposition with a
// RecStageStats request or a telemetry subscription. With -debug-addr the
// daemon also runs a rolling-window health monitor (retry storms, queue
// saturation, fairness collapse, goodput stalls) served as JSON on
// /debug/health — HTTP 200 while ok or degraded, 503 when unhealthy.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new submissions are
// rejected, queued frames finish (or exhaust retries), and the final
// stats print to stderr. A second signal aborts immediately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"carpool/internal/cluster"
	"carpool/internal/engine"
	"carpool/internal/mac"
	"carpool/internal/obs"
	"carpool/internal/phy"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9048", "TCP listen address")
	udp := flag.String("udp", "", "optional UDP listen address")
	stas := flag.Int("stas", 8, "number of stations served")
	queueCap := flag.Int("queue-cap", 300, "per-STA queue capacity (frames)")
	maxRecv := flag.Int("max-receivers", 0, "receivers per transmission (0 = A-HDR capacity)")
	aggBytes := flag.Int("agg-bytes", 0, "aggregate payload ceiling in bytes (0 = 64 KiB, or the 4095 B PLCP limit with -phy)")
	airtime := flag.Duration("airtime-budget", 0, "per-transmission airtime budget (0 = unlimited)")
	maxLatency := flag.Duration("max-latency", 0, "queue expiry bound (0 = none)")
	workers := flag.Int("workers", 0, "delivery workers (0 = 1)")
	shards := flag.Int("shards", 0, "admission lanes hashing the stations (0 = GOMAXPROCS-derived)")
	deadLocs := flag.String("dead-locs", "", "comma-separated station indexes whose subframes always fail (loss model)")
	fecK := flag.Int("fec", 0, "parity subframes per aggregate (StrategyFEC; 0 = shared-fate retry)")
	usePHY := flag.Bool("phy", false, "deliver through the full PHY pipeline instead of the oracle")
	phySeed := flag.Int64("phy-seed", 1, "PHY transport impairment seed")
	pace := flag.Bool("pace", false, "pace workers by computed airtime")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (enables observation)")
	slabSize := flag.Int("slab", 0, "TCP read-slab size in bytes for batched ingest (0 = 256 KiB)")
	legacy := flag.Bool("legacy", false, "serve with the unbatched per-record read loop (reference arm)")
	sample := flag.Int("sample", 0, "trace every Nth admitted frame through its lifecycle (0 = off)")
	healthEvery := flag.Duration("health-interval", 500*time.Millisecond, "health detector sampling interval")
	aps := flag.Int("aps", 1, "serve from a cluster of this many APs (1 = bare engine)")
	channels := flag.Int("channels", 0, "radio channels the APs spread over (0 = min(aps, 3))")
	interference := flag.Float64("interference", 0, "uniform pairwise co-channel erasure probability (0 = off)")
	interfSeed := flag.Int64("interference-seed", 1, "interference erasure draw seed")
	flag.Parse()

	var health *engine.HealthMonitor
	if *debugAddr != "" {
		obs.Enable(obs.NewDefaultSink(0))
		health = engine.NewHealthMonitor(engine.HealthConfig{
			Capacity: int64(*stas) * int64(*queueCap),
		})
		ds, err := obs.StartDebugServer(*debugAddr, obs.Default,
			obs.DebugHandler{Pattern: "/debug/health", Handler: health.Handler()})
		if err != nil {
			fatalf("debug server: %v", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "carpoold: debug endpoints on http://%s/debug/\n", ds.Addr())
	}

	cfg := engine.Config{
		NumSTAs:         *stas,
		QueueCap:        *queueCap,
		MaxReceivers:    *maxRecv,
		MaxAggBytes:     *aggBytes,
		AirtimeBudget:   *airtime,
		MaxLatency:      *maxLatency,
		Workers:         *workers,
		AdmissionShards: *shards,
		PaceAirtime:     *pace,
		SampleEvery:     *sample,
	}
	if *fecK > 0 {
		cfg.Strategy = engine.StrategyFEC
		cfg.FECParity = *fecK
	}
	switch {
	case *usePHY:
		cfg.Transport = &engine.PHYTransport{Seed: *phySeed}
		cfg.RetainPayloads = true
		// The 12-bit PLCP LENGTH field caps what one SIG can announce;
		// an uncapped aggregate would build unbuildable subframes under
		// deep queues and burn every retry. The loss-oracle paths keep
		// the simulator's 64 KiB default.
		if cfg.MaxAggBytes == 0 {
			cfg.MaxAggBytes = phy.MaxPayloadBytes
		}
	case *deadLocs != "":
		locs, err := parseInts(*deadLocs)
		if err != nil {
			fatalf("-dead-locs: %v", err)
		}
		if *fecK > 0 {
			// StrategyFEC needs the erasure-capable oracle transport.
			cfg.Transport = &engine.CodedOracleTransport{
				OracleTransport: engine.OracleTransport{
					Oracle:    mac.NewLossyLocOracle(locs...),
					Locations: identityLocations(*stas),
				},
			}
		} else {
			cfg.Transport = &engine.OracleTransport{
				Oracle:    mac.NewLossyLocOracle(locs...),
				Locations: identityLocations(*stas),
			}
		}
	}

	// backend is the slice of the serving surface main manages itself;
	// everything else reaches the engine or cluster through the server.
	type backend interface {
		engine.ServerBackend
		Start(ctx context.Context) error
		Close()
	}
	var (
		b   backend
		cl  *cluster.Cluster
		srv *engine.Server
	)
	if *aps > 1 {
		ccfg := cluster.Config{
			APs:              *aps,
			Channels:         *channels,
			InterferenceSeed: *interfSeed,
			Engine:           cfg,
		}
		if *interference > 0 {
			ccfg.Interference = cluster.Uniform(*aps, *interference)
		}
		var err error
		cl, err = cluster.New(ccfg)
		if err != nil {
			fatalf("%v", err)
		}
		b = cl
		srv = engine.NewServerFor(cl)
	} else {
		eng, err := engine.New(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		b = eng
		srv = engine.NewServer(eng)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := b.Start(ctx); err != nil {
		fatalf("%v", err)
	}

	srv.SlabSize = *slabSize
	srv.Legacy = *legacy
	srv.Health = health
	if health != nil {
		go health.Run(ctx, b, *healthEvery)
	}
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()
	errc := make(chan error, 2)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	if cl != nil {
		fmt.Fprintf(os.Stderr, "carpoold: serving %d stations across %d APs on tcp://%s\n",
			*stas, cl.NumAPs(), ln.Addr())
	} else {
		fmt.Fprintf(os.Stderr, "carpoold: serving %d stations on tcp://%s\n", *stas, ln.Addr())
	}
	go func() { errc <- srv.Serve(srvCtx, ln) }()

	if *udp != "" {
		pc, err := net.ListenPacket("udp", *udp)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "carpoold: serving udp://%s\n", pc.LocalAddr())
		go func() { errc <- srv.ServeUDP(srvCtx, pc) }()
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sigc:
		fmt.Fprintln(os.Stderr, "carpoold: draining (signal again to abort)")
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "carpoold: aborting")
			cancel()
		}()
		drainCtx, drainCancel := context.WithTimeout(ctx, 30*time.Second)
		defer drainCancel()
		if err := b.Drain(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "carpoold: drain: %v\n", err)
		}
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "carpoold: serve: %v\n", err)
		}
		b.Close()
	}
	srvCancel()

	// Final stats: the cluster prints the rollup plus its per-AP
	// breakdown and roam count; a bare engine prints its Stats as before.
	var final any = b.Stats()
	if cl != nil {
		final = cl.ClusterStats()
	}
	doc, _ := json.MarshalIndent(final, "", "  ")
	fmt.Fprintf(os.Stderr, "carpoold: final stats\n%s\n", doc)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func identityLocations(n int) []int {
	locs := make([]int, n)
	for i := range locs {
		locs[i] = i
	}
	return locs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "carpoold: "+format+"\n", args...)
	os.Exit(1)
}
