// Command experiments reproduces the paper end-to-end: every table and
// figure of the evaluation plus the §4.1 Bloom filter and §8 energy
// analyses, printed in the order they appear in the paper. Its output is
// the source for EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale quick|full] [-exp <id>|all]
//	            [-debug-addr host:port] [-trace file.json]
//
// Experiment ids: fig1, fig3, table1, fig11, fig12, fig13, fig14,
// granularity, bloom, fig15, fig16, fig17a, fig17b, fairness, energy.
//
// -debug-addr serves live introspection (expvar registry snapshot at
// /debug/vars and /debug/metrics, pprof at /debug/pprof/) while the run is
// in flight. -trace records PHY/MAC events and writes them as Chrome
// trace_event JSON on exit. Either flag enables observation.
package main

import (
	"flag"
	"fmt"
	"os"

	"carpool/internal/experiments"
	"carpool/internal/obs"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	expFlag := flag.String("exp", "all", "experiment id or all")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (enables observation)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (enables observation)")
	flag.Parse()

	if *debugAddr != "" || *traceOut != "" {
		sink := obs.NewDefaultSink(0)
		obs.Enable(sink)
		if *debugAddr != "" {
			ds, err := obs.StartDebugServer(*debugAddr, obs.Default)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			defer ds.Close()
			fmt.Fprintf(os.Stderr, "experiments: debug endpoints on http://%s/debug/\n", ds.Addr())
		}
		if *traceOut != "" {
			defer func() {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
					return
				}
				defer f.Close()
				if err := sink.Tracer.WriteChromeTrace(f); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "experiments: wrote %d trace events to %s (%d dropped)\n",
					sink.Tracer.Len(), *traceOut, sink.Tracer.Dropped())
			}()
		}
	}

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	w := os.Stdout
	want := func(name string) bool { return *expFlag == "all" || *expFlag == name }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	if want("fig1") {
		experiments.PrintFig1(w)
		fmt.Println()
	}
	if want("fig3") {
		if err := experiments.PrintFig3(w, scale); err != nil {
			fail("fig3", err)
		}
		fmt.Println()
	}
	if want("table1") {
		if err := experiments.PrintTable1(w); err != nil {
			fail("table1", err)
		}
		fmt.Println()
	}
	if want("fig11") {
		if err := experiments.PrintFig11(w, scale); err != nil {
			fail("fig11", err)
		}
		fmt.Println()
	}
	if want("fig12") {
		if err := experiments.PrintFig12(w, scale); err != nil {
			fail("fig12", err)
		}
		fmt.Println()
	}
	if want("fig13") {
		if err := experiments.PrintFig13(w, scale); err != nil {
			fail("fig13", err)
		}
		fmt.Println()
	}
	if want("fig14") {
		if err := experiments.PrintFig14(w, scale); err != nil {
			fail("fig14", err)
		}
		fmt.Println()
	}
	if want("granularity") {
		if err := experiments.PrintGranularity(w, scale); err != nil {
			fail("granularity", err)
		}
		fmt.Println()
	}
	if want("bloom") {
		if err := experiments.PrintBloomStudy(w, scale); err != nil {
			fail("bloom", err)
		}
		fmt.Println()
	}

	needMAC := want("fig15") || want("fig16") || want("fig17a") || want("fig17b") || want("fairness")
	if needMAC {
		fmt.Fprintln(os.Stderr, "experiments: collecting PHY decode traces for the MAC study...")
		lab, err := experiments.NewMACLab(scale)
		if err != nil {
			fail("maclab", err)
		}
		if want("fig15") {
			if err := lab.PrintFig15(w); err != nil {
				fail("fig15", err)
			}
			fmt.Println()
		}
		if want("fig16") {
			if err := lab.PrintFig16(w); err != nil {
				fail("fig16", err)
			}
			fmt.Println()
		}
		if want("fig17a") {
			if err := lab.PrintFig17a(w); err != nil {
				fail("fig17a", err)
			}
			fmt.Println()
		}
		if want("fig17b") {
			if err := lab.PrintFig17b(w); err != nil {
				fail("fig17b", err)
			}
			fmt.Println()
		}
		if want("fairness") {
			if err := lab.PrintFairness(w); err != nil {
				fail("fairness", err)
			}
			fmt.Println()
		}
	}

	if want("energy") {
		if err := experiments.PrintEnergyStudy(w); err != nil {
			fail("energy", err)
		}
	}
}
