// Command carpoolload is the open-loop load generator for carpoold. It
// offers a seeded Poisson frame schedule over the wire protocol, asks the
// server to drain, and reports client-side send rate plus the engine's
// delivered throughput, drop rate, and latency percentiles.
//
// Usage:
//
//	carpoolload [-addr host:port] [-net tcp|udp] [-stas N] [-rate fps]
//	            [-bytes N] [-duration dur] [-seed N] [-payload]
//	            [-open-loop] [-batch N] [-conns N] [-subscribe] [-sub-interval dur]
//	            [-aps N] [-roam rps] [-fec] [-json]
//
// -roam R interleaves seeded RecRoam records into the offered schedule
// at R events per second, each moving a random station to a random AP in
// [0, -aps): the roaming soak for a carpoold -aps cluster. Roams ride
// the station's own connection stripe, so they order correctly against
// that station's frames.
//
// -fec asserts the server is running the erasure-coded strategy
// (carpoold -fec K): the report prints the parity/recovery counters, and
// the run exits non-zero when the drain reply shows no parity subframes —
// catching a soak job that silently benchmarked the retry path instead.
//
// Without -open-loop the schedule is offered as fast as the connection
// accepts it — the throughput-ceiling probe used by the CI soak job.
//
// -subscribe streams telemetry on a second connection for the whole run
// and reconciles the accumulated deltas against the drain reply, exiting
// non-zero if they diverge (as it does on a malformed stats record). When
// the server samples frame lifecycles (carpoold -sample), the report adds
// the per-stage latency decomposition: queue wait, retry backoff, air,
// and decode time per delivered frame.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carpool/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9048", "carpoold address")
	network := flag.String("net", "tcp", "transport: tcp or udp")
	stas := flag.Int("stas", 8, "stations to spread load over")
	rate := flag.Float64("rate", 50_000, "aggregate offered frames per second")
	frameBytes := flag.Int("bytes", 1400, "frame payload size")
	duration := flag.Duration("duration", time.Second, "offered schedule length")
	seed := flag.Int64("seed", 1, "arrival schedule seed")
	payload := flag.Bool("payload", false, "send real payload bytes instead of size-only records")
	openLoop := flag.Bool("open-loop", false, "pace arrivals against the wall clock")
	batch := flag.Int("batch", 0, "records per write (>1 enables grouped sends for the server's slab reads)")
	conns := flag.Int("conns", 1, "parallel sender connections striping the stations (tcp only)")
	aps := flag.Int("aps", 0, "AP count on the server (carpoold -aps); roam targets are drawn from it")
	roam := flag.Float64("roam", 0, "roam events per second interleaved into the schedule (needs -aps >= 2)")
	subscribe := flag.Bool("subscribe", false, "stream telemetry on a second connection and reconcile deltas against the drain reply")
	subInterval := flag.Duration("sub-interval", 0, "telemetry push interval for -subscribe (0 = 100ms)")
	wantFEC := flag.Bool("fec", false, "require erasure-coding activity in the drain reply (server must run carpoold -fec)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
	}()

	rep, err := engine.RunLoad(ctx, engine.LoadConfig{
		Addr:        *addr,
		Network:     *network,
		NumSTAs:     *stas,
		RatePerSec:  *rate,
		FrameBytes:  *frameBytes,
		Duration:    *duration,
		Seed:        *seed,
		Payload:     *payload,
		OpenLoop:    *openLoop,
		Batch:       *batch,
		Conns:       *conns,
		APs:         *aps,
		Roam:        *roam,
		Subscribe:   *subscribe,
		SubInterval: *subInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "carpoolload: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		doc, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(doc))
	} else {
		printReport(rep)
	}
	if rep.Telemetry != nil && !rep.Telemetry.Reconciled {
		fmt.Fprintf(os.Stderr, "carpoolload: telemetry deltas do not reconcile with the drain reply\n")
		os.Exit(1)
	}
	if *wantFEC && rep.Server.FECParityTx == 0 {
		fmt.Fprintf(os.Stderr, "carpoolload: -fec: drain reply shows no parity subframes; is carpoold running -fec?\n")
		os.Exit(1)
	}
}

func printReport(rep *engine.LoadReport) {
	s := rep.Server
	fmt.Printf("offered   %d frames (%d sent) in %v — %.0f frames/s sent, %.0f end to end\n",
		rep.Offered, rep.Sent, rep.TotalElapsed.Round(time.Millisecond), rep.SendRate, rep.EndToEndRate)
	if rep.RoamsSent > 0 {
		fmt.Printf("roaming   %d handoff requests interleaved\n", rep.RoamsSent)
	}
	fmt.Printf("engine    accepted %d  rejected %d  delivered %d  dropped %d  expired %d\n",
		s.Accepted, s.Rejected, s.Delivered, s.Dropped, s.Expired)
	fmt.Printf("carpool   %d tx, %.2f subframes/tx, %d seq-ACK slots, airtime %v\n",
		s.Transmissions, s.MeanGroupSize, s.SeqACKs, s.AirtimeBusy.Round(time.Microsecond))
	if s.FECParityTx > 0 {
		fmt.Printf("fec       %d parity subframes, %d recovered from parity, %d decode failures\n",
			s.FECParityTx, s.FECRecovered, s.FECDecodeFail)
	}
	fmt.Printf("goodput   %.1f Mbit/s wall, %.1f Mbit/s airtime, drop rate %.4f\n",
		s.GoodputMbps, s.AirtimeGoodputMbps, s.DropRate)
	fmt.Printf("latency   p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  fairness %.4f\n",
		s.LatencyP50Ms, s.LatencyP95Ms, s.LatencyP99Ms, s.ByteFairnessIndex)
	if t := rep.Telemetry; t != nil {
		verdict := "reconciled"
		if !t.Reconciled {
			verdict = "DIVERGED"
		}
		fmt.Printf("telemetry %d updates (final=%v): deltas %s with drain reply\n",
			t.Updates, t.Final, verdict)
	}
	if st := rep.Stages; st != nil && st.SampledDelivered > 0 {
		fmt.Printf("stages    1-in-%d sampling, %d frames traced (mean / p95 ms):\n",
			st.SampleEvery, st.SampledDelivered)
		for _, row := range []struct {
			name string
			d    engine.StageDist
		}{
			{"queue wait", st.QueueWait},
			{"backoff", st.Backoff},
			{"air", st.Air},
			{"decode", st.Decode},
		} {
			fmt.Printf("  %-10s %8.3f / %8.3f\n", row.name, row.d.MeanMs, row.d.P95Ms)
		}
	}
}
