// Command carpoolload is the open-loop load generator for carpoold. It
// offers a seeded Poisson frame schedule over the wire protocol, asks the
// server to drain, and reports client-side send rate plus the engine's
// delivered throughput, drop rate, and latency percentiles.
//
// Usage:
//
//	carpoolload [-addr host:port] [-net tcp|udp] [-stas N] [-rate fps]
//	            [-bytes N] [-duration dur] [-seed N] [-payload]
//	            [-open-loop] [-batch N] [-json]
//
// Without -open-loop the schedule is offered as fast as the connection
// accepts it — the throughput-ceiling probe used by the CI soak job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carpool/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9048", "carpoold address")
	network := flag.String("net", "tcp", "transport: tcp or udp")
	stas := flag.Int("stas", 8, "stations to spread load over")
	rate := flag.Float64("rate", 50_000, "aggregate offered frames per second")
	frameBytes := flag.Int("bytes", 1400, "frame payload size")
	duration := flag.Duration("duration", time.Second, "offered schedule length")
	seed := flag.Int64("seed", 1, "arrival schedule seed")
	payload := flag.Bool("payload", false, "send real payload bytes instead of size-only records")
	openLoop := flag.Bool("open-loop", false, "pace arrivals against the wall clock")
	batch := flag.Int("batch", 0, "records per write (>1 enables grouped sends for the server's slab reads)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
	}()

	rep, err := engine.RunLoad(ctx, engine.LoadConfig{
		Addr:       *addr,
		Network:    *network,
		NumSTAs:    *stas,
		RatePerSec: *rate,
		FrameBytes: *frameBytes,
		Duration:   *duration,
		Seed:       *seed,
		Payload:    *payload,
		OpenLoop:   *openLoop,
		Batch:      *batch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "carpoolload: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		doc, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(doc))
		return
	}
	s := rep.Server
	fmt.Printf("offered   %d frames (%d sent) in %v — %.0f frames/s sent, %.0f end to end\n",
		rep.Offered, rep.Sent, rep.TotalElapsed.Round(time.Millisecond), rep.SendRate, rep.EndToEndRate)
	fmt.Printf("engine    accepted %d  rejected %d  delivered %d  dropped %d  expired %d\n",
		s.Accepted, s.Rejected, s.Delivered, s.Dropped, s.Expired)
	fmt.Printf("carpool   %d tx, %.2f subframes/tx, %d seq-ACK slots, airtime %v\n",
		s.Transmissions, s.MeanGroupSize, s.SeqACKs, s.AirtimeBusy.Round(time.Microsecond))
	fmt.Printf("goodput   %.1f Mbit/s wall, %.1f Mbit/s airtime, drop rate %.4f\n",
		s.GoodputMbps, s.AirtimeGoodputMbps, s.DropRate)
	fmt.Printf("latency   p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  fairness %.4f\n",
		s.LatencyP50Ms, s.LatencyP95Ms, s.LatencyP99Ms, s.ByteFairnessIndex)
}
