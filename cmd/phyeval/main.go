// Command phyeval regenerates the paper's PHY evaluation: the BER-bias
// measurement (Fig. 3), the phase-offset side-channel studies (Figs. 11 and
// 12, Table 1), the real-time channel estimation comparison (Figs. 13 and
// 14), and the §5.2 CRC granularity study.
//
// Usage:
//
//	phyeval [-scale quick|full] [-fig 3|11|12|13|14|table1|granularity|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"carpool/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	figFlag := flag.String("fig", "all", "figure to run: 3, 11, 12, 13, 14, table1, granularity, or all")
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory")
	flag.Parse()

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "phyeval: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		if *figFlag != "all" && *figFlag != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "phyeval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("3", func() error { return experiments.PrintFig3(w, scale) })
	run("table1", func() error { return experiments.PrintTable1(w) })
	run("11", func() error { return experiments.PrintFig11(w, scale) })
	run("12", func() error { return experiments.PrintFig12(w, scale) })
	run("13", func() error { return experiments.PrintFig13(w, scale) })
	run("14", func() error { return experiments.PrintFig14(w, scale) })
	run("granularity", func() error { return experiments.PrintGranularity(w, scale) })

	if *csvDir != "" {
		if err := experiments.ExportPHYCSVs(*csvDir, scale); err != nil {
			fmt.Fprintf(os.Stderr, "phyeval: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "phyeval: CSVs written to %s\n", *csvDir)
	}
}
