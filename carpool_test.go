package carpool

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"carpool/internal/phy"
	"carpool/internal/traffic"
)

// The facade tests exercise the library exactly as a downstream user would:
// only through the public package surface.

func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payloadA := make([]byte, 500)
	payloadB := make([]byte, 250)
	rng.Read(payloadA)
	rng.Read(payloadB)
	staA := MAC{2, 0, 0, 0, 0, 1}
	staB := MAC{2, 0, 0, 0, 0, 2}

	frame, err := BuildFrame([]Subframe{
		{Receiver: staA, MCS: MCS24, Payload: payloadA},
		{Receiver: staB, MCS: MCS24, Payload: payloadB},
	}, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{
		SNRdB: 28, NumTaps: 3, RicianK: 15, TapDecay: 3,
		CoherenceSymbols: 2000, CFOHz: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	air := ch.Transmit(append(frame.Samples, make([]complex128, 40)...))

	rx, err := ReceiveFrame(air, ReceiverConfig{MAC: staB, UseRTE: true, KnownStart: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rx.Status != phy.StatusOK || len(rx.Subframes) == 0 {
		t.Fatalf("status %v, %d subframes", rx.Status, len(rx.Subframes))
	}
	if !bytes.Equal(rx.Subframes[0].Payload, payloadB) {
		t.Error("payload corrupted")
	}
}

func TestFacadeSingleReceiverPHY(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 300)
	rng.Read(payload)
	scheme := DefaultSideChannelScheme()
	frame, err := TransmitPHY(payload, PHYTxConfig{MCS: MCS36, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReceivePHY(frame.Samples, PHYRxConfig{
		KnownStart: 0, SideChannel: &scheme, Tracker: NewRTETracker(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != phy.StatusOK || !bytes.Equal(res.Payload, payload) {
		t.Error("loopback failed")
	}
}

func TestFacadeNAVHelpers(t *testing.T) {
	tm := Timing{SIFS: 10 * time.Microsecond, ACK: 40 * time.Microsecond,
		CTS: 40 * time.Microsecond, Payload: 400 * time.Microsecond}
	nav, err := DataNAV(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nav != 400*time.Microsecond+4*50*time.Microsecond {
		t.Errorf("NAV %v", nav)
	}
	sched, err := AckSchedule(tm, 4)
	if err != nil || len(sched) != 4 {
		t.Fatal("schedule failed")
	}
	plan, err := PlanRTS(tm, 2)
	if err != nil || plan.Total == 0 {
		t.Fatal("RTS plan failed")
	}
	last, err := ACKNAV(tm, 4, 4)
	if err != nil || last != 0 {
		t.Error("last ACK NAV should be 0")
	}
	if _, err := ReceiverNAV(tm, 0); err == nil {
		t.Error("accepted position 0")
	}
}

func TestFacadeMACSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 12
	down := make([][]traffic.Arrival, n)
	for i := range down {
		down[i] = traffic.CBRFlow(rng, 120, 10*time.Millisecond, 2*time.Second)
	}
	for _, p := range []Protocol{Legacy80211, AMPDU, AMSDU, MUAggregation, WiFox, CarpoolMAC} {
		res, err := RunMAC(MACConfig{
			Protocol: p, NumSTAs: n, Duration: 2 * time.Second, Seed: int64(p),
			Downlink: down, SaturatedUplink: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%v delivered nothing", p)
		}
	}
}

func TestFacadeBloomAndLocations(t *testing.T) {
	if got := BloomFalsePositiveRate(8, 4); got < 0.05 || got > 0.06 {
		t.Errorf("FP rate %v", got)
	}
	if len(OfficeLocations()) != 30 {
		t.Error("expected 30 locations")
	}
}
