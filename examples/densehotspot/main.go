// Densehotspot: sweeps the crowd size in a public hotspot and reports, for
// each protocol, the downlink goodput plus the per-station energy picture
// of §8 — Carpool stations drop foreign frames after the two-symbol A-HDR
// while legacy stations decode everything they overhear.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"carpool"
	"carpool/internal/energy"
	"carpool/internal/experiments"
	"carpool/internal/traffic"
)

func main() {
	fmt.Println("collecting PHY decode traces (one-time step)...")
	lab, err := experiments.NewMACLab(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	dur := lab.Duration()

	fmt.Printf("%-5s %-9s %-16s %-14s %-14s\n",
		"STAs", "protocol", "goodput(Mbit/s)", "STA mean (W)", "vs idle (mW)")
	for _, n := range []int{10, 20, 30} {
		rng := rand.New(rand.NewSource(int64(n)))
		down := make([][]traffic.Arrival, n)
		for i := range down {
			down[i] = traffic.CBRFlow(rng, traffic.VoIPFrameBytes, traffic.VoIPFrameInterval, dur)
		}
		for _, p := range []carpool.Protocol{carpool.Legacy80211, carpool.CarpoolMAC} {
			res, err := lab.Run(p, n, down)
			if err != nil {
				log.Fatal(err)
			}
			// Average the stations' energy budgets. Legacy stations decode
			// every overheard frame; Carpool stations only its two-symbol
			// A-HDR (~5% of a typical aggregate).
			fraction := 1.0
			if p == carpool.CarpoolMAC {
				fraction = 0.05
			}
			var mean float64
			for i := 0; i < n; i++ {
				b, err := energy.StationBudget(dur,
					res.STATxTime[i], res.STARxOwnTime[i], res.STAOverhear[i], fraction)
				if err != nil {
					log.Fatal(err)
				}
				mean += b.MeanPower()
			}
			mean /= float64(n)
			fmt.Printf("%-5d %-9s %-16.2f %-14.3f %-14.1f\n",
				n, p, res.DownlinkGoodputMbps, mean, (mean-energy.IdlePowerW)*1e3)
		}
	}
	fmt.Println("\nCarpool both multiplies goodput and, by dropping foreign frames after")
	fmt.Println("the A-HDR, keeps the per-station radio draw near the idle floor. §8's")
	fmt.Println("false-positive overhead bound:")
	overhead, err := energy.NodeEnergyOverhead(8, 4, 0.90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  worst-case extra node energy at 8 receivers: %.2f%%\n", 100*overhead)

	_ = time.Second
}
