// Cafewifi: the large-audience scenario that motivates the paper. Thirty
// patrons stream VoIP through one access point while their uplinks keep the
// channel contended. The example runs the trace-driven MAC simulation for
// plain 802.11, single-receiver aggregation (A-MSDU), and Carpool, and
// shows how multi-receiver aggregation rescues the downlink.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"carpool"
	"carpool/internal/experiments"
	"carpool/internal/traffic"
)

func main() {
	const nSTA = 30
	const dur = 5 * time.Second

	fmt.Println("collecting PHY decode traces for the office (one-time step)...")
	lab, err := experiments.NewMACLab(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	down := make([][]traffic.Arrival, nSTA)
	for i := range down {
		down[i] = traffic.CBRFlow(rng, traffic.VoIPFrameBytes, traffic.VoIPFrameInterval, dur)
	}
	offered := 0.0
	for _, f := range down {
		offered += float64(traffic.TotalBytes(f)) * 8 / dur.Seconds() / 1e6
	}
	fmt.Printf("cafe: %d stations, %.2f Mbit/s of downlink VoIP offered, saturated uplink\n\n",
		nSTA, offered)

	for _, p := range []carpool.Protocol{carpool.Legacy80211, carpool.AMSDU, carpool.CarpoolMAC} {
		res, err := lab.Run(p, nSTA, down)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s goodput %.2f Mbit/s  mean delay %6.0f ms  p95 %6.0f ms  "+
			"collisions %d  retries %d\n",
			p, res.DownlinkGoodputMbps,
			res.MeanDelay.Seconds()*1e3, res.P95Delay.Seconds()*1e3,
			res.Collisions, res.Retries)
	}
	fmt.Println("\nCarpool serves up to eight patrons per channel access; 802.11 wins the")
	fmt.Println("channel once per frame and collapses under thirty contenders.")
}
