// Quickstart: the paper's Fig. 2 flow end-to-end. An AP aggregates frames
// for three stations into one Carpool frame; the frame crosses a fading
// indoor channel; each station checks the Bloom-filter A-HDR, skips the
// subframes that are not its own, decodes its payload with real-time
// channel estimation, and schedules its sequential ACK.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"carpool"
)

func main() {
	staA := carpool.MAC{0x02, 0, 0, 0, 0, 0xA}
	staB := carpool.MAC{0x02, 0, 0, 0, 0, 0xB}
	staC := carpool.MAC{0x02, 0, 0, 0, 0, 0xC}

	payloads := map[carpool.MAC][]byte{
		staA: bytes.Repeat([]byte("web page for A. "), 40),
		staB: bytes.Repeat([]byte("video chunk B. "), 60),
		staC: bytes.Repeat([]byte("mail for C. "), 20),
	}

	// The AP aggregates three subframes — different lengths, different
	// modulation/coding per receiver — into one Carpool frame.
	frame, err := carpool.BuildFrame([]carpool.Subframe{
		{Receiver: staA, MCS: carpool.MCS24, Payload: payloads[staA]},
		{Receiver: staB, MCS: carpool.MCS48, Payload: payloads[staB]},
		{Receiver: staC, MCS: carpool.MCS12, Payload: payloads[staC]},
	}, carpool.FrameConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Carpool frame: %d subframes, %d OFDM symbols, %.1f µs airtime, A-HDR filter %012x\n",
		len(frame.Subframes), frame.NumSymbols(), frame.AirtimeSeconds()*1e6, uint64(frame.Filter))

	// One shared indoor channel (26 dB, light multipath, residual CFO).
	ch, err := carpool.NewChannel(carpool.ChannelConfig{
		SNRdB: 26, NumTaps: 3, RicianK: 15, TapDecay: 3,
		CoherenceSymbols: 2000, CFOHz: 700, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	air := ch.Transmit(append(frame.Samples, make([]complex128, 40)...))

	// Every station hears the same samples and extracts only its share.
	for i, sta := range []carpool.MAC{staA, staB, staC} {
		rx, err := carpool.ReceiveFrame(air, carpool.ReceiverConfig{
			MAC: sta, UseRTE: true, KnownStart: 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		if rx.Dropped || len(rx.Subframes) == 0 {
			log.Fatalf("station %v missed its subframe", sta)
		}
		sub := rx.Subframes[0]
		ok := bytes.Equal(sub.Payload, payloads[sta])
		fmt.Printf("STA %v: matched position %d, decoded %4d bytes (%s), "+
			"decoded %d/%d symbols, %d RTE data-pilot updates\n",
			sta, sub.Position, len(sub.Payload), status(ok),
			rx.SymbolsDecoded, rx.SymbolsHeard, sub.RTEUpdates)
		_ = i
	}

	// A station not in the A-HDR drops the frame after two symbols.
	foreign := carpool.MAC{0x02, 0xFF, 0, 0, 0, 0xEE}
	rx, err := carpool.ReceiveFrame(air, carpool.ReceiverConfig{MAC: foreign, KnownStart: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("foreign STA %v: dropped=%v after decoding %d symbols\n",
		foreign, rx.Dropped, rx.SymbolsDecoded)

	// Sequential ACK schedule (§4.2): one ACK slot per receiver, spaced by
	// SIFS, all reserved by the data frame's NAV (Eq. 1).
	tm := carpool.Timing{
		SIFS:    10 * time.Microsecond,
		ACK:     44 * time.Microsecond,
		Payload: time.Duration(frame.AirtimeSeconds() * float64(time.Second)),
	}
	nav, err := carpool.DataNAV(tm, 3)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := carpool.AckSchedule(tm, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAV_data = %v; ACKs start at %v after the data frame ends\n", nav, sched)
}

func status(ok bool) string {
	if ok {
		return "payload intact"
	}
	return "PAYLOAD CORRUPTED"
}
