// Mumimo: the §8 MU-MIMO extension (Fig. 18). A two-antenna AP serves four
// single-antenna stations in ONE transmission: two zero-forcing groups,
// each carrying two subframes simultaneously on precoded spatial streams,
// all sharing a single legacy preamble and Bloom-filter A-HDR.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"carpool"
	"carpool/internal/dsp"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// Four stations, each with its own two-antenna channel. The AP knows
	// the CSI (in deployment: sounding feedback; here: read from the
	// models).
	type station struct {
		mac   carpool.MAC
		paths [2]*carpool.Channel
		csi   carpool.CSI
	}
	stations := make([]*station, 4)
	for i := range stations {
		s := &station{mac: carpool.MAC{2, 0, 0, 0, 0, byte(0xA + i)}}
		for a := 0; a < 2; a++ {
			ch, err := carpool.NewChannel(carpool.ChannelConfig{
				SNRdB: 300, NumTaps: 2, RicianK: 4, TapDecay: 2,
				Seed: int64(i*10 + a + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			s.paths[a] = ch
			s.csi[a] = ch.FrequencyResponse()
		}
		stations[i] = s
	}

	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = make([]byte, 300+i*100)
		rng.Read(payloads[i])
	}

	// Two groups of two: A+B share precoder 1, C+D share precoder 2.
	mk := func(i int) carpool.MIMOSubframe {
		return carpool.MIMOSubframe{
			Receiver: stations[i].mac, MCS: carpool.MCS12,
			Payload: payloads[i], CSI: stations[i].csi,
		}
	}
	frame, err := carpool.BuildMIMOFrame([]carpool.MIMOGroup{
		{mk(0), mk(1)}, {mk(2), mk(3)},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one MU-MIMO Carpool frame: %d symbols on 2 antennas, 4 receivers, A-HDR %012x\n",
		frame.NumSymbols(), uint64(frame.Filter))

	for i, s := range stations {
		// The station hears the sum of both antenna streams through its
		// own channels, plus receiver noise.
		rx := make([]complex128, len(frame.Streams[0]))
		for a := 0; a < 2; a++ {
			y := s.paths[a].Transmit(frame.Streams[a])
			for j := range rx {
				rx[j] += y[j]
			}
		}
		noise := dsp.NewGaussianSource(rand.New(rand.NewSource(int64(100 + i))))
		noise.AddNoise(rx, dsp.NoiseVarianceForSNR(dsp.MeanPower(rx), 30))

		res, err := carpool.ReceiveMIMOFrame(rx, carpool.MIMOReceiverConfig{
			MAC: s.mac, KnownStart: 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		ok := res.Payload != nil && bytes.Equal(res.Payload, payloads[i])
		fmt.Printf("STA %v: group %d, stream %d, separation %5.1fx, %4d bytes (%s)\n",
			s.mac, res.GroupIndex, res.Stream, res.StreamSeparation,
			len(res.Payload), verdict(ok))
	}
	fmt.Println("\nStandard MU-MIMO would need two transmissions (two preambles, two")
	fmt.Println("contention rounds) for these four stations; Carpool needed one.")
}

func verdict(ok bool) string {
	if ok {
		return "intact"
	}
	return "CORRUPTED"
}
