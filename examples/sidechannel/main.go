// Sidechannel: demonstrates the phase-offset side channel (§5.2). The
// transmitter rides two free bits per OFDM symbol on a constellation
// rotation; the receiver's pilots track and remove the rotation before data
// demodulation, so the payload is untouched while the side channel delivers
// the symbol-level CRC stream that powers real-time channel estimation.
package main

import (
	"bytes"
	"fmt"
	"log"

	"carpool"
)

func main() {
	payload := bytes.Repeat([]byte("phase offsets are free! "), 50)
	scheme := carpool.DefaultSideChannelScheme()

	// Transmit the same payload with and without the side channel.
	withSC, err := carpool.TransmitPHY(payload, carpool.PHYTxConfig{
		MCS: carpool.MCS48, SideChannel: &scheme,
	})
	if err != nil {
		log.Fatal(err)
	}
	without, err := carpool.TransmitPHY(payload, carpool.PHYTxConfig{MCS: carpool.MCS48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame: %d data symbols, side channel carries %d bits/symbol -> %d free bits\n",
		withSC.NumDataSymbols(), scheme.Alphabet.BitsPerSymbol(),
		scheme.Alphabet.BitsPerSymbol()*withSC.NumDataSymbols())

	// One channel realization for each (same seed: identical fading).
	decode := func(frame *carpool.TxFrame, sc bool) *carpool.RxResult {
		ch, err := carpool.NewChannel(carpool.ChannelConfig{
			SNRdB: 28, NumTaps: 3, RicianK: 15, TapDecay: 3,
			CoherenceSymbols: 2000, CFOHz: 900, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := carpool.PHYRxConfig{KnownStart: 0, SkipFEC: true}
		if sc {
			cfg.SideChannel = &scheme
		}
		res, err := carpool.ReceivePHY(ch.Transmit(frame.Samples), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	resWith := decode(withSC, true)
	resWithout := decode(without, false)

	count := func(tx, rx [][]byte) (errs, bits int) {
		for i := range tx {
			if i >= len(rx) {
				break
			}
			for j := range tx[i] {
				bits++
				if j >= len(rx[i]) || tx[i][j] != rx[i][j] {
					errs++
				}
			}
		}
		return errs, bits
	}

	dErr, dBits := count(withSC.Blocks, resWith.Blocks)
	bErr, bBits := count(without.Blocks, resWithout.Blocks)
	fmt.Printf("payload coded-bit errors: %d/%d with side channel, %d/%d without — decoding unaffected\n",
		dErr, dBits, bErr, bBits)

	sErr, sBits := count(withSC.SideBits, resWith.SideBits)
	fmt.Printf("side-channel bit errors: %d/%d\n", sErr, sBits)

	okSymbols := 0
	for _, ok := range resWith.SymbolOK {
		if ok {
			okSymbols++
		}
	}
	fmt.Printf("symbol-level CRC verdicts: %d/%d symbols verified correct — these become RTE data pilots\n",
		okSymbols, len(resWith.SymbolOK))
}
