package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"carpool/internal/engine"
	"carpool/internal/traffic"
)

// RoamEvent is one scheduled handoff in a deterministic run: at virtual
// time At, station STA migrates to AP. Events apply between slots (never
// mid-transmission), in (At, STA) order.
type RoamEvent struct {
	At  time.Duration
	STA int
	AP  int
}

// vclock is the cluster's manually advanced virtual clock, shared by
// every AP engine so arrival stamps, backoff deadlines, and latency
// accounting agree across a handoff.
type vclock struct {
	now time.Duration
}

func (c *vclock) Now() time.Duration { return c.now }

// detArrival is one scheduled submission, pre-flattened and sorted.
type detArrival struct {
	at   time.Duration
	sta  int
	size int
}

// RunDeterministic executes a whole cluster single-threaded under one
// virtual clock: per-STA arrival flows route to each station's current
// AP, roam events migrate queue and backoff state between APs, and each
// slot the coordination Policy picks which backlogged APs transmit
// together — their plans share the air (the interference core sees the
// coordinated set), the clock advances by the slot's longest
// transmission, and every outcome settles at slot end. A given (config,
// flows, roams) triple always produces the same Stats.
//
// With cfg.APs == 1, no interference, and no roams, the loop reduces
// step for step to engine.RunDeterministic — the cluster-vs-single
// conformance pair holds the Stats dump-identical.
//
// horizon, when positive, stops the run at that virtual time even with
// backlog remaining (interference can make queues non-draining);
// otherwise the run ends when every arrival has been offered and all
// queues have drained.
func RunDeterministic(ctx context.Context, cfg Config, flows [][]traffic.Arrival, roams []RoamEvent, horizon time.Duration) (*Stats, error) {
	if len(flows) > cfg.Engine.NumSTAs && cfg.Engine.NumSTAs > 0 {
		return nil, fmt.Errorf("cluster: %d flows for %d stations", len(flows), cfg.Engine.NumSTAs)
	}
	clk := &vclock{}
	cfg.Engine.Clock = clk
	cfg.Engine.Workers = 1
	if cfg.Engine.AdmissionShards == 0 {
		// Deterministic results must not depend on the host's GOMAXPROCS
		// (see engine.RunDeterministic).
		cfg.Engine.AdmissionShards = 1
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = AllPolicy{}
	}

	steppers := make([]*engine.Stepper, len(c.engines))
	for a, e := range c.engines {
		steppers[a] = engine.NewStepper(e)
	}

	// Flatten flows into one global arrival schedule ordered by time with
	// station index as the tie-break — the same order the single-engine
	// runner admits in.
	var arrivals []detArrival
	for sta, flow := range flows {
		for _, a := range flow {
			arrivals = append(arrivals, detArrival{at: a.Time, sta: sta, size: a.Size})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].sta < arrivals[j].sta
	})
	roams = append([]RoamEvent(nil), roams...)
	sort.SliceStable(roams, func(i, j int) bool {
		if roams[i].At != roams[j].At {
			return roams[i].At < roams[j].At
		}
		return roams[i].STA < roams[j].STA
	})

	bytesBefore := make([]int64, len(c.engines))
	bytesPerAP := make([]int64, len(c.engines))
	txs := make([]*engine.SteppedTx, len(c.engines))

	next, nextRoam := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := clk.now
		if horizon > 0 && now >= horizon {
			break
		}

		// Apply every roam due by now: between slots nothing is in
		// flight, so extraction cannot fail on in-flight frames.
		for nextRoam < len(roams) && roams[nextRoam].At <= now {
			ev := roams[nextRoam]
			nextRoam++
			if ev.STA < 0 || ev.STA >= len(c.routes) || ev.AP < 0 || ev.AP >= len(c.engines) {
				return nil, fmt.Errorf("cluster: roam event (%v, sta %d, ap %d) out of range", ev.At, ev.STA, ev.AP)
			}
			from := c.apFor(ev.STA)
			if from == ev.AP {
				continue
			}
			st, err := c.engines[from].ExtractSTA(ev.STA)
			if err != nil {
				return nil, fmt.Errorf("cluster: roam sta %d at %v: %w", ev.STA, ev.At, err)
			}
			if err := c.engines[ev.AP].InjectSTA(st); err != nil {
				return nil, fmt.Errorf("cluster: roam sta %d at %v: %w", ev.STA, ev.At, err)
			}
			atomic.StoreInt32(&c.routes[ev.STA], int32(ev.AP))
			c.roams.Add(1)
		}

		// Admit every arrival due by now at its station's current AP.
		// Admission failures are backpressure outcomes, not run errors.
		for next < len(arrivals) && arrivals[next].at <= now {
			a := arrivals[next]
			ap := c.apFor(a.sta)
			_ = steppers[ap].Submit(a.sta, a.size, nil, now)
			next++
		}
		for _, s := range steppers {
			s.Expire(now)
		}

		// Candidate APs: those with eligible backlog this instant.
		var candidates uint64
		for a, s := range steppers {
			if s.HasEligible(now) {
				candidates |= 1 << uint(a)
			}
		}

		if candidates != 0 {
			pick := policy.Pick(candidates) & candidates
			if pick == 0 {
				// A policy cannot stall the cluster: transmit the lowest
				// backlogged AP.
				pick = candidates & -candidates
			}

			// Build every picked AP's plan first (ascending AP order), so
			// the slot's membership is fixed before any delivery runs.
			var slotAir time.Duration
			built := pick
			for a := range steppers {
				txs[a] = nil
				if pick&(1<<uint(a)) == 0 {
					continue
				}
				tx := steppers[a].BuildPlan(now)
				if tx == nil {
					built &^= 1 << uint(a) // raced backoff edge; skip
					continue
				}
				txs[a] = tx
				if air := tx.Airtime(); air > slotAir {
					slotAir = air
				}
			}

			if built != 0 {
				if c.interf != nil {
					c.interf.setFixedMask(built)
				}
				for a, tx := range txs {
					if tx == nil {
						continue
					}
					bytesBefore[a] = c.engines[a].Stats().DeliveredBytes
					_ = steppers[a].Deliver(ctx, tx)
				}
				// The whole slot occupies the air before any outcome lands:
				// advance to slot end, then settle in AP order.
				clk.now += slotAir
				for a, tx := range txs {
					if tx == nil {
						bytesPerAP[a] = 0
						continue
					}
					steppers[a].Settle(tx, clk.now)
					bytesPerAP[a] = c.engines[a].Stats().DeliveredBytes - bytesBefore[a]
				}
				policy.Observe(built, bytesPerAP, slotAir)
				continue
			}
		}

		// Nothing schedulable: hop to the next event (arrival, roam, or
		// backoff expiry); if none exists the run is complete.
		hop := time.Duration(-1)
		if next < len(arrivals) {
			hop = arrivals[next].at - now
		}
		if nextRoam < len(roams) {
			if d := roams[nextRoam].At - now; hop < 0 || d < hop {
				hop = d
			}
		}
		for _, s := range steppers {
			if d, ok := s.EarliestEligible(now); ok && (hop < 0 || d < hop) {
				hop = d
			}
		}
		if hop < 0 {
			break
		}
		if hop == 0 {
			hop = 1 // guard against zero-length hops stalling the loop
		}
		if horizon > 0 && now+hop > horizon {
			clk.now = horizon
			continue
		}
		clk.now += hop
	}

	per := make([]engine.Stats, len(steppers))
	for a, s := range steppers {
		per[a] = s.Stats(clk.now)
	}
	out := &Stats{Total: rollup(per), PerAP: per, Roams: c.roams.Load()}
	return out, nil
}
