package cluster

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"carpool/internal/engine"
)

// startClusterLoopback runs a cluster behind the wire server on an
// ephemeral loopback port and returns the dial address plus a shutdown
// func — the cluster twin of the engine's startLoopback.
func startClusterLoopback(t *testing.T, cfg Config) (string, *Cluster, func()) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := c.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	srv := engine.NewServerFor(c)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), c, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestCluster16APLoopbackThroughput is the multi-AP acceptance
// criterion: carpoold serving a 16-AP cluster over loopback TCP, with
// the load generator striping stations across APs and issuing live roam
// records mid-stream, must sustain the frame-rate floor and drain
// clean. The floor scales down under the race detector and -short (the
// CI cluster-soak job runs the race build).
func TestCluster16APLoopbackThroughput(t *testing.T) {
	baseline := runtime.NumGoroutine()

	frames := int64(100_000)
	floor := 50_000.0
	if raceEnabled {
		floor = 8_000
	}
	if testing.Short() {
		frames, floor = frames/10, floor/2
	}
	const numSTAs = 64
	addr, c, shutdown := startClusterLoopback(t, Config{
		APs:    16,
		Engine: engine.Config{NumSTAs: numSTAs, QueueCap: 1 << 16},
	})

	rep, err := engine.RunLoad(context.Background(), engine.LoadConfig{
		Addr:       addr,
		NumSTAs:    numSTAs,
		RatePerSec: float64(frames),
		FrameBytes: 1200,
		Duration:   time.Second,
		Seed:       42,
		APs:        16,
		Roam:       200, // ~200 roam records over the second
	})
	if err != nil {
		t.Fatal(err)
	}
	roams := c.Roams()
	shutdown()
	s := rep.Server
	t.Logf("sent %d frames + %d roam records (%d applied), drained in %v (%.0f frames/s); server %+v",
		rep.Sent, rep.RoamsSent, roams, rep.TotalElapsed.Round(time.Millisecond), rep.EndToEndRate, s)

	if rep.EndToEndRate < floor {
		t.Errorf("end-to-end rate %.0f frames/s below floor %.0f", rep.EndToEndRate, floor)
	}
	if rep.RoamsSent == 0 {
		t.Error("load generator sent no roam records")
	}
	if s.Accepted != rep.Sent || s.Rejected != 0 {
		t.Errorf("drops below the admission threshold: accepted=%d rejected=%d sent=%d",
			s.Accepted, s.Rejected, rep.Sent)
	}
	if s.Delivered != s.Accepted || s.Pending != 0 {
		t.Errorf("drain incomplete: %+v", s)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after load run: %d > baseline %d", n, baseline)
	}
}

// TestClusterServerStatsAndTelemetryRollup drives a small cluster over
// the wire and checks the ServerBackend surface: a drain control reply
// carries the cluster rollup, and the rollup equals the per-AP sum.
func TestClusterServerStatsRollup(t *testing.T) {
	addr, c, shutdown := startClusterLoopback(t, Config{
		APs:    4,
		Engine: engine.Config{NumSTAs: 8},
	})
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf []byte
	for k := 0; k < 80; k++ {
		buf = engine.AppendSizeRecord(buf, k%8, 900)
	}
	// Interleave a roam: station 3 to AP 0, mid-stream, on the same
	// connection — wire FIFO orders it after the preceding frames.
	buf = engine.AppendRoamRecord(buf, 3, 0)
	for k := 0; k < 80; k++ {
		buf = engine.AppendSizeRecord(buf, k%8, 900)
	}
	buf = engine.AppendControlRecord(buf, engine.RecDrain)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	st, err := engine.ReadStatsReply(conn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 160 || st.Delivered != 160 || st.Pending != 0 {
		t.Fatalf("drained rollup stats = %+v", st)
	}
	if ap := c.APOf(3); ap != 0 {
		t.Errorf("station 3 at AP %d after wire roam, want 0", ap)
	}
	cs := c.ClusterStats()
	var sum int64
	for _, ap := range cs.PerAP {
		sum += ap.Delivered
	}
	if sum != cs.Total.Delivered || cs.Total.Delivered != 160 {
		t.Errorf("per-AP delivered sums to %d, rollup %d", sum, cs.Total.Delivered)
	}
}

// goroutineCount polls the goroutine count down to the baseline,
// tolerating runtime-internal stragglers.
func goroutineCount(baseline int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > baseline; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
