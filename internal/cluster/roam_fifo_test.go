package cluster

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"carpool/internal/engine"
)

// recordingLossyTransport fails each subframe with a seeded coin flip
// and records every successfully delivered payload per station in
// delivery order — the observation point for the cross-AP FIFO
// assertion. One instance is shared by every AP's engine, so its log is
// the cluster-global delivery order.
type recordingLossyTransport struct {
	mu  sync.Mutex
	rng *rand.Rand
	got [][]uint32
}

func (t *recordingLossyTransport) Deliver(_ context.Context, p *engine.Plan) ([]bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ok := make([]bool, len(p.Subs))
	for i, sub := range p.Subs {
		ok[i] = t.rng.Float64() >= 0.35
		if !ok[i] {
			continue
		}
		for _, pl := range sub.Payloads {
			if len(pl) != 4 {
				ok[i] = false // malformed payload: surfaces as a drop below
				continue
			}
			t.got[sub.STA] = append(t.got[sub.STA], binary.BigEndian.Uint32(pl))
		}
	}
	return ok, nil
}

// TestRoamHandoffPreservesPerSTAFIFO hammers a 4-AP cluster with
// concurrent submitters that migrate their own stations between APs
// mid-stream (honoring the package's one-stream-per-station contract,
// exactly as the wire server's per-connection loop does), under a ~35%
// lossy transport, and asserts the end-to-end ordering contract the
// handoff must preserve: every station's payloads reach the air in
// strictly sequential submit order, across queue migrations,
// retry-requeue-at-head, and backoff state carried between engines. Each
// AP runs one delivery worker, and a station's queue lives at exactly
// one AP at a time (ExtractSTA refuses to move in-flight frames), so the
// shared transport's per-STA log is exactly the station's transmission
// order. Four submitters roam concurrently — handoffs at different
// stations race each other, every extraction races the delivery workers.
// Runs under -race in the cluster-soak CI job.
func TestRoamHandoffPreservesPerSTAFIFO(t *testing.T) {
	const (
		numSTAs      = 16
		aps          = 4
		submitters   = 4
		perSTAFrames = 120
	)
	tr := &recordingLossyTransport{
		rng: rand.New(rand.NewSource(42)),
		got: make([][]uint32, numSTAs),
	}
	c, err := New(Config{
		APs: aps,
		Engine: engine.Config{
			NumSTAs:        numSTAs,
			Workers:        1,
			QueueCap:       aps*perSTAFrames + 8, // a roam concentrates several stations on one AP
			RetainPayloads: true,
			RetryLimit:     256,
			BackoffBase:    time.Microsecond,
			BackoffCap:     8 * time.Microsecond,
			Transport:      tr,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Submitter g owns stations {g, g+4, g+8, g+12}, mixing single-frame
	// submits with cross-station batches (the batch partitioner path) and
	// roaming its own stations to random APs mid-stream.
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			next := make([]uint32, numSTAs)
			owned := []int{g, g + 4, g + 8, g + 12}
			remaining := len(owned) * perSTAFrames
			for remaining > 0 {
				if rng.Intn(6) == 0 {
					if err := c.Roam(owned[rng.Intn(len(owned))], rng.Intn(aps)); err != nil {
						t.Errorf("roam: %v", err)
						return
					}
				}
				if rng.Intn(2) == 0 {
					sta := owned[rng.Intn(len(owned))]
					if next[sta] == perSTAFrames {
						continue
					}
					pl := make([]byte, 4)
					binary.BigEndian.PutUint32(pl, next[sta])
					if err := c.Submit(sta, pl); err != nil {
						t.Errorf("submit sta %d: %v", sta, err)
						return
					}
					next[sta]++
					remaining--
				} else {
					var items []engine.BatchItem
					for _, sta := range owned {
						run := rng.Intn(4)
						for r := 0; r < run && next[sta] < perSTAFrames; r++ {
							pl := make([]byte, 4)
							binary.BigEndian.PutUint32(pl, next[sta])
							items = append(items, engine.BatchItem{STA: sta, Payload: pl})
							next[sta]++
							remaining--
						}
					}
					if len(items) == 0 {
						continue
					}
					n, err := c.SubmitBatch(items)
					if err != nil || n != len(items) {
						t.Errorf("submitter %d: batch accepted %d of %d, err %v", g, n, len(items), err)
						return
					}
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	roams := c.Roams()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	st := c.ClusterStats()
	if st.Total.Delivered != numSTAs*perSTAFrames {
		t.Fatalf("delivered %d of %d (dropped %d, expired %d)",
			st.Total.Delivered, numSTAs*perSTAFrames, st.Total.Dropped, st.Total.Expired)
	}
	if st.Total.Retries == 0 {
		t.Fatal("lossy transport produced no retries; requeue-at-head path not exercised")
	}
	if roams == 0 {
		t.Fatal("no roam completed; handoff path not exercised")
	}
	for sta := 0; sta < numSTAs; sta++ {
		if len(tr.got[sta]) != perSTAFrames {
			t.Fatalf("station %d: transport saw %d payloads, want %d", sta, len(tr.got[sta]), perSTAFrames)
		}
		for i, v := range tr.got[sta] {
			if v != uint32(i) {
				t.Fatalf("station %d: delivery %d carried counter %d — per-STA FIFO broken across roam handoff",
					sta, i, v)
			}
		}
	}
	t.Logf("delivered %d frames across %d roams with %d retries",
		st.Total.Delivered, roams, st.Total.Retries)
}

// TestRoamUnderInterferenceDrainsClean runs the same handoff machinery
// with the real-time co-channel interference wrapper active: every AP on
// one channel with a dense 20% pairwise matrix, concurrent workers, and
// live roaming. The assertion is liveness and accounting: everything
// offered eventually delivers (the on-air overlap is transient, so
// retries win through), queues drain, and the per-AP stats sum to the
// cluster totals. Runs under -race in the cluster-soak CI job.
func TestRoamUnderInterferenceDrainsClean(t *testing.T) {
	const (
		numSTAs = 12
		aps     = 3
		frames  = 50
	)
	c, err := New(Config{
		APs:          aps,
		Channels:     1,
		Interference: Uniform(aps, 0.2),
		Engine: engine.Config{
			NumSTAs:     numSTAs,
			Workers:     2,
			QueueCap:    aps * frames * 2,
			RetryLimit:  256,
			BackoffBase: time.Microsecond,
			BackoffCap:  8 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Three streams, each owning a third of the stations: every stream
	// interleaves submits with roams of its own stations, so handoffs at
	// different stations race each other and the delivery workers while
	// the per-station stream contract holds.
	var wg sync.WaitGroup
	for g := 0; g < aps; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3 + g)))
			perOwner := numSTAs / aps
			for k := 0; k < perOwner*frames; k++ {
				sta := g*perOwner + k%perOwner
				if rng.Intn(5) == 0 {
					if err := c.Roam(sta, rng.Intn(aps)); err != nil {
						t.Errorf("roam: %v", err)
						return
					}
				}
				if err := c.SubmitSize(sta, 700); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := c.ClusterStats()
	if st.Total.Delivered != numSTAs*frames || st.Total.Pending != 0 {
		t.Fatalf("unclean drain under interference: %+v", st.Total)
	}
	var perSum int64
	for _, ap := range st.PerAP {
		perSum += ap.Delivered
	}
	if perSum != st.Total.Delivered {
		t.Fatalf("per-AP delivered sums to %d, rollup says %d", perSum, st.Total.Delivered)
	}
}
