package cluster

import (
	"carpool/internal/engine"
	"sync/atomic"
)

// Stats is a point-in-time account of a cluster: each AP's own engine
// Stats plus the rollup across them. With one AP the rollup IS the
// engine's Stats verbatim (the cluster-vs-single conformance pair pins
// this); with several, counters and per-STA bytes sum exactly while the
// derived ratios are recomputed from the sums and two quantities are
// principled approximations, documented on rollup.
type Stats struct {
	// Total is the cluster rollup.
	Total engine.Stats `json:"total"`
	// PerAP is each AP's own accounting, indexed by AP.
	PerAP []engine.Stats `json:"per_ap"`
	// Roams counts completed handoffs.
	Roams int64 `json:"roams"`
}

// Stats snapshots every AP and returns the rollup Total — the
// engine.ServerBackend surface, so stats wire records, the health
// monitor, and carpoolload reports see cluster-wide accounting.
func (c *Cluster) Stats() engine.Stats {
	return c.ClusterStats().Total
}

// ClusterStats snapshots every AP with the per-AP breakdown attached.
func (c *Cluster) ClusterStats() Stats {
	per := make([]engine.Stats, len(c.engines))
	for a, e := range c.engines {
		per[a] = e.Stats()
	}
	return Stats{Total: rollup(per), PerAP: per, Roams: c.Roams()}
}

// rollup merges per-AP engine Stats into cluster totals. With one AP it
// returns that AP's Stats unchanged. With several:
//
//   - Counters (accepted … delivered bytes, airtime) sum exactly, and
//     per-STA delivered bytes add element-wise — a station that roamed
//     keeps one global series across its APs.
//   - Derived ratios (mean group size, goodput, drop rate) are
//     recomputed from the summed counters.
//   - Elapsed is the max across APs (they share one clock, so this is
//     the common run duration, not a sum).
//   - ByteFairnessIndex is recomputed over the merged per-STA bytes
//     with the engines' own denominator: a station counts if any AP
//     flagged it offered (OfferedSTAs), so a dead station that was
//     offered but never served still drags the index down, exactly as
//     it does in a single engine.
//   - Latency quantiles are the delivered-weighted mean of the per-AP
//     quantile estimates — the bucket histograms themselves are not
//     exported, so exact merged quantiles are not reconstructible here.
func rollup(per []engine.Stats) engine.Stats {
	if len(per) == 1 {
		return per[0]
	}
	var t engine.Stats
	var maxSTAs int
	for a := range per {
		if n := len(per[a].DeliveredBytesPerSTA); n > maxSTAs {
			maxSTAs = n
		}
	}
	t.DeliveredBytesPerSTA = make([]int64, maxSTAs)
	t.OfferedSTAs = make([]bool, maxSTAs)
	var latW float64
	for a := range per {
		s := &per[a]
		t.Accepted += s.Accepted
		t.Rejected += s.Rejected
		t.Delivered += s.Delivered
		t.Dropped += s.Dropped
		t.Expired += s.Expired
		t.Pending += s.Pending
		t.Retries += s.Retries
		t.Transmissions += s.Transmissions
		t.Subframes += s.Subframes
		t.SeqACKs += s.SeqACKs
		t.FECParityTx += s.FECParityTx
		t.FECRecovered += s.FECRecovered
		t.FECDecodeFail += s.FECDecodeFail
		t.AirtimeBusy += s.AirtimeBusy
		t.DeliveredBytes += s.DeliveredBytes
		if s.Elapsed > t.Elapsed {
			t.Elapsed = s.Elapsed
		}
		for sta, b := range s.DeliveredBytesPerSTA {
			t.DeliveredBytesPerSTA[sta] += b
		}
		for sta, off := range s.OfferedSTAs {
			if off {
				t.OfferedSTAs[sta] = true
			}
		}
		w := float64(s.Delivered)
		t.LatencyP50Ms += s.LatencyP50Ms * w
		t.LatencyP95Ms += s.LatencyP95Ms * w
		t.LatencyP99Ms += s.LatencyP99Ms * w
		latW += w
	}
	if latW > 0 {
		t.LatencyP50Ms /= latW
		t.LatencyP95Ms /= latW
		t.LatencyP99Ms /= latW
	}
	if t.Transmissions > 0 {
		t.MeanGroupSize = float64(t.Subframes) / float64(t.Transmissions)
	}
	var sum, sumSq, offered float64
	for sta, b := range t.DeliveredBytesPerSTA {
		sum += float64(b)
		sumSq += float64(b) * float64(b)
		if t.OfferedSTAs[sta] {
			offered++
		}
	}
	if offered > 0 && sumSq > 0 {
		t.ByteFairnessIndex = sum * sum / (offered * sumSq)
	}
	if t.Elapsed > 0 {
		t.GoodputMbps = float64(t.DeliveredBytes) * 8 / t.Elapsed.Seconds() / 1e6
	}
	if t.AirtimeBusy > 0 {
		t.AirtimeGoodputMbps = float64(t.DeliveredBytes) * 8 / t.AirtimeBusy.Seconds() / 1e6
	}
	if total := t.Accepted + t.Rejected; total > 0 {
		t.DropRate = float64(t.Dropped+t.Expired+t.Rejected) / float64(total)
	}
	return t
}

// StageStats merges the per-AP stage decompositions: one-AP clusters
// pass through; larger ones sum the histograms' aggregates via the
// engine's merge helper when available, otherwise return AP 0's view.
func (c *Cluster) StageStats() engine.StageStats {
	if len(c.engines) == 1 {
		return c.engines[0].StageStats()
	}
	out := c.engines[0].StageStats()
	for _, e := range c.engines[1:] {
		out.Merge(e.StageStats())
	}
	return out
}

// Telemetry assembles one cluster update: rollup Stats with the per-AP
// breakdown attached, satisfying the ServerBackend surface that drives
// subscribe streams. Per-STA rows come from the station's current AP so
// queue state is live, not summed (a station queues at exactly one AP).
func (c *Cluster) Telemetry(seq uint64, prev engine.Stats, final bool) engine.TelemetryUpdate {
	per := make([]engine.Stats, len(c.engines))
	perAP := make([]engine.APTelemetry, len(c.engines))
	snaps := make([]engine.Snapshot, len(c.engines))
	for a, e := range c.engines {
		snaps[a] = e.SnapshotAll()
		per[a] = snaps[a].Stats
		perAP[a] = engine.APTelemetry{AP: a, Stats: per[a]}
	}
	total := rollup(per)
	upd := engine.TelemetryUpdate{
		Seq:   seq,
		Final: final,
		Stats: total,
		Delta: engine.DiffStats(total, prev),
		PerAP: perAP,
	}
	// Merge per-STA rows: take each station's row from its serving AP
	// (the one holding its queue), summing delivered bytes globally.
	routes := make([]int32, len(c.routes))
	for i := range routes {
		routes[i] = atomic.LoadInt32(&c.routes[i])
	}
	if len(routes) > 0 {
		upd.PerSTA = make([]engine.STAStat, len(routes))
		for sta, ap := range routes {
			if int(ap) < len(snaps) && sta < len(snaps[ap].PerSTA) {
				upd.PerSTA[sta] = snaps[ap].PerSTA[sta]
			}
			upd.PerSTA[sta].STA = sta
			var bytes int64
			for a := range snaps {
				if sta < len(snaps[a].PerSTA) {
					bytes += snaps[a].PerSTA[sta].DeliveredBytes
				}
			}
			upd.PerSTA[sta].DeliveredBytes = bytes
		}
	}
	return upd
}
