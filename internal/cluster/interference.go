package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"carpool/internal/engine"
)

// Matrix is the pairwise co-channel interference model: M[a][b] is the
// probability a data subframe transmitted by AP a is erased by a
// concurrent same-channel transmission from AP b. Diagonal entries are
// ignored (an AP does not interfere with itself), off-channel pairs are
// ignored at runtime, and overlapping interferers compound
// independently: a subframe survives with probability ∏(1-M[a][b]) over
// the on-air same-channel set.
type Matrix struct {
	P [][]float64
}

// Uniform returns an n-AP matrix with every off-diagonal entry p — the
// dense worst case where every co-channel neighbor hurts equally.
func Uniform(n int, p float64) *Matrix {
	m := &Matrix{P: make([][]float64, n)}
	for a := range m.P {
		m.P[a] = make([]float64, n)
		for b := range m.P[a] {
			if b != a {
				m.P[a][b] = p
			}
		}
	}
	return m
}

// At returns M[a][b], tolerating ragged or undersized matrices as zero.
func (m *Matrix) At(a, b int) float64 {
	if m == nil || a < 0 || a >= len(m.P) || b < 0 || b >= len(m.P[a]) {
		return 0
	}
	return m.P[a][b]
}

func (m *Matrix) validate(aps int) error {
	if len(m.P) != aps {
		return fmt.Errorf("cluster: interference matrix has %d rows for %d APs", len(m.P), aps)
	}
	for a, row := range m.P {
		if len(row) != aps {
			return fmt.Errorf("cluster: interference row %d has %d entries for %d APs", a, len(row), aps)
		}
		for b, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("cluster: interference[%d][%d] = %v outside [0,1]", a, b, p)
			}
		}
	}
	return nil
}

// interfCore couples the per-AP transport wrappers through one on-air
// bitmask. Real-time mode: each wrapper CASes its AP's bit in while its
// base Deliver runs, snapshots the overlap it actually saw, and degrades
// its verdicts accordingly. Deterministic mode: the runner sets the
// slot's transmission set explicitly before stepping deliveries, so the
// overlap is the coordinated set rather than a race outcome.
type interfCore struct {
	m       *Matrix
	channel []int // AP → channel
	seed    int64
	base    engine.Transport

	// onAir is the bitmask of APs currently delivering (bit a = AP a).
	// 64 bits bounds the cluster at 64 APs, far above the simulated
	// building sizes this targets; New rejects larger clusters.
	onAir atomic.Uint64

	// fixedOn freezes the overlap mask to fixedMask: the deterministic
	// runner's coordinated transmission set. Off means live tracking via
	// onAir. Only mutated between slots in the single-threaded
	// deterministic loop.
	fixedOn   bool
	fixedMask uint64
}

func newInterfCore(cfg Config, base engine.Transport) *interfCore {
	ic := &interfCore{
		m:       cfg.Interference,
		channel: make([]int, cfg.APs),
		seed:    cfg.InterferenceSeed,
		base:    base,
	}
	for a := range ic.channel {
		ic.channel[a] = cfg.channelOf(a)
	}
	return ic
}

// setFixedMask pins the overlap mask (deterministic mode).
func (ic *interfCore) setFixedMask(mask uint64) {
	ic.fixedOn = true
	ic.fixedMask = mask
}

// transportFor wraps the base transport for AP a.
func (ic *interfCore) transportFor(a int) engine.Transport {
	return &apTransport{core: ic, ap: a}
}

// apTransport is AP a's view of the shared interference core.
type apTransport struct {
	core *interfCore
	ap   int
}

// Deliver marks the AP on air, runs the base transport, then erases data
// subframes that the concurrent same-channel set destroyed. The base
// verdicts are computed first so the wrapper only ever demotes true to
// false — interference never rescues a lost subframe.
func (t *apTransport) Deliver(ctx context.Context, plan *engine.Plan) ([]bool, error) {
	ic := t.core
	bit := uint64(1) << uint(t.ap)

	var overlap uint64
	if ic.fixedOn {
		overlap = ic.fixedMask &^ bit
	} else {
		// Mark ourselves on air and remember who we overlapped with: the
		// set present at any point during our delivery. Snapshot after the
		// base Deliver too, so a transmission that started mid-flight
		// still counts (both sides see each other: it reads the mask with
		// our bit already set).
		pre := ic.onAir.Or(bit)
		defer ic.onAir.And(^bit)
		overlap = pre &^ bit
	}

	ok, err := ic.base.Deliver(ctx, plan)
	if !ic.fixedOn {
		overlap |= ic.onAir.Load() &^ bit
	}
	if err != nil || overlap == 0 {
		return ok, err
	}

	dataSubs := plan.DataSubs
	if dataSubs == 0 {
		dataSubs = len(plan.Subs)
	}
	for b := 0; overlap != 0 && b < len(ic.channel); b++ {
		if overlap&(1<<uint(b)) == 0 || ic.channel[b] != ic.channel[t.ap] {
			continue
		}
		p := ic.m.At(t.ap, b)
		if p <= 0 {
			continue
		}
		for i := 0; i < dataSubs; i++ {
			if ok[i] && erased(ic.seed, plan.Seq, t.ap, b, i, p) {
				ok[i] = false
			}
		}
	}
	return ok, err
}

// erased draws the deterministic per-(transmission, interferer, subframe)
// erasure coin: a splitmix64 avalanche over the tuple, mapped to [0,1).
// The draw depends only on the tuple and the seed, so deterministic runs
// reproduce bit-for-bit and the two directions of a collision draw
// independent coins.
func erased(seed int64, txSeq uint64, ap, from, sub int, p float64) bool {
	x := uint64(seed) ^ txSeq*0x9e3779b97f4a7c15
	x ^= uint64(ap)<<40 | uint64(from)<<20 | uint64(sub)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Top 53 bits → uniform [0,1).
	return float64(x>>11)/(1<<53) < p
}
