// Package cluster runs N engine.Engine shards — one per simulated AP —
// behind one serving surface: a rendezvous-hash STA→AP map with roaming
// handoff that migrates a station's queue between APs (preserving
// per-STA FIFO and retry/backoff state via engine.ExtractSTA/InjectSTA),
// a cross-AP co-channel interference model that degrades concurrent
// same-channel transmissions' loss oracles, and a coordination scheduler
// — greedy spatial reuse or a learning multi-armed bandit — that picks
// which APs transmit together in the deterministic virtual-clock mode.
//
// The cluster satisfies engine.ServerBackend, so cmd/carpoold serves a
// whole building from one process (`-aps=N -channels=M`): ingest routes
// by the STA→AP map, Stats/Telemetry roll the per-AP accounting up into
// cluster totals with a per-AP breakdown, and RecRoam wire records drive
// live handoffs. A one-AP cluster is transparent: no interference
// wrapping, passthrough routing, and Stats identical to the bare engine
// (the cluster-vs-single conformance pair pins the deterministic mode
// dump-identical).
//
// Concurrency contract: the submit path reads the STA→AP map with one
// atomic load and takes no cluster lock, so stations flow independently
// — a handoff in progress never stalls other stations' admissions. The
// map is written only by Roam (serialized on an internal mutex) and the
// single-threaded deterministic runner. Per-STA FIFO across a handoff
// therefore requires exactly what per-STA FIFO already means: one
// logical stream drives any given station, issuing its submits and
// roams in order (the wire server's per-connection read loop does this
// naturally). Engine workers take no cluster locks, so the in-flight
// transmission a roam waits out settles while Roam polls.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"carpool/internal/engine"
)

// Typed cluster errors.
var (
	// ErrBadAP rejects a roam to an AP index outside the cluster.
	ErrBadAP = errors.New("cluster: AP index out of range")
	// ErrDraining rejects roams once a drain has begun (queues are being
	// flushed in place; moving one mid-drain could strand frames).
	ErrDraining = errors.New("cluster: draining")
)

// Config parameterizes a cluster.
type Config struct {
	// APs is the number of engine shards (one per simulated AP); >= 1.
	APs int
	// Channels is the number of radio channels the APs spread over
	// (default: min(APs, 3), the classic non-overlapping 2.4 GHz set).
	// AP a serves channel a % Channels unless Channel overrides it.
	Channels int
	// Channel, when non-nil, pins each AP's channel explicitly
	// (len(Channel) == APs, entries in [0, Channels)).
	Channel []int
	// Interference, when non-nil, couples co-channel APs: M[a][b] is the
	// probability a data subframe at AP a is erased by a concurrent
	// transmission from AP b on the same channel. Nil leaves transports
	// unwrapped — a one-AP cluster then runs the bare engine's exact
	// delivery path.
	Interference *Matrix
	// InterferenceSeed parameterizes the deterministic erasure draws.
	InterferenceSeed int64
	// Policy coordinates which APs transmit concurrently in the
	// deterministic runner (nil: AllPolicy — every AP with eligible
	// backlog transmits every slot). The real-time mode is uncoordinated:
	// workers transmit freely and the interference mask tracks actual
	// on-air overlap.
	Policy Policy
	// Routes, when non-nil, pins the initial STA→AP map explicitly
	// (len(Routes) == NumSTAs); nil uses rendezvous hashing.
	Routes []int
	// Engine is the per-AP engine template: every AP gets this config,
	// sized for the full station space (any station can roam to any AP).
	// Engine.Clock is overridden with one shared clock so backoff
	// deadlines survive migration; Engine.Transport, when interference is
	// configured, is wrapped per-AP (implementations must tolerate
	// concurrent Deliver calls from several engines — the stock oracle
	// and PHY transports do).
	Engine engine.Config
}

func (c Config) withDefaults() (Config, error) {
	if c.APs < 1 {
		return c, fmt.Errorf("cluster: need at least one AP, got %d", c.APs)
	}
	if c.APs > 64 {
		// The interference core and scheduler track transmission sets as
		// 64-bit AP masks.
		return c, fmt.Errorf("cluster: at most 64 APs, got %d", c.APs)
	}
	if c.Channels == 0 {
		c.Channels = min(c.APs, 3)
	}
	if c.Channels < 1 {
		return c, fmt.Errorf("cluster: non-positive Channels %d", c.Channels)
	}
	if c.Channel != nil {
		if len(c.Channel) != c.APs {
			return c, fmt.Errorf("cluster: %d Channel entries for %d APs", len(c.Channel), c.APs)
		}
		for a, ch := range c.Channel {
			if ch < 0 || ch >= c.Channels {
				return c, fmt.Errorf("cluster: AP %d channel %d outside 0..%d", a, ch, c.Channels-1)
			}
		}
	}
	if c.Interference != nil {
		if err := c.Interference.validate(c.APs); err != nil {
			return c, err
		}
		if c.Engine.Strategy == engine.StrategyFEC {
			// The interference wrapper degrades plain Deliver verdicts; the
			// FEC delivery path bypasses it. Combine them in a later PR.
			return c, fmt.Errorf("cluster: interference model does not support StrategyFEC")
		}
	}
	if c.Routes != nil && c.Engine.NumSTAs > 0 && len(c.Routes) != c.Engine.NumSTAs {
		return c, fmt.Errorf("cluster: %d Routes entries for %d stations", len(c.Routes), c.Engine.NumSTAs)
	}
	return c, nil
}

// channelOf returns AP a's channel under cfg.
func (c Config) channelOf(a int) int {
	if c.Channel != nil {
		return c.Channel[a]
	}
	return a % c.Channels
}

// Cluster is a running (or deterministically stepped) multi-AP serving
// group.
type Cluster struct {
	cfg     Config
	engines []*engine.Engine
	channel []int // AP → channel

	// interf is the shared on-air interference core (nil without a
	// matrix): each AP's transport wrapper marks itself on air during
	// Deliver and degrades its verdicts by the same-channel APs it
	// overlapped.
	interf *interfCore

	// routes is the STA→AP map: atomic loads on the submit path, stores
	// only under roamMu (Roam) or from the single-threaded deterministic
	// runner. FIFO across a handoff leans on the package's concurrency
	// contract — one logical stream per station — not on a global lock.
	routes []int32
	roams  atomic.Int64

	// roamMu serializes handoffs and guards draining; acquiring it in
	// Drain doubles as the barrier that lets an in-progress roam land
	// before the engines start flushing.
	roamMu   sync.Mutex
	draining bool
}

// New validates cfg and builds the cluster's engines (not started —
// Start launches every AP's worker pool; the deterministic runner
// instead steps them itself).
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}

	ecfg := cfg.Engine
	if ecfg.Clock == nil {
		ecfg.Clock = engine.NewWallClock()
	}
	if cfg.Interference != nil {
		if ecfg.Transport == nil {
			// Materialize the engine's default here: the wrapper needs the
			// base transport before engine.New would fill it in (FEC is
			// rejected with interference, so the retry default applies).
			ecfg.Transport = &engine.OracleTransport{}
		}
		c.interf = newInterfCore(cfg, ecfg.Transport)
	}
	c.engines = make([]*engine.Engine, cfg.APs)
	c.channel = make([]int, cfg.APs)
	for a := range c.engines {
		c.channel[a] = cfg.channelOf(a)
		apCfg := ecfg
		if c.interf != nil {
			apCfg.Transport = c.interf.transportFor(a)
		}
		e, err := engine.New(apCfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: AP %d: %w", a, err)
		}
		c.engines[a] = e
	}

	numSTAs := c.engines[0].NumSTAs()
	c.routes = make([]int32, numSTAs)
	for sta := range c.routes {
		if cfg.Routes != nil {
			ap := cfg.Routes[sta]
			if ap < 0 || ap >= cfg.APs {
				return nil, fmt.Errorf("cluster: Routes[%d] = %d outside 0..%d", sta, ap, cfg.APs-1)
			}
			c.routes[sta] = int32(ap)
		} else {
			c.routes[sta] = int32(HomeAP(sta, cfg.APs))
		}
	}
	return c, nil
}

// NumAPs returns the cluster size.
func (c *Cluster) NumAPs() int { return len(c.engines) }

// EngineAt returns AP a's engine (tests and the deterministic runner).
func (c *Cluster) EngineAt(a int) *engine.Engine { return c.engines[a] }

// ChannelOf returns AP a's radio channel.
func (c *Cluster) ChannelOf(a int) int { return c.channel[a] }

// APOf returns station sta's current AP.
func (c *Cluster) APOf(sta int) int { return c.apFor(sta) }

// Start launches every AP's delivery worker pool.
func (c *Cluster) Start(ctx context.Context) error {
	for a, e := range c.engines {
		if err := e.Start(ctx); err != nil {
			return fmt.Errorf("cluster: starting AP %d: %w", a, err)
		}
	}
	return nil
}

// apFor resolves station sta's AP with one atomic route load.
// Out-of-range stations route to AP 0, whose admission core rejects them
// with the engine's own typed error.
func (c *Cluster) apFor(sta int) int {
	if sta < 0 || sta >= len(c.routes) {
		return 0
	}
	return int(atomic.LoadInt32(&c.routes[sta]))
}

// Submit routes one frame to its station's AP (engine.ServerBackend).
func (c *Cluster) Submit(sta int, payload []byte) error {
	return c.engines[c.apFor(sta)].Submit(sta, payload)
}

// SubmitSize routes one size-only frame to its station's AP.
func (c *Cluster) SubmitSize(sta, size int) error {
	return c.engines[c.apFor(sta)].SubmitSize(sta, size)
}

// SubmitBatch partitions a mixed-STA batch by AP and submits each AP's
// run as one engine batch. Like the engine's own batch admission it
// returns the number accepted and the first error in batch order.
func (c *Cluster) SubmitBatch(items []engine.BatchItem) (int, error) {
	if len(c.engines) == 1 {
		return c.engines[0].SubmitBatch(items)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	if len(sc.buckets) < len(c.engines) {
		sc.buckets = make([][]engine.BatchItem, len(c.engines))
	}
	buckets := sc.buckets[:len(c.engines)]

	for _, it := range items {
		buckets[c.apFor(it.STA)] = append(buckets[c.apFor(it.STA)], it)
	}
	accepted := 0
	var firstErr error
	for a := range buckets {
		if len(buckets[a]) == 0 {
			continue
		}
		n, err := c.engines[a].SubmitBatch(buckets[a])
		accepted += n
		if firstErr == nil {
			firstErr = err
		}
		buckets[a] = buckets[a][:0]
	}
	batchScratchPool.Put(sc)
	return accepted, firstErr
}

// batchScratch pools the per-AP partition buffers SubmitBatch uses.
type batchScratch struct {
	buckets [][]engine.BatchItem
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// Roam migrates station sta to AP ap: the station's queued frames,
// retry counts, and backoff gate move as one unit, then the route flips,
// so a caller honoring the per-station stream contract sees strict FIFO
// across the handoff — frames submitted before the roam migrate with the
// queue, frames after land at the new AP behind them. A station with
// frames in flight is retried until its transmission settles (the first
// failed extraction gates the station against further planning, so the
// wait is one settlement, not a race against the planner). A no-op roam
// (already at ap) succeeds immediately.
func (c *Cluster) Roam(sta, ap int) error {
	if ap < 0 || ap >= len(c.engines) {
		return ErrBadAP
	}
	if sta < 0 || sta >= len(c.routes) {
		return fmt.Errorf("cluster: station %d outside 0..%d", sta, len(c.routes)-1)
	}
	c.roamMu.Lock()
	defer c.roamMu.Unlock()
	if c.draining {
		return ErrDraining
	}
	from := int(atomic.LoadInt32(&c.routes[sta]))
	if from == ap {
		return nil
	}
	for {
		st, err := c.engines[from].ExtractSTA(sta)
		if err == nil {
			if err = c.engines[ap].InjectSTA(st); err != nil {
				// Target occupied (frames landed there under a stale route —
				// impossible while routes are mutated only here, but kept
				// defensive): put the state back where it came from.
				_ = c.engines[from].InjectSTA(st)
				return err
			}
			atomic.StoreInt32(&c.routes[sta], int32(ap))
			c.roams.Add(1)
			return nil
		}
		if !errors.Is(err, engine.ErrSTAInFlight) {
			return err
		}
		runtime.Gosched() // transmission in flight: let it settle, retry
	}
}

// Roams returns the number of completed handoffs.
func (c *Cluster) Roams() int64 { return c.roams.Load() }

// Drain gracefully stops every AP concurrently: new submissions reject
// with the engine's ErrDraining, queued and in-flight frames deliver or
// exhaust retries, then the pools exit. Roams reject for the duration;
// taking roamMu to set the flag doubles as the barrier that lets a
// handoff already past its own check land before the flush starts.
func (c *Cluster) Drain(ctx context.Context) error {
	c.roamMu.Lock()
	c.draining = true
	c.roamMu.Unlock()
	errs := make(chan error, len(c.engines))
	for _, e := range c.engines {
		go func(e *engine.Engine) { errs <- e.Drain(ctx) }(e)
	}
	var first error
	for range c.engines {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stopped reports whether every AP has fully stopped.
func (c *Cluster) Stopped() bool {
	for _, e := range c.engines {
		if !e.Stopped() {
			return false
		}
	}
	return true
}

// Close aborts every AP immediately.
func (c *Cluster) Close() {
	c.roamMu.Lock()
	c.draining = true
	c.roamMu.Unlock()
	for _, e := range c.engines {
		e.Close()
	}
}

// rendezvousHash is the highest-random-weight mix: a splitmix64-style
// avalanche over (sta, ap) giving every station an independent uniform
// preference order over APs, so adding an AP moves only ~1/N stations.
func rendezvousHash(sta, ap int) uint64 {
	x := uint64(sta)*0x9e3779b97f4a7c15 ^ uint64(ap)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HomeAP returns station sta's rendezvous-hash home AP among n APs —
// the cluster's initial (and carpoolload's striping) STA→AP map.
func HomeAP(sta, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestW := 0, uint64(0)
	for a := 0; a < n; a++ {
		if w := rendezvousHash(sta, a); a == 0 || w > bestW {
			best, bestW = a, w
		}
	}
	return best
}
