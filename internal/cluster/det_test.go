package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"carpool/internal/engine"
	"carpool/internal/sim"
	"carpool/internal/traffic"
)

// detFlows is the shared deterministic workload: Poisson arrivals per
// station, the same shape the conformance scenarios use.
func detFlows(numSTAs int, seed int64, dur time.Duration) [][]traffic.Arrival {
	flows := make([][]traffic.Arrival, numSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, sta*7919)))
		flows[sta] = traffic.PoissonFlow(rng, 350, 500+20*sta, dur)
	}
	return flows
}

// TestClusterVsSingleDumpIdentical is the unit-level form of the
// cluster-vs-single conformance pair: a one-AP cluster's deterministic
// run must reproduce engine.RunDeterministic's Stats dump-identically —
// same loop, same stepper internals, same final snapshot.
func TestClusterVsSingleDumpIdentical(t *testing.T) {
	ecfg := engine.Config{NumSTAs: 6, MaxLatency: 80 * time.Millisecond}
	base, err := engine.RunDeterministic(context.Background(), ecfg, detFlows(6, 11, 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := RunDeterministic(context.Background(), Config{APs: 1, Engine: ecfg},
		detFlows(6, 11, 400*time.Millisecond), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", cl.Total), fmt.Sprintf("%#v", *base); got != want {
		t.Fatalf("one-AP cluster diverges from the bare engine:\n cluster %s\n engine  %s", got, want)
	}
	if len(cl.PerAP) != 1 || fmt.Sprintf("%#v", cl.PerAP[0]) != fmt.Sprintf("%#v", *base) {
		t.Fatal("PerAP[0] is not the engine stats verbatim")
	}
}

// TestClusterDeterministicReproducible pins the multi-AP runner itself:
// same (config, flows, roams) triple, same Stats, including interference
// draws and bandit decisions.
func TestClusterDeterministicReproducible(t *testing.T) {
	run := func() *Stats {
		cfg := Config{
			APs:              3,
			Channels:         1,
			Interference:     Uniform(3, 0.3),
			InterferenceSeed: 5,
			Policy:           NewBandit([]int{0, 0, 0}, BanditConfig{Seed: 9}),
			Engine:           engine.Config{NumSTAs: 9, RetryLimit: 64},
		}
		st, err := RunDeterministic(context.Background(), cfg,
			detFlows(9, 21, 200*time.Millisecond), nil, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if fmt.Sprintf("%#v", a) != fmt.Sprintf("%#v", b) {
		t.Fatalf("deterministic cluster run not reproducible:\n a %+v\n b %+v", a.Total, b.Total)
	}
}

// TestClusterRoamEventsLossless asserts the deterministic handoff
// preserves work: a 3-AP lossless cluster with scripted mid-run roams
// still delivers every offered byte, with per-STA delivered bytes equal
// to the single-engine run's (migration changes where a frame is served,
// never whether or what).
func TestClusterRoamEventsLossless(t *testing.T) {
	const numSTAs = 6
	flows := detFlows(numSTAs, 31, 300*time.Millisecond)
	ecfg := engine.Config{NumSTAs: numSTAs}
	base, err := engine.RunDeterministic(context.Background(), ecfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	var roams []RoamEvent
	for i := 0; i < 24; i++ {
		roams = append(roams, RoamEvent{
			At:  time.Duration(i+1) * 12 * time.Millisecond,
			STA: i % numSTAs,
			AP:  (i/numSTAs + i) % 3,
		})
	}
	cl, err := RunDeterministic(context.Background(), Config{APs: 3, Engine: ecfg},
		detFlows(numSTAs, 31, 300*time.Millisecond), roams, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Roams == 0 {
		t.Fatal("no roam applied")
	}
	if cl.Total.Pending != 0 {
		t.Fatalf("pending %d after drain", cl.Total.Pending)
	}
	if cl.Total.Delivered != base.Delivered || cl.Total.DeliveredBytes != base.DeliveredBytes {
		t.Fatalf("roaming cluster delivered %d/%dB, single engine %d/%dB",
			cl.Total.Delivered, cl.Total.DeliveredBytes, base.Delivered, base.DeliveredBytes)
	}
	for sta := range base.DeliveredBytesPerSTA {
		if cl.Total.DeliveredBytesPerSTA[sta] != base.DeliveredBytesPerSTA[sta] {
			t.Fatalf("station %d delivered %dB across roams, want %dB", sta,
				cl.Total.DeliveredBytesPerSTA[sta], base.DeliveredBytesPerSTA[sta])
		}
	}
}

// interferenceSweepCase runs one policy over the asserted interference
// topology: four APs on one channel where APs 0 and 1 are mutually
// compatible (reuse pays) while 2 and 3 jam everything near them —
// blind maximum reuse collapses, pure serialization leaves the {0,1}
// gain on the table.
func interferenceSweepCase(t *testing.T, policy Policy, seed int64) engine.Stats {
	t.Helper()
	m := Uniform(4, 0.85)
	m.P[0][1], m.P[1][0] = 0.02, 0.02
	cfg := Config{
		APs:              4,
		Channels:         1,
		Interference:     m,
		InterferenceSeed: seed,
		Policy:           policy,
		// MaxAggBytes bounds the slot length: under saturation the planner
		// packs aggregates to the byte ceiling, and at the default 64 KiB
		// one slot occupies ~10ms of air — a 250ms horizon then holds
		// ~25 slots, fewer than the bandit's fifteen arms. 8 KiB slots
		// give the run a few hundred decisions so exploration amortizes.
		// BackoffCap keeps a jammed slot's failures from gating stations
		// for the default 10ms (dozens of slots of idle air per mistake).
		Engine: engine.Config{
			NumSTAs: 16, RetryLimit: 128, QueueCap: 4096,
			MaxAggBytes: 8 << 10,
			BackoffCap:  time.Millisecond,
		},
	}
	// Saturating arrivals: every station offers steady CBR well past what
	// the shared channel can carry, so throughput is coordination-bound.
	flows := make([][]traffic.Arrival, 16)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(41, sta)))
		flows[sta] = traffic.CBRFlow(rng, 1000, 500*time.Microsecond, 250*time.Millisecond)
	}
	st, err := RunDeterministic(context.Background(), cfg, flows, nil, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return st.Total
}

// TestBanditBeatsRoundRobinUnderInterference is the learning acceptance
// criterion: on the sweep topology the epsilon-greedy bandit must
// out-deliver the round-robin serializer (it learns to fire the
// compatible {0,1} pair together and isolate the jammers), and blind
// all-on reuse must trail round-robin (interference destroys most of
// what it sends). Epsilon-greedy rather than UCB1: the horizon is a few
// hundred slots against fifteen arms, and UCB1's confidence bonus keeps
// it cycling jammed arms for most of that — the regime favors committing
// to the first clearly-good arm over proving the bad ones bad.
func TestBanditBeatsRoundRobinUnderInterference(t *testing.T) {
	all := interferenceSweepCase(t, AllPolicy{}, 5)
	rr := interferenceSweepCase(t, &RoundRobinPolicy{}, 5)
	bandit := interferenceSweepCase(t, NewBandit([]int{0, 0, 0, 0}, BanditConfig{Epsilon: 0.08, Seed: 17}), 5)
	t.Logf("delivered bytes — all: %d, round-robin: %d, bandit: %d",
		all.DeliveredBytes, rr.DeliveredBytes, bandit.DeliveredBytes)
	if bandit.DeliveredBytes <= rr.DeliveredBytes {
		t.Errorf("bandit (%dB) failed to beat round-robin (%dB)",
			bandit.DeliveredBytes, rr.DeliveredBytes)
	}
	if all.DeliveredBytes >= bandit.DeliveredBytes {
		t.Errorf("blind reuse (%dB) matched the bandit (%dB) — interference model inert",
			all.DeliveredBytes, bandit.DeliveredBytes)
	}
}

// TestGreedyMatchesMatrixKnowledge: with the matrix in hand the greedy
// baseline should also clear round-robin on the sweep topology.
func TestGreedyMatchesMatrixKnowledge(t *testing.T) {
	m := Uniform(4, 0.85)
	m.P[0][1], m.P[1][0] = 0.02, 0.02
	greedy := interferenceSweepCase(t, NewGreedy(m, []int{0, 0, 0, 0}, 0.05), 5)
	rr := interferenceSweepCase(t, &RoundRobinPolicy{}, 5)
	if greedy.DeliveredBytes <= rr.DeliveredBytes {
		t.Errorf("greedy (%dB) failed to beat round-robin (%dB)",
			greedy.DeliveredBytes, rr.DeliveredBytes)
	}
}
