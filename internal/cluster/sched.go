package cluster

import (
	"math"
	"math/bits"
	"math/rand"
	"time"
)

// Policy coordinates spatial reuse in the deterministic runner: each
// slot it picks which of the backlogged APs transmit together, then
// observes what the chosen set delivered. Implementations are called
// from one goroutine with a strict Pick/Observe alternation — no
// internal locking needed.
type Policy interface {
	// Pick returns the transmission set for this slot as an AP bitmask,
	// given the candidates (APs with eligible backlog; never zero). The
	// runner intersects the result with candidates and falls back to the
	// lowest candidate bit if the intersection is empty, so a policy
	// cannot stall the cluster.
	Pick(candidates uint64) uint64
	// Observe reports the slot's outcome for the set actually
	// transmitted: per-AP delivered payload bytes and the slot's air
	// occupancy. Called once after every Pick, including fallback slots.
	Observe(set uint64, bytesPerAP []int64, slotAir time.Duration)
}

// AllPolicy transmits every backlogged AP every slot — maximum spatial
// reuse, maximum interference. The default, and exactly the bare
// engine's behavior when the cluster has one AP.
type AllPolicy struct{}

func (AllPolicy) Pick(candidates uint64) uint64          { return candidates }
func (AllPolicy) Observe(uint64, []int64, time.Duration) {}

// RoundRobinPolicy transmits exactly one AP per slot, rotating through
// the backlogged set — zero co-channel interference, minimum reuse. The
// coordination floor the bandit must beat.
type RoundRobinPolicy struct {
	next int
}

func (p *RoundRobinPolicy) Pick(candidates uint64) uint64 {
	n := 64
	for i := 0; i < n; i++ {
		a := (p.next + i) % n
		if candidates&(1<<uint(a)) != 0 {
			p.next = (a + 1) % n
			return 1 << uint(a)
		}
	}
	return candidates // unreachable: candidates is never zero
}

func (p *RoundRobinPolicy) Observe(uint64, []int64, time.Duration) {}

// GreedyPolicy is the spatial-reuse baseline: a rotating greedy walk
// that admits an AP when its pairwise interference with everything
// already admitted stays at or below a threshold. With a block-diagonal
// matrix it discovers the compatible groups exactly; the rotation keeps
// the walk order fair so no AP is systematically admitted last.
type GreedyPolicy struct {
	m         *Matrix
	channel   []int
	threshold float64
	start     int
}

// NewGreedy builds the baseline for a cluster's matrix and channel map
// (as built by Config.channelOf). APs on different channels never
// interfere and are always jointly admissible.
func NewGreedy(m *Matrix, channel []int, threshold float64) *GreedyPolicy {
	return &GreedyPolicy{m: m, channel: channel, threshold: threshold}
}

func (p *GreedyPolicy) Pick(candidates uint64) uint64 {
	n := len(p.channel)
	if n == 0 {
		return candidates
	}
	var set uint64
	for i := 0; i < n; i++ {
		a := (p.start + i) % n
		if candidates&(1<<uint(a)) == 0 {
			continue
		}
		ok := true
		for b := 0; b < n; b++ {
			if set&(1<<uint(b)) == 0 || p.channel[b] != p.channel[a] {
				continue
			}
			if p.m.At(a, b) > p.threshold || p.m.At(b, a) > p.threshold {
				ok = false
				break
			}
		}
		if ok {
			set |= 1 << uint(a)
		}
	}
	p.start = (p.start + 1) % n
	return set
}

func (p *GreedyPolicy) Observe(uint64, []int64, time.Duration) {}

// BanditConfig parameterizes a BanditPolicy.
type BanditConfig struct {
	// Epsilon, when positive, selects epsilon-greedy exploration: with
	// probability Epsilon a uniform random arm, otherwise the best mean.
	// Zero selects UCB1.
	Epsilon float64
	// UCBWeight scales the UCB1 confidence bonus (default sqrt(2)).
	UCBWeight float64
	// Seed drives the epsilon-greedy coin and arm draws.
	Seed int64
}

// BanditPolicy learns which AP subsets to transmit together from the
// observed delivered-bytes-per-airtime reward — no knowledge of the
// interference matrix. Arms are per-channel-group transmission subsets:
// APs on different channels never interfere, so the groups factor and
// the policy runs one independent bandit per channel group (arm space
// 2^k - 1 per group, capped at 6 APs per group before falling back to
// the all-candidates arm). Rewards use UCB1 or epsilon-greedy per
// BanditConfig.
type BanditPolicy struct {
	cfg    BanditConfig
	groups []banditGroup
	rng    *rand.Rand
}

// banditGroup is one channel's independent bandit.
type banditGroup struct {
	members []int // AP indices in this channel group, ascending
	// arms[i] is the transmission subset encoded over members: bit j of
	// the arm index+1 selects members[j]. Stats are running mean reward
	// (delivered bytes per second of air) and pull count.
	count []int64
	mean  []float64
	total int64
	// maxReward is the largest single-slot reward seen in this group —
	// the normalization scale that keeps the UCB1 confidence bonus
	// commensurable with raw bytes-per-second rewards (unnormalized, the
	// bonus is negligible and UCB degenerates into pure greedy, locking
	// onto whichever arm got a lucky first pull).
	maxReward float64
	// last is the arm pulled by the pending Pick (-1 when none, or when
	// the group fell back to the uncapped all-members arm).
	last int
}

// banditGroupCap bounds the subset enumeration: a group with more
// members than this gets no learned arms and always transmits all its
// candidates (the AllPolicy behavior, scoped to that group).
const banditGroupCap = 6

// NewBandit builds a learning policy for a cluster's channel map.
func NewBandit(channel []int, cfg BanditConfig) *BanditPolicy {
	if cfg.UCBWeight <= 0 {
		cfg.UCBWeight = math.Sqrt2
	}
	p := &BanditPolicy{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	byCh := map[int][]int{}
	chans := []int{}
	for a, ch := range channel {
		if _, ok := byCh[ch]; !ok {
			chans = append(chans, ch)
		}
		byCh[ch] = append(byCh[ch], a)
	}
	for _, ch := range chans {
		g := banditGroup{members: byCh[ch], last: -1}
		if len(g.members) <= banditGroupCap {
			nArms := (1 << uint(len(g.members))) - 1
			g.count = make([]int64, nArms)
			g.mean = make([]float64, nArms)
		}
		p.groups = append(p.groups, g)
	}
	return p
}

// Pick runs each channel group's bandit over the group's candidate
// subsets and unions the chosen sets.
func (p *BanditPolicy) Pick(candidates uint64) uint64 {
	var set uint64
	for gi := range p.groups {
		g := &p.groups[gi]
		g.last = -1
		// The group's candidate mask over member positions.
		var cand int
		for j, a := range g.members {
			if candidates&(1<<uint(a)) != 0 {
				cand |= 1 << uint(j)
			}
		}
		if cand == 0 {
			continue
		}
		if g.count == nil || bits.OnesCount(uint(cand)) == 1 {
			// Uncapped group, or only one member backlogged: nothing to
			// learn this slot, transmit all candidates.
			set |= expand(cand, g.members)
			continue
		}
		arm := g.pickArm(cand, p.cfg, p.rng)
		g.last = arm
		set |= expand(arm+1, g.members)
	}
	return set
}

// expand maps a member-position mask to the global AP mask.
func expand(posMask int, members []int) uint64 {
	var out uint64
	for j, a := range members {
		if posMask&(1<<uint(j)) != 0 {
			out |= 1 << uint(a)
		}
	}
	return out
}

// pickArm chooses among the arms that are subsets of cand (arm index i
// encodes subset i+1, so every arm is non-empty).
func (g *banditGroup) pickArm(cand int, cfg BanditConfig, rng *rand.Rand) int {
	// Untried feasible arms first, in index order: every arm gets one
	// pull before exploitation starts.
	feasible := make([]int, 0, len(g.count))
	for i := range g.count {
		if (i+1)&^cand != 0 {
			continue // arm transmits an AP with no backlog
		}
		feasible = append(feasible, i)
		if g.count[i] == 0 {
			return i
		}
	}
	if cfg.Epsilon > 0 {
		if rng.Float64() < cfg.Epsilon {
			return feasible[rng.Intn(len(feasible))]
		}
		best := feasible[0]
		for _, i := range feasible[1:] {
			if g.mean[i] > g.mean[best] {
				best = i
			}
		}
		return best
	}
	// UCB1 over normalized means: mean/maxReward + w*sqrt(ln(total)/count).
	scale := g.maxReward
	if scale <= 0 {
		scale = 1
	}
	lt := math.Log(float64(g.total + 1))
	best, bestV := feasible[0], math.Inf(-1)
	for _, i := range feasible {
		v := g.mean[i]/scale + cfg.UCBWeight*math.Sqrt(lt/float64(g.count[i]))
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Observe credits each group's pulled arm with the group's delivered
// bytes per second of slot airtime.
func (p *BanditPolicy) Observe(set uint64, bytesPerAP []int64, slotAir time.Duration) {
	if slotAir <= 0 {
		return
	}
	sec := slotAir.Seconds()
	for gi := range p.groups {
		g := &p.groups[gi]
		if g.last < 0 {
			continue
		}
		var got int64
		for _, a := range g.members {
			if set&(1<<uint(a)) != 0 && a < len(bytesPerAP) {
				got += bytesPerAP[a]
			}
		}
		reward := float64(got) / sec
		if reward > g.maxReward {
			g.maxReward = reward
		}
		i := g.last
		g.count[i]++
		g.total++
		g.mean[i] += (reward - g.mean[i]) / float64(g.count[i])
		g.last = -1
	}
}
