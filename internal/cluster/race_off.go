//go:build !race

package cluster

// raceEnabled lets throughput-floor tests scale their expectations under
// the race detector's instrumentation overhead.
const raceEnabled = false
