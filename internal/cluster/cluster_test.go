package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"carpool/internal/engine"
)

func TestConfigValidation(t *testing.T) {
	base := engine.Config{NumSTAs: 4}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero APs", Config{Engine: base}},
		{"too many APs", Config{APs: 65, Engine: base}},
		{"bad channel count", Config{APs: 2, Channels: -1, Engine: base}},
		{"channel map wrong length", Config{APs: 2, Channel: []int{0}, Engine: base}},
		{"channel out of range", Config{APs: 2, Channels: 2, Channel: []int{0, 5}, Engine: base}},
		{"matrix wrong shape", Config{APs: 2, Interference: Uniform(3, 0.1), Engine: base}},
		{"matrix out of range", Config{APs: 2, Interference: &Matrix{P: [][]float64{{0, 2}, {0, 0}}}, Engine: base}},
		{"routes wrong length", Config{APs: 2, Routes: []int{0}, Engine: base}},
		{"routes out of range", Config{APs: 2, Routes: []int{0, 0, 9, 0}, Engine: base}},
		{"fec with interference", Config{APs: 2, Interference: Uniform(2, 0.1),
			Engine: engine.Config{NumSTAs: 4, Strategy: engine.StrategyFEC}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(Config{APs: 4, Interference: Uniform(4, 0.2), Engine: base}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHomeAPSpreadsStations(t *testing.T) {
	const aps, stas = 4, 256
	seen := make([]int, aps)
	for sta := 0; sta < stas; sta++ {
		a := HomeAP(sta, aps)
		if a < 0 || a >= aps {
			t.Fatalf("HomeAP(%d, %d) = %d", sta, aps, a)
		}
		if a != HomeAP(sta, aps) {
			t.Fatalf("HomeAP not deterministic for sta %d", sta)
		}
		seen[a]++
	}
	for a, n := range seen {
		// Rendezvous hashing over 256 stations should land well away from
		// empty on every AP; a loose floor catches a broken hash.
		if n < stas/aps/4 {
			t.Errorf("AP %d serves %d of %d stations — hash badly skewed %v", a, n, stas, seen)
		}
	}
}

func TestSubmitRoutesAndRoamMovesBacklog(t *testing.T) {
	c, err := New(Config{
		APs:    2,
		Routes: []int{0, 1, 0, 1},
		Engine: engine.Config{NumSTAs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for sta := 0; sta < 4; sta++ {
		for k := 0; k < 3; k++ {
			if err := c.SubmitSize(sta, 500); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p0, p1 := c.EngineAt(0).Stats().Pending, c.EngineAt(1).Stats().Pending; p0 != 6 || p1 != 6 {
		t.Fatalf("pending split %d/%d, want 6/6", p0, p1)
	}
	if err := c.Roam(0, 1); err != nil {
		t.Fatal(err)
	}
	if ap := c.APOf(0); ap != 1 {
		t.Fatalf("station 0 at AP %d after roam", ap)
	}
	if p0, p1 := c.EngineAt(0).Stats().Pending, c.EngineAt(1).Stats().Pending; p0 != 3 || p1 != 9 {
		t.Fatalf("pending split %d/%d after roam, want 3/9", p0, p1)
	}
	// New frames for station 0 must now land at AP 1.
	if err := c.SubmitSize(0, 500); err != nil {
		t.Fatal(err)
	}
	if p1 := c.EngineAt(1).Stats().Pending; p1 != 10 {
		t.Fatalf("AP 1 pending %d after post-roam submit, want 10", p1)
	}
	if err := c.Roam(0, 5); err != ErrBadAP {
		t.Fatalf("roam to bad AP returned %v", err)
	}
	if c.Roams() != 1 {
		t.Fatalf("roam count %d, want 1", c.Roams())
	}
}

func TestRollupSingleAPIsVerbatim(t *testing.T) {
	s := engine.Stats{Accepted: 5, Delivered: 4, GoodputMbps: 1.25,
		DeliveredBytesPerSTA: []int64{100, 200}, LatencyP99Ms: 7}
	if got := rollup([]engine.Stats{s}); !reflect.DeepEqual(got, s) {
		t.Fatalf("single-AP rollup mutated stats:\n got %+v\nwant %+v", got, s)
	}
}

func TestRollupSumsCounters(t *testing.T) {
	a := engine.Stats{Accepted: 10, Delivered: 8, DeliveredBytes: 800,
		Transmissions: 4, Subframes: 8, Elapsed: 2 * time.Second,
		DeliveredBytesPerSTA: []int64{800, 0}, OfferedSTAs: []bool{true, false}}
	b := engine.Stats{Accepted: 6, Delivered: 6, DeliveredBytes: 600,
		Transmissions: 2, Subframes: 6, Elapsed: 3 * time.Second,
		DeliveredBytesPerSTA: []int64{0, 600}, OfferedSTAs: []bool{false, true}}
	got := rollup([]engine.Stats{a, b})
	if got.Accepted != 16 || got.Delivered != 14 || got.DeliveredBytes != 1400 {
		t.Fatalf("counters: %+v", got)
	}
	if got.Elapsed != 3*time.Second {
		t.Fatalf("elapsed %v, want max 3s", got.Elapsed)
	}
	if got.MeanGroupSize != 14.0/6.0 {
		t.Fatalf("mean group size %v", got.MeanGroupSize)
	}
	if want := []int64{800, 600}; !reflect.DeepEqual(got.DeliveredBytesPerSTA, want) {
		t.Fatalf("per-STA merge %v, want %v", got.DeliveredBytesPerSTA, want)
	}
	if got.ByteFairnessIndex <= 0.9 || got.ByteFairnessIndex > 1 {
		t.Fatalf("fairness %v over near-even split", got.ByteFairnessIndex)
	}
}

func TestGreedyDiscoversCompatibleGroups(t *testing.T) {
	// APs 0,1 are mutually silent; 2 and 3 jam everything. One channel.
	m := Uniform(4, 0.9)
	m.P[0][1], m.P[1][0] = 0, 0
	channel := []int{0, 0, 0, 0}
	g := NewGreedy(m, channel, 0.05)
	counts := map[uint64]int{}
	for i := 0; i < 4; i++ {
		counts[g.Pick(0b1111)]++
	}
	// Each rotation start yields a maximal compatible set; {0,1} must
	// appear together whenever either starts the walk, and 2 or 3 alone.
	for set := range counts {
		if set&0b0011 != 0 && set&0b0011 != 0b0011 {
			t.Errorf("greedy split the compatible pair: set %04b", set)
		}
		if set&0b1100 == 0b1100 {
			t.Errorf("greedy admitted both jammers: set %04b", set)
		}
	}
	// Different channels never conflict regardless of the matrix.
	g2 := NewGreedy(Uniform(2, 1.0), []int{0, 1}, 0.0)
	if set := g2.Pick(0b11); set != 0b11 {
		t.Errorf("cross-channel APs not jointly admitted: %02b", set)
	}
}

func TestBanditLearnsBestArm(t *testing.T) {
	// Synthetic rewards on one 2-AP channel group: transmitting both APs
	// together pays 3x either alone. The bandit must converge onto the
	// joint arm.
	b := NewBandit([]int{0, 0}, BanditConfig{Seed: 1})
	reward := func(set uint64) []int64 {
		per := make([]int64, 2)
		if set == 0b11 {
			per[0], per[1] = 3000, 3000
		} else if set&1 != 0 {
			per[0] = 2000
		} else if set&2 != 0 {
			per[1] = 2000
		}
		return per
	}
	picks := map[uint64]int{}
	for i := 0; i < 400; i++ {
		set := b.Pick(0b11)
		if set == 0 || set&^uint64(0b11) != 0 {
			t.Fatalf("pick %d returned %b", i, set)
		}
		b.Observe(set, reward(set), time.Millisecond)
		if i >= 300 {
			picks[set]++
		}
	}
	if picks[0b11] <= picks[0b01]+picks[0b10] {
		t.Fatalf("bandit did not converge to the joint arm: %v", picks)
	}
}

func TestInterferenceErasureDeterministicAndScaled(t *testing.T) {
	if erased(1, 2, 3, 4, 5, 0.5) != erased(1, 2, 3, 4, 5, 0.5) {
		t.Fatal("erasure draw not deterministic")
	}
	// Frequency sanity: the splitmix draw at p must erase ~p of tuples.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		n, hits := 20000, 0
		for i := 0; i < n; i++ {
			if erased(7, uint64(i), 0, 1, 0, p) {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		if got < p-0.02 || got > p+0.02 {
			t.Errorf("erasure rate %v at p=%v", got, p)
		}
	}
	if erased(0, 0, 0, 1, 0, 0) {
		t.Error("p=0 erased")
	}
}

func TestClusterDrainRejectsRoam(t *testing.T) {
	c, err := New(Config{APs: 2, Engine: engine.Config{NumSTAs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !c.Stopped() {
		t.Fatal("cluster not stopped after drain")
	}
	if err := c.Roam(0, 1); err != ErrDraining {
		t.Fatalf("roam during/after drain returned %v", err)
	}
}
