// Package bloom implements the coded Bloom filter that Carpool's
// aggregation header (A-HDR) is built on (paper §4.1). The filter is 48
// bits — exactly two BPSK-1/2 OFDM symbols — and encodes both *which*
// stations a Carpool frame addresses and *where* each station's subframe
// sits: subframe position i hashes the receiver's MAC address with the i-th
// hash set.
//
// Bloom filters admit false positives but never false negatives, so a
// receiver may occasionally decode a subframe that is not its own (costing
// a little energy, §8) but can never miss its own subframe.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"
)

// FilterBits is the A-HDR capacity: two BPSK OFDM symbols at coding rate
// 1/2 carry 48 information bits.
const FilterBits = 48

// MaxReceivers bounds how many stations one Carpool frame may address. The
// paper limits aggregation to 8 receivers, keeping the false-positive ratio
// under 5.59% with h = 4.
const MaxReceivers = 8

// MAC is an IEEE 802 48-bit hardware address.
type MAC [6]byte

// String formats the address in the usual colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Filter is a 48-bit Bloom filter (bits above 47 are always zero).
type Filter uint64

const filterMask = Filter(1)<<FilterBits - 1

// DefaultHashes is the hash-set size Carpool ships with: the optimum for 8
// receivers, h = (48/8)·ln2 ≈ 4.
const DefaultHashes = 4

// OptimalHashes returns the false-positive-minimizing hash count
// h = (FilterBits/n)·ln2 for n inserted receivers, at least 1.
func OptimalHashes(n int) int {
	if n < 1 {
		return 1
	}
	h := int(math.Round(float64(FilterBits) / float64(n) * math.Ln2))
	if h < 1 {
		h = 1
	}
	return h
}

// bitPositions derives the h filter positions for a MAC address hashed with
// the hash set of subframe position (1-based). It uses Kirsch-Mitzenmacher
// double hashing over FNV-1a, with the position index folded into the
// second hash so each subframe slot gets an independent hash set.
func bitPositions(mac MAC, position, h int, out []int) []int {
	h1 := fnv.New64a()
	h1.Write(mac[:])
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write(mac[:])
	h2.Write([]byte{byte(position)})
	b := h2.Sum64() | 1 // odd so successive probes differ
	out = out[:0]
	for j := 0; j < h; j++ {
		v := a + uint64(position)*0x9e3779b97f4a7c15 + uint64(j)*b
		out = append(out, int(v%FilterBits))
	}
	return out
}

// Build inserts each receiver's MAC address with the hash set of its
// subframe position (receivers[0] is subframe 1, and so on), returning the
// A-HDR filter.
func Build(receivers []MAC, h int) (Filter, error) {
	if len(receivers) == 0 {
		return 0, fmt.Errorf("bloom: no receivers")
	}
	if len(receivers) > MaxReceivers {
		return 0, fmt.Errorf("bloom: %d receivers exceeds limit %d", len(receivers), MaxReceivers)
	}
	if h < 1 || h > FilterBits {
		return 0, fmt.Errorf("bloom: hash count %d outside 1..%d", h, FilterBits)
	}
	var f Filter
	buf := make([]int, 0, h)
	for i, mac := range receivers {
		for _, pos := range bitPositions(mac, i+1, h, buf) {
			f |= 1 << pos
		}
	}
	return f & filterMask, nil
}

// InsertAt returns the filter with mac added at the given 1-based subframe
// position. Build covers the common sequential case; InsertAt lets the
// MU-MIMO extension give two receivers the same position (Fig. 18).
func (f Filter) InsertAt(mac MAC, position, h int) Filter {
	buf := make([]int, 0, h)
	for _, pos := range bitPositions(mac, position, h, buf) {
		f |= 1 << pos
	}
	return f & filterMask
}

// Match reports whether the filter may contain mac at subframe position
// (1-based). False positives are possible; false negatives are not.
func (f Filter) Match(mac MAC, position, h int) bool {
	buf := make([]int, 0, h)
	for _, pos := range bitPositions(mac, position, h, buf) {
		if f&(1<<pos) == 0 {
			return false
		}
	}
	return true
}

// Positions returns every subframe position in 1..maxPositions that matches
// mac. A receiver decodes all matched subframes (paper §4.1: "decoding with
// false positives").
func (f Filter) Positions(mac MAC, maxPositions, h int) []int {
	var out []int
	for i := 1; i <= maxPositions; i++ {
		if f.Match(mac, i, h) {
			out = append(out, i)
		}
	}
	return out
}

// Bits serializes the filter into 48 bits, LSB first, ready for the A-HDR's
// two BPSK symbols.
func (f Filter) Bits() []byte {
	bits := make([]byte, FilterBits)
	for i := range bits {
		bits[i] = byte((f >> i) & 1)
	}
	return bits
}

// FromBits reassembles a filter serialized by Bits.
func FromBits(bits []byte) (Filter, error) {
	if len(bits) != FilterBits {
		return 0, fmt.Errorf("bloom: need %d bits, got %d", FilterBits, len(bits))
	}
	var f Filter
	for i, b := range bits {
		f |= Filter(b&1) << i
	}
	return f, nil
}

// PopCount returns the number of set bits, used by load diagnostics.
func (f Filter) PopCount() int {
	n := 0
	for v := uint64(f); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// FalsePositiveRate is the analytic rate from §4.1:
// r = (1 - (1 - 1/48)^(h·n))^h for n inserted receivers and h hashes.
func FalsePositiveRate(n, h int) float64 {
	if n < 1 || h < 1 {
		return 0
	}
	return math.Pow(1-math.Pow(1-1.0/FilterBits, float64(h*n)), float64(h))
}

// HeaderOverheadRatio returns the A-HDR size relative to listing all
// receivers' MAC addresses explicitly: 48 bits vs 48·n bits (§4.1 reports
// 12.5% for n = 8).
func HeaderOverheadRatio(n int) float64 {
	if n < 1 {
		return 0
	}
	return 1 / float64(n)
}
