package bloom

import "testing"

// FuzzFilterNoFalseNegatives fuzzes the A-HDR filter's two load-bearing
// invariants over arbitrary receiver sets: no false negatives (every
// inserted MAC matches at its own subframe position — the property §4.1's
// decode-with-false-positives argument rests on), and the 48-bit
// serialization round-trips exactly. Byte 0 picks the receiver count,
// byte 1 the hash count; the rest seeds the MAC addresses.
func FuzzFilterNoFalseNegatives(f *testing.F) {
	f.Add([]byte{1, 4, 0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0x01})
	f.Add([]byte{8, 1, 0xff})
	f.Add([]byte{3, 6, 0x02, 0xca, 0x90, 0x00, 0x00, 0x01, 0x02, 0xca, 0x90, 0x00, 0x00, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 1 + int(data[0])%MaxReceivers
		h := 1 + int(data[1])%8
		body := data[2:]
		macs := make([]MAC, n)
		for i := range macs {
			for j := 0; j < 6; j++ {
				macs[i][j] = body[(i*6+j)%len(body)]
			}
		}

		filter, err := Build(macs, h)
		if err != nil {
			t.Fatalf("Build(%d receivers, h=%d): %v", n, h, err)
		}
		if filter != filter&(1<<FilterBits-1) {
			t.Fatalf("filter %#x has bits above %d set", uint64(filter), FilterBits)
		}
		for i, mac := range macs {
			if !filter.Match(mac, i+1, h) {
				t.Fatalf("false negative: %v not matched at its own position %d (h=%d)", mac, i+1, h)
			}
			found := false
			for _, pos := range filter.Positions(mac, n, h) {
				if pos == i+1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("Positions(%v) omits the true position %d", mac, i+1)
			}
		}

		bits := filter.Bits()
		rt, err := FromBits(bits)
		if err != nil {
			t.Fatalf("FromBits(Bits()): %v", err)
		}
		if rt != filter {
			t.Fatalf("serialization round-trip changed filter: %#x -> %#x", uint64(filter), uint64(rt))
		}
	})
}
