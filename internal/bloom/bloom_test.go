package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMAC(rng *rand.Rand) MAC {
	var m MAC
	rng.Read(m[:])
	return m
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("String() = %q", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("accepted empty receiver list")
	}
	if _, err := Build(make([]MAC, 9), 4); err == nil {
		t.Error("accepted 9 receivers")
	}
	if _, err := Build(make([]MAC, 2), 0); err == nil {
		t.Error("accepted zero hashes")
	}
	if _, err := Build(make([]MAC, 2), 49); err == nil {
		t.Error("accepted too many hashes")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	// The Bloom filter guarantee the whole design leans on: a receiver's
	// own subframe always matches.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(MaxReceivers)
		macs := make([]MAC, n)
		for i := range macs {
			macs[i] = randomMAC(rng)
		}
		filter, err := Build(macs, DefaultHashes)
		if err != nil {
			return false
		}
		for i, mac := range macs {
			if !filter.Match(mac, i+1, DefaultHashes) {
				return false
			}
			found := false
			for _, p := range filter.Positions(mac, n, DefaultHashes) {
				if p == i+1 {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		filter := Filter(raw) & (1<<FilterBits - 1)
		got, err := FromBits(filter.Bits())
		return err == nil && got == filter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromBits(make([]byte, 47)); err == nil {
		t.Error("accepted 47 bits")
	}
}

func TestFilterStaysWithin48Bits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	macs := make([]MAC, 8)
	for i := range macs {
		macs[i] = randomMAC(rng)
	}
	filter, err := Build(macs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if filter>>FilterBits != 0 {
		t.Error("filter has bits above position 47")
	}
	if filter.PopCount() == 0 {
		t.Error("filter is empty after 8 insertions")
	}
	if filter.PopCount() > 48 {
		t.Error("impossible popcount")
	}
}

func TestPositionSensitivity(t *testing.T) {
	// The same MAC inserted at position 1 should (almost always) not match
	// at other positions: position is encoded in the hash-set choice.
	rng := rand.New(rand.NewSource(2))
	crossMatches, trials := 0, 2000
	for i := 0; i < trials; i++ {
		mac := randomMAC(rng)
		filter, err := Build([]MAC{mac}, DefaultHashes)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 2; pos <= MaxReceivers; pos++ {
			if filter.Match(mac, pos, DefaultHashes) {
				crossMatches++
			}
		}
	}
	// With 4 bits set out of 48, a foreign hash set matches with
	// probability ~(4/48)^4 ≈ 5e-5; even 7 positions x 2000 trials should
	// see almost none.
	if crossMatches > 10 {
		t.Errorf("%d cross-position matches in %d trials", crossMatches, trials)
	}
}

func TestOptimalHashes(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{1, 33}, {4, 8}, {8, 4}, {12, 3}, {48, 1}, {100, 1}, {0, 1}, {-3, 1},
	}
	for _, tt := range tests {
		if got := OptimalHashes(tt.n); got != tt.want {
			t.Errorf("OptimalHashes(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestAnalyticFalsePositiveRange(t *testing.T) {
	// §4.1: "If the number of receivers is 4-8, the false positive ratio
	// ranges from 0.31% to 5.59%" — each endpoint evaluated at the optimal
	// h for its receiver count (h = 8 for N = 4, h = 4 for N = 8).
	lo := FalsePositiveRate(4, OptimalHashes(4))
	hi := FalsePositiveRate(8, OptimalHashes(8))
	if lo < 0.002 || lo > 0.006 {
		t.Errorf("r_FP(4) = %.4f, want ≈ 0.0031", lo)
	}
	if hi < 0.045 || hi > 0.065 {
		t.Errorf("r_FP(8) = %.4f, want ≈ 0.0559", hi)
	}
	if FalsePositiveRate(0, 4) != 0 || FalsePositiveRate(4, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// More receivers -> more false positives.
	prev := 0.0
	for n := 1; n <= 8; n++ {
		r := FalsePositiveRate(n, DefaultHashes)
		if r <= prev {
			t.Errorf("false positive rate not increasing at n=%d", n)
		}
		prev = r
	}
}

func TestMeasuredFalsePositiveMatchesAnalytic(t *testing.T) {
	// Monte Carlo: insert n receivers, probe with foreign MACs at every
	// position, compare to the analytic formula.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 8} {
		probes, hits := 0, 0
		for trial := 0; trial < 400; trial++ {
			macs := make([]MAC, n)
			for i := range macs {
				macs[i] = randomMAC(rng)
			}
			filter, err := Build(macs, DefaultHashes)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 25; p++ {
				foreign := randomMAC(rng)
				for pos := 1; pos <= n; pos++ {
					probes++
					if filter.Match(foreign, pos, DefaultHashes) {
						hits++
					}
				}
			}
		}
		got := float64(hits) / float64(probes)
		want := FalsePositiveRate(n, DefaultHashes)
		if math.Abs(got-want) > want*0.3+0.001 {
			t.Errorf("n=%d: measured FP %.4f, analytic %.4f", n, got, want)
		}
	}
}

func TestHeaderOverheadRatio(t *testing.T) {
	if got := HeaderOverheadRatio(8); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("overhead for 8 receivers = %v, want 0.125 (§4.1)", got)
	}
	if HeaderOverheadRatio(0) != 0 {
		t.Error("degenerate input should give 0")
	}
}

func TestDifferentMACsDifferentBits(t *testing.T) {
	// Hash quality: two different MACs rarely share all h positions.
	rng := rand.New(rand.NewSource(4))
	same := 0
	for trial := 0; trial < 2000; trial++ {
		a, b := randomMAC(rng), randomMAC(rng)
		fa, err := Build([]MAC{a}, DefaultHashes)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := Build([]MAC{b}, DefaultHashes)
		if err != nil {
			t.Fatal(err)
		}
		if fa == fb {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/2000 MAC pairs hashed identically", same)
	}
}
