package modem

import (
	"math"
	"math/rand"
	"testing"
)

// TestDemapSoftQSignsMatchFloat checks, for every modulation over noisy
// points, that the quantized LLR never disagrees in sign with the float LLR
// (it may flush small values to the zero erasure).
func TestDemapSoftQSignsMatchFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range Modulations() {
		bps := m.BitsPerSymbol()
		bits := make([]byte, 48*bps)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		points, err := Map(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range points {
			points[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		}
		noiseVar := 0.005
		fl, err := DemapSoft(m, points, noiseVar)
		if err != nil {
			t.Fatal(err)
		}
		q, err := DemapSoftQ(m, points, noiseVar)
		if err != nil {
			t.Fatal(err)
		}
		for i := range q {
			if q[i] > 0 && fl[i] < 0 || q[i] < 0 && fl[i] > 0 {
				t.Fatalf("%v bit %d: quantized LLR %d contradicts float LLR %g", m, i, q[i], fl[i])
			}
		}
		// Clean constellation points must produce confidently signed LLRs.
		clean, err := Map(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		if err := DemapSoftQInto(q, m, clean, noiseVar); err != nil {
			t.Fatal(err)
		}
		hard := HardFromLLRQ(q)
		for i := range bits {
			if q[i] == 0 {
				t.Fatalf("%v bit %d: clean point quantized to erasure", m, i)
			}
			if hard[i] != bits[i] {
				t.Fatalf("%v bit %d: hard decision from quantized LLR = %d, want %d", m, i, hard[i], bits[i])
			}
		}
	}
}

func TestDemapSoftQWeighted(t *testing.T) {
	m := QPSK
	bits := []byte{0, 1, 1, 0}
	points, err := Map(m, bits)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]int8, len(bits))
	weights := []float64{1, 0}
	if err := DemapSoftQWeightedInto(q, m, points, weights); err != nil {
		t.Fatal(err)
	}
	if q[0] == 0 || q[1] == 0 {
		t.Error("unit-weight point quantized to erasure")
	}
	if q[2] != 0 || q[3] != 0 {
		t.Errorf("zero-weight point should erase, got %d %d", q[2], q[3])
	}
	weights[1] = math.NaN()
	if err := DemapSoftQWeightedInto(q, m, points, weights); err != nil {
		t.Fatal(err)
	}
	if q[2] != 0 || q[3] != 0 {
		t.Errorf("NaN-weight point should erase, got %d %d", q[2], q[3])
	}
	weights[1] = math.Inf(1)
	if err := DemapSoftQWeightedInto(q, m, points, weights); err != nil {
		t.Fatal(err)
	}
	if q[2] != 127 && q[2] != -127 {
		t.Errorf("infinite-weight point should saturate, got %d", q[2])
	}
}

// TestDemapSoftQBatchMatchesPerSymbol checks the batched slab demap is
// bit-identical to demapping each symbol separately, for every modulation,
// both unweighted and weighted, and that the slab variants stay
// allocation-free.
func TestDemapSoftQBatchMatchesPerSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const nsym = 5
	for _, m := range Modulations() {
		bps := m.BitsPerSymbol()
		symbols := make([][]complex128, nsym)
		weights := make([][]float64, nsym)
		total := 0
		for s := range symbols {
			bits := make([]byte, 48*bps)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			pts, err := Map(m, bits)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pts {
				pts[i] += complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
			}
			symbols[s] = pts
			weights[s] = make([]float64, len(pts))
			for i := range weights[s] {
				weights[s][i] = 0.25 + rng.Float64()
			}
			total += len(pts)
		}
		noiseVar := 0.01
		slab := make([]int8, total*bps)
		if err := DemapSoftQBatchInto(slab, m, symbols, noiseVar); err != nil {
			t.Fatal(err)
		}
		off := 0
		one := make([]int8, 48*bps)
		for s, sym := range symbols {
			if err := DemapSoftQInto(one, m, sym, noiseVar); err != nil {
				t.Fatal(err)
			}
			for i := range one {
				if slab[off+i] != one[i] {
					t.Fatalf("%v symbol %d bit %d: batch %d != per-symbol %d", m, s, i, slab[off+i], one[i])
				}
			}
			off += len(one)
		}
		if err := DemapSoftQWeightedBatchInto(slab, m, symbols, weights); err != nil {
			t.Fatal(err)
		}
		off = 0
		for s, sym := range symbols {
			if err := DemapSoftQWeightedInto(one, m, sym, weights[s]); err != nil {
				t.Fatal(err)
			}
			for i := range one {
				if slab[off+i] != one[i] {
					t.Fatalf("%v symbol %d bit %d: weighted batch %d != per-symbol %d", m, s, i, slab[off+i], one[i])
				}
			}
			off += len(one)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := DemapSoftQBatchInto(slab, m, symbols, noiseVar); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%v: DemapSoftQBatchInto allocates %.1f/op, want 0", m, a)
		}
	}
}

func TestDemapSoftQBatchErrors(t *testing.T) {
	pts := make([]complex128, 2)
	symbols := [][]complex128{pts, pts}
	if err := DemapSoftQBatchInto(make([]int8, 4), Modulation(0), symbols, 1); err == nil {
		t.Error("invalid modulation accepted")
	}
	if err := DemapSoftQBatchInto(make([]int8, 4), BPSK, symbols, 0); err == nil {
		t.Error("zero noise variance accepted")
	}
	if err := DemapSoftQBatchInto(make([]int8, 3), BPSK, symbols, 1); err == nil {
		t.Error("short slab accepted")
	}
	if err := DemapSoftQWeightedBatchInto(make([]int8, 4), BPSK, symbols, [][]float64{{1, 1}}); err == nil {
		t.Error("weight batch length mismatch accepted")
	}
	if err := DemapSoftQWeightedBatchInto(make([]int8, 4), BPSK, symbols, [][]float64{{1, 1}, {1}}); err == nil {
		t.Error("per-symbol weight length mismatch accepted")
	}
}

func TestDemapSoftQErrors(t *testing.T) {
	pts := make([]complex128, 2)
	if _, err := DemapSoftQ(Modulation(0), pts, 1); err == nil {
		t.Error("invalid modulation accepted")
	}
	if _, err := DemapSoftQ(BPSK, pts, 0); err == nil {
		t.Error("zero noise variance accepted")
	}
	if err := DemapSoftQInto(make([]int8, 1), BPSK, pts, 1); err == nil {
		t.Error("short buffer accepted")
	}
	if err := DemapSoftQWeightedInto(make([]int8, 2), BPSK, pts, []float64{1}); err == nil {
		t.Error("weight length mismatch accepted")
	}
}

func TestDemapSoftQIntoZeroAllocs(t *testing.T) {
	for _, m := range Modulations() {
		bps := m.BitsPerSymbol()
		bits := make([]byte, 48*bps)
		points, err := Map(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]int8, len(bits))
		weights := make([]float64, len(points))
		for i := range weights {
			weights[i] = 1
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := DemapSoftQInto(dst, m, points, 0.1); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%v: DemapSoftQInto allocates %.1f/op, want 0", m, a)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := DemapSoftQWeightedInto(dst, m, points, weights); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%v: DemapSoftQWeightedInto allocates %.1f/op, want 0", m, a)
		}
	}
}
