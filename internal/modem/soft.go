package modem

import (
	"fmt"
	"math"
)

// DemapSoft computes per-bit log-likelihood ratios for each constellation
// point using the max-log approximation:
//
//	LLR_j = ( min_{s: bit_j(s)=1} |y-s|^2  -  min_{s: bit_j(s)=0} |y-s|^2 ) / N0
//
// Positive LLR means bit 0 is more likely. noiseVar is the per-point
// complex noise variance N0; it scales confidence only, so any positive
// value yields correct hard decisions.
//
// Soft demapping feeds the soft-decision Viterbi decoder
// (fec.ViterbiDecodeSoft), the repository's "future work" extension over
// the paper's hard-decision prototype.
func DemapSoft(m Modulation, points []complex128, noiseVar float64) ([]float64, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("modem: invalid modulation %v", m)
	}
	out := make([]float64, len(points)*bps)
	if err := DemapSoftInto(out, m, points, noiseVar); err != nil {
		return nil, err
	}
	return out, nil
}

// DemapSoftInto is DemapSoft writing into a caller-provided buffer of
// exactly len(points)*BitsPerSymbol LLRs, allocation-free.
func DemapSoftInto(dst []float64, m Modulation, points []complex128, noiseVar float64) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	if noiseVar <= 0 {
		return fmt.Errorf("modem: noise variance must be positive, got %v", noiseVar)
	}
	if len(dst) != len(points)*bps {
		return fmt.Errorf("modem: LLR buffer needs %d entries, got %d", len(points)*bps, len(dst))
	}
	ref := constellations[m]
	for i, y := range points {
		for j := 0; j < bps; j++ {
			min0, min1 := math.Inf(1), math.Inf(1)
			for v, s := range ref {
				d := y - s
				dist := real(d)*real(d) + imag(d)*imag(d)
				if (v>>(bps-1-j))&1 == 0 {
					if dist < min0 {
						min0 = dist
					}
				} else if dist < min1 {
					min1 = dist
				}
			}
			dst[i*bps+j] = (min1 - min0) / noiseVar
		}
	}
	return nil
}

// constellations caches, per modulation, the mapped point for every bit
// pattern, indexed by the pattern value (MSB-first bit order, matching Map's
// input order). Built once at init; DemapSoft used to re-enumerate this
// table on every call.
var constellations = buildConstellations()

func buildConstellations() map[Modulation][]complex128 {
	out := make(map[Modulation][]complex128, len(Modulations()))
	for _, m := range Modulations() {
		out[m] = constellation(m)
	}
	return out
}

// constellation enumerates the mapped point for every bit pattern of a valid
// modulation.
func constellation(m Modulation) []complex128 {
	bps := m.BitsPerSymbol()
	n := 1 << bps
	out := make([]complex128, n)
	bits := make([]byte, bps)
	for v := 0; v < n; v++ {
		for j := 0; j < bps; j++ {
			bits[j] = byte((v >> (bps - 1 - j)) & 1)
		}
		pts, err := Map(m, bits)
		if err != nil {
			panic(err) // unreachable: m is valid and bits sized to bps
		}
		out[v] = pts[0]
	}
	return out
}

// HardFromLLR converts LLRs back to hard bits (LLR > 0 -> 0).
func HardFromLLR(llrs []float64) []byte {
	out := make([]byte, len(llrs))
	for i, l := range llrs {
		if l < 0 {
			out[i] = 1
		}
	}
	return out
}
