package modem

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsPerSymbol(t *testing.T) {
	tests := []struct {
		m    Modulation
		want int
	}{
		{BPSK, 1}, {QPSK, 2}, {QAM16, 4}, {QAM64, 6}, {Modulation(0), 0}, {Modulation(9), 0},
	}
	for _, tt := range tests {
		if got := tt.m.BitsPerSymbol(); got != tt.want {
			t.Errorf("%v.BitsPerSymbol() = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	if BPSK.String() != "BPSK" || QAM64.String() != "QAM64" {
		t.Error("unexpected String values")
	}
	if Modulation(42).String() != "Modulation(42)" {
		t.Errorf("got %q", Modulation(42).String())
	}
}

func TestValid(t *testing.T) {
	for _, m := range Modulations() {
		if !m.Valid() {
			t.Errorf("%v should be valid", m)
		}
	}
	if Modulation(0).Valid() || Modulation(5).Valid() {
		t.Error("invalid modulations reported valid")
	}
}

func TestUnitAveragePower(t *testing.T) {
	// With Kmod normalization, the average energy over all constellation
	// points must be exactly 1.
	for _, m := range Modulations() {
		bps := m.BitsPerSymbol()
		n := 1 << bps
		var total float64
		for v := 0; v < n; v++ {
			bits := make([]byte, bps)
			for i := 0; i < bps; i++ {
				bits[i] = byte((v >> (bps - 1 - i)) & 1)
			}
			pts, err := Map(m, bits)
			if err != nil {
				t.Fatal(err)
			}
			total += real(pts[0])*real(pts[0]) + imag(pts[0])*imag(pts[0])
		}
		avg := total / float64(n)
		if math.Abs(avg-1) > 1e-12 {
			t.Errorf("%v: average constellation power %v, want 1", m, avg)
		}
	}
}

func TestMapDemapRoundTrip(t *testing.T) {
	for _, m := range Modulations() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := m.BitsPerSymbol() * (1 + rng.Intn(100))
				bits := make([]byte, n)
				for i := range bits {
					bits[i] = byte(rng.Intn(2))
				}
				pts, err := Map(m, bits)
				if err != nil {
					return false
				}
				got, err := Demap(m, pts)
				if err != nil {
					return false
				}
				if len(got) != len(bits) {
					return false
				}
				for i := range bits {
					if got[i] != bits[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGrayMappingAdjacency(t *testing.T) {
	// Gray property: nearest-neighbour constellation points differ in
	// exactly one bit. Check along the real axis for QAM64.
	for _, m := range []Modulation{QAM16, QAM64} {
		bps := m.BitsPerSymbol()
		n := 1 << bps
		type pt struct {
			bits []byte
			c    complex128
		}
		pts := make([]pt, 0, n)
		for v := 0; v < n; v++ {
			bits := make([]byte, bps)
			for i := 0; i < bps; i++ {
				bits[i] = byte((v >> (bps - 1 - i)) & 1)
			}
			mapped, err := Map(m, bits)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, pt{bits, mapped[0]})
		}
		minD := m.MinDistance()
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				d := cmplx.Abs(pts[i].c - pts[j].c)
				if d < minD*1.0001 { // nearest neighbours
					diff := 0
					for k := range pts[i].bits {
						if pts[i].bits[k] != pts[j].bits[k] {
							diff++
						}
					}
					if diff != 1 {
						t.Fatalf("%v: neighbours %v and %v differ in %d bits",
							m, pts[i].bits, pts[j].bits, diff)
					}
				}
			}
		}
	}
}

func TestMapRejectsBadInput(t *testing.T) {
	if _, err := Map(QPSK, []byte{1}); err == nil {
		t.Error("Map accepted odd bit count for QPSK")
	}
	if _, err := Map(Modulation(0), []byte{1}); err == nil {
		t.Error("Map accepted invalid modulation")
	}
	if _, err := Demap(Modulation(99), nil); err == nil {
		t.Error("Demap accepted invalid modulation")
	}
}

func TestDemapNoiseTolerance(t *testing.T) {
	// Small perturbations (below half the minimum distance) never flip bits.
	rng := rand.New(rand.NewSource(3))
	for _, m := range Modulations() {
		bits := make([]byte, m.BitsPerSymbol()*64)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		pts, err := Map(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		eps := m.MinDistance() * 0.45
		for i := range pts {
			theta := rng.Float64() * 2 * math.Pi
			pts[i] += complex(eps*math.Cos(theta), eps*math.Sin(theta))
		}
		got, err := Demap(m, pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit %d flipped under %.3f perturbation", m, i, eps)
			}
		}
	}
}

func TestKmodValues(t *testing.T) {
	tests := []struct {
		m    Modulation
		want float64
	}{
		{BPSK, 1},
		{QPSK, 1 / math.Sqrt2},
		{QAM16, 1 / math.Sqrt(10)},
		{QAM64, 1 / math.Sqrt(42)},
	}
	for _, tt := range tests {
		if got := tt.m.Kmod(); math.Abs(got-tt.want) > 1e-15 {
			t.Errorf("%v.Kmod() = %v, want %v", tt.m, got, tt.want)
		}
	}
	if Modulation(0).Kmod() != 0 {
		t.Error("invalid modulation should have Kmod 0")
	}
}
