package modem

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// refScalarDemap runs the straight-line oracle kernel with the public
// entry points' validation already done.
func refScalarDemap(m Modulation, points []complex128, weights []float64) []int8 {
	bps := m.BitsPerSymbol()
	dst := make([]int8, len(points)*bps)
	demapSoftQScalar(dst, constellations[m], bps, llrqScales[m], points, weights)
	return dst
}

// TestDemapSoftQx4MatchesScalar holds the 4-lane kernel bit-identical to
// the scalar oracle for every modulation, across lengths that exercise
// both the unrolled body and the tail (0..9 points and a full 48-point
// symbol), unweighted and with adversarial weights (zero, NaN, ±Inf,
// huge, tiny).
func TestDemapSoftQx4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	hostile := []float64{0, math.NaN(), math.Inf(1), math.Inf(-1), 1e300, 1e-300}
	for _, m := range Modulations() {
		bps := m.BitsPerSymbol()
		for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 48} {
			points := make([]complex128, n)
			weights := make([]float64, n)
			for i := range points {
				points[i] = complex(rng.NormFloat64()*2, rng.NormFloat64()*2)
				if i%5 == 0 && len(hostile) > 0 {
					weights[i] = hostile[i%len(hostile)]
				} else {
					weights[i] = rng.Float64() * 3
				}
			}
			got := make([]int8, n*bps)
			demapSoftQx4(got, constellations[m], bps, llrqScales[m], points, nil)
			want := refScalarDemap(m, points, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d unweighted bit %d: x4 %d != scalar %d", m, n, i, got[i], want[i])
				}
			}
			demapSoftQx4(got, constellations[m], bps, llrqScales[m], points, weights)
			want = refScalarDemap(m, points, weights)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d weighted bit %d: x4 %d != scalar %d", m, n, i, got[i], want[i])
				}
			}
		}
	}
}

// FuzzDemapSoftQx4 differentially fuzzes the vectorized demap kernel
// against the scalar oracle on arbitrary point soups: any divergence in
// any output byte fails. Bytes decode as float64 pairs (points) plus an
// optional weight stream; non-finite floats are kept, since the kernels
// must agree even on NaN/Inf inputs (NaN comparisons lose every min, on
// both paths, in the same scan order).
func FuzzDemapSoftQx4(f *testing.F) {
	seed := make([]byte, 1+16*5)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f}) // +Inf real, QAM16 selector
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mods := Modulations()
		m := mods[int(data[0])%len(mods)]
		data = data[1:]
		weighted := len(data) > 0 && data[0]&1 == 1

		n := len(data) / 16
		if n > 256 {
			n = 256
		}
		points := make([]complex128, n)
		var weights []float64
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			points[i] = complex(re, im)
		}
		if weighted {
			weights = make([]float64, n)
			for i := range weights {
				// Derive weights from the same bytes, shifted, so the fuzzer
				// reaches hostile values without a longer input.
				weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+4:]) ^ 0x5555)
			}
		}
		bps := m.BitsPerSymbol()
		got := make([]int8, n*bps)
		demapSoftQx4(got, constellations[m], bps, llrqScales[m], points, weights)
		want := refScalarDemap(m, points, weights)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v point %d bit %d: x4 %d != scalar %d", m, i/bps, i%bps, got[i], want[i])
			}
		}
	})
}

// benchDemapKernel measures one demap kernel on a 48-point QAM64 symbol
// with mildly noisy points — the scalar/x4 pair quantifies the win the
// vectorized inner loop buys at identical output bytes.
func benchDemapKernel(b *testing.B, kernel func(dst []int8, ref []complex128, bps int, scale float64, points []complex128, weights []float64)) {
	rng := rand.New(rand.NewSource(3))
	bits := make([]byte, 48*6)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	points, err := Map(QAM64, bits)
	if err != nil {
		b.Fatal(err)
	}
	for i := range points {
		points[i] += complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
	}
	dst := make([]int8, len(bits))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(dst, constellations[QAM64], 6, llrqScales[QAM64], points, nil)
	}
}

func BenchmarkDemapSoftQScalarQAM64(b *testing.B) { benchDemapKernel(b, demapSoftQScalar) }
func BenchmarkDemapSoftQx4QAM64(b *testing.B)     { benchDemapKernel(b, demapSoftQx4) }
