package modem

import (
	"math/rand"
	"testing"
)

func TestDemapSoftValidation(t *testing.T) {
	if _, err := DemapSoft(Modulation(0), nil, 1); err == nil {
		t.Error("accepted invalid modulation")
	}
	if _, err := DemapSoft(BPSK, nil, 0); err == nil {
		t.Error("accepted zero noise variance")
	}
	if _, err := DemapSoft(BPSK, nil, -1); err == nil {
		t.Error("accepted negative noise variance")
	}
}

func TestDemapSoftHardDecisionsMatchDemap(t *testing.T) {
	// On clean points, sign(LLR) must reproduce the hard demapper exactly.
	rng := rand.New(rand.NewSource(1))
	for _, m := range Modulations() {
		bits := make([]byte, m.BitsPerSymbol()*64)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		pts, err := Map(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		llrs, err := DemapSoft(m, pts, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		hard := HardFromLLR(llrs)
		want, err := Demap(m, pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if hard[i] != want[i] {
				t.Fatalf("%v: soft hard-decision differs at bit %d", m, i)
			}
		}
	}
}

func TestDemapSoftConfidenceScalesWithDistance(t *testing.T) {
	// A point near a decision boundary must produce a smaller |LLR| than a
	// point deep inside a region.
	deep, err := DemapSoft(BPSK, []complex128{1.0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	near, err := DemapSoft(BPSK, []complex128{0.05}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if abs(near[0]) >= abs(deep[0]) {
		t.Errorf("boundary point LLR %v not weaker than deep point %v", near[0], deep[0])
	}
	// The 802.11 BPSK mapping sends bit 1 as +1, so a received +1 favors
	// bit 1 (negative LLR in the log(P0/P1) convention).
	if deep[0] >= 0 {
		t.Error("clean +1 should favor bit 1")
	}
}

func TestDemapSoftNoiseVarianceScaling(t *testing.T) {
	a, err := DemapSoft(QPSK, []complex128{0.7 + 0.7i}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DemapSoft(QPSK, []complex128{0.7 + 0.7i}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if abs(a[i]-2*b[i]) > 1e-9 {
			t.Fatalf("LLRs do not scale inversely with noise variance: %v vs %v", a[i], b[i])
		}
	}
}

func TestHardFromLLR(t *testing.T) {
	got := HardFromLLR([]float64{1.5, -0.2, 0, -9})
	want := []byte{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
