package modem

import (
	"fmt"
	"math"

	"carpool/internal/fec"
)

// LLRQScale sets the resolution of the quantized demapper: the squared
// distance of one nearest-neighbor constellation step (4*Kmod^2) maps to
// LLRQScale int8 counts. The soft Viterbi decoder is invariant to positive
// scaling, so the absolute value only trades quantization granularity
// against int8 saturation: 16 leaves ~3 bits of sub-step resolution for
// noisy points while saturating only LLRs more than ~8 steps confident,
// where extra magnitude carries no decision information.
const LLRQScale = 16

// llrqScales[m] is the factor applied to a max-log squared-distance
// difference before saturating to int8. The noise variance the float path
// divides by is folded back in (see DemapSoftQInto), so the factor reduces
// to LLRQScale normalized by the modulation's nearest-neighbor energy.
var llrqScales = buildLLRQScales()

func buildLLRQScales() map[Modulation]float64 {
	out := make(map[Modulation]float64, len(Modulations()))
	for _, m := range Modulations() {
		k := m.Kmod()
		out[m] = LLRQScale / (4 * k * k)
	}
	return out
}

// DemapSoftQ is the quantized counterpart of DemapSoft, emitting saturating
// int8 LLRs ready for fec.SoftDecoder (positive means bit 0, zero is an
// erasure).
//
// The quantizer scale is chosen from noiseVar so that it cancels the float
// demapper's 1/noiseVar confidence normalization: the emitted value is the
// max-log squared-distance difference times LLRQScale/(4*Kmod^2),
// independent of SNR. The decoder is scale-invariant, so this loses nothing
// versus the float chain beyond int8 rounding and saturation, and it keeps
// the quantization step aligned with the constellation geometry at every
// operating point instead of drifting with the noise estimate.
func DemapSoftQ(m Modulation, points []complex128, noiseVar float64) ([]int8, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("modem: invalid modulation %v", m)
	}
	out := make([]int8, len(points)*bps)
	if err := DemapSoftQInto(out, m, points, noiseVar); err != nil {
		return nil, err
	}
	return out, nil
}

// DemapSoftQInto is DemapSoftQ writing into a caller-provided buffer of
// exactly len(points)*BitsPerSymbol entries, allocation-free.
func DemapSoftQInto(dst []int8, m Modulation, points []complex128, noiseVar float64) error {
	if noiseVar <= 0 {
		return fmt.Errorf("modem: noise variance must be positive, got %v", noiseVar)
	}
	return demapSoftQ(dst, m, points, nil)
}

// DemapSoftQWeightedInto quantizes per-bit LLRs with a per-point positive
// weight applied before saturation — the receive path passes each
// subcarrier's channel gain |H|^2 so faded bins contribute proportionally
// weaker opinions, exactly as the float chain's weighted LLRs do, without
// materializing a float64 LLR slice. len(weights) must equal len(points).
// Non-finite weights degrade gracefully: NaN quantizes to an erasure,
// infinities saturate.
func DemapSoftQWeightedInto(dst []int8, m Modulation, points []complex128, weights []float64) error {
	if len(weights) != len(points) {
		return fmt.Errorf("modem: weight buffer needs %d entries, got %d", len(points), len(weights))
	}
	return demapSoftQ(dst, m, points, weights)
}

// DemapSoftQBatchInto is the multi-symbol batched variant of
// DemapSoftQInto: it demaps K symbols' constellation points back to back
// into one contiguous LLR slab, so a batched decode can hand the whole
// run to fec.SoftDecoder without per-symbol buffer bookkeeping. Symbol s's
// LLRs land immediately after symbol s-1's; len(dst) must equal the summed
// point count times BitsPerSymbol. Allocation-free.
func DemapSoftQBatchInto(dst []int8, m Modulation, symbols [][]complex128, noiseVar float64) error {
	if noiseVar <= 0 {
		return fmt.Errorf("modem: noise variance must be positive, got %v", noiseVar)
	}
	return demapSoftQBatch(dst, m, symbols, nil)
}

// DemapSoftQWeightedBatchInto is DemapSoftQBatchInto with per-point
// channel-gain weights, one weight slice per symbol (the
// DemapSoftQWeightedInto convention applied lane by lane).
func DemapSoftQWeightedBatchInto(dst []int8, m Modulation, symbols [][]complex128, weights [][]float64) error {
	if len(weights) != len(symbols) {
		return fmt.Errorf("modem: weight batch needs %d symbol entries, got %d", len(symbols), len(weights))
	}
	return demapSoftQBatch(dst, m, symbols, weights)
}

func demapSoftQBatch(dst []int8, m Modulation, symbols [][]complex128, weights [][]float64) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	total := 0
	for _, sym := range symbols {
		total += len(sym)
	}
	if len(dst) != total*bps {
		return fmt.Errorf("modem: LLR slab needs %d entries, got %d", total*bps, len(dst))
	}
	off := 0
	for s, sym := range symbols {
		n := len(sym) * bps
		var w []float64
		if weights != nil {
			w = weights[s]
			if len(w) != len(sym) {
				return fmt.Errorf("modem: symbol %d weight buffer needs %d entries, got %d", s, len(sym), len(w))
			}
		}
		if err := demapSoftQ(dst[off:off+n], m, sym, w); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func demapSoftQ(dst []int8, m Modulation, points []complex128, weights []float64) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	if len(dst) != len(points)*bps {
		return fmt.Errorf("modem: LLR buffer needs %d entries, got %d", len(points)*bps, len(dst))
	}
	ref := constellations[m]
	scale := llrqScales[m]
	for i, y := range points {
		w := scale
		if weights != nil {
			w *= weights[i]
		}
		for j := 0; j < bps; j++ {
			min0, min1 := math.Inf(1), math.Inf(1)
			for v, s := range ref {
				d := y - s
				dist := real(d)*real(d) + imag(d)*imag(d)
				if (v>>(bps-1-j))&1 == 0 {
					if dist < min0 {
						min0 = dist
					}
				} else if dist < min1 {
					min1 = dist
				}
			}
			dst[i*bps+j] = fec.SatLLR8((min1 - min0) * w)
		}
	}
	return nil
}

// HardFromLLRQ converts quantized LLRs back to hard bits (LLR > 0 -> 0, as
// in HardFromLLR; an erasure maps to 0 by the same convention).
func HardFromLLRQ(llrs []int8) []byte {
	out := make([]byte, len(llrs))
	for i, l := range llrs {
		if l < 0 {
			out[i] = 1
		}
	}
	return out
}
