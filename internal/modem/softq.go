package modem

import (
	"fmt"
	"math"

	"carpool/internal/fec"
)

// LLRQScale sets the resolution of the quantized demapper: the squared
// distance of one nearest-neighbor constellation step (4*Kmod^2) maps to
// LLRQScale int8 counts. The soft Viterbi decoder is invariant to positive
// scaling, so the absolute value only trades quantization granularity
// against int8 saturation: 16 leaves ~3 bits of sub-step resolution for
// noisy points while saturating only LLRs more than ~8 steps confident,
// where extra magnitude carries no decision information.
const LLRQScale = 16

// llrqScales[m] is the factor applied to a max-log squared-distance
// difference before saturating to int8. The noise variance the float path
// divides by is folded back in (see DemapSoftQInto), so the factor reduces
// to LLRQScale normalized by the modulation's nearest-neighbor energy.
var llrqScales = buildLLRQScales()

func buildLLRQScales() map[Modulation]float64 {
	out := make(map[Modulation]float64, len(Modulations()))
	for _, m := range Modulations() {
		k := m.Kmod()
		out[m] = LLRQScale / (4 * k * k)
	}
	return out
}

// DemapSoftQ is the quantized counterpart of DemapSoft, emitting saturating
// int8 LLRs ready for fec.SoftDecoder (positive means bit 0, zero is an
// erasure).
//
// The quantizer scale is chosen from noiseVar so that it cancels the float
// demapper's 1/noiseVar confidence normalization: the emitted value is the
// max-log squared-distance difference times LLRQScale/(4*Kmod^2),
// independent of SNR. The decoder is scale-invariant, so this loses nothing
// versus the float chain beyond int8 rounding and saturation, and it keeps
// the quantization step aligned with the constellation geometry at every
// operating point instead of drifting with the noise estimate.
func DemapSoftQ(m Modulation, points []complex128, noiseVar float64) ([]int8, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("modem: invalid modulation %v", m)
	}
	out := make([]int8, len(points)*bps)
	if err := DemapSoftQInto(out, m, points, noiseVar); err != nil {
		return nil, err
	}
	return out, nil
}

// DemapSoftQInto is DemapSoftQ writing into a caller-provided buffer of
// exactly len(points)*BitsPerSymbol entries, allocation-free.
func DemapSoftQInto(dst []int8, m Modulation, points []complex128, noiseVar float64) error {
	if noiseVar <= 0 {
		return fmt.Errorf("modem: noise variance must be positive, got %v", noiseVar)
	}
	return demapSoftQ(dst, m, points, nil)
}

// DemapSoftQWeightedInto quantizes per-bit LLRs with a per-point positive
// weight applied before saturation — the receive path passes each
// subcarrier's channel gain |H|^2 so faded bins contribute proportionally
// weaker opinions, exactly as the float chain's weighted LLRs do, without
// materializing a float64 LLR slice. len(weights) must equal len(points).
// Non-finite weights degrade gracefully: NaN quantizes to an erasure,
// infinities saturate.
func DemapSoftQWeightedInto(dst []int8, m Modulation, points []complex128, weights []float64) error {
	if len(weights) != len(points) {
		return fmt.Errorf("modem: weight buffer needs %d entries, got %d", len(points), len(weights))
	}
	return demapSoftQ(dst, m, points, weights)
}

// DemapSoftQBatchInto is the multi-symbol batched variant of
// DemapSoftQInto: it demaps K symbols' constellation points back to back
// into one contiguous LLR slab, so a batched decode can hand the whole
// run to fec.SoftDecoder without per-symbol buffer bookkeeping. Symbol s's
// LLRs land immediately after symbol s-1's; len(dst) must equal the summed
// point count times BitsPerSymbol. Allocation-free.
func DemapSoftQBatchInto(dst []int8, m Modulation, symbols [][]complex128, noiseVar float64) error {
	if noiseVar <= 0 {
		return fmt.Errorf("modem: noise variance must be positive, got %v", noiseVar)
	}
	return demapSoftQBatch(dst, m, symbols, nil)
}

// DemapSoftQWeightedBatchInto is DemapSoftQBatchInto with per-point
// channel-gain weights, one weight slice per symbol (the
// DemapSoftQWeightedInto convention applied lane by lane).
func DemapSoftQWeightedBatchInto(dst []int8, m Modulation, symbols [][]complex128, weights [][]float64) error {
	if len(weights) != len(symbols) {
		return fmt.Errorf("modem: weight batch needs %d symbol entries, got %d", len(symbols), len(weights))
	}
	return demapSoftQBatch(dst, m, symbols, weights)
}

func demapSoftQBatch(dst []int8, m Modulation, symbols [][]complex128, weights [][]float64) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	total := 0
	for _, sym := range symbols {
		total += len(sym)
	}
	if len(dst) != total*bps {
		return fmt.Errorf("modem: LLR slab needs %d entries, got %d", total*bps, len(dst))
	}
	off := 0
	for s, sym := range symbols {
		n := len(sym) * bps
		var w []float64
		if weights != nil {
			w = weights[s]
			if len(w) != len(sym) {
				return fmt.Errorf("modem: symbol %d weight buffer needs %d entries, got %d", s, len(sym), len(w))
			}
		}
		if err := demapSoftQ(dst[off:off+n], m, sym, w); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func demapSoftQ(dst []int8, m Modulation, points []complex128, weights []float64) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	if len(dst) != len(points)*bps {
		return fmt.Errorf("modem: LLR buffer needs %d entries, got %d", len(points)*bps, len(dst))
	}
	demapSoftQx4(dst, constellations[m], bps, llrqScales[m], points, weights)
	return nil
}

// demapSoftQScalar is the straight-line reference kernel: one point at a
// time, recomputing every squared distance per output bit. It is the
// bit-identity oracle the fuzz target and differential tests hold
// demapSoftQx4 to; the serving path never calls it.
func demapSoftQScalar(dst []int8, ref []complex128, bps int, scale float64, points []complex128, weights []float64) {
	for i, y := range points {
		w := scale
		if weights != nil {
			w *= weights[i]
		}
		for j := 0; j < bps; j++ {
			min0, min1 := math.Inf(1), math.Inf(1)
			for v, s := range ref {
				d := y - s
				dist := real(d)*real(d) + imag(d)*imag(d)
				if (v>>(bps-1-j))&1 == 0 {
					if dist < min0 {
						min0 = dist
					}
				} else if dist < min1 {
					min1 = dist
				}
			}
			dst[i*bps+j] = fec.SatLLR8((min1 - min0) * w)
		}
	}
}

// distTable is one point's squared distance to every constellation point;
// 64 entries covers the densest supported constellation (QAM64).
type distTable [64]float64

// fillDists caches |y - ref[v]|² for every v. The distance expression is
// textually identical to the scalar kernel's, so any compiler fusion
// (GOAMD64=v3 FMA selection) resolves the same way and the cached values
// are bit-identical to the recomputed ones.
func fillDists(d *distTable, ref []complex128, y complex128) {
	for v, s := range ref {
		e := y - s
		d[v] = real(e)*real(e) + imag(e)*imag(e)
	}
}

// demapSoftQPoint emits one point's bps LLRs from its cached distances,
// scanning in the same v order as the scalar kernel.
func demapSoftQPoint(dst []int8, d *distTable, nref, bps int, w float64) {
	for j := 0; j < bps; j++ {
		mask := 1 << (bps - 1 - j)
		min0, min1 := math.Inf(1), math.Inf(1)
		for v := 0; v < nref; v++ {
			dist := d[v]
			if v&mask == 0 {
				if dist < min0 {
					min0 = dist
				}
			} else if dist < min1 {
				min1 = dist
			}
		}
		dst[j] = fec.SatLLR8((min1 - min0) * w)
	}
}

// demapSoftQx4 is the vectorized inner loop: four constellation points
// per iteration, each lane caching its squared distance to every
// reference point once (the scalar kernel recomputes them bps times per
// point), then four independent min scans per output bit with the int8
// saturating packs unrolled across the lanes. The four distance tables
// are independent accumulator streams, so GOAMD64=v3 builds can keep the
// subtract/multiply/add chains in separate vector registers. Bit-
// identical to demapSoftQScalar: same distance expression, same v scan
// order, same (min1-min0)*w rounding — held by FuzzDemapSoftQx4 and the
// demap-quant conformance pair.
func demapSoftQx4(dst []int8, ref []complex128, bps int, scale float64, points []complex128, weights []float64) {
	var d0, d1, d2, d3 distTable
	nref := len(ref)
	n := len(points)
	i := 0
	for ; i+4 <= n; i += 4 {
		fillDists(&d0, ref, points[i])
		fillDists(&d1, ref, points[i+1])
		fillDists(&d2, ref, points[i+2])
		fillDists(&d3, ref, points[i+3])
		w0, w1, w2, w3 := scale, scale, scale, scale
		if weights != nil {
			w0 *= weights[i]
			w1 *= weights[i+1]
			w2 *= weights[i+2]
			w3 *= weights[i+3]
		}
		base := i * bps
		for j := 0; j < bps; j++ {
			mask := 1 << (bps - 1 - j)
			a0, b0 := math.Inf(1), math.Inf(1)
			a1, b1 := math.Inf(1), math.Inf(1)
			a2, b2 := math.Inf(1), math.Inf(1)
			a3, b3 := math.Inf(1), math.Inf(1)
			for v := 0; v < nref; v++ {
				t0, t1, t2, t3 := d0[v], d1[v], d2[v], d3[v]
				if v&mask == 0 {
					if t0 < a0 {
						a0 = t0
					}
					if t1 < a1 {
						a1 = t1
					}
					if t2 < a2 {
						a2 = t2
					}
					if t3 < a3 {
						a3 = t3
					}
				} else {
					if t0 < b0 {
						b0 = t0
					}
					if t1 < b1 {
						b1 = t1
					}
					if t2 < b2 {
						b2 = t2
					}
					if t3 < b3 {
						b3 = t3
					}
				}
			}
			// Unrolled saturating int8 pack, one lane per output stride.
			dst[base+j] = fec.SatLLR8((b0 - a0) * w0)
			dst[base+bps+j] = fec.SatLLR8((b1 - a1) * w1)
			dst[base+2*bps+j] = fec.SatLLR8((b2 - a2) * w2)
			dst[base+3*bps+j] = fec.SatLLR8((b3 - a3) * w3)
		}
	}
	for ; i < n; i++ {
		fillDists(&d0, ref, points[i])
		w := scale
		if weights != nil {
			w *= weights[i]
		}
		demapSoftQPoint(dst[i*bps:(i+1)*bps], &d0, nref, bps, w)
	}
}

// HardFromLLRQ converts quantized LLRs back to hard bits (LLR > 0 -> 0, as
// in HardFromLLR; an erasure maps to 0 by the same convention).
func HardFromLLRQ(llrs []int8) []byte {
	out := make([]byte, len(llrs))
	for i, l := range llrs {
		if l < 0 {
			out[i] = 1
		}
	}
	return out
}
