// Package modem implements the IEEE 802.11 OFDM subcarrier modulations:
// Gray-coded BPSK, QPSK, 16-QAM and 64-QAM with the standard normalization
// factors (Std 802.11-2012 Table 18-7), plus hard-decision demapping.
package modem

import (
	"fmt"
	"math"
)

// Modulation identifies a subcarrier constellation.
type Modulation int

// Supported constellations. Values start at 1 so the zero value is invalid.
const (
	BPSK Modulation = iota + 1
	QPSK
	QAM16
	QAM64
)

// String returns the conventional name of the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "QAM16"
	case QAM64:
		return "QAM64"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the number of bits carried by one subcarrier.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// Valid reports whether m is one of the supported constellations.
func (m Modulation) Valid() bool {
	return m >= BPSK && m <= QAM64
}

// Kmod returns the 802.11 normalization factor so that the average
// constellation energy is 1.
func (m Modulation) Kmod() float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	default:
		return 0
	}
}

// Modulations lists every supported constellation in increasing order.
func Modulations() []Modulation {
	return []Modulation{BPSK, QPSK, QAM16, QAM64}
}

// grayAxis maps groups of bits to one PAM axis level per 802.11:
// for 1 bit: 0->-1, 1->+1; for 2 bits (Gray): 00->-3, 01->-1, 11->+1, 10->+3;
// for 3 bits (Gray): 000->-7 ... 100->+7.
func grayAxis(bits []byte) float64 {
	switch len(bits) {
	case 1:
		return float64(2*int(bits[0]) - 1)
	case 2:
		table := [4]float64{-3, -1, 3, 1} // index b0<<1|b1
		return table[bits[0]<<1|bits[1]]
	case 3:
		table := [8]float64{-7, -5, -1, -3, 7, 5, 1, 3} // index b0<<2|b1<<1|b2
		return table[bits[0]<<2|bits[1]<<1|bits[2]]
	default:
		panic(fmt.Sprintf("modem: unsupported axis width %d", len(bits)))
	}
}

// grayAxisDecode inverts grayAxis by nearest-level slicing, writing the
// decided bits into out.
func grayAxisDecode(v float64, out []byte) {
	switch len(out) {
	case 1:
		out[0] = boolBit(v > 0)
	case 2:
		// Levels -3,-1,1,3 with Gray labels 00,01,11,10.
		switch {
		case v < -2:
			out[0], out[1] = 0, 0
		case v < 0:
			out[0], out[1] = 0, 1
		case v < 2:
			out[0], out[1] = 1, 1
		default:
			out[0], out[1] = 1, 0
		}
	case 3:
		// Levels -7..7 with Gray labels 000,001,011,010,110,111,101,100.
		labels := [8][3]byte{
			{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {0, 1, 0},
			{1, 1, 0}, {1, 1, 1}, {1, 0, 1}, {1, 0, 0},
		}
		// Decision boundaries sit at the even midpoints -6,-4,...,6.
		idx := int(math.Floor((v + 8) / 2))
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		copy(out, labels[idx][:])
	default:
		panic(fmt.Sprintf("modem: unsupported axis width %d", len(out)))
	}
}

func boolBit(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Map converts a bit slice (values 0/1) into constellation points. The
// number of bits must be a multiple of m.BitsPerSymbol().
func Map(m Modulation, bits []byte) ([]complex128, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("modem: invalid modulation %v", m)
	}
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("modem: %d bits is not a multiple of %d (%v)", len(bits), bps, m)
	}
	out := make([]complex128, len(bits)/bps)
	if err := MapInto(out, m, bits); err != nil {
		return nil, err
	}
	return out, nil
}

// MapInto is Map writing into a caller-provided buffer of exactly
// len(bits)/BitsPerSymbol points, allocation-free.
func MapInto(dst []complex128, m Modulation, bits []byte) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	if len(bits)%bps != 0 {
		return fmt.Errorf("modem: %d bits is not a multiple of %d (%v)", len(bits), bps, m)
	}
	if len(dst) != len(bits)/bps {
		return fmt.Errorf("modem: point buffer needs %d entries, got %d", len(bits)/bps, len(dst))
	}
	k := m.Kmod()
	for i := range dst {
		chunk := bits[i*bps : (i+1)*bps]
		var re, im float64
		if m == BPSK {
			re, im = grayAxis(chunk), 0
		} else {
			half := bps / 2
			re = grayAxis(chunk[:half])
			im = grayAxis(chunk[half:])
		}
		dst[i] = complex(re*k, im*k)
	}
	return nil
}

// Demap hard-decides each constellation point back into bits. The output
// length is len(points) * m.BitsPerSymbol().
func Demap(m Modulation, points []complex128) ([]byte, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("modem: invalid modulation %v", m)
	}
	out := make([]byte, len(points)*bps)
	if err := DemapInto(out, m, points); err != nil {
		return nil, err
	}
	return out, nil
}

// DemapInto is Demap writing into a caller-provided buffer of exactly
// len(points)*BitsPerSymbol bits, allocation-free.
func DemapInto(dst []byte, m Modulation, points []complex128) error {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return fmt.Errorf("modem: invalid modulation %v", m)
	}
	if len(dst) != len(points)*bps {
		return fmt.Errorf("modem: bit buffer needs %d entries, got %d", len(points)*bps, len(dst))
	}
	invK := 1 / m.Kmod()
	for i, p := range points {
		chunk := dst[i*bps : (i+1)*bps]
		if m == BPSK {
			grayAxisDecode(real(p)*invK, chunk)
			continue
		}
		half := bps / 2
		grayAxisDecode(real(p)*invK, chunk[:half])
		grayAxisDecode(imag(p)*invK, chunk[half:])
	}
	return nil
}

// MinDistance returns the minimum Euclidean distance between any two points
// of the normalized constellation. Useful for analytic BER sanity checks.
func (m Modulation) MinDistance() float64 {
	return 2 * m.Kmod()
}
