// Package faults is the deterministic fault-injection layer of the
// conformance stack: composable, seed-reproducible impairments applied to a
// complex-baseband sample stream between transmitter and receiver, beyond
// what the channel package's fading models cover.
//
// Each impairment implements the Impairment interface and registers a
// parser under a short kind name, so any combination serializes to a
// replayable scenario string like
//
//	seed=7|cfo(0.00015,0.3)|clip(1.2)|trunc(6000)
//
// and parses back to the identical scenario. The same seed always yields
// the same distorted samples, which is what lets the conformance harness
// (internal/conform) shrink a failing scenario and print a replay token.
//
// Applications emit obs counters under the faults.* scope: one per applied
// scenario (faults.scenarios), one per impairment application
// (faults.impairments), and one per kind (faults.<kind>).
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"carpool/internal/obs"
)

// Impairment distorts a sample stream. Implementations must be
// deterministic given the rng stream they are handed, and must confine all
// randomness to that rng so a scenario replays bit-identically.
type Impairment interface {
	// Kind is the registered short name ("cfo", "clip", ...).
	Kind() string
	// Token renders the impairment as its scenario token, e.g.
	// "cfo(0.00015,0.3)". Parsing the token yields an equal impairment.
	Token() string
	// Apply distorts samples, mutating in place where possible, and
	// returns the resulting buffer (shorter than the input for truncating
	// impairments). rng is the scenario's deterministic stream.
	Apply(rng *rand.Rand, samples []complex128) []complex128
}

// Milder is optionally implemented by impairments that can propose
// strictly less severe variants of themselves; the conformance shrinker
// uses it to minimize failing scenarios beyond plain impairment removal.
type Milder interface {
	// MilderVariants returns zero or more candidate replacements, each
	// strictly milder than the receiver. Returning nil ends shrinking on
	// this impairment.
	MilderVariants() []Impairment
}

// Scenario is a seeded, ordered list of impairments: the unit of
// fault injection the conformance harness runs, shrinks and replays.
type Scenario struct {
	Seed        int64
	Impairments []Impairment
}

// Apply runs every impairment over a copy of tx (the caller's buffer is
// never mutated) using a deterministic rng derived from the scenario seed,
// and returns the impaired samples. A scenario with no impairments returns
// a plain copy.
func (s Scenario) Apply(tx []complex128) []complex128 {
	sink := obs.Active()
	sink.Counter("faults.scenarios").Inc()
	out := append([]complex128(nil), tx...)
	rng := rand.New(rand.NewSource(s.Seed))
	for _, imp := range s.Impairments {
		out = imp.Apply(rng, out)
		sink.Counter("faults.impairments").Inc()
		sink.Counter("faults." + imp.Kind()).Inc()
	}
	return out
}

// String renders the scenario as its replay token: "seed=N" followed by
// one token per impairment, pipe-separated.
func (s Scenario) String() string {
	parts := make([]string, 0, 1+len(s.Impairments))
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	for _, imp := range s.Impairments {
		parts = append(parts, imp.Token())
	}
	return strings.Join(parts, "|")
}

// With returns a copy of the scenario with imps appended; the receiver is
// unchanged (the impairment slice is cloned, not shared).
func (s Scenario) With(imps ...Impairment) Scenario {
	out := Scenario{Seed: s.Seed}
	out.Impairments = append(append([]Impairment(nil), s.Impairments...), imps...)
	return out
}

// Without returns a copy of the scenario with the impairment at index i
// removed.
func (s Scenario) Without(i int) Scenario {
	out := Scenario{Seed: s.Seed}
	for j, imp := range s.Impairments {
		if j != i {
			out.Impairments = append(out.Impairments, imp)
		}
	}
	return out
}

// Replace returns a copy of the scenario with the impairment at index i
// replaced by imp.
func (s Scenario) Replace(i int, imp Impairment) Scenario {
	out := Scenario{Seed: s.Seed}
	out.Impairments = append([]Impairment(nil), s.Impairments...)
	out.Impairments[i] = imp
	return out
}
