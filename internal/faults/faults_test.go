package faults

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"

	"carpool/internal/obs"
	"carpool/internal/ofdm"
)

func testSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// allKindsScenario composes one impairment of every registered kind.
func allKindsScenario(seed int64) Scenario {
	return Scenario{Seed: seed, Impairments: []Impairment{
		CFO{EpsRad: 1.5e-4, Phase0: 0.3},
		Clip{Level: 1.1},
		Burst{Start: 500, Len: 200, GainDB: -2},
		AWGN{SNRdB: 18},
		SymbolNoise{Sym: 0, Count: 2, Amp: 0.7},
		PhaseJitter{SigmaRad: 0.06},
		Dropout{Start: 900, Len: 60},
		Truncate{At: 1800},
	}}
}

// TestScenarioDeterministic is the replay contract: the same scenario over
// the same input yields bit-identical samples, run after run.
func TestScenarioDeterministic(t *testing.T) {
	tx := testSignal(2400, 1)
	sc := allKindsScenario(42)
	a := sc.Apply(tx)
	b := sc.Apply(tx)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scenario replay is not bit-identical")
	}
	// The input buffer must never be mutated.
	if !reflect.DeepEqual(tx, testSignal(2400, 1)) {
		t.Fatal("Apply mutated the caller's buffer")
	}
	// A different seed must change the noise-driven output.
	c := Scenario{Seed: 43, Impairments: sc.Impairments}.Apply(tx)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical impaired samples")
	}
}

// TestScenarioStringRoundTrip pins the replay-token grammar: String ->
// ParseScenario -> String must be a fixed point for every registered kind.
func TestScenarioStringRoundTrip(t *testing.T) {
	sc := allKindsScenario(-7)
	if len(sc.Impairments) != len(Kinds()) {
		t.Fatalf("scenario covers %d kinds, registry has %d — extend allKindsScenario",
			len(sc.Impairments), len(Kinds()))
	}
	s1 := sc.String()
	parsed, err := ParseScenario(s1)
	if err != nil {
		t.Fatalf("ParseScenario(%q): %v", s1, err)
	}
	if s2 := parsed.String(); s2 != s1 {
		t.Fatalf("round trip changed token:\n  %s\n  %s", s1, s2)
	}
	tx := testSignal(2400, 2)
	if !reflect.DeepEqual(sc.Apply(tx), parsed.Apply(tx)) {
		t.Fatal("parsed scenario applies differently from the original")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, bad := range []string{
		"", "cfo(1,2)", "seed=x", "seed=1|nope(3)", "seed=1|cfo(1)",
		"seed=1|cfo(1,2", "seed=1|clip(a)",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted malformed input", bad)
		}
	}
}

func TestTruncateShortens(t *testing.T) {
	tx := testSignal(1000, 3)
	got := Scenario{Seed: 1, Impairments: []Impairment{Truncate{At: 640}}}.Apply(tx)
	if len(got) != 640 {
		t.Fatalf("truncated to %d samples, want 640", len(got))
	}
	if !reflect.DeepEqual(got, tx[:640]) {
		t.Fatal("truncation altered surviving samples")
	}
	if n := len(Scenario{Impairments: []Impairment{Truncate{At: -5}}}.Apply(tx)); n != 0 {
		t.Fatalf("negative At kept %d samples", n)
	}
	if n := len(Scenario{Impairments: []Impairment{Truncate{At: 5000}}}.Apply(tx)); n != 1000 {
		t.Fatalf("over-long At changed length to %d", n)
	}
}

func TestClipBoundsMagnitude(t *testing.T) {
	tx := testSignal(2000, 4)
	out := Scenario{Impairments: []Impairment{Clip{Level: 0.5}}}.Apply(tx)
	var rms float64
	for _, s := range tx {
		rms += real(s)*real(s) + imag(s)*imag(s)
	}
	rms = math.Sqrt(rms / float64(len(tx)))
	limit := 0.5*rms + 1e-12
	clipped := 0
	for i, s := range out {
		if cmplx.Abs(s) > limit {
			t.Fatalf("sample %d magnitude %v exceeds clip limit %v", i, cmplx.Abs(s), limit)
		}
		if s != tx[i] {
			clipped++
		}
	}
	if clipped == 0 {
		t.Fatal("Level=0.5 clipped nothing")
	}
}

func TestDropoutAndBurstConfineToWindow(t *testing.T) {
	tx := testSignal(1000, 5)
	out := Scenario{Seed: 9, Impairments: []Impairment{
		Dropout{Start: 100, Len: 50},
		Burst{Start: 400, Len: 80, GainDB: 3},
	}}.Apply(tx)
	for i := range out {
		in := (i >= 100 && i < 150) || (i >= 400 && i < 480)
		if in == (out[i] == tx[i]) {
			// Inside a window the sample must change (dropout zeroes it,
			// burst adds continuous noise); outside it must not.
			t.Fatalf("sample %d: window=%v changed=%v", i, in, out[i] != tx[i])
		}
	}
	for i := 100; i < 150; i++ {
		if out[i] != 0 {
			t.Fatalf("dropout left sample %d nonzero", i)
		}
	}
}

func TestSymbolNoiseTargetsSymbols(t *testing.T) {
	n := ofdm.PreambleLen + 6*ofdm.SymbolLen
	tx := testSignal(n, 6)
	out := Scenario{Seed: 3, Impairments: []Impairment{
		SymbolNoise{Sym: 2, Count: 1, Amp: 1},
	}}.Apply(tx)
	lo := ofdm.PreambleLen + 2*ofdm.SymbolLen
	hi := lo + ofdm.SymbolLen
	for i := range out {
		changed := out[i] != tx[i]
		if changed != (i >= lo && i < hi) {
			t.Fatalf("sample %d changed=%v, window [%d,%d)", i, changed, lo, hi)
		}
	}
}

// TestMilderVariantsAreFinite walks every shrinkable impairment's milder
// chain to a fixed point, guarding the conformance shrinker against loops.
func TestMilderVariantsAreFinite(t *testing.T) {
	for _, imp := range allKindsScenario(1).Impairments {
		frontier := []Impairment{imp}
		for depth := 0; len(frontier) > 0; depth++ {
			if depth > 64 {
				t.Fatalf("%s: milder chain exceeds depth 64", imp.Kind())
			}
			var next []Impairment
			for _, f := range frontier {
				if m, ok := f.(Milder); ok {
					next = append(next, m.MilderVariants()...)
				}
			}
			frontier = next
		}
	}
}

// TestObsCounters checks the faults.* counter contract.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(&obs.Sink{Registry: reg})
	defer obs.Disable()
	tx := testSignal(500, 7)
	Scenario{Seed: 1, Impairments: []Impairment{Clip{Level: 1}, AWGN{SNRdB: 20}}}.Apply(tx)
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"faults.scenarios": 1, "faults.impairments": 2,
		"faults.clip": 1, "faults.awgn": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
