package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Builder constructs an impairment from the numeric arguments of its
// scenario token. It must reject the wrong argument count.
type Builder func(args []float64) (Impairment, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register installs a builder for a new impairment kind, making it
// composable in scenario strings. Registering a duplicate kind panics:
// that is always a wiring bug.
func Register(kind string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("faults: duplicate impairment kind " + kind)
	}
	registry[kind] = b
}

// Kinds lists the registered impairment kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("cfo", arity(2, func(a []float64) Impairment { return CFO{EpsRad: a[0], Phase0: a[1]} }))
	Register("clip", arity(1, func(a []float64) Impairment { return Clip{Level: a[0]} }))
	Register("burst", arity(3, func(a []float64) Impairment {
		return Burst{Start: int(a[0]), Len: int(a[1]), GainDB: a[2]}
	}))
	Register("trunc", arity(1, func(a []float64) Impairment { return Truncate{At: int(a[0])} }))
	Register("awgn", arity(1, func(a []float64) Impairment { return AWGN{SNRdB: a[0]} }))
	Register("symnoise", arity(3, func(a []float64) Impairment {
		return SymbolNoise{Sym: int(a[0]), Count: int(a[1]), Amp: a[2]}
	}))
	Register("phasejitter", arity(1, func(a []float64) Impairment { return PhaseJitter{SigmaRad: a[0]} }))
	Register("dropout", arity(2, func(a []float64) Impairment {
		return Dropout{Start: int(a[0]), Len: int(a[1])}
	}))
}

func arity(n int, build func([]float64) Impairment) Builder {
	return func(args []float64) (Impairment, error) {
		if len(args) != n {
			return nil, fmt.Errorf("faults: want %d args, got %d", n, len(args))
		}
		return build(args), nil
	}
}

// ParseScenario inverts Scenario.String: "seed=N|kind(a,b)|kind(c)".
// Whitespace around tokens is ignored. The parsed scenario's String
// round-trips to an equivalent token (numeric formatting is canonical).
func ParseScenario(s string) (Scenario, error) {
	var sc Scenario
	parts := strings.Split(s, "|")
	if len(parts) == 0 {
		return sc, fmt.Errorf("faults: empty scenario")
	}
	head := strings.TrimSpace(parts[0])
	if !strings.HasPrefix(head, "seed=") {
		return sc, fmt.Errorf("faults: scenario must start with seed=N, got %q", head)
	}
	seed, err := strconv.ParseInt(strings.TrimPrefix(head, "seed="), 10, 64)
	if err != nil {
		return sc, fmt.Errorf("faults: bad seed in %q: %v", head, err)
	}
	sc.Seed = seed
	for _, tok := range parts[1:] {
		imp, err := ParseImpairment(strings.TrimSpace(tok))
		if err != nil {
			return Scenario{}, err
		}
		sc.Impairments = append(sc.Impairments, imp)
	}
	return sc, nil
}

// ParseImpairment parses one "kind(arg,...)" token through the registry.
func ParseImpairment(tok string) (Impairment, error) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return nil, fmt.Errorf("faults: malformed impairment token %q", tok)
	}
	kind := tok[:open]
	regMu.RLock()
	build := registry[kind]
	regMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("faults: unknown impairment kind %q (have %v)", kind, Kinds())
	}
	body := tok[open+1 : len(tok)-1]
	var args []float64
	if body != "" {
		for _, f := range strings.Split(body, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad argument in %q: %v", tok, err)
			}
			args = append(args, v)
		}
	}
	imp, err := build(args)
	if err != nil {
		return nil, fmt.Errorf("faults: %q: %w", tok, err)
	}
	return imp, nil
}

// token renders "kind(a,b,c)".
func token(kind string, args ...string) string {
	return kind + "(" + strings.Join(args, ",") + ")"
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func itoa(v int) string { return strconv.Itoa(v) }
