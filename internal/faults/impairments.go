package faults

import (
	"math"
	"math/cmplx"
	"math/rand"

	"carpool/internal/dsp"
	"carpool/internal/ofdm"
)

// CFO applies a residual carrier-frequency offset as a phase ramp:
// sample n is rotated by Phase0 + EpsRad*n radians. It models the part of
// the oscillator offset the receiver's CFO estimator did not remove, plus
// a constant phase bias.
type CFO struct {
	// EpsRad is the residual offset in radians per sample.
	EpsRad float64
	// Phase0 is the initial phase of the ramp in radians.
	Phase0 float64
}

func (c CFO) Kind() string { return "cfo" }

func (c CFO) Token() string { return token("cfo", ftoa(c.EpsRad), ftoa(c.Phase0)) }

func (c CFO) Apply(_ *rand.Rand, samples []complex128) []complex128 {
	for n := range samples {
		samples[n] *= cmplx.Exp(complex(0, c.Phase0+c.EpsRad*float64(n)))
	}
	return samples
}

func (c CFO) MilderVariants() []Impairment {
	if math.Abs(c.EpsRad) < 1e-6 && math.Abs(c.Phase0) < 1e-3 {
		return nil
	}
	return []Impairment{CFO{EpsRad: c.EpsRad / 2, Phase0: c.Phase0 / 2}}
}

// Clip saturates sample magnitudes at Level times the stream's RMS
// amplitude, modeling AGC overdrive / ADC clipping. Level <= 1 clips hard
// into the signal body; levels above ~3 touch only rare peaks.
type Clip struct {
	// Level is the clip threshold as a multiple of RMS amplitude.
	Level float64
}

func (c Clip) Kind() string { return "clip" }

func (c Clip) Token() string { return token("clip", ftoa(c.Level)) }

func (c Clip) Apply(_ *rand.Rand, samples []complex128) []complex128 {
	rms := math.Sqrt(dsp.MeanPower(samples))
	if rms == 0 {
		return samples
	}
	limit := c.Level * rms
	for n, s := range samples {
		if a := cmplx.Abs(s); a > limit {
			samples[n] = s * complex(limit/a, 0)
		}
	}
	return samples
}

func (c Clip) MilderVariants() []Impairment {
	if c.Level >= 4 {
		return nil
	}
	return []Impairment{Clip{Level: c.Level * 2}}
}

// Burst adds impulsive Gaussian interference over the sample window
// [Start, Start+Len): a microwave-oven or co-channel burst. GainDB sets the
// interference power relative to the signal (0 dB = equal power, positive
// = stronger than the signal).
type Burst struct {
	Start, Len int
	GainDB     float64
}

func (b Burst) Kind() string { return "burst" }

func (b Burst) Token() string { return token("burst", itoa(b.Start), itoa(b.Len), ftoa(b.GainDB)) }

func (b Burst) Apply(rng *rand.Rand, samples []complex128) []complex128 {
	lo, hi := clampRange(b.Start, b.Len, len(samples))
	if lo >= hi {
		return samples
	}
	sigma2 := dsp.MeanPower(samples) * math.Pow(10, b.GainDB/10)
	dsp.NewGaussianSource(rng).AddNoise(samples[lo:hi], sigma2)
	return samples
}

func (b Burst) MilderVariants() []Impairment {
	var out []Impairment
	if b.Len > 40 {
		out = append(out, Burst{Start: b.Start, Len: b.Len / 2, GainDB: b.GainDB})
	}
	if b.GainDB > -12 {
		out = append(out, Burst{Start: b.Start, Len: b.Len, GainDB: b.GainDB - 6})
	}
	return out
}

// Truncate cuts the stream after At samples: the tail of the frame never
// reaches the receiver, as when the radio retunes or an interferer captures
// the AGC mid-frame.
type Truncate struct {
	// At is the number of leading samples kept.
	At int
}

func (t Truncate) Kind() string { return "trunc" }

func (t Truncate) Token() string { return token("trunc", itoa(t.At)) }

func (t Truncate) Apply(_ *rand.Rand, samples []complex128) []complex128 {
	if t.At < 0 {
		return samples[:0]
	}
	if t.At < len(samples) {
		return samples[:t.At]
	}
	return samples
}

// AWGN adds white Gaussian noise at the given SNR relative to the current
// stream power, independent of whatever the channel model already added.
type AWGN struct {
	SNRdB float64
}

func (a AWGN) Kind() string { return "awgn" }

func (a AWGN) Token() string { return token("awgn", ftoa(a.SNRdB)) }

func (a AWGN) Apply(rng *rand.Rand, samples []complex128) []complex128 {
	p := dsp.MeanPower(samples)
	if p == 0 {
		return samples
	}
	dsp.NewGaussianSource(rng).AddNoise(samples, dsp.NoiseVarianceForSNR(p, a.SNRdB))
	return samples
}

func (a AWGN) MilderVariants() []Impairment {
	if a.SNRdB >= 40 {
		return nil
	}
	return []Impairment{AWGN{SNRdB: a.SNRdB + 6}}
}

// SymbolNoise corrupts Count whole OFDM symbols starting at absolute
// symbol index Sym (0 = the first symbol after the preamble), adding
// Gaussian noise with amplitude Amp relative to the signal's RMS. This is
// the targeted-corruption primitive: Sym=0,Count=2 hits the A-HDR, Sym at
// a subframe's StartSymbol hits its SIG, and a span inside a DATA field
// attacks the symbol-CRC side channel's group.
type SymbolNoise struct {
	Sym, Count int
	// Amp scales the noise amplitude relative to RMS (1 = noise as strong
	// as the signal).
	Amp float64
}

func (s SymbolNoise) Kind() string { return "symnoise" }

func (s SymbolNoise) Token() string {
	return token("symnoise", itoa(s.Sym), itoa(s.Count), ftoa(s.Amp))
}

func (s SymbolNoise) Apply(rng *rand.Rand, samples []complex128) []complex128 {
	start := ofdm.PreambleLen + s.Sym*ofdm.SymbolLen
	lo, hi := clampRange(start, s.Count*ofdm.SymbolLen, len(samples))
	if lo >= hi {
		return samples
	}
	sigma2 := dsp.MeanPower(samples) * s.Amp * s.Amp
	dsp.NewGaussianSource(rng).AddNoise(samples[lo:hi], sigma2)
	return samples
}

func (s SymbolNoise) MilderVariants() []Impairment {
	var out []Impairment
	if s.Amp > 0.05 {
		out = append(out, SymbolNoise{Sym: s.Sym, Count: s.Count, Amp: s.Amp / 2})
	}
	if s.Count > 1 {
		out = append(out, SymbolNoise{Sym: s.Sym, Count: s.Count / 2, Amp: s.Amp})
	}
	return out
}

// PhaseJitter rotates every OFDM symbol after the preamble by an
// independent Gaussian common phase (std dev SigmaRad). The data symbols
// still demodulate — the pilots track common phase — but the injected
// phase-offset side channel rides exactly on that quantity, so jitter
// stresses the symbol-CRC side channel specifically.
type PhaseJitter struct {
	SigmaRad float64
}

func (p PhaseJitter) Kind() string { return "phasejitter" }

func (p PhaseJitter) Token() string { return token("phasejitter", ftoa(p.SigmaRad)) }

func (p PhaseJitter) Apply(rng *rand.Rand, samples []complex128) []complex128 {
	for off := ofdm.PreambleLen; off < len(samples); off += ofdm.SymbolLen {
		rot := cmplx.Exp(complex(0, rng.NormFloat64()*p.SigmaRad))
		hi := off + ofdm.SymbolLen
		if hi > len(samples) {
			hi = len(samples)
		}
		for n := off; n < hi; n++ {
			samples[n] *= rot
		}
	}
	return samples
}

func (p PhaseJitter) MilderVariants() []Impairment {
	if p.SigmaRad < 0.01 {
		return nil
	}
	return []Impairment{PhaseJitter{SigmaRad: p.SigmaRad / 2}}
}

// Dropout zeroes the sample window [Start, Start+Len): a receive chain
// blanking out entirely, e.g. during an AGC retrain.
type Dropout struct {
	Start, Len int
}

func (d Dropout) Kind() string { return "dropout" }

func (d Dropout) Token() string { return token("dropout", itoa(d.Start), itoa(d.Len)) }

func (d Dropout) Apply(_ *rand.Rand, samples []complex128) []complex128 {
	lo, hi := clampRange(d.Start, d.Len, len(samples))
	for n := lo; n < hi; n++ {
		samples[n] = 0
	}
	return samples
}

func (d Dropout) MilderVariants() []Impairment {
	if d.Len <= 20 {
		return nil
	}
	return []Impairment{Dropout{Start: d.Start, Len: d.Len / 2}}
}

// clampRange intersects [start, start+length) with [0, n).
func clampRange(start, length, n int) (lo, hi int) {
	lo, hi = start, start+length
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
