// Package dsp provides the signal-processing primitives that the OFDM
// physical layer is built on: complex-vector arithmetic, a radix-2 FFT,
// correlation utilities, and decibel conversions.
//
// All routines operate on []complex128 in place where documented, and are
// deterministic: any randomness is injected by the caller through an
// explicit *rand.Rand.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
//
// The convention matches MATLAB/NumPy: X[k] = sum_n x[n] * exp(-j*2*pi*k*n/N),
// with no normalization on the forward transform.
func FFT(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	if n == 64 {
		fft64(x, false)
		return nil
	}
	fftInPlace(x, false)
	return nil
}

// IFFT computes the in-place inverse FFT of x with 1/N normalization.
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: IFFT length %d is not a power of two", n)
	}
	if n == 64 {
		fft64(x, true)
	} else {
		fftInPlace(x, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

// fftInPlace performs the transform. inverse selects the conjugated twiddle
// factors (no normalization here; IFFT applies 1/N).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}

	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// FFTShift swaps the two halves of x so that the zero-frequency bin moves to
// the center. It returns a new slice and leaves x untouched.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// Scale multiplies every element of x by the real factor a, in place.
func Scale(x []complex128, a float64) {
	c := complex(a, 0)
	for i := range x {
		x[i] *= c
	}
}

// Energy returns the total energy sum(|x[i]|^2).
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// MeanPower returns the average per-sample power of x, or 0 for empty input.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// DotConj returns sum(a[i] * conj(b[i])) over the common prefix of a and b.
func DotConj(a, b []complex128) complex128 {
	n := min(len(a), len(b))
	var s complex128
	for i := 0; i < n; i++ {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

// CrossCorrelate computes c[k] = sum_n a[n+k] * conj(b[n]) for
// k = 0..len(a)-len(b). It panics if b is longer than a or empty.
func CrossCorrelate(a, b []complex128) []complex128 {
	if len(b) == 0 || len(b) > len(a) {
		panic(fmt.Sprintf("dsp: CrossCorrelate needs 0 < len(b) <= len(a), got %d, %d", len(b), len(a)))
	}
	out := make([]complex128, len(a)-len(b)+1)
	for k := range out {
		out[k] = DotConj(a[k:k+len(b)], b)
	}
	return out
}

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// WrapPhase maps an angle in radians into (-pi, pi].
func WrapPhase(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// Rotate multiplies every element of x by exp(j*theta), in place.
func Rotate(x []complex128, theta float64) {
	r := cmplx.Exp(complex(0, theta))
	for i := range x {
		x[i] *= r
	}
}

// Conjugate returns a new slice holding the element-wise conjugate of x.
func Conjugate(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = cmplx.Conj(v)
	}
	return out
}
