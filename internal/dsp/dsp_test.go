package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPowerOfTwo(t *testing.T) {
	tests := []struct {
		n    int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{63, false}, {64, true}, {65, false}, {-4, false}, {1024, true},
	}
	for _, tt := range tests {
		if got := IsPowerOfTwo(tt.n); got != tt.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 48)); err == nil {
		t.Error("FFT accepted length 48")
	}
	if err := IFFT(make([]complex128, 10)); err == nil {
		t.Error("IFFT accepted length 10")
	}
}

func TestFFTImpulse(t *testing.T) {
	// The FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// exp(j*2*pi*k0*n/N) concentrates all energy in bin k0.
	const n, k0 = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k0*i)/float64(n)))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		want := complex(0, 0)
		if k == k0 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomVector(rng, 64)
	b := randomVector(rng, 64)
	sum := make([]complex128, 64)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	mustFFT(t, a)
	mustFFT(t, b)
	mustFFT(t, sum)
	for i := range sum {
		want := 2*a[i] + 3*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d: %v vs %v", i, sum[i], want)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9)) // 2..1024
		x := randomVector(rng, n)
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsevalTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomVector(rng, 128)
		timeEnergy := Energy(x)
		if err := FFT(x); err != nil {
			return false
		}
		freqEnergy := Energy(x) / 128
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
	// Odd length: zero bin index 0 moves to the center.
	x5 := []complex128{0, 1, 2, 3, 4}
	got5 := FFTShift(x5)
	want5 := []complex128{3, 4, 0, 1, 2}
	for i := range want5 {
		if got5[i] != want5[i] {
			t.Fatalf("FFTShift odd = %v, want %v", got5, want5)
		}
	}
}

func TestEnergyAndMeanPower(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1}
	if got := Energy(x); math.Abs(got-26) > 1e-12 {
		t.Errorf("Energy = %v, want 26", got)
	}
	if got := MeanPower(x); math.Abs(got-26.0/3) > 1e-12 {
		t.Errorf("MeanPower = %v, want %v", got, 26.0/3)
	}
	if got := MeanPower(nil); got != 0 {
		t.Errorf("MeanPower(nil) = %v, want 0", got)
	}
}

func TestScaleAndRotate(t *testing.T) {
	x := []complex128{1, 1i}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 2i {
		t.Fatalf("Scale result %v", x)
	}
	Rotate(x, math.Pi/2)
	if cmplx.Abs(x[0]-2i) > 1e-12 || cmplx.Abs(x[1]-(-2)) > 1e-12 {
		t.Fatalf("Rotate result %v", x)
	}
}

func TestDotConjAndCrossCorrelate(t *testing.T) {
	a := []complex128{1, 2, 3, 4}
	b := []complex128{1, 1}
	c := CrossCorrelate(a, b)
	want := []complex128{3, 5, 7}
	if len(c) != len(want) {
		t.Fatalf("CrossCorrelate length %d, want %d", len(c), len(want))
	}
	for i := range want {
		if cmplx.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("CrossCorrelate = %v, want %v", c, want)
		}
	}
}

func TestCrossCorrelatePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for len(b) > len(a)")
		}
	}()
	CrossCorrelate([]complex128{1}, []complex128{1, 2})
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 100) // keep in a sane range
		return math.Abs(DB(FromDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPhase(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapPhase(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestConjugate(t *testing.T) {
	x := []complex128{1 + 2i, -3i}
	got := Conjugate(x)
	if got[0] != 1-2i || got[1] != 3i {
		t.Fatalf("Conjugate = %v", got)
	}
	if x[0] != 1+2i {
		t.Fatal("Conjugate mutated its input")
	}
}

func TestGaussianSourceStatistics(t *testing.T) {
	src := NewGaussianSource(rand.New(rand.NewSource(7)))
	const n = 200000
	const sigma2 = 2.0
	var sum complex128
	var power float64
	for i := 0; i < n; i++ {
		s := src.Sample(sigma2)
		sum += s
		power += real(s)*real(s) + imag(s)*imag(s)
	}
	mean := cmplx.Abs(sum) / n
	if mean > 0.02 {
		t.Errorf("sample mean magnitude %v too large", mean)
	}
	avgPower := power / n
	if math.Abs(avgPower-sigma2) > 0.05 {
		t.Errorf("sample power %v, want ~%v", avgPower, sigma2)
	}
}

func TestAddNoiseAchievesTargetSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewGaussianSource(rng)
	signal := make([]complex128, 100000)
	for i := range signal {
		signal[i] = 1 // unit power
	}
	noisy := append([]complex128(nil), signal...)
	const snrDB = 10.0
	sigma2 := NoiseVarianceForSNR(1.0, snrDB)
	src.AddNoise(noisy, sigma2)
	var noisePower float64
	for i := range noisy {
		d := noisy[i] - signal[i]
		noisePower += real(d)*real(d) + imag(d)*imag(d)
	}
	noisePower /= float64(len(noisy))
	gotSNR := DB(1.0 / noisePower)
	if math.Abs(gotSNR-snrDB) > 0.2 {
		t.Errorf("achieved SNR %.2f dB, want %.2f", gotSNR, snrDB)
	}
}

func TestNewGaussianSourceNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil rng")
		}
	}()
	NewGaussianSource(nil)
}

func randomVector(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func mustFFT(t *testing.T, x []complex128) {
	t.Helper()
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
}
