package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// The generic radix-2 kernel is the correctness oracle for the specialized
// size-64 kernel: both must agree to floating-point tolerance on random
// vectors, in both directions.
func TestFFT64MatchesGenericKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 50; trial++ {
		x := make([]complex128, 64)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for _, inverse := range []bool{false, true} {
			fast := append([]complex128(nil), x...)
			ref := append([]complex128(nil), x...)
			fft64(fast, inverse)
			fftInPlace(ref, inverse)
			for i := range ref {
				if d := fast[i] - ref[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
					t.Fatalf("trial %d inverse=%v bin %d: kernel %v, oracle %v",
						trial, inverse, i, fast[i], ref[i])
				}
			}
		}
	}
}

func TestFFT64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := y[i] - x[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("round trip bin %d: got %v, want %v", i, y[i], x[i])
		}
	}
}

// TestFFT64KnownBasis checks a pure tone lands in exactly one bin — a sanity
// check independent of the generic kernel.
func TestFFT64KnownBasis(t *testing.T) {
	const k = 5
	x := make([]complex128, 64)
	for n := range x {
		ang := 2 * math.Pi * float64(k) * float64(n) / 64
		x[n] = complex(math.Cos(ang), math.Sin(ang))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == k {
			want = 64
		}
		if math.Abs(real(v)-want) > 1e-9 || math.Abs(imag(v)) > 1e-9 {
			t.Fatalf("bin %d: got %v, want %.0f", i, v, want)
		}
	}
}

func TestFFT64ZeroAllocs(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i), -float64(i))
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("FFT64+IFFT64 allocated %.1f times per op, want 0", n)
	}
}
