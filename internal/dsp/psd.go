package dsp

import (
	"fmt"
	"math"
)

// PSD estimates the power spectral density of x by Welch's method:
// Hann-windowed segments of the given FFT size with 50% overlap, averaged
// periodograms. The result has fftSize bins in natural FFT order
// (bin 0 = DC); use FFTShift to center it. Bin values are mean power per
// bin (the window's coherent gain is compensated).
func PSD(x []complex128, fftSize int) ([]float64, error) {
	if !IsPowerOfTwo(fftSize) {
		return nil, fmt.Errorf("dsp: PSD FFT size %d is not a power of two", fftSize)
	}
	if len(x) < fftSize {
		return nil, fmt.Errorf("dsp: PSD needs at least %d samples, got %d", fftSize, len(x))
	}
	window := make([]float64, fftSize)
	var windowPower float64
	for i := range window {
		window[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(fftSize))
		windowPower += window[i] * window[i]
	}
	out := make([]float64, fftSize)
	seg := make([]complex128, fftSize)
	segments := 0
	for start := 0; start+fftSize <= len(x); start += fftSize / 2 {
		for i := 0; i < fftSize; i++ {
			seg[i] = x[start+i] * complex(window[i], 0)
		}
		if err := FFT(seg); err != nil {
			return nil, err
		}
		for i, v := range seg {
			out[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	norm := 1 / (float64(segments) * windowPower)
	for i := range out {
		out[i] *= norm
	}
	return out, nil
}

// OccupiedBandwidthBins returns how many PSD bins hold at least the given
// fraction of the peak bin's power — a crude occupied-bandwidth measure
// used to sanity-check waveforms.
func OccupiedBandwidthBins(psd []float64, fractionOfPeak float64) int {
	peak := 0.0
	for _, v := range psd {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return 0
	}
	n := 0
	for _, v := range psd {
		if v >= peak*fractionOfPeak {
			n++
		}
	}
	return n
}
