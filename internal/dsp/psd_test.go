package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestPSDValidation(t *testing.T) {
	if _, err := PSD(make([]complex128, 100), 63); err == nil {
		t.Error("accepted non-power-of-two FFT size")
	}
	if _, err := PSD(make([]complex128, 10), 64); err == nil {
		t.Error("accepted too-short input")
	}
}

func TestPSDSingleTone(t *testing.T) {
	// A pure tone concentrates its power around one bin.
	const n, fftSize, bin = 4096, 256, 40
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(bin*i)/float64(fftSize)))
	}
	psd, err := PSD(x, fftSize)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakBin := 0.0, -1
	for i, v := range psd {
		if v > peak {
			peak, peakBin = v, i
		}
	}
	if peakBin != bin {
		t.Errorf("peak at bin %d, want %d", peakBin, bin)
	}
	// Energy far from the tone must be tiny (Hann sidelobes < -30 dB).
	far := psd[(bin+fftSize/2)%fftSize]
	if far > peak*1e-3 {
		t.Errorf("far-bin leakage %.2e vs peak %.2e", far, peak)
	}
}

func TestPSDWhiteNoiseIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewGaussianSource(rng)
	x := make([]complex128, 1<<15)
	src.AddNoise(x, 1)
	psd, err := PSD(x, 128)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range psd {
		mean += v
	}
	mean /= float64(len(psd))
	for i, v := range psd {
		if v < mean*0.5 || v > mean*2 {
			t.Errorf("bin %d power %.3e not within 3 dB of mean %.3e", i, v, mean)
		}
	}
}

func TestOccupiedBandwidthBins(t *testing.T) {
	psd := []float64{0, 1, 10, 9, 8, 0.5, 0}
	if got := OccupiedBandwidthBins(psd, 0.5); got != 3 {
		t.Errorf("got %d bins, want 3", got)
	}
	if OccupiedBandwidthBins([]float64{0, 0}, 0.5) != 0 {
		t.Error("all-zero PSD should occupy nothing")
	}
}
