package dsp

import (
	"math"
	"math/rand"
)

// GaussianSource draws complex Gaussian samples from an explicit RNG so that
// simulations stay reproducible. The zero value is not usable; construct with
// NewGaussianSource.
type GaussianSource struct {
	rng *rand.Rand
}

// NewGaussianSource returns a source backed by rng. rng must not be nil.
func NewGaussianSource(rng *rand.Rand) *GaussianSource {
	if rng == nil {
		panic("dsp: NewGaussianSource requires a non-nil rng")
	}
	return &GaussianSource{rng: rng}
}

// Sample returns one circularly-symmetric complex Gaussian sample with total
// variance sigma2 (sigma2/2 per real dimension).
func (g *GaussianSource) Sample(sigma2 float64) complex128 {
	s := math.Sqrt(sigma2 / 2)
	return complex(g.rng.NormFloat64()*s, g.rng.NormFloat64()*s)
}

// AddNoise adds complex Gaussian noise of total per-sample variance sigma2 to
// x in place.
func (g *GaussianSource) AddNoise(x []complex128, sigma2 float64) {
	s := math.Sqrt(sigma2 / 2)
	for i := range x {
		x[i] += complex(g.rng.NormFloat64()*s, g.rng.NormFloat64()*s)
	}
}

// NoiseVarianceForSNR returns the per-sample noise variance that yields the
// requested SNR in dB against a signal of the given mean power.
func NoiseVarianceForSNR(signalPower, snrDB float64) float64 {
	return signalPower / FromDB(snrDB)
}
