package dsp

import "math"

// This file holds the specialized size-64 transform kernel. Every OFDM
// symbol in the 20 MHz 802.11 waveform costs one 64-point transform on each
// side of the air interface, so this single size dominates the simulator's
// FFT budget. The kernel differs from the generic radix-2 path in three
// ways: the twiddle factors and the bit-reversal permutation are precomputed
// at package init (no cmplx.Exp, no recurrence error accumulation), the
// first two butterfly stages are specialized for their trivial twiddles
// (1 and ±i), and the stage loops are bounded by constants so the compiler
// can eliminate bounds checks. The generic fftInPlace remains the fallback
// for every other power-of-two size and the correctness oracle in tests.

// fft64Fwd[k] = exp(-2πi·k/64); fft64Inv is its conjugate. Only the first
// half-period is needed: stage s uses entries k·(64>>s).
var (
	fft64Fwd [32]complex128
	fft64Inv [32]complex128
	// swaps64 lists the 28 index pairs (i, rev(i)) with i < rev(i), so the
	// permutation runs without per-element branching.
	swaps64 [28][2]uint8
)

func init() {
	for k := 0; k < 32; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / 64)
		fft64Fwd[k] = complex(c, s)
		fft64Inv[k] = complex(c, -s)
	}
	n := 0
	for i := 0; i < 64; i++ {
		j := 0
		for b := 0; b < 6; b++ {
			if i&(1<<b) != 0 {
				j |= 1 << (5 - b)
			}
		}
		if i < j {
			swaps64[n] = [2]uint8{uint8(i), uint8(j)}
			n++
		}
	}
	if n != len(swaps64) {
		panic("dsp: bit-reversal swap count mismatch")
	}
}

// fft64 is the specialized 64-point in-place transform. Semantics match
// fftInPlace(x, inverse) exactly: no normalization (IFFT applies 1/N).
func fft64(x []complex128, inverse bool) {
	x = x[:64:64]

	for _, p := range &swaps64 {
		i, j := p[0], p[1]
		x[i], x[j] = x[j], x[i]
	}

	// Stages 1+2 fused into 4-point butterflies. All twiddles are trivial:
	// 1 and -i (forward) / +i (inverse), so no complex multiplies yet.
	sign := 1.0
	if inverse {
		sign = -1.0
	}
	for i := 0; i < 64; i += 4 {
		a, b, c, d := x[i], x[i+1], x[i+2], x[i+3]
		t0, t1 := a+b, a-b
		t2, cd := c+d, c-d
		t3 := complex(sign*imag(cd), -sign*real(cd)) // (c-d) * ∓i
		x[i], x[i+2] = t0+t2, t0-t2
		x[i+1], x[i+3] = t1+t3, t1-t3
	}

	tw := &fft64Fwd
	if inverse {
		tw = &fft64Inv
	}
	// Stages 3..6 (lengths 8, 16, 32, 64) with table twiddles.
	for _, length := range [4]int{8, 16, 32, 64} {
		half := length >> 1
		step := 64 / length
		for i := 0; i < 64; i += length {
			ti := 0
			for j := i; j < i+half; j++ {
				v := x[j+half] * tw[ti]
				u := x[j]
				x[j] = u + v
				x[j+half] = u - v
				ti += step
			}
		}
	}
}
