package traffic

import (
	"math/rand"
	"sort"
	"time"
)

// WLANTrace is a synthetic whole-WLAN capture reproducing the aggregate
// statistics the paper measures in §2 (Fig. 1): per-second active-STA
// counts, the downlink/uplink volume split, and the frame-size mix.
type WLANTrace struct {
	// ActiveSTAs[i] is the number of STAs with downlink traffic during
	// second i.
	ActiveSTAs []int
	// Downlink and Uplink are the frame streams by direction.
	Downlink []Arrival
	Uplink   []Arrival
}

// TraceConfig shapes the synthetic capture.
type TraceConfig struct {
	// Duration of the capture.
	Duration time.Duration
	// NumSTAs associated with the AP (the library trace saw 6..28 per AP).
	NumSTAs int
	// DownlinkRatio is the target fraction of downlink traffic volume
	// (0.80 for SIGCOMM'04, 0.834 for SIGCOMM'08, 0.892 for the library).
	DownlinkRatio float64
	// MeanActive is the average number of concurrently active STAs
	// (7.63 in the library trace).
	MeanActive float64
	Seed       int64
}

// LibraryTraceConfig returns the configuration matching the paper's campus
// library measurement.
func LibraryTraceConfig() TraceConfig {
	return TraceConfig{
		Duration:      300 * time.Second,
		NumSTAs:       20,
		DownlinkRatio: 0.892,
		MeanActive:    7.63,
		Seed:          1,
	}
}

// SIGCOMM08TraceConfig returns the configuration matching the SIGCOMM'08
// public trace statistics.
func SIGCOMM08TraceConfig() TraceConfig {
	return TraceConfig{
		Duration:      300 * time.Second,
		NumSTAs:       25,
		DownlinkRatio: 0.834,
		MeanActive:    9,
		Seed:          2,
	}
}

// GenerateTrace synthesizes a capture. Each STA alternates between active
// bursts (downloading at a few frames per 100 ms) and idle gaps, tuned so
// the expected concurrently-active count matches MeanActive; uplink traffic
// (requests, ACK-sized frames) is scaled to hit the configured volume
// ratio.
func GenerateTrace(cfg TraceConfig) *WLANTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	seconds := int(cfg.Duration / time.Second)
	tr := &WLANTrace{ActiveSTAs: make([]int, seconds)}
	if cfg.NumSTAs <= 0 || seconds == 0 {
		return tr
	}
	activeFraction := cfg.MeanActive / float64(cfg.NumSTAs)
	if activeFraction > 1 {
		activeFraction = 1
	}
	// Mean burst 4 s; idle duration chosen to hit the active fraction.
	burstMean := 4 * time.Second
	idleMean := time.Duration(float64(burstMean) * (1 - activeFraction) / activeFraction)

	activeAt := make([][]bool, cfg.NumSTAs)
	for s := 0; s < cfg.NumSTAs; s++ {
		activeAt[s] = make([]bool, seconds)
		now := time.Duration(0)
		on := rng.Float64() < activeFraction
		for now < cfg.Duration {
			var span time.Duration
			if on {
				span = expDuration(rng, burstMean)
				end := now + span
				// Downlink frames every 20-120 ms during the burst.
				for t := now; t < end && t < cfg.Duration; t += 20*time.Millisecond + time.Duration(rng.Int63n(int64(100*time.Millisecond))) {
					tr.Downlink = append(tr.Downlink, Arrival{Time: t, Size: FrameSize(rng)})
					sec := int(t / time.Second)
					activeAt[s][sec] = true
				}
			} else {
				span = expDuration(rng, idleMean)
			}
			now += span
			on = !on
		}
	}
	for sec := 0; sec < seconds; sec++ {
		n := 0
		for s := 0; s < cfg.NumSTAs; s++ {
			if activeAt[s][sec] {
				n++
			}
		}
		tr.ActiveSTAs[sec] = n
	}

	// Uplink volume: requests and TCP ACKs, small frames, scaled to the
	// complement of the downlink ratio.
	downBytes := TotalBytes(tr.Downlink)
	targetUp := int(float64(downBytes) * (1 - cfg.DownlinkRatio) / cfg.DownlinkRatio)
	upBytes := 0
	for upBytes < targetUp {
		t := time.Duration(rng.Int63n(int64(cfg.Duration)))
		size := 40 + rng.Intn(160) // request/ACK sized
		tr.Uplink = append(tr.Uplink, Arrival{Time: t, Size: size})
		upBytes += size
	}
	sortArrivals(tr.Downlink)
	sortArrivals(tr.Uplink)
	return tr
}

func sortArrivals(a []Arrival) {
	sort.Slice(a, func(i, j int) bool { return a[i].Time < a[j].Time })
}

// DownlinkRatio returns the downlink share of total traffic volume.
func (t *WLANTrace) DownlinkRatio() float64 {
	down := TotalBytes(t.Downlink)
	up := TotalBytes(t.Uplink)
	if down+up == 0 {
		return 0
	}
	return float64(down) / float64(down+up)
}

// MeanActiveSTAs returns the average per-second active-STA count.
func (t *WLANTrace) MeanActiveSTAs() float64 {
	if len(t.ActiveSTAs) == 0 {
		return 0
	}
	sum := 0
	for _, n := range t.ActiveSTAs {
		sum += n
	}
	return float64(sum) / float64(len(t.ActiveSTAs))
}

// ShortFrameFraction returns the fraction of downlink frames at or under
// the given size (Fig. 1b reports the 300-byte point).
func (t *WLANTrace) ShortFrameFraction(limit int) float64 {
	if len(t.Downlink) == 0 {
		return 0
	}
	n := 0
	for _, a := range t.Downlink {
		if a.Size <= limit {
			n++
		}
	}
	return float64(n) / float64(len(t.Downlink))
}
