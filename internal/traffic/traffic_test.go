package traffic

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestVoIPFlowRateAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const dur = 200 * time.Second
	flow := VoIPFlow(rng, dur)
	if len(flow) == 0 {
		t.Fatal("empty flow")
	}
	for i, a := range flow {
		if a.Size != VoIPFrameBytes {
			t.Fatalf("frame %d size %d", i, a.Size)
		}
		if a.Time < 0 || a.Time >= dur {
			t.Fatalf("frame %d at %v outside capture", i, a.Time)
		}
		if i > 0 && a.Time < flow[i-1].Time {
			t.Fatal("arrivals not sorted")
		}
	}
	// Average rate = peak rate x ON fraction = 96 kbit/s x 1.0/2.35.
	gotRate := float64(TotalBytes(flow)) * 8 / dur.Seconds()
	wantRate := 96e3 * 1.0 / 2.35
	if math.Abs(gotRate-wantRate) > wantRate*0.25 {
		t.Errorf("average rate %.0f bit/s, want ~%.0f", gotRate, wantRate)
	}
	// During talkspurts frames are exactly 10 ms apart.
	backToBack := 0
	for i := 1; i < len(flow); i++ {
		if flow[i].Time-flow[i-1].Time == VoIPFrameInterval {
			backToBack++
		}
	}
	if float64(backToBack)/float64(len(flow)) < 0.8 {
		t.Error("too few 10 ms gaps — ON periods not contiguous")
	}
}

func TestBackgroundFlowInterArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const dur = 500 * time.Second
	for _, tt := range []struct {
		kind BackgroundKind
		mean time.Duration
	}{{TCP, TCPInterArrival}, {UDP, UDPInterArrival}} {
		flow, err := BackgroundFlow(rng, tt.kind, dur)
		if err != nil {
			t.Fatal(err)
		}
		gotMean := dur.Seconds() / float64(len(flow))
		if math.Abs(gotMean-tt.mean.Seconds()) > tt.mean.Seconds()*0.15 {
			t.Errorf("%v: mean inter-arrival %.1f ms, want %.0f",
				tt.kind, gotMean*1e3, tt.mean.Seconds()*1e3)
		}
	}
	if _, err := BackgroundFlow(rng, BackgroundKind(0), dur); err == nil {
		t.Error("accepted unknown kind")
	}
}

func TestBackgroundKindString(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" {
		t.Error("wrong names")
	}
	if BackgroundKind(9).String() != "BackgroundKind(9)" {
		t.Error("wrong fallback")
	}
}

func TestFrameSizeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	short, mtu := 0, 0
	for i := 0; i < n; i++ {
		s := FrameSize(rng)
		if s < 40 || s > 1500 {
			t.Fatalf("size %d outside 40..1500", s)
		}
		if s <= 300 {
			short++
		}
		if s == 1500 {
			mtu++
		}
	}
	shortFrac := float64(short) / n
	// Fig. 1(b): >50% of SIGCOMM frames under 300 B.
	if shortFrac < 0.50 || shortFrac > 0.65 {
		t.Errorf("short-frame fraction %.2f, want 0.50..0.65", shortFrac)
	}
	if mtuFrac := float64(mtu) / n; mtuFrac < 0.08 || mtuFrac > 0.20 {
		t.Errorf("MTU fraction %.2f", mtuFrac)
	}
}

func TestCBRFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	flow := CBRFlow(rng, 500, 10*time.Millisecond, time.Second)
	if len(flow) < 95 || len(flow) > 100 {
		t.Errorf("%d frames, want ~100", len(flow))
	}
	for i := 1; i < len(flow); i++ {
		if flow[i].Time-flow[i-1].Time != 10*time.Millisecond {
			t.Fatal("CBR spacing wrong")
		}
	}
	if CBRFlow(rng, 500, 0, time.Second) != nil {
		t.Error("zero interval should yield nil")
	}
}

func TestMerge(t *testing.T) {
	a := []Arrival{{Time: 1, Size: 1}, {Time: 5, Size: 1}}
	b := []Arrival{{Time: 3, Size: 2}}
	m := Merge(a, b)
	if len(m) != 3 || m[0].Time != 1 || m[1].Time != 3 || m[2].Time != 5 {
		t.Errorf("merge result %v", m)
	}
}

func TestGenerateTraceStatistics(t *testing.T) {
	tr := GenerateTrace(LibraryTraceConfig())
	// Fig. 1(c): library downlink ratio 89.2%.
	if r := tr.DownlinkRatio(); math.Abs(r-0.892) > 0.03 {
		t.Errorf("downlink ratio %.3f, want ~0.892", r)
	}
	// Fig. 1(a): mean active STAs 7.63.
	if m := tr.MeanActiveSTAs(); math.Abs(m-7.63) > 2.0 {
		t.Errorf("mean active STAs %.2f, want ~7.63", m)
	}
	if len(tr.ActiveSTAs) != 300 {
		t.Errorf("%d seconds, want 300", len(tr.ActiveSTAs))
	}
	// Fig. 1(b): a majority of downlink frames are short.
	if f := tr.ShortFrameFraction(300); f < 0.45 {
		t.Errorf("short-frame fraction %.2f too low", f)
	}
	// Sorted streams.
	for i := 1; i < len(tr.Downlink); i++ {
		if tr.Downlink[i].Time < tr.Downlink[i-1].Time {
			t.Fatal("downlink not sorted")
		}
	}
}

func TestGenerateTraceSIGCOMM(t *testing.T) {
	tr := GenerateTrace(SIGCOMM08TraceConfig())
	if r := tr.DownlinkRatio(); math.Abs(r-0.834) > 0.03 {
		t.Errorf("downlink ratio %.3f, want ~0.834", r)
	}
}

func TestGenerateTraceDegenerate(t *testing.T) {
	tr := GenerateTrace(TraceConfig{})
	if tr.DownlinkRatio() != 0 || tr.MeanActiveSTAs() != 0 || tr.ShortFrameFraction(300) != 0 {
		t.Error("empty trace should report zeros")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(LibraryTraceConfig())
	b := GenerateTrace(LibraryTraceConfig())
	if len(a.Downlink) != len(b.Downlink) || a.DownlinkRatio() != b.DownlinkRatio() {
		t.Error("trace generation not deterministic")
	}
}
