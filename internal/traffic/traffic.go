// Package traffic synthesizes the workloads of the paper's evaluation:
// Brady-model VoIP streams (§7.2.2), TCP/UDP background traffic matching
// the SIGCOMM'08 trace statistics (mean inter-arrivals of 47 ms and 88 ms),
// the heavily short-frame size distribution of public WLANs (Fig. 1b), and
// whole-WLAN trace statistics (Fig. 1).
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Arrival is one frame entering a queue.
type Arrival struct {
	Time time.Duration
	Size int // payload bytes
}

// VoIP parameters from the IEEE 802.11n usage models [24] and Brady's
// ON/OFF speech model [25]: 96 kbit/s peak rate in 120-byte frames (one
// every 10 ms during a talkspurt), exponentially distributed talkspurts
// (mean 1.0 s) and silences (mean 1.35 s).
const (
	VoIPFrameBytes    = 120
	VoIPFrameInterval = 10 * time.Millisecond
	voipTalkMean      = 1000 * time.Millisecond
	voipSilenceMean   = 1350 * time.Millisecond
)

// VoIPFlow generates one Brady ON/OFF VoIP stream over the given duration.
func VoIPFlow(rng *rand.Rand, duration time.Duration) []Arrival {
	var out []Arrival
	now := time.Duration(0)
	// Start in a random phase of the ON/OFF cycle.
	on := rng.Float64() < voipTalkMean.Seconds()/(voipTalkMean+voipSilenceMean).Seconds()
	for now < duration {
		if on {
			end := now + expDuration(rng, voipTalkMean)
			for t := now; t < end && t < duration; t += VoIPFrameInterval {
				out = append(out, Arrival{Time: t, Size: VoIPFrameBytes})
			}
			now = end
		} else {
			now += expDuration(rng, voipSilenceMean)
		}
		on = !on
	}
	return out
}

// Background traffic statistics measured on the SIGCOMM'08 trace (§7.2.2).
const (
	TCPInterArrival = 47 * time.Millisecond
	UDPInterArrival = 88 * time.Millisecond
)

// BackgroundKind selects the background transport mix.
type BackgroundKind int

// Background transports.
const (
	TCP BackgroundKind = iota + 1
	UDP
)

// String names the transport.
func (k BackgroundKind) String() string {
	switch k {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("BackgroundKind(%d)", int(k))
	}
}

// BackgroundFlow generates one uplink background stream with exponential
// inter-arrivals at the SIGCOMM'08 mean for the transport and frame sizes
// drawn from the public-WLAN size distribution.
func BackgroundFlow(rng *rand.Rand, kind BackgroundKind, duration time.Duration) ([]Arrival, error) {
	var mean time.Duration
	switch kind {
	case TCP:
		mean = TCPInterArrival
	case UDP:
		mean = UDPInterArrival
	default:
		return nil, fmt.Errorf("traffic: unknown background kind %v", kind)
	}
	var out []Arrival
	now := expDuration(rng, mean)
	for now < duration {
		out = append(out, Arrival{Time: now, Size: FrameSize(rng)})
		now += expDuration(rng, mean)
	}
	return out, nil
}

// FrameSize draws one frame size from the public-WLAN distribution of
// Fig. 1(b): the SIGCOMM and library traces show >50% and >90% of downlink
// frames under 300 bytes respectively, with the rest spread up to the
// 1500-byte MTU. This sampler uses a piecewise mixture fitted to the
// SIGCOMM'08 curve: ~55% tiny control/ACK-sized frames, ~25% small data,
// and a 20% tail that includes full-MTU frames.
func FrameSize(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.55:
		// 40..300 bytes, skewed low.
		return 40 + int(260*rng.Float64()*rng.Float64())
	case u < 0.80:
		// 300..1000 bytes.
		return 300 + rng.Intn(700)
	case u < 0.93:
		// Full-MTU bulk transfer frames.
		return 1500
	default:
		// 1000..1500 bytes.
		return 1000 + rng.Intn(500)
	}
}

// PoissonFlow generates an open-loop Poisson arrival process at ratePerSec
// frames per second with fixed frameBytes payloads — the memoryless
// workload the real-time engine's load generator offers by default. A
// non-positive rate yields no arrivals.
func PoissonFlow(rng *rand.Rand, ratePerSec float64, frameBytes int, duration time.Duration) []Arrival {
	if ratePerSec <= 0 {
		return nil
	}
	mean := time.Duration(float64(time.Second) / ratePerSec)
	var out []Arrival
	now := expDuration(rng, mean)
	for now < duration {
		out = append(out, Arrival{Time: now, Size: frameBytes})
		now += expDuration(rng, mean)
	}
	return out
}

// CBRFlow generates a constant-bit-rate stream of fixed-size frames, used
// by the latency/frame-size sweeps of Fig. 17.
func CBRFlow(rng *rand.Rand, frameBytes int, interval, duration time.Duration) []Arrival {
	if interval <= 0 {
		return nil
	}
	var out []Arrival
	// Random phase so flows across STAs do not synchronize.
	for t := time.Duration(rng.Int63n(int64(interval))); t < duration; t += interval {
		out = append(out, Arrival{Time: t, Size: frameBytes})
	}
	return out
}

// Merge combines several arrival streams into one time-sorted stream.
func Merge(flows ...[]Arrival) []Arrival {
	var out []Arrival
	for _, f := range flows {
		out = append(out, f...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TotalBytes sums the payload bytes of a stream.
func TotalBytes(flow []Arrival) int {
	total := 0
	for _, a := range flow {
		total += a.Size
	}
	return total
}

func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
