package sidechannel

import (
	"fmt"

	"carpool/internal/obs"
)

// noteVerdict counts one group CRC check on the global sink, when enabled.
func noteVerdict(ok bool) {
	sink := obs.Active()
	if sink == nil {
		return
	}
	if ok {
		sink.Counter("side.verify_ok").Inc()
	} else {
		sink.Counter("side.verify_fail").Inc()
	}
}

// crcPolys maps a checksum width to its generator polynomial (implicit
// leading term), chosen so every width detects all single-bit errors.
var crcPolys = map[int]uint32{
	1: 0b1,      // parity
	2: 0b11,     // x^2 + x + 1
	3: 0b011,    // x^3 + x + 1
	4: 0b0011,   // x^4 + x + 1
	6: 0b000011, // x^6 + x + 1
}

// CRCK computes a k-bit CRC over a bit slice. Supported widths are the keys
// of crcPolys; other widths return an error.
func CRCK(bits []byte, k int) (uint32, error) {
	poly, ok := crcPolys[k]
	if !ok {
		return 0, fmt.Errorf("sidechannel: unsupported CRC width %d", k)
	}
	if k == 1 {
		var p uint32
		for _, b := range bits {
			p ^= uint32(b & 1)
		}
		return p, nil
	}
	var reg uint32
	top := uint32(1) << (k - 1)
	mask := (uint32(1) << k) - 1
	for _, b := range bits {
		fb := ((reg & top) >> (k - 1)) ^ uint32(b&1)
		reg = (reg << 1) & mask
		if fb != 0 {
			reg ^= poly
		}
	}
	return reg & mask, nil
}

// Scheme describes a symbol-level CRC granularity choice (§5.2): Alphabet
// fixes how many side-channel bits each OFDM symbol carries, and GroupSize
// is how many consecutive symbols share one checksum. The checksum width is
// Alphabet.BitsPerSymbol() * GroupSize.
//
// The paper's measurement concludes that {TwoBit, GroupSize: 1} — a CRC-2
// per symbol — is the best reliability/granularity tradeoff, and Carpool
// uses it by default.
type Scheme struct {
	Alphabet  Alphabet
	GroupSize int
}

// DefaultScheme is the configuration Carpool ships with.
func DefaultScheme() Scheme { return Scheme{Alphabet: TwoBit, GroupSize: 1} }

// Validate checks that the scheme is one of the six studied configurations.
func (s Scheme) Validate() error {
	if !s.Alphabet.Valid() {
		return fmt.Errorf("sidechannel: invalid alphabet %v", s.Alphabet)
	}
	if s.GroupSize < 1 || s.GroupSize > 3 {
		return fmt.Errorf("sidechannel: group size %d outside 1..3", s.GroupSize)
	}
	if _, ok := crcPolys[s.CRCWidth()]; !ok {
		return fmt.Errorf("sidechannel: no CRC polynomial of width %d", s.CRCWidth())
	}
	return nil
}

// CRCWidth returns the checksum width in bits.
func (s Scheme) CRCWidth() int { return s.Alphabet.BitsPerSymbol() * s.GroupSize }

// String names the scheme as it appears in the granularity study.
func (s Scheme) String() string {
	return fmt.Sprintf("%s x %d-symbol group (CRC-%d)", s.Alphabet, s.GroupSize, s.CRCWidth())
}

// Checksum computes the group checksum over the concatenated coded bits of
// one symbol group and splits it into per-symbol side-channel bit chunks,
// most significant chunk first.
func (s Scheme) Checksum(groupBits []byte) ([][]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := s.CRCWidth()
	crc, err := CRCK(groupBits, w)
	if err != nil {
		return nil, err
	}
	bps := s.Alphabet.BitsPerSymbol()
	out := make([][]byte, s.GroupSize)
	for i := 0; i < s.GroupSize; i++ {
		chunk := make([]byte, bps)
		for j := 0; j < bps; j++ {
			shift := w - (i*bps + j) - 1
			chunk[j] = byte((crc >> shift) & 1)
		}
		out[i] = chunk
	}
	return out, nil
}

// VerifyFlat is Verify for side-channel bits stored contiguously — GroupSize
// chunks of BitsPerSymbol bits each, concatenated most significant chunk
// first (the order Checksum emits). It recomputes nothing but the CRC, so it
// is allocation-free.
func (s Scheme) VerifyFlat(groupBits, sideBits []byte) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	w := s.CRCWidth()
	if len(sideBits) != w {
		return false, fmt.Errorf("sidechannel: got %d side bits, want %d", len(sideBits), w)
	}
	crc, err := CRCK(groupBits, w)
	if err != nil {
		return false, err
	}
	for j := 0; j < w; j++ {
		if byte((crc>>(w-1-j))&1) != sideBits[j]&1 {
			noteVerdict(false)
			return false, nil
		}
	}
	noteVerdict(true)
	return true, nil
}

// Verify recomputes the checksum over received groupBits and compares it to
// the side-channel chunks decoded from the group's symbols.
func (s Scheme) Verify(groupBits []byte, sideChunks [][]byte) (bool, error) {
	want, err := s.Checksum(groupBits)
	if err != nil {
		return false, err
	}
	if len(sideChunks) != len(want) {
		return false, fmt.Errorf("sidechannel: got %d side chunks, want %d", len(sideChunks), len(want))
	}
	for i := range want {
		if len(sideChunks[i]) != len(want[i]) {
			return false, fmt.Errorf("sidechannel: chunk %d has %d bits, want %d",
				i, len(sideChunks[i]), len(want[i]))
		}
		for j := range want[i] {
			if sideChunks[i][j]&1 != want[i][j] {
				noteVerdict(false)
				return false, nil
			}
		}
	}
	noteVerdict(true)
	return true, nil
}
