// Package sidechannel implements Carpool's phase-offset side channel: a few
// free bits per OFDM symbol carried as an extra constellation rotation that
// the receiver's pilot-based phase tracking measures and compensates anyway,
// so payload decoding is untouched (paper §5.2, Table 1).
//
// Bits are differentially encoded in the *difference* between consecutive
// symbols' total phase offsets, which makes the channel immune to the
// unbounded phase accumulation caused by residual CFO.
package sidechannel

import (
	"fmt"
	"math"

	"carpool/internal/dsp"
)

// Alphabet selects the phase-offset modulation (Table 1).
type Alphabet int

// Supported alphabets. Values start at 1 so the zero value is invalid.
const (
	// OneBit maps 1 -> +90° and 0 -> -90°.
	OneBit Alphabet = iota + 1
	// TwoBit maps 11 -> +45°, 01 -> +135°, 00 -> -135°, 10 -> -45°.
	TwoBit
)

// String names the alphabet.
func (a Alphabet) String() string {
	switch a {
	case OneBit:
		return "1-bit"
	case TwoBit:
		return "2-bit"
	default:
		return fmt.Sprintf("Alphabet(%d)", int(a))
	}
}

// Valid reports whether a is usable.
func (a Alphabet) Valid() bool { return a == OneBit || a == TwoBit }

// BitsPerSymbol returns how many side-channel bits one OFDM symbol carries.
func (a Alphabet) BitsPerSymbol() int {
	switch a {
	case OneBit:
		return 1
	case TwoBit:
		return 2
	default:
		return 0
	}
}

const deg = math.Pi / 180

// PhaseForBits returns the phase-offset difference (radians) encoding the
// given bits (Table 1). len(bits) must equal BitsPerSymbol().
func (a Alphabet) PhaseForBits(bits []byte) (float64, error) {
	switch a {
	case OneBit:
		if len(bits) != 1 {
			return 0, fmt.Errorf("sidechannel: 1-bit alphabet needs 1 bit, got %d", len(bits))
		}
		if bits[0]&1 == 1 {
			return 90 * deg, nil
		}
		return -90 * deg, nil
	case TwoBit:
		if len(bits) != 2 {
			return 0, fmt.Errorf("sidechannel: 2-bit alphabet needs 2 bits, got %d", len(bits))
		}
		switch bits[0]&1<<1 | bits[1]&1 {
		case 0b11:
			return 45 * deg, nil
		case 0b01:
			return 135 * deg, nil
		case 0b00:
			return -135 * deg, nil
		default: // 0b10
			return -45 * deg, nil
		}
	default:
		return 0, fmt.Errorf("sidechannel: invalid alphabet %v", a)
	}
}

// BitsForPhase hard-decides a measured phase-offset difference back into
// bits by nearest alphabet point.
func (a Alphabet) BitsForPhase(delta float64) ([]byte, error) {
	out := make([]byte, a.BitsPerSymbol())
	if err := a.BitsForPhaseInto(out, delta); err != nil {
		return nil, err
	}
	return out, nil
}

// BitsForPhaseInto is BitsForPhase writing into a caller-provided
// BitsPerSymbol-bit buffer, allocation-free.
func (a Alphabet) BitsForPhaseInto(dst []byte, delta float64) error {
	if len(dst) != a.BitsPerSymbol() {
		return fmt.Errorf("sidechannel: bit buffer needs %d entries for %v, got %d",
			a.BitsPerSymbol(), a, len(dst))
	}
	delta = dsp.WrapPhase(delta)
	switch a {
	case OneBit:
		if delta >= 0 {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
		return nil
	case TwoBit:
		switch {
		case delta >= 0 && delta < 90*deg:
			dst[0], dst[1] = 1, 1
		case delta >= 90*deg:
			dst[0], dst[1] = 0, 1
		case delta < -90*deg:
			dst[0], dst[1] = 0, 0
		default:
			dst[0], dst[1] = 1, 0
		}
		return nil
	default:
		return fmt.Errorf("sidechannel: invalid alphabet %v", a)
	}
}

// Encoder turns a per-symbol bit stream into the cumulative phase offsets to
// inject. It is stateful: offsets accumulate across symbols so that the
// *difference* carries the data (Fig. 8(b)).
type Encoder struct {
	alphabet Alphabet
	current  float64 // cumulative injected offset
}

// NewEncoder returns an encoder for the given alphabet.
func NewEncoder(a Alphabet) (*Encoder, error) {
	if !a.Valid() {
		return nil, fmt.Errorf("sidechannel: invalid alphabet %v", a)
	}
	return &Encoder{alphabet: a}, nil
}

// Next consumes BitsPerSymbol bits and returns the absolute phase offset to
// inject into the next OFDM symbol.
func (e *Encoder) Next(bits []byte) (float64, error) {
	d, err := e.alphabet.PhaseForBits(bits)
	if err != nil {
		return 0, err
	}
	e.current = dsp.WrapPhase(e.current + d)
	return e.current, nil
}

// Decoder recovers side-channel bits from the sequence of total phase
// offsets tracked by the receiver's pilots. The inherent (residual-CFO)
// drift between adjacent symbols is small, so the nearest alphabet point to
// each difference is the transmitted value.
type Decoder struct {
	alphabet Alphabet
	prev     float64
	primed   bool
}

// NewDecoder returns a decoder for the given alphabet.
func NewDecoder(a Alphabet) (*Decoder, error) {
	if !a.Valid() {
		return nil, fmt.Errorf("sidechannel: invalid alphabet %v", a)
	}
	return &Decoder{alphabet: a}, nil
}

// Prime sets the phase reference without emitting bits; call it with the
// tracked phase of the symbol preceding the side-channel payload (e.g. the
// SIG symbol, which carries no injected offset).
func (d *Decoder) Prime(phase float64) {
	d.prev = phase
	d.primed = true
}

// Next consumes the tracked total phase of one symbol and returns the
// decoded bits. The first call after construction (without Prime) only
// establishes the reference and returns nil.
func (d *Decoder) Next(phase float64) ([]byte, error) {
	if !d.primed {
		d.prev = phase
		d.primed = true
		return nil, nil
	}
	delta := dsp.WrapPhase(phase - d.prev)
	d.prev = phase
	return d.alphabet.BitsForPhase(delta)
}

// NextInto is Next writing the decoded bits into a caller-provided
// BitsPerSymbol-bit buffer, allocation-free. It returns the number of bits
// written: zero when this call only established the phase reference (the
// first call on an unprimed decoder).
func (d *Decoder) NextInto(dst []byte, phase float64) (int, error) {
	if !d.primed {
		d.prev = phase
		d.primed = true
		return 0, nil
	}
	delta := dsp.WrapPhase(phase - d.prev)
	d.prev = phase
	if err := d.alphabet.BitsForPhaseInto(dst, delta); err != nil {
		return 0, err
	}
	return len(dst), nil
}
