package sidechannel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"carpool/internal/dsp"
)

func TestAlphabetBasics(t *testing.T) {
	if OneBit.BitsPerSymbol() != 1 || TwoBit.BitsPerSymbol() != 2 {
		t.Error("wrong bits per symbol")
	}
	if Alphabet(0).BitsPerSymbol() != 0 {
		t.Error("invalid alphabet should carry 0 bits")
	}
	if OneBit.String() != "1-bit" || TwoBit.String() != "2-bit" {
		t.Error("wrong names")
	}
	if Alphabet(7).String() != "Alphabet(7)" {
		t.Error("wrong fallback name")
	}
	if Alphabet(0).Valid() || Alphabet(3).Valid() {
		t.Error("invalid alphabets reported valid")
	}
}

func TestTable1Mapping(t *testing.T) {
	// Exactly the paper's Table 1.
	deg := math.Pi / 180
	tests := []struct {
		a     Alphabet
		bits  []byte
		phase float64
	}{
		{OneBit, []byte{1}, 90 * deg},
		{OneBit, []byte{0}, -90 * deg},
		{TwoBit, []byte{1, 1}, 45 * deg},
		{TwoBit, []byte{0, 1}, 135 * deg},
		{TwoBit, []byte{0, 0}, -135 * deg},
		{TwoBit, []byte{1, 0}, -45 * deg},
	}
	for _, tt := range tests {
		got, err := tt.a.PhaseForBits(tt.bits)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.phase) > 1e-12 {
			t.Errorf("%v %v -> %v, want %v", tt.a, tt.bits, got, tt.phase)
		}
		back, err := tt.a.BitsForPhase(tt.phase)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tt.bits {
			if back[i] != tt.bits[i] {
				t.Errorf("%v: phase %v decoded to %v, want %v", tt.a, tt.phase, back, tt.bits)
			}
		}
	}
}

func TestPhaseForBitsErrors(t *testing.T) {
	if _, err := OneBit.PhaseForBits([]byte{1, 0}); err == nil {
		t.Error("accepted 2 bits for 1-bit alphabet")
	}
	if _, err := TwoBit.PhaseForBits([]byte{1}); err == nil {
		t.Error("accepted 1 bit for 2-bit alphabet")
	}
	if _, err := Alphabet(0).PhaseForBits([]byte{1}); err == nil {
		t.Error("accepted invalid alphabet")
	}
	if _, err := Alphabet(0).BitsForPhase(1); err == nil {
		t.Error("accepted invalid alphabet")
	}
}

func TestBitsForPhaseToleratesDrift(t *testing.T) {
	// Up to ±40° of inherent drift must not flip a 2-bit decision (decision
	// regions are 90° wide).
	deg := math.Pi / 180
	for _, tt := range []struct {
		ideal float64
		bits  []byte
	}{
		{45 * deg, []byte{1, 1}},
		{135 * deg, []byte{0, 1}},
		{-135 * deg, []byte{0, 0}},
		{-45 * deg, []byte{1, 0}},
	} {
		for _, drift := range []float64{-40 * deg, -10 * deg, 0, 10 * deg, 40 * deg} {
			got, err := TwoBit.BitsForPhase(tt.ideal + drift)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != tt.bits[0] || got[1] != tt.bits[1] {
				t.Errorf("phase %v+%v decoded to %v, want %v", tt.ideal, drift, got, tt.bits)
			}
		}
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	for _, a := range []Alphabet{OneBit, TwoBit} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				enc, err := NewEncoder(a)
				if err != nil {
					return false
				}
				dec, err := NewDecoder(a)
				if err != nil {
					return false
				}
				dec.Prime(0) // reference phase of the unrotated SIG symbol
				inherentDrift := 0.0
				for sym := 0; sym < 200; sym++ {
					bits := make([]byte, a.BitsPerSymbol())
					for i := range bits {
						bits[i] = byte(rng.Intn(2))
					}
					offset, err := enc.Next(bits)
					if err != nil {
						return false
					}
					// The receiver's pilots track injected offset + slowly
					// accumulating residual-CFO drift + small noise.
					inherentDrift += 0.01
					measured := dsp.WrapPhase(offset + inherentDrift + (rng.Float64()-0.5)*0.1)
					got, err := dec.Next(measured)
					if err != nil {
						return false
					}
					for i := range bits {
						if got[i] != bits[i] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDecoderFirstSymbolPrimesReference(t *testing.T) {
	dec, err := NewDecoder(OneBit)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := dec.Next(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bits != nil {
		t.Error("unprimed decoder should return nil on first symbol")
	}
	bits, err = dec.Next(0.3 + math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 1 || bits[0] != 1 {
		t.Errorf("got %v, want [1]", bits)
	}
}

func TestEncoderPhaseAccumulates(t *testing.T) {
	// Paper example (Fig. 8b): to send "110" with 1-bit encoding, inject
	// 90°, 180°, 90°.
	enc, err := NewEncoder(OneBit)
	if err != nil {
		t.Fatal(err)
	}
	deg := math.Pi / 180
	want := []float64{90 * deg, 180 * deg, 90 * deg}
	for i, b := range []byte{1, 1, 0} {
		got, err := enc.Next([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dsp.WrapPhase(got-want[i])) > 1e-12 {
			t.Errorf("symbol %d: offset %v, want %v", i, got, want[i])
		}
	}
}

func TestNewEncoderDecoderRejectInvalid(t *testing.T) {
	if _, err := NewEncoder(Alphabet(0)); err == nil {
		t.Error("NewEncoder accepted invalid alphabet")
	}
	if _, err := NewDecoder(Alphabet(9)); err == nil {
		t.Error("NewDecoder accepted invalid alphabet")
	}
}

func TestCRCKWidths(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1}
	for _, k := range []int{1, 2, 3, 4, 6} {
		c, err := CRCK(bits, k)
		if err != nil {
			t.Fatal(err)
		}
		if c >= 1<<k {
			t.Errorf("CRC-%d out of range: %d", k, c)
		}
		// Single-bit flips are always detected.
		for pos := range bits {
			bad := append([]byte(nil), bits...)
			bad[pos] ^= 1
			c2, err := CRCK(bad, k)
			if err != nil {
				t.Fatal(err)
			}
			if c2 == c {
				t.Errorf("CRC-%d missed single flip at %d", k, pos)
			}
		}
	}
	if _, err := CRCK(bits, 5); err == nil {
		t.Error("accepted unsupported width 5")
	}
}

func TestSchemeValidation(t *testing.T) {
	if err := DefaultScheme().Validate(); err != nil {
		t.Errorf("default scheme invalid: %v", err)
	}
	if DefaultScheme().CRCWidth() != 2 {
		t.Error("default scheme should be CRC-2")
	}
	bad := []Scheme{
		{Alphabet: Alphabet(0), GroupSize: 1},
		{Alphabet: OneBit, GroupSize: 0},
		{Alphabet: OneBit, GroupSize: 4},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scheme %+v accepted", s)
		}
	}
	// The six studied schemes are all valid... except widths without a
	// polynomial. 1-bit x {1,2,3} -> CRC-1,2,3; 2-bit x {1,2,3} -> CRC-2,4,6.
	for _, a := range []Alphabet{OneBit, TwoBit} {
		for g := 1; g <= 3; g++ {
			s := Scheme{Alphabet: a, GroupSize: g}
			if err := s.Validate(); err != nil {
				t.Errorf("studied scheme %v rejected: %v", s, err)
			}
		}
	}
}

func TestSchemeChecksumSplitsAcrossSymbols(t *testing.T) {
	s := Scheme{Alphabet: TwoBit, GroupSize: 3} // CRC-6 across 3 symbols
	bits := []byte{1, 1, 0, 1, 0, 0, 1, 0, 1, 1}
	chunks, err := s.Checksum(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("%d chunks, want 3", len(chunks))
	}
	var reassembled uint32
	for _, ch := range chunks {
		if len(ch) != 2 {
			t.Fatalf("chunk size %d, want 2", len(ch))
		}
		for _, b := range ch {
			reassembled = reassembled<<1 | uint32(b)
		}
	}
	want, err := CRCK(bits, 6)
	if err != nil {
		t.Fatal(err)
	}
	if reassembled != want {
		t.Errorf("reassembled CRC %06b, want %06b", reassembled, want)
	}
}

func TestSchemeVerify(t *testing.T) {
	s := DefaultScheme()
	bits := []byte{1, 0, 1, 1, 1, 0, 0, 1}
	chunks, err := s.Checksum(bits)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Verify(bits, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("correct checksum rejected")
	}
	// Corrupt the data: must fail.
	bad := append([]byte(nil), bits...)
	bad[3] ^= 1
	ok, err = s.Verify(bad, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corrupted data accepted")
	}
	// Wrong chunk geometry: error.
	if _, err := s.Verify(bits, nil); err == nil {
		t.Error("accepted missing chunks")
	}
	if _, err := s.Verify(bits, [][]byte{{1, 0, 1}}); err == nil {
		t.Error("accepted oversized chunk")
	}
}

func TestSchemeString(t *testing.T) {
	s := Scheme{Alphabet: TwoBit, GroupSize: 1}
	if got := s.String(); got != "2-bit x 1-symbol group (CRC-2)" {
		t.Errorf("String() = %q", got)
	}
}
