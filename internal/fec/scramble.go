package fec

// Scrambler implements the 802.11 frame-synchronous scrambler with
// generator polynomial S(x) = x^7 + x^4 + 1 (Std 802.11-2012 §18.3.5.5).
// The same structure descrambles, so one type serves both directions.
type Scrambler struct {
	state byte // 7-bit shift register
}

// NewScrambler returns a scrambler seeded with the given 7-bit initial
// state. A zero seed would emit an all-zero sequence, so it is coerced to
// the conventional all-ones state.
func NewScrambler(seed byte) *Scrambler {
	seed &= 0x7f
	if seed == 0 {
		seed = 0x7f
	}
	return &Scrambler{state: seed}
}

// NextBit advances the register and returns the next scrambling bit.
func (s *Scrambler) NextBit() byte {
	// Feedback is x^7 XOR x^4: bits 6 and 3 of the register.
	fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | fb) & 0x7f
	return fb
}

// Apply XORs the scrambling sequence onto bits in place and returns bits for
// convenience. Applying twice with identically-seeded scramblers restores
// the original data.
func (s *Scrambler) Apply(bits []byte) []byte {
	for i := range bits {
		bits[i] = (bits[i] ^ s.NextBit()) & 1
	}
	return bits
}

// ScramblerFromOutputs reconstructs a scrambler from its first seven output
// bits, the trick the 802.11 receiver uses: the SERVICE field's first seven
// bits are transmitted as zeros, so their scrambled values expose the
// scrambling sequence and hence the register state. The returned scrambler
// continues the sequence from bit eight onward.
func ScramblerFromOutputs(outputs []byte) *Scrambler {
	if len(outputs) < 7 {
		panic("fec: ScramblerFromOutputs needs 7 bits")
	}
	var state byte
	for _, o := range outputs[:7] {
		state = ((state << 1) | (o & 1)) & 0x7f
	}
	return &Scrambler{state: state}
}

// ScrambleCopy returns a scrambled copy of bits using a fresh scrambler with
// the given seed, leaving the input untouched.
func ScrambleCopy(bits []byte, seed byte) []byte {
	out := make([]byte, len(bits))
	copy(out, bits)
	return NewScrambler(seed).Apply(out)
}
