package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func withTail(bits []byte) []byte {
	return append(append([]byte{}, bits...), make([]byte, TailBits)...)
}

func TestCodeRateStringAndRatio(t *testing.T) {
	tests := []struct {
		r     CodeRate
		str   string
		ratio float64
	}{
		{Rate1_2, "1/2", 0.5},
		{Rate2_3, "2/3", 2.0 / 3.0},
		{Rate3_4, "3/4", 0.75},
	}
	for _, tt := range tests {
		if tt.r.String() != tt.str {
			t.Errorf("String() = %q, want %q", tt.r.String(), tt.str)
		}
		if tt.r.Ratio() != tt.ratio {
			t.Errorf("Ratio() = %v, want %v", tt.r.Ratio(), tt.ratio)
		}
	}
	if CodeRate(0).Valid() || CodeRate(9).Valid() {
		t.Error("invalid rates reported valid")
	}
	if CodeRate(9).Ratio() != 0 {
		t.Error("invalid rate should have zero ratio")
	}
	if CodeRate(9).String() != "CodeRate(9)" {
		t.Errorf("got %q", CodeRate(9).String())
	}
}

func TestConvEncodeKnownVector(t *testing.T) {
	// The all-zero input produces the all-zero codeword.
	out, err := ConvEncode(make([]byte, 16), Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range out {
		if b != 0 {
			t.Fatal("all-zero input must encode to all-zero output")
		}
	}
	// A single 1 produces the generator impulse response 11 10 11 11 01 01 11 ...
	in := make([]byte, 8)
	in[0] = 1
	out, err = ConvEncode(in, Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	// g0=133o=1011011b, g1=171o=1111001b. Impulse response pairs (A,B) for
	// shifts 0..6: A taps {6,4,3,1,0}->1,0,1,1,0,1,1 ; B taps {6,5,4,3,0}->1,1,1,1,0,0,1
	wantA := []byte{1, 0, 1, 1, 0, 1, 1, 0}
	wantB := []byte{1, 1, 1, 1, 0, 0, 1, 0}
	for i := 0; i < 8; i++ {
		if out[2*i] != wantA[i] || out[2*i+1] != wantB[i] {
			t.Fatalf("impulse response mismatch at step %d: got (%d,%d), want (%d,%d)",
				i, out[2*i], out[2*i+1], wantA[i], wantB[i])
		}
	}
}

func TestConvEncodeOutputLengths(t *testing.T) {
	tests := []struct {
		rate CodeRate
		in   int
		out  int
	}{
		{Rate1_2, 24, 48},
		{Rate2_3, 24, 36},
		{Rate3_4, 24, 32},
	}
	for _, tt := range tests {
		got, err := ConvEncode(make([]byte, tt.in), tt.rate)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != tt.out {
			t.Errorf("rate %v: %d in -> %d out, want %d", tt.rate, tt.in, len(got), tt.out)
		}
	}
}

func TestConvEncodeInvalidRate(t *testing.T) {
	if _, err := ConvEncode([]byte{1}, CodeRate(0)); err == nil {
		t.Error("expected error for invalid rate")
	}
	if _, err := ViterbiDecode([]byte{1, 1}, CodeRate(0), 1); err == nil {
		t.Error("expected error for invalid rate")
	}
	if _, err := ViterbiDecode([]byte{1, 1}, Rate1_2, 0); err == nil {
		t.Error("expected error for non-positive numInfoBits")
	}
	if _, err := ViterbiDecode([]byte{1, 1}, Rate1_2, 100); err == nil {
		t.Error("expected error for truncated coded stream")
	}
}

func TestViterbiCleanChannelRoundTrip(t *testing.T) {
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		rate := rate
		t.Run(rate.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 24 + rng.Intn(200)
				// Keep a multiple of the puncturing period to avoid partial
				// trailing groups, as the PHY padding rules guarantee.
				n -= n % 6
				info := withTail(randomBits(rng, n))
				coded, err := ConvEncode(info, rate)
				if err != nil {
					return false
				}
				dec, err := ViterbiDecode(coded, rate, len(info))
				if err != nil {
					return false
				}
				return bytes.Equal(dec, info)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestViterbiCorrectsScatteredErrors(t *testing.T) {
	// Rate 1/2 with free distance 10 corrects any pattern of up to 4
	// sufficiently separated channel errors.
	rng := rand.New(rand.NewSource(11))
	info := withTail(randomBits(rng, 240))
	coded, err := ConvEncode(info, Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), coded...)
		// Flip 8 bits spaced at least 30 positions apart.
		pos := rng.Intn(20)
		for i := 0; i < 8 && pos < len(corrupted); i++ {
			corrupted[pos] ^= 1
			pos += 30 + rng.Intn(10)
		}
		dec, err := ViterbiDecode(corrupted, Rate1_2, len(info))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, info) {
			t.Fatalf("trial %d: scattered errors not corrected", trial)
		}
	}
}

func TestViterbiRandomErrorPerformance(t *testing.T) {
	// At 2% random coded-bit error rate, rate-1/2 Viterbi output should be
	// dramatically cleaner than the channel.
	rng := rand.New(rand.NewSource(5))
	info := withTail(randomBits(rng, 2000))
	coded, err := ConvEncode(info, Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), coded...)
	for i := range corrupted {
		if rng.Float64() < 0.02 {
			corrupted[i] ^= 1
		}
	}
	dec, err := ViterbiDecode(corrupted, Rate1_2, len(info))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range info {
		if dec[i] != info[i] {
			errs++
		}
	}
	if ber := float64(errs) / float64(len(info)); ber > 0.001 {
		t.Errorf("post-Viterbi BER %.5f, want < 0.001", ber)
	}
}

func TestScramblerSelfInverse(t *testing.T) {
	f := func(seed int64, scramblerSeed byte) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randomBits(rng, 500)
		orig := append([]byte(nil), bits...)
		NewScrambler(scramblerSeed).Apply(bits)
		NewScrambler(scramblerSeed).Apply(bits)
		return bytes.Equal(bits, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScramblerKnownSequence(t *testing.T) {
	// Std 802.11: with the all-ones seed the first 16 scrambler output bits
	// are 0000 1110 1111 0010.
	s := NewScrambler(0x7f)
	want := []byte{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0}
	for i, w := range want {
		if got := s.NextBit(); got != w {
			t.Fatalf("scrambler bit %d = %d, want %d", i, got, w)
		}
	}
}

func TestScramblerPeriod(t *testing.T) {
	// A maximal-length 7-bit LFSR has period 127.
	s := NewScrambler(0x7f)
	first := make([]byte, 127)
	for i := range first {
		first[i] = s.NextBit()
	}
	for i := 0; i < 127; i++ {
		if s.NextBit() != first[i] {
			t.Fatalf("scrambler sequence not periodic with period 127 at offset %d", i)
		}
	}
	ones := 0
	for _, b := range first {
		ones += int(b)
	}
	if ones != 64 {
		t.Errorf("m-sequence balance: %d ones in one period, want 64", ones)
	}
}

func TestScramblerZeroSeedCoerced(t *testing.T) {
	s := NewScrambler(0)
	anyOne := false
	for i := 0; i < 20; i++ {
		if s.NextBit() == 1 {
			anyOne = true
		}
	}
	if !anyOne {
		t.Error("zero seed produced an all-zero sequence")
	}
}

func TestScrambleCopyLeavesInput(t *testing.T) {
	in := []byte{1, 0, 1, 1, 0}
	orig := append([]byte(nil), in...)
	out := ScrambleCopy(in, 0x5d)
	if !bytes.Equal(in, orig) {
		t.Error("ScrambleCopy mutated input")
	}
	if bytes.Equal(out, orig) {
		t.Error("ScrambleCopy returned unscrambled data")
	}
}

func TestInterleaverGeometries(t *testing.T) {
	// The four 802.11a geometries: (ncbps, nbpsc).
	geoms := [][2]int{{48, 1}, {96, 2}, {192, 4}, {288, 6}}
	for _, g := range geoms {
		il, err := NewInterleaver(g[0], g[1])
		if err != nil {
			t.Fatalf("geometry %v: %v", g, err)
		}
		if il.BlockSize() != g[0] {
			t.Errorf("BlockSize = %d, want %d", il.BlockSize(), g[0])
		}
		rng := rand.New(rand.NewSource(int64(g[0])))
		in := randomBits(rng, g[0])
		mid, err := il.Interleave(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := il.Deinterleave(mid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in, out) {
			t.Errorf("geometry %v: round trip failed", g)
		}
	}
}

func TestInterleaverIsPermutation(t *testing.T) {
	il, err := NewInterleaver(288, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 288)
	for _, j := range il.fwd {
		if j < 0 || j >= 288 || seen[j] {
			t.Fatal("fwd is not a permutation")
		}
		seen[j] = true
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land at least several subcarriers apart —
	// that is the interleaver's whole purpose.
	il, err := NewInterleaver(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k+1 < 192; k++ {
		scA := il.fwd[k] / 4
		scB := il.fwd[k+1] / 4
		d := scA - scB
		if d < 0 {
			d = -d
		}
		if d != 0 && d < 3 {
			t.Fatalf("adjacent bits %d,%d land on close subcarriers %d,%d", k, k+1, scA, scB)
		}
	}
}

func TestInterleaverErrors(t *testing.T) {
	if _, err := NewInterleaver(50, 1); err == nil {
		t.Error("accepted ncbps not multiple of 16")
	}
	if _, err := NewInterleaver(0, 1); err == nil {
		t.Error("accepted zero ncbps")
	}
	il, _ := NewInterleaver(48, 1)
	if _, err := il.Interleave(make([]byte, 47)); err == nil {
		t.Error("accepted wrong block size")
	}
	if _, err := il.Deinterleave(make([]byte, 49)); err == nil {
		t.Error("accepted wrong block size")
	}
}

func TestFCSRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		framed := AppendFCS(data)
		payload, ok := CheckFCS(framed)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	framed := AppendFCS([]byte("carpool frame payload"))
	for i := range framed {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0x40
		if _, ok := CheckFCS(bad); ok {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestCheckFCSShortFrame(t *testing.T) {
	if _, ok := CheckFCS([]byte{1, 2, 3}); ok {
		t.Error("short frame accepted")
	}
}

func TestCRC2Properties(t *testing.T) {
	// Deterministic, 2-bit range, detects single-bit flips.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		bits := randomBits(rng, 48+rng.Intn(240))
		c := CRC2(bits)
		if c > 3 {
			t.Fatalf("CRC2 out of range: %d", c)
		}
		if CRC2(bits) != c {
			t.Fatal("CRC2 not deterministic")
		}
		// Single-bit error detection: CRC polynomial x^2+x+1 has no factor
		// x^k, so any single flip changes the checksum.
		pos := rng.Intn(len(bits))
		bits[pos] ^= 1
		if CRC2(bits) == c {
			t.Fatalf("single-bit flip at %d undetected", pos)
		}
	}
}

func TestCRC2RandomErrorMissRate(t *testing.T) {
	// For random multi-bit corruption, a 2-bit CRC should miss about 1/4 of
	// the time — the granularity/reliability tradeoff §5.2 discusses.
	rng := rand.New(rand.NewSource(22))
	misses, trials := 0, 20000
	for i := 0; i < trials; i++ {
		bits := randomBits(rng, 288)
		c := CRC2(bits)
		bad := append([]byte(nil), bits...)
		nflips := 2 + rng.Intn(10)
		for j := 0; j < nflips; j++ {
			bad[rng.Intn(len(bad))] ^= 1
		}
		if bytes.Equal(bad, bits) {
			continue
		}
		if CRC2(bad) == c {
			misses++
		}
	}
	rate := float64(misses) / float64(trials)
	if rate < 0.20 || rate > 0.30 {
		t.Errorf("CRC2 miss rate %.3f, want ~0.25", rate)
	}
}

func TestCRC1Parity(t *testing.T) {
	if CRC1([]byte{1, 1, 0, 1}) != 1 {
		t.Error("parity of three ones should be 1")
	}
	if CRC1([]byte{1, 1}) != 0 {
		t.Error("parity of two ones should be 0")
	}
	if CRC1(nil) != 0 {
		t.Error("parity of empty should be 0")
	}
}
