package fec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// naiveGFMul is the shift-and-add reference multiply the table-driven
// kernel must match element for element.
func naiveGFMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a&0x80 != 0
		a <<= 1
		if hi {
			a ^= byte(gfPoly & 0xff)
		}
		b >>= 1
	}
	return p
}

func TestGFTablesMatchNaiveMultiply(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gfMul(byte(a), byte(b)), naiveGFMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
}

func TestNewRSValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {250, 7}} {
		if _, err := NewRS(tc[0], tc[1]); err == nil {
			t.Errorf("NewRS(%d,%d) accepted", tc[0], tc[1])
		}
	}
	if _, err := NewRS(250, 6); err != nil {
		t.Errorf("NewRS(250,6) rejected: %v", err)
	}
}

// TestSingleParityIsXOR pins the column scaling: with m=1, the parity
// shard must be byte-identical to XORParity over the same data.
func TestSingleParityIsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 7, 16} {
		r, err := NewRS(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		data := randShards(rng, k, 96)
		parity := [][]byte{make([]byte, 96)}
		if err := r.EncodeInto(parity, data); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 96)
		XORParity(want, data)
		if !bytes.Equal(parity[0], want) {
			t.Fatalf("k=%d: RS single parity differs from XOR parity", k)
		}
	}
}

// TestReconstructAllErasurePatterns sweeps every erasure pattern of size
// <= m for small codes and checks bit-exact recovery of all shards.
func TestReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, km := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {5, 3}, {6, 4}} {
		k, m := km[0], km[1]
		r, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := randShards(rng, k, 64)
		parity := randShards(rng, m, 64) // overwritten
		if err := r.EncodeInto(parity, data); err != nil {
			t.Fatal(err)
		}
		truth := append(append([][]byte{}, data...), parity...)
		total := k + m
		// Every subset of shards to erase, up to m of them.
		for mask := 0; mask < 1<<total; mask++ {
			erased := popcount(mask)
			if erased == 0 || erased > m {
				continue
			}
			shards := make([][]byte, total)
			present := make([]bool, total)
			for i := 0; i < total; i++ {
				if mask&(1<<i) != 0 {
					shards[i] = make([]byte, 64) // scratch for the rebuild
				} else {
					shards[i] = append([]byte(nil), truth[i]...)
					present[i] = true
				}
			}
			if err := r.ReconstructInto(shards, present); err != nil {
				t.Fatalf("k=%d m=%d mask=%b: %v", k, m, mask, err)
			}
			for i := 0; i < total; i++ {
				if !bytes.Equal(shards[i], truth[i]) {
					t.Fatalf("k=%d m=%d mask=%b: shard %d wrong after reconstruct", k, m, mask, i)
				}
			}
		}
	}
}

// TestReconstructTooManyErasures pins the typed-error contract: more
// erasures than parity must return *TooManyErasuresError and never write
// plausible-but-wrong bytes into the missing buffers.
func TestReconstructTooManyErasures(t *testing.T) {
	r, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := randShards(rng, 4, 32)
	parity := randShards(rng, 2, 32)
	if err := r.EncodeInto(parity, data); err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	present := []bool{false, false, false, true, true, true}
	canary := []byte{0xa5}
	for i := 0; i < 3; i++ {
		shards[i] = bytes.Repeat(canary, 32)
	}
	err = r.ReconstructInto(shards, present)
	var tme *TooManyErasuresError
	if !errors.As(err, &tme) {
		t.Fatalf("err = %v, want *TooManyErasuresError", err)
	}
	if tme.Have != 3 || tme.Need != 4 {
		t.Fatalf("TooManyErasuresError = %+v, want Have=3 Need=4", tme)
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(shards[i], bytes.Repeat(canary, 32)) {
			t.Errorf("missing shard %d written despite unrecoverable erasure set", i)
		}
	}
}

// TestReconstructZeroAlloc pins the hot-path contract beside the SWAR
// Viterbi: encode and reconstruct run without heap allocations.
func TestReconstructZeroAlloc(t *testing.T) {
	r, err := NewRS(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := randShards(rng, 8, 1500)
	parity := randShards(rng, 2, 1500)
	shards := append(append([][]byte{}, data...), parity...)
	present := make([]bool, 10)
	if avg := testing.AllocsPerRun(50, func() {
		if err := r.EncodeInto(parity, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("EncodeInto allocates %.1f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		for i := range present {
			present[i] = i != 1 && i != 5
		}
		if err := r.ReconstructInto(shards, present); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ReconstructInto allocates %.1f per op, want 0", avg)
	}
}

func randShards(rng *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
