package fec

import (
	"bytes"
	"testing"
)

// FuzzSoftDecoderMatchesOracle fuzzes the differential contract the
// conformance suite's viterbi-soft pair relies on: on any int8 LLR stream,
// the SWAR SoftDecoder must walk the identical survivor path as the
// float64 ViterbiDecodeSoft oracle fed the exact same decisions. Byte 0
// selects the code rate; the rest is the punctured LLR stream.
func FuzzSoftDecoderMatchesOracle(f *testing.F) {
	f.Add([]byte{0, 0x7f, 0x81, 0x10, 0xf0, 0x00, 0x01})
	f.Add([]byte{1, 0x40, 0x40, 0xc0, 0xc0, 0x40, 0xc0, 0x00, 0x7f, 0x81})
	f.Add([]byte{2, 0x01, 0xff, 0x02, 0xfe, 0x03, 0xfd, 0x04, 0xfc, 0x7f, 0x80, 0x00, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		var rate CodeRate
		var infoStep, codedStep int
		switch data[0] % 3 {
		case 0:
			rate, infoStep, codedStep = Rate1_2, 1, 2
		case 1:
			rate, infoStep, codedStep = Rate2_3, 2, 3
		default:
			rate, infoStep, codedStep = Rate3_4, 3, 4
		}
		body := data[1:]
		k := len(body) / codedStep
		if k == 0 {
			return
		}
		if k > 1024 {
			k = 1024 // bound trellis length, not input acceptance
		}
		numInfo := k * infoStep
		llrs := make([]int8, k*codedStep)
		floats := make([]float64, len(llrs))
		for i := range llrs {
			llrs[i] = int8(body[i])
			floats[i] = float64(llrs[i])
		}

		oracle, err := ViterbiDecodeSoft(floats, rate, numInfo)
		if err != nil {
			t.Fatalf("oracle rejected well-formed input: %v", err)
		}
		var d SoftDecoder
		fast := make([]byte, numInfo)
		if err := d.DecodeInto(fast, llrs, rate, numInfo); err != nil {
			t.Fatalf("SoftDecoder rejected well-formed input: %v", err)
		}
		if !bytes.Equal(oracle, fast) {
			for i := range oracle {
				if oracle[i] != fast[i] {
					t.Fatalf("rate %v, %d info bits: decoders diverge first at bit %d (oracle %d, fast %d)",
						rate, numInfo, i, oracle[i], fast[i])
				}
			}
		}
	})
}
