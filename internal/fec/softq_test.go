package fec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	// Terminate the trellis like the PHY does.
	for i := n - TailBits; i < n; i++ {
		if i >= 0 {
			bits[i] = 0
		}
	}
	return bits
}

// llrsFromBits maps coded bits to strong int8 LLRs (bit 0 -> +amp,
// bit 1 -> -amp), the noiseless quantized channel.
func llrsFromBits(coded []byte, amp int8) []int8 {
	llrs := make([]int8, len(coded))
	for i, b := range coded {
		if b == 0 {
			llrs[i] = amp
		} else {
			llrs[i] = -amp
		}
	}
	return llrs
}

func TestSoftDecoderNoiselessAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var dec SoftDecoder
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		for _, n := range []int{TailBits + 1, 40, 97, 300, 1000} {
			bits := randBits(rng, n)
			coded, err := ConvEncode(bits, rate)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Decode(llrsFromBits(coded, 25), rate, n)
			if err != nil {
				t.Fatalf("rate %v n=%d: %v", rate, n, err)
			}
			if !bytes.Equal(got, bits) {
				t.Fatalf("rate %v n=%d: noiseless quantized decode diverged", rate, n)
			}
		}
	}
}

// TestSoftDecoderMatchesFloatOnIntegerLLRs feeds both decoders the same
// integer-valued LLRs (noisy, including zeros and saturating magnitudes).
// Metrics and tie-breaks must coincide, so the decoded paths must be
// bit-identical even when the decode is wrong.
func TestSoftDecoderMatchesFloatOnIntegerLLRs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dec SoftDecoder
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		for trial := 0; trial < 40; trial++ {
			n := TailBits + 1 + rng.Intn(400)
			bits := randBits(rng, n)
			coded, err := ConvEncode(bits, rate)
			if err != nil {
				t.Fatal(err)
			}
			llrs := make([]int8, len(coded))
			fllrs := make([]float64, len(coded))
			for i, b := range coded {
				clean := 12
				if b == 1 {
					clean = -12
				}
				// Heavy integer noise, with occasional erasures and rails.
				v := clean + rng.Intn(41) - 20
				switch rng.Intn(10) {
				case 0:
					v = 0
				case 1:
					v = 127
				case 2:
					v = -127
				}
				if v > 127 {
					v = 127
				} else if v < -127 {
					v = -127
				}
				llrs[i] = int8(v)
				fllrs[i] = float64(v)
			}
			got, err := dec.Decode(llrs, rate, n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ViterbiDecodeSoft(fllrs, rate, n)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rate %v n=%d trial %d: quantized and float decoders walked different paths", rate, n, trial)
			}
		}
	}
}

// TestSoftDecoderRenormLongInput pushes far past several renormalization
// intervals with worst-case branch costs to exercise the uint16 headroom.
func TestSoftDecoderRenormLongInput(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 6000
	bits := randBits(rng, n)
	coded, err := ConvEncode(bits, Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	llrs := llrsFromBits(coded, 127)
	// Flip a sprinkle of rail-to-rail errors.
	for i := 0; i < len(llrs); i += 97 {
		llrs[i] = -llrs[i]
	}
	var dec SoftDecoder
	got, err := dec.Decode(llrs, Rate1_2, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bits) {
		t.Fatal("long-input decode with rail-to-rail noise diverged")
	}
}

func TestSoftDecoderReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var dec SoftDecoder
	for _, n := range []int{500, 20, 900, 64, 128} {
		for _, rate := range []CodeRate{Rate3_4, Rate1_2} {
			bits := randBits(rng, n)
			coded, _ := ConvEncode(bits, rate)
			got, err := dec.Decode(llrsFromBits(coded, 30), rate, n)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, bits) {
				t.Fatalf("reuse n=%d rate %v: decode diverged", n, rate)
			}
		}
	}
}

func TestSoftDecoderErrors(t *testing.T) {
	var dec SoftDecoder
	out := make([]byte, 8)
	if err := dec.DecodeInto(out, make([]int8, 16), CodeRate(0), 8); err == nil {
		t.Error("invalid rate accepted")
	}
	if err := dec.DecodeInto(out, make([]int8, 16), Rate1_2, 0); err == nil {
		t.Error("zero numInfoBits accepted")
	}
	if err := dec.DecodeInto(out[:4], make([]int8, 16), Rate1_2, 8); err == nil {
		t.Error("short output accepted")
	}
	if err := dec.DecodeInto(out, make([]int8, 15), Rate1_2, 8); err == nil {
		t.Error("short rate-1/2 stream accepted")
	}
	if err := dec.DecodeInto(out, make([]int8, 10), Rate3_4, 8); err == nil {
		t.Error("short punctured stream accepted")
	}
	if _, err := ViterbiDecodeSoftQ(make([]int8, 16), Rate1_2, 0); err == nil {
		t.Error("wrapper accepted zero numInfoBits")
	}
}

func TestSoftDecoderDecodeIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 1200
	bits := randBits(rng, n)
	for _, rate := range []CodeRate{Rate1_2, Rate3_4} {
		coded, _ := ConvEncode(bits, rate)
		llrs := llrsFromBits(coded, 40)
		var dec SoftDecoder
		dst := make([]byte, n)
		if err := dec.DecodeInto(dst, llrs, rate, n); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := dec.DecodeInto(dst, llrs, rate, n); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("rate %v: DecodeInto allocates %.1f/op in steady state, want 0", rate, allocs)
		}
	}
}

func TestSatLLR8(t *testing.T) {
	cases := []struct {
		in   float64
		want int8
	}{
		{0, 0}, {0.4, 0}, {0.6, 1}, {-0.6, -1},
		{126.7, 127}, {127, 127}, {1e9, 127},
		{-126.7, -127}, {-1e9, -127},
		{math.Inf(1), 127}, {math.Inf(-1), -127}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := SatLLR8(c.in); got != c.want {
			t.Errorf("SatLLR8(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuantizeLLRsInto(t *testing.T) {
	src := []float64{1.2, -3.7, 1000, math.NaN()}
	dst := make([]int8, 4)
	if err := QuantizeLLRsInto(dst, src, 2); err != nil {
		t.Fatal(err)
	}
	want := []int8{2, -7, 127, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if err := QuantizeLLRsInto(dst[:2], src, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDeinterleaveLLRInto(t *testing.T) {
	il, err := NewInterleaver(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, 48)
	llrs := make([]int8, 48)
	rng := rand.New(rand.NewSource(1))
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
		if bits[i] == 0 {
			llrs[i] = int8(1 + rng.Intn(100))
		} else {
			llrs[i] = int8(-1 - rng.Intn(100))
		}
	}
	inter, err := il.Interleave(bits)
	if err != nil {
		t.Fatal(err)
	}
	interLLR := make([]int8, 48)
	for i, b := range inter {
		// Re-derive the interleaved LLR stream from the interleaved bits so
		// the deinterleaved signs must reproduce the original bit order.
		if b == 0 {
			interLLR[i] = 1
		} else {
			interLLR[i] = -1
		}
	}
	out := make([]int8, 48)
	if err := il.DeinterleaveLLRInto(out, interLLR); err != nil {
		t.Fatal(err)
	}
	for i, b := range bits {
		got := byte(0)
		if out[i] < 0 {
			got = 1
		}
		if got != b {
			t.Fatalf("bit %d: deinterleaved LLR sign %d does not match bit %d", i, out[i], b)
		}
	}
	if err := il.DeinterleaveLLRInto(out[:10], interLLR); err == nil {
		t.Error("short output accepted")
	}
	if err := il.DeinterleaveLLRInto(out, interLLR[:10]); err == nil {
		t.Error("short input accepted")
	}
}

// FuzzSoftDecoderMatchesFloat cross-checks the SWAR kernel against the
// float64 oracle on arbitrary integer LLR streams.
func FuzzSoftDecoderMatchesFloat(f *testing.F) {
	f.Add([]byte{0x10, 0x90, 0x7f, 0x81, 0x00, 0x20, 0xe0, 0x05, 0x3c, 0xc4, 0x01, 0xff, 0x40, 0xbf}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, rateRaw uint8) {
		rate := CodeRate(rateRaw%3) + Rate1_2
		llrs := make([]int8, len(raw))
		fllrs := make([]float64, len(raw))
		for i, b := range raw {
			v := int8(b)
			if v == -128 {
				v = -127 // keep |l| within the documented saturation range
			}
			llrs[i] = v
			fllrs[i] = float64(v)
		}
		// Largest info-bit count the stream supports at this rate.
		n := int(float64(len(llrs)) * rate.Ratio())
		if n < 1 {
			t.Skip()
		}
		var dec SoftDecoder
		got, err := dec.Decode(llrs, rate, n)
		if err != nil {
			t.Skip()
		}
		want, err := ViterbiDecodeSoft(fllrs, rate, n)
		if err != nil {
			t.Fatalf("float oracle rejected what quantized accepted: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rate %v n=%d: quantized path diverged from float oracle", rate, n)
		}
	})
}
