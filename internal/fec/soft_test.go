package fec

import (
	"bytes"
	"math/rand"
	"testing"
)

// hardToLLR converts clean hard bits to confident LLRs.
func hardToLLR(bits []byte, confidence float64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = confidence
		} else {
			out[i] = -confidence
		}
	}
	return out
}

func TestViterbiSoftCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		info := withTail(randomBits(rng, 240))
		coded, err := ConvEncode(info, rate)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ViterbiDecodeSoft(hardToLLR(coded, 4), rate, len(info))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, info) {
			t.Errorf("rate %v: clean soft decode failed", rate)
		}
	}
}

func TestViterbiSoftValidation(t *testing.T) {
	if _, err := ViterbiDecodeSoft(nil, CodeRate(0), 10); err == nil {
		t.Error("accepted invalid rate")
	}
	if _, err := ViterbiDecodeSoft(nil, Rate1_2, 0); err == nil {
		t.Error("accepted zero info bits")
	}
	if _, err := ViterbiDecodeSoft([]float64{1}, Rate1_2, 100); err == nil {
		t.Error("accepted short LLR stream")
	}
}

func TestViterbiSoftUsesConfidence(t *testing.T) {
	// A corrupted bit with LOW confidence should be overridden by the
	// code; the same corruption with HIGH confidence poisons the decode
	// more. Construct: flip several clustered bits.
	rng := rand.New(rand.NewSource(2))
	info := withTail(randomBits(rng, 500))
	coded, err := ConvEncode(info, Rate1_2)
	if err != nil {
		t.Fatal(err)
	}
	llrs := hardToLLR(coded, 4)
	// Flip 5 nearby coded bits but mark them low-confidence.
	for i := 100; i < 110; i += 2 {
		llrs[i] = -llrs[i] * 0.05
	}
	dec, err := ViterbiDecodeSoft(llrs, Rate1_2, len(info))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, info) {
		t.Error("low-confidence errors not corrected")
	}
}

func TestViterbiSoftBeatsHardOnAWGN(t *testing.T) {
	// The classic result: soft decisions buy roughly 2 dB. At an SNR where
	// hard decoding is marginal, soft decoding should produce strictly
	// fewer frame errors over many trials.
	rng := rand.New(rand.NewSource(3))
	const trials = 60
	hardFails, softFails := 0, 0
	for trial := 0; trial < trials; trial++ {
		info := withTail(randomBits(rng, 1200))
		coded, err := ConvEncode(info, Rate1_2)
		if err != nil {
			t.Fatal(err)
		}
		// BPSK over AWGN at ~2.7 dB Eb/N0: channel BER around 6%.
		llrs := make([]float64, len(coded))
		hard := make([]byte, len(coded))
		const sigma = 0.82
		for i, c := range coded {
			x := 1.0 - 2.0*float64(c) // bit 0 -> +1
			y := x + rng.NormFloat64()*sigma
			llrs[i] = 2 * y / (sigma * sigma)
			if y < 0 {
				hard[i] = 1
			}
		}
		hd, err := ViterbiDecode(hard, Rate1_2, len(info))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := ViterbiDecodeSoft(llrs, Rate1_2, len(info))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hd, info) {
			hardFails++
		}
		if !bytes.Equal(sd, info) {
			softFails++
		}
	}
	if hardFails == 0 {
		t.Skip("channel too clean to compare (unexpected)")
	}
	if softFails >= hardFails {
		t.Errorf("soft decoding (%d/%d failures) not better than hard (%d/%d)",
			softFails, trials, hardFails, trials)
	}
}

func TestViterbiSoftPuncturedErasures(t *testing.T) {
	// Rate 3/4 with a noisy channel: soft depuncturing inserts zero-LLR
	// erasures and still decodes.
	rng := rand.New(rand.NewSource(4))
	info := withTail(randomBits(rng, 600))
	coded, err := ConvEncode(info, Rate3_4)
	if err != nil {
		t.Fatal(err)
	}
	llrs := hardToLLR(coded, 4)
	// A couple of weak flips.
	llrs[50] = -llrs[50] * 0.1
	llrs[51] = -llrs[51] * 0.1
	dec, err := ViterbiDecodeSoft(llrs, Rate3_4, len(info))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, info) {
		t.Error("punctured soft decode failed")
	}
}
