package fec

import (
	"fmt"
	"math"
)

// Quantized soft decoding.
//
// The int8 LLR convention matches modem.DemapSoft: positive means coded bit
// 0 is more likely, magnitude is confidence, and 0 is an erasure (punctured
// positions are re-inserted as zeros). The decoder is invariant to any
// positive scaling of its inputs, so the quantizer upstream is free to pick
// whatever scale fills the int8 range; modem.LLRQScale documents the choice
// the demapper makes.
//
// SoftDecoder replaces the float64 ViterbiDecodeSoft chain on the receive
// hot path. Three things make it fast:
//
//  1. uint16 path metrics with periodic renormalization. Branch metrics are
//     at most 256 per step (|la|+|lb| of two int8 LLRs), and the metric
//     spread across the 64 states is bounded by 6*256 = 1536 once every
//     state is reachable (any state is 6 hops from the minimum-metric
//     state). Subtracting the running minimum every renormInterval steps
//     therefore keeps every metric below 1536 + 64*256 = 17920, safely
//     inside the < 2^15 headroom the SWAR comparison below requires.
//
//  2. A 256-entry cost LUT indexed by the quantized LLR's bit pattern
//     (sign/magnitude): pairCost[uint8(l)] packs cost(coded bit 0) in the
//     low half-word and cost(coded bit 1) in the high half-word, so the
//     per-step 4-entry output-pair cost table is built from two loads and
//     four adds with no per-bit branches and no precision loss.
//
//  3. An 8-lane SWAR add-compare-select: the trellis is walked as 16
//     butterflies of 4 next states whose path metrics are packed
//     4-per-uint64 (16-bit lanes), and the metric array itself is stored as
//     16 such words, so each loop iteration advances two adjacent
//     butterflies — 8 next-state lanes across two independent words. One
//     word load supplies both butterflies' low (or high) predecessors, the
//     two candidate metric vectors are formed with lane-broadcast
//     multiplies, the branch costs come from a 16-entry per-step table of
//     packed cost words (indexed by the two butterfly branch outputs, with
//     the complemented layout at index^15 — the K=7 generators both have
//     their newest- and oldest-bit taps set, so the second predecessor's
//     outputs are always the bitwise complement), and the lane-wise
//     compare/selects resolve in a handful of word ops using the high-bit
//     borrow trick. The two words per iteration carry no data dependency,
//     so their add-compare-select chains retire in parallel, and the
//     selected words store back directly with no uint16 repacking.
//
// Tie-breaking matches ViterbiDecode and ViterbiDecodeSoft: on equal
// metrics the low predecessor (state>>1) wins, so all three decoders walk
// identical survivor paths on identical-decision inputs.
const (
	renormInterval = 64
	// initialMetric handicaps the 63 non-zero start states. It only needs
	// to exceed the largest 6-step path cost (6*256 = 1536) for paths
	// seeded at an invalid state to lose every merge against genuine
	// paths, exactly as the float64 decoder's +Inf initialization does.
	initialMetric = 0x3000
	swarHigh      = 0x8000800080008000
	swarOnes      = 0x0001000100010001
	// swarPair broadcasts one 16-bit lane into the two low lanes; shifted
	// left 32 it fills the two high lanes — the a|a<<16|b<<32|b<<48 layout
	// the butterfly's candidate vectors need.
	swarPair = 0x0000000000010001
	// numMetricWords is the packed metric array length: 64 states, 4
	// 16-bit lanes per word. Word w holds states 4w..4w+3.
	numMetricWords = numStates / 4
)

// pairCost packs, for the int8 LLR with bit pattern i, the branch cost of
// the transmitter having sent coded bit 0 (low 16 bits) and coded bit 1
// (high 16 bits): disagreeing with the LLR's sign costs its magnitude.
var pairCost = buildPairCost()

func buildPairCost() (t [256]uint32) {
	for i := range t {
		l := int(int8(i))
		var c0, c1 int
		if l < 0 {
			c0 = -l
		} else {
			c1 = l
		}
		t[i] = uint32(c0) | uint32(c1)<<16
	}
	return t
}

// butterflyOut[j] packs the branch outputs of the two low predecessors
// feeding next states 4j..4j+3: branchOut[2j][0]<<2 | branchOut[2j+1][0].
// The other six branches of the butterfly follow by complement (^3).
var butterflyOut = buildButterflyOut()

func buildButterflyOut() (t [16]uint8) {
	for j := range t {
		t[j] = branchOut[2*j][0]<<2 | branchOut[2*j+1][0]
	}
	// The SWAR kernel relies on two symmetries of the generator pair: both
	// polynomials tap the newest bit (input-bit complement) and the oldest
	// bit (high-predecessor complement). They hold for the 802.11 133/171
	// pair; guard against table edits.
	for s := 0; s < numStates; s++ {
		if branchOut[s][1] != branchOut[s][0]^3 {
			panic("fec: branch table lost input-bit complement symmetry")
		}
		if s < numStates/2 {
			for b := 0; b < 2; b++ {
				if branchOut[s+numStates/2][b] != branchOut[s][b]^3 {
					panic("fec: branch table lost high-predecessor complement symmetry")
				}
			}
		}
	}
	return t
}

// SoftDecoder is a reusable quantized soft-decision Viterbi decoder. The
// zero value is ready to use; after the first call of a given frame size,
// DecodeInto performs zero heap allocations. A SoftDecoder must not be
// shared between goroutines (use one per worker, or a sync.Pool).
type SoftDecoder struct {
	// metrics holds the two ping-pong path-metric arrays in packed SWAR
	// form: 16 uint64 words of four 16-bit lanes, word w carrying states
	// 4w..4w+3. The add-compare-select reads and writes whole words, so
	// metrics never round-trip through uint16 scalars inside the bit loop.
	metrics   [2][numMetricWords]uint64
	survivors []uint64
	scratch   []int8 // depunctured mother stream for rates 2/3 and 3/4
}

// Decode is DecodeInto with an allocated output slice.
func (d *SoftDecoder) Decode(llrs []int8, rate CodeRate, numInfoBits int) ([]byte, error) {
	if numInfoBits <= 0 {
		return nil, fmt.Errorf("fec: numInfoBits must be positive, got %d", numInfoBits)
	}
	out := make([]byte, numInfoBits)
	if err := d.DecodeInto(out, llrs, rate, numInfoBits); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto maximum-likelihood-decodes a punctured stream of quantized
// LLRs into dst (one 0/1 byte per information bit, len(dst) ==
// numInfoBits). It is the int8 counterpart of ViterbiDecodeSoft and decodes
// the same path on inputs that quantize without saturation; in steady state
// it allocates nothing.
func (d *SoftDecoder) DecodeInto(dst []byte, llrs []int8, rate CodeRate, numInfoBits int) error {
	if !rate.Valid() {
		return fmt.Errorf("fec: invalid code rate %v", rate)
	}
	if numInfoBits <= 0 {
		return fmt.Errorf("fec: numInfoBits must be positive, got %d", numInfoBits)
	}
	if len(dst) != numInfoBits {
		return fmt.Errorf("fec: output buffer needs %d entries, got %d", numInfoBits, len(dst))
	}
	mother := llrs
	if rate != Rate1_2 {
		need := 2 * numInfoBits
		if cap(d.scratch) < need {
			d.scratch = make([]int8, need)
		}
		mother = d.scratch[:need]
		if err := depunctureQInto(mother, llrs, rate); err != nil {
			return err
		}
	} else if len(llrs) < 2*numInfoBits {
		return fmt.Errorf("fec: LLR stream too short: have %d, need more for %d info bits at rate %v",
			len(llrs), numInfoBits, rate)
	}

	if cap(d.survivors) < numInfoBits {
		d.survivors = make([]uint64, numInfoBits)
	}
	surv := d.survivors[:numInfoBits]

	metric, next := &d.metrics[0], &d.metrics[1]
	metric[0] = initialMetric*swarOnes - initialMetric // state 0 free, 1..3 handicapped
	for i := 1; i < numMetricWords; i++ {
		metric[i] = initialMetric * swarOnes
	}

	for t := 0; t < numInfoBits; t++ {
		ca := pairCost[uint8(mother[2*t])]
		cb := pairCost[uint8(mother[2*t+1])]
		c0, c1 := uint64(ca&0xffff), uint64(ca>>16)
		e0, e1 := uint64(cb&0xffff), uint64(cb>>16)
		// cost[o] is the branch metric of emitting packed output o = A<<1|B.
		var cost [4]uint64
		cost[0] = c0 + e0
		cost[1] = c0 + e1
		cost[2] = c1 + e0
		cost[3] = c1 + e1
		// packed[idx] lays cost[o0], cost[o0^3], cost[o1], cost[o1^3] into
		// four 16-bit lanes for butterfly output pair idx = o0<<2|o1; the
		// high-predecessor cost word is packed[idx^15] by the complement
		// symmetry.
		var packed [16]uint64
		for idx := range packed {
			o0, o1 := idx>>2, idx&3
			packed[idx] = cost[o0] | cost[o0^3]<<16 | cost[o1]<<32 | cost[o1^3]<<48
		}
		var sbits uint64
		for j := 0; j < 16; j += 2 {
			// Butterflies j and j+1 share their predecessor words: states
			// 2j..2j+3 live in word j/2, states 2j+32..2j+35 in word
			// j/2+8. Butterfly j draws lanes 0,1 (low preds 2j, 2j+1) and
			// butterfly j+1 lanes 2,3, each broadcast to the a,a,b,b
			// candidate layout.
			w := metric[j>>1]
			hw := metric[(j>>1)+8]
			x0 := (w&0xffff)*swarPair | ((w >> 16 & 0xffff) * swarPair << 32)
			x1 := (w>>32&0xffff)*swarPair | ((w >> 48) * swarPair << 32)
			y0 := (hw&0xffff)*swarPair | ((hw >> 16 & 0xffff) * swarPair << 32)
			y1 := (hw>>32&0xffff)*swarPair | ((hw >> 48) * swarPair << 32)
			idx0 := butterflyOut[j]
			idx1 := butterflyOut[j+1]
			x0 += packed[idx0]
			y0 += packed[idx0^15]
			x1 += packed[idx1]
			y1 += packed[idx1^15]
			// Lane-wise strict compare: lane bit of m set iff y < x (the
			// high predecessor strictly wins; ties keep the low one, as in
			// the scalar decoders). Values stay below 2^15, so ORing the
			// lane sign bit into x and subtracting y+1 cannot borrow across
			// lanes, and the sign bit survives exactly when x >= y+1. The
			// two words' chains are independent — free ILP.
			diff0 := (x0 | swarHigh) - (y0 + swarOnes)
			diff1 := (x1 | swarHigh) - (y1 + swarOnes)
			m0 := (diff0 & swarHigh) >> 15
			m1 := (diff1 & swarHigh) >> 15
			mask0 := m0 * 0xffff
			mask1 := m1 * 0xffff
			next[j] = (y0 & mask0) | (x0 &^ mask0)
			next[j+1] = (y1 & mask1) | (x1 &^ mask1)
			sbits |= (m0&1 | m0>>15&2 | m0>>30&4 | m0>>45&8) << (4 * j)
			sbits |= (m1&1 | m1>>15&2 | m1>>30&4 | m1>>45&8) << (4*j + 4)
		}
		surv[t] = sbits
		metric, next = next, metric
		if t%renormInterval == renormInterval-1 {
			renormWords(metric)
		}
	}

	// Unpack the packed metrics for the final best-state scan; the strict
	// compare keeps the lowest state on ties, as the scalar decoders do.
	best, bestMetric := 0, metric[0]&0xffff
	for s := 1; s < numStates; s++ {
		if m := metric[s>>2] >> (16 * (s & 3)) & 0xffff; m < bestMetric {
			best, bestMetric = s, m
		}
	}
	state := best
	for t := numInfoBits - 1; t >= 0; t-- {
		dst[t] = byte(state & 1)
		state = state>>1 | int((surv[t]>>uint(state))&1)<<5
	}
	return nil
}

// renormWords subtracts the minimum path metric from every state, operating
// on the packed word layout: a lane-wise SWAR min folds the 16 words to
// one, a scalar pass folds its 4 lanes, and the broadcast subtraction
// cannot borrow across lanes because every lane is >= the minimum. The
// strict-compare trick requires lanes below 2^15, which the renorm cadence
// guarantees (see the metric-headroom analysis above).
func renormWords(metric *[numMetricWords]uint64) {
	lo := metric[0]
	for i := 1; i < numMetricWords; i++ {
		w := metric[i]
		diff := (lo | swarHigh) - (w + swarOnes)
		m := (diff & swarHigh) >> 15
		mask := m * 0xffff
		lo = (w & mask) | (lo &^ mask)
	}
	min := lo & 0xffff
	for k := 1; k < 4; k++ {
		if l := lo >> (16 * k) & 0xffff; l < min {
			min = l
		}
	}
	bcast := min * swarOnes
	for i := range metric {
		metric[i] -= bcast
	}
}

// ViterbiDecodeSoftQ is a convenience wrapper allocating a throwaway
// SoftDecoder; hot paths should hold a SoftDecoder and call DecodeInto.
func ViterbiDecodeSoftQ(llrs []int8, rate CodeRate, numInfoBits int) ([]byte, error) {
	var d SoftDecoder
	return d.Decode(llrs, rate, numInfoBits)
}

// depunctureQInto re-inserts zero-LLR erasures where bits were punctured,
// filling dst (length 2*numInfoBits) without allocating.
func depunctureQInto(dst, llrs []int8, rate CodeRate) error {
	pattern := rate.puncturePattern()
	src, n := 0, 0
	for n < len(dst) {
		for _, keep := range pattern {
			if n == len(dst) {
				break
			}
			if keep {
				if src >= len(llrs) {
					return fmt.Errorf("fec: LLR stream too short: have %d, need more for %d info bits at rate %v",
						len(llrs), len(dst)/2, rate)
				}
				dst[n] = llrs[src]
				src++
			} else {
				dst[n] = 0
			}
			n++
		}
	}
	return nil
}

// SatLLR8 saturates a float LLR (already multiplied by the caller's chosen
// quantization scale) to the symmetric int8 range [-127, 127]. Non-finite
// inputs quantize to 0 — an erasure — so pathological channel weights
// degrade gracefully instead of poisoning the trellis.
func SatLLR8(v float64) int8 {
	switch {
	case v >= 127:
		return 127
	case v <= -127:
		return -127
	case math.IsNaN(v):
		return 0
	default:
		return int8(math.Round(v))
	}
}

// QuantizeLLRsInto saturates scale*src[i] into dst. len(dst) must equal
// len(src).
func QuantizeLLRsInto(dst []int8, src []float64, scale float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("fec: quantize buffer needs %d entries, got %d", len(src), len(dst))
	}
	for i, l := range src {
		dst[i] = SatLLR8(l * scale)
	}
	return nil
}
