package fec

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestCachedInterleaverConcurrent hammers the package-level interleaver
// cache from many goroutines across overlapping geometries. Run under
// -race, it guards the audit finding that every package-level cache in fec
// (interleaverCache, the init-built branch/cost tables) is either immutable
// after init or synchronized.
func TestCachedInterleaverConcurrent(t *testing.T) {
	geometries := [][2]int{{48, 1}, {96, 2}, {192, 4}, {288, 6}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 50; iter++ {
				geo := geometries[(g+iter)%len(geometries)]
				il, err := CachedInterleaver(geo[0], geo[1])
				if err != nil {
					t.Error(err)
					return
				}
				in := make([]byte, geo[0])
				for i := range in {
					in[i] = byte(rng.Intn(2))
				}
				inter, err := il.Interleave(in)
				if err != nil {
					t.Error(err)
					return
				}
				back, err := il.Deinterleave(inter)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(back, in) {
					t.Errorf("geometry %v: cached interleaver round trip corrupted", geo)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSoftDecoderConcurrentInstances runs independent SoftDecoder instances
// in parallel over the shared init-built LUTs (pairCost, butterflyOut,
// branchOut), the usage pattern of the parallel subframe receive path.
func TestSoftDecoderConcurrentInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 800
	bits := randBits(rng, n)
	coded, err := ConvEncode(bits, Rate3_4)
	if err != nil {
		t.Fatal(err)
	}
	llrs := llrsFromBits(coded, 35)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dec SoftDecoder
			for iter := 0; iter < 20; iter++ {
				got, err := dec.Decode(llrs, Rate3_4, n)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, bits) {
					t.Error("concurrent decode diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
