package fec

import "fmt"

// ViterbiDecodeSoft is the soft-decision counterpart of ViterbiDecode: it
// consumes per-coded-bit log-likelihood ratios (positive = bit 0 more
// likely, the modem.DemapSoft convention) instead of hard bits. Punctured
// positions are re-inserted as zero-LLR erasures. Soft decoding buys the
// classic ~2 dB over hard decisions on an AWGN channel — an extension over
// the paper's hard-decision prototype.
func ViterbiDecodeSoft(llrs []float64, rate CodeRate, numInfoBits int) ([]byte, error) {
	if !rate.Valid() {
		return nil, fmt.Errorf("fec: invalid code rate %v", rate)
	}
	if numInfoBits <= 0 {
		return nil, fmt.Errorf("fec: numInfoBits must be positive, got %d", numInfoBits)
	}
	mother := llrs
	if rate != Rate1_2 {
		var err error
		mother, err = depunctureSoft(llrs, rate, numInfoBits)
		if err != nil {
			return nil, err
		}
	} else if len(llrs) < 2*numInfoBits {
		return nil, fmt.Errorf("fec: LLR stream too short: have %d, need more for %d info bits at rate %v",
			len(llrs), numInfoBits, rate)
	}

	const inf = 1e18
	var m0, m1 [numStates]float64
	metric, next := &m0, &m1
	for i := 1; i < numStates; i++ {
		metric[i] = inf
	}
	// One survivor bit per state per step, as in ViterbiDecode: bit ns set
	// means the winning predecessor was (ns>>1)|32.
	survivors := make([]uint64, numInfoBits)

	// cost of transmitting coded bit c against received LLR l: choosing the
	// less likely bit costs |l|; agreeing costs 0.
	bitCost := func(c byte, l float64) float64 {
		if l > 0 && c == 1 {
			return l
		}
		if l < 0 && c == 0 {
			return -l
		}
		return 0
	}

	for t := 0; t < numInfoBits; t++ {
		la, lb := mother[2*t], mother[2*t+1]
		var cost [4]float64
		for o := 0; o < 4; o++ {
			cost[o] = bitCost(byte(o>>1), la) + bitCost(byte(o&1), lb)
		}
		var bits uint64
		for ns := 0; ns < numStates; ns++ {
			b := ns & 1
			p0 := ns >> 1
			p1 := p0 | numStates/2
			c0 := metric[p0] + cost[branchOut[p0][b]]
			c1 := metric[p1] + cost[branchOut[p1][b]]
			if c1 < c0 {
				next[ns] = c1
				bits |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		survivors[t] = bits
		metric, next = next, metric
	}

	best := 0
	for s := 1; s < numStates; s++ {
		if metric[s] < metric[best] {
			best = s
		}
	}
	out := make([]byte, numInfoBits)
	state := best
	for t := numInfoBits - 1; t >= 0; t-- {
		out[t] = byte(state & 1)
		state = state>>1 | int((survivors[t]>>uint(state))&1)<<5
	}
	return out, nil
}

// depunctureSoft re-inserts zero-LLR erasures where bits were punctured.
func depunctureSoft(llrs []float64, rate CodeRate, numInfoBits int) ([]float64, error) {
	pattern := rate.puncturePattern()
	mother := make([]float64, 0, 2*numInfoBits)
	src := 0
	for len(mother) < 2*numInfoBits {
		for _, keep := range pattern {
			if len(mother) == 2*numInfoBits {
				break
			}
			if keep {
				if src >= len(llrs) {
					return nil, fmt.Errorf("fec: LLR stream too short: have %d, need more for %d info bits at rate %v",
						len(llrs), numInfoBits, rate)
				}
				mother = append(mother, llrs[src])
				src++
			} else {
				mother = append(mother, 0)
			}
		}
	}
	return mother, nil
}
