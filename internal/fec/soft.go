package fec

import "fmt"

// ViterbiDecodeSoft is the soft-decision counterpart of ViterbiDecode: it
// consumes per-coded-bit log-likelihood ratios (positive = bit 0 more
// likely, the modem.DemapSoft convention) instead of hard bits. Punctured
// positions are re-inserted as zero-LLR erasures. Soft decoding buys the
// classic ~2 dB over hard decisions on an AWGN channel — an extension over
// the paper's hard-decision prototype.
func ViterbiDecodeSoft(llrs []float64, rate CodeRate, numInfoBits int) ([]byte, error) {
	if !rate.Valid() {
		return nil, fmt.Errorf("fec: invalid code rate %v", rate)
	}
	if numInfoBits <= 0 {
		return nil, fmt.Errorf("fec: numInfoBits must be positive, got %d", numInfoBits)
	}
	mother, err := depunctureSoft(llrs, rate, numInfoBits)
	if err != nil {
		return nil, err
	}

	const inf = 1e18
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := 1; i < numStates; i++ {
		metric[i] = inf
	}
	survivors := make([][]uint16, numInfoBits)

	type branch struct{ outA, outB byte }
	var branches [numStates][2]branch
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := uint32((s<<1)|b) & 0x7f
			branches[s][b] = branch{parity7(reg & genA), parity7(reg & genB)}
		}
	}

	// cost of transmitting coded bit c against received LLR l: choosing the
	// less likely bit costs |l|; agreeing costs 0.
	bitCost := func(c byte, l float64) float64 {
		if l > 0 && c == 1 {
			return l
		}
		if l < 0 && c == 0 {
			return -l
		}
		return 0
	}

	for t := 0; t < numInfoBits; t++ {
		la, lb := mother[2*t], mother[2*t+1]
		surv := make([]uint16, numStates)
		for i := range next {
			next[i] = inf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				br := branches[s][b]
				cost := m + bitCost(br.outA, la) + bitCost(br.outB, lb)
				ns := ((s << 1) | b) & (numStates - 1)
				if cost < next[ns] {
					next[ns] = cost
					surv[ns] = uint16(s<<1 | b)
				}
			}
		}
		metric, next = next, metric
		survivors[t] = surv
	}

	best := 0
	for s := 1; s < numStates; s++ {
		if metric[s] < metric[best] {
			best = s
		}
	}
	out := make([]byte, numInfoBits)
	state := best
	for t := numInfoBits - 1; t >= 0; t-- {
		packed := survivors[t][state]
		out[t] = byte(packed & 1)
		state = int(packed >> 1)
	}
	return out, nil
}

// depunctureSoft re-inserts zero-LLR erasures where bits were punctured.
func depunctureSoft(llrs []float64, rate CodeRate, numInfoBits int) ([]float64, error) {
	pattern := rate.puncturePattern()
	mother := make([]float64, 0, 2*numInfoBits)
	src := 0
	for len(mother) < 2*numInfoBits {
		for _, keep := range pattern {
			if len(mother) == 2*numInfoBits {
				break
			}
			if keep {
				if src >= len(llrs) {
					return nil, fmt.Errorf("fec: LLR stream too short: have %d, need more for %d info bits at rate %v",
						len(llrs), numInfoBits, rate)
				}
				mother = append(mother, llrs[src])
				src++
			} else {
				mother = append(mother, 0)
			}
		}
	}
	return mother, nil
}
