// Package fec implements the IEEE 802.11 OFDM forward-error-correction
// chain: the frame-synchronous scrambler, the K=7 rate-1/2 convolutional
// code with puncturing to rates 2/3 and 3/4, a hard-decision Viterbi
// decoder, the two-permutation block interleaver, and the CRC family used by
// Carpool (CRC-32 frame FCS plus the tiny CRC-1/CRC-2 symbol-level
// checksums carried on the phase-offset side channel).
package fec

import "fmt"

// The 802.11 convolutional code: constraint length 7, generator polynomials
// g0 = 133 (octal), g1 = 171 (octal).
//
// The shift register here keeps the newest input bit at the LSB, so the
// generator masks below are the bit-reversals of the standard's MSB-first
// octal constants (133 -> 155, 171 -> 117). The emitted code is exactly the
// standard one: the impulse response of output A is 1011011 and of output B
// is 1111001, current bit first.
const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	genA          = 0o155
	genB          = 0o117
)

// CodeRate identifies a puncturing pattern applied to the rate-1/2 mother
// code.
type CodeRate int

// Supported coding rates. Values start at 1 so the zero value is invalid.
const (
	Rate1_2 CodeRate = iota + 1
	Rate2_3
	Rate3_4
)

// String returns the conventional fraction.
func (r CodeRate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	default:
		return fmt.Sprintf("CodeRate(%d)", int(r))
	}
}

// Valid reports whether r is a supported rate.
func (r CodeRate) Valid() bool { return r >= Rate1_2 && r <= Rate3_4 }

// Ratio returns the information/coded bit ratio, e.g. 0.75 for rate 3/4.
func (r CodeRate) Ratio() float64 {
	switch r {
	case Rate1_2:
		return 0.5
	case Rate2_3:
		return 2.0 / 3.0
	case Rate3_4:
		return 0.75
	default:
		return 0
	}
}

// Puncture keep-masks over the rate-1/2 output stream (pairs A0 B0 A1 B1
// ...), in the order defined by 802.11-2012 §18.3.5.6. Package-level so the
// hot decode paths never allocate a pattern slice.
var (
	pattern1_2 = []bool{true, true}
	// Period: 2 input bits -> 4 mother bits, drop B1.
	pattern2_3 = []bool{true, true, true, false}
	// Period: 3 input bits -> 6 mother bits, drop B1 and A2.
	pattern3_4 = []bool{true, true, true, false, false, true}
)

// puncturePattern returns the rate's shared keep-mask. Callers must not
// mutate it.
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate1_2:
		return pattern1_2
	case Rate2_3:
		return pattern2_3
	case Rate3_4:
		return pattern3_4
	default:
		return nil
	}
}

// parity64 returns the parity of the lower 7 bits of x.
func parity7(x uint32) byte {
	x &= 0x7f
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// branchOut[s][b] packs the two coded output bits (outA<<1 | outB) emitted
// when input bit b is shifted into state s. The table depends only on the
// generator pair, so it is built once at package init instead of inside
// every ViterbiDecode call.
var branchOut = buildBranchTable(genA, genB)

func buildBranchTable(ga, gb uint32) (t [numStates][2]byte) {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := uint32((s<<1)|b) & 0x7f
			t[s][b] = parity7(reg&ga)<<1 | parity7(reg&gb)
		}
	}
	return t
}

// ConvEncode encodes bits with the 802.11 rate-1/2 mother code, then
// punctures to the requested rate. Input bits must be 0/1.
//
// The encoder starts in the all-zero state. Callers who need trellis
// termination should append six zero tail bits themselves (the PHY layer in
// this repository does so per the 802.11 TAIL field).
func ConvEncode(bits []byte, rate CodeRate) ([]byte, error) {
	if !rate.Valid() {
		return nil, fmt.Errorf("fec: invalid code rate %v", rate)
	}
	pattern := rate.puncturePattern()
	mother := make([]byte, 0, 2*len(bits))
	var state uint32
	for _, b := range bits {
		state = ((state << 1) | uint32(b&1)) & 0x7f
		mother = append(mother, parity7(state&genA), parity7(state&genB))
	}
	out := make([]byte, 0, len(mother))
	for i, b := range mother {
		if pattern[i%len(pattern)] {
			out = append(out, b)
		}
	}
	return out, nil
}

// depuncture re-inserts erasures (value 2) where punctured bits were
// dropped, recovering the mother-code stream length 2*numInfoBits.
func depuncture(coded []byte, rate CodeRate, numInfoBits int) ([]byte, error) {
	pattern := rate.puncturePattern()
	mother := make([]byte, 0, 2*numInfoBits)
	src := 0
	for len(mother) < 2*numInfoBits {
		for _, keep := range pattern {
			if len(mother) == 2*numInfoBits {
				break
			}
			if keep {
				if src >= len(coded) {
					return nil, fmt.Errorf("fec: coded stream too short: have %d bits, need more for %d info bits at rate %v",
						len(coded), numInfoBits, rate)
				}
				mother = append(mother, coded[src])
				src++
			} else {
				mother = append(mother, 2) // erasure
			}
		}
	}
	return mother, nil
}

// ViterbiDecode performs maximum-likelihood hard-decision decoding of a
// punctured convolutional stream. numInfoBits is the number of information
// bits the caller expects (including any tail bits it appended at encode
// time). Erasures introduced by depuncturing contribute zero branch metric.
//
// The trellis walk is organized around next states: state ns (whose LSB is
// the input bit) has exactly two predecessors, ns>>1 and (ns>>1)|32, so one
// survivor bit per state per step suffices — survivors pack into a single
// uint64 per trellis step instead of a per-step slice, and the add-compare-
// select loop reads the init-time branchOut table through a per-step 4-entry
// cost table.
func ViterbiDecode(coded []byte, rate CodeRate, numInfoBits int) ([]byte, error) {
	if !rate.Valid() {
		return nil, fmt.Errorf("fec: invalid code rate %v", rate)
	}
	if numInfoBits <= 0 {
		return nil, fmt.Errorf("fec: numInfoBits must be positive, got %d", numInfoBits)
	}
	mother := coded
	if rate != Rate1_2 {
		var err error
		mother, err = depuncture(coded, rate, numInfoBits)
		if err != nil {
			return nil, err
		}
	} else if len(coded) < 2*numInfoBits {
		// Rate 1/2 punctures nothing: the coded stream is the mother stream.
		return nil, fmt.Errorf("fec: coded stream too short: have %d bits, need more for %d info bits at rate %v",
			len(coded), numInfoBits, rate)
	}

	const inf = int32(1) << 29
	var m0, m1 [numStates]int32
	metric, next := &m0, &m1
	for i := 1; i < numStates; i++ {
		metric[i] = inf
	}
	// survivors[t] bit ns is set when state ns's winning predecessor at step
	// t was (ns>>1)|32 rather than ns>>1.
	survivors := make([]uint64, numInfoBits)

	for t := 0; t < numInfoBits; t++ {
		rxA, rxB := mother[2*t], mother[2*t+1]
		// cost[o] is the branch metric of emitting packed output o against
		// the received pair; erasures (value 2) cost nothing either way.
		var cost [4]int32
		for o := 0; o < 4; o++ {
			oa, ob := byte(o>>1), byte(o&1)
			var c int32
			if rxA != 2 && rxA != oa {
				c++
			}
			if rxB != 2 && rxB != ob {
				c++
			}
			cost[o] = c
		}
		var bits uint64
		for ns := 0; ns < numStates; ns++ {
			b := ns & 1
			p0 := ns >> 1
			p1 := p0 | numStates/2
			c0 := metric[p0] + cost[branchOut[p0][b]]
			c1 := metric[p1] + cost[branchOut[p1][b]]
			if c1 < c0 {
				next[ns] = c1
				bits |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		survivors[t] = bits
		metric, next = next, metric
	}

	// Traceback from the best final state. When the caller terminated the
	// trellis with tail bits, state 0 wins naturally.
	best := 0
	for s := 1; s < numStates; s++ {
		if metric[s] < metric[best] {
			best = s
		}
	}
	out := make([]byte, numInfoBits)
	state := best
	for t := numInfoBits - 1; t >= 0; t-- {
		out[t] = byte(state & 1)
		state = state>>1 | int((survivors[t]>>uint(state))&1)<<5
	}
	return out, nil
}

// TailBits is the number of zero bits appended to terminate the trellis.
const TailBits = constraintLen - 1
