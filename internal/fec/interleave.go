package fec

import "fmt"

// Interleaver implements the 802.11 two-permutation block interleaver
// (Std 802.11-2012 §18.3.5.7). It operates on one OFDM symbol's worth of
// coded bits at a time.
//
//	ncbps: coded bits per OFDM symbol (48, 96, 192 or 288)
//	nbpsc: coded bits per subcarrier (1, 2, 4 or 6)
type Interleaver struct {
	ncbps, nbpsc int
	fwd, inv     []int // fwd[k] = final index of input bit k
}

// NewInterleaver builds the permutation tables for the given block geometry.
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || nbpsc <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("fec: bad interleaver geometry ncbps=%d nbpsc=%d", ncbps, nbpsc)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	fwd := make([]int, ncbps)
	inv := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: adjacent coded bits map onto nonadjacent
		// subcarriers.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: adjacent bits alternate between less and more
		// significant constellation bits.
		j := s*(i/s) + (i+ncbps-(16*i)/ncbps)%s
		fwd[k] = j
		inv[j] = k
	}
	return &Interleaver{ncbps: ncbps, nbpsc: nbpsc, fwd: fwd, inv: inv}, nil
}

// BlockSize returns the number of bits per interleaved block.
func (il *Interleaver) BlockSize() int { return il.ncbps }

// Interleave permutes one block. len(in) must equal BlockSize().
func (il *Interleaver) Interleave(in []byte) ([]byte, error) {
	if len(in) != il.ncbps {
		return nil, fmt.Errorf("fec: interleave block length %d, want %d", len(in), il.ncbps)
	}
	out := make([]byte, il.ncbps)
	for k, j := range il.fwd {
		out[j] = in[k]
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(in []byte) ([]byte, error) {
	if len(in) != il.ncbps {
		return nil, fmt.Errorf("fec: deinterleave block length %d, want %d", len(in), il.ncbps)
	}
	out := make([]byte, il.ncbps)
	for j, k := range il.inv {
		out[k] = in[j]
	}
	return out, nil
}

// DeinterleaveFloats applies the inverse permutation to per-bit soft values
// (LLRs), for the soft-decision receive path.
func (il *Interleaver) DeinterleaveFloats(in []float64) ([]float64, error) {
	if len(in) != il.ncbps {
		return nil, fmt.Errorf("fec: deinterleave block length %d, want %d", len(in), il.ncbps)
	}
	out := make([]float64, il.ncbps)
	for j, k := range il.inv {
		out[k] = in[j]
	}
	return out, nil
}
