package fec

import (
	"fmt"
	"sync"
)

// Interleaver implements the 802.11 two-permutation block interleaver
// (Std 802.11-2012 §18.3.5.7). It operates on one OFDM symbol's worth of
// coded bits at a time.
//
//	ncbps: coded bits per OFDM symbol (48, 96, 192 or 288)
//	nbpsc: coded bits per subcarrier (1, 2, 4 or 6)
type Interleaver struct {
	ncbps, nbpsc int
	fwd, inv     []int // fwd[k] = final index of input bit k
}

// NewInterleaver builds the permutation tables for the given block geometry.
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || nbpsc <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("fec: bad interleaver geometry ncbps=%d nbpsc=%d", ncbps, nbpsc)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	fwd := make([]int, ncbps)
	inv := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: adjacent coded bits map onto nonadjacent
		// subcarriers.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: adjacent bits alternate between less and more
		// significant constellation bits.
		j := s*(i/s) + (i+ncbps-(16*i)/ncbps)%s
		fwd[k] = j
		inv[j] = k
	}
	return &Interleaver{ncbps: ncbps, nbpsc: nbpsc, fwd: fwd, inv: inv}, nil
}

// interleaverCache shares Interleaver instances per geometry: the tables are
// immutable after construction, so one instance serves all goroutines, and
// hot paths skip rebuilding the permutations on every symbol run.
var interleaverCache sync.Map // key: ncbps<<8 | nbpsc -> *Interleaver

// CachedInterleaver returns a shared, immutable Interleaver for the given
// geometry, building it on first use.
func CachedInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	key := ncbps<<8 | nbpsc
	if il, ok := interleaverCache.Load(key); ok {
		return il.(*Interleaver), nil
	}
	il, err := NewInterleaver(ncbps, nbpsc)
	if err != nil {
		return nil, err
	}
	actual, _ := interleaverCache.LoadOrStore(key, il)
	return actual.(*Interleaver), nil
}

// BlockSize returns the number of bits per interleaved block.
func (il *Interleaver) BlockSize() int { return il.ncbps }

// Interleave permutes one block. len(in) must equal BlockSize().
func (il *Interleaver) Interleave(in []byte) ([]byte, error) {
	out := make([]byte, il.ncbps)
	if err := il.InterleaveInto(out, in); err != nil {
		return nil, err
	}
	return out, nil
}

// InterleaveInto is Interleave writing into a caller-provided BlockSize()
// buffer, allocation-free. in and out must not alias.
func (il *Interleaver) InterleaveInto(out, in []byte) error {
	if len(in) != il.ncbps {
		return fmt.Errorf("fec: interleave block length %d, want %d", len(in), il.ncbps)
	}
	if len(out) != il.ncbps {
		return fmt.Errorf("fec: interleave output length %d, want %d", len(out), il.ncbps)
	}
	for k, j := range il.fwd {
		out[j] = in[k]
	}
	return nil
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(in []byte) ([]byte, error) {
	out := make([]byte, il.ncbps)
	if err := il.DeinterleaveInto(out, in); err != nil {
		return nil, err
	}
	return out, nil
}

// DeinterleaveInto is Deinterleave writing into a caller-provided
// BlockSize() buffer, allocation-free. in and out must not alias.
func (il *Interleaver) DeinterleaveInto(out, in []byte) error {
	if len(in) != il.ncbps {
		return fmt.Errorf("fec: deinterleave block length %d, want %d", len(in), il.ncbps)
	}
	if len(out) != il.ncbps {
		return fmt.Errorf("fec: deinterleave output length %d, want %d", len(out), il.ncbps)
	}
	for j, k := range il.inv {
		out[k] = in[j]
	}
	return nil
}

// DeinterleaveFloats applies the inverse permutation to per-bit soft values
// (LLRs), for the soft-decision receive path.
func (il *Interleaver) DeinterleaveFloats(in []float64) ([]float64, error) {
	out := make([]float64, il.ncbps)
	if err := il.DeinterleaveFloatsInto(out, in); err != nil {
		return nil, err
	}
	return out, nil
}

// DeinterleaveFloatsInto is DeinterleaveFloats writing into a
// caller-provided BlockSize() buffer, allocation-free.
func (il *Interleaver) DeinterleaveFloatsInto(out, in []float64) error {
	if len(in) != il.ncbps {
		return fmt.Errorf("fec: deinterleave block length %d, want %d", len(in), il.ncbps)
	}
	if len(out) != il.ncbps {
		return fmt.Errorf("fec: deinterleave output length %d, want %d", len(out), il.ncbps)
	}
	for j, k := range il.inv {
		out[k] = in[j]
	}
	return nil
}

// DeinterleaveLLRInto applies the inverse permutation to quantized int8
// LLRs, for the quantized soft receive path. Allocation-free.
func (il *Interleaver) DeinterleaveLLRInto(out, in []int8) error {
	if len(in) != il.ncbps {
		return fmt.Errorf("fec: deinterleave block length %d, want %d", len(in), il.ncbps)
	}
	if len(out) != il.ncbps {
		return fmt.Errorf("fec: deinterleave output length %d, want %d", len(out), il.ncbps)
	}
	for j, k := range il.inv {
		out[k] = in[j]
	}
	return nil
}
