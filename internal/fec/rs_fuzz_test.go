package fec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRSRoundTrip drives random (k, m, shard length, payload, erasure
// pattern) tuples through encode + reconstruct. Patterns with at most m
// erasures must reconstruct every shard bit-exactly; patterns with more
// must return *TooManyErasuresError and never fabricate bytes.
func FuzzRSRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(64), uint32(0b000101), []byte("carpool parity"))
	f.Add(uint8(1), uint8(1), uint16(1), uint32(0b01), []byte{0xff})
	f.Add(uint8(16), uint8(4), uint16(256), uint32(0xf0001), []byte("erase me"))
	f.Add(uint8(8), uint8(1), uint16(1500), uint32(1<<7), []byte{})
	f.Fuzz(func(t *testing.T, kk, mm uint8, size uint16, eraseMask uint32, seed []byte) {
		k := int(kk)%32 + 1
		m := int(mm)%8 + 1
		n := int(size)%2048 + 1
		r, err := NewRS(k, m)
		if err != nil {
			t.Fatalf("NewRS(%d,%d): %v", k, m, err)
		}
		total := k + m
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, n)
			for b := range data[i] {
				v := byte(i*131 + b*29)
				if len(seed) > 0 {
					v ^= seed[(i+b)%len(seed)]
				}
				data[i][b] = v
			}
		}
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = make([]byte, n)
		}
		if err := r.EncodeInto(parity, data); err != nil {
			t.Fatal(err)
		}
		truth := append(append([][]byte{}, data...), parity...)

		shards := make([][]byte, total)
		present := make([]bool, total)
		erased := 0
		for i := 0; i < total; i++ {
			if eraseMask&(1<<uint(i%32)) != 0 && i < 32 {
				shards[i] = bytes.Repeat([]byte{0xee}, n)
				erased++
			} else {
				shards[i] = append([]byte(nil), truth[i]...)
				present[i] = true
			}
		}
		err = r.ReconstructInto(shards, present)
		if erased > m {
			var tme *TooManyErasuresError
			if !errors.As(err, &tme) {
				t.Fatalf("k=%d m=%d erased=%d: err = %v, want *TooManyErasuresError", k, m, erased, err)
			}
			if tme.Have != total-erased || tme.Need != k {
				t.Fatalf("TooManyErasuresError = %+v, want Have=%d Need=%d", tme, total-erased, k)
			}
			for i := 0; i < total; i++ {
				if !present[i] && !bytes.Equal(shards[i], bytes.Repeat([]byte{0xee}, n)) {
					t.Fatalf("shard %d written despite unrecoverable erasure set", i)
				}
			}
			return
		}
		if err != nil {
			t.Fatalf("k=%d m=%d erased=%d: %v", k, m, erased, err)
		}
		for i := 0; i < total; i++ {
			if !bytes.Equal(shards[i], truth[i]) {
				t.Fatalf("k=%d m=%d erased=%d: shard %d differs after reconstruct", k, m, erased, i)
			}
		}
	})
}

// FuzzRSReconstructAliasing reuses one coder and one scratch arena across
// two reconstructions with different erasure patterns — the engine's
// per-transport usage — and checks stale scratch bytes never leak into a
// recovered shard.
func FuzzRSReconstructAliasing(f *testing.F) {
	f.Add(uint8(5), uint8(3), uint32(0b00101), uint32(0b11000), []byte("alias"))
	f.Add(uint8(2), uint8(1), uint32(0b01), uint32(0b10), []byte{1, 2, 3})
	f.Add(uint8(12), uint8(4), uint32(0x0f), uint32(0xf000), []byte{})
	f.Fuzz(func(t *testing.T, kk, mm uint8, maskA, maskB uint32, seed []byte) {
		k := int(kk)%24 + 1
		m := int(mm)%6 + 1
		n := 128
		r, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		total := k + m
		truth := make([][]byte, total)
		for i := 0; i < k; i++ {
			truth[i] = make([]byte, n)
			for b := range truth[i] {
				v := byte(i*17 + b*3)
				if len(seed) > 0 {
					v ^= seed[(i*7+b)%len(seed)]
				}
				truth[i][b] = v
			}
		}
		for j := 0; j < m; j++ {
			truth[k+j] = make([]byte, n)
		}
		if err := r.EncodeInto(truth[k:], truth[:k]); err != nil {
			t.Fatal(err)
		}

		// One flat scratch arena; missing shards alias slices of it and
		// are NOT cleared between rounds.
		arena := bytes.Repeat([]byte{0x5a}, total*n)
		run := func(mask uint32) {
			shards := make([][]byte, total)
			present := make([]bool, total)
			erased := 0
			for i := 0; i < total; i++ {
				if i < 32 && mask&(1<<uint(i)) != 0 && erased < m {
					shards[i] = arena[i*n : (i+1)*n]
					erased++
				} else {
					shards[i] = truth[i]
					present[i] = true
				}
			}
			if err := r.ReconstructInto(shards, present); err != nil {
				t.Fatalf("mask=%b: %v", mask, err)
			}
			for i := 0; i < total; i++ {
				if !bytes.Equal(shards[i], truth[i]) {
					t.Fatalf("mask=%b: shard %d differs (stale scratch leaked?)", mask, i)
				}
			}
		}
		run(maskA)
		run(maskB)
		run(maskA ^ maskB)
	})
}
