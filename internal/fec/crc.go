package fec

import (
	"encoding/binary"
	"hash/crc32"
)

// FCS32 computes the 802.11 frame check sequence (CRC-32/IEEE) over data.
func FCS32(data []byte) uint32 {
	return crc32.ChecksumIEEE(data)
}

// AppendFCS returns data with its 4-byte little-endian FCS appended,
// matching the 802.11 over-the-air order.
func AppendFCS(data []byte) []byte {
	out := make([]byte, len(data)+4)
	copy(out, data)
	binary.LittleEndian.PutUint32(out[len(data):], FCS32(data))
	return out
}

// CheckFCS verifies a frame produced by AppendFCS and returns the payload
// with the FCS stripped. ok is false when the frame is too short or the
// checksum mismatches.
func CheckFCS(frame []byte) (payload []byte, ok bool) {
	if len(frame) < 4 {
		return nil, false
	}
	payload = frame[:len(frame)-4]
	want := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	return payload, FCS32(payload) == want
}

// CRC2 computes a 2-bit cyclic redundancy checksum over a bit slice using
// the polynomial x^2 + x + 1 (0b111). This is the symbol-level checksum
// Carpool carries on the 2-bit phase-offset side channel: with one OFDM
// symbol per CRC group it flags symbol decoding errors with probability 3/4.
func CRC2(bits []byte) byte {
	var reg byte // 2-bit register
	for _, b := range bits {
		fb := ((reg >> 1) ^ (b & 1)) & 1
		reg = ((reg << 1) & 0b11)
		if fb != 0 {
			reg ^= 0b11 // poly taps x^1, x^0
		}
	}
	return reg & 0b11
}

// CRC1 computes a single parity bit over a bit slice — the checksum used
// with the 1-bit phase-offset modulation.
func CRC1(bits []byte) byte {
	var p byte
	for _, b := range bits {
		p ^= b & 1
	}
	return p
}
