// Packet-level erasure coding across the subframes of one aggregate.
//
// The engine's shared-fate retry path resends a whole aggregate when any
// receiver misses its subframe. The erasure layer here takes the opposite
// approach (Chen & Leith, arXiv:1712.02718): treat the downlink as a
// broadcast channel and code *across* receivers, appending parity
// subframes so a station that loses its own subframe reconstructs it from
// the subframes it overheard plus parity — no retransmission.
//
// Two codes, one implementation:
//
//   - m = 1 parity shard is plain XOR: any single erasure is recovered by
//     XOR-ing the surviving shards. The generator matrix below is built so
//     its first parity row is all ones, making this literally the XOR code.
//   - m >= 2 is a systematic Reed-Solomon code over GF(256) (polynomial
//     0x11d). Any m erasures across the k+m shards are recoverable.
//
// Everything is scratch-based: NewRS preallocates the decode matrices and
// EncodeInto/ReconstructInto perform zero heap allocations per call, so
// the kernels sit beside the SWAR Viterbi on the hot path.
package fec

import (
	"encoding/binary"
	"fmt"
)

// gfPoly is the AES/QR-code reduction polynomial x^8+x^4+x^3+x^2+1.
const gfPoly = 0x11d

var (
	// gfExp[i] = g^i for generator g=2; doubled so gfMul can skip a mod.
	gfExp [512]byte
	// gfLog[x] = log_g(x); gfLog[0] is unused.
	gfLog [256]byte
	// gfMulTab is the flat 64 KiB product table indexed [c<<8|x]. The
	// per-row slice gfMulTab[int(c)<<8:] turns the inner encode loop into
	// one table load per byte with no log/exp arithmetic.
	gfMulTab [65536]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 1; c < 256; c++ {
		lc := int(gfLog[c])
		row := gfMulTab[c<<8 : c<<8+256]
		for x := 1; x < 256; x++ {
			row[x] = gfExp[lc+int(gfLog[x])]
		}
	}
}

// gfMul multiplies two GF(256) elements.
func gfMul(a, b byte) byte {
	return gfMulTab[int(a)<<8|int(b)]
}

// gfInv returns the multiplicative inverse; gfInv(0) is undefined and
// returns 0.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[255-int(gfLog[a])]
}

// mulAddInto computes dst ^= c * src byte-wise over GF(256). c == 0 is a
// no-op; c == 1 degenerates to the SWAR XOR used by the plain-XOR parity.
func mulAddInto(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		xorInto(dst, src)
		return
	}
	row := gfMulTab[int(c)<<8 : int(c)<<8+256]
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// mulInto computes dst = c * src.
func mulInto(dst, src []byte, c byte) {
	switch c {
	case 0:
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := gfMulTab[int(c)<<8 : int(c)<<8+256]
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// xorInto computes dst ^= src eight bytes at a time.
func xorInto(dst, src []byte) {
	n := len(src)
	_ = dst[n-1]
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORParity writes the XOR of the data shards into parity — the m=1
// erasure code in its simplest clothing. All shards must share one length.
func XORParity(parity []byte, data [][]byte) {
	for i := range parity {
		parity[i] = 0
	}
	for _, d := range data {
		xorInto(parity, d)
	}
}

// TooManyErasuresError reports a reconstruction attempt with fewer
// surviving shards than data shards. It is a typed error so callers (and
// the fuzzers) can distinguish "unrecoverable" from "wrong bytes".
type TooManyErasuresError struct {
	Have, Need int
}

func (e *TooManyErasuresError) Error() string {
	return fmt.Sprintf("fec: %d shards present, need %d to reconstruct", e.Have, e.Need)
}

// RS is a systematic Reed-Solomon erasure coder over GF(256) for k data
// shards and m parity shards. One coder is good for any shard length; it
// is not safe for concurrent use (the decode scratch is shared).
type RS struct {
	k, m int
	// parity[j][i] is the coefficient of data shard i in parity shard j.
	parity [][]byte
	// Decode scratch, preallocated so ReconstructInto is zero-alloc.
	dec  [][]byte // k x k submatrix of the generator, chosen per erasure set
	inv  [][]byte // its inverse, built by Gauss-Jordan
	rows []int    // the k present shard indices backing dec's rows
}

// NewRS builds a coder for dataShards + parityShards <= 256 total shards.
//
// The parity matrix is a column-scaled Cauchy construction over the
// points x_j = k+j, y_i = i: P[j][i] = (k XOR i) / ((k+j) XOR i) in
// GF(256). Scaling each column so row 0 is all ones keeps every square
// submatrix of [I ; P] nonsingular (the MDS property, inherited from the
// Cauchy matrix) while making the first parity shard the plain XOR of
// the data shards — so m=1 is exactly the XOR code.
func NewRS(dataShards, parityShards int) (*RS, error) {
	k, m := dataShards, parityShards
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("fec: need at least 1 data and 1 parity shard (got %d+%d)", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("fec: %d total shards exceeds GF(256) limit of 256", k+m)
	}
	r := &RS{k: k, m: m}
	// Cauchy matrix C[j][i] = 1/(x_j ^ y_i) with x_j = k+j, y_i = i; the
	// two point sets are disjoint within [0,256) because k+m <= 256.
	// Column-scale by b_i = x_0 ^ y_i = k^i so row 0 becomes all ones.
	r.parity = make([][]byte, m)
	for j := 0; j < m; j++ {
		r.parity[j] = make([]byte, k)
		for i := 0; i < k; i++ {
			num := byte(k) ^ byte(i)   // x_0 ^ y_i
			den := byte(k+j) ^ byte(i) // x_j ^ y_i, nonzero by disjointness
			r.parity[j][i] = gfMul(num, gfInv(den))
		}
	}
	r.dec = make([][]byte, k)
	r.inv = make([][]byte, k)
	for i := 0; i < k; i++ {
		r.dec[i] = make([]byte, k)
		r.inv[i] = make([]byte, k)
	}
	r.rows = make([]int, k)
	return r, nil
}

// DataShards returns k.
func (r *RS) DataShards() int { return r.k }

// ParityShards returns m.
func (r *RS) ParityShards() int { return r.m }

// TotalShards returns k+m.
func (r *RS) TotalShards() int { return r.k + r.m }

// EncodeInto fills parity[0..m) from data[0..k). Every shard must have
// the same length; parity buffers are overwritten. Zero allocations.
func (r *RS) EncodeInto(parity, data [][]byte) error {
	if len(data) != r.k || len(parity) != r.m {
		return fmt.Errorf("fec: EncodeInto got %d data + %d parity shards, coder is %d+%d",
			len(data), len(parity), r.k, r.m)
	}
	n := len(data[0])
	for _, d := range data {
		if len(d) != n {
			return fmt.Errorf("fec: data shard length %d != %d", len(d), n)
		}
	}
	for j, p := range parity {
		if len(p) != n {
			return fmt.Errorf("fec: parity shard length %d != %d", len(p), n)
		}
		mulInto(p, data[0], r.parity[j][0])
		for i := 1; i < r.k; i++ {
			mulAddInto(p, data[i], r.parity[j][i])
		}
	}
	return nil
}

// ReconstructInto rebuilds every missing shard in place. shards holds all
// k+m shard buffers (data first, then parity), each of equal length;
// present[idx] reports whether shards[idx] survived. Missing shards'
// buffers are overwritten with the reconstructed bytes; present is not
// modified. If fewer than k shards are present it returns
// *TooManyErasuresError and leaves the missing buffers untouched.
//
// Only present shards are read, so a missing shard's buffer may alias
// scratch reused across calls.
func (r *RS) ReconstructInto(shards [][]byte, present []bool) error {
	total := r.k + r.m
	if len(shards) != total || len(present) != total {
		return fmt.Errorf("fec: ReconstructInto got %d shards / %d flags, coder is %d+%d",
			len(shards), len(present), r.k, r.m)
	}
	have := 0
	for _, ok := range present {
		if ok {
			have++
		}
	}
	missingData := false
	for i := 0; i < r.k; i++ {
		if !present[i] {
			missingData = true
			break
		}
	}
	if have < r.k {
		return &TooManyErasuresError{Have: have, Need: r.k}
	}

	if missingData {
		// Pick the first k present shards; their generator rows form the
		// k x k system dec * data = observed.
		nr := 0
		for idx := 0; idx < total && nr < r.k; idx++ {
			if !present[idx] {
				continue
			}
			r.rows[nr] = idx
			row := r.dec[nr]
			if idx < r.k {
				for c := 0; c < r.k; c++ {
					row[c] = 0
				}
				row[idx] = 1
			} else {
				copy(row, r.parity[idx-r.k])
			}
			nr++
		}
		if err := r.invert(); err != nil {
			return err
		}
		// data[d] = sum_t inv[d][t] * shards[rows[t]].
		for d := 0; d < r.k; d++ {
			if present[d] {
				continue
			}
			out := shards[d]
			mulInto(out, shards[r.rows[0]], r.inv[d][0])
			for t := 1; t < r.k; t++ {
				mulAddInto(out, shards[r.rows[t]], r.inv[d][t])
			}
		}
	}

	// With all data shards in hand, re-encode any missing parity.
	for j := 0; j < r.m; j++ {
		if present[r.k+j] {
			continue
		}
		p := shards[r.k+j]
		mulInto(p, shards[0], r.parity[j][0])
		for i := 1; i < r.k; i++ {
			mulAddInto(p, shards[i], r.parity[j][i])
		}
	}
	return nil
}

// invert runs Gauss-Jordan on r.dec, leaving the inverse in r.inv. The
// submatrix is guaranteed nonsingular by the Cauchy construction; a
// singular matrix here means memory corruption, reported as an error
// rather than a panic.
func (r *RS) invert() error {
	k := r.k
	for i := 0; i < k; i++ {
		row := r.inv[i]
		for c := 0; c < k; c++ {
			row[c] = 0
		}
		row[i] = 1
	}
	for col := 0; col < k; col++ {
		// Find a pivot at or below col.
		pivot := -1
		for ri := col; ri < k; ri++ {
			if r.dec[ri][col] != 0 {
				pivot = ri
				break
			}
		}
		if pivot < 0 {
			return fmt.Errorf("fec: singular decode matrix at column %d", col)
		}
		if pivot != col {
			r.dec[pivot], r.dec[col] = r.dec[col], r.dec[pivot]
			r.inv[pivot], r.inv[col] = r.inv[col], r.inv[pivot]
		}
		// Scale the pivot row to 1.
		if pv := r.dec[col][col]; pv != 1 {
			inv := gfInv(pv)
			mulInto(r.dec[col], r.dec[col], inv)
			mulInto(r.inv[col], r.inv[col], inv)
		}
		// Eliminate the column everywhere else.
		for ri := 0; ri < k; ri++ {
			if ri == col {
				continue
			}
			if c := r.dec[ri][col]; c != 0 {
				mulAddInto(r.dec[ri], r.dec[col], c)
				mulAddInto(r.inv[ri], r.inv[col], c)
			}
		}
	}
	return nil
}
