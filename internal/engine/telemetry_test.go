package engine

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// TestSubscribeStreamRacingDrain races a live telemetry subscription
// against a graceful drain: the stream must end cleanly with a final
// update whose Stats matches the engine's terminal accounting, and whose
// accumulated deltas telescope to the same totals.
func TestSubscribeStreamRacingDrain(t *testing.T) {
	addr, eng, shutdown := startLoopback(t, Config{NumSTAs: 4, SampleEvery: 4})
	defer shutdown()

	sub, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Write(AppendSubscribeRecord(nil, 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	type streamResult struct {
		updates []TelemetryUpdate
		err     error
	}
	resc := make(chan streamResult, 1)
	go func() {
		var res streamResult
		br := bufio.NewReader(sub)
		for {
			upd, err := ReadTelemetry(br)
			if err != nil {
				res.err = err
				break
			}
			res.updates = append(res.updates, upd)
			if upd.Final {
				break
			}
		}
		resc <- res
	}()

	ingest, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ingest.Close()
	var buf []byte
	for burst := 0; burst < 4; burst++ {
		buf = buf[:0]
		for k := 0; k < 800; k++ {
			buf = AppendSizeRecord(buf, k%4, 1000)
		}
		if _, err := ingest.Write(buf); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond) // let pushes interleave with ingest
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	var res streamResult
	select {
	case res = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("telemetry stream did not end after drain")
	}
	if res.err != nil {
		t.Fatalf("stream error: %v", res.err)
	}
	if len(res.updates) == 0 {
		t.Fatal("no telemetry updates received")
	}

	last := res.updates[len(res.updates)-1]
	if !last.Final {
		t.Error("stream ended without a final update")
	}
	var sum StatsDelta
	for i, upd := range res.updates {
		if upd.Seq != uint64(i) {
			t.Fatalf("update %d has seq %d", i, upd.Seq)
		}
		sum.Add(upd.Delta)
	}
	final := eng.Stats()
	if final.Delivered == 0 {
		t.Fatal("engine delivered nothing")
	}
	got := [...]int64{sum.Accepted, sum.Rejected, sum.Delivered, sum.Dropped, sum.Expired,
		sum.Retries, sum.Transmissions, sum.Subframes, sum.DeliveredBytes}
	wantSum := [...]int64{final.Accepted, final.Rejected, final.Delivered, final.Dropped, final.Expired,
		final.Retries, final.Transmissions, final.Subframes, final.DeliveredBytes}
	if got != wantSum {
		t.Errorf("summed deltas %v do not telescope to final counters %v", got, wantSum)
	}
	lastC := [...]int64{last.Stats.Accepted, last.Stats.Rejected, last.Stats.Delivered,
		last.Stats.Dropped, last.Stats.Expired, last.Stats.Retries, last.Stats.Transmissions,
		last.Stats.Subframes, last.Stats.DeliveredBytes}
	if lastC != wantSum {
		t.Errorf("final update counters %v disagree with engine Stats %v", lastC, wantSum)
	}
	if last.Stages == nil || last.Stages.SampledDelivered == 0 {
		t.Error("final update carries no stage decomposition despite SampleEvery=4")
	}
	if len(last.PerSTA) != 4 {
		t.Errorf("final update has %d per-STA rows, want 4", len(last.PerSTA))
	}
}

// TestStageStatsOverWire round-trips the RecStageStats request: after a
// drain, the reply's decomposition must report the configured sampling
// cadence and roughly 1-in-N of the delivered frames.
func TestStageStatsOverWire(t *testing.T) {
	addr, eng, shutdown := startLoopback(t, Config{NumSTAs: 2, SampleEvery: 2})
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf []byte
	for k := 0; k < 400; k++ {
		buf = AppendSizeRecord(buf, k%2, 900)
	}
	buf = AppendControlRecord(buf, RecDrain)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	st, err := ReadStatsReply(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(AppendControlRecord(nil, RecStageStats)); err != nil {
		t.Fatal(err)
	}
	ss, err := ReadStageStatsReply(br)
	if err != nil {
		t.Fatal(err)
	}
	if ss.SampleEvery != 2 {
		t.Errorf("SampleEvery %d, want 2", ss.SampleEvery)
	}
	want := eng.Stats().Delivered / 2
	if ss.SampledDelivered == 0 || ss.SampledDelivered > st.Delivered {
		t.Errorf("SampledDelivered %d outside (0, %d]", ss.SampledDelivered, st.Delivered)
	}
	// 1-in-2 sampling by admission sequence across 2 stations: allow slack
	// for which residues the admitted sequence numbers landed on.
	if ss.SampledDelivered < want/2 {
		t.Errorf("SampledDelivered %d, want about %d", ss.SampledDelivered, want)
	}
	if ss.QueueWait.Count != ss.SampledDelivered {
		t.Errorf("queue-wait count %d, want %d", ss.QueueWait.Count, ss.SampledDelivered)
	}
}

// TestReadStatsReplyStrict exercises the malformed-reply paths carpoolload
// relies on to exit non-zero instead of reporting silently zeroed Stats.
func TestReadStatsReplyStrict(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		typ     byte
		wantErr string
	}{
		{"wrong record type", []byte(`{}`), RecData, "reply record type"},
		{"invalid JSON", []byte(`{nope`), RecStats, "malformed stats record"},
		{"missing keys", []byte(`{"accepted": 1}`), RecStats, "malformed stats record: missing"},
		{"JSON scalar", []byte(`42`), RecStats, "malformed stats record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := appendHeader(nil, tc.typ, 0, len(tc.payload))
			rec = append(rec, tc.payload...)
			_, err := ReadStatsReply(bytes.NewReader(rec))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}

	// A well-formed reply still decodes.
	good, err := statsReply(Stats{Accepted: 3, Delivered: 3, DeliveredBytesPerSTA: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadStatsReply(bytes.NewReader(good))
	if err != nil || st.Accepted != 3 {
		t.Fatalf("good reply: stats %+v, err %v", st, err)
	}
}

// TestRunLoadSubscribeReconciles runs the load generator with a live
// telemetry subscription against a sampled loopback server and checks the
// client-side reconciliation and stage decomposition surface in the report.
func TestRunLoadSubscribeReconciles(t *testing.T) {
	addr, _, shutdown := startLoopback(t, Config{NumSTAs: 4, SampleEvery: 2})
	defer shutdown()

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:        addr,
		Network:     "tcp",
		NumSTAs:     4,
		RatePerSec:  40_000,
		FrameBytes:  800,
		Duration:    150 * time.Millisecond,
		Seed:        5,
		Subscribe:   true,
		SubInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server.Delivered == 0 {
		t.Fatal("load run delivered nothing")
	}
	if rep.Telemetry == nil {
		t.Fatal("no telemetry summary despite Subscribe")
	}
	if !rep.Telemetry.Final {
		t.Error("telemetry stream ended without a final update")
	}
	if rep.Telemetry.Updates == 0 {
		t.Error("telemetry stream pushed no updates")
	}
	if !rep.Telemetry.Reconciled {
		t.Errorf("telemetry deltas did not reconcile: sum %+v vs server %+v",
			rep.Telemetry.Sum, rep.Server)
	}
	if rep.Stages == nil || rep.Stages.SampledDelivered == 0 {
		t.Error("no stage decomposition in the report despite server sampling")
	}
}

// TestSubscribeUDPOneShot checks the datagram frontend answers a subscribe
// request with a single telemetry snapshot instead of a stream.
func TestSubscribeUDPOneShot(t *testing.T) {
	e, err := New(Config{NumSTAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e)
	done := make(chan error, 1)
	go func() { done <- srv.ServeUDP(ctx, pc) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve udp: %v", err)
		}
	}()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(AppendSizeRecord(nil, 0, 700)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := conn.Write(AppendSubscribeRecord(nil, 0)); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		upd, err := ReadTelemetry(bufio.NewReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		if upd.Stats.Delivered >= 1 || time.Now().After(deadline) {
			if upd.Stats.Accepted != 1 {
				t.Fatalf("telemetry stats %+v, want accepted 1", upd.Stats)
			}
			break
		}
	}
}

// TestSnapshotAllCoherent samples SnapshotAll while submitters and workers
// churn a multi-shard engine, asserting the invariants only a single
// lock-covered capture can guarantee: the per-STA delivered-byte rows sum
// exactly to the cumulative counter, the admission ledger balances
// (accepted = delivered + dropped + expired + pending), and the visible
// queue depths never exceed the pending count. Under the old
// one-lock-per-view snapshots a delivery could land between the Stats and
// PerSTA captures and break the byte equality.
func TestSnapshotAllCoherent(t *testing.T) {
	e, err := New(Config{NumSTAs: 12, AdmissionShards: 3, Workers: 2, QueueCap: 1 << 12, SampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.SubmitSize(k%12, 400+k%800)
		}
	}()
	for i := 0; i < 200; i++ {
		snap := e.SnapshotAll()
		var perSTABytes, queued int64
		for _, s := range snap.PerSTA {
			perSTABytes += s.DeliveredBytes
			queued += int64(s.Queue)
		}
		if perSTABytes != snap.Stats.DeliveredBytes {
			t.Fatalf("snapshot %d: per-STA bytes %d != cumulative %d", i, perSTABytes, snap.Stats.DeliveredBytes)
		}
		if got := snap.Stats.Delivered + snap.Stats.Dropped + snap.Stats.Expired + snap.Stats.Pending; got != snap.Stats.Accepted {
			t.Fatalf("snapshot %d: ledger imbalance: delivered+dropped+expired+pending %d != accepted %d", i, got, snap.Stats.Accepted)
		}
		if queued > snap.Stats.Pending {
			t.Fatalf("snapshot %d: queued %d exceeds pending %d", i, queued, snap.Stats.Pending)
		}
	}
	close(stop)
	<-done
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
