package engine

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// recordingLossyTransport fails each subframe with a seeded coin flip and
// records every successfully delivered payload per station, in delivery
// order — the observation point for the cross-shard FIFO assertion.
type recordingLossyTransport struct {
	mu  sync.Mutex
	rng *rand.Rand
	got [][]uint32
}

func (t *recordingLossyTransport) Deliver(_ context.Context, p *Plan) ([]bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ok := make([]bool, len(p.Subs))
	for i, sub := range p.Subs {
		ok[i] = t.rng.Float64() >= 0.35
		if !ok[i] {
			continue
		}
		for _, pl := range sub.Payloads {
			if len(pl) != 4 {
				ok[i] = false // malformed payload: surfaces as a drop below
				continue
			}
			t.got[sub.STA] = append(t.got[sub.STA], binary.BigEndian.Uint32(pl))
		}
	}
	return ok, nil
}

// TestShardHandoffPreservesPerSTAFIFO hammers a 4-shard engine with
// concurrent submitters under a lossy transport and asserts the end-to-end
// ordering contract the sharded admission path must preserve: every
// station's payloads reach the transport in strictly sequential submit
// order, across shard handoffs, rotating planner scans, and
// retry-requeue-at-head. Sixteen stations land four per shard; four
// submitters each own a station subset that spans all four shards, mixing
// single-frame Submit calls with multi-station SubmitBatch slabs under
// randomized interleaving (seeded per submitter, yielding between bursts).
// Workers=1 keeps at most one transmission in flight, so transport-order
// equals plan-order and the per-STA assertion is exact; the ~35% subframe
// loss with a deep retry budget forces requeued frames to win their lane
// back ahead of younger traffic. Runs under -race in the engine-soak CI
// matrix.
func TestShardHandoffPreservesPerSTAFIFO(t *testing.T) {
	const (
		numSTAs      = 16
		shards       = 4
		submitters   = 4
		perSTAFrames = 120
	)
	tr := &recordingLossyTransport{
		rng: rand.New(rand.NewSource(42)),
		got: make([][]uint32, numSTAs),
	}
	e, err := New(Config{
		NumSTAs:         numSTAs,
		AdmissionShards: shards,
		Workers:         1,
		QueueCap:        perSTAFrames + 8,
		RetainPayloads:  true,
		RetryLimit:      256,
		BackoffBase:     time.Microsecond,
		BackoffCap:      8 * time.Microsecond,
		Transport:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Submitter g owns stations {g, g+4, g+8, g+12} — one per shard, so
	// every submitter's batches cross every admission lane.
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			next := make([]uint32, numSTAs)
			owned := []int{g, g + 4, g + 8, g + 12}
			remaining := len(owned) * perSTAFrames // frames this submitter owes
			for remaining > 0 {
				if rng.Intn(2) == 0 {
					// Single-frame path on one owned station.
					sta := owned[rng.Intn(len(owned))]
					if next[sta] == perSTAFrames {
						continue
					}
					pl := make([]byte, 4)
					binary.BigEndian.PutUint32(pl, next[sta])
					if err := e.Submit(sta, pl); err != nil {
						t.Errorf("submit sta %d: %v", sta, err)
						return
					}
					next[sta]++
					remaining--
				} else {
					// Batched path: a slab spanning several owned stations,
					// each contributing a short in-order run.
					var items []BatchItem
					for _, sta := range owned {
						run := rng.Intn(4)
						for r := 0; r < run && next[sta] < perSTAFrames; r++ {
							pl := make([]byte, 4)
							binary.BigEndian.PutUint32(pl, next[sta])
							items = append(items, BatchItem{STA: sta, Payload: pl})
							next[sta]++
							remaining--
						}
					}
					if len(items) == 0 {
						continue
					}
					n, err := e.SubmitBatch(items)
					if err != nil || n != len(items) {
						t.Errorf("submitter %d: batch accepted %d of %d, err %v", g, n, len(items), err)
						return
					}
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Delivered != numSTAs*perSTAFrames {
		t.Fatalf("delivered %d of %d (dropped %d, expired %d)",
			st.Delivered, numSTAs*perSTAFrames, st.Dropped, st.Expired)
	}
	if st.Retries == 0 {
		t.Fatal("lossy transport produced no retries; requeue-at-head path not exercised")
	}
	for sta := 0; sta < numSTAs; sta++ {
		if len(tr.got[sta]) != perSTAFrames {
			t.Fatalf("station %d: transport saw %d payloads, want %d", sta, len(tr.got[sta]), perSTAFrames)
		}
		for i, v := range tr.got[sta] {
			if v != uint32(i) {
				t.Fatalf("station %d: delivery %d carried counter %d — per-STA FIFO broken across shard handoff",
					sta, i, v)
			}
		}
	}
}
