package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"carpool/internal/mac"
	"carpool/internal/phy"
	"carpool/internal/sim"
	"carpool/internal/traffic"
)

// fecWorkload is equivWorkload with a knob for the offered window, so the
// goodput tests can compress arrivals and make drain time dominate.
func fecWorkload(seed int64, numSTAs int, window time.Duration) [][]traffic.Arrival {
	flows := make([][]traffic.Arrival, numSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, sta)))
		flows[sta] = traffic.PoissonFlow(rng, 400, 600, window)
	}
	return flows
}

// TestFECPlanShape drives the planner directly under StrategyFEC and
// checks the coded plan's invariants: parity subframes ride at the tail,
// sized to the largest data shard at the slowest admitted MCS, inside the
// receiver / byte / airtime caps, with ACK slots for data subframes only.
func TestFECPlanShape(t *testing.T) {
	const numSTAs, fecK = 10, 2
	mcs := make([]phy.MCS, numSTAs)
	for i := range mcs {
		mcs[i] = phy.MCS48
	}
	mcs[2] = phy.MCS12 // slowest admitted rate must carry the parity
	e, err := New(Config{
		NumSTAs:      numSTAs,
		Strategy:     StrategyFEC,
		FECParity:    fecK,
		MaxReceivers: 8,
		MCS:          mcs,
		Transport:    &CodedOracleTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for sta := 0; sta < numSTAs; sta++ {
		if err := e.submitLocked(sta, 400+10*sta, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	if tx == nil {
		t.Fatal("planner produced no transmission")
	}
	plan := &tx.plan

	// Receiver cap: data + parity together fit the A-HDR budget, and the
	// parity reservation squeezed the data subframes, not vice versa.
	if plan.DataSubs != 8-fecK {
		t.Errorf("DataSubs = %d, want %d (MaxReceivers %d minus %d parity)",
			plan.DataSubs, 8-fecK, 8, fecK)
	}
	if len(plan.Subs) != plan.DataSubs+fecK {
		t.Fatalf("len(Subs) = %d, want %d data + %d parity", len(plan.Subs), plan.DataSubs, fecK)
	}

	maxBytes := 0
	for i := 0; i < plan.DataSubs; i++ {
		sub := plan.Subs[i]
		if sub.Parity || sub.STA < 0 {
			t.Errorf("data subframe %d marked parity (STA %d)", i, sub.STA)
		}
		if sub.Bytes > maxBytes {
			maxBytes = sub.Bytes
		}
	}
	sawSlow := false
	for i := 0; i < plan.DataSubs; i++ {
		if plan.Subs[i].STA == 2 {
			sawSlow = true
		}
	}
	for j := plan.DataSubs; j < len(plan.Subs); j++ {
		sub := plan.Subs[j]
		if !sub.Parity || sub.STA != -1 {
			t.Errorf("parity subframe %d: Parity=%v STA=%d, want true/-1", j, sub.Parity, sub.STA)
		}
		if sub.Bytes != maxBytes {
			t.Errorf("parity subframe %d carries %d bytes, want max data shard %d", j, sub.Bytes, maxBytes)
		}
		if sawSlow && sub.MCS != phy.MCS12 {
			t.Errorf("parity subframe %d at %v, want slowest admitted MCS12", j, sub.MCS)
		}
	}

	// Contiguous symbol layout across the whole aggregate, parity included:
	// one SIG symbol then the DATA run per subframe.
	next := mac.AHDRSymbols
	for j, sub := range plan.Subs {
		next += mac.SIGSymbols
		if sub.StartSym != next || sub.NumSym <= 0 {
			t.Errorf("subframe %d spans [%d,+%d), want start %d", j, sub.StartSym, sub.NumSym, next)
		}
		next = sub.StartSym + sub.NumSym
	}

	// Sequential ACK slots cover data subframes only: parity is nobody's
	// frame and is never ACKed.
	wantACK := time.Duration(plan.DataSubs) * (mac.SIFS + mac.ACKAirtime(e.rates))
	if plan.ACKTime != wantACK {
		t.Errorf("ACKTime = %v, want %v (%d data subframes)", plan.ACKTime, wantACK, plan.DataSubs)
	}
}

// TestFECPlanByteCapIncludesParity pins the MaxAggBytes projection: the
// planner must stop admitting data while data + k*maxShard still fits.
func TestFECPlanByteCapIncludesParity(t *testing.T) {
	const fecK = 2
	e, err := New(Config{
		NumSTAs:     8,
		Strategy:    StrategyFEC,
		FECParity:   fecK,
		MaxAggBytes: 3000,
		Transport:   &CodedOracleTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for sta := 0; sta < 8; sta++ {
		if err := e.submitLocked(sta, 600, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	if tx == nil {
		t.Fatal("planner produced no transmission")
	}
	plan := &tx.plan
	total := 0
	for _, sub := range plan.Subs {
		total += sub.Bytes
	}
	if total > 3000 {
		t.Errorf("aggregate carries %d bytes (parity included), cap 3000", total)
	}
	// 600B frames with 2 parity shards of 600B: 3 data + 2 parity = 3000.
	if plan.DataSubs != 3 {
		t.Errorf("DataSubs = %d, want 3 (5*600 = cap)", plan.DataSubs)
	}
}

// TestFECPlannerDrain is the engine-soak target (run with -count=5 in CI):
// a deterministic FEC run under systematic own-subframe erasure must
// recover every loss from parity — same delivered bytes as a lossless
// retry run, zero retries, zero decode failures — and drain completely.
func TestFECPlannerDrain(t *testing.T) {
	const numSTAs = 6
	flows := fecWorkload(11, numSTAs, 80*time.Millisecond)
	locs := []int{0, 1, 2, 3, 4, 5}

	ref, err := RunDeterministic(context.Background(), Config{
		NumSTAs:   numSTAs,
		Transport: &OracleTransport{Oracle: nil, Locations: locs},
	}, flows)
	if err != nil {
		t.Fatal(err)
	}

	// Odd stations always lose their own subframe off the air; everything
	// else (overheard shards, parity) arrives. One parity shard repairs a
	// single erasure, so every loss must come back without a retry.
	fecStats, err := RunDeterministic(context.Background(), Config{
		NumSTAs:   numSTAs,
		Strategy:  StrategyFEC,
		FECParity: 1,
		Transport: &CodedOracleTransport{
			OracleTransport: OracleTransport{Locations: locs},
			ErasePattern: func(seq uint64, sta, shard int, own bool) bool {
				return own && sta%2 == 1
			},
		},
	}, flows)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fecStats.DeliveredBytesPerSTA, ref.DeliveredBytesPerSTA) {
		t.Errorf("FEC delivered bytes diverged from lossless retry run:\n fec %v\n ref %v",
			fecStats.DeliveredBytesPerSTA, ref.DeliveredBytesPerSTA)
	}
	if fecStats.Pending != 0 || fecStats.Dropped != 0 || fecStats.Expired != 0 {
		t.Errorf("FEC run left pending=%d dropped=%d expired=%d, want full drain",
			fecStats.Pending, fecStats.Dropped, fecStats.Expired)
	}
	if fecStats.Retries != 0 {
		t.Errorf("FEC run retried %d times; parity should have repaired every loss", fecStats.Retries)
	}
	if fecStats.FECRecovered == 0 {
		t.Error("FECRecovered = 0, want > 0 (odd stations lost every own subframe)")
	}
	if fecStats.FECDecodeFail != 0 {
		t.Errorf("FECDecodeFail = %d, want 0", fecStats.FECDecodeFail)
	}
	if fecStats.FECParityTx != fecStats.Transmissions {
		t.Errorf("FECParityTx = %d, want one per transmission (%d)",
			fecStats.FECParityTx, fecStats.Transmissions)
	}
}

// TestFECDecodeFailFallsBackToRetry erases every reception at one station
// so parity cannot help: its subframes must take the shared-fate retry
// path and eventually drop, with the loss booked as decode failures, while
// every other station still delivers.
func TestFECDecodeFailFallsBackToRetry(t *testing.T) {
	const numSTAs = 4
	flows := fecWorkload(13, numSTAs, 40*time.Millisecond)

	st, err := RunDeterministic(context.Background(), Config{
		NumSTAs:   numSTAs,
		Strategy:  StrategyFEC,
		FECParity: 1,
		Transport: &CodedOracleTransport{
			ErasePattern: func(seq uint64, sta, shard int, own bool) bool {
				return sta == 1 // station 1 hears nothing, ever
			},
		},
	}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 {
		t.Errorf("run left %d frames pending", st.Pending)
	}
	if st.FECDecodeFail == 0 {
		t.Error("FECDecodeFail = 0, want > 0 (station 1 is beyond parity's reach)")
	}
	if st.Retries == 0 || st.Dropped == 0 {
		t.Errorf("retries=%d dropped=%d, want both > 0 (retry fallback then exhaustion)", st.Retries, st.Dropped)
	}
	if st.DeliveredBytesPerSTA[1] != 0 {
		t.Errorf("station 1 delivered %d bytes while hearing nothing", st.DeliveredBytesPerSTA[1])
	}
	for sta, b := range st.DeliveredBytesPerSTA {
		if sta != 1 && b == 0 {
			t.Errorf("station %d delivered nothing; only station 1 was erased", sta)
		}
	}
}

// countingFECTransport wraps an FECTransport and tallies data subframes
// that were lost on the air (no direct reception) — the raw loss the
// telescoping identity is checked against.
type countingFECTransport struct {
	inner      FECTransport
	lostDirect int64
}

func (c *countingFECTransport) Deliver(ctx context.Context, plan *Plan) ([]bool, error) {
	return c.inner.Deliver(ctx, plan)
}

func (c *countingFECTransport) DeliverFEC(ctx context.Context, plan *Plan) (FECResult, error) {
	res, err := c.inner.DeliverFEC(ctx, plan)
	if err == nil {
		for _, d := range res.Direct {
			if !d {
				c.lostDirect++
			}
		}
	}
	return res, err
}

// TestFECLossTelescopes pins the accounting identity: every data subframe
// lost on the air is booked exactly once, as either a parity recovery or
// a decode failure — engine.fec.recovered + engine.fec.decode_fail equals
// the transport's raw loss count.
func TestFECLossTelescopes(t *testing.T) {
	const numSTAs = 6
	flows := fecWorkload(17, numSTAs, 60*time.Millisecond)
	oracle, err := mac.NewFixedOracle(0.8, 99)
	if err != nil {
		t.Fatal(err)
	}
	ct := &countingFECTransport{inner: &CodedOracleTransport{
		OracleTransport: OracleTransport{Oracle: oracle},
	}}
	st, err := RunDeterministic(context.Background(), Config{
		NumSTAs:   numSTAs,
		Strategy:  StrategyFEC,
		FECParity: 2,
		Transport: ct,
	}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 {
		t.Errorf("run left %d frames pending", st.Pending)
	}
	if ct.lostDirect == 0 {
		t.Fatal("no raw losses at 80% subframe success; test exercises nothing")
	}
	if got := st.FECRecovered + st.FECDecodeFail; got != ct.lostDirect {
		t.Errorf("recovered(%d) + decode_fail(%d) = %d, want raw lost %d",
			st.FECRecovered, st.FECDecodeFail, got, ct.lostDirect)
	}
	if st.FECRecovered == 0 {
		t.Error("FECRecovered = 0 under 20% loss with 2 parity shards")
	}
}

// TestFECGoodputCrossover sweeps the per-subframe loss rate and compares
// airtime goodput between the retry and FEC strategies under the same
// loss process (each addressed subframe lost with probability p per
// attempt). At p=0 parity is pure overhead and retry must win; past the
// redundancy fraction the retransmissions outweigh the parity airtime and
// FEC must win. The logged table is the EXPERIMENTS.md sweep.
func TestFECGoodputCrossover(t *testing.T) {
	const numSTAs = 6
	// Equal-size CBR frames keep every subframe the same width, so the
	// parity shard (sized to the largest data shard) costs its nominal
	// 1/(k+1) airtime fraction rather than tracking a fat-tailed maximum;
	// the offered rate oversubscribes the channel so aggregates run full
	// and the drain phase dominates the airtime account.
	flows := make([][]traffic.Arrival, numSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(19, sta)))
		flows[sta] = traffic.CBRFlow(rng, 600, 600*time.Microsecond, 30*time.Millisecond)
	}
	ps := []float64{0, 0.1, 0.2, 0.3, 0.4}

	// Deterministic per-(transmission, station) Bernoulli: the FEC arm's
	// own-subframe loss, mirroring the retry arm's per-attempt oracle draw.
	lossAt := func(p float64) func(seq uint64, sta, shard int, own bool) bool {
		return func(seq uint64, sta, shard int, own bool) bool {
			if !own {
				return false
			}
			h := seq*0x9e3779b97f4a7c15 + uint64(sta)*0xbf58476d1ce4e5b9 + 0x2545f4914f6cdd1d
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 29
			return float64(h%1_000_000)/1e6 < p
		}
	}

	type point struct{ retry, fec float64 }
	var sweep []point
	for i, p := range ps {
		oracle, err := mac.NewFixedOracle(1-p, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		retrySt, err := RunDeterministic(context.Background(), Config{
			NumSTAs:   numSTAs,
			Transport: &OracleTransport{Oracle: oracle},
		}, flows)
		if err != nil {
			t.Fatal(err)
		}
		fecSt, err := RunDeterministic(context.Background(), Config{
			NumSTAs:   numSTAs,
			Strategy:  StrategyFEC,
			FECParity: 1,
			Transport: &CodedOracleTransport{ErasePattern: lossAt(p)},
		}, flows)
		if err != nil {
			t.Fatal(err)
		}
		sweep = append(sweep, point{retrySt.AirtimeGoodputMbps, fecSt.AirtimeGoodputMbps})
		t.Logf("p=%.2f  retry %.2f Mbit/s (retries %d, dropped %d)  fec %.2f Mbit/s (recovered %d)",
			p, retrySt.AirtimeGoodputMbps, retrySt.Retries, retrySt.Dropped,
			fecSt.AirtimeGoodputMbps, fecSt.FECRecovered)
	}

	// Crossover direction: retry wins the lossless channel, FEC wins the
	// lossy one.
	if sweep[0].retry <= sweep[0].fec {
		t.Errorf("at p=0 retry %.2f ≤ fec %.2f Mbit/s; parity overhead should cost airtime",
			sweep[0].retry, sweep[0].fec)
	}
	last := sweep[len(sweep)-1]
	if last.fec <= last.retry {
		t.Errorf("at p=%.2f fec %.2f ≤ retry %.2f Mbit/s; recovery should beat retransmission",
			ps[len(ps)-1], last.fec, last.retry)
	}
}
