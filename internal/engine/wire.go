package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The carpoold wire protocol: a stream (TCP) or datagram payload (UDP) of
// length-prefixed records, each
//
//	type(1) | sta(2, big-endian) | length(4, big-endian) | payload(length)
//
// RecData carries real frame bytes in payload. RecDataSize is the fast
// ingest form: length is the synthetic frame size and no payload bytes
// follow — the load generator's way of offering 100k+ frames/s without
// moving bulk data. RecStats asks for a Stats reply; RecDrain starts a
// graceful drain and replies with the final Stats. Replies use the same
// record framing with the JSON document as payload and sta zero.
const (
	RecData     = 0x01
	RecDataSize = 0x02
	RecStats    = 0x03
	RecDrain    = 0x04
)

// recHeaderLen is the fixed record prefix size.
const recHeaderLen = 1 + 2 + 4

// MaxWirePayload bounds a record's declared payload length, protecting
// the server from hostile or corrupt length prefixes.
const MaxWirePayload = 1 << 20

// AppendDataRecord appends a RecData record carrying payload for sta.
func AppendDataRecord(buf []byte, sta int, payload []byte) []byte {
	buf = appendHeader(buf, RecData, sta, len(payload))
	return append(buf, payload...)
}

// AppendSizeRecord appends a RecDataSize record offering a synthetic
// frame of the given size for sta.
func AppendSizeRecord(buf []byte, sta, size int) []byte {
	return appendHeader(buf, RecDataSize, sta, size)
}

// AppendControlRecord appends a RecStats or RecDrain request.
func AppendControlRecord(buf []byte, typ byte) []byte {
	return appendHeader(buf, typ, 0, 0)
}

func appendHeader(buf []byte, typ byte, sta, length int) []byte {
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint16(buf, uint16(sta))
	return binary.BigEndian.AppendUint32(buf, uint32(length))
}

// wireRecord is one decoded record. payload aliases the read buffer and
// is only valid until the next read.
type wireRecord struct {
	typ     byte
	sta     int
	length  int
	payload []byte
}

// readRecord decodes one record from a buffered stream. payloadBuf is the
// caller's reusable scratch, returned (possibly grown) for the next call.
func readRecord(br *bufio.Reader, payloadBuf []byte) (wireRecord, []byte, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return wireRecord{}, payloadBuf, err
	}
	rec := wireRecord{
		typ:    hdr[0],
		sta:    int(binary.BigEndian.Uint16(hdr[1:3])),
		length: int(binary.BigEndian.Uint32(hdr[3:7])),
	}
	if rec.length > MaxWirePayload {
		return wireRecord{}, payloadBuf, fmt.Errorf("engine: wire payload %d exceeds %d", rec.length, MaxWirePayload)
	}
	if rec.typ == RecData && rec.length > 0 {
		if cap(payloadBuf) < rec.length {
			payloadBuf = make([]byte, rec.length)
		}
		payloadBuf = payloadBuf[:rec.length]
		if _, err := io.ReadFull(br, payloadBuf); err != nil {
			return wireRecord{}, payloadBuf, err
		}
		rec.payload = payloadBuf
	}
	return rec, payloadBuf, nil
}

// parseDatagramRecord decodes one record from a datagram at offset off,
// returning the next offset. Unlike the stream form it never blocks.
func parseDatagramRecord(dgram []byte, off int) (wireRecord, int, error) {
	if len(dgram)-off < recHeaderLen {
		return wireRecord{}, off, fmt.Errorf("engine: truncated record header at offset %d", off)
	}
	rec := wireRecord{
		typ:    dgram[off],
		sta:    int(binary.BigEndian.Uint16(dgram[off+1 : off+3])),
		length: int(binary.BigEndian.Uint32(dgram[off+3 : off+7])),
	}
	off += recHeaderLen
	if rec.typ == RecData && rec.length > 0 {
		if rec.length > len(dgram)-off {
			return wireRecord{}, off, fmt.Errorf("engine: truncated record payload at offset %d", off)
		}
		rec.payload = dgram[off : off+rec.length]
		off += rec.length
	}
	return rec, off, nil
}
