package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// The carpoold wire protocol: a stream (TCP) or datagram payload (UDP) of
// length-prefixed records, each
//
//	type(1) | sta(2, big-endian) | length(4, big-endian) | payload(length)
//
// RecData carries real frame bytes in payload. RecDataSize is the fast
// ingest form: length is the synthetic frame size and no payload bytes
// follow — the load generator's way of offering 100k+ frames/s without
// moving bulk data. RecStats asks for a Stats reply; RecDrain starts a
// graceful drain and replies with the final Stats. RecSubscribe starts a
// periodic telemetry stream on the connection: its length field is the
// push interval in milliseconds (0 selects 1000 ms) and no payload
// follows; the server answers with RecTelemetry records until the engine
// stops (last one flagged final) or the connection closes. RecStageStats
// asks for the per-stage latency decomposition of lifecycle-sampled
// frames. Replies use the same record framing with the JSON document as
// payload and sta zero. RecRoam asks a multi-AP server (internal/cluster)
// to move a station to another AP: sta is the station, length the target
// AP index, no payload and no reply (fire-and-forget, like ingest); a
// single-AP server ignores it. Records written before a RecRoam on the
// same stream are admitted before the roam executes, so a client's
// per-STA FIFO survives its own roam requests.
const (
	RecData       = 0x01
	RecDataSize   = 0x02
	RecStats      = 0x03
	RecDrain      = 0x04
	RecSubscribe  = 0x05
	RecTelemetry  = 0x06
	RecStageStats = 0x07
	RecRoam       = 0x08
)

// recHeaderLen is the fixed record prefix size.
const recHeaderLen = 1 + 2 + 4

// MaxWirePayload bounds a record's declared payload length, protecting
// the server from hostile or corrupt length prefixes.
const MaxWirePayload = 1 << 20

// AppendDataRecord appends a RecData record carrying payload for sta.
func AppendDataRecord(buf []byte, sta int, payload []byte) []byte {
	buf = appendHeader(buf, RecData, sta, len(payload))
	return append(buf, payload...)
}

// AppendSizeRecord appends a RecDataSize record offering a synthetic
// frame of the given size for sta.
func AppendSizeRecord(buf []byte, sta, size int) []byte {
	return appendHeader(buf, RecDataSize, sta, size)
}

// AppendControlRecord appends a RecStats, RecDrain, or RecStageStats
// request.
func AppendControlRecord(buf []byte, typ byte) []byte {
	return appendHeader(buf, typ, 0, 0)
}

// AppendRoamRecord appends a RecRoam request moving sta to AP ap.
func AppendRoamRecord(buf []byte, sta, ap int) []byte {
	return appendHeader(buf, RecRoam, sta, ap)
}

// AppendSubscribeRecord appends a RecSubscribe request for a telemetry
// stream pushed every interval (rounded to milliseconds; <= 0 lets the
// server pick its 1 s default).
func AppendSubscribeRecord(buf []byte, interval time.Duration) []byte {
	ms := int(interval / time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	return appendHeader(buf, RecSubscribe, 0, ms)
}

func appendHeader(buf []byte, typ byte, sta, length int) []byte {
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint16(buf, uint16(sta))
	return binary.BigEndian.AppendUint32(buf, uint32(length))
}

// wireRecord is one decoded record. payload aliases the read buffer and
// is only valid until the next read.
type wireRecord struct {
	typ     byte
	sta     int
	length  int
	payload []byte
}

// readRecord decodes one record from a buffered stream. payloadBuf is the
// caller's reusable scratch, returned (possibly grown) for the next call.
func readRecord(br *bufio.Reader, payloadBuf []byte) (wireRecord, []byte, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return wireRecord{}, payloadBuf, err
	}
	rec := wireRecord{
		typ:    hdr[0],
		sta:    int(binary.BigEndian.Uint16(hdr[1:3])),
		length: int(binary.BigEndian.Uint32(hdr[3:7])),
	}
	if rec.length > MaxWirePayload {
		return wireRecord{}, payloadBuf, fmt.Errorf("engine: wire payload %d exceeds %d", rec.length, MaxWirePayload)
	}
	if rec.typ == RecData && rec.length > 0 {
		if cap(payloadBuf) < rec.length {
			payloadBuf = make([]byte, rec.length)
		}
		payloadBuf = payloadBuf[:rec.length]
		if _, err := io.ReadFull(br, payloadBuf); err != nil {
			return wireRecord{}, payloadBuf, err
		}
		rec.payload = payloadBuf
	}
	return rec, payloadBuf, nil
}

// parseBatch scans a slab of bytes for complete records in place — the
// vectored-read fast path: one conn.Read fills the slab, one pass turns
// every complete ingest record into a BatchItem whose payload aliases the
// slab zero-copy (the engine copies retained payloads into its arena
// before SubmitBatch returns, so the slab can be reused immediately
// after). Appends to items and returns it, with the byte count consumed,
// the control record type that stopped the scan (RecStats/RecDrain; 0 for
// none), and an error for malformed framing.
//
// An incomplete record at the tail is not an error: the scan stops before
// it (consumed excludes it) so a stream reader can shift the tail down and
// read more. A control record (RecStats, RecDrain, RecSubscribe,
// RecStageStats, RecRoam) is consumed but ends the scan, letting the caller admit
// everything before it, act on it, then resume parsing — preserving the
// wire FIFO. The returned ctrl is the header of the control record that
// stopped the scan (ctrl.typ == 0 for none); its length field carries the
// record's argument (e.g. the subscribe interval).
func parseBatch(slab []byte, items []BatchItem) ([]BatchItem, int, wireRecord, error) {
	off := 0
	for {
		if len(slab)-off < recHeaderLen {
			return items, off, wireRecord{}, nil
		}
		typ := slab[off]
		sta := int(binary.BigEndian.Uint16(slab[off+1 : off+3]))
		length := int(binary.BigEndian.Uint32(slab[off+3 : off+7]))
		if length > MaxWirePayload {
			return items, off, wireRecord{}, fmt.Errorf("engine: wire payload %d exceeds %d", length, MaxWirePayload)
		}
		switch typ {
		case RecData:
			if len(slab)-off-recHeaderLen < length {
				return items, off, wireRecord{}, nil // payload split across reads
			}
			start := off + recHeaderLen
			items = append(items, BatchItem{STA: sta, Payload: slab[start : start+length]})
			off = start + length
		case RecDataSize:
			items = append(items, BatchItem{STA: sta, Size: length})
			off += recHeaderLen
		case RecStats, RecDrain, RecSubscribe, RecStageStats, RecRoam:
			return items, off + recHeaderLen, wireRecord{typ: typ, sta: sta, length: length}, nil
		default:
			return items, off, wireRecord{}, fmt.Errorf("engine: unknown record type %#02x", typ)
		}
	}
}

// parseDatagramRecord decodes one record from a datagram at offset off,
// returning the next offset. Unlike the stream form it never blocks.
func parseDatagramRecord(dgram []byte, off int) (wireRecord, int, error) {
	if len(dgram)-off < recHeaderLen {
		return wireRecord{}, off, fmt.Errorf("engine: truncated record header at offset %d", off)
	}
	rec := wireRecord{
		typ:    dgram[off],
		sta:    int(binary.BigEndian.Uint16(dgram[off+1 : off+3])),
		length: int(binary.BigEndian.Uint32(dgram[off+3 : off+7])),
	}
	off += recHeaderLen
	if rec.typ == RecData && rec.length > 0 {
		if rec.length > len(dgram)-off {
			return wireRecord{}, off, fmt.Errorf("engine: truncated record payload at offset %d", off)
		}
		rec.payload = dgram[off : off+rec.length]
		off += rec.length
	}
	return rec, off, nil
}
