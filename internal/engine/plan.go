package engine

import (
	"time"

	"carpool/internal/mac"
	"carpool/internal/phy"
)

// PlanSub is one receiver's subframe within a planned transmission: the
// retransmission unit. Every contained frame shares the subframe's symbol
// span and fate — one FCS, one sequential-ACK slot (§4.2).
type PlanSub struct {
	// STA is the receiver's station index.
	STA int
	// MCS is the subframe's modulation-and-coding scheme.
	MCS phy.MCS
	// StartSym is the first DATA symbol of the subframe within the whole
	// PHY frame (after the A-HDR and this subframe's SIG); NumSym its DATA
	// length in symbols. Delivery oracles receive this span.
	StartSym, NumSym int
	// Bytes is the summed payload size of the contained frames.
	Bytes int
	// Payloads holds the contained frames' bytes when the engine retains
	// payloads; nil entries (or a nil slice) mean size-only frames.
	Payloads [][]byte
	// Parity marks an erasure-coding parity subframe (StrategyFEC): it
	// carries no station's frames (STA is -1), spans Bytes of
	// Reed-Solomon parity over the data subframes, and consumes no
	// sequential-ACK slot.
	Parity bool
}

// Plan is one aggregate transmission handed to a Transport.
type Plan struct {
	// Seq is the transmission's sequence number, unique per engine run;
	// transports derive per-transmission randomness from it.
	Seq uint64
	// Subs are the subframes in A-HDR slot order.
	Subs []PlanSub
	// Airtime is the data transmission's air occupancy (PLCP + A-HDR +
	// per-subframe SIG and DATA symbols + propagation); ACKTime the
	// sequential-ACK train (one SIFS-separated slot per receiver).
	Airtime time.Duration
	// ACKTime is the sequential-ACK train duration.
	ACKTime time.Duration
	// DataSubs is the number of leading receiver-facing subframes in
	// Subs; entries past it are parity (StrategyFEC). Zero is treated as
	// len(Subs) so retry-mode plans (and hand-built test plans) need not
	// set it.
	DataSubs int
}

// pendingTx pairs the transport-facing plan with the engine-internal
// frames it carries, parallel to plan.Subs. sampled counts the lifecycle-
// sampled frames aboard, so workers skip the delivery-duration clock reads
// entirely when nothing on the transmission is being traced. shard is the
// admission lane every contained STA belongs to — the lock account takes
// to settle the outcome.
type pendingTx struct {
	plan    Plan
	frames  [][]qframe
	sampled int
	shard   int
	// recovered is the FEC transport's per-data-subframe recovery flags
	// (nil outside StrategyFEC), set by the delivery dispatch just before
	// settlement so accounting can split delivered into direct vs rebuilt.
	recovered []bool
}

// planScratch is one worker's reusable plan-building storage: the engine's
// pooled scratch. Exactly one pendingTx per worker is alive at a time; the
// next buildPlanLocked call recycles every slice.
type planScratch struct {
	tx       pendingTx
	subBits  []int  // per-sub cumulative payload bits (16-bit SERVICE included)
	staSlot  []int  // per-STA subframe slot, -1 = none
	rejected []bool // per-STA "no slot left" marker for this plan
}

func (sc *planScratch) reset(numSTAs int) {
	sc.tx.plan.Subs = sc.tx.plan.Subs[:0]
	sc.tx.plan.Airtime, sc.tx.plan.ACKTime = 0, 0
	sc.tx.plan.DataSubs = 0
	sc.tx.frames = sc.tx.frames[:0]
	sc.tx.sampled = 0
	sc.tx.recovered = nil
	sc.subBits = sc.subBits[:0]
	if len(sc.staSlot) < numSTAs {
		sc.staSlot = make([]int, numSTAs)
		sc.rejected = make([]bool, numSTAs)
	}
	for i := 0; i < numSTAs; i++ {
		sc.staSlot[i] = -1
		sc.rejected[i] = false
	}
}

// subSymbols returns a subframe's DATA length in OFDM symbols for the
// accumulated payload bits at the given MCS (SERVICE is already inside
// bits; the 6 tail bits are added here).
func subSymbols(bits int, mcs phy.MCS) int {
	ndbps := mcs.DataBitsPerSymbol()
	return (bits + 6 + ndbps - 1) / ndbps
}

// frameBits is one MAC frame's on-air payload bit cost inside a subframe.
func frameBits(size int) int {
	return 8 * (mac.MACHeaderBytes + size + mac.FCSBytes)
}

// planAirtime converts a total symbol count to air occupancy.
func planAirtime(symbols int) time.Duration {
	return mac.PLCPTime + time.Duration(symbols)*mac.SymbolTime + mac.PropDelay
}

// buildPlanShardLocked pops one shard's queued frames into one aggregate
// transmission. It walks frames in the shard's admission order (cross-STA
// FIFO within the lane, the paper's §8 discipline; with one shard this is
// exactly the old global order) over stations that are non-empty and past
// their retry backoff, grouping frames per station into subframes and
// stopping at the first frame that would breach MaxAggBytes (strict FIFO
// cutoff, matching the MAC simulator's multi-user planner), at a full
// receiver set for a new station (that station is skipped for this plan),
// or at the airtime budget (always admitting at least one frame for
// progress). It returns nil when no eligible station has backlog.
//
// Caller must hold sh.mu (or be single-threaded). The returned pendingTx
// lives in sc until the next call.
func (e *Engine) buildPlanShardLocked(sh *shard, now time.Duration, sc *planScratch) *pendingTx {
	sc.reset(e.cfg.NumSTAs)
	plan := &sc.tx.plan
	totalBytes := 0
	symbols := mac.AHDRSymbols
	stride := len(e.shards)

	// StrategyFEC reserves fecK trailing subframes for erasure parity:
	// they take A-HDR slots, payload bytes (each as long as the largest
	// data subframe), and air symbols at the most robust admitted MCS, so
	// every admission below projects the parity overhead into the same
	// three caps the data subframes answer to.
	fecK := e.fecK
	maxSubBytes := 0
	parityMCS := phy.MCS{}

	for {
		// Next frame in lane admission order among eligible stations: the
		// strided walk visits exactly the shard's stations, and with one
		// shard degenerates to the old full scan in the same order.
		best := -1
		var bestSeq uint64
		for sta := sh.id; sta < e.cfg.NumSTAs; sta += stride {
			q := &e.queues[sta]
			if q.len() == 0 || q.nextEligible > now || sc.rejected[sta] || q.migrating {
				continue
			}
			if s := q.headFrame().seq; best < 0 || s < bestSeq {
				best, bestSeq = sta, s
			}
		}
		if best < 0 {
			break
		}
		q := &e.queues[best]
		f := q.headFrame()
		slot := sc.staSlot[best]
		if slot < 0 && len(plan.Subs) >= e.cfg.MaxReceivers-fecK {
			sc.rejected[best] = true
			continue
		}
		// Project the aggregate's bytes and the parity shard geometry with
		// this frame added: parity shards are as long as the largest
		// subframe and ride the most robust (lowest-rate) admitted MCS.
		mcs := e.cfg.MCS[best]
		projSub := f.size
		if slot >= 0 {
			projSub += plan.Subs[slot].Bytes
		}
		projShard := max(maxSubBytes, projSub)
		projParityMCS := parityMCS
		if len(plan.Subs) == 0 || mcs.DataBitsPerSymbol() < projParityMCS.DataBitsPerSymbol() {
			projParityMCS = mcs
		}
		if len(plan.Subs) > 0 && totalBytes+f.size+fecK*projShard > e.cfg.MaxAggBytes {
			break // strict FIFO cutoff at the aggregate byte ceiling
		}

		// Project the airtime with this frame added.
		newSymbols := symbols
		if slot < 0 {
			newSymbols += mac.SIGSymbols + subSymbols(16+frameBits(f.size), mcs)
		} else {
			newSymbols += subSymbols(sc.subBits[slot]+frameBits(f.size), mcs) -
				subSymbols(sc.subBits[slot], mcs)
		}
		projAll := newSymbols +
			fecK*(mac.SIGSymbols+subSymbols(16+frameBits(projShard), projParityMCS))
		if e.cfg.AirtimeBudget > 0 && len(plan.Subs) > 0 &&
			planAirtime(projAll) > e.cfg.AirtimeBudget {
			break
		}

		fr := q.pop()
		sh.queued--
		e.inflightSTA[best]++
		if fr.sampled {
			// Close the frame's queued stage: the segment since lastTouch
			// splits into time gated by the STA's retry backoff (the part of
			// [lastTouch, now] before nextEligible) and plain queue wait.
			seg := now - fr.lastTouch
			bo := q.nextEligible - fr.lastTouch
			if bo < 0 {
				bo = 0
			} else if bo > seg {
				bo = seg
			}
			fr.backoffAcc += bo
			fr.waitAcc += seg - bo
			fr.lastTouch = now
			sc.tx.sampled++
		}
		if slot < 0 {
			slot = len(plan.Subs)
			sc.staSlot[best] = slot
			plan.Subs = append(plan.Subs, PlanSub{STA: best, MCS: mcs})
			sc.subBits = append(sc.subBits, 16) // SERVICE field
			// Recycle the inner frame slices across plans.
			if n := len(sc.tx.frames); n < cap(sc.tx.frames) {
				sc.tx.frames = sc.tx.frames[:n+1]
				sc.tx.frames[n] = sc.tx.frames[n][:0]
			} else {
				sc.tx.frames = append(sc.tx.frames, nil)
			}
		}
		sc.subBits[slot] += frameBits(fr.size)
		plan.Subs[slot].Bytes += fr.size
		if fr.payload != nil {
			plan.Subs[slot].Payloads = append(plan.Subs[slot].Payloads, fr.payload)
		}
		sc.tx.frames[slot] = append(sc.tx.frames[slot], fr)
		totalBytes += fr.size
		symbols = newSymbols
		maxSubBytes = projShard
		parityMCS = projParityMCS
	}
	if len(plan.Subs) == 0 {
		return nil
	}
	plan.DataSubs = len(plan.Subs)
	if fecK > 0 {
		// Append the parity subframes the projections above reserved room
		// for: each spans the largest data subframe's bytes at the most
		// robust admitted MCS, so any receiver that can hear data can hear
		// parity.
		for j := 0; j < fecK; j++ {
			plan.Subs = append(plan.Subs, PlanSub{
				STA: -1, MCS: parityMCS, Bytes: maxSubBytes, Parity: true,
			})
			sc.subBits = append(sc.subBits, 16+frameBits(maxSubBytes))
		}
	}

	// Lay out symbol spans: A-HDR, then per subframe one SIG + DATA run.
	cursor := mac.AHDRSymbols
	for i := range plan.Subs {
		sub := &plan.Subs[i]
		cursor += mac.SIGSymbols
		sub.StartSym = cursor
		sub.NumSym = subSymbols(sc.subBits[i], sub.MCS)
		cursor += sub.NumSym
	}
	plan.Seq = e.txSeq.Add(1) - 1
	plan.Airtime = planAirtime(cursor)
	plan.ACKTime = time.Duration(plan.DataSubs) * (mac.SIFS + mac.ACKAirtime(e.rates))
	sc.tx.shard = sh.id
	return &sc.tx
}

// buildPlanLocked is the single-threaded planner the deterministic
// runners and tests use: a rotating scan over the shards (the engine-
// level detRot cursor mirrors each worker's private one), returning the
// first lane that yields a plan. With one shard this is byte-identical to
// the pre-shard planner.
func (e *Engine) buildPlanLocked(now time.Duration, sc *planScratch) *pendingTx {
	P := len(e.shards)
	for k := 0; k < P; k++ {
		i := (e.detRot + k) % P
		if tx := e.buildPlanShardLocked(&e.shards[i], now, sc); tx != nil {
			e.detRot = (i + 1) % P
			return tx
		}
	}
	return nil
}
