package engine

// The payload arena backs RetainPayloads mode: submitted frame bytes are
// copied once into large shared slabs instead of one heap allocation per
// frame, so batch admission of thousands of small payloads costs a handful
// of chunk allocations and the delivered-frame release path is a refcount
// decrement. Payload slices handed to transports alias the chunk; a chunk
// is recycled only when every frame referencing it has reached a final
// disposition (delivered, dropped, or expired — a retry requeue keeps its
// reference), which the engine drives from accountLocked/expireLocked
// under e.mu, so the arena itself needs no locking.

// arenaChunkBytes is the slab size; payloads larger than a slab get a
// dedicated exact-size chunk.
const arenaChunkBytes = 64 << 10

// arenaMaxFree bounds the recycled-chunk free list.
const arenaMaxFree = 8

type arenaChunk struct {
	buf  []byte
	used int
	refs int
}

type payloadArena struct {
	cur  *arenaChunk
	free []*arenaChunk
}

// alloc copies p into arena storage and returns the aliasing slice plus
// the owning chunk (one reference, released via release). The returned
// slice is capacity-clipped so appends can never clobber a neighbor.
func (a *payloadArena) alloc(p []byte) ([]byte, *arenaChunk) {
	n := len(p)
	if n == 0 {
		return nil, nil
	}
	if n > arenaChunkBytes {
		c := &arenaChunk{buf: append([]byte(nil), p...), used: n, refs: 1}
		return c.buf[:n:n], c
	}
	c := a.cur
	if c != nil && c.used+n > len(c.buf) && c.refs == 0 {
		c.used = 0 // full but unreferenced: reuse in place
	}
	if c == nil || c.used+n > len(c.buf) {
		if k := len(a.free); k > 0 {
			c = a.free[k-1]
			a.free = a.free[:k-1]
			c.used = 0
		} else {
			c = &arenaChunk{buf: make([]byte, arenaChunkBytes)}
		}
		a.cur = c
	}
	dst := c.buf[c.used : c.used+n : c.used+n]
	copy(dst, p)
	c.used += n
	c.refs++
	return dst, c
}

// release drops one frame's reference. A chunk whose last reference is
// gone returns to the free list (the current chunk instead rewinds so its
// space is reused immediately).
func (a *payloadArena) release(c *arenaChunk) {
	if c == nil {
		return
	}
	c.refs--
	if c.refs > 0 {
		return
	}
	if c == a.cur {
		c.used = 0
		return
	}
	if len(c.buf) == arenaChunkBytes && len(a.free) < arenaMaxFree {
		a.free = append(a.free, c)
	}
}
