package engine

import (
	"sync"
	"time"
)

// shard is one admission lane: a slice of the station space (every STA
// with sta % P == id) together with everything a submitter must touch to
// admit a frame there — the lane lock, a private payload-arena lease, the
// lane-local admission sequence, and the lane's slice of the accounting
// counters. N parallel SubmitBatch callers whose stations hash to N
// different lanes take N different locks instead of convoying on one
// engine mutex; Stats aggregates the per-shard counters under lockAll.
//
// Everything below mu is guarded by mu. The STA-indexed engine arrays
// (queues, deliveredBytes, offered) stay global for O(1) addressing, but
// entry sta is guarded by its owning shard's lock — a STA maps to exactly
// one shard, which is also what keeps per-STA FIFO exact across lanes.
type shard struct {
	id int

	mu sync.Mutex

	// arena is the lane's private payload slab lease (RetainPayloads
	// mode): frames admitted on this shard allocate and release here, so
	// retained-payload ingest scales with the lanes too.
	arena payloadArena

	// seq is the lane-local admission sequence: the FIFO key for the
	// planner's cross-STA ordering within the shard and the lifecycle-
	// sampling counter. With one shard it is exactly the old global
	// admission sequence, which is what keeps deterministic single-shard
	// runs byte-identical.
	seq uint64

	// queued counts frames currently sitting in this shard's queues
	// (excluding popped frames riding an in-flight transmission): the
	// "still work here" signal the planner uses to re-publish the shard's
	// dirty bit after a partial drain.
	queued int

	// Accounting, aggregated across shards by statsCoreLocked.
	accepted, rejected, delivered, dropped, expired int64
	retriesN, txN, subN, seqAcks                    int64
	fecParityTx, fecRecovered, fecDecodeFail        int64
	busy                                            time.Duration
	lat                                             latHist
	stage                                           stageAcc

	// timer wakes the planner when this shard's earliest retry backoff
	// expires; timerAt is the armed deadline (0 = unarmed) so re-arms for
	// a later deadline don't clobber a sooner one.
	timer   *time.Timer
	timerAt time.Duration
}

// shardOf returns station sta's admission lane. Out-of-range stations
// route to shard 0, whose admission core rejects them with the same
// typed error as before.
func (e *Engine) shardOf(sta int) *shard {
	if sta < 0 || sta >= e.cfg.NumSTAs {
		return &e.shards[0]
	}
	return &e.shards[sta%len(e.shards)]
}

// markDirty publishes "shard i has plannable work" in the dirty bitmap
// and wakes a parked worker only on the bit's 0→1 transition — the
// cross-lane analogue of the queue-went-non-empty wake coalescing. The
// bit set is a plain atomic OR; the wake takes e.mu, which is what makes
// the handoff lose-proof: a worker holds e.mu continuously from its
// anyDirty check into cond.Wait, so a transition either lands before the
// check (worker skips the sleep) or its wake blocks until the worker is
// actually parked.
func (e *Engine) markDirty(i int) {
	w, bit := i>>6, uint64(1)<<(i&63)
	if e.dirty[w].Or(bit)&bit == 0 {
		e.mu.Lock()
		e.wakeLocked()
		e.mu.Unlock()
	}
}

// claimDirty atomically clears shard i's dirty bit, reporting whether
// this caller won it. The claimer owns the obligation to re-publish via
// markDirty if it leaves backlog behind.
func (e *Engine) claimDirty(i int) bool {
	w, bit := i>>6, uint64(1)<<(i&63)
	return e.dirty[w].And(^bit)&bit != 0
}

// anyDirty reports whether any shard has published work.
func (e *Engine) anyDirty() bool {
	for i := range e.dirty {
		if e.dirty[i].Load() != 0 {
			return true
		}
	}
	return false
}

// lockAll acquires every shard lock in ascending index order (the only
// place more than one shard lock is ever held, so the ordering makes
// deadlock impossible) — the coherent-snapshot barrier Stats, StageStats,
// PerSTA, and SnapshotAll use.
func (e *Engine) lockAll() {
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for i := range e.shards {
		e.shards[i].mu.Unlock()
	}
}

// armShardTimerLocked schedules a planner wake when the shard's earliest
// backed-off station becomes eligible, keeping the soonest deadline when
// one is already armed. Caller holds sh.mu.
func (e *Engine) armShardTimerLocked(sh *shard, now, d time.Duration) {
	deadline := now + d
	if sh.timerAt != 0 && sh.timerAt <= deadline {
		return
	}
	sh.timerAt = deadline
	if sh.timer == nil {
		id := sh.id
		sh.timer = time.AfterFunc(d, func() { e.shardTimerFired(id) })
		return
	}
	sh.timer.Reset(d)
}

// shardTimerFired clears the armed deadline and republishes the shard; a
// spurious fire (the work was already drained) costs one wasted scan.
func (e *Engine) shardTimerFired(i int) {
	sh := &e.shards[i]
	sh.mu.Lock()
	sh.timerAt = 0
	sh.mu.Unlock()
	e.markDirty(i)
}

// stopShardTimersLocked stops every armed shard timer; called on the way
// out of Drain and Close so no fire outlives the engine's useful life.
func (e *Engine) stopShardTimers() {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		if sh.timer != nil {
			sh.timer.Stop()
			sh.timerAt = 0
		}
		sh.mu.Unlock()
	}
}

// batchScratch is the pooled partition buffer SubmitBatch uses to bucket
// a mixed-STA batch into per-shard index runs without allocating on the
// ingest hot path.
type batchScratch struct {
	buckets [][]int32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}
