package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"

	"carpool/internal/bloom"
	"carpool/internal/core"
	"carpool/internal/faults"
	"carpool/internal/fec"
	"carpool/internal/mac"
	"carpool/internal/sim"
)

// Transport carries one planned aggregate to its receivers and reports
// per-subframe delivery. Implementations must be safe for concurrent
// Deliver calls from the engine's worker pool.
type Transport interface {
	// Deliver transmits plan and returns one delivery verdict per
	// plan.Subs entry. A non-nil error is a transport-level failure; the
	// engine treats every subframe of that plan as undelivered (retry
	// path) and keeps running.
	Deliver(ctx context.Context, plan *Plan) ([]bool, error)
}

// FECResult is one erasure-coded delivery's outcome, indexed by the
// plan's data subframes (parity subframes have no verdict of their own).
type FECResult struct {
	// Direct marks data subframes whose receiver decoded them off the air.
	Direct []bool
	// Recovered marks data subframes that were lost directly but rebuilt
	// byte-exactly from overheard shards plus parity. Disjoint from
	// Direct; a subframe with neither flag falls to the retry path.
	Recovered []bool
}

// FECTransport is a Transport that can also deliver erasure-coded plans:
// the engine routes every StrategyFEC transmission through DeliverFEC.
type FECTransport interface {
	Transport
	// DeliverFEC transmits a plan whose trailing len(Subs)-DataSubs
	// subframes are parity, reporting direct reception and parity
	// recovery per data subframe. Implementations must be safe for
	// concurrent calls, like Deliver.
	DeliverFEC(ctx context.Context, plan *Plan) (FECResult, error)
}

// deliver routes one plan through the configured transport: the plain
// Deliver path under StrategyRetry, the erasure path under StrategyFEC
// with parity recovery folded into the per-data-subframe verdicts. The
// returned recovered slice is nil outside FEC mode.
func (e *Engine) deliver(ctx context.Context, plan *Plan) (ok, recovered []bool, err error) {
	if e.fecK == 0 {
		ok, err = e.cfg.Transport.Deliver(ctx, plan)
		return ok, nil, err
	}
	res, err := e.cfg.Transport.(FECTransport).DeliverFEC(ctx, plan)
	if err != nil {
		return nil, nil, err
	}
	ok = res.Direct
	for i, r := range res.Recovered {
		if r {
			ok[i] = true
		}
	}
	return ok, res.Recovered, nil
}

// OracleTransport decides delivery with a mac.DeliveryOracle over the
// plan's symbol spans — the fast serving path, and the bridge that lets a
// deterministic engine run share its loss model with the discrete-event
// simulator. One oracle call decides each subframe (shared fate, one FCS
// per subframe).
type OracleTransport struct {
	// Oracle decides per-subframe delivery; nil is lossless.
	Oracle mac.DeliveryOracle
	// Locations maps station index to trace location ID (nil: all zero).
	Locations []int
	// StandardEstimate disables RTE decoding in the oracle query (the
	// MU-Aggregation ablation); the default is Carpool's RTE.
	StandardEstimate bool

	// mu serializes oracle access: trace and fixed oracles hold RNG state.
	mu sync.Mutex
}

// Deliver queries the oracle once per subframe.
func (t *OracleTransport) Deliver(_ context.Context, plan *Plan) ([]bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ok := make([]bool, len(plan.Subs))
	for i, sub := range plan.Subs {
		if t.Oracle == nil {
			ok[i] = true
			continue
		}
		loc := 0
		if t.Locations != nil {
			loc = t.Locations[sub.STA]
		}
		var err error
		ok[i], err = t.Oracle.SubframeOK(loc, !t.StandardEstimate, sub.StartSym, sub.NumSym)
		if err != nil {
			return nil, err
		}
	}
	return ok, nil
}

// STAMAC returns station i's deterministic hardware address: a locally
// administered OUI shared by the engine's transmitter and receivers.
func STAMAC(i int) bloom.MAC {
	return bloom.MAC{0x02, 0xcb, 0x70, byte(i >> 16), byte(i >> 8), byte(i)}
}

// ParityMAC returns parity slot j's reserved address. Parity subframes
// belong to no station, but each still occupies an A-HDR receiver entry,
// so the coded-Bloom filter and SIG chain stay well-formed; the reserved
// OUI keeps the addresses disjoint from every STAMAC.
func ParityMAC(j int) bloom.MAC {
	return bloom.MAC{0x02, 0xcb, 0x71, 0xff, 0xff, byte(j)}
}

// CodedOracleTransport is the FEC-capable oracle transport: per-shard
// reception is decided by a mac.DeliveryOracle over every subframe's
// symbol span (mac.HeardMask) for each receiver's location, and a
// receiver that loses its own subframe reconstructs it from the shards
// it overheard through the fec.RS erasure coder. Recovery is byte-true —
// it counts only when the rebuilt shard equals what was sent — so a
// corrupted GF(256) kernel surfaces as delivery failures, not as
// silently wrong payloads.
type CodedOracleTransport struct {
	OracleTransport

	// Seed parameterizes the deterministic size-only shard filler
	// (matching PHYTransport's subframePayload convention).
	Seed int64
	// ErasePattern, when non-nil, erases individual shard receptions on
	// top of the oracle verdicts: reception of shard index shard by
	// station sta on transmission seq is lost when it returns true (own
	// marks the receiver's own data subframe). Deterministic loss
	// injection for tests and the conformance pairs.
	ErasePattern func(seq uint64, sta, shard int, own bool) bool
	// CorruptParity, when non-nil, mutates the encoded parity shards
	// before delivery — the conformance harness's injected-bug hook.
	CorruptParity func(parity [][]byte)

	// Coder cache and per-delivery scratch, guarded by the embedded mu.
	coders map[int]*fec.RS
	spans  []mac.SymbolSpan
	heard  []bool
	shards [][]byte
	miss   [][]byte
}

var _ FECTransport = (*CodedOracleTransport)(nil)

// coderLocked returns the cached RS coder for k data + m parity shards.
func (t *CodedOracleTransport) coderLocked(k, m int) (*fec.RS, error) {
	key := k<<16 | m
	if rs, ok := t.coders[key]; ok {
		return rs, nil
	}
	rs, err := fec.NewRS(k, m)
	if err != nil {
		return nil, err
	}
	if t.coders == nil {
		t.coders = make(map[int]*fec.RS)
	}
	t.coders[key] = rs
	return rs, nil
}

// DeliverFEC materializes the plan's data shards, encodes parity, and
// plays every receiver's reception through the oracle: direct delivery
// when the station hears its own subframe, parity reconstruction when it
// hears at least DataSubs of the aggregate's shards.
func (t *CodedOracleTransport) DeliverFEC(ctx context.Context, plan *Plan) (FECResult, error) {
	k := plan.DataSubs
	total := len(plan.Subs)
	m := total - k
	if m == 0 {
		// No parity aboard (defensive: the FEC planner always appends
		// some): plain per-subframe oracle verdicts.
		ok, err := t.OracleTransport.Deliver(ctx, plan)
		if err != nil {
			return FECResult{}, err
		}
		return FECResult{Direct: ok, Recovered: make([]bool, len(ok))}, nil
	}
	res := FECResult{Direct: make([]bool, k), Recovered: make([]bool, k)}
	shardLen := plan.Subs[k].Bytes

	t.mu.Lock()
	defer t.mu.Unlock()
	rs, err := t.coderLocked(k, m)
	if err != nil {
		return FECResult{}, err
	}

	// True shard bytes: data payloads zero-padded to the parity length,
	// then the RS parity over them.
	truth := make([][]byte, total)
	for j := 0; j < k; j++ {
		p := subframePayload(t.Seed, plan.Seq, j, plan.Subs[j])
		if len(p) < shardLen {
			pp := make([]byte, shardLen)
			copy(pp, p)
			p = pp
		}
		truth[j] = p
	}
	for j := 0; j < m; j++ {
		truth[k+j] = make([]byte, shardLen)
	}
	if err := rs.EncodeInto(truth[k:], truth[:k]); err != nil {
		return FECResult{}, err
	}
	if t.CorruptParity != nil {
		t.CorruptParity(truth[k:])
	}

	if cap(t.spans) < total {
		t.spans = make([]mac.SymbolSpan, total)
		t.heard = make([]bool, total)
		t.shards = make([][]byte, total)
		t.miss = make([][]byte, total)
	}
	spans, heard, shards := t.spans[:total], t.heard[:total], t.shards[:total]
	for j, sub := range plan.Subs {
		spans[j] = mac.SymbolSpan{Start: sub.StartSym, Num: sub.NumSym}
	}

	for i := 0; i < k; i++ {
		sta := plan.Subs[i].STA
		loc := 0
		if t.Locations != nil {
			loc = t.Locations[sta]
		}
		n, err := mac.HeardMask(t.Oracle, loc, !t.StandardEstimate, spans, heard)
		if err != nil {
			return FECResult{}, err
		}
		if t.ErasePattern != nil {
			for j := range heard {
				if heard[j] && t.ErasePattern(plan.Seq, sta, j, j == i) {
					heard[j] = false
					n--
				}
			}
		}
		res.Direct[i] = heard[i]
		if heard[i] || n < k {
			continue
		}
		// Enough shards overheard: rebuild the missing ones, then check
		// the receiver's own shard came back byte-exact.
		for j := 0; j < total; j++ {
			if heard[j] {
				shards[j] = truth[j]
				continue
			}
			if len(t.miss[j]) < shardLen {
				t.miss[j] = make([]byte, shardLen)
			}
			shards[j] = t.miss[j][:shardLen]
		}
		if err := rs.ReconstructInto(shards, heard); err != nil {
			continue // unrecoverable for this receiver: retry path
		}
		res.Recovered[i] = bytes.Equal(shards[i], truth[i])
	}
	return res, nil
}

// PHYTransport drives the full TX→channel→RX pipeline for every plan: it
// also implements FECTransport, building parity subframes into the real
// PHY frame and decoding them end to end (DeliverFEC). It
// builds a real Carpool frame (core.BuildFrame — preamble, coded-Bloom
// A-HDR, per-subframe SIG and DATA symbols), impairs the samples with a
// seed-derived fault scenario, and fans each addressed station's receive
// pipeline (core.ReceiveFrame: sync, A-HDR match, SIG walk, RTE decode)
// across workers via sim.ParallelForCtx. A subframe is delivered when its
// receiver decodes a payload byte-identical to what was sent.
type PHYTransport struct {
	// Seed decorrelates per-transmission impairment draws; the scenario
	// applied to transmission n uses sim.DeriveSeed(Seed, n).
	Seed int64
	// Impair lists the channel impairments applied to every transmission
	// (the Seed field of this template is ignored).
	Impair []faults.Impairment
	// FrameCfg configures frame construction (hashes, side channel).
	FrameCfg core.FrameConfig
	// SoftFEC selects the quantized soft-decision receive path.
	SoftFEC bool

	// fecMu guards the erasure-coder cache and its shared decode scratch
	// across DeliverFEC's parallel receivers.
	fecMu  sync.Mutex
	coders map[int]*fec.RS
}

var _ FECTransport = (*PHYTransport)(nil)

// Deliver builds, impairs, and decodes one aggregate end to end.
func (t *PHYTransport) Deliver(ctx context.Context, plan *Plan) ([]bool, error) {
	subs := make([]core.Subframe, len(plan.Subs))
	payloads := make([][]byte, len(plan.Subs))
	for i, sub := range plan.Subs {
		payloads[i] = subframePayload(t.Seed, plan.Seq, i, sub)
		subs[i] = core.Subframe{Receiver: STAMAC(sub.STA), MCS: sub.MCS, Payload: payloads[i]}
	}
	frame, err := core.BuildFrame(subs, t.FrameCfg)
	if err != nil {
		return nil, fmt.Errorf("engine: building PHY frame: %w", err)
	}
	sc := faults.Scenario{Seed: sim.DeriveSeed(t.Seed, int(plan.Seq)), Impairments: t.Impair}
	rx := sc.Apply(frame.Samples)

	// Every receiver hears the same samples; decode failures (truncated
	// subframes, sync loss, FEC residue) are delivery failures for that
	// receiver's subframes, never transport errors.
	ok := make([]bool, len(plan.Subs))
	err = sim.ParallelForCtx(ctx, len(plan.Subs), func(i int) error {
		res, rerr := core.ReceiveFrame(rx, core.ReceiverConfig{
			MAC:        STAMAC(plan.Subs[i].STA),
			UseRTE:     true,
			KnownStart: 0,
			SoftFEC:    t.SoftFEC,
		})
		if rerr != nil || res == nil {
			return nil
		}
		for _, sf := range res.Subframes {
			if sf.Position == i+1 && bytes.Equal(sf.Payload, payloads[i]) {
				ok[i] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ok, nil
}

// coder returns the cached RS coder for k data + m parity shards.
func (t *PHYTransport) coder(k, m int) (*fec.RS, error) {
	t.fecMu.Lock()
	defer t.fecMu.Unlock()
	key := k<<16 | m
	if rs, ok := t.coders[key]; ok {
		return rs, nil
	}
	rs, err := fec.NewRS(k, m)
	if err != nil {
		return nil, err
	}
	if t.coders == nil {
		t.coders = make(map[int]*fec.RS)
	}
	t.coders[key] = rs
	return rs, nil
}

// DeliverFEC transmits an erasure-coded aggregate end to end: the data
// subframes plus RS parity subframes (addressed to the reserved
// ParityMAC slots) travel as one real PHY frame through the fault
// scenario, every receiver decodes the whole frame (core DecodeAll
// mode), and a receiver that loses its own subframe reconstructs it from
// whichever shards it decoded byte-true — data and parity alike.
func (t *PHYTransport) DeliverFEC(ctx context.Context, plan *Plan) (FECResult, error) {
	k := plan.DataSubs
	total := len(plan.Subs)
	m := total - k
	if m == 0 {
		ok, err := t.Deliver(ctx, plan)
		if err != nil {
			return FECResult{}, err
		}
		return FECResult{Direct: ok, Recovered: make([]bool, len(ok))}, nil
	}
	shardLen := plan.Subs[k].Bytes
	rs, err := t.coder(k, m)
	if err != nil {
		return FECResult{}, err
	}

	// On-air payloads: real data bytes per subframe, parity over the
	// zero-padded shards.
	air := make([][]byte, total)    // what each subframe carries
	padded := make([][]byte, total) // shard view: air zero-padded to shardLen
	subs := make([]core.Subframe, total)
	for i := 0; i < k; i++ {
		p := subframePayload(t.Seed, plan.Seq, i, plan.Subs[i])
		air[i] = p
		padded[i] = p
		if len(p) < shardLen {
			pp := make([]byte, shardLen)
			copy(pp, p)
			padded[i] = pp
		}
		subs[i] = core.Subframe{Receiver: STAMAC(plan.Subs[i].STA), MCS: plan.Subs[i].MCS, Payload: p}
	}
	for j := 0; j < m; j++ {
		padded[k+j] = make([]byte, shardLen)
	}
	t.fecMu.Lock()
	err = rs.EncodeInto(padded[k:], padded[:k])
	t.fecMu.Unlock()
	if err != nil {
		return FECResult{}, err
	}
	for j := 0; j < m; j++ {
		air[k+j] = padded[k+j]
		subs[k+j] = core.Subframe{Receiver: ParityMAC(j), MCS: plan.Subs[k+j].MCS, Payload: air[k+j]}
	}

	frame, err := core.BuildFrame(subs, t.FrameCfg)
	if err != nil {
		return FECResult{}, fmt.Errorf("engine: building coded PHY frame: %w", err)
	}
	sc := faults.Scenario{Seed: sim.DeriveSeed(t.Seed, int(plan.Seq)), Impairments: t.Impair}
	rx := sc.Apply(frame.Samples)

	res := FECResult{Direct: make([]bool, k), Recovered: make([]bool, k)}
	err = sim.ParallelForCtx(ctx, k, func(i int) error {
		fr, rerr := core.ReceiveFrame(rx, core.ReceiverConfig{
			MAC:        STAMAC(plan.Subs[i].STA),
			UseRTE:     true,
			KnownStart: 0,
			SoftFEC:    t.SoftFEC,
			DecodeAll:  true,
		})
		if rerr != nil || fr == nil {
			return nil
		}
		// Which shards did this station decode byte-true off the air?
		heard := make([]bool, total)
		shards := make([][]byte, total)
		n := 0
		for _, sf := range fr.Subframes {
			j := sf.Position - 1
			if j < 0 || j >= total || heard[j] || !bytes.Equal(sf.Payload, air[j]) {
				continue
			}
			heard[j] = true
			n++
			b := sf.Payload
			if len(b) < shardLen {
				bb := make([]byte, shardLen)
				copy(bb, b)
				b = bb
			}
			shards[j] = b
		}
		if heard[i] {
			res.Direct[i] = true
			return nil
		}
		if n < k {
			return nil
		}
		for j := range shards {
			if !heard[j] {
				shards[j] = make([]byte, shardLen)
			}
		}
		// The decode matrices inside rs are shared scratch: one receiver
		// reconstructs at a time.
		t.fecMu.Lock()
		derr := rs.ReconstructInto(shards, heard)
		t.fecMu.Unlock()
		if derr != nil {
			return nil
		}
		res.Recovered[i] = bytes.Equal(shards[i], padded[i])
		return nil
	})
	if err != nil {
		return FECResult{}, err
	}
	return res, nil
}

// subframePayload materializes a subframe's on-air bytes: the retained
// frame payloads concatenated when present, otherwise deterministic
// pseudo-random filler of the right size (size-only ingest).
func subframePayload(seed int64, txSeq uint64, subIdx int, sub PlanSub) []byte {
	if len(sub.Payloads) > 0 {
		out := make([]byte, 0, sub.Bytes)
		for _, p := range sub.Payloads {
			out = append(out, p...)
		}
		if len(out) == sub.Bytes {
			return out
		}
		// Mixed retained/size-only frames: pad to the accounted size.
		for len(out) < sub.Bytes {
			out = append(out, byte(len(out)))
		}
		return out[:sub.Bytes]
	}
	out := make([]byte, sub.Bytes)
	rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, int(txSeq)*bloom.MaxReceivers+subIdx)))
	rng.Read(out)
	return out
}
