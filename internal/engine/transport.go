package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"

	"carpool/internal/bloom"
	"carpool/internal/core"
	"carpool/internal/faults"
	"carpool/internal/mac"
	"carpool/internal/sim"
)

// Transport carries one planned aggregate to its receivers and reports
// per-subframe delivery. Implementations must be safe for concurrent
// Deliver calls from the engine's worker pool.
type Transport interface {
	// Deliver transmits plan and returns one delivery verdict per
	// plan.Subs entry. A non-nil error is a transport-level failure; the
	// engine treats every subframe of that plan as undelivered (retry
	// path) and keeps running.
	Deliver(ctx context.Context, plan *Plan) ([]bool, error)
}

// OracleTransport decides delivery with a mac.DeliveryOracle over the
// plan's symbol spans — the fast serving path, and the bridge that lets a
// deterministic engine run share its loss model with the discrete-event
// simulator. One oracle call decides each subframe (shared fate, one FCS
// per subframe).
type OracleTransport struct {
	// Oracle decides per-subframe delivery; nil is lossless.
	Oracle mac.DeliveryOracle
	// Locations maps station index to trace location ID (nil: all zero).
	Locations []int
	// StandardEstimate disables RTE decoding in the oracle query (the
	// MU-Aggregation ablation); the default is Carpool's RTE.
	StandardEstimate bool

	// mu serializes oracle access: trace and fixed oracles hold RNG state.
	mu sync.Mutex
}

// Deliver queries the oracle once per subframe.
func (t *OracleTransport) Deliver(_ context.Context, plan *Plan) ([]bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ok := make([]bool, len(plan.Subs))
	for i, sub := range plan.Subs {
		if t.Oracle == nil {
			ok[i] = true
			continue
		}
		loc := 0
		if t.Locations != nil {
			loc = t.Locations[sub.STA]
		}
		var err error
		ok[i], err = t.Oracle.SubframeOK(loc, !t.StandardEstimate, sub.StartSym, sub.NumSym)
		if err != nil {
			return nil, err
		}
	}
	return ok, nil
}

// STAMAC returns station i's deterministic hardware address: a locally
// administered OUI shared by the engine's transmitter and receivers.
func STAMAC(i int) bloom.MAC {
	return bloom.MAC{0x02, 0xcb, 0x70, byte(i >> 16), byte(i >> 8), byte(i)}
}

// PHYTransport drives the full TX→channel→RX pipeline for every plan: it
// builds a real Carpool frame (core.BuildFrame — preamble, coded-Bloom
// A-HDR, per-subframe SIG and DATA symbols), impairs the samples with a
// seed-derived fault scenario, and fans each addressed station's receive
// pipeline (core.ReceiveFrame: sync, A-HDR match, SIG walk, RTE decode)
// across workers via sim.ParallelForCtx. A subframe is delivered when its
// receiver decodes a payload byte-identical to what was sent.
type PHYTransport struct {
	// Seed decorrelates per-transmission impairment draws; the scenario
	// applied to transmission n uses sim.DeriveSeed(Seed, n).
	Seed int64
	// Impair lists the channel impairments applied to every transmission
	// (the Seed field of this template is ignored).
	Impair []faults.Impairment
	// FrameCfg configures frame construction (hashes, side channel).
	FrameCfg core.FrameConfig
	// SoftFEC selects the quantized soft-decision receive path.
	SoftFEC bool
}

// Deliver builds, impairs, and decodes one aggregate end to end.
func (t *PHYTransport) Deliver(ctx context.Context, plan *Plan) ([]bool, error) {
	subs := make([]core.Subframe, len(plan.Subs))
	payloads := make([][]byte, len(plan.Subs))
	for i, sub := range plan.Subs {
		payloads[i] = subframePayload(t.Seed, plan.Seq, i, sub)
		subs[i] = core.Subframe{Receiver: STAMAC(sub.STA), MCS: sub.MCS, Payload: payloads[i]}
	}
	frame, err := core.BuildFrame(subs, t.FrameCfg)
	if err != nil {
		return nil, fmt.Errorf("engine: building PHY frame: %w", err)
	}
	sc := faults.Scenario{Seed: sim.DeriveSeed(t.Seed, int(plan.Seq)), Impairments: t.Impair}
	rx := sc.Apply(frame.Samples)

	// Every receiver hears the same samples; decode failures (truncated
	// subframes, sync loss, FEC residue) are delivery failures for that
	// receiver's subframes, never transport errors.
	ok := make([]bool, len(plan.Subs))
	err = sim.ParallelForCtx(ctx, len(plan.Subs), func(i int) error {
		res, rerr := core.ReceiveFrame(rx, core.ReceiverConfig{
			MAC:        STAMAC(plan.Subs[i].STA),
			UseRTE:     true,
			KnownStart: 0,
			SoftFEC:    t.SoftFEC,
		})
		if rerr != nil || res == nil {
			return nil
		}
		for _, sf := range res.Subframes {
			if sf.Position == i+1 && bytes.Equal(sf.Payload, payloads[i]) {
				ok[i] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ok, nil
}

// subframePayload materializes a subframe's on-air bytes: the retained
// frame payloads concatenated when present, otherwise deterministic
// pseudo-random filler of the right size (size-only ingest).
func subframePayload(seed int64, txSeq uint64, subIdx int, sub PlanSub) []byte {
	if len(sub.Payloads) > 0 {
		out := make([]byte, 0, sub.Bytes)
		for _, p := range sub.Payloads {
			out = append(out, p...)
		}
		if len(out) == sub.Bytes {
			return out
		}
		// Mixed retained/size-only frames: pad to the accounted size.
		for len(out) < sub.Bytes {
			out = append(out, byte(len(out)))
		}
		return out[:sub.Bytes]
	}
	out := make([]byte, sub.Bytes)
	rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, int(txSeq)*bloom.MaxReceivers+subIdx)))
	rng.Read(out)
	return out
}
