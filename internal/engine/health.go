package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"carpool/internal/obs"
)

// HealthStatus is the rolled-up verdict of the health detectors.
type HealthStatus string

const (
	HealthOK        HealthStatus = "ok"
	HealthDegraded  HealthStatus = "degraded"
	HealthUnhealthy HealthStatus = "unhealthy"
)

// Detector names, in bitmask order (bit i of the EvHealth trace event's B
// field is detector i firing).
const (
	DetRetryStorm       = "retry_storm"
	DetQueueSaturation  = "queue_saturation"
	DetFairnessCollapse = "fairness_collapse"
	DetGoodputStall     = "goodput_stall"
)

// detectorOrder fixes the bitmask and report ordering.
var detectorOrder = []string{DetRetryStorm, DetQueueSaturation, DetFairnessCollapse, DetGoodputStall}

// HealthConfig parameterizes a HealthMonitor. The zero value works: every
// field defaults sensibly and Capacity merely disables the saturation
// watermark when unset.
type HealthConfig struct {
	// Window is how many Stats samples the rolling window holds
	// (default 8). Detectors compare the newest sample against the oldest
	// retained one, so with a sampling interval of T the detectors look
	// back up to Window*T.
	Window int
	// RetryStormRatio fires the retry-storm detector when windowed
	// retries exceed this multiple of windowed deliveries (default 1.0),
	// provided at least MinRetryEvents retries occurred in the window
	// (default 50) so idle engines cannot storm.
	RetryStormRatio float64
	MinRetryEvents  int64
	// SaturationFrac fires queue-saturation when the instantaneous
	// backlog reaches this fraction of Capacity (default 0.9). Capacity
	// is the engine's total queue slots (NumSTAs * QueueCap); zero
	// disables the detector.
	SaturationFrac float64
	Capacity       int64
	// FairnessFloor fires fairness-collapse when Jain's index over the
	// windowed per-STA delivered-byte deltas (across stations that have
	// ever delivered) drops below it (default 0.4), provided at least
	// MinFairnessBytes were delivered in the window (default 64 KiB).
	FairnessFloor    float64
	MinFairnessBytes int64
	// Obs receives health metrics and EvHealth transitions; nil falls
	// back to the globally enabled sink at NewHealthMonitor time.
	Obs *obs.Sink
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 1 {
		c.Window = 8
	}
	if c.RetryStormRatio <= 0 {
		c.RetryStormRatio = 1.0
	}
	if c.MinRetryEvents <= 0 {
		c.MinRetryEvents = 50
	}
	if c.SaturationFrac <= 0 {
		c.SaturationFrac = 0.9
	}
	if c.FairnessFloor <= 0 {
		c.FairnessFloor = 0.4
	}
	if c.MinFairnessBytes <= 0 {
		c.MinFairnessBytes = 64 << 10
	}
	return c
}

// DetectorState is one detector's latest evaluation.
type DetectorState struct {
	Firing bool `json:"firing"`
	// Value is the detector's observed metric (ratio, fraction, index);
	// Threshold the configured trip point it is compared against.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail,omitempty"`
}

// HealthReport is the monitor's rolled-up verdict: ok with no detector
// firing, degraded with one, unhealthy with two or more. Served as JSON on
// /debug/health and attached to telemetry pushes.
type HealthReport struct {
	Status  HealthStatus `json:"status"`
	Reasons []string     `json:"reasons,omitempty"`
	// Samples is how many Stats observations the monitor has seen;
	// Window the configured rolling-window length.
	Samples   int                      `json:"samples"`
	Window    int                      `json:"window"`
	Detectors map[string]DetectorState `json:"detectors"`
}

// HealthMonitor evaluates rolling-window health detectors over a stream of
// engine Stats snapshots: retry storm, queue saturation, fairness
// collapse, and goodput stall. Feed it with Observe (or let Run sample an
// engine on an interval), read it with Report or the /debug/health
// Handler. Status transitions emit an EvHealth trace event and bump the
// health.transitions counter; the health.status gauge tracks the current
// level (0 ok, 1 degraded, 2 unhealthy).
type HealthMonitor struct {
	cfg HealthConfig

	mu     sync.Mutex
	ring   []Stats // rolling window, ring[pos] is the next write slot
	pos    int
	n      int // total observations
	report HealthReport

	transitions *obs.Counter
	statusGauge *obs.Gauge
	fires       map[string]*obs.Counter
	tracer      *obs.Tracer
}

// NewHealthMonitor returns a monitor with no observations (status ok).
func NewHealthMonitor(cfg HealthConfig) *HealthMonitor {
	cfg = cfg.withDefaults()
	sink := cfg.Obs
	if sink == nil {
		sink = obs.Active()
	}
	m := &HealthMonitor{
		cfg:  cfg,
		ring: make([]Stats, cfg.Window),
		report: HealthReport{
			Status:    HealthOK,
			Window:    cfg.Window,
			Detectors: map[string]DetectorState{},
		},
	}
	if sink != nil {
		m.transitions = sink.Counter("health.transitions")
		m.statusGauge = sink.Gauge("health.status")
		m.fires = make(map[string]*obs.Counter, len(detectorOrder))
		for _, name := range detectorOrder {
			m.fires[name] = sink.Counter("health." + name + ".fires")
		}
		m.tracer = sink.Tracer
	}
	return m
}

// Observe feeds one Stats sample and re-evaluates every detector over the
// rolling window, returning the updated report.
func (m *HealthMonitor) Observe(st Stats) HealthReport {
	m.mu.Lock()
	defer m.mu.Unlock()

	m.ring[m.pos] = st
	m.pos = (m.pos + 1) % len(m.ring)
	m.n++

	// Oldest retained sample: with a full ring it is the next write slot,
	// otherwise index 0.
	oldest := m.ring[0]
	full := m.n >= len(m.ring)
	if full {
		oldest = m.ring[m.pos]
	}

	prev := m.report
	det := make(map[string]DetectorState, len(detectorOrder))

	// Retry storm: windowed retries dwarf windowed deliveries.
	{
		dR := st.Retries - oldest.Retries
		dD := st.Delivered - oldest.Delivered
		denom := dD
		if denom < 1 {
			denom = 1
		}
		ratio := float64(dR) / float64(denom)
		det[DetRetryStorm] = DetectorState{
			Firing:    dR >= m.cfg.MinRetryEvents && ratio > m.cfg.RetryStormRatio,
			Value:     ratio,
			Threshold: m.cfg.RetryStormRatio,
			Detail:    "windowed retries / delivered",
		}
	}

	// Queue saturation: instantaneous backlog at the watermark.
	{
		var frac float64
		if m.cfg.Capacity > 0 {
			frac = float64(st.Pending) / float64(m.cfg.Capacity)
		}
		det[DetQueueSaturation] = DetectorState{
			Firing:    m.cfg.Capacity > 0 && frac >= m.cfg.SaturationFrac,
			Value:     frac,
			Threshold: m.cfg.SaturationFrac,
			Detail:    "pending / total queue slots",
		}
	}

	// Fairness collapse: Jain's index over windowed per-STA byte deltas,
	// across stations that have ever delivered (so a station starving NOW
	// drags the index down, while never-offered stations don't).
	{
		var sum, sumSq float64
		var active float64
		var total int64
		for sta, cur := range st.DeliveredBytesPerSTA {
			if cur == 0 {
				continue
			}
			var old int64
			if sta < len(oldest.DeliveredBytesPerSTA) {
				old = oldest.DeliveredBytesPerSTA[sta]
			}
			d := float64(cur - old)
			total += cur - old
			sum += d
			sumSq += d * d
			active++
		}
		jain := 1.0
		if active > 0 && sumSq > 0 {
			jain = sum * sum / (active * sumSq)
		}
		det[DetFairnessCollapse] = DetectorState{
			Firing:    total >= m.cfg.MinFairnessBytes && active > 1 && jain < m.cfg.FairnessFloor,
			Value:     jain,
			Threshold: m.cfg.FairnessFloor,
			Detail:    "Jain index over windowed per-STA delivered bytes",
		}
	}

	// Goodput stall: a full window with work offered or queued but nothing
	// delivered.
	{
		dD := st.Delivered - oldest.Delivered
		dA := st.Accepted - oldest.Accepted
		det[DetGoodputStall] = DetectorState{
			Firing:    full && dD == 0 && (dA > 0 || st.Pending > 0),
			Value:     float64(dD),
			Threshold: 1,
			Detail:    "windowed deliveries with backlog or arrivals present",
		}
	}

	firing := 0
	var mask int64
	reasons := make([]string, 0, len(detectorOrder))
	for i, name := range detectorOrder {
		d := det[name]
		if d.Firing {
			firing++
			mask |= 1 << i
			reasons = append(reasons, name)
			if prevDet, ok := prev.Detectors[name]; !ok || !prevDet.Firing {
				m.fires[name].Inc()
			}
		}
	}
	status := HealthOK
	switch {
	case firing >= 2:
		status = HealthUnhealthy
	case firing == 1:
		status = HealthDegraded
	}

	m.report = HealthReport{
		Status:    status,
		Reasons:   reasons,
		Samples:   m.n,
		Window:    len(m.ring),
		Detectors: det,
	}
	m.statusGauge.Set(float64(statusLevel(status)))
	if status != prev.Status {
		m.transitions.Inc()
		m.tracer.Emit(obs.EvHealth, int64(statusLevel(status)), mask)
	}
	return m.report
}

func statusLevel(s HealthStatus) int {
	switch s {
	case HealthDegraded:
		return 1
	case HealthUnhealthy:
		return 2
	}
	return 0
}

// Report returns the latest evaluation (status ok before any Observe).
func (m *HealthMonitor) Report() HealthReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.report
}

// Handler serves the latest report as JSON: HTTP 200 for ok and degraded,
// 503 for unhealthy — the /debug/health endpoint.
func (m *HealthMonitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rep := m.Report()
		w.Header().Set("Content-Type", "application/json")
		if rep.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// StatsSource is anything the monitor can sample: a bare engine or a
// multi-AP cluster (whose Stats is the cluster rollup).
type StatsSource interface {
	Stats() Stats
}

// Run samples src.Stats() into the monitor every interval until ctx is
// cancelled — the carpoold wiring. It keeps observing after the engine
// stops so the detectors recover (the window slides over the frozen
// counters and every delta decays to zero).
func (m *HealthMonitor) Run(ctx context.Context, src StatsSource, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			m.Observe(src.Stats())
		}
	}
}
