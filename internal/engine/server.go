package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
)

// Server is the carpoold network frontend: it feeds wire-protocol records
// from TCP streams and UDP datagrams into one engine. Ingest records are
// admitted (or rejected by backpressure) inline on the connection's read
// goroutine; control records reply on the same connection.
type Server struct {
	eng *Engine

	// SlabSize sets each TCP connection's read-slab size: one Read fills
	// the slab and every complete record in it is parsed in place and
	// admitted as a single engine batch. Zero selects 256 KiB. The slab
	// grows transiently (up to one max-size record) when a single record
	// exceeds it.
	SlabSize int
	// Legacy selects the original one-record-per-read loop instead of the
	// slab batch path — the reference arm for differential testing.
	Legacy bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a started engine.
func NewServer(e *Engine) *Server {
	return &Server{eng: e, conns: make(map[net.Conn]struct{})}
}

// Engine returns the served engine.
func (s *Server) Engine() *Engine { return s.eng }

// Serve accepts TCP connections until ctx is cancelled or the listener
// closes, running one read loop per connection. It returns nil on
// graceful shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		s.closeConns()
	})
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.track(conn)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.serveConn(ctx, conn)
		}()
	}
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) slabSize() int {
	if s.SlabSize > 0 {
		return s.SlabSize
	}
	return 256 << 10
}

// serveConn drains one TCP stream through the slab batch path: one Read
// fills the slab, every complete record is parsed in place (payloads
// handed to admission zero-copy) and admitted in one SubmitBatch, and all
// control replies the slab produced go out in one vectored write
// (net.Buffers). Submission errors are backpressure outcomes already
// counted by the engine, not connection errors.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	if s.Legacy {
		s.serveConnLegacy(ctx, conn)
		return
	}
	slab := make([]byte, s.slabSize())
	items := make([]BatchItem, 0, 1024)
	fill := 0
	for {
		n, rerr := conn.Read(slab[fill:])
		fill += n

		// Parse everything complete, in passes: a control record ends a
		// pass so records before it are admitted first (wire FIFO), then
		// the scan resumes after it.
		var replies net.Buffers
		fatal := false
		for {
			var consumed int
			var ctrl byte
			var perr error
			items, consumed, ctrl, perr = parseBatch(slab[:fill], items[:0])
			if len(items) > 0 {
				_, _ = s.eng.SubmitBatch(items)
			}
			if consumed > 0 {
				copy(slab, slab[consumed:fill])
				fill -= consumed
			}
			if perr != nil {
				fatal = true // malformed framing is unrecoverable
				break
			}
			if ctrl == 0 {
				break
			}
			if ctrl == RecDrain && s.eng.Drain(ctx) != nil {
				fatal = true
			}
			reply, jerr := statsReply(s.eng.Stats())
			if jerr != nil {
				fatal = true
				break
			}
			replies = append(replies, reply)
			if fatal {
				break
			}
		}
		if len(replies) > 0 {
			if _, err := replies.WriteTo(conn); err != nil {
				return
			}
		}
		if fatal || rerr != nil {
			return // EOF, peer reset, malformed framing, or failed drain
		}
		if fill == len(slab) {
			// A single record overflows the slab: grow toward the protocol
			// ceiling so any conforming record fits.
			if len(slab) >= recHeaderLen+MaxWirePayload {
				return
			}
			bigger := make([]byte, min(2*len(slab), recHeaderLen+MaxWirePayload))
			copy(bigger, slab[:fill])
			slab = bigger
		}
	}
}

// serveConnLegacy is the original per-record read loop, kept as the
// unbatched reference arm.
func (s *Server) serveConnLegacy(ctx context.Context, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<14)
	var payloadBuf []byte
	for {
		rec, buf, err := readRecord(br, payloadBuf)
		payloadBuf = buf
		if err != nil {
			return // EOF, peer reset, or malformed framing: drop the conn
		}
		switch rec.typ {
		case RecData:
			_ = s.eng.Submit(rec.sta, rec.payload)
		case RecDataSize:
			_ = s.eng.SubmitSize(rec.sta, rec.length)
		case RecStats:
			if writeStatsReply(bw, s.eng.Stats()) != nil {
				return
			}
		case RecDrain:
			err := s.eng.Drain(ctx)
			st := s.eng.Stats()
			if writeStatsReply(bw, st) != nil || err != nil {
				return
			}
		default:
			return // unknown record type: framing is unrecoverable
		}
	}
}

// ServeUDP drains datagrams until ctx is cancelled or the socket closes.
// Each datagram carries whole records back-to-back and is admitted as one
// engine batch; a malformed or truncated record discards the rest of its
// datagram only. Control records reply to the sender's address in one
// datagram.
func (s *Server) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	buf := make([]byte, 64<<10)
	items := make([]BatchItem, 0, 256)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		dgram := buf[:n]
		for off := 0; off < len(dgram); {
			var consumed int
			var ctrl byte
			var perr error
			items, consumed, ctrl, perr = parseBatch(dgram[off:], items[:0])
			if len(items) > 0 {
				_, _ = s.eng.SubmitBatch(items)
			}
			off += consumed
			if perr != nil || ctrl == 0 {
				break // malformed or truncated tail: drop the rest
			}
			if ctrl == RecDrain {
				_ = s.eng.Drain(ctx)
			}
			if reply, jerr := statsReply(s.eng.Stats()); jerr == nil {
				_, _ = conn.WriteTo(reply, addr)
			}
		}
	}
}

// statsReply encodes a stats record: RecStats framing with JSON payload.
func statsReply(st Stats) ([]byte, error) {
	doc, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	out := appendHeader(make([]byte, 0, recHeaderLen+len(doc)), RecStats, 0, len(doc))
	return append(out, doc...), nil
}

func writeStatsReply(bw *bufio.Writer, st Stats) error {
	reply, err := statsReply(st)
	if err != nil {
		return err
	}
	if _, err := bw.Write(reply); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadStatsReply decodes one stats reply from a stream — the client half
// of the RecStats/RecDrain exchange, used by carpoolload.
func ReadStatsReply(r io.Reader) (Stats, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var payloadBuf []byte
	rec, _, err := readRecord(br, payloadBuf)
	if err != nil {
		return Stats{}, err
	}
	if rec.typ != RecStats {
		return Stats{}, errors.New("engine: unexpected reply record type")
	}
	doc := make([]byte, rec.length)
	if _, err := io.ReadFull(br, doc); err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(doc, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
