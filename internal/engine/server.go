package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ServerBackend is what the network frontend serves: one engine
// (NewServer) or a multi-AP cluster routing the same calls across its
// engines (internal/cluster, NewServerFor). The methods mirror Engine's
// serving surface exactly, so *Engine satisfies it without adapters.
type ServerBackend interface {
	Submit(sta int, payload []byte) error
	SubmitSize(sta, size int) error
	SubmitBatch(items []BatchItem) (int, error)
	Stats() Stats
	StageStats() StageStats
	Drain(ctx context.Context) error
	Stopped() bool
	Telemetry(seq uint64, prev Stats, final bool) TelemetryUpdate
}

// Roamer is the optional backend capability behind RecRoam records: a
// multi-AP backend that can migrate a station between APs. Backends
// without it (a bare engine) ignore roam requests.
type Roamer interface {
	Roam(sta, ap int) error
}

// Server is the carpoold network frontend: it feeds wire-protocol records
// from TCP streams and UDP datagrams into one backend — a single engine
// or a multi-AP cluster. Ingest records are
// admitted (or rejected by backpressure) inline on the connection's read
// goroutine; control records reply on the same connection. A RecSubscribe
// record starts a per-connection telemetry pusher goroutine whose periodic
// RecTelemetry records interleave with control replies under a per-conn
// write lock.
type Server struct {
	b   ServerBackend
	eng *Engine // non-nil only for NewServer (the Engine accessor)

	// SlabSize sets each TCP connection's read-slab size: one Read fills
	// the slab and every complete record in it is parsed in place and
	// admitted as a single engine batch. Zero selects 256 KiB. The slab
	// grows transiently (up to one max-size record) when a single record
	// exceeds it.
	SlabSize int
	// Legacy selects the original one-record-per-read loop instead of the
	// slab batch path — the reference arm for differential testing. It
	// answers RecSubscribe with a single telemetry update instead of a
	// stream.
	Legacy bool
	// Health, when set, is attached to every telemetry update so
	// subscribers see the detector verdicts alongside the counters.
	Health *HealthMonitor

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a started engine.
func NewServer(e *Engine) *Server {
	return &Server{b: e, eng: e, conns: make(map[net.Conn]struct{})}
}

// NewServerFor wraps any backend — the multi-AP cluster's entry point.
func NewServerFor(b ServerBackend) *Server {
	return &Server{b: b, conns: make(map[net.Conn]struct{})}
}

// Engine returns the served engine (nil when the backend is not a bare
// engine — use the backend's own accessors instead).
func (s *Server) Engine() *Engine { return s.eng }

// Serve accepts TCP connections until ctx is cancelled or the listener
// closes, running one read loop per connection. It returns nil on
// graceful shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		s.closeConns()
	})
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.track(conn)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.serveConn(ctx, conn)
		}()
	}
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) slabSize() int {
	if s.SlabSize > 0 {
		return s.SlabSize
	}
	return 256 << 10
}

// connWriter serializes writes to one connection between the read loop's
// control replies and any telemetry pushers the connection spawned, so
// records never interleave mid-frame.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(p []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.conn.Write(p)
	return err
}

func (w *connWriter) writeBufs(bufs net.Buffers) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := bufs.WriteTo(w.conn)
	return err
}

// telemetry assembles one update for a subscribe stream, attaching the
// server's health report when a monitor is wired.
func (s *Server) telemetry(seq uint64, prev Stats, final bool) TelemetryUpdate {
	upd := s.b.Telemetry(seq, prev, final)
	if s.Health != nil {
		rep := s.Health.Report()
		upd.Health = &rep
	}
	return upd
}

// pushTelemetry is one subscribe stream: a RecTelemetry record every
// interval until the engine stops (last update flagged final), the stop
// channel closes (connection going away — a final update is attempted
// best-effort), or a write fails. Deltas telescope from the zero Stats, so
// a subscriber summing every delta reproduces the final counters.
func (s *Server) pushTelemetry(ctx context.Context, w *connWriter, interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = defaultSubscribeInterval
	}
	if interval < minSubscribeInterval {
		interval = minSubscribeInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var prev Stats
	var seq uint64
	emit := func(final bool) bool {
		upd := s.telemetry(seq, prev, final)
		prev = upd.Stats
		seq++
		reply, err := telemetryReply(upd)
		if err != nil {
			return false
		}
		return w.write(reply) == nil
	}
	for {
		select {
		case <-ctx.Done():
			emit(true)
			return
		case <-stop:
			emit(true)
			return
		case <-tick.C:
			final := s.b.Stopped()
			if !emit(final) || final {
				return
			}
		}
	}
}

// controlReply builds the reply for one control record, handling its side
// effects (drain). A RecSubscribe returns a nil reply and the subscribe
// flag instead. fatal reports unrecoverable connection state.
func (s *Server) controlReply(ctx context.Context, ctrl wireRecord) (reply []byte, subscribe, fatal bool) {
	switch ctrl.typ {
	case RecStats:
		reply, err := statsReply(s.b.Stats())
		return reply, false, err != nil
	case RecDrain:
		derr := s.b.Drain(ctx)
		reply, err := statsReply(s.b.Stats())
		return reply, false, err != nil || derr != nil
	case RecStageStats:
		reply, err := stageStatsReply(s.b.StageStats())
		return reply, false, err != nil
	case RecRoam:
		// Fire-and-forget like ingest: no reply, and a failed roam (backend
		// without roaming, unknown AP, draining) is not a connection error.
		if r, ok := s.b.(Roamer); ok {
			_ = r.Roam(ctrl.sta, ctrl.length)
		}
		return nil, false, false
	case RecSubscribe:
		return nil, true, false
	}
	return nil, false, true
}

// serveConn drains one TCP stream through the slab batch path: one Read
// fills the slab, every complete record is parsed in place (payloads
// handed to admission zero-copy) and admitted in one SubmitBatch, and all
// control replies the slab produced go out in one vectored write
// (net.Buffers). Submission errors are backpressure outcomes already
// counted by the engine, not connection errors. Subscribe records spawn a
// telemetry pusher that shares the connection under the write lock; the
// pushers are stopped (emitting a last best-effort final update) before
// the read loop returns and the connection closes.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	if s.Legacy {
		s.serveConnLegacy(ctx, conn)
		return
	}
	w := &connWriter{conn: conn}
	var pushers sync.WaitGroup
	stopPush := make(chan struct{})
	defer func() {
		close(stopPush)
		pushers.Wait()
	}()
	slab := make([]byte, s.slabSize())
	items := make([]BatchItem, 0, 1024)
	fill := 0
	for {
		n, rerr := conn.Read(slab[fill:])
		fill += n

		// Parse everything complete, in passes: a control record ends a
		// pass so records before it are admitted first (wire FIFO), then
		// the scan resumes after it.
		var replies net.Buffers
		fatal := false
		for {
			var consumed int
			var ctrl wireRecord
			var perr error
			items, consumed, ctrl, perr = parseBatch(slab[:fill], items[:0])
			if len(items) > 0 {
				_, _ = s.b.SubmitBatch(items)
			}
			if consumed > 0 {
				copy(slab, slab[consumed:fill])
				fill -= consumed
			}
			if perr != nil {
				fatal = true // malformed framing is unrecoverable
				break
			}
			if ctrl.typ == 0 {
				break
			}
			reply, subscribe, cfatal := s.controlReply(ctx, ctrl)
			if subscribe {
				interval := time.Duration(ctrl.length) * time.Millisecond
				pushers.Add(1)
				go func() {
					defer pushers.Done()
					s.pushTelemetry(ctx, w, interval, stopPush)
				}()
				continue
			}
			if reply != nil {
				replies = append(replies, reply)
			}
			if cfatal {
				fatal = true
				break
			}
		}
		if len(replies) > 0 {
			if err := w.writeBufs(replies); err != nil {
				return
			}
		}
		if fatal || rerr != nil {
			return // EOF, peer reset, malformed framing, or failed drain
		}
		if fill == len(slab) {
			// A single record overflows the slab: grow toward the protocol
			// ceiling so any conforming record fits.
			if len(slab) >= recHeaderLen+MaxWirePayload {
				return
			}
			bigger := make([]byte, min(2*len(slab), recHeaderLen+MaxWirePayload))
			copy(bigger, slab[:fill])
			slab = bigger
		}
	}
}

// serveConnLegacy is the original per-record read loop, kept as the
// unbatched reference arm. Subscribe gets one immediate telemetry update
// rather than a stream (no pusher machinery on this path).
func (s *Server) serveConnLegacy(ctx context.Context, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<14)
	var payloadBuf []byte
	for {
		rec, buf, err := readRecord(br, payloadBuf)
		payloadBuf = buf
		if err != nil {
			return // EOF, peer reset, or malformed framing: drop the conn
		}
		switch rec.typ {
		case RecData:
			_ = s.b.Submit(rec.sta, rec.payload)
		case RecDataSize:
			_ = s.b.SubmitSize(rec.sta, rec.length)
		case RecRoam:
			if r, ok := s.b.(Roamer); ok {
				_ = r.Roam(rec.sta, rec.length)
			}
		case RecStats:
			if writeStatsReply(bw, s.b.Stats()) != nil {
				return
			}
		case RecDrain:
			err := s.b.Drain(ctx)
			st := s.b.Stats()
			if writeStatsReply(bw, st) != nil || err != nil {
				return
			}
		case RecStageStats:
			reply, jerr := stageStatsReply(s.b.StageStats())
			if jerr != nil {
				return
			}
			if _, err := bw.Write(reply); err != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
		case RecSubscribe:
			upd := s.telemetry(0, Stats{}, s.b.Stopped())
			reply, jerr := telemetryReply(upd)
			if jerr != nil {
				return
			}
			if _, err := bw.Write(reply); err != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
		default:
			return // unknown record type: framing is unrecoverable
		}
	}
}

// ServeUDP drains datagrams until ctx is cancelled or the socket closes.
// Each datagram carries whole records back-to-back and is admitted as one
// engine batch; a malformed or truncated record discards the rest of its
// datagram only. Control records reply to the sender's address, one
// datagram per control record; RecSubscribe gets a single telemetry
// update (datagrams carry no stream to push on).
func (s *Server) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	buf := make([]byte, 64<<10)
	items := make([]BatchItem, 0, 256)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		dgram := buf[:n]
		for off := 0; off < len(dgram); {
			var consumed int
			var ctrl wireRecord
			var perr error
			items, consumed, ctrl, perr = parseBatch(dgram[off:], items[:0])
			if len(items) > 0 {
				_, _ = s.b.SubmitBatch(items)
			}
			off += consumed
			if perr != nil || ctrl.typ == 0 {
				break // malformed or truncated tail: drop the rest
			}
			var reply []byte
			if ctrl.typ == RecSubscribe {
				upd := s.telemetry(0, Stats{}, s.b.Stopped())
				reply, _ = telemetryReply(upd)
			} else {
				reply, _, _ = s.controlReply(ctx, ctrl)
			}
			if reply != nil {
				_, _ = conn.WriteTo(reply, addr)
			}
		}
	}
}

// statsReply encodes a stats record: RecStats framing with JSON payload.
func statsReply(st Stats) ([]byte, error) {
	doc, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	out := appendHeader(make([]byte, 0, recHeaderLen+len(doc)), RecStats, 0, len(doc))
	return append(out, doc...), nil
}

func writeStatsReply(bw *bufio.Writer, st Stats) error {
	reply, err := statsReply(st)
	if err != nil {
		return err
	}
	if _, err := bw.Write(reply); err != nil {
		return err
	}
	return bw.Flush()
}

// statsReplyRequiredKeys are probed before decoding a stats reply: a
// record that parses as JSON but lacks the core accounting keys is
// malformed, and clients (carpoolload) must fail loudly rather than
// report a silently zeroed Stats.
var statsReplyRequiredKeys = []string{"accepted", "delivered", "pending", "delivered_bytes_per_sta"}

// ReadStatsReply decodes one stats reply from a stream — the client half
// of the RecStats/RecDrain exchange, used by carpoolload. The reply is
// validated strictly: wrong record type, invalid JSON, or a document
// missing the core accounting keys all error.
func ReadStatsReply(r io.Reader) (Stats, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	rec, _, err := readRecord(br, nil)
	if err != nil {
		return Stats{}, err
	}
	if rec.typ != RecStats {
		return Stats{}, fmt.Errorf("engine: reply record type %#02x, want %#02x", rec.typ, RecStats)
	}
	doc := make([]byte, rec.length)
	if _, err := io.ReadFull(br, doc); err != nil {
		return Stats{}, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(doc, &probe); err != nil {
		return Stats{}, fmt.Errorf("engine: malformed stats record: %w", err)
	}
	for _, k := range statsReplyRequiredKeys {
		if _, ok := probe[k]; !ok {
			return Stats{}, fmt.Errorf("engine: malformed stats record: missing %q", k)
		}
	}
	var st Stats
	if err := json.Unmarshal(doc, &st); err != nil {
		return Stats{}, fmt.Errorf("engine: malformed stats record: %w", err)
	}
	return st, nil
}
