package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"carpool/internal/traffic"
)

// detArrival is one scheduled submission in the deterministic run.
type detArrival struct {
	at   time.Duration
	sta  int
	size int
}

// RunDeterministic executes the engine single-threaded under a virtual
// clock: per-STA arrival flows feed the same admission, expiry, planning,
// retry, and accounting code the real-time worker pool runs, but time
// advances only by computed airtime and arrival gaps, so a given
// (config, flows, transport-seed) triple always produces the same Stats.
// This is the mode the engine-vs-macsim conformance pair and the
// determinism tests drive.
//
// flows[sta] is station sta's arrival schedule (len(flows) must not
// exceed cfg.NumSTAs). cfg.Clock and cfg.Workers are overridden; the
// transport is called synchronously. The run ends when every arrival has
// been offered and all queues have drained (delivered, dropped, or
// expired).
func RunDeterministic(ctx context.Context, cfg Config, flows [][]traffic.Arrival) (*Stats, error) {
	if len(flows) > cfg.NumSTAs && cfg.NumSTAs > 0 {
		return nil, fmt.Errorf("engine: %d flows for %d stations", len(flows), cfg.NumSTAs)
	}
	clk := &virtualClock{}
	cfg.Clock = clk
	cfg.Workers = 1
	if cfg.AdmissionShards == 0 {
		// Deterministic results must not depend on the host's GOMAXPROCS:
		// one shard reproduces the pre-shard engine byte for byte. An
		// explicit shard count is honored (the sharded-vs-unsharded
		// conformance pair runs this very runner at several).
		cfg.AdmissionShards = 1
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}

	// Flatten flows into one global arrival schedule ordered by time, with
	// station index as the deterministic tie-break.
	var arrivals []detArrival
	for sta, flow := range flows {
		for _, a := range flow {
			arrivals = append(arrivals, detArrival{at: a.Time, sta: sta, size: a.Size})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].sta < arrivals[j].sta
	})

	var sc planScratch
	next := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := clk.now

		// Admit every arrival due by now. Admission failures here are
		// backpressure outcomes (counted), not run errors.
		for next < len(arrivals) && arrivals[next].at <= now {
			a := arrivals[next]
			_ = e.submitLocked(a.sta, a.size, nil, now)
			next++
		}
		e.expireLocked(now)

		if tx := e.buildPlanLocked(now, &sc); tx != nil {
			var okPerSub []bool
			var derr error
			okPerSub, tx.recovered, derr = e.deliver(ctx, &tx.plan)
			// The transmission and its ACK train occupy the air before the
			// outcome lands — advance virtual time first so latency and
			// backoff are stamped at transmission end, as on real hardware.
			clk.now += tx.plan.Airtime + tx.plan.ACKTime
			e.accountLocked(tx, okPerSub, derr, clk.now, 0)
			continue
		}

		// Nothing schedulable: hop to the next event (arrival or backoff
		// expiry); if neither exists the run is complete.
		hop := time.Duration(-1)
		if next < len(arrivals) {
			hop = arrivals[next].at - now
		}
		if d, ok := e.earliestEligibleLocked(now); ok && (hop < 0 || d < hop) {
			hop = d
		}
		if hop < 0 {
			break
		}
		if hop == 0 {
			hop = 1 // guard against zero-length hops stalling the loop
		}
		clk.now += hop
	}

	st := e.statsLocked(clk.now)
	return &st, nil
}

// RunDeterministicBatched is RunDeterministic driven through the batched
// serving path: every group of same-instant arrivals is serialized into
// wire records, parsed back by the in-place slab parser, and admitted via
// the batch admission core — the exact record → parseBatch → SubmitBatch
// spine a slab read runs, under the virtual clock. The batched-vs-unbatched
// conformance pair holds its Stats bit-identical to RunDeterministic's.
//
// With cfg.RetainPayloads the arrivals travel as RecData records carrying
// deterministic bytes (exercising the payload arena); otherwise as
// RecDataSize records, matching the wire fast-ingest form.
func RunDeterministicBatched(ctx context.Context, cfg Config, flows [][]traffic.Arrival) (*Stats, error) {
	if len(flows) > cfg.NumSTAs && cfg.NumSTAs > 0 {
		return nil, fmt.Errorf("engine: %d flows for %d stations", len(flows), cfg.NumSTAs)
	}
	clk := &virtualClock{}
	cfg.Clock = clk
	cfg.Workers = 1
	if cfg.AdmissionShards == 0 {
		cfg.AdmissionShards = 1 // see RunDeterministic
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}

	var arrivals []detArrival
	for sta, flow := range flows {
		for _, a := range flow {
			arrivals = append(arrivals, detArrival{at: a.Time, sta: sta, size: a.Size})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].sta < arrivals[j].sta
	})

	var sc planScratch
	var wire []byte
	var scratch []byte
	var items []BatchItem
	next := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := clk.now

		// Serialize every arrival due by now into one record batch, round-trip
		// it through the wire parser, and admit it in one locked call — the
		// deterministic twin of a slab read.
		if next < len(arrivals) && arrivals[next].at <= now {
			wire = wire[:0]
			for next < len(arrivals) && arrivals[next].at <= now {
				a := arrivals[next]
				if cfg.RetainPayloads {
					if cap(scratch) < a.size {
						scratch = make([]byte, a.size)
					}
					p := scratch[:a.size]
					for i := range p {
						p[i] = byte(a.sta)
					}
					wire = AppendDataRecord(wire, a.sta, p)
				} else {
					wire = AppendSizeRecord(wire, a.sta, a.size)
				}
				next++
			}
			var consumed int
			var ctrl wireRecord
			items, consumed, ctrl, err = parseBatch(wire, items[:0])
			if err != nil || ctrl.typ != 0 || consumed != len(wire) {
				return nil, fmt.Errorf("engine: batch round-trip consumed %d of %d (ctrl %#02x): %w",
					consumed, len(wire), ctrl.typ, err)
			}
			_, _, _ = e.submitBatchLocked(items, now)
		}
		e.expireLocked(now)

		if tx := e.buildPlanLocked(now, &sc); tx != nil {
			var okPerSub []bool
			var derr error
			okPerSub, tx.recovered, derr = e.deliver(ctx, &tx.plan)
			clk.now += tx.plan.Airtime + tx.plan.ACKTime
			e.accountLocked(tx, okPerSub, derr, clk.now, 0)
			continue
		}

		hop := time.Duration(-1)
		if next < len(arrivals) {
			hop = arrivals[next].at - now
		}
		if d, ok := e.earliestEligibleLocked(now); ok && (hop < 0 || d < hop) {
			hop = d
		}
		if hop < 0 {
			break
		}
		if hop == 0 {
			hop = 1
		}
		clk.now += hop
	}

	st := e.statsLocked(clk.now)
	return &st, nil
}
