package engine

import (
	"context"
	"time"
)

// Stepper is a single-threaded stepping facade over one engine: the
// building block of multi-engine deterministic runs (internal/cluster),
// where one outer loop interleaves several engines under a shared
// virtual clock. It decomposes the deterministic runner's iteration —
// admit, expire, plan, deliver, settle, hop — into calls the outer loop
// can sequence across engines, so one slot can carry concurrent plans
// from several APs before any of them settles.
//
// A Stepper owns its plan scratch: each engine in a cluster gets its own,
// and the plans of different steppers coexist within a slot. All methods
// assume exclusive single-threaded ownership of the engine (no Start).
type Stepper struct {
	e  *Engine
	sc planScratch
}

// NewStepper wraps an engine for single-threaded stepping.
func NewStepper(e *Engine) *Stepper { return &Stepper{e: e} }

// Engine returns the stepped engine.
func (s *Stepper) Engine() *Engine { return s.e }

// Submit admits one size-only frame at virtual time now, with the same
// typed admission errors as Engine.Submit.
func (s *Stepper) Submit(sta, size int, payload []byte, now time.Duration) error {
	return s.e.submitLocked(sta, size, payload, now)
}

// Expire sweeps MaxLatency-expired frames at virtual time now.
func (s *Stepper) Expire(now time.Duration) {
	s.e.expireLocked(now)
}

// HasEligible reports whether some station has backlog past its backoff
// gate — exactly when BuildPlan would return a plan (the planner always
// admits the first eligible frame).
func (s *Stepper) HasEligible(now time.Duration) bool {
	for sta := range s.e.queues {
		q := &s.e.queues[sta]
		if q.len() > 0 && q.nextEligible <= now {
			return true
		}
	}
	return false
}

// SteppedTx is one built-but-unsettled transmission: the plan plus the
// delivery outcome Deliver stored for Settle.
type SteppedTx struct {
	tx        *pendingTx
	ok        []bool
	derr      error
	delivered bool
}

// Plan exposes the transmission's transport-facing plan (for transports
// that inspect or wrap delivery, e.g. the cluster's interference layer).
func (t *SteppedTx) Plan() *Plan { return &t.tx.plan }

// Airtime is the transmission's air occupancy: data airtime plus the
// sequential-ACK train — what the virtual clock advances by.
func (t *SteppedTx) Airtime() time.Duration {
	return t.tx.plan.Airtime + t.tx.plan.ACKTime
}

// BuildPlan pops eligible frames into one aggregate plan at virtual time
// now, or returns nil when nothing is schedulable. The returned
// transmission lives in the stepper's scratch until the next BuildPlan.
func (s *Stepper) BuildPlan(now time.Duration) *SteppedTx {
	tx := s.e.buildPlanLocked(now, &s.sc)
	if tx == nil {
		return nil
	}
	return &SteppedTx{tx: tx}
}

// Deliver runs the transmission through the engine's transport,
// storing the per-subframe outcome for Settle.
func (s *Stepper) Deliver(ctx context.Context, t *SteppedTx) error {
	t.ok, t.tx.recovered, t.derr = s.e.deliver(ctx, &t.tx.plan)
	t.delivered = true
	return t.derr
}

// Settle applies the delivered transmission's outcome at virtual time
// now (transmission end): delivery accounting, retries, backoff.
func (s *Stepper) Settle(t *SteppedTx, now time.Duration) {
	s.e.accountLocked(t.tx, t.ok, t.derr, now, 0)
}

// EarliestEligible returns the wait until the soonest backed-off station
// with backlog becomes eligible; ok is false when none is gated.
func (s *Stepper) EarliestEligible(now time.Duration) (time.Duration, bool) {
	return s.e.earliestEligibleLocked(now)
}

// Stats snapshots the engine's accounting at virtual time now — the
// single-threaded statsLocked form the deterministic runners use, so a
// one-engine cluster reproduces RunDeterministic's Stats verbatim.
func (s *Stepper) Stats(now time.Duration) Stats {
	return s.e.statsLocked(now)
}
