package engine

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"carpool/internal/obs"
)

// flakyTransport fails every k-th transmission outright (all subframes),
// deterministically injecting retries and backoff without the positional
// bias of the loss oracles — retried frames still deliver on a later
// attempt, so the sampled lifecycle exercises every stage.
type flakyTransport struct {
	n, every int
}

func (f *flakyTransport) Deliver(_ context.Context, plan *Plan) ([]bool, error) {
	f.n++
	fail := f.every > 0 && f.n%f.every == 0
	ok := make([]bool, len(plan.Subs))
	for i := range ok {
		ok[i] = !fail
	}
	return ok, nil
}

// TestSamplingInvarianceDeterministic runs the identical deterministic
// scenario under SampleEvery 0, 1, and 7 and requires byte-identical Stats:
// lifecycle tracing must observe the serving path without perturbing its
// scheduling, retry, or accounting decisions.
func TestSamplingInvarianceDeterministic(t *testing.T) {
	flows := cbrFlows(4, 200, 1200, 120*time.Microsecond)
	var base string
	var baseStats *Stats
	for _, sample := range []int{0, 1, 7} {
		st, err := RunDeterministic(context.Background(), Config{
			NumSTAs:     4,
			SampleEvery: sample,
			Transport:   &flakyTransport{every: 3},
		}, flows)
		if err != nil {
			t.Fatalf("SampleEvery=%d: %v", sample, err)
		}
		got := fmt.Sprintf("%+v", *st)
		if sample == 0 {
			base, baseStats = got, st
			continue
		}
		if got != base {
			t.Errorf("SampleEvery=%d diverged from unsampled run:\n  sampled   %s\n  unsampled %s",
				sample, got, base)
		}
	}
	if baseStats.Delivered == 0 || baseStats.Retries == 0 {
		t.Fatalf("scenario exercised no retries (delivered %d, retries %d) — weak invariance check",
			baseStats.Delivered, baseStats.Retries)
	}
}

// TestStageDecompositionIdentity checks the core invariant of the stage
// decomposition: for every sampled delivered frame, queue wait + backoff +
// air + decode telescopes exactly to its admit-to-deliver latency. With
// SampleEvery=1 every delivered frame is sampled, so the four
// engine.stage.*_ms histogram sums must reproduce the engine.latency_ms sum
// (decode is identically zero in deterministic mode, where the virtual
// clock does not advance inside Transport.Deliver).
func TestStageDecompositionIdentity(t *testing.T) {
	sink := &obs.Sink{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(1 << 15)}
	flows := cbrFlows(4, 250, 1200, 120*time.Microsecond)
	st, err := RunDeterministic(context.Background(), Config{
		NumSTAs:     4,
		SampleEvery: 1,
		Obs:         sink,
		Transport:   &flakyTransport{every: 3},
	}, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 || st.Retries == 0 {
		t.Fatalf("scenario exercised no retries (delivered %d, retries %d)", st.Delivered, st.Retries)
	}

	snap := sink.Registry.Snapshot()
	hist := func(name string) obs.HistogramSnapshot {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q not registered", name)
		}
		return h
	}
	lat := hist("engine.latency_ms")
	wait := hist("engine.stage.queue_wait_ms")
	backoff := hist("engine.stage.backoff_ms")
	air := hist("engine.stage.air_ms")
	decode := hist("engine.stage.decode_ms")

	for name, h := range map[string]obs.HistogramSnapshot{
		"latency": lat, "queue_wait": wait, "backoff": backoff, "air": air, "decode": decode,
	} {
		if h.Count != st.Delivered {
			t.Errorf("%s histogram count %d, want Delivered %d", name, h.Count, st.Delivered)
		}
	}
	if decode.Sum != 0 {
		t.Errorf("decode sum %v in deterministic mode, want 0 (clock does not advance in Deliver)", decode.Sum)
	}
	if air.Sum <= 0 {
		t.Error("air sum is zero — no airtime accrued to sampled frames")
	}
	if backoff.Sum <= 0 {
		t.Errorf("backoff sum is zero despite %d retries", st.Retries)
	}
	stages := wait.Sum + backoff.Sum + air.Sum + decode.Sum
	if diff := math.Abs(stages - lat.Sum); diff > 1e-6*math.Max(1, lat.Sum) {
		t.Errorf("stage sums %.9f ms do not telescope to latency sum %.9f ms (diff %.9g)",
			stages, lat.Sum, diff)
	}

	// The ring tracer got one span per stage plus a deliver instant per
	// sampled frame; spot-check the span kinds arrived and carry durations.
	var spans, delivers int
	for _, ev := range sink.Tracer.Events() {
		switch ev.Kind {
		case obs.EvStageQueueWait, obs.EvStageBackoff, obs.EvStageAir, obs.EvStageDecode:
			spans++
			if ev.B < 0 {
				t.Fatalf("negative span duration: %+v", ev)
			}
		case obs.EvFrameDeliver:
			delivers++
		}
	}
	if spans == 0 || delivers == 0 {
		t.Errorf("tracer saw %d stage spans, %d delivers — want both nonzero", spans, delivers)
	}
}

// TestStageStatsQuantiles drives a sampled engine and sanity-checks the
// StageStats snapshot: counts, mean/quantile ordering, and the SampleEvery
// echo clients use to label the decomposition.
func TestStageStatsQuantiles(t *testing.T) {
	clk := &virtualClock{}
	e, err := New(Config{NumSTAs: 2, Clock: clk, SampleEvery: 2,
		Transport: &flakyTransport{every: 4}})
	if err != nil {
		t.Fatal(err)
	}
	driveDeterministic(e, clk, 300, 1000)

	ss := e.StageStats()
	if ss.SampleEvery != 2 {
		t.Errorf("SampleEvery echo %d, want 2", ss.SampleEvery)
	}
	if ss.SampledDelivered == 0 {
		t.Fatal("no sampled deliveries")
	}
	if ss.QueueWait.Count != ss.SampledDelivered || ss.Air.Count != ss.SampledDelivered {
		t.Errorf("stage counts %d/%d, want %d", ss.QueueWait.Count, ss.Air.Count, ss.SampledDelivered)
	}
	for name, d := range map[string]StageDist{
		"queue_wait": ss.QueueWait, "backoff": ss.Backoff, "air": ss.Air, "decode": ss.Decode,
	} {
		if d.MeanMs < 0 || d.P50Ms > d.P95Ms || d.P95Ms > d.P99Ms {
			t.Errorf("%s distribution not ordered: %+v", name, d)
		}
	}
	if ss.Air.MeanMs <= 0 {
		t.Error("air mean is zero — sampled frames accrued no airtime")
	}
}

// driveDeterministic single-threadedly submits frames+runs the plan loop to
// completion under the virtual clock — the in-package skeleton of
// RunDeterministic, usable when a test needs the *Engine afterwards.
func driveDeterministic(e *Engine, clk *virtualClock, frames, size int) {
	ctx := context.Background()
	var sc planScratch
	for i := 0; i < frames; i++ {
		for sta := 0; sta < e.cfg.NumSTAs; sta++ {
			_ = e.submitLocked(sta, size, nil, clk.now)
		}
		clk.now += 100 * time.Microsecond
	}
	for {
		if tx := e.buildPlanLocked(clk.now, &sc); tx != nil {
			ok, derr := e.cfg.Transport.Deliver(ctx, &tx.plan)
			clk.now += tx.plan.Airtime + tx.plan.ACKTime
			e.accountLocked(tx, ok, derr, clk.now, 0)
			continue
		}
		if d, ok := e.earliestEligibleLocked(clk.now); ok {
			if d <= 0 {
				d = 1
			}
			clk.now += d
			continue
		}
		return
	}
}

// TestSamplingDisabledNoExtraAllocs pins the hot path's allocation profile:
// enabling lifecycle sampling must add zero allocations per
// submit→plan→deliver→account cycle relative to the disabled path (whose
// only per-cycle allocation is the lossless oracle's verdict slice).
func TestSamplingDisabledNoExtraAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	measure := func(sample int) float64 {
		sink := &obs.Sink{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(1 << 10)}
		clk := &virtualClock{}
		e, err := New(Config{NumSTAs: 2, QueueCap: 64, Clock: clk, SampleEvery: sample, Obs: sink})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var sc planScratch
		cycle := func() {
			clk.now += 100 * time.Microsecond
			_ = e.submitLocked(0, 1000, nil, clk.now)
			_ = e.submitLocked(1, 800, nil, clk.now)
			for {
				tx := e.buildPlanLocked(clk.now, &sc)
				if tx == nil {
					break
				}
				ok, derr := e.cfg.Transport.Deliver(ctx, &tx.plan)
				clk.now += tx.plan.Airtime + tx.plan.ACKTime
				e.accountLocked(tx, ok, derr, clk.now, 0)
			}
		}
		for i := 0; i < 64; i++ { // warm queue rings and plan scratch
			cycle()
		}
		return testing.AllocsPerRun(500, cycle)
	}
	off := measure(0)
	on := measure(1)
	if on > off {
		t.Errorf("sampling added allocations: %.2f/cycle sampled vs %.2f/cycle disabled", on, off)
	}
	if off > 4 {
		t.Errorf("disabled path allocates %.2f/cycle — expected only the oracle verdict slice", off)
	}
}
