package engine

import (
	"errors"
	"fmt"
	"time"
)

// Station migration: the engine half of the cluster layer's roaming
// handoff (internal/cluster). ExtractSTA lifts one station's entire
// queued state — frames in FIFO order with their retry counts, plus the
// retry-backoff gate — out of this engine; InjectSTA splices it into
// another engine serving the same station space. The pair preserves
// per-STA FIFO exactly: frames leave in queue order, arrive in queue
// order, and a frame's retries/arrival stamps travel with it. Both
// engines must share one Clock so nextEligible stays in a single time
// domain.

// ErrSTAInFlight is returned by ExtractSTA while some of the station's
// frames ride an in-flight transmission: settlement would requeue into
// (or account against) a queue that just left. The failed call gates the
// station against further planning, so callers MUST retry until the
// extraction succeeds (the cluster's Roam loop does) — abandoning it
// would leave the station unscheduled.
var ErrSTAInFlight = errors.New("engine: station has frames in flight")

// ErrSTAOccupied is returned by InjectSTA when the target engine already
// holds frames (queued or in flight) for the station — injecting would
// interleave two queues and break FIFO.
var ErrSTAOccupied = errors.New("engine: station already has frames at target")

// MigratedFrame is one frame inside a StationState, in FIFO order.
type MigratedFrame struct {
	// Size is the frame's payload size; Payload its retained bytes (nil
	// for size-only frames — the bytes were copied out of the source
	// arena, so the state owns them).
	Size    int
	Payload []byte
	// Arrival is the frame's original admission stamp; Retries its
	// transmission attempts so far. Both survive the move so latency
	// accounting and the retry limit keep their meaning.
	Arrival time.Duration
	Retries int
}

// StationState is one station's portable queue state between engines.
type StationState struct {
	STA    int
	Frames []MigratedFrame
	// FailStreak and NextEligible carry the retry-backoff gate: a
	// station mid-backoff stays gated at its new AP.
	FailStreak   int
	NextEligible time.Duration
	// Offered records whether the station ever offered traffic here, so
	// fairness accounting at the target counts it.
	Offered bool
}

// ExtractSTA removes station sta's queued frames and backoff state from
// the engine, returning them for InjectSTA at another engine. It fails
// with ErrSTAInFlight while any of the station's frames ride an
// in-flight transmission, marking the station migrating so the planner
// boards no more of its frames and the caller's retry succeeds within
// one settlement. Retained payloads are
// copied out of the shard arena — the returned state owns its bytes.
// The source engine's cumulative counters (accepted, delivered, …) are
// untouched: a cluster rollup counts each frame's acceptance exactly
// once, at the engine that admitted it.
func (e *Engine) ExtractSTA(sta int) (*StationState, error) {
	if sta < 0 || sta >= e.cfg.NumSTAs {
		return nil, fmt.Errorf("engine: station %d outside 0..%d", sta, e.cfg.NumSTAs-1)
	}
	sh := e.shardOf(sta)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := &e.queues[sta]
	if e.inflightSTA[sta] != 0 {
		// Close the boarding gate: the planner skips migrating stations,
		// so the in-flight count strictly drains and the caller's next
		// attempt lands in a settled window instead of racing the planner.
		q.migrating = true
		return nil, ErrSTAInFlight
	}
	q.migrating = false
	st := &StationState{
		STA:          sta,
		FailStreak:   q.failStreak,
		NextEligible: q.nextEligible,
		Offered:      e.offered[sta],
	}
	n := q.len()
	if n > 0 {
		st.Frames = make([]MigratedFrame, 0, n)
		for q.len() > 0 {
			f := q.pop()
			mf := MigratedFrame{Size: f.size, Arrival: f.arrival, Retries: f.retries}
			if f.payload != nil {
				mf.Payload = append([]byte(nil), f.payload...)
			}
			sh.arena.release(f.chunk)
			st.Frames = append(st.Frames, mf)
		}
		sh.queued -= n
		e.totalPending.Add(int64(-n))
	}
	q.failStreak = 0
	q.nextEligible = 0
	return st, nil
}

// InjectSTA splices a migrated station into this engine: frames push in
// order with fresh lane admission sequences (migrated frames queue
// behind the target lane's existing backlog — the youngest admissions
// there), payloads re-alloc into the target arena when the engine
// retains them, and the backoff gate restores. The station's queue must
// be empty here with nothing in flight (ErrSTAOccupied otherwise).
// Admission control is NOT re-applied: the frames were admitted once at
// the source, so QueueCap does not bound the splice and no counter
// increments.
func (e *Engine) InjectSTA(st *StationState) error {
	sta := st.STA
	if sta < 0 || sta >= e.cfg.NumSTAs {
		return fmt.Errorf("engine: station %d outside 0..%d", sta, e.cfg.NumSTAs-1)
	}
	sh := e.shardOf(sta)
	sh.mu.Lock()
	q := &e.queues[sta]
	if q.len() > 0 || e.inflightSTA[sta] != 0 {
		sh.mu.Unlock()
		return ErrSTAOccupied
	}
	for _, mf := range st.Frames {
		f := qframe{seq: sh.seq, size: mf.Size, arrival: mf.Arrival, retries: mf.Retries}
		if e.cfg.RetainPayloads && mf.Payload != nil {
			f.payload, f.chunk = sh.arena.alloc(mf.Payload)
		}
		q.pushHint(f, e.cfg.QueueCap)
		sh.seq++
	}
	n := len(st.Frames)
	sh.queued += n
	e.totalPending.Add(int64(n))
	q.failStreak = st.FailStreak
	q.nextEligible = st.NextEligible
	e.offered[sta] = e.offered[sta] || st.Offered
	sh.mu.Unlock()
	if n > 0 {
		e.markDirty(sh.id) // new backlog: publish the lane
	}
	return nil
}
