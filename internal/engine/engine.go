// Package engine is the real-time AP downlink aggregation engine: the
// serving-path counterpart of the discrete-event simulator in
// internal/mac. It ingests frames destined to many stations through an
// in-process API (or the length-prefixed wire frontend in cmd/carpoold),
// holds per-STA bounded queues with admission control and backpressure,
// and runs an aggregation scheduler that groups queued frames into
// Carpool transmissions — respecting the 48-bit coded-Bloom A-HDR
// receiver capacity, per-STA MCS, the aggregate byte ceiling, and an
// airtime budget — then drives delivery on a worker pool: either a
// mac.DeliveryOracle (the fast path) or the full TX→channel→RX PHY
// pipeline (internal/core, internal/phy). Failed subframes retry with
// per-STA capped exponential backoff and sequential-ACK bookkeeping.
//
// Admission is sharded (DESIGN.md §14): stations hash across
// Config.AdmissionShards independent lanes, each with its own lock,
// payload-arena lease, and admission sequence, so parallel submitters
// stop convoying on a single engine mutex. Workers drain the lanes with
// a rotating scan over a per-shard dirty bitmap; a STA maps to exactly
// one shard, so per-STA FIFO and retry-requeue-at-head are unchanged.
//
// Two execution modes share every line of scheduling, retry, and
// accounting code: the concurrent real-time mode (Start/Submit/Drain) and
// a single-threaded deterministic mode (RunDeterministic) with an
// injected virtual clock, whose delivered-bytes and fairness results are
// differentially compared against the internal/mac oracle by
// internal/conform's engine-vs-macsim pair.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/mac"
	"carpool/internal/obs"
	"carpool/internal/phy"
)

// Typed admission-control errors returned by Submit.
var (
	// ErrQueueFull signals backpressure: the station's bounded queue is at
	// capacity and the frame was rejected.
	ErrQueueFull = errors.New("engine: station queue full")
	// ErrDraining rejects new work once a graceful drain has begun.
	ErrDraining = errors.New("engine: draining")
	// ErrClosed rejects work after the engine has stopped.
	ErrClosed = errors.New("engine: closed")
	// ErrOversize rejects frames larger than the aggregate byte ceiling,
	// which could never be scheduled.
	ErrOversize = errors.New("engine: frame exceeds MaxAggBytes")
)

// Strategy selects the engine's loss-repair discipline.
type Strategy int

const (
	// StrategyRetry is the paper's shared-fate ARQ: a failed subframe's
	// frames requeue at the head and retransmit under capped exponential
	// backoff. The default.
	StrategyRetry Strategy = iota
	// StrategyFEC codes across the subframes of each aggregate: the
	// planner appends FECParity erasure-coded parity subframes (XOR for
	// one, Reed-Solomon over GF(256) beyond), and a receiver that loses
	// its own subframe rebuilds it from the shards it overheard — no
	// retransmission. Loss beyond parity's reach falls back to the
	// shared-fate retry path, so the two strategies degrade into each
	// other rather than diverge.
	StrategyFEC
)

// Config parameterizes an engine.
type Config struct {
	// NumSTAs is the number of stations the engine serves.
	NumSTAs int
	// QueueCap bounds each station's queue in frames (default 300, the
	// simulator's default): the admission threshold past which Submit
	// returns ErrQueueFull.
	QueueCap int
	// MaxReceivers caps distinct destinations per transmission; bounded
	// by the 48-bit coded-Bloom A-HDR capacity (default and ceiling:
	// bloom.MaxReceivers).
	MaxReceivers int
	// MaxAggBytes caps one aggregate's total payload (default 64 KiB).
	MaxAggBytes int
	// AirtimeBudget caps one transmission's data airtime; zero is
	// unlimited. A plan always admits at least one frame for progress.
	AirtimeBudget time.Duration
	// MaxLatency, when nonzero, expires queued frames that waited longer.
	MaxLatency time.Duration
	// RetryLimit per frame (default 7, the 802.11 long retry limit).
	RetryLimit int
	// BackoffBase and BackoffCap shape the per-STA capped exponential
	// retry backoff: after k consecutive failed transmissions a station
	// is ineligible for min(BackoffBase<<(k-1), BackoffCap). Defaults
	// 100µs and 10ms.
	BackoffBase, BackoffCap time.Duration
	// Strategy selects the loss-repair discipline (StrategyRetry default).
	Strategy Strategy
	// FECParity is the number of parity subframes appended to each
	// aggregate under StrategyFEC (default 1: plain XOR parity; more
	// selects Reed-Solomon). Parity slots count against the A-HDR
	// receiver capacity, so FECParity must leave room for at least one
	// data subframe under MaxReceivers. Setting it without StrategyFEC
	// is a configuration error.
	FECParity int
	// MCS is each station's modulation-and-coding scheme; nil selects
	// phy.MCS48 for all, a short slice extends with its last entry.
	MCS []phy.MCS
	// Transport delivers planned aggregates; nil selects a lossless
	// OracleTransport.
	Transport Transport
	// Workers sizes the delivery worker pool (default GOMAXPROCS-style 1
	// minimum; deterministic mode always uses a single thread).
	Workers int
	// AdmissionShards sets the number of independent admission lanes
	// stations hash across (sta % P): each lane has its own lock, payload
	// arena, and admission sequence, so parallel submitters to different
	// lanes never contend. Zero selects min(GOMAXPROCS, NumSTAs/4) — the
	// planner aggregates within a lane, so the default keeps at least
	// four stations per lane and cross-STA carpooling intact; an explicit
	// value is clamped to NumSTAs only. One shard reproduces the
	// pre-shard engine exactly — the deterministic runners force it, and
	// the sharded-vs-unsharded conformance pair holds single-shard Stats
	// byte-identical while requiring multi-shard runs to match on per-STA
	// delivered bytes and fairness. Cross-STA global FIFO is per-lane
	// when P > 1 (per-STA FIFO is exact at any P, since a STA maps to
	// exactly one lane).
	AdmissionShards int
	// RetainPayloads keeps submitted frame bytes in the queue so the
	// transport can put the real payload on the air (PHY transport).
	// Off, the engine accounts sizes only — the fast serving path.
	RetainPayloads bool
	// PaceAirtime makes workers hold each plan for its computed air
	// occupancy (airtime + sequential ACKs), approximating channel
	// pacing in real time. Off, the engine runs as fast as hardware
	// allows.
	PaceAirtime bool
	// Clock overrides the time source (tests); nil selects a monotonic
	// wall clock anchored at New.
	Clock Clock
	// Obs receives engine metrics; nil falls back to the globally
	// enabled sink at New time.
	Obs *obs.Sink
	// SampleEvery enables deterministic 1-in-N frame-lifecycle tracing:
	// every Nth admitted frame (by per-shard admission sequence) carries
	// stage timestamps through admit → plan → TX attempts → terminal
	// disposition, feeding the engine.stage.* histograms, StageStats,
	// and Chrome trace spans. Zero (the default) disables sampling; the
	// disabled path adds no clock reads, allocations, or obs traffic to
	// the serving hot path, and sampling never changes Stats (asserted
	// bit-identical by the batched-vs-unbatched conform pair).
	SampleEvery int
}

func (c Config) withDefaults() (Config, error) {
	if c.NumSTAs < 1 {
		return c, fmt.Errorf("engine: need at least one STA, got %d", c.NumSTAs)
	}
	if c.QueueCap == 0 {
		c.QueueCap = 300
	}
	if c.QueueCap < 1 {
		return c, fmt.Errorf("engine: non-positive QueueCap %d", c.QueueCap)
	}
	if c.MaxReceivers == 0 {
		c.MaxReceivers = bloom.MaxReceivers
	}
	if c.MaxReceivers < 1 || c.MaxReceivers > bloom.MaxReceivers {
		return c, fmt.Errorf("engine: MaxReceivers %d outside 1..%d (A-HDR capacity)",
			c.MaxReceivers, bloom.MaxReceivers)
	}
	if c.MaxAggBytes == 0 {
		c.MaxAggBytes = 64 << 10
	}
	switch c.Strategy {
	case StrategyRetry:
		if c.FECParity != 0 {
			return c, fmt.Errorf("engine: FECParity %d set without StrategyFEC", c.FECParity)
		}
	case StrategyFEC:
		if c.FECParity == 0 {
			c.FECParity = 1
		}
		if c.FECParity < 0 || c.FECParity >= c.MaxReceivers {
			return c, fmt.Errorf("engine: FECParity %d must leave a data slot under MaxReceivers %d",
				c.FECParity, c.MaxReceivers)
		}
	default:
		return c, fmt.Errorf("engine: unknown strategy %d", c.Strategy)
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = mac.DefaultRetryLimit
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Microsecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 10 * time.Millisecond
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.AdmissionShards < 0 {
		return c, fmt.Errorf("engine: negative AdmissionShards %d", c.AdmissionShards)
	}
	if c.AdmissionShards == 0 {
		// Keep at least four stations per lane: plans are built per lane,
		// so oversharding a small station set would strip the cross-STA
		// aggregation the whole system exists to exploit.
		c.AdmissionShards = min(runtime.GOMAXPROCS(0), max(1, c.NumSTAs/4))
	}
	if c.AdmissionShards > c.NumSTAs {
		c.AdmissionShards = c.NumSTAs
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("engine: negative SampleEvery %d", c.SampleEvery)
	}
	mcs := make([]phy.MCS, c.NumSTAs)
	for i := range mcs {
		switch {
		case i < len(c.MCS):
			mcs[i] = c.MCS[i]
		case len(c.MCS) > 0:
			mcs[i] = c.MCS[len(c.MCS)-1]
		default:
			mcs[i] = phy.MCS48
		}
		if !mcs[i].Valid() {
			return c, fmt.Errorf("engine: invalid MCS for STA %d", i)
		}
	}
	c.MCS = mcs
	if c.Transport == nil {
		if c.Strategy == StrategyFEC {
			c.Transport = &CodedOracleTransport{}
		} else {
			c.Transport = &OracleTransport{}
		}
	}
	if c.Strategy == StrategyFEC {
		if _, ok := c.Transport.(FECTransport); !ok {
			return c, fmt.Errorf("engine: StrategyFEC needs an FEC-capable transport, %T has no DeliverFEC", c.Transport)
		}
	}
	return c, nil
}

// Engine is a running (or deterministically stepped) AP downlink engine.
type Engine struct {
	cfg   Config
	rates mac.Rates

	// mu guards only the worker-park machinery (cond, waiting, wakeups),
	// the start latch, and the deterministic rotation cursor — admission
	// state lives under the per-shard locks. Lock order: a shard lock may
	// be held when taking e.mu (markDirty's wake path); never the
	// reverse.
	mu      sync.Mutex
	cond    *sync.Cond
	waiting int
	wakeups int64
	started bool

	// shards are the admission lanes; dirty is the per-shard "has work"
	// bitmap workers scan (one bit per shard).
	shards []shard
	dirty  []atomic.Uint64

	// STA-indexed state, global for O(1) addressing; entry sta is guarded
	// by shard sta%P's lock.
	queues         []staQueue
	deliveredBytes []int64
	offered        []bool
	// inflightSTA counts each station's frames currently riding an
	// in-flight transmission (popped by the planner, not yet settled).
	// Guarded by the owning shard's lock like the other per-STA arrays;
	// ExtractSTA refuses to migrate a station while its count is nonzero.
	inflightSTA []int32

	txSeq        atomic.Uint64 // next transmission sequence number
	totalPending atomic.Int64  // queued + in-flight frames across all shards
	inFlight     atomic.Int64  // transmissions out for delivery
	draining     atomic.Bool
	closed       atomic.Bool

	// detRot is the deterministic runners' shard rotation cursor (the
	// single-threaded twin of each worker's private cursor).
	detRot int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	clock Clock
	eobs  engObs

	// sampleN caches cfg.SampleEvery for the admission fast path.
	sampleN uint64
	// fecK caches cfg.FECParity (0 under StrategyRetry) for the planner
	// and delivery hot paths.
	fecK int
}

// New validates cfg and returns an engine ready for Start (real-time) or
// for the deterministic runner. Observability handles resolve once here.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = NewWallClock()
	}
	sink := cfg.Obs
	if sink == nil {
		sink = obs.Active()
	}
	e := &Engine{
		cfg:            cfg,
		rates:          mac.DefaultRates(),
		shards:         make([]shard, cfg.AdmissionShards),
		dirty:          make([]atomic.Uint64, (cfg.AdmissionShards+63)/64),
		queues:         make([]staQueue, cfg.NumSTAs),
		clock:          clk,
		eobs:           resolveEngObs(sink),
		sampleN:        uint64(cfg.SampleEvery),
		fecK:           cfg.FECParity,
		deliveredBytes: make([]int64, cfg.NumSTAs),
		offered:        make([]bool, cfg.NumSTAs),
		inflightSTA:    make([]int32, cfg.NumSTAs),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.id = i
		sh.lat = newLatHist()
		sh.stage = newStageAcc()
	}
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

// NumSTAs returns the station-space size the engine was configured with.
func (e *Engine) NumSTAs() int { return e.cfg.NumSTAs }

// Start launches the delivery worker pool. The engine runs until Drain
// completes or Close aborts it; ctx cancellation is equivalent to Close.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("engine: already started")
	}
	if e.closed.Load() {
		return ErrClosed
	}
	e.started = true
	e.ctx, e.cancel = context.WithCancel(ctx)
	// A cancelled context must wake sleeping workers and waiters.
	context.AfterFunc(e.ctx, func() {
		e.mu.Lock()
		e.wakeLocked()
		e.mu.Unlock()
	})
	e.wg.Add(e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		go e.worker(w % len(e.shards))
	}
	return nil
}

// Submit offers one frame for station sta, copying payload only when the
// engine retains payloads. It applies admission control and returns a
// typed error — ErrQueueFull (backpressure), ErrDraining, ErrClosed, or
// ErrOversize — without blocking.
func (e *Engine) Submit(sta int, payload []byte) error {
	return e.submit(sta, len(payload), payload)
}

// SubmitSize offers a size-only frame: the fast ingest path when the
// transport does not need real bytes.
func (e *Engine) SubmitSize(sta, size int) error {
	return e.submit(sta, size, nil)
}

func (e *Engine) submit(sta, size int, payload []byte) error {
	now := e.clock.Now()
	sh := e.shardOf(sta)
	sh.mu.Lock()
	err := e.submitShardLocked(sh, sta, size, payload, now)
	wentNonEmpty := err == nil && e.queues[sta].len() == 1
	sh.mu.Unlock()
	if wentNonEmpty {
		e.markDirty(sh.id) // queue went non-empty: publish the lane
	}
	return err
}

// BatchItem is one frame in a batched submission: a station index plus
// either real payload bytes or (Payload nil) a size-only frame.
type BatchItem struct {
	STA     int
	Size    int // ignored when Payload is non-nil
	Payload []byte
}

// SubmitBatch offers many frames with at most one lock acquisition per
// touched admission lane and at most one worker wakeup per lane — the
// batch counterpart of Submit/SubmitSize that the slab wire frontend and
// open-loop load generator drive. A mixed-STA batch is bucketed into
// shard-local sub-batches first (pooled scratch, no allocation), so the
// TCP path goes zero-copy slab → shard lane without any global lock.
// Admission control runs per item with the same typed errors as Submit;
// the batch continues past rejected items. It returns the number accepted
// and the first admission error in batch order (nil when every item was
// accepted).
func (e *Engine) SubmitBatch(items []BatchItem) (int, error) {
	now := e.clock.Now()
	if len(e.shards) == 1 {
		sh := &e.shards[0]
		sh.mu.Lock()
		accepted, wentNonEmpty, firstErr := e.submitBatchShardLocked(sh, items, now)
		sh.mu.Unlock()
		if wentNonEmpty {
			e.markDirty(0)
		}
		return accepted, firstErr
	}

	sc := batchScratchPool.Get().(*batchScratch)
	if len(sc.buckets) < len(e.shards) {
		sc.buckets = make([][]int32, len(e.shards))
	}
	buckets := sc.buckets[:len(e.shards)]
	for i, it := range items {
		s := 0
		if it.STA >= 0 && it.STA < e.cfg.NumSTAs {
			s = it.STA % len(e.shards)
		}
		buckets[s] = append(buckets[s], int32(i))
	}

	accepted := 0
	errIdx := len(items)
	var firstErr error
	for s := range buckets {
		idxs := buckets[s]
		if len(idxs) == 0 {
			continue
		}
		sh := &e.shards[s]
		a, wentNonEmpty, shErr, shIdx := e.submitIndexedShard(sh, items, idxs, now)
		accepted += a
		if shErr != nil && shIdx < errIdx {
			errIdx, firstErr = shIdx, shErr
		}
		if wentNonEmpty {
			e.markDirty(s)
		}
		buckets[s] = idxs[:0]
	}
	batchScratchPool.Put(sc)
	return accepted, firstErr
}

// submitIndexedShard admits the batch items selected by idxs (ascending
// original positions) under one acquisition of sh's lock, returning the
// first error and its batch position so SubmitBatch can report the
// globally first failure.
func (e *Engine) submitIndexedShard(sh *shard, items []BatchItem, idxs []int32, now time.Duration) (accepted int, wentNonEmpty bool, firstErr error, errIdx int) {
	errIdx = len(items)
	sh.mu.Lock()
	for _, i := range idxs {
		it := &items[i]
		size := it.Size
		if it.Payload != nil {
			size = len(it.Payload)
		}
		if err := e.submitShardLocked(sh, it.STA, size, it.Payload, now); err != nil {
			if firstErr == nil {
				firstErr, errIdx = err, int(i)
			}
			continue
		}
		accepted++
		if e.queues[it.STA].len() == 1 {
			wentNonEmpty = true
		}
	}
	sh.mu.Unlock()
	return accepted, wentNonEmpty, firstErr, errIdx
}

// submitBatchShardLocked admits a batch whose items all belong to sh,
// reporting whether any station queue transitioned empty → non-empty
// (the wake-coalescing signal). Caller holds sh.mu (or is
// single-threaded, as in the deterministic runner).
func (e *Engine) submitBatchShardLocked(sh *shard, items []BatchItem, now time.Duration) (accepted int, wentNonEmpty bool, firstErr error) {
	for _, it := range items {
		size := it.Size
		if it.Payload != nil {
			size = len(it.Payload)
		}
		if err := e.submitShardLocked(sh, it.STA, size, it.Payload, now); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
		if e.queues[it.STA].len() == 1 {
			wentNonEmpty = true
		}
	}
	return accepted, wentNonEmpty, firstErr
}

// submitBatchLocked is the single-threaded batch admission used by the
// deterministic runners, which own the engine exclusively: items route to
// their shards without locking.
func (e *Engine) submitBatchLocked(items []BatchItem, now time.Duration) (accepted int, wentNonEmpty bool, firstErr error) {
	for _, it := range items {
		size := it.Size
		if it.Payload != nil {
			size = len(it.Payload)
		}
		if err := e.submitLocked(it.STA, size, it.Payload, now); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
		if e.queues[it.STA].len() == 1 {
			wentNonEmpty = true
		}
	}
	return accepted, wentNonEmpty, firstErr
}

// submitLocked is the single-threaded admission form used by the
// deterministic runners and tests: route to the owning shard, no locks.
func (e *Engine) submitLocked(sta, size int, payload []byte, now time.Duration) error {
	return e.submitShardLocked(e.shardOf(sta), sta, size, payload, now)
}

// submitShardLocked is the admission-control core shared by the
// real-time and deterministic modes. Caller holds sh.mu (or is
// single-threaded); sta, when in range, must belong to sh.
func (e *Engine) submitShardLocked(sh *shard, sta, size int, payload []byte, now time.Duration) error {
	if sta < 0 || sta >= e.cfg.NumSTAs {
		return fmt.Errorf("engine: station %d outside 0..%d", sta, e.cfg.NumSTAs-1)
	}
	if size <= 0 {
		return fmt.Errorf("engine: non-positive frame size %d", size)
	}
	e.offered[sta] = true
	if e.closed.Load() {
		return ErrClosed
	}
	if e.draining.Load() {
		sh.rejected++
		e.eobs.rejected.Inc()
		return ErrDraining
	}
	if size > e.cfg.MaxAggBytes {
		sh.rejected++
		e.eobs.rejected.Inc()
		return ErrOversize
	}
	q := &e.queues[sta]
	if q.len() >= e.cfg.QueueCap {
		sh.rejected++
		e.eobs.rejected.Inc()
		e.eobs.qDropped.Inc()
		e.eobs.qBackpressure.Inc()
		return ErrQueueFull
	}
	var chunk *arenaChunk
	if e.cfg.RetainPayloads && payload != nil {
		payload, chunk = sh.arena.alloc(payload)
	} else {
		payload = nil
	}
	f := qframe{seq: sh.seq, size: size, arrival: now, payload: payload, chunk: chunk}
	if e.sampleN > 0 && sh.seq%e.sampleN == 0 {
		// Deterministic 1-in-N lifecycle sampling keyed on the shard's
		// admission sequence, so the same workload samples the same frames
		// in every mode (real-time, deterministic, batched).
		f.sampled = true
		f.lastTouch = now
	}
	q.pushHint(f, e.cfg.QueueCap)
	sh.seq++
	sh.queued++
	sh.accepted++
	e.totalPending.Add(1)
	e.eobs.accepted.Inc()
	return nil
}

// expireShardLocked drops the shard's queued frames older than
// MaxLatency. Arrivals are monotone from each queue head, so the sweep
// stops at the first frame still inside the bound. Caller holds sh.mu.
func (e *Engine) expireShardLocked(sh *shard, now time.Duration) {
	if e.cfg.MaxLatency <= 0 {
		return
	}
	for sta := sh.id; sta < e.cfg.NumSTAs; sta += len(e.shards) {
		q := &e.queues[sta]
		for q.len() > 0 && now-q.headFrame().arrival > e.cfg.MaxLatency {
			f := q.pop()
			sh.arena.release(f.chunk)
			sh.queued--
			sh.expired++
			e.totalPending.Add(-1)
			e.eobs.expired.Inc()
			e.eobs.qExpired.Inc()
			e.eobs.tracer.Emit(obs.EvQueueExpiry, int64(sta), 0)
			if f.sampled {
				// Expiry terminates the span without a stage export: the
				// frame never left the queue, so its whole life was wait.
				e.eobs.tracer.EmitAt(int64(now), obs.EvFrameDrop, int64(sta), int64(f.retries))
			}
		}
	}
}

// expireLocked is the single-threaded all-shards sweep the deterministic
// runners use.
func (e *Engine) expireLocked(now time.Duration) {
	for i := range e.shards {
		e.expireShardLocked(&e.shards[i], now)
	}
}

// earliestEligibleShardLocked returns the wait until the shard's soonest
// backed-off station with backlog becomes eligible; ok is false when no
// station is both backlogged and backing off. Caller holds sh.mu.
func (e *Engine) earliestEligibleShardLocked(sh *shard, now time.Duration) (time.Duration, bool) {
	best, ok := time.Duration(0), false
	for sta := sh.id; sta < e.cfg.NumSTAs; sta += len(e.shards) {
		q := &e.queues[sta]
		if q.len() == 0 || q.nextEligible <= now {
			continue
		}
		if d := q.nextEligible - now; !ok || d < best {
			best, ok = d, true
		}
	}
	return best, ok
}

// earliestEligibleLocked is the single-threaded all-shards minimum.
func (e *Engine) earliestEligibleLocked(now time.Duration) (time.Duration, bool) {
	best, ok := time.Duration(0), false
	for i := range e.shards {
		if d, shOk := e.earliestEligibleShardLocked(&e.shards[i], now); shOk && (!ok || d < best) {
			best, ok = d, true
		}
	}
	return best, ok
}

// backoffAfter returns the capped exponential backoff after streak
// consecutive failures (streak >= 1).
func (e *Engine) backoffAfter(streak int) time.Duration {
	d := e.cfg.BackoffBase
	for i := 1; i < streak; i++ {
		d <<= 1
		if d >= e.cfg.BackoffCap {
			return e.cfg.BackoffCap
		}
	}
	return min(d, e.cfg.BackoffCap)
}

// accountShardLocked applies one transmission's outcome on its shard:
// delivery accounting, per-frame retry bookkeeping with requeue-at-head,
// retry-limit drops, per-STA backoff, and the sequential-ACK ledger.
// Every STA in the plan belongs to sh, so one shard lock covers the whole
// settlement. okPerSub may be nil (transport error): every subframe is
// then treated as undelivered. deliverDur is the wall time the worker
// spent inside Transport.Deliver, attributed to sampled frames' decode
// stage (zero in deterministic mode, where the virtual clock does not
// advance during delivery, and zero when the transmission carried no
// sampled frames). Caller holds sh.mu (or is single-threaded).
func (e *Engine) accountShardLocked(sh *shard, tx *pendingTx, okPerSub []bool, derr error, now, deliverDur time.Duration) {
	plan := &tx.plan
	txAir := plan.Airtime + plan.ACKTime
	// dataSubs is the receiver-facing subframe count; trailing parity
	// subframes (StrategyFEC) are accounted separately so every
	// retry-mode counter is untouched by the FEC machinery.
	dataSubs := plan.DataSubs
	if dataSubs == 0 {
		dataSubs = len(plan.Subs)
	}
	sh.txN++
	sh.subN += int64(dataSubs)
	sh.seqAcks += int64(dataSubs)
	sh.busy += plan.Airtime + plan.ACKTime
	e.eobs.tx.Inc()
	e.eobs.aggSubframes.Add(int64(dataSubs))
	e.eobs.seqAcks.Add(int64(dataSubs))
	e.eobs.airtimeUs.Add(int64((plan.Airtime + plan.ACKTime) / time.Microsecond))
	e.eobs.groupSize.Observe(float64(dataSubs))
	e.eobs.tracer.Emit(obs.EvAggTX, int64(dataSubs), 0)
	e.eobs.tracer.Emit(obs.EvSeqACK, int64(dataSubs), 0)
	if n := len(plan.Subs) - dataSubs; n > 0 {
		sh.fecParityTx += int64(n)
		e.eobs.fecParityTx.Add(int64(n))
	}
	if derr != nil {
		e.eobs.transportErrs.Inc()
	}

	for i := 0; i < dataSubs; i++ {
		sub := &plan.Subs[i]
		q := &e.queues[sub.STA]
		// Settlement is the subframe's terminal moment for migration
		// purposes: delivered, dropped, and requeued frames alike stop
		// being in flight here (requeued ones are back in the queue and
		// travel with an ExtractSTA).
		e.inflightSTA[sub.STA] -= int32(len(tx.frames[i]))
		delivered := derr == nil && okPerSub != nil && okPerSub[i]
		if delivered {
			if tx.recovered != nil && tx.recovered[i] {
				// Lost on the air, rebuilt from parity: delivery without a
				// retransmission — the whole point of the erasure layer.
				sh.fecRecovered++
				e.eobs.fecRecovered.Inc()
			}
			q.failStreak = 0
			q.nextEligible = 0
			for _, f := range tx.frames[i] {
				sh.arena.release(f.chunk)
				sh.delivered++
				e.totalPending.Add(-1)
				e.deliveredBytes[sub.STA] += int64(f.size)
				latMs := (now - f.arrival).Seconds() * 1e3
				sh.lat.observe(latMs)
				e.eobs.delivered.Inc()
				e.eobs.latencyMs.Observe(latMs)
				if f.sampled {
					e.sampledDeliveredLocked(sh, sub.STA, &f, txAir, deliverDur, now)
				}
			}
			continue
		}
		// Shared fate: every frame of the subframe failed together. Under
		// StrategyFEC this is the fallback — the loss exceeded what parity
		// could repair (or reconstruction produced wrong bytes).
		if e.fecK > 0 && derr == nil && okPerSub != nil {
			sh.fecDecodeFail++
			e.eobs.fecDecodeFail.Inc()
		}
		kept := tx.frames[i][:0]
		for _, f := range tx.frames[i] {
			f.retries++
			sh.retriesN++
			e.eobs.retries.Inc()
			if f.retries > e.cfg.RetryLimit {
				sh.arena.release(f.chunk)
				sh.dropped++
				e.totalPending.Add(-1)
				e.eobs.dropped.Inc()
				e.eobs.qDropped.Inc()
				if f.sampled {
					e.eobs.tracer.EmitAt(int64(now), obs.EvFrameDrop, int64(sub.STA), int64(f.retries))
				}
				continue
			}
			if f.sampled {
				// The attempt's airtime and decode wall time accrue before
				// the frame re-enters the queue for its next pop.
				f.airAcc += txAir
				f.decodeAcc += deliverDur
				f.lastTouch = now
			}
			kept = append(kept, f)
		}
		q.requeue(kept)
		sh.queued += len(kept)
		q.failStreak++
		q.nextEligible = now + e.backoffAfter(q.failStreak)
	}
	e.eobs.qDepth.Set(float64(e.totalPending.Load()))
}

// accountLocked is the single-threaded settlement form the deterministic
// runners and tests use: the transmission's shard is settled directly.
func (e *Engine) accountLocked(tx *pendingTx, okPerSub []bool, derr error, now, deliverDur time.Duration) {
	e.accountShardLocked(&e.shards[tx.shard], tx, okPerSub, derr, now, deliverDur)
}

// waitLocked blocks on the condvar with the sleeper census maintained, so
// wakeLocked can skip broadcasting into an empty room. Caller holds e.mu.
func (e *Engine) waitLocked() {
	e.waiting++
	e.cond.Wait()
	e.waiting--
}

// wakeLocked coalesces condvar wakeups: a broadcast is issued only when a
// worker or Drain is actually parked, and every broadcast is counted so
// the drain tests can assert the total stays proportional to useful work
// (no wakeup storm). Always a Broadcast, never a Signal: workers and Drain
// share the condvar, and a Signal consumed by the "wrong" waiter would be
// a lost wakeup. Caller holds e.mu.
func (e *Engine) wakeLocked() {
	if e.waiting > 0 {
		e.wakeups++
		e.cond.Broadcast()
	}
}

// nextPlan is a worker's rotating scan over the dirty bitmap: claim a
// published shard, expire and plan it under that shard's lock alone, and
// re-publish it when backlog remains (so sibling workers can interleave
// on the same lane, and so a partially drained lane is never lost). A
// planless shard with ineligible backlog arms the shard's backoff timer,
// which re-publishes the lane when its earliest retry gate opens. Returns
// nil when no published shard yields a plan; *rot advances so successive
// calls spread across lanes instead of convoying on shard 0.
func (e *Engine) nextPlan(rot *int, sc *planScratch) *pendingTx {
	P := len(e.shards)
	for k := 0; k < P; k++ {
		i := (*rot + k) % P
		if !e.claimDirty(i) {
			continue
		}
		sh := &e.shards[i]
		sh.mu.Lock()
		now := e.clock.Now()
		e.expireShardLocked(sh, now)
		tx := e.buildPlanShardLocked(sh, now, sc)
		if tx == nil {
			if d, ok := e.earliestEligibleShardLocked(sh, now); ok {
				e.armShardTimerLocked(sh, now, d)
			}
			sh.mu.Unlock()
			continue
		}
		backlog := sh.queued > 0
		sh.mu.Unlock()
		if backlog {
			e.markDirty(i)
		}
		*rot = (i + 1) % P
		return tx
	}
	return nil
}

// worker is one delivery-pool goroutine: claim a dirty shard and build a
// plan under that shard's lock, deliver it outside any lock, settle the
// outcome back on the shard. Workers start their rotating scans at
// staggered offsets so an idle pool fans out across lanes.
func (e *Engine) worker(rot int) {
	defer e.wg.Done()
	var sc planScratch
	for {
		if e.ctx.Err() != nil {
			return
		}
		tx := e.nextPlan(&rot, &sc)
		if tx == nil {
			e.mu.Lock()
			if e.ctx.Err() != nil {
				e.mu.Unlock()
				return
			}
			if e.draining.Load() && e.totalPending.Load() == 0 && e.inFlight.Load() == 0 {
				e.wakeLocked() // wake Drain and sibling workers
				e.mu.Unlock()
				return
			}
			if e.anyDirty() {
				e.mu.Unlock() // published while we were scanning: rescan
				continue
			}
			e.waitLocked()
			e.mu.Unlock()
			continue
		}
		e.inFlight.Add(1)

		// The delivery-duration clock reads run only when the transmission
		// carries sampled frames, keeping the unsampled hot path free of
		// extra time syscalls.
		var okPerSub []bool
		var derr error
		var deliverDur time.Duration
		if tx.sampled > 0 {
			t0 := e.clock.Now()
			okPerSub, tx.recovered, derr = e.deliver(e.ctx, &tx.plan)
			deliverDur = e.clock.Now() - t0
		} else {
			okPerSub, tx.recovered, derr = e.deliver(e.ctx, &tx.plan)
		}
		if e.cfg.PaceAirtime {
			e.pace(tx.plan.Airtime + tx.plan.ACKTime)
		}

		sh := &e.shards[tx.shard]
		sh.mu.Lock()
		e.accountShardLocked(sh, tx, okPerSub, derr, e.clock.Now(), deliverDur)
		backlog := sh.queued > 0
		sh.mu.Unlock()
		e.inFlight.Add(-1)
		if backlog {
			e.markDirty(tx.shard) // requeued or residual frames: republish
		}
		if e.draining.Load() && e.totalPending.Load() == 0 && e.inFlight.Load() == 0 {
			e.mu.Lock()
			e.wakeLocked() // drain complete: wake Drain
			e.mu.Unlock()
		}
	}
}

// pace holds the worker for the plan's air occupancy, honouring shutdown.
func (e *Engine) pace(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-e.ctx.Done():
	}
}

// Drain performs a graceful shutdown: new submissions are rejected with
// ErrDraining, queued and in-flight frames are delivered (or exhaust
// their retries), then the worker pool exits. It returns ctx.Err() if the
// deadline expires first; the engine is stopped either way.
func (e *Engine) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		e.mu.Lock()
		e.wakeLocked()
		e.mu.Unlock()
	})
	defer stop()

	e.mu.Lock()
	if !e.started {
		e.draining.Store(true)
		e.closed.Store(true)
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()

	e.draining.Store(true)
	// Shard-lock barrier: any submit that read draining=false holds its
	// shard lock until its totalPending increment lands, so after one
	// lock/unlock round per shard every straggler is either counted in
	// totalPending or rejected — the wait loop below can't miss a frame.
	for i := range e.shards {
		e.shards[i].mu.Lock()
		e.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}

	e.mu.Lock()
	// One broadcast flips every parked worker into drain mode; all further
	// drain-progress wakeups are coalesced through wakeLocked.
	e.wakeLocked()
	for (e.totalPending.Load() > 0 || e.inFlight.Load() > 0) && ctx.Err() == nil && e.ctx.Err() == nil {
		e.waitLocked()
	}
	err := ctx.Err()
	e.mu.Unlock()

	e.cancel() // workers have drained (or the deadline hit): stop the pool
	e.wg.Wait()
	e.stopShardTimers()
	e.closed.Store(true)
	return err
}

// Stopped reports whether the engine has fully stopped (drain completed
// or Close returned) — the telemetry pusher's cue to emit one final
// update and end a subscribe stream.
func (e *Engine) Stopped() bool {
	return e.closed.Load()
}

// Close aborts immediately: queued frames are discarded, workers stop as
// soon as their current delivery returns. Safe to call more than once and
// after Drain.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.started || e.closed.Load() {
		e.draining.Store(true)
		e.closed.Store(true)
		e.mu.Unlock()
		return
	}
	e.closed.Store(true)
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
	e.stopShardTimers()
}
