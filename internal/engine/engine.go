// Package engine is the real-time AP downlink aggregation engine: the
// serving-path counterpart of the discrete-event simulator in
// internal/mac. It ingests frames destined to many stations through an
// in-process API (or the length-prefixed wire frontend in cmd/carpoold),
// holds per-STA bounded queues with admission control and backpressure,
// and runs an aggregation scheduler that groups queued frames into
// Carpool transmissions — respecting the 48-bit coded-Bloom A-HDR
// receiver capacity, per-STA MCS, the aggregate byte ceiling, and an
// airtime budget — then drives delivery on a worker pool: either a
// mac.DeliveryOracle (the fast path) or the full TX→channel→RX PHY
// pipeline (internal/core, internal/phy). Failed subframes retry with
// per-STA capped exponential backoff and sequential-ACK bookkeeping.
//
// Two execution modes share every line of scheduling, retry, and
// accounting code: the concurrent real-time mode (Start/Submit/Drain) and
// a single-threaded deterministic mode (RunDeterministic) with an
// injected virtual clock, whose delivered-bytes and fairness results are
// differentially compared against the internal/mac oracle by
// internal/conform's engine-vs-macsim pair.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/mac"
	"carpool/internal/obs"
	"carpool/internal/phy"
)

// Typed admission-control errors returned by Submit.
var (
	// ErrQueueFull signals backpressure: the station's bounded queue is at
	// capacity and the frame was rejected.
	ErrQueueFull = errors.New("engine: station queue full")
	// ErrDraining rejects new work once a graceful drain has begun.
	ErrDraining = errors.New("engine: draining")
	// ErrClosed rejects work after the engine has stopped.
	ErrClosed = errors.New("engine: closed")
	// ErrOversize rejects frames larger than the aggregate byte ceiling,
	// which could never be scheduled.
	ErrOversize = errors.New("engine: frame exceeds MaxAggBytes")
)

// Config parameterizes an engine.
type Config struct {
	// NumSTAs is the number of stations the engine serves.
	NumSTAs int
	// QueueCap bounds each station's queue in frames (default 300, the
	// simulator's default): the admission threshold past which Submit
	// returns ErrQueueFull.
	QueueCap int
	// MaxReceivers caps distinct destinations per transmission; bounded
	// by the 48-bit coded-Bloom A-HDR capacity (default and ceiling:
	// bloom.MaxReceivers).
	MaxReceivers int
	// MaxAggBytes caps one aggregate's total payload (default 64 KiB).
	MaxAggBytes int
	// AirtimeBudget caps one transmission's data airtime; zero is
	// unlimited. A plan always admits at least one frame for progress.
	AirtimeBudget time.Duration
	// MaxLatency, when nonzero, expires queued frames that waited longer.
	MaxLatency time.Duration
	// RetryLimit per frame (default 7, the 802.11 long retry limit).
	RetryLimit int
	// BackoffBase and BackoffCap shape the per-STA capped exponential
	// retry backoff: after k consecutive failed transmissions a station
	// is ineligible for min(BackoffBase<<(k-1), BackoffCap). Defaults
	// 100µs and 10ms.
	BackoffBase, BackoffCap time.Duration
	// MCS is each station's modulation-and-coding scheme; nil selects
	// phy.MCS48 for all, a short slice extends with its last entry.
	MCS []phy.MCS
	// Transport delivers planned aggregates; nil selects a lossless
	// OracleTransport.
	Transport Transport
	// Workers sizes the delivery worker pool (default GOMAXPROCS-style 1
	// minimum; deterministic mode always uses a single thread).
	Workers int
	// RetainPayloads keeps submitted frame bytes in the queue so the
	// transport can put the real payload on the air (PHY transport).
	// Off, the engine accounts sizes only — the fast serving path.
	RetainPayloads bool
	// PaceAirtime makes workers hold each plan for its computed air
	// occupancy (airtime + sequential ACKs), approximating channel
	// pacing in real time. Off, the engine runs as fast as hardware
	// allows.
	PaceAirtime bool
	// Clock overrides the time source (tests); nil selects a monotonic
	// wall clock anchored at New.
	Clock Clock
	// Obs receives engine metrics; nil falls back to the globally
	// enabled sink at New time.
	Obs *obs.Sink
	// SampleEvery enables deterministic 1-in-N frame-lifecycle tracing:
	// every Nth admitted frame (by global admission sequence) carries
	// stage timestamps through admit → plan → TX attempts → terminal
	// disposition, feeding the engine.stage.* histograms, StageStats,
	// and Chrome trace spans. Zero (the default) disables sampling; the
	// disabled path adds no clock reads, allocations, or obs traffic to
	// the serving hot path, and sampling never changes Stats (asserted
	// bit-identical by the batched-vs-unbatched conform pair).
	SampleEvery int
}

func (c Config) withDefaults() (Config, error) {
	if c.NumSTAs < 1 {
		return c, fmt.Errorf("engine: need at least one STA, got %d", c.NumSTAs)
	}
	if c.QueueCap == 0 {
		c.QueueCap = 300
	}
	if c.QueueCap < 1 {
		return c, fmt.Errorf("engine: non-positive QueueCap %d", c.QueueCap)
	}
	if c.MaxReceivers == 0 {
		c.MaxReceivers = bloom.MaxReceivers
	}
	if c.MaxReceivers < 1 || c.MaxReceivers > bloom.MaxReceivers {
		return c, fmt.Errorf("engine: MaxReceivers %d outside 1..%d (A-HDR capacity)",
			c.MaxReceivers, bloom.MaxReceivers)
	}
	if c.MaxAggBytes == 0 {
		c.MaxAggBytes = 64 << 10
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = mac.DefaultRetryLimit
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Microsecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 10 * time.Millisecond
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("engine: negative SampleEvery %d", c.SampleEvery)
	}
	mcs := make([]phy.MCS, c.NumSTAs)
	for i := range mcs {
		switch {
		case i < len(c.MCS):
			mcs[i] = c.MCS[i]
		case len(c.MCS) > 0:
			mcs[i] = c.MCS[len(c.MCS)-1]
		default:
			mcs[i] = phy.MCS48
		}
		if !mcs[i].Valid() {
			return c, fmt.Errorf("engine: invalid MCS for STA %d", i)
		}
	}
	c.MCS = mcs
	if c.Transport == nil {
		c.Transport = &OracleTransport{}
	}
	return c, nil
}

// Engine is a running (or deterministically stepped) AP downlink engine.
type Engine struct {
	cfg   Config
	rates mac.Rates

	mu   sync.Mutex
	cond *sync.Cond

	queues  []staQueue
	arena   payloadArena // retained payload slabs (RetainPayloads mode)
	seq     uint64       // next admission sequence number
	txSeq   uint64       // next transmission sequence number
	pending int          // queued frames across all stations

	// waiting counts goroutines blocked in cond.Wait (workers and Drain);
	// wakeLocked broadcasts only when someone is actually asleep, and
	// wakeups counts those broadcasts so tests can assert wakeup volume
	// stays proportional to useful work rather than storming.
	waiting int
	wakeups int64

	started, draining, closed bool
	inFlight                  int
	ctx                       context.Context
	cancel                    context.CancelFunc
	wg                        sync.WaitGroup

	clock Clock
	eobs  engObs

	// sampleN caches cfg.SampleEvery for the admission fast path.
	sampleN uint64

	// Accounting (guarded by mu).
	accepted, rejected, delivered, dropped, expired int64
	retriesN, txN, subN, seqAcks                    int64
	busy                                            time.Duration
	deliveredBytes                                  []int64
	offered                                         []bool
	lat                                             latHist
	stage                                           stageAcc
}

// New validates cfg and returns an engine ready for Start (real-time) or
// for the deterministic runner. Observability handles resolve once here.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = NewWallClock()
	}
	sink := cfg.Obs
	if sink == nil {
		sink = obs.Active()
	}
	e := &Engine{
		cfg:            cfg,
		rates:          mac.DefaultRates(),
		queues:         make([]staQueue, cfg.NumSTAs),
		clock:          clk,
		eobs:           resolveEngObs(sink),
		sampleN:        uint64(cfg.SampleEvery),
		deliveredBytes: make([]int64, cfg.NumSTAs),
		offered:        make([]bool, cfg.NumSTAs),
		lat:            newLatHist(),
		stage:          newStageAcc(),
	}
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

// Start launches the delivery worker pool. The engine runs until Drain
// completes or Close aborts it; ctx cancellation is equivalent to Close.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("engine: already started")
	}
	if e.closed {
		return ErrClosed
	}
	e.started = true
	e.ctx, e.cancel = context.WithCancel(ctx)
	// A cancelled context must wake sleeping workers and waiters.
	context.AfterFunc(e.ctx, func() {
		e.mu.Lock()
		e.wakeLocked()
		e.mu.Unlock()
	})
	e.wg.Add(e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		go e.worker()
	}
	return nil
}

// Submit offers one frame for station sta, copying payload only when the
// engine retains payloads. It applies admission control and returns a
// typed error — ErrQueueFull (backpressure), ErrDraining, ErrClosed, or
// ErrOversize — without blocking.
func (e *Engine) Submit(sta int, payload []byte) error {
	return e.submit(sta, len(payload), payload)
}

// SubmitSize offers a size-only frame: the fast ingest path when the
// transport does not need real bytes.
func (e *Engine) SubmitSize(sta, size int) error {
	return e.submit(sta, size, nil)
}

func (e *Engine) submit(sta, size int, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.submitLocked(sta, size, payload, e.clock.Now())
	if err == nil && e.queues[sta].len() == 1 {
		e.wakeLocked() // queue went non-empty: wake a worker
	}
	return err
}

// BatchItem is one frame in a batched submission: a station index plus
// either real payload bytes or (Payload nil) a size-only frame.
type BatchItem struct {
	STA     int
	Size    int // ignored when Payload is non-nil
	Payload []byte
}

// SubmitBatch offers many frames under one lock acquisition and at most
// one worker wakeup — the batch counterpart of Submit/SubmitSize that the
// slab wire frontend and open-loop load generator drive. Admission control
// runs per item with the same typed errors as Submit; the batch continues
// past rejected items. It returns the number accepted and the first
// admission error (nil when every item was accepted).
func (e *Engine) SubmitBatch(items []BatchItem) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	accepted, wentNonEmpty, firstErr := e.submitBatchLocked(items, now)
	if wentNonEmpty {
		e.wakeLocked()
	}
	return accepted, firstErr
}

// submitBatchLocked admits a batch, reporting whether any station queue
// transitioned empty → non-empty (the wake condition signal coalescing
// collapses to a single broadcast). Caller holds e.mu (or is
// single-threaded, as in the deterministic runner).
func (e *Engine) submitBatchLocked(items []BatchItem, now time.Duration) (accepted int, wentNonEmpty bool, firstErr error) {
	for _, it := range items {
		size := it.Size
		if it.Payload != nil {
			size = len(it.Payload)
		}
		if err := e.submitLocked(it.STA, size, it.Payload, now); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
		if e.queues[it.STA].len() == 1 {
			wentNonEmpty = true
		}
	}
	return accepted, wentNonEmpty, firstErr
}

// submitLocked is the admission-control core shared by the real-time and
// deterministic modes. Caller holds e.mu (or is single-threaded).
func (e *Engine) submitLocked(sta, size int, payload []byte, now time.Duration) error {
	if sta < 0 || sta >= e.cfg.NumSTAs {
		return fmt.Errorf("engine: station %d outside 0..%d", sta, e.cfg.NumSTAs-1)
	}
	if size <= 0 {
		return fmt.Errorf("engine: non-positive frame size %d", size)
	}
	e.offered[sta] = true
	if e.closed {
		return ErrClosed
	}
	if e.draining {
		e.rejected++
		e.eobs.rejected.Inc()
		return ErrDraining
	}
	if size > e.cfg.MaxAggBytes {
		e.rejected++
		e.eobs.rejected.Inc()
		return ErrOversize
	}
	q := &e.queues[sta]
	if q.len() >= e.cfg.QueueCap {
		e.rejected++
		e.eobs.rejected.Inc()
		e.eobs.qDropped.Inc()
		e.eobs.qBackpressure.Inc()
		return ErrQueueFull
	}
	var chunk *arenaChunk
	if e.cfg.RetainPayloads && payload != nil {
		payload, chunk = e.arena.alloc(payload)
	} else {
		payload = nil
	}
	f := qframe{seq: e.seq, size: size, arrival: now, payload: payload, chunk: chunk}
	if e.sampleN > 0 && e.seq%e.sampleN == 0 {
		// Deterministic 1-in-N lifecycle sampling keyed on the admission
		// sequence, so the same workload samples the same frames in every
		// mode (real-time, deterministic, batched).
		f.sampled = true
		f.lastTouch = now
	}
	q.pushHint(f, e.cfg.QueueCap)
	e.seq++
	e.pending++
	e.accepted++
	e.eobs.accepted.Inc()
	return nil
}

// expireLocked drops queued frames older than MaxLatency. Arrivals are
// monotone from each queue head, so the sweep stops at the first frame
// still inside the bound.
func (e *Engine) expireLocked(now time.Duration) {
	if e.cfg.MaxLatency <= 0 {
		return
	}
	for sta := range e.queues {
		q := &e.queues[sta]
		for q.len() > 0 && now-q.headFrame().arrival > e.cfg.MaxLatency {
			f := q.pop()
			e.arena.release(f.chunk)
			e.pending--
			e.expired++
			e.eobs.expired.Inc()
			e.eobs.qExpired.Inc()
			e.eobs.tracer.Emit(obs.EvQueueExpiry, int64(sta), 0)
			if f.sampled {
				// Expiry terminates the span without a stage export: the
				// frame never left the queue, so its whole life was wait.
				e.eobs.tracer.EmitAt(int64(now), obs.EvFrameDrop, int64(sta), int64(f.retries))
			}
		}
	}
}

// earliestEligibleLocked returns the wait until the soonest backed-off
// station with backlog becomes eligible; ok is false when no station is
// both backlogged and backing off.
func (e *Engine) earliestEligibleLocked(now time.Duration) (time.Duration, bool) {
	best, ok := time.Duration(0), false
	for sta := range e.queues {
		q := &e.queues[sta]
		if q.len() == 0 || q.nextEligible <= now {
			continue
		}
		if d := q.nextEligible - now; !ok || d < best {
			best, ok = d, true
		}
	}
	return best, ok
}

// backoffAfter returns the capped exponential backoff after streak
// consecutive failures (streak >= 1).
func (e *Engine) backoffAfter(streak int) time.Duration {
	d := e.cfg.BackoffBase
	for i := 1; i < streak; i++ {
		d <<= 1
		if d >= e.cfg.BackoffCap {
			return e.cfg.BackoffCap
		}
	}
	return min(d, e.cfg.BackoffCap)
}

// accountLocked applies one transmission's outcome: delivery accounting,
// per-frame retry bookkeeping with requeue-at-head, retry-limit drops,
// per-STA backoff, and the sequential-ACK ledger. okPerSub may be nil
// (transport error): every subframe is then treated as undelivered.
// deliverDur is the wall time the worker spent inside Transport.Deliver,
// attributed to sampled frames' decode stage (zero in deterministic mode,
// where the virtual clock does not advance during delivery, and zero when
// the transmission carried no sampled frames).
func (e *Engine) accountLocked(tx *pendingTx, okPerSub []bool, derr error, now, deliverDur time.Duration) {
	plan := &tx.plan
	txAir := plan.Airtime + plan.ACKTime
	e.txN++
	e.subN += int64(len(plan.Subs))
	e.seqAcks += int64(len(plan.Subs))
	e.busy += plan.Airtime + plan.ACKTime
	e.eobs.tx.Inc()
	e.eobs.aggSubframes.Add(int64(len(plan.Subs)))
	e.eobs.seqAcks.Add(int64(len(plan.Subs)))
	e.eobs.airtimeUs.Add(int64((plan.Airtime + plan.ACKTime) / time.Microsecond))
	e.eobs.groupSize.Observe(float64(len(plan.Subs)))
	e.eobs.tracer.Emit(obs.EvAggTX, int64(len(plan.Subs)), 0)
	e.eobs.tracer.Emit(obs.EvSeqACK, int64(len(plan.Subs)), 0)
	if derr != nil {
		e.eobs.transportErrs.Inc()
	}

	for i := range plan.Subs {
		sub := &plan.Subs[i]
		q := &e.queues[sub.STA]
		delivered := derr == nil && okPerSub != nil && okPerSub[i]
		if delivered {
			q.failStreak = 0
			q.nextEligible = 0
			for _, f := range tx.frames[i] {
				e.arena.release(f.chunk)
				e.pending--
				e.delivered++
				e.deliveredBytes[sub.STA] += int64(f.size)
				latMs := (now - f.arrival).Seconds() * 1e3
				e.lat.observe(latMs)
				e.eobs.delivered.Inc()
				e.eobs.latencyMs.Observe(latMs)
				if f.sampled {
					e.sampledDeliveredLocked(sub.STA, &f, txAir, deliverDur, now)
				}
			}
			continue
		}
		// Shared fate: every frame of the subframe failed together.
		kept := tx.frames[i][:0]
		for _, f := range tx.frames[i] {
			f.retries++
			e.retriesN++
			e.eobs.retries.Inc()
			if f.retries > e.cfg.RetryLimit {
				e.arena.release(f.chunk)
				e.pending--
				e.dropped++
				e.eobs.dropped.Inc()
				e.eobs.qDropped.Inc()
				if f.sampled {
					e.eobs.tracer.EmitAt(int64(now), obs.EvFrameDrop, int64(sub.STA), int64(f.retries))
				}
				continue
			}
			if f.sampled {
				// The attempt's airtime and decode wall time accrue before
				// the frame re-enters the queue for its next pop.
				f.airAcc += txAir
				f.decodeAcc += deliverDur
				f.lastTouch = now
			}
			kept = append(kept, f)
		}
		q.requeue(kept)
		q.failStreak++
		q.nextEligible = now + e.backoffAfter(q.failStreak)
	}
	e.eobs.qDepth.Set(float64(e.pending))
}

// waitLocked blocks on the condvar with the sleeper census maintained, so
// wakeLocked can skip broadcasting into an empty room. Caller holds e.mu.
func (e *Engine) waitLocked() {
	e.waiting++
	e.cond.Wait()
	e.waiting--
}

// wakeLocked coalesces condvar wakeups: a broadcast is issued only when a
// worker or Drain is actually parked, and every broadcast is counted so
// the drain tests can assert the total stays proportional to useful work
// (no wakeup storm). Always a Broadcast, never a Signal: workers and Drain
// share the condvar, and a Signal consumed by the "wrong" waiter would be
// a lost wakeup. Caller holds e.mu.
func (e *Engine) wakeLocked() {
	if e.waiting > 0 {
		e.wakeups++
		e.cond.Broadcast()
	}
}

// worker is one delivery-pool goroutine: build a plan under the lock,
// deliver it outside the lock, account the outcome.
func (e *Engine) worker() {
	defer e.wg.Done()
	var sc planScratch
	for {
		e.mu.Lock()
		var tx *pendingTx
		for {
			if e.ctx.Err() != nil {
				e.mu.Unlock()
				return
			}
			now := e.clock.Now()
			e.expireLocked(now)
			tx = e.buildPlanLocked(now, &sc)
			if tx != nil {
				break
			}
			if e.draining && e.pending == 0 && e.inFlight == 0 {
				e.wakeLocked() // wake Drain and sibling workers
				e.mu.Unlock()
				return
			}
			if d, ok := e.earliestEligibleLocked(now); ok {
				t := time.AfterFunc(d, func() {
					e.mu.Lock()
					e.wakeLocked()
					e.mu.Unlock()
				})
				e.waitLocked()
				t.Stop()
			} else {
				e.waitLocked()
			}
		}
		e.inFlight++
		e.mu.Unlock()

		// The delivery-duration clock reads run only when the transmission
		// carries sampled frames, keeping the unsampled hot path free of
		// extra time syscalls.
		var okPerSub []bool
		var derr error
		var deliverDur time.Duration
		if tx.sampled > 0 {
			t0 := e.clock.Now()
			okPerSub, derr = e.cfg.Transport.Deliver(e.ctx, &tx.plan)
			deliverDur = e.clock.Now() - t0
		} else {
			okPerSub, derr = e.cfg.Transport.Deliver(e.ctx, &tx.plan)
		}
		if e.cfg.PaceAirtime {
			e.pace(tx.plan.Airtime + tx.plan.ACKTime)
		}

		e.mu.Lock()
		e.inFlight--
		e.accountLocked(tx, okPerSub, derr, e.clock.Now(), deliverDur)
		// Post-account wake, coalesced: only when there is something for a
		// waiter to do — backlog to plan (possibly requeued by this very
		// account), or a completed drain for Drain to observe.
		if e.pending > 0 || (e.draining && e.pending == 0 && e.inFlight == 0) {
			e.wakeLocked()
		}
		e.mu.Unlock()
	}
}

// pace holds the worker for the plan's air occupancy, honouring shutdown.
func (e *Engine) pace(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-e.ctx.Done():
	}
}

// Drain performs a graceful shutdown: new submissions are rejected with
// ErrDraining, queued and in-flight frames are delivered (or exhaust
// their retries), then the worker pool exits. It returns ctx.Err() if the
// deadline expires first; the engine is stopped either way.
func (e *Engine) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		e.mu.Lock()
		e.wakeLocked()
		e.mu.Unlock()
	})
	defer stop()

	e.mu.Lock()
	if !e.started {
		e.draining, e.closed = true, true
		e.mu.Unlock()
		return nil
	}
	// One broadcast flips every parked worker into drain mode; all further
	// drain-progress wakeups are coalesced through wakeLocked.
	e.draining = true
	e.wakeLocked()
	for (e.pending > 0 || e.inFlight > 0) && ctx.Err() == nil && e.ctx.Err() == nil {
		e.waitLocked()
	}
	err := ctx.Err()
	e.mu.Unlock()

	e.cancel() // workers have drained (or the deadline hit): stop the pool
	e.wg.Wait()
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return err
}

// Stopped reports whether the engine has fully stopped (drain completed
// or Close returned) — the telemetry pusher's cue to emit one final
// update and end a subscribe stream.
func (e *Engine) Stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close aborts immediately: queued frames are discarded, workers stop as
// soon as their current delivery returns. Safe to call more than once and
// after Drain.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.started || e.closed {
		e.draining, e.closed = true, true
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}
