package engine

import "time"

// Clock is the engine's time source. The real-time engine uses a
// monotonic wall clock; the deterministic mode drives the same scheduling
// and accounting code from a virtual clock it advances by computed
// airtime, which is what makes engine runs replayable and comparable to
// the discrete-event simulator.
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
}

// wallClock measures monotonic time since its creation.
type wallClock struct {
	start time.Time
}

// NewWallClock returns a monotonic clock anchored at the call.
func NewWallClock() Clock { return &wallClock{start: time.Now()} }

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }

// virtualClock is the deterministic mode's manually advanced clock. Only
// the single-threaded deterministic runner mutates it.
type virtualClock struct {
	now time.Duration
}

func (c *virtualClock) Now() time.Duration { return c.now }
