package engine

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"carpool/internal/sim"
	"carpool/internal/traffic"
)

// LoadConfig parameterizes the open-loop load generator behind
// cmd/carpoolload.
type LoadConfig struct {
	// Addr is the carpoold endpoint; Network "tcp" (default) or "udp".
	Addr    string
	Network string
	// NumSTAs spreads offered frames over this many stations (default 8).
	NumSTAs int
	// RatePerSec is the aggregate offered frame rate (default 50k).
	RatePerSec float64
	// FrameBytes sizes each offered frame (default 1400).
	FrameBytes int
	// Duration bounds the offered schedule (default 1s).
	Duration time.Duration
	// Seed makes the Poisson arrival schedule reproducible.
	Seed int64
	// Payload switches from size-only records to real payload bytes.
	Payload bool
	// OpenLoop replays the schedule against the wall clock (arrivals do
	// not wait for the server — the generator's normal mode). Off, frames
	// are offered as fast as the connection accepts them: the
	// throughput-ceiling probe.
	OpenLoop bool
	// Batch groups this many records per write (values < 2 keep the
	// per-record path): each group is assembled back to back in one buffer
	// and leaves in a single write — the client half of the server's slab
	// reads. Open-loop pacing waits on each group's first arrival.
	Batch int
	// Conns spreads the offered schedule over this many parallel sender
	// connections (TCP only; default 1). Stations are striped sta mod
	// Conns, so each station's frames ride one stream and per-STA order
	// is preserved; on the server the stripes land on disjoint admission
	// shards. Every extra connection ends with a stats round-trip before
	// the drain is requested, so no offered frame can race the drain gate.
	Conns int
	// APs is the number of APs the server runs (cmd/carpoold -aps);
	// roam targets are drawn from it. Values < 2 disable roaming.
	APs int
	// Roam is the aggregate roam-event rate in events per second: seeded
	// random stations move to seeded random APs mid-run via RecRoam
	// records interleaved into the offered schedule, so each roam orders
	// correctly against the station's own frames (same stream, wire
	// FIFO). Zero disables roaming.
	Roam float64
	// Subscribe opens a second connection streaming telemetry for the
	// whole run (TCP only): every pushed delta is accumulated and, after
	// the drain reply, reconciled against the server's final counters.
	// The stream's last update also carries the per-stage latency
	// decomposition when the server runs with lifecycle sampling.
	Subscribe bool
	// SubInterval is the requested telemetry push interval (0 = 100 ms).
	SubInterval time.Duration
}

// TelemetrySummary is the subscriber side of a load run: how many updates
// arrived, whether the stream ended with a final update, the accumulated
// deltas, and whether they reconcile with the drain reply.
type TelemetrySummary struct {
	// Updates counts telemetry records received; Final reports a clean
	// stream end (the server flagged its last update).
	Updates int64 `json:"updates"`
	Final   bool  `json:"final"`
	// Sum is every update's delta accumulated client-side; because deltas
	// telescope from the zero Stats it must equal the counter fields of
	// Last (and of the drain reply).
	Sum StatsDelta `json:"sum"`
	// Last is the final update's cumulative Stats.
	Last Stats `json:"last"`
	// Reconciled reports that Sum and Last match the drain reply's
	// counters exactly.
	Reconciled bool `json:"reconciled"`

	stages *StageStats // final update's decomposition, if pushed
}

// LoadReport is the generator's summary: client-side offered counts plus
// the server's drained Stats.
type LoadReport struct {
	// Offered is the schedule length; Sent the records actually written
	// (the difference is frames a cancelled run cut off).
	Offered, Sent int64
	// RoamsSent counts RecRoam records written (LoadConfig.Roam).
	RoamsSent int64 `json:"roams_sent,omitempty"`
	// Elapsed is the wall time from first record to drain request;
	// TotalElapsed extends through the server's drain completion.
	Elapsed, TotalElapsed time.Duration
	// SendRate is Sent/Elapsed in frames per second; EndToEndRate is
	// Sent/TotalElapsed — offered, queued, transmitted, and ACKed.
	SendRate, EndToEndRate float64
	// Server is the engine's post-drain accounting: delivery counts, drop
	// rate, latency percentiles.
	Server Stats
	// Telemetry summarizes the subscribe stream (nil without Subscribe);
	// Stages is the final update's per-stage latency decomposition, set
	// only when the server samples frame lifecycles (Config.SampleEvery).
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`
	Stages    *StageStats       `json:"stages,omitempty"`
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.NumSTAs <= 0 {
		c.NumSTAs = 8
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 50_000
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 1400
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	return c
}

// loadItem is one scheduled offered frame, or (roam true) a scheduled
// RecRoam moving sta to AP ap.
type loadItem struct {
	at   time.Duration
	sta  int
	size int
	ap   int
	roam bool
}

// roamSchedule draws the seeded roam events: exponential interarrivals
// at cfg.Roam events/s across cfg.Duration, each moving a random station
// to a random AP. Empty when roaming is off or the server has one AP.
func roamSchedule(cfg LoadConfig) []loadItem {
	if cfg.Roam <= 0 || cfg.APs < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 0x9a0a)))
	var items []loadItem
	at := time.Duration(0)
	for {
		at += time.Duration(rng.ExpFloat64() / cfg.Roam * float64(time.Second))
		if at >= cfg.Duration {
			return items
		}
		items = append(items, loadItem{
			at: at, sta: rng.Intn(cfg.NumSTAs), ap: rng.Intn(cfg.APs), roam: true,
		})
	}
}

// LoadSchedule materializes the generator's offered schedule: one seeded
// Poisson flow per station (seeds derived from cfg.Seed), merged by
// arrival time with station index as tie-break. Exposed so tests and the
// deterministic runner can consume the identical workload.
func LoadSchedule(cfg LoadConfig) [][]traffic.Arrival {
	cfg = cfg.withDefaults()
	perSTA := cfg.RatePerSec / float64(cfg.NumSTAs)
	flows := make([][]traffic.Arrival, cfg.NumSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, sta)))
		flows[sta] = traffic.PoissonFlow(rng, perSTA, cfg.FrameBytes, cfg.Duration)
	}
	return flows
}

// RunLoad offers a seeded Poisson schedule to a carpoold server over one
// connection, requests a drain, and reports the server's final stats.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()

	var schedule []loadItem
	for sta, flow := range LoadSchedule(cfg) {
		for _, a := range flow {
			schedule = append(schedule, loadItem{at: a.Time, sta: sta, size: a.Size})
		}
	}
	offered := int64(len(schedule))
	schedule = append(schedule, roamSchedule(cfg)...)
	sort.Slice(schedule, func(i, j int) bool {
		if schedule[i].at != schedule[j].at {
			return schedule[i].at < schedule[j].at
		}
		if schedule[i].sta != schedule[j].sta {
			return schedule[i].sta < schedule[j].sta
		}
		return !schedule[i].roam && schedule[j].roam // frames before a same-instant roam
	})

	conn, err := net.Dial(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// The subscriber rides a second connection so telemetry pushes never
	// share a stream with the drain reply; it runs for the whole load and
	// ends on the server's final update (pushed once the drain completes).
	var sub *TelemetrySummary
	var subErr chan error
	if cfg.Subscribe {
		if cfg.Network != "tcp" {
			return nil, fmt.Errorf("carpoolload: -subscribe needs tcp, not %s", cfg.Network)
		}
		subConn, err := net.Dial(cfg.Network, cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("carpoolload: subscribe dial: %w", err)
		}
		defer subConn.Close()
		subStop := context.AfterFunc(ctx, func() { subConn.Close() })
		defer subStop()
		sub = &TelemetrySummary{}
		subErr = make(chan error, 1)
		go func() { subErr <- runSubscriber(subConn, cfg.SubInterval, sub) }()
	}

	var payload []byte
	if cfg.Payload {
		rng := rand.New(rand.NewSource(cfg.Seed))
		payload = make([]byte, cfg.FrameBytes)
		rng.Read(payload)
	}

	rep := &LoadReport{Offered: offered}
	start := time.Now()
	if cfg.Conns > 1 {
		// Parallel senders: stripe the schedule by station across extra
		// connections; this stream (conn) is stripe 0 and carries the
		// drain. Every extra stream barriers with a stats round-trip
		// before the drain request leaves, so the server has consumed all
		// of its records first — drain rejects later submissions.
		if cfg.Network != "tcp" {
			return nil, fmt.Errorf("carpoolload: -conns %d needs tcp, not %s", cfg.Conns, cfg.Network)
		}
		stripes := make([][]loadItem, cfg.Conns)
		for _, it := range schedule {
			c := it.sta % cfg.Conns
			stripes[c] = append(stripes[c], it)
		}
		sendErr := make(chan error, cfg.Conns-1)
		var sent, roams atomic.Int64
		for c := 1; c < cfg.Conns; c++ {
			go func(items []loadItem) {
				extra, err := net.Dial(cfg.Network, cfg.Addr)
				if err != nil {
					sendErr <- fmt.Errorf("carpoolload: sender dial: %w", err)
					return
				}
				defer extra.Close()
				stop := context.AfterFunc(ctx, func() { extra.Close() })
				defer stop()
				n, r, err := sendSchedule(ctx, extra, items, cfg, start, payload)
				sent.Add(n)
				roams.Add(r)
				if err != nil {
					sendErr <- err
					return
				}
				if _, err := extra.Write(AppendControlRecord(nil, RecStats)); err != nil {
					sendErr <- fmt.Errorf("carpoolload: sender barrier: %w", err)
					return
				}
				if _, err := ReadStatsReply(extra); err != nil {
					sendErr <- fmt.Errorf("carpoolload: sender barrier reply: %w", err)
					return
				}
				sendErr <- nil
			}(stripes[c])
		}
		n, r, err := sendSchedule(ctx, conn, stripes[0], cfg, start, payload)
		sent.Add(n)
		roams.Add(r)
		for c := 1; c < cfg.Conns; c++ {
			if werr := <-sendErr; werr != nil && err == nil {
				err = werr
			}
		}
		rep.Sent = sent.Load()
		rep.RoamsSent = roams.Load()
		if err != nil {
			return nil, err
		}
	} else {
		n, r, err := sendSchedule(ctx, conn, schedule, cfg, start, payload)
		rep.Sent = n
		rep.RoamsSent = r
		if err != nil {
			return nil, err
		}
	}
	// Drain handshake: the server finishes queued work, then reports.
	if _, err := conn.Write(AppendControlRecord(nil, RecDrain)); err != nil {
		return nil, fmt.Errorf("carpoolload: drain request: %w", err)
	}
	rep.Elapsed = time.Since(start)
	st, err := ReadStatsReply(conn)
	if err != nil {
		return nil, fmt.Errorf("carpoolload: stats reply: %w", err)
	}
	rep.Server = st
	rep.TotalElapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.SendRate = float64(rep.Sent) / rep.Elapsed.Seconds()
	}
	if rep.TotalElapsed > 0 {
		rep.EndToEndRate = float64(rep.Sent) / rep.TotalElapsed.Seconds()
	}

	if sub != nil {
		// The drain finished, so the server pushes the stream's final
		// update within one interval; give it a generous multiple.
		wait := cfg.SubInterval
		if wait <= 0 {
			wait = defaultLoadSubInterval
		}
		select {
		case err := <-subErr:
			if err != nil {
				return nil, fmt.Errorf("carpoolload: telemetry stream: %w", err)
			}
		case <-time.After(10*wait + 5*time.Second):
			return nil, fmt.Errorf("carpoolload: telemetry stream did not end after drain")
		}
		sub.Reconciled = reconcile(sub, rep.Server)
		rep.Telemetry = sub
		rep.Stages = sub.stages
	}
	return rep, nil
}

// sendSchedule writes one connection's offered records — batched or
// per-record, open-loop paced or as fast as the stream accepts — and
// returns how many frames and roams left before an error or
// cancellation. The stream is fully flushed on return.
func sendSchedule(ctx context.Context, conn net.Conn, schedule []loadItem, cfg LoadConfig, start time.Time, payload []byte) (int64, int64, error) {
	var sent, roams int64
	var buf []byte
	appendItem := func(buf []byte, it loadItem) []byte {
		switch {
		case it.roam:
			roams++
			return AppendRoamRecord(buf, it.sta, it.ap)
		case cfg.Payload:
			sent++
			return AppendDataRecord(buf, it.sta, payload[:it.size])
		default:
			sent++
			return AppendSizeRecord(buf, it.sta, it.size)
		}
	}
	if cfg.Batch > 1 {
		// Batched mode: assemble up to Batch records in one buffer and
		// write them with a single call, bypassing the per-record copy
		// through bufio — one syscall per group instead of one per flush
		// window worth of small writes.
		for base := 0; base < len(schedule); base += cfg.Batch {
			if ctx.Err() != nil {
				break
			}
			end := min(base+cfg.Batch, len(schedule))
			group := schedule[base:end]
			if cfg.OpenLoop {
				if wait := group[0].at - time.Since(start); wait > 50*time.Microsecond {
					time.Sleep(wait)
				}
			}
			buf = buf[:0]
			for _, it := range group {
				buf = appendItem(buf, it)
			}
			if _, err := conn.Write(buf); err != nil {
				return sent, roams, fmt.Errorf("carpoolload: batch send: %w", err)
			}
		}
		return sent, roams, nil
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	const flushEvery = 256
	sinceFlush := 0
	for _, it := range schedule {
		if ctx.Err() != nil {
			break
		}
		if cfg.OpenLoop {
			if wait := it.at - time.Since(start); wait > 50*time.Microsecond {
				time.Sleep(wait)
			}
		}
		buf = appendItem(buf[:0], it)
		if _, err := bw.Write(buf); err != nil {
			return sent, roams, fmt.Errorf("carpoolload: send: %w", err)
		}
		if sinceFlush++; sinceFlush >= flushEvery {
			if err := bw.Flush(); err != nil {
				return sent, roams, fmt.Errorf("carpoolload: flush: %w", err)
			}
			sinceFlush = 0
		}
	}
	if err := bw.Flush(); err != nil {
		return sent, roams, fmt.Errorf("carpoolload: flush: %w", err)
	}
	return sent, roams, nil
}

// defaultLoadSubInterval is the telemetry push interval a load run asks
// for when LoadConfig.SubInterval is zero — tight enough that a one-second
// run sees several deltas.
const defaultLoadSubInterval = 100 * time.Millisecond

// runSubscriber streams telemetry into out until the server's final
// update (clean end, nil) or a stream error.
func runSubscriber(conn net.Conn, interval time.Duration, out *TelemetrySummary) error {
	if interval <= 0 {
		interval = defaultLoadSubInterval
	}
	if _, err := conn.Write(AppendSubscribeRecord(nil, interval)); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	for {
		upd, err := ReadTelemetry(br)
		if err != nil {
			return err
		}
		out.Updates++
		out.Sum.Add(upd.Delta)
		out.Last = upd.Stats
		if upd.Stages != nil {
			out.stages = upd.Stages
		}
		if upd.Final {
			out.Final = true
			return nil
		}
	}
}

// reconcile checks the subscribe stream against the drain reply: the
// accumulated deltas and the final pushed Stats must both land exactly on
// the server's terminal counters (rate and elapsed fields are snapshots,
// not counters, and are excluded).
func reconcile(sub *TelemetrySummary, final Stats) bool {
	d, last := sub.Sum, sub.Last
	return d.Accepted == final.Accepted && last.Accepted == final.Accepted &&
		d.Rejected == final.Rejected && last.Rejected == final.Rejected &&
		d.Delivered == final.Delivered && last.Delivered == final.Delivered &&
		d.Dropped == final.Dropped && last.Dropped == final.Dropped &&
		d.Expired == final.Expired && last.Expired == final.Expired &&
		d.Retries == final.Retries && last.Retries == final.Retries &&
		d.Transmissions == final.Transmissions && last.Transmissions == final.Transmissions &&
		d.Subframes == final.Subframes && last.Subframes == final.Subframes &&
		d.DeliveredBytes == final.DeliveredBytes && last.DeliveredBytes == final.DeliveredBytes
}
