package engine

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"time"

	"carpool/internal/sim"
	"carpool/internal/traffic"
)

// LoadConfig parameterizes the open-loop load generator behind
// cmd/carpoolload.
type LoadConfig struct {
	// Addr is the carpoold endpoint; Network "tcp" (default) or "udp".
	Addr    string
	Network string
	// NumSTAs spreads offered frames over this many stations (default 8).
	NumSTAs int
	// RatePerSec is the aggregate offered frame rate (default 50k).
	RatePerSec float64
	// FrameBytes sizes each offered frame (default 1400).
	FrameBytes int
	// Duration bounds the offered schedule (default 1s).
	Duration time.Duration
	// Seed makes the Poisson arrival schedule reproducible.
	Seed int64
	// Payload switches from size-only records to real payload bytes.
	Payload bool
	// OpenLoop replays the schedule against the wall clock (arrivals do
	// not wait for the server — the generator's normal mode). Off, frames
	// are offered as fast as the connection accepts them: the
	// throughput-ceiling probe.
	OpenLoop bool
	// Batch groups this many records per write (values < 2 keep the
	// per-record path): each group is assembled back to back in one buffer
	// and leaves in a single write — the client half of the server's slab
	// reads. Open-loop pacing waits on each group's first arrival.
	Batch int
}

// LoadReport is the generator's summary: client-side offered counts plus
// the server's drained Stats.
type LoadReport struct {
	// Offered is the schedule length; Sent the records actually written
	// (the difference is frames a cancelled run cut off).
	Offered, Sent int64
	// Elapsed is the wall time from first record to drain request;
	// TotalElapsed extends through the server's drain completion.
	Elapsed, TotalElapsed time.Duration
	// SendRate is Sent/Elapsed in frames per second; EndToEndRate is
	// Sent/TotalElapsed — offered, queued, transmitted, and ACKed.
	SendRate, EndToEndRate float64
	// Server is the engine's post-drain accounting: delivery counts, drop
	// rate, latency percentiles.
	Server Stats
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.NumSTAs <= 0 {
		c.NumSTAs = 8
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 50_000
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 1400
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return c
}

// loadItem is one scheduled offered frame.
type loadItem struct {
	at   time.Duration
	sta  int
	size int
}

// LoadSchedule materializes the generator's offered schedule: one seeded
// Poisson flow per station (seeds derived from cfg.Seed), merged by
// arrival time with station index as tie-break. Exposed so tests and the
// deterministic runner can consume the identical workload.
func LoadSchedule(cfg LoadConfig) [][]traffic.Arrival {
	cfg = cfg.withDefaults()
	perSTA := cfg.RatePerSec / float64(cfg.NumSTAs)
	flows := make([][]traffic.Arrival, cfg.NumSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, sta)))
		flows[sta] = traffic.PoissonFlow(rng, perSTA, cfg.FrameBytes, cfg.Duration)
	}
	return flows
}

// RunLoad offers a seeded Poisson schedule to a carpoold server over one
// connection, requests a drain, and reports the server's final stats.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()

	var schedule []loadItem
	for sta, flow := range LoadSchedule(cfg) {
		for _, a := range flow {
			schedule = append(schedule, loadItem{at: a.Time, sta: sta, size: a.Size})
		}
	}
	sort.Slice(schedule, func(i, j int) bool {
		if schedule[i].at != schedule[j].at {
			return schedule[i].at < schedule[j].at
		}
		return schedule[i].sta < schedule[j].sta
	})

	conn, err := net.Dial(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	bw := bufio.NewWriterSize(conn, 1<<16)
	var payload []byte
	if cfg.Payload {
		rng := rand.New(rand.NewSource(cfg.Seed))
		payload = make([]byte, cfg.FrameBytes)
		rng.Read(payload)
	}

	rep := &LoadReport{Offered: int64(len(schedule))}
	start := time.Now()
	var buf []byte
	if cfg.Batch > 1 {
		// Batched mode: assemble up to Batch records in one buffer and
		// write them with a single call, bypassing the per-record copy
		// through bufio — one syscall per group instead of one per flush
		// window worth of small writes.
		for base := 0; base < len(schedule); base += cfg.Batch {
			if ctx.Err() != nil {
				break
			}
			end := min(base+cfg.Batch, len(schedule))
			group := schedule[base:end]
			if cfg.OpenLoop {
				if wait := group[0].at - time.Since(start); wait > 50*time.Microsecond {
					time.Sleep(wait)
				}
			}
			buf = buf[:0]
			for _, it := range group {
				if cfg.Payload {
					buf = AppendDataRecord(buf, it.sta, payload[:it.size])
				} else {
					buf = AppendSizeRecord(buf, it.sta, it.size)
				}
			}
			if _, err := conn.Write(buf); err != nil {
				return nil, fmt.Errorf("carpoolload: batch send: %w", err)
			}
			rep.Sent += int64(len(group))
		}
	} else {
		const flushEvery = 256
		sinceFlush := 0
		for _, it := range schedule {
			if ctx.Err() != nil {
				break
			}
			if cfg.OpenLoop {
				if wait := it.at - time.Since(start); wait > 50*time.Microsecond {
					time.Sleep(wait)
				}
			}
			buf = buf[:0]
			if cfg.Payload {
				buf = AppendDataRecord(buf, it.sta, payload[:it.size])
			} else {
				buf = AppendSizeRecord(buf, it.sta, it.size)
			}
			if _, err := bw.Write(buf); err != nil {
				return nil, fmt.Errorf("carpoolload: send: %w", err)
			}
			rep.Sent++
			if sinceFlush++; sinceFlush >= flushEvery {
				if err := bw.Flush(); err != nil {
					return nil, fmt.Errorf("carpoolload: flush: %w", err)
				}
				sinceFlush = 0
			}
		}
	}
	// Drain handshake: the server finishes queued work, then reports.
	if _, err := bw.Write(AppendControlRecord(nil, RecDrain)); err != nil {
		return nil, fmt.Errorf("carpoolload: drain request: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("carpoolload: drain flush: %w", err)
	}
	rep.Elapsed = time.Since(start)
	st, err := ReadStatsReply(conn)
	if err != nil {
		return nil, fmt.Errorf("carpoolload: stats reply: %w", err)
	}
	rep.Server = st
	rep.TotalElapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.SendRate = float64(rep.Sent) / rep.Elapsed.Seconds()
	}
	if rep.TotalElapsed > 0 {
		rep.EndToEndRate = float64(rep.Sent) / rep.TotalElapsed.Seconds()
	}
	return rep, nil
}
