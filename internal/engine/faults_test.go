package engine

import (
	"context"
	"runtime"
	"testing"
	"time"

	"carpool/internal/faults"
	"carpool/internal/mac"
)

// goroutineCount waits briefly for stragglers to exit and returns the
// settled goroutine count.
func goroutineCount(baseline int) int {
	for i := 0; i < 100; i++ {
		if n := runtime.NumGoroutine(); n <= baseline {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

func TestPHYTransportCleanChannel(t *testing.T) {
	cfg := Config{
		NumSTAs:        3,
		Transport:      &PHYTransport{Seed: 11},
		RetainPayloads: true,
	}
	st, err := RunDeterministic(context.Background(), cfg, cbrFlows(3, 4, 256, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 12 || st.Dropped != 0 {
		t.Fatalf("clean channel: delivered=%d dropped=%d, want 12/0", st.Delivered, st.Dropped)
	}
}

// TestDrainUnderImpairments is the satellite requirement: the real-time
// engine under bursty loss and mid-frame truncation must retry, never
// deadlock or leak, and drain to a consistent accounting. Runs under
// -race in CI.
func TestDrainUnderImpairments(t *testing.T) {
	baseline := runtime.NumGoroutine()

	e, err := New(Config{
		NumSTAs: 4,
		Workers: 3,
		Transport: &PHYTransport{
			Seed: 5,
			Impair: []faults.Impairment{
				// A noise burst over early payload symbols and a truncation
				// cutting the frame's tail: subframes laid out in between
				// survive, the rest retry — in a smaller retry plan the
				// symbol layout shifts, so retried frames can land in the
				// clean region and deliver.
				faults.Burst{Start: 1100, Len: 240, GainDB: 5},
				faults.Truncate{At: 3800},
			},
		},
		RetainPayloads: true,
		// Cap aggregates at four 300B frames so the impairment window
		// (samples ~1100-3800 of a ~5000-sample frame) straddles the
		// subframe layout instead of swallowing it whole.
		MaxAggBytes: 1200,
		// Small queues force backpressure under the slow PHY path.
		QueueCap:    16,
		RetryLimit:  3,
		BackoffBase: 50 * time.Microsecond,
		BackoffCap:  500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	var accepted, rejected int
	for k := 0; k < 200; k++ {
		if err := e.Submit(k%4, payload); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("nothing admitted")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain under impairments: %v", err)
	}
	st := e.Stats()
	t.Logf("accepted=%d rejected=%d delivered=%d dropped=%d retries=%d",
		st.Accepted, st.Rejected, st.Delivered, st.Dropped, st.Retries)
	if st.Accepted != int64(accepted) || st.Rejected != int64(rejected) {
		t.Errorf("admission accounting: stats %d/%d, client %d/%d",
			st.Accepted, st.Rejected, accepted, rejected)
	}
	if st.Delivered+st.Dropped+st.Expired != st.Accepted || st.Pending != 0 {
		t.Errorf("drain left inconsistent accounting: %+v", st)
	}
	if st.Dropped > 0 && st.Retries == 0 {
		t.Errorf("frames dropped without retries: %+v", st)
	}
	if st.Delivered == 0 || st.Dropped == 0 {
		t.Errorf("want mixed outcomes under these impairments: %+v", st)
	}

	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after drain: %d > baseline %d", n, baseline)
	}

	// Coalesced wakeups must stay proportional to useful work — one per
	// submission plus one per transmission outcome plus shutdown chatter —
	// never a broadcast storm (e.g. per queued STA, per parked worker, or
	// per spurious poll during drain).
	e.mu.Lock()
	wakeups := e.wakeups
	e.mu.Unlock()
	if bound := int64(accepted) + st.Transmissions + 4*3 + 8; wakeups > bound {
		t.Errorf("condvar wakeup storm: %d broadcasts for %d submissions and %d transmissions (bound %d)",
			wakeups, accepted, st.Transmissions, bound)
	}
}

// TestDrainTimeoutOnDeadLink: a drain whose queue can never empty (dead
// station, huge retry limit) must honour its context instead of hanging.
func TestDrainTimeoutOnDeadLink(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e, err := New(Config{
		NumSTAs:    1,
		RetryLimit: 1 << 30,
		Transport:  &OracleTransport{Oracle: mac.NewLossyLocOracle(0), Locations: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_ = e.SubmitSize(0, 500)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain on dead link: %v, want DeadlineExceeded", err)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after aborted drain: %d > baseline %d", n, baseline)
	}
}

func TestCloseAborts(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e, err := New(Config{NumSTAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = e.SubmitSize(i%2, 400)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.SubmitSize(0, 100); err != ErrClosed {
		t.Errorf("submit after close: %v", err)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after close: %d > baseline %d", n, baseline)
	}
}
