package engine

import (
	"time"

	"carpool/internal/obs"
)

// stageAcc aggregates the lifecycle-sampled frames' per-stage latency
// decomposition, guarded by e.mu. Each delivered sampled frame contributes
// one observation per stage; together the four stages account for the
// frame's whole admit→deliver latency (wait + backoff + air sum exactly to
// it in deterministic mode, where decode wall time is zero).
type stageAcc struct {
	wait, backoff, air, decode                     latHist
	waitSumMs, backoffSumMs, airSumMs, decodeSumMs float64
	delivered                                      int64 // sampled frames delivered
}

func newStageAcc() stageAcc {
	return stageAcc{
		wait:    newLatHist(),
		backoff: newLatHist(),
		air:     newLatHist(),
		decode:  newLatHist(),
	}
}

// sampledDeliveredLocked closes a sampled frame's lifecycle at delivery:
// the final attempt's airtime and decode wall time join the accumulators,
// each stage total lands in the engine's deterministic stage histograms
// and the engine.stage.*_ms sink histograms, and the ring tracer gets one
// span per stage plus the terminal EvFrameDeliver. None of this touches
// Stats fields, so sampling on vs off stays byte-identical there. Caller
// holds e.mu.
func (e *Engine) sampledDeliveredLocked(sta int, f *qframe, txAir, deliverDur, now time.Duration) {
	wait, bo := f.waitAcc, f.backoffAcc
	air := f.airAcc + txAir
	dec := f.decodeAcc + deliverDur
	waitMs := wait.Seconds() * 1e3
	boMs := bo.Seconds() * 1e3
	airMs := air.Seconds() * 1e3
	decMs := dec.Seconds() * 1e3

	s := &e.stage
	s.wait.observe(waitMs)
	s.backoff.observe(boMs)
	s.air.observe(airMs)
	s.decode.observe(decMs)
	s.waitSumMs += waitMs
	s.backoffSumMs += boMs
	s.airSumMs += airMs
	s.decodeSumMs += decMs
	s.delivered++

	e.eobs.stageWaitMs.Observe(waitMs)
	e.eobs.stageBackoffMs.Observe(boMs)
	e.eobs.stageAirMs.Observe(airMs)
	e.eobs.stageDecodeMs.Observe(decMs)

	tr := e.eobs.tracer
	if tr != nil {
		ts := int64(now)
		tr.EmitAt(ts, obs.EvStageQueueWait, int64(sta), int64(wait))
		tr.EmitAt(ts, obs.EvStageBackoff, int64(sta), int64(bo))
		tr.EmitAt(ts, obs.EvStageAir, int64(sta), int64(air))
		tr.EmitAt(ts, obs.EvStageDecode, int64(sta), int64(dec))
		tr.EmitAt(ts, obs.EvFrameDeliver, int64(sta), int64(now-f.arrival))
	}
}

// StageDist summarizes one lifecycle stage's latency distribution over the
// sampled delivered frames, in milliseconds. Quantiles carry the shared
// log-bucket error bound (within +12.2% — see obs.LatencyBucketsMs).
type StageDist struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// StageStats is the per-stage latency decomposition of the lifecycle-
// sampled delivered frames: where an average frame's latency went —
// queue wait vs retry backoff vs airtime vs transport decode. Served over
// the wire as a RecStageStats reply and printed by carpoolload.
type StageStats struct {
	// SampleEvery echoes the engine's sampling config (0 = sampling off,
	// every distribution empty).
	SampleEvery int `json:"sample_every"`
	// SampledDelivered counts delivered frames that carried spans.
	SampledDelivered int64     `json:"sampled_delivered"`
	QueueWait        StageDist `json:"queue_wait"`
	Backoff          StageDist `json:"backoff"`
	Air              StageDist `json:"air"`
	Decode           StageDist `json:"decode"`
}

// StageStats snapshots the per-stage decomposition. Like Stats, only the
// bucket arrays are copied under e.mu; quantiles compute outside the lock.
func (e *Engine) StageStats() StageStats {
	e.mu.Lock()
	st := StageStats{
		SampleEvery:      e.cfg.SampleEvery,
		SampledDelivered: e.stage.delivered,
	}
	type snap struct {
		counts []int64
		count  int64
		sumMs  float64
	}
	snaps := [4]snap{
		{e.stage.wait.snapshot(), e.stage.wait.count, e.stage.waitSumMs},
		{e.stage.backoff.snapshot(), e.stage.backoff.count, e.stage.backoffSumMs},
		{e.stage.air.snapshot(), e.stage.air.count, e.stage.airSumMs},
		{e.stage.decode.snapshot(), e.stage.decode.count, e.stage.decodeSumMs},
	}
	e.mu.Unlock()

	dists := [4]*StageDist{&st.QueueWait, &st.Backoff, &st.Air, &st.Decode}
	for i, sn := range snaps {
		d := dists[i]
		d.Count = sn.count
		if sn.count == 0 || sn.counts == nil {
			continue
		}
		d.MeanMs = sn.sumMs / float64(sn.count)
		d.P50Ms = quantileMs(sn.counts, 0.50)
		d.P95Ms = quantileMs(sn.counts, 0.95)
		d.P99Ms = quantileMs(sn.counts, 0.99)
	}
	return st
}
