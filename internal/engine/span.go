package engine

import (
	"time"

	"carpool/internal/obs"
)

// stageAcc aggregates the lifecycle-sampled frames' per-stage latency
// decomposition, one per shard, guarded by the shard's lock (StageStats
// merges them under lockAll). Each delivered sampled frame contributes
// one observation per stage; together the four stages account for the
// frame's whole admit→deliver latency (wait + backoff + air sum exactly to
// it in deterministic mode, where decode wall time is zero).
type stageAcc struct {
	wait, backoff, air, decode                     latHist
	waitSumMs, backoffSumMs, airSumMs, decodeSumMs float64
	delivered                                      int64 // sampled frames delivered
}

func newStageAcc() stageAcc {
	return stageAcc{
		wait:    newLatHist(),
		backoff: newLatHist(),
		air:     newLatHist(),
		decode:  newLatHist(),
	}
}

// sampledDeliveredLocked closes a sampled frame's lifecycle at delivery:
// the final attempt's airtime and decode wall time join the shard's
// accumulators, each stage total lands in the deterministic stage
// histograms and the engine.stage.*_ms sink histograms, and the ring
// tracer gets one span per stage plus the terminal EvFrameDeliver. None
// of this touches Stats fields, so sampling on vs off stays byte-
// identical there. Caller holds sh.mu (or is single-threaded).
func (e *Engine) sampledDeliveredLocked(sh *shard, sta int, f *qframe, txAir, deliverDur, now time.Duration) {
	wait, bo := f.waitAcc, f.backoffAcc
	air := f.airAcc + txAir
	dec := f.decodeAcc + deliverDur
	waitMs := wait.Seconds() * 1e3
	boMs := bo.Seconds() * 1e3
	airMs := air.Seconds() * 1e3
	decMs := dec.Seconds() * 1e3

	s := &sh.stage
	s.wait.observe(waitMs)
	s.backoff.observe(boMs)
	s.air.observe(airMs)
	s.decode.observe(decMs)
	s.waitSumMs += waitMs
	s.backoffSumMs += boMs
	s.airSumMs += airMs
	s.decodeSumMs += decMs
	s.delivered++

	e.eobs.stageWaitMs.Observe(waitMs)
	e.eobs.stageBackoffMs.Observe(boMs)
	e.eobs.stageAirMs.Observe(airMs)
	e.eobs.stageDecodeMs.Observe(decMs)

	tr := e.eobs.tracer
	if tr != nil {
		ts := int64(now)
		tr.EmitAt(ts, obs.EvStageQueueWait, int64(sta), int64(wait))
		tr.EmitAt(ts, obs.EvStageBackoff, int64(sta), int64(bo))
		tr.EmitAt(ts, obs.EvStageAir, int64(sta), int64(air))
		tr.EmitAt(ts, obs.EvStageDecode, int64(sta), int64(dec))
		tr.EmitAt(ts, obs.EvFrameDeliver, int64(sta), int64(now-f.arrival))
	}
}

// StageDist summarizes one lifecycle stage's latency distribution over the
// sampled delivered frames, in milliseconds. Quantiles carry the shared
// log-bucket error bound (within +12.2% — see obs.LatencyBucketsMs).
type StageDist struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// StageStats is the per-stage latency decomposition of the lifecycle-
// sampled delivered frames: where an average frame's latency went —
// queue wait vs retry backoff vs airtime vs transport decode. Served over
// the wire as a RecStageStats reply and printed by carpoolload.
type StageStats struct {
	// SampleEvery echoes the engine's sampling config (0 = sampling off,
	// every distribution empty).
	SampleEvery int `json:"sample_every"`
	// SampledDelivered counts delivered frames that carried spans.
	SampledDelivered int64     `json:"sampled_delivered"`
	QueueWait        StageDist `json:"queue_wait"`
	Backoff          StageDist `json:"backoff"`
	Air              StageDist `json:"air"`
	Decode           StageDist `json:"decode"`
}

// stageSnap is one stage's merged cross-shard bucket snapshot, produced
// under the shard locks and finished (quantiles) outside them.
type stageSnap struct {
	counts []int64
	count  int64
	sumMs  float64
}

// stageCoreLocked merges the per-shard stage accumulators. Caller holds
// every shard lock (or is single-threaded).
func (e *Engine) stageCoreLocked() (st StageStats, snaps [4]stageSnap) {
	st.SampleEvery = e.cfg.SampleEvery
	for i := range e.shards {
		s := &e.shards[i].stage
		st.SampledDelivered += s.delivered
		hists := [4]*latHist{&s.wait, &s.backoff, &s.air, &s.decode}
		sums := [4]float64{s.waitSumMs, s.backoffSumMs, s.airSumMs, s.decodeSumMs}
		for j, h := range hists {
			sn := &snaps[j]
			sn.count += h.count
			sn.sumMs += sums[j]
			if h.count > 0 {
				if sn.counts == nil {
					sn.counts = make([]int64, len(h.counts))
				}
				for b, c := range h.counts {
					sn.counts[b] += c
				}
			}
		}
	}
	return st, snaps
}

// finishStages fills the quantiles from the merged snapshots, run outside
// the shard locks.
func finishStages(st *StageStats, snaps *[4]stageSnap) {
	dists := [4]*StageDist{&st.QueueWait, &st.Backoff, &st.Air, &st.Decode}
	for i := range snaps {
		sn, d := &snaps[i], dists[i]
		d.Count = sn.count
		if sn.count == 0 || sn.counts == nil {
			continue
		}
		d.MeanMs = sn.sumMs / float64(sn.count)
		d.P50Ms = quantileMs(sn.counts, 0.50)
		d.P95Ms = quantileMs(sn.counts, 0.95)
		d.P99Ms = quantileMs(sn.counts, 0.99)
	}
}

// Merge folds another decomposition into st: sample counts sum, and
// each stage's mean and quantile estimates become the count-weighted
// mean of the two — an approximation, since the underlying bucket
// histograms are not exported. The multi-AP cluster rollup uses this to
// present one cluster-wide stage view.
func (st *StageStats) Merge(o StageStats) {
	st.SampledDelivered += o.SampledDelivered
	dists := [4]*StageDist{&st.QueueWait, &st.Backoff, &st.Air, &st.Decode}
	odists := [4]StageDist{o.QueueWait, o.Backoff, o.Air, o.Decode}
	for i, d := range dists {
		od := odists[i]
		tot := d.Count + od.Count
		if tot == 0 {
			continue
		}
		w1 := float64(d.Count) / float64(tot)
		w2 := float64(od.Count) / float64(tot)
		d.MeanMs = d.MeanMs*w1 + od.MeanMs*w2
		d.P50Ms = d.P50Ms*w1 + od.P50Ms*w2
		d.P95Ms = d.P95Ms*w1 + od.P95Ms*w2
		d.P99Ms = d.P99Ms*w1 + od.P99Ms*w2
		d.Count = tot
	}
}

// StageStats snapshots the per-stage decomposition. Like Stats, only the
// bucket arrays are merged under the shard locks; quantiles compute
// outside. For a stage view coherent with a Stats snapshot, use
// SnapshotAll.
func (e *Engine) StageStats() StageStats {
	e.lockAll()
	st, snaps := e.stageCoreLocked()
	e.unlockAll()
	finishStages(&st, &snaps)
	return st
}
