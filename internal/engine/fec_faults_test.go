package engine

import (
	"context"
	"testing"
	"time"

	"carpool/internal/core"
	"carpool/internal/faults"
	"carpool/internal/fec"
	"carpool/internal/ofdm"
)

// buildFECPlan spins an FEC engine with one 300B frame queued per
// station and returns the planner's first coded plan (Seq 0).
func buildFECPlan(t *testing.T, numSTAs, fecK int, tr *PHYTransport) (*Engine, *Plan) {
	t.Helper()
	e, err := New(Config{
		NumSTAs:   numSTAs,
		Strategy:  StrategyFEC,
		FECParity: fecK,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for sta := 0; sta < numSTAs; sta++ {
		if err := e.submitLocked(sta, 300, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	sc := &planScratch{}
	tx := e.buildPlanLocked(0, sc)
	if tx == nil {
		t.Fatal("planner produced no transmission")
	}
	return e, &tx.plan
}

// codedFrame rebuilds, outside the transport, exactly the PHY frame
// PHYTransport.DeliverFEC puts on the air for plan: deterministic data
// payloads, RS parity over the zero-padded shards, parity subframes on
// the reserved MACs. The test uses its symbol geometry to aim
// impairments at specific subframes.
func codedFrame(t *testing.T, tr *PHYTransport, plan *Plan) *core.Frame {
	t.Helper()
	k, total := plan.DataSubs, len(plan.Subs)
	shardLen := plan.Subs[k].Bytes
	padded := make([][]byte, total)
	subs := make([]core.Subframe, total)
	for i := 0; i < k; i++ {
		p := subframePayload(tr.Seed, plan.Seq, i, plan.Subs[i])
		subs[i] = core.Subframe{Receiver: STAMAC(plan.Subs[i].STA), MCS: plan.Subs[i].MCS, Payload: p}
		if len(p) < shardLen {
			pp := make([]byte, shardLen)
			copy(pp, p)
			p = pp
		}
		padded[i] = p
	}
	for j := k; j < total; j++ {
		padded[j] = make([]byte, shardLen)
	}
	rs, err := fec.NewRS(k, total-k)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.EncodeInto(padded[k:], padded[:k]); err != nil {
		t.Fatal(err)
	}
	for j := k; j < total; j++ {
		subs[j] = core.Subframe{Receiver: ParityMAC(j - k), MCS: plan.Subs[j].MCS, Payload: padded[j]}
	}
	frame, err := core.BuildFrame(subs, tr.FrameCfg)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// dataSpan returns the sample window of subframe i's DATA symbols (SIG
// excluded) inside the built frame.
func dataSpan(frame *core.Frame, i int) (start, length int) {
	sub := frame.Subframes[i]
	start = ofdm.PreambleLen + (sub.StartSymbol+1)*ofdm.SymbolLen
	return start, len(sub.Blocks) * ofdm.SymbolLen
}

// TestFECDeliverTargetedImpairments aims sample-exact faults at
// individual subframes of one coded PHY transmission and checks the
// erasure layer's verdicts. A Recovered verdict is by construction a
// byte-identity claim — the transport only sets it when the rebuilt
// shard equals the lossless payload — so these checks pin that the full
// burst→decode→reconstruct chain lands byte-true, parity-row math
// included.
func TestFECDeliverTargetedImpairments(t *testing.T) {
	const numSTAs, fecK = 4, 2
	mkTransport := func() *PHYTransport { return &PHYTransport{Seed: 7} }
	_, plan := buildFECPlan(t, numSTAs, fecK, mkTransport())
	frame := codedFrame(t, mkTransport(), plan)
	if len(frame.Subframes) != numSTAs+fecK {
		t.Fatalf("coded frame has %d subframes, want %d", len(frame.Subframes), numSTAs+fecK)
	}

	ctx := context.Background()
	run := func(imps ...faults.Impairment) FECResult {
		t.Helper()
		tr := mkTransport()
		tr.Impair = imps
		res, err := tr.DeliverFEC(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("clean", func(t *testing.T) {
		res := run()
		for i := range res.Direct {
			if !res.Direct[i] || res.Recovered[i] {
				t.Errorf("clean channel sub %d: direct=%v recovered=%v", i, res.Direct[i], res.Recovered[i])
			}
		}
	})

	t.Run("burst-on-data-recovers", func(t *testing.T) {
		start, n := dataSpan(frame, 1)
		res := run(faults.Burst{Start: start, Len: n, GainDB: 12})
		if res.Direct[1] {
			t.Fatal("burst over subframe 1's whole DATA field still decoded directly")
		}
		if !res.Recovered[1] {
			t.Error("subframe 1 not rebuilt byte-true from overheard shards + parity")
		}
		for i := range res.Direct {
			if i != 1 && !res.Direct[i] {
				t.Errorf("untargeted subframe %d lost", i)
			}
		}
	})

	t.Run("burst-on-parity-harmless", func(t *testing.T) {
		// Both parity subframes destroyed: all data arrives directly, so
		// nobody needs them.
		p0start, p0len := dataSpan(frame, numSTAs)
		p1start, p1len := dataSpan(frame, numSTAs+1)
		res := run(
			faults.Burst{Start: p0start, Len: p0len, GainDB: 12},
			faults.Burst{Start: p1start, Len: p1len, GainDB: 12},
		)
		for i := range res.Direct {
			if !res.Direct[i] || res.Recovered[i] {
				t.Errorf("sub %d: direct=%v recovered=%v with only parity impaired",
					i, res.Direct[i], res.Recovered[i])
			}
		}
	})

	t.Run("burst-on-data-and-parity-still-recovers", func(t *testing.T) {
		// Two bursts: one over the last data subframe, one over the final
		// parity subframe (SIG included — the walk past it has nothing left
		// to lose). The victim still holds k shards: three data plus the
		// surviving first parity, so RS reconstruction must repair it.
		dstart, dlen := dataSpan(frame, numSTAs-1)
		p1start, p1len := dataSpan(frame, numSTAs+1)
		res := run(
			faults.Burst{Start: dstart, Len: dlen, GainDB: 12},
			faults.Burst{Start: p1start - ofdm.SymbolLen, Len: p1len + ofdm.SymbolLen, GainDB: 12},
		)
		if res.Direct[numSTAs-1] {
			t.Fatal("burst over the last data subframe still decoded directly")
		}
		if !res.Recovered[numSTAs-1] {
			t.Error("victim not rebuilt from 3 data shards + surviving parity shard")
		}
	})

	t.Run("truncate-tail-drops-parity-only", func(t *testing.T) {
		// Cut the frame just before the parity region: data decodes, parity
		// is gone, nothing needed it.
		p0start, _ := dataSpan(frame, numSTAs)
		res := run(faults.Truncate{At: p0start - ofdm.SymbolLen})
		for i := range res.Direct {
			if !res.Direct[i] {
				t.Errorf("data subframe %d lost to a parity-only truncation", i)
			}
		}
	})

	t.Run("dropout-on-data-recovers", func(t *testing.T) {
		start, n := dataSpan(frame, 2)
		res := run(faults.Dropout{Start: start, Len: n})
		if res.Direct[2] {
			t.Fatal("zeroed subframe 2 still decoded directly")
		}
		if !res.Recovered[2] {
			t.Error("subframe 2 not rebuilt after a full dropout")
		}
	})
}

// TestFECEngineUnderFaultsMatrix runs the erasure-coded engine end to end
// (PHY transport, virtual clock) under one scenario per impairment kind —
// burst, dropout, and truncation placed to straddle data and parity
// subframes — and differentially checks every run against the lossless
// twin: a station never delivers more than its lossless bytes, a run
// without drops reproduces the lossless accounting exactly (recovered
// payloads are byte-checked in the transport, so a recovery that
// reconstructed wrong bytes would surface here as drops), raw air losses
// telescope into recovered + decode-failed, and the matrix as a whole
// must exercise the recovery path.
func TestFECEngineUnderFaultsMatrix(t *testing.T) {
	const numSTAs, fecK = 4, 2
	flows := cbrFlows(numSTAs, 3, 300, time.Millisecond)
	cfg := func(tr Transport) Config {
		return Config{
			NumSTAs:   numSTAs,
			Strategy:  StrategyFEC,
			FECParity: fecK,
			// Parity shards project into the byte cap too: 4 data + 2
			// parity at 300 B each. Full aggregates share the probe
			// frame's geometry, so the aimed faults below land.
			MaxAggBytes: 1800,
			RetryLimit:  3,
			Transport:   tr,
		}
	}

	lossless, err := RunDeterministic(context.Background(), cfg(&PHYTransport{Seed: 7}), flows)
	if err != nil {
		t.Fatal(err)
	}
	if lossless.Delivered != int64(numSTAs*3) || lossless.Dropped != 0 {
		t.Fatalf("lossless PHY baseline: delivered=%d dropped=%d, want %d/0",
			lossless.Delivered, lossless.Dropped, numSTAs*3)
	}

	// Sample geometry of the (identical) first aggregate, for the aimed
	// burst/dropout/trunc scenarios.
	_, plan := buildFECPlan(t, numSTAs, fecK, &PHYTransport{Seed: 7})
	frame := codedFrame(t, &PHYTransport{Seed: 7}, plan)
	d3start, d3len := dataSpan(frame, numSTAs-1)
	p0start, p0len := dataSpan(frame, numSTAs)
	p1start, p1len := dataSpan(frame, numSTAs+1)

	cases := []struct {
		name         string
		imps         []faults.Impairment
		wantRecovery bool // the aimed fault must force parity recovery
	}{
		{"awgn", []faults.Impairment{faults.AWGN{SNRdB: 26}}, false},
		{"cfo", []faults.Impairment{faults.CFO{EpsRad: 0.002, Phase0: 0.3}}, false},
		{"clip", []faults.Impairment{faults.Clip{Level: 1.8}}, false},
		{"phasejitter", []faults.Impairment{faults.PhaseJitter{SigmaRad: 0.02}}, false},
		{"symnoise", []faults.Impairment{faults.SymbolNoise{Sym: 2, Count: 1, Amp: 0.15}}, false},
		{"burst-data", []faults.Impairment{faults.Burst{Start: d3start, Len: d3len, GainDB: 12}}, true},
		{"burst-parity", []faults.Impairment{faults.Burst{Start: p0start, Len: p0len, GainDB: 12}}, false},
		{"burst-data-and-parity", []faults.Impairment{
			faults.Burst{Start: d3start, Len: d3len, GainDB: 12},
			faults.Burst{Start: p1start - ofdm.SymbolLen, Len: p1len + ofdm.SymbolLen, GainDB: 12}}, true},
		{"dropout-data", []faults.Impairment{faults.Dropout{Start: d3start, Len: d3len}}, true},
		{"dropout-parity", []faults.Impairment{faults.Dropout{Start: p1start, Len: p1len}}, false},
		{"trunc-parity-tail", []faults.Impairment{faults.Truncate{At: p0start - ofdm.SymbolLen}}, false},
		{"trunc-mid-data", []faults.Impairment{faults.Truncate{At: d3start + d3len/2}}, false},
	}

	var totalRecovered int64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ct := &countingFECTransport{inner: &PHYTransport{Seed: 7, Impair: tc.imps}}
			st, err := RunDeterministic(context.Background(), cfg(ct), flows)
			if err != nil {
				t.Fatal(err)
			}
			if st.Pending != 0 {
				t.Errorf("run left %d frames pending", st.Pending)
			}
			if st.Delivered+st.Dropped+st.Expired != st.Accepted {
				t.Errorf("inconsistent accounting: %+v", st)
			}
			if got := st.FECRecovered + st.FECDecodeFail; got != ct.lostDirect {
				t.Errorf("recovered(%d) + decode_fail(%d) = %d, want raw air losses %d",
					st.FECRecovered, st.FECDecodeFail, got, ct.lostDirect)
			}
			for sta := range st.DeliveredBytesPerSTA {
				if st.DeliveredBytesPerSTA[sta] > lossless.DeliveredBytesPerSTA[sta] {
					t.Errorf("station %d delivered %d bytes, more than lossless %d",
						sta, st.DeliveredBytesPerSTA[sta], lossless.DeliveredBytesPerSTA[sta])
				}
			}
			if st.Dropped == 0 && st.Expired == 0 {
				for sta := range st.DeliveredBytesPerSTA {
					if st.DeliveredBytesPerSTA[sta] != lossless.DeliveredBytesPerSTA[sta] {
						t.Errorf("station %d delivered %d bytes under %s, lossless run delivered %d",
							sta, st.DeliveredBytesPerSTA[sta], tc.name, lossless.DeliveredBytesPerSTA[sta])
					}
				}
			}
			if tc.wantRecovery && st.FECRecovered == 0 {
				t.Error("aimed fault did not force a parity recovery (geometry drift?)")
			}
			totalRecovered += st.FECRecovered
			t.Logf("delivered=%d dropped=%d recovered=%d decode_fail=%d raw_lost=%d",
				st.Delivered, st.Dropped, st.FECRecovered, st.FECDecodeFail, ct.lostDirect)
		})
	}
	if totalRecovered == 0 {
		t.Error("no scenario in the matrix exercised parity recovery")
	}
}
