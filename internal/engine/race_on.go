//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// loopback throughput test scales its floor by the detector's overhead.
const raceEnabled = true
