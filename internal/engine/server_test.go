package engine

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestWireStreamRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendDataRecord(buf, 7, []byte("hello"))
	buf = AppendSizeRecord(buf, 300, 1400)
	buf = AppendControlRecord(buf, RecDrain)

	br := bufio.NewReader(bytes.NewReader(buf))
	var scratch []byte
	rec, scratch, err := readRecord(br, scratch)
	if err != nil || rec.typ != RecData || rec.sta != 7 || string(rec.payload) != "hello" {
		t.Fatalf("data record = %+v, err %v", rec, err)
	}
	rec, scratch, err = readRecord(br, scratch)
	if err != nil || rec.typ != RecDataSize || rec.sta != 300 || rec.length != 1400 {
		t.Fatalf("size record = %+v, err %v", rec, err)
	}
	rec, _, err = readRecord(br, scratch)
	if err != nil || rec.typ != RecDrain {
		t.Fatalf("control record = %+v, err %v", rec, err)
	}
}

func TestWireDatagramTruncation(t *testing.T) {
	full := AppendDataRecord(nil, 1, []byte("payload"))
	if _, _, err := parseDatagramRecord(full[:3], 0); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := parseDatagramRecord(full[:len(full)-2], 0); err == nil {
		t.Error("truncated payload accepted")
	}
	rec, off, err := parseDatagramRecord(full, 0)
	if err != nil || off != len(full) || string(rec.payload) != "payload" {
		t.Fatalf("rec=%+v off=%d err=%v", rec, off, err)
	}
}

func TestWireOversizeRejected(t *testing.T) {
	hdr := appendHeader(nil, RecData, 0, MaxWirePayload+1)
	if _, _, err := readRecord(bufio.NewReader(bytes.NewReader(hdr)), nil); err == nil {
		t.Error("oversize length prefix accepted")
	}
}

// startLoopback runs an engine + TCP server on an ephemeral loopback
// port and returns the dial address plus a shutdown func.
func startLoopback(t *testing.T, cfg Config) (string, *Engine, func()) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := e.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	srv := NewServer(e)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), e, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func TestServerTCP(t *testing.T) {
	addr, eng, shutdown := startLoopback(t, Config{NumSTAs: 4})
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf []byte
	for k := 0; k < 100; k++ {
		buf = AppendSizeRecord(buf, k%4, 900)
	}
	buf = AppendDataRecord(buf, 0, []byte("real payload bytes"))
	buf = AppendControlRecord(buf, RecDrain)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStatsReply(conn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 101 || st.Delivered != 101 || st.Pending != 0 {
		t.Fatalf("drained stats = %+v", st)
	}
	if got := eng.Stats(); got.Delivered != 101 {
		t.Fatalf("engine stats disagree: %+v", got)
	}
}

func TestServerUDP(t *testing.T) {
	e, err := New(Config{NumSTAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e)
	done := make(chan error, 1)
	go func() { done <- srv.ServeUDP(ctx, pc) }()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var dgram []byte
	for k := 0; k < 20; k++ {
		dgram = AppendSizeRecord(dgram, k%2, 700)
	}
	if _, err := conn.Write(dgram); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(AppendControlRecord(nil, RecDrain)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	st, err := ReadStatsReply(conn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 20 || st.Pending != 0 {
		t.Fatalf("drained stats = %+v", st)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve udp: %v", err)
	}
}

// TestEngineSoak drives ~5 seconds (1s outside CI; set CARPOOL_SOAK=1
// for the full length) of seeded open-loop load through the TCP frontend
// and gates on zero drops below the admission threshold, a fully drained
// shutdown, and no goroutine leaks. The CI engine-soak job runs this
// under -race.
func TestEngineSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	baseline := runtime.NumGoroutine()
	dur := time.Second
	if os.Getenv("CARPOOL_SOAK") != "" {
		dur = 5 * time.Second
	}
	addr, _, shutdown := startLoopback(t, Config{NumSTAs: 8, QueueCap: 1 << 16, Workers: 2})
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:       addr,
		NumSTAs:    8,
		RatePerSec: 20_000,
		FrameBytes: 1200,
		Duration:   dur,
		Seed:       7,
		OpenLoop:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	s := rep.Server
	t.Logf("soak %v: sent %d, server %+v", dur, rep.Sent, s)
	if s.Rejected != 0 || s.Dropped != 0 || s.Expired != 0 {
		t.Errorf("drops below the admission threshold: %+v", s)
	}
	if s.Delivered != rep.Sent || s.Pending != 0 {
		t.Errorf("unclean shutdown: delivered=%d sent=%d pending=%d", s.Delivered, rep.Sent, s.Pending)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after soak: %d > baseline %d", n, baseline)
	}
}

// TestLoadgenLoopbackThroughput is the acceptance criterion: the load
// generator against a loopback carpoold must sustain the frame-rate
// floor with a bounded p99 and leak no goroutines after drain. The floor
// scales down under the race detector and -short (the CI soak job runs
// the full-rate race build).
func TestLoadgenLoopbackThroughput(t *testing.T) {
	baseline := runtime.NumGoroutine()

	frames := int64(200_000)
	floor := 100_000.0
	if raceEnabled {
		floor = 15_000
	}
	if testing.Short() {
		frames, floor = frames/10, floor/2
	}
	// Deep queues: below the admission threshold nothing may drop.
	cfg := Config{NumSTAs: 8, QueueCap: 1 << 16}
	addr, _, shutdown := startLoopback(t, cfg)

	// Rate chosen so the 1s schedule holds the target frame count; the
	// generator runs closed-loop (as fast as the socket accepts).
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:       addr,
		NumSTAs:    8,
		RatePerSec: float64(frames),
		FrameBytes: 1200,
		Duration:   time.Second,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	s := rep.Server
	t.Logf("sent %d frames, drained in %v (%.0f frames/s end to end); server %+v",
		rep.Sent, rep.TotalElapsed.Round(time.Millisecond), rep.EndToEndRate, s)

	if rep.EndToEndRate < floor {
		t.Errorf("end-to-end rate %.0f frames/s below floor %.0f", rep.EndToEndRate, floor)
	}
	if s.Accepted != rep.Sent || s.Rejected != 0 {
		t.Errorf("drops below the admission threshold: accepted=%d rejected=%d sent=%d",
			s.Accepted, s.Rejected, rep.Sent)
	}
	if s.Delivered != s.Accepted || s.Pending != 0 {
		t.Errorf("drain incomplete: %+v", s)
	}
	if s.LatencyP99Ms <= 0 || s.LatencyP99Ms > 30_000 {
		t.Errorf("p99 latency %.3f ms out of bounds", s.LatencyP99Ms)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after load run: %d > baseline %d", n, baseline)
	}
}
