package engine

import (
	"bytes"
	"context"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestParseBatchSlabBoundaries pins the in-place batch parser's edge
// behavior: records split across reads, zero-length payloads, a max-size
// record ending exactly at the slab edge, control records mid-stream, and
// malformed framing.
func TestParseBatchSlabBoundaries(t *testing.T) {
	big := make([]byte, MaxWirePayload)
	for i := range big {
		big[i] = byte(i)
	}
	var stream []byte
	stream = AppendSizeRecord(stream, 3, 900)
	stream = AppendDataRecord(stream, 1, []byte("hello"))
	stream = AppendDataRecord(stream, 2, nil) // zero-length payload
	stream = AppendControlRecord(stream, RecStats)
	stream = AppendDataRecord(stream, 4, big) // max-size record at the edge
	firstLen := 2*recHeaderLen + 5 + recHeaderLen

	// A header split across two reads: nothing consumed, no error.
	items, consumed, ctrl, err := parseBatch(stream[:recHeaderLen-2], nil)
	if len(items) != 0 || consumed != 0 || ctrl.typ != 0 || err != nil {
		t.Fatalf("split header: items=%d consumed=%d ctrl=%#02x err=%v", len(items), consumed, ctrl.typ, err)
	}
	// A payload split across two reads: the scan stops before the record.
	items, consumed, ctrl, err = parseBatch(stream[:recHeaderLen+recHeaderLen+3], nil)
	if len(items) != 1 || consumed != recHeaderLen || ctrl.typ != 0 || err != nil {
		t.Fatalf("split payload: items=%d consumed=%d ctrl=%#02x err=%v", len(items), consumed, ctrl.typ, err)
	}

	// The full prefix through the control record: three ingest records, scan
	// ends at (and consumes) the control.
	ctrlEnd := firstLen + recHeaderLen
	items, consumed, ctrl, err = parseBatch(stream[:ctrlEnd], nil)
	if err != nil || ctrl.typ != RecStats || consumed != ctrlEnd {
		t.Fatalf("to control: consumed=%d ctrl=%#02x err=%v, want %d/RecStats/nil", consumed, ctrl.typ, err, ctrlEnd)
	}
	if len(items) != 3 {
		t.Fatalf("items %d, want 3", len(items))
	}
	if items[0].STA != 3 || items[0].Size != 900 || items[0].Payload != nil {
		t.Errorf("size record item = %+v", items[0])
	}
	if items[1].STA != 1 || string(items[1].Payload) != "hello" {
		t.Errorf("data record item = %+v", items[1])
	}
	if items[2].STA != 2 || items[2].Payload == nil || len(items[2].Payload) != 0 {
		t.Errorf("zero-length payload item = %+v (payload must be empty, not absent)", items[2])
	}

	// Max-size record ending exactly at the slab edge parses whole, and
	// its payload aliases the slab (zero-copy).
	tail := stream[ctrlEnd:]
	items, consumed, ctrl, err = parseBatch(tail, nil)
	if err != nil || ctrl.typ != 0 || consumed != len(tail) || len(items) != 1 {
		t.Fatalf("max-size at edge: items=%d consumed=%d/%d ctrl=%#02x err=%v", len(items), consumed, len(tail), ctrl.typ, err)
	}
	if len(items[0].Payload) != MaxWirePayload || &items[0].Payload[0] != &tail[recHeaderLen] {
		t.Error("max-size payload not aliased zero-copy from the slab")
	}
	// One byte short: stops before the record.
	if _, consumed, _, err = parseBatch(tail[:len(tail)-1], nil); consumed != 0 || err != nil {
		t.Errorf("one short of edge: consumed=%d err=%v", consumed, err)
	}

	// Oversize length prefix and unknown type are fatal, stopping at the
	// offending record with everything before it parsed.
	bad := AppendSizeRecord(nil, 0, 100)
	n := len(bad)
	bad = appendHeader(bad, RecData, 0, MaxWirePayload+1)
	items, consumed, _, err = parseBatch(bad, nil)
	if err == nil || consumed != n || len(items) != 1 {
		t.Errorf("oversize: items=%d consumed=%d err=%v", len(items), consumed, err)
	}
	bad = append(AppendSizeRecord(nil, 0, 100), appendHeader(nil, 0x7f, 0, 0)...)
	items, consumed, _, err = parseBatch(bad, nil)
	if err == nil || consumed != n || len(items) != 1 {
		t.Errorf("unknown type: items=%d consumed=%d err=%v", len(items), consumed, err)
	}
}

// startSlabLoopback is startLoopback with control over the server knobs.
func startSlabLoopback(t *testing.T, cfg Config, tune func(*Server)) (string, *Engine, func()) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := e.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	srv := NewServer(e)
	if tune != nil {
		tune(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), e, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestServerSlabSplitReads drips a record stream through a tiny slab in
// adversarial chunks — splitting headers and payloads across reads and
// forcing a mid-stream slab grow for a record larger than the slab — and
// checks every frame is admitted and delivered.
func TestServerSlabSplitReads(t *testing.T) {
	const slab = 64
	addr, eng, shutdown := startSlabLoopback(t,
		Config{NumSTAs: 4, QueueCap: 1 << 10, RetainPayloads: true},
		func(s *Server) { s.SlabSize = slab })
	defer shutdown()

	payload := bytes.Repeat([]byte{0xa5}, 3*slab) // forces slab growth
	var stream []byte
	for k := 0; k < 50; k++ {
		stream = AppendDataRecord(stream, k%4, []byte("abcdefghij"))
	}
	stream = AppendDataRecord(stream, 0, payload)
	stream = AppendDataRecord(stream, 1, nil) // zero-length: rejected, not fatal
	stream = AppendControlRecord(stream, RecDrain)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write in prime-sized chunks so record boundaries land everywhere.
	for off := 0; off < len(stream); {
		n := min(13, len(stream)-off)
		if _, err := conn.Write(stream[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	st, err := ReadStatsReply(conn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 51 || st.Delivered != 51 || st.Pending != 0 {
		t.Fatalf("drained stats = %+v, want 51 accepted+delivered", st)
	}
	if got := eng.Stats().DeliveredBytes; got != 50*10+int64(len(payload)) {
		t.Fatalf("delivered bytes %d, want %d", got, 50*10+len(payload))
	}
}

// TestServerLegacyMatchesBatched runs the identical record stream through
// the slab batch path and the legacy per-record loop and requires
// identical admission and delivery accounting.
func TestServerLegacyMatchesBatched(t *testing.T) {
	var stream []byte
	for k := 0; k < 200; k++ {
		if k%3 == 0 {
			stream = AppendDataRecord(stream, k%5, bytes.Repeat([]byte{byte(k)}, 64+k))
		} else {
			stream = AppendSizeRecord(stream, k%5, 600+k)
		}
	}
	stream = AppendControlRecord(stream, RecDrain)

	run := func(legacy bool) Stats {
		addr, _, shutdown := startSlabLoopback(t,
			Config{NumSTAs: 5, QueueCap: 1 << 12, RetainPayloads: true},
			func(s *Server) { s.Legacy = legacy })
		defer shutdown()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(stream); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		st, err := ReadStatsReply(conn)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	batched, legacy := run(false), run(true)
	if batched.Accepted != legacy.Accepted || batched.Delivered != legacy.Delivered ||
		batched.DeliveredBytes != legacy.DeliveredBytes || batched.Rejected != legacy.Rejected {
		t.Errorf("slab and legacy paths diverge:\n  batched %+v\n  legacy  %+v", batched, legacy)
	}
}

// FuzzWireBatchParser differentially fuzzes the in-place batch parser
// against the legacy one-record parser: on any byte soup, the consumed
// prefix must decode to the identical record sequence, and the parser must
// never over-consume or panic.
func FuzzWireBatchParser(f *testing.F) {
	var seed []byte
	seed = AppendSizeRecord(seed, 1, 1200)
	seed = AppendDataRecord(seed, 2, []byte("payload"))
	seed = AppendControlRecord(seed, RecStats)
	f.Add(seed)
	f.Add(AppendDataRecord(nil, 0, nil))
	f.Add(appendHeader(nil, RecData, 9, MaxWirePayload+1))
	f.Add(appendHeader(nil, 0x55, 0, 4))
	f.Add(AppendDataRecord(nil, 3, bytes.Repeat([]byte{7}, 300))[:40])
	// Wide batches spanning many stations — the shape the sharded
	// admission path partitions into per-lane sub-batches. One size-only
	// sweep striding a 64-station set, one mixed data/size slab that
	// revisits stations out of order, and one that ends mid-record.
	var wide []byte
	for sta := 0; sta < 64; sta += 3 {
		wide = AppendSizeRecord(wide, sta, 200+sta)
	}
	f.Add(wide)
	var mixed []byte
	for i, sta := range []int{17, 2, 40, 2, 63, 0, 17, 31, 8, 40} {
		if i%2 == 0 {
			mixed = AppendDataRecord(mixed, sta, bytes.Repeat([]byte{byte(sta)}, 5+i))
		} else {
			mixed = AppendSizeRecord(mixed, sta, 600+i)
		}
	}
	f.Add(mixed)
	f.Add(mixed[:len(mixed)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		items, consumed, ctrl, err := parseBatch(data, nil)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d outside 0..%d", consumed, len(data))
		}
		// Re-parse the consumed prefix with the legacy parser; the batch
		// scan must have produced exactly the same records.
		prefix := data[:consumed]
		off, idx := 0, 0
		var gotCtrl byte
		for off < len(prefix) {
			rec, next, perr := parseDatagramRecord(prefix, off)
			if perr != nil {
				t.Fatalf("legacy parser rejects consumed prefix at %d: %v", off, perr)
			}
			off = next
			if rec.typ == RecStats || rec.typ == RecDrain || rec.typ == RecSubscribe || rec.typ == RecStageStats {
				gotCtrl = rec.typ
				break
			}
			if idx >= len(items) {
				t.Fatalf("batch parser missed record %d (type %#02x)", idx, rec.typ)
			}
			it := items[idx]
			idx++
			switch rec.typ {
			case RecData:
				if it.STA != rec.sta || it.Payload == nil || !bytes.Equal(it.Payload, rec.payload) {
					t.Fatalf("data record %d: batch %+v vs legacy %+v", idx-1, it, rec)
				}
			case RecDataSize:
				if it.STA != rec.sta || it.Size != rec.length || it.Payload != nil {
					t.Fatalf("size record %d: batch %+v vs legacy %+v", idx-1, it, rec)
				}
			default:
				t.Fatalf("unknown type %#02x inside consumed prefix", rec.typ)
			}
		}
		if off != len(prefix) {
			t.Fatalf("consumed prefix has %d trailing bytes", len(prefix)-off)
		}
		if idx != len(items) {
			t.Fatalf("batch parser invented %d extra items", len(items)-idx)
		}
		if gotCtrl != ctrl.typ {
			t.Fatalf("control byte %#02x, legacy saw %#02x", ctrl.typ, gotCtrl)
		}
		if err == nil && ctrl.typ == 0 {
			// A clean incomplete stop must leave less than one whole record.
			rest := data[consumed:]
			if _, _, perr := parseDatagramRecord(rest, 0); perr == nil && len(rest) > 0 &&
				rest[0] >= RecData && rest[0] <= RecStageStats && rest[0] != RecTelemetry {
				rec, _, _ := parseDatagramRecord(rest, 0)
				if rec.length <= MaxWirePayload {
					t.Fatalf("parser stopped early before a complete record (type %#02x)", rest[0])
				}
			}
		}
	})
}

// TestLoadgenBatchedLoopbackThroughput is the batched acceptance
// criterion: the generator's grouped writes against the server's slab
// reads must clear double the per-record path's floor — the whole point
// of batching every layer of the serving path.
func TestLoadgenBatchedLoopbackThroughput(t *testing.T) {
	baseline := runtime.NumGoroutine()

	frames := int64(200_000)
	floor := 200_000.0
	if raceEnabled {
		floor = 30_000
	}
	if testing.Short() {
		frames, floor = frames/10, floor/2
	}
	cfg := Config{NumSTAs: 8, QueueCap: 1 << 16}
	addr, _, shutdown := startLoopback(t, cfg)

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:       addr,
		NumSTAs:    8,
		RatePerSec: float64(frames),
		FrameBytes: 1200,
		Duration:   time.Second,
		Seed:       42,
		Batch:      512,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	s := rep.Server
	t.Logf("sent %d frames batched, drained in %v (%.0f frames/s end to end); server %+v",
		rep.Sent, rep.TotalElapsed.Round(time.Millisecond), rep.EndToEndRate, s)

	if rep.EndToEndRate < floor {
		t.Errorf("batched end-to-end rate %.0f frames/s below floor %.0f", rep.EndToEndRate, floor)
	}
	if s.Accepted != rep.Sent || s.Rejected != 0 {
		t.Errorf("drops below the admission threshold: accepted=%d rejected=%d sent=%d",
			s.Accepted, s.Rejected, rep.Sent)
	}
	if s.Delivered != s.Accepted || s.Pending != 0 {
		t.Errorf("drain incomplete: %+v", s)
	}
	if n := goroutineCount(baseline); n > baseline {
		t.Errorf("goroutine leak after batched load run: %d > baseline %d", n, baseline)
	}
}

// TestLoadgenMultiConnDelivery runs the load generator's parallel-sender
// mode against a multi-shard loopback server: three connections stripe
// twelve stations, every extra stream barriers with a stats round-trip,
// and the drain reply must account for the complete offered schedule —
// no frame may race the drain gate into a rejection.
func TestLoadgenMultiConnDelivery(t *testing.T) {
	addr, _, shutdown := startSlabLoopback(t,
		Config{NumSTAs: 12, AdmissionShards: 3, Workers: 2, QueueCap: 1 << 12},
		nil)
	defer shutdown()

	cfg := LoadConfig{
		Addr:       addr,
		NumSTAs:    12,
		RatePerSec: 60_000,
		FrameBytes: 900,
		Duration:   200 * time.Millisecond,
		Seed:       11,
		Batch:      64,
		Conns:      3,
	}
	rep, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != rep.Offered {
		t.Fatalf("sent %d of %d offered", rep.Sent, rep.Offered)
	}
	if rep.Server.Accepted != rep.Sent || rep.Server.Rejected != 0 {
		t.Fatalf("server accepted %d rejected %d, want %d accepted",
			rep.Server.Accepted, rep.Server.Rejected, rep.Sent)
	}
	if rep.Server.Delivered+rep.Server.Dropped != rep.Server.Accepted {
		t.Fatalf("drain left work: delivered %d + dropped %d != accepted %d",
			rep.Server.Delivered, rep.Server.Dropped, rep.Server.Accepted)
	}
}
