package engine

import "carpool/internal/obs"

// engObs caches the engine's metric handles, resolved once in New. Every
// handle is nil-safe, so a nil sink costs one nil check per touch point.
// The queue.* family uses the canonical cross-layer names from
// internal/obs/names.go — the same series the MAC simulator exports — so
// dashboards read one name regardless of which layer served the traffic.
type engObs struct {
	accepted      *obs.Counter
	rejected      *obs.Counter
	delivered     *obs.Counter
	dropped       *obs.Counter
	expired       *obs.Counter
	retries       *obs.Counter
	tx            *obs.Counter
	aggSubframes  *obs.Counter
	seqAcks       *obs.Counter
	transportErrs *obs.Counter
	airtimeUs     *obs.Counter

	// Erasure-coding counters (StrategyFEC): parity subframes on the air,
	// subframes rebuilt from parity, and losses beyond parity's reach.
	fecParityTx   *obs.Counter
	fecRecovered  *obs.Counter
	fecDecodeFail *obs.Counter

	qDropped      *obs.Counter
	qExpired      *obs.Counter
	qBackpressure *obs.Counter
	qDepth        *obs.Gauge

	groupSize *obs.Histogram
	latencyMs *obs.Histogram

	// Per-stage latency decomposition of lifecycle-sampled frames
	// (Config.SampleEvery), on the same shared bounds as latencyMs so the
	// stage histograms and the end-to-end one quantize identically.
	stageWaitMs    *obs.Histogram
	stageBackoffMs *obs.Histogram
	stageAirMs     *obs.Histogram
	stageDecodeMs  *obs.Histogram

	tracer *obs.Tracer
}

// engGroupBuckets covers aggregation group sizes up to the A-HDR capacity.
var engGroupBuckets = []float64{1, 2, 3, 4, 5, 6, 7, 8}

func resolveEngObs(sink *obs.Sink) engObs {
	if sink == nil {
		return engObs{}
	}
	eo := engObs{
		accepted:      sink.Counter("engine.accepted"),
		rejected:      sink.Counter("engine.rejected"),
		delivered:     sink.Counter("engine.delivered"),
		dropped:       sink.Counter("engine.dropped"),
		expired:       sink.Counter("engine.expired"),
		retries:       sink.Counter("engine.retries"),
		tx:            sink.Counter("engine.tx"),
		aggSubframes:  sink.Counter("engine.agg_subframes"),
		seqAcks:       sink.Counter("engine.seq_acks"),
		transportErrs: sink.Counter("engine.transport_errors"),
		airtimeUs:     sink.Counter("engine.airtime_us"),

		fecParityTx:   sink.Counter("engine.fec.parity_tx"),
		fecRecovered:  sink.Counter("engine.fec.recovered"),
		fecDecodeFail: sink.Counter("engine.fec.decode_fail"),

		qDropped:      sink.Counter(obs.QueueDropped),
		qExpired:      sink.Counter(obs.QueueExpired),
		qBackpressure: sink.Counter(obs.QueueBackpressure),
		qDepth:        sink.Gauge(obs.QueueDepth),

		groupSize: sink.Histogram("engine.group_size", engGroupBuckets),
		latencyMs: sink.Histogram("engine.latency_ms", obs.LatencyBucketsMs),

		stageWaitMs:    sink.Histogram("engine.stage.queue_wait_ms", obs.LatencyBucketsMs),
		stageBackoffMs: sink.Histogram("engine.stage.backoff_ms", obs.LatencyBucketsMs),
		stageAirMs:     sink.Histogram("engine.stage.air_ms", obs.LatencyBucketsMs),
		stageDecodeMs:  sink.Histogram("engine.stage.decode_ms", obs.LatencyBucketsMs),

		tracer: sink.Tracer,
	}
	return eo
}
