package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// STAStat is one station's live queue state inside a telemetry update:
// what carpooltop renders per row.
type STAStat struct {
	STA int `json:"sta"`
	// Queue is the station's backlog in frames.
	Queue int `json:"queue"`
	// BacklogAgeMs is the age of the oldest queued frame (0 when empty).
	BacklogAgeMs float64 `json:"backlog_age_ms"`
	// BackoffMs is the remaining retry-backoff gate (0 when eligible).
	BackoffMs float64 `json:"backoff_ms"`
	// FailStreak counts consecutive failed transmissions to this STA.
	FailStreak int `json:"fail_streak"`
	// DeliveredBytes is the station's cumulative delivered payload.
	DeliveredBytes int64 `json:"delivered_bytes"`
}

// StatsDelta is the change in the cumulative counters between two Stats
// snapshots — the Snapshot/Diff form a subscribe stream pushes so a viewer
// can show rates without differentiating on its own clock.
type StatsDelta struct {
	Accepted       int64 `json:"accepted"`
	Rejected       int64 `json:"rejected"`
	Delivered      int64 `json:"delivered"`
	Dropped        int64 `json:"dropped"`
	Expired        int64 `json:"expired"`
	Retries        int64 `json:"retries"`
	Transmissions  int64 `json:"transmissions"`
	Subframes      int64 `json:"subframes"`
	FECParityTx    int64 `json:"fec_parity_tx"`
	FECRecovered   int64 `json:"fec_recovered"`
	FECDecodeFail  int64 `json:"fec_decode_fail"`
	DeliveredBytes int64 `json:"delivered_bytes"`
	ElapsedNs      int64 `json:"elapsed_ns"`
}

// DiffStats returns cur minus prev over the cumulative counter fields.
// Diffing against the zero Stats yields the totals, so a stream's deltas
// telescope: summing every update's Delta reproduces the final cumulative
// counters exactly (the reconciliation carpoolload -subscribe asserts).
func DiffStats(cur, prev Stats) StatsDelta {
	return StatsDelta{
		Accepted:       cur.Accepted - prev.Accepted,
		Rejected:       cur.Rejected - prev.Rejected,
		Delivered:      cur.Delivered - prev.Delivered,
		Dropped:        cur.Dropped - prev.Dropped,
		Expired:        cur.Expired - prev.Expired,
		Retries:        cur.Retries - prev.Retries,
		Transmissions:  cur.Transmissions - prev.Transmissions,
		Subframes:      cur.Subframes - prev.Subframes,
		FECParityTx:    cur.FECParityTx - prev.FECParityTx,
		FECRecovered:   cur.FECRecovered - prev.FECRecovered,
		FECDecodeFail:  cur.FECDecodeFail - prev.FECDecodeFail,
		DeliveredBytes: cur.DeliveredBytes - prev.DeliveredBytes,
		ElapsedNs:      int64(cur.Elapsed - prev.Elapsed),
	}
}

// Add accumulates another delta into d (client-side reconciliation).
func (d *StatsDelta) Add(o StatsDelta) {
	d.Accepted += o.Accepted
	d.Rejected += o.Rejected
	d.Delivered += o.Delivered
	d.Dropped += o.Dropped
	d.Expired += o.Expired
	d.Retries += o.Retries
	d.Transmissions += o.Transmissions
	d.Subframes += o.Subframes
	d.FECParityTx += o.FECParityTx
	d.FECRecovered += o.FECRecovered
	d.FECDecodeFail += o.FECDecodeFail
	d.DeliveredBytes += o.DeliveredBytes
	d.ElapsedNs += o.ElapsedNs
}

// TelemetryUpdate is one pushed RecTelemetry record: cumulative Stats,
// the delta since the stream's previous update, per-STA queue state, the
// stage decomposition when sampling is on, and the health report when the
// server runs a monitor.
type TelemetryUpdate struct {
	// Seq numbers updates within one subscribe stream, from 0.
	Seq uint64 `json:"seq"`
	// Final marks the stream's last update: the engine stopped (drain or
	// close) and Stats is its terminal accounting.
	Final bool  `json:"final,omitempty"`
	Stats Stats `json:"stats"`
	// Delta is Stats minus the previous update's Stats (the first update
	// diffs against zero, so deltas telescope to the cumulative totals).
	Delta  StatsDelta    `json:"delta"`
	PerSTA []STAStat     `json:"per_sta,omitempty"`
	Stages *StageStats   `json:"stages,omitempty"`
	Health *HealthReport `json:"health,omitempty"`
	// PerAP carries each AP's own Stats when the backend is a multi-AP
	// cluster (internal/cluster); nil from a bare engine. Stats above is
	// then the cluster rollup.
	PerAP []APTelemetry `json:"per_ap,omitempty"`
}

// APTelemetry is one AP's slice of a cluster telemetry update.
type APTelemetry struct {
	AP    int   `json:"ap"`
	Stats Stats `json:"stats"`
}

// perSTACoreLocked fills every station's live queue state. Caller holds
// every shard lock (or is single-threaded).
func (e *Engine) perSTACoreLocked(now time.Duration) []STAStat {
	out := make([]STAStat, len(e.queues))
	for sta := range e.queues {
		q := &e.queues[sta]
		s := STAStat{
			STA:            sta,
			Queue:          q.len(),
			FailStreak:     q.failStreak,
			DeliveredBytes: e.deliveredBytes[sta],
		}
		if q.len() > 0 {
			s.BacklogAgeMs = (now - q.headFrame().arrival).Seconds() * 1e3
		}
		if q.nextEligible > now {
			s.BackoffMs = (q.nextEligible - now).Seconds() * 1e3
		}
		out[sta] = s
	}
	return out
}

// PerSTA snapshots every station's live queue state.
func (e *Engine) PerSTA() []STAStat {
	e.lockAll()
	defer e.unlockAll()
	return e.perSTACoreLocked(e.clock.Now())
}

// Snapshot is one coherent view of the engine: cumulative Stats, the
// stage decomposition, and per-STA queue state, all captured at a single
// instant under every shard lock — so a viewer can never see stage
// histograms from one moment paired with counters from another.
type Snapshot struct {
	Stats  Stats      `json:"stats"`
	Stages StageStats `json:"stages"`
	PerSTA []STAStat  `json:"per_sta"`
}

// SnapshotAll captures Stats, StageStats, and PerSTA atomically: one
// lockAll round covers all three, and only the quantile math runs after
// the locks drop. This is what the telemetry pusher and /debug/health
// consume, replacing the three separate lock acquisitions that could
// interleave with deliveries between them.
func (e *Engine) SnapshotAll() Snapshot {
	now := e.clock.Now()
	e.lockAll()
	st, lat := e.statsCoreLocked(now)
	ss, snaps := e.stageCoreLocked()
	per := e.perSTACoreLocked(now)
	e.unlockAll()
	finishLatency(&st, lat)
	finishStages(&ss, &snaps)
	return Snapshot{Stats: st, Stages: ss, PerSTA: per}
}

// Telemetry assembles one update relative to prev (the previous update's
// Stats; zero Stats for the first) from a single coherent SnapshotAll.
// Stages is attached only when lifecycle sampling is configured; Health
// is the server's to attach.
func (e *Engine) Telemetry(seq uint64, prev Stats, final bool) TelemetryUpdate {
	snap := e.SnapshotAll()
	upd := TelemetryUpdate{
		Seq:    seq,
		Final:  final,
		Stats:  snap.Stats,
		Delta:  DiffStats(snap.Stats, prev),
		PerSTA: snap.PerSTA,
	}
	if e.cfg.SampleEvery > 0 {
		stages := snap.Stages
		upd.Stages = &stages
	}
	return upd
}

// telemetryReply encodes a telemetry record: RecTelemetry framing with a
// JSON payload.
func telemetryReply(upd TelemetryUpdate) ([]byte, error) {
	doc, err := json.Marshal(upd)
	if err != nil {
		return nil, err
	}
	out := appendHeader(make([]byte, 0, recHeaderLen+len(doc)), RecTelemetry, 0, len(doc))
	return append(out, doc...), nil
}

// stageStatsReply encodes a stage-stats record: RecStageStats framing with
// a JSON payload.
func stageStatsReply(st StageStats) ([]byte, error) {
	doc, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	out := appendHeader(make([]byte, 0, recHeaderLen+len(doc)), RecStageStats, 0, len(doc))
	return append(out, doc...), nil
}

// readReplyPayload reads one reply record of the wanted type from a
// buffered stream and returns its JSON payload.
func readReplyPayload(br *bufio.Reader, want byte) ([]byte, error) {
	rec, _, err := readRecord(br, nil)
	if err != nil {
		return nil, err
	}
	if rec.typ != want {
		return nil, fmt.Errorf("engine: reply record type %#02x, want %#02x", rec.typ, want)
	}
	doc := make([]byte, rec.length)
	if _, err := io.ReadFull(br, doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// ReadTelemetry decodes one pushed telemetry update — the client half of a
// subscribe stream, used by carpooltop and carpoolload -subscribe. Pass
// the same *bufio.Reader for every read on a connection, or buffered bytes
// are lost between calls.
func ReadTelemetry(br *bufio.Reader) (TelemetryUpdate, error) {
	doc, err := readReplyPayload(br, RecTelemetry)
	if err != nil {
		return TelemetryUpdate{}, err
	}
	var upd TelemetryUpdate
	if err := json.Unmarshal(doc, &upd); err != nil {
		return TelemetryUpdate{}, fmt.Errorf("engine: malformed telemetry record: %w", err)
	}
	return upd, nil
}

// ReadStageStatsReply decodes one stage-stats reply.
func ReadStageStatsReply(br *bufio.Reader) (StageStats, error) {
	doc, err := readReplyPayload(br, RecStageStats)
	if err != nil {
		return StageStats{}, err
	}
	var st StageStats
	if err := json.Unmarshal(doc, &st); err != nil {
		return StageStats{}, fmt.Errorf("engine: malformed stage-stats record: %w", err)
	}
	return st, nil
}

// SubscribeInterval bounds a subscribe request's interval server-side.
const (
	minSubscribeInterval     = 10 * time.Millisecond
	defaultSubscribeInterval = time.Second
)
