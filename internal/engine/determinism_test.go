package engine

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"carpool/internal/mac"
	"carpool/internal/sim"
	"carpool/internal/traffic"
)

// equivWorkload builds a seeded per-STA Poisson workload that fully
// drains well inside the simulator's Duration: modest rate, short offered
// window, no frame near the queue cap.
func equivWorkload(seed int64, numSTAs int) [][]traffic.Arrival {
	flows := make([][]traffic.Arrival, numSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, sta)))
		flows[sta] = traffic.PoissonFlow(rng, 400, 600, 100*time.Millisecond)
	}
	return flows
}

func TestDeterministicReplayIdentical(t *testing.T) {
	cfg := Config{
		NumSTAs: 6,
		Transport: &OracleTransport{
			Oracle:    mac.NewLossyLocOracle(1, 4),
			Locations: []int{0, 1, 2, 3, 4, 5},
		},
	}
	flows := equivWorkload(7, 6)
	a, err := RunDeterministic(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = &OracleTransport{
		Oracle:    mac.NewLossyLocOracle(1, 4),
		Locations: []int{0, 1, 2, 3, 4, 5},
	}
	b, err := RunDeterministic(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n a=%+v\n b=%+v", a, b)
	}
}

// TestEngineMatchesMACSim is the acceptance criterion: across seeded
// workloads, the deterministic engine and the discrete-event MAC
// simulator — sharing a delivery oracle that is a pure function of
// station location — must agree exactly on delivered bytes per STA and
// on Jain byte-fairness. Scheduling and timing differ between the two
// (the engine has no contention), but with a location-pure oracle and a
// workload that fully drains, delivered outcomes depend only on each
// frame's retry exhaustion, which both implement identically.
func TestEngineMatchesMACSim(t *testing.T) {
	const numSTAs = 6
	cases := []struct {
		name string
		seed int64
		dead []int
	}{
		{"seed1-lossless", 1, nil},
		{"seed2-one-dead", 2, []int{3}},
		{"seed3-two-dead", 3, []int{0, 5}},
		{"seed4-half-dead", 4, []int{1, 2, 4}},
	}
	locs := make([]int, numSTAs)
	for i := range locs {
		locs[i] = i
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flows := equivWorkload(tc.seed, numSTAs)

			engStats, err := RunDeterministic(context.Background(), Config{
				NumSTAs: numSTAs,
				Transport: &OracleTransport{
					Oracle:    mac.NewLossyLocOracle(tc.dead...),
					Locations: locs,
				},
			}, flows)
			if err != nil {
				t.Fatal(err)
			}

			macRes, err := mac.Run(mac.Config{
				Protocol:     mac.Carpool,
				NumSTAs:      numSTAs,
				Duration:     2 * time.Second, // offered window is 100ms: full drain
				Seed:         tc.seed,
				Downlink:     flows,
				Oracle:       mac.NewLossyLocOracle(tc.dead...),
				STALocations: locs,
			})
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(engStats.DeliveredBytesPerSTA, macRes.DeliveredBytesPerSTA) {
				t.Errorf("delivered bytes per STA diverged:\n engine %v\n macsim %v",
					engStats.DeliveredBytesPerSTA, macRes.DeliveredBytesPerSTA)
			}
			if d := math.Abs(engStats.ByteFairnessIndex - macRes.ByteFairnessIndex); d > 1e-12 {
				t.Errorf("fairness diverged: engine %.15f macsim %.15f",
					engStats.ByteFairnessIndex, macRes.ByteFairnessIndex)
			}
			if engStats.Pending != 0 {
				t.Errorf("engine left %d frames pending (workload must drain)", engStats.Pending)
			}
		})
	}
}
