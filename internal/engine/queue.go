package engine

import "time"

// qframe is one queued downlink frame. seq is its global admission order
// and survives requeueing after a failed transmission, so the scheduler's
// cross-STA FIFO walk keeps serving frames in arrival order — the same
// FIFO-priority discipline the MAC simulator's single AP queue implements.
type qframe struct {
	seq     uint64
	size    int
	arrival time.Duration
	retries int
	payload []byte // nil unless the engine retains payloads (PHY transport)
}

// staQueue is one station's bounded FIFO plus its retry-backoff gate.
// Arrivals within a station are monotone non-decreasing from the head
// (requeued frames are older than anything behind them), which lets the
// latency-expiry sweep stop at the first fresh frame.
type staQueue struct {
	buf  []qframe
	head int
	// nextEligible gates scheduling after failed transmissions: the
	// capped-exponential backoff of the engine's per-STA retry policy.
	nextEligible time.Duration
	// failStreak counts consecutive failed transmissions to this STA.
	failStreak int
}

func (q *staQueue) len() int { return len(q.buf) - q.head }

func (q *staQueue) headFrame() *qframe { return &q.buf[q.head] }

func (q *staQueue) push(f qframe) { q.buf = append(q.buf, f) }

func (q *staQueue) pop() qframe {
	f := q.buf[q.head]
	q.buf[q.head].payload = nil // release retained bytes
	q.head++
	// Compact once the dead prefix dominates, keeping the backing array.
	if q.head >= 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

// requeue reinserts failed frames at the queue head, preserving their
// relative order and original seq/arrival so FIFO position and latency
// accounting survive retries.
func (q *staQueue) requeue(fs []qframe) {
	if len(fs) == 0 {
		return
	}
	if q.head >= len(fs) {
		q.head -= len(fs)
		copy(q.buf[q.head:], fs)
		return
	}
	merged := make([]qframe, 0, len(fs)+q.len())
	merged = append(merged, fs...)
	merged = append(merged, q.buf[q.head:]...)
	q.buf, q.head = merged, 0
}
