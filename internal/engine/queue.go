package engine

import "time"

// qframe is one queued downlink frame header. seq is its global admission
// order and survives requeueing after a failed transmission, so the
// scheduler's cross-STA FIFO walk keeps serving frames in arrival order —
// the same FIFO-priority discipline the MAC simulator's single AP queue
// implements. Headers live contiguously in the station's ring slab;
// retained payload bytes live in the engine's shared arena, with chunk
// tracking the refcounted slab the payload aliases.
type qframe struct {
	seq     uint64
	size    int
	arrival time.Duration
	retries int
	payload []byte      // nil unless the engine retains payloads (PHY transport)
	chunk   *arenaChunk // arena slab owning payload; nil for size-only frames

	// Lifecycle-span metadata (Config.SampleEvery): sampled marks the
	// deterministic 1-in-N frames that carry stage accumulators in their
	// slab slot. lastTouch is the engine-clock instant the frame last
	// changed stage (admit, plan pop, retry requeue); the accumulators
	// total the frame's time per stage across every TX attempt —
	// queue wait while the STA was eligible, wait behind the STA's retry
	// backoff gate, airtime (aggregate + sequential ACKs), and transport
	// decode time. All zero on unsampled frames, so disabled sampling
	// costs only the wider slab slot (no clock reads, no branches beyond
	// the sampled check).
	sampled                                bool
	lastTouch                              time.Duration
	waitAcc, backoffAcc, airAcc, decodeAcc time.Duration
}

// staQueue is one station's bounded FIFO plus its retry-backoff gate: a
// power-of-two ring of frame headers addressed by free-running head/tail
// counters (uint64 wraparound keeps the modular arithmetic exact, and lets
// requeue step head backwards without special cases). Arrivals within a
// station are monotone non-decreasing from the head (requeued frames are
// older than anything behind them), which lets the latency-expiry sweep
// stop at the first fresh frame.
//
// The ring is sized once to cover QueueCap on first use and only regrows
// for the transient overshoot a retry requeue can cause after new
// admissions refilled the queue, so the steady-state serving path never
// allocates per frame.
type staQueue struct {
	ring       []qframe // power-of-two capacity, allocated on first push
	head, tail uint64
	// nextEligible gates scheduling after failed transmissions: the
	// capped-exponential backoff of the engine's per-STA retry policy.
	nextEligible time.Duration
	// failStreak counts consecutive failed transmissions to this STA.
	failStreak int
	// migrating marks a station mid-handoff (ExtractSTA saw in-flight
	// frames): the planner stops boarding its frames so the in-flight
	// count drains within one transmission and the next extraction
	// attempt succeeds, instead of racing the planner for an idle gap.
	// Cleared by the successful extraction.
	migrating bool
}

func (q *staQueue) len() int { return int(q.tail - q.head) }

func (q *staQueue) headFrame() *qframe { return &q.ring[q.head&uint64(len(q.ring)-1)] }

// maxInitialRing clamps how far a first allocation pre-sizes toward the
// engine's QueueCap. A deep cap (tens of thousands of frames) must not
// eagerly commit megabytes of zeroed ring per station — under roaming
// every (station, AP) pair pays that first push, and the memclr dominated
// whole-cluster profiles. Past the clamp the ring doubles toward QueueCap
// only as the station's backlog actually deepens.
const maxInitialRing = 1024

// grow ensures ring capacity for need frames, re-basing the live window at
// index zero. sizeHint (the engine's QueueCap, clamped to maxInitialRing)
// sizes the first allocation so shallow-cap engines allocate exactly once
// per station.
func (q *staQueue) grow(need, sizeHint int) {
	if len(q.ring) >= need {
		return
	}
	if sizeHint > maxInitialRing {
		sizeHint = maxInitialRing
	}
	if need < sizeHint {
		need = sizeHint
	}
	newCap := 8
	for newCap < need {
		newCap <<= 1
	}
	next := make([]qframe, newCap)
	n := q.len()
	if n > 0 {
		mask := uint64(len(q.ring) - 1)
		for i := 0; i < n; i++ {
			next[i] = q.ring[(q.head+uint64(i))&mask]
		}
	}
	q.ring, q.head, q.tail = next, 0, uint64(n)
}

func (q *staQueue) push(f qframe) {
	q.pushHint(f, 1)
}

// pushHint appends with a first-allocation size hint (see grow).
func (q *staQueue) pushHint(f qframe, sizeHint int) {
	if q.len() == len(q.ring) {
		q.grow(q.len()+1, sizeHint)
	}
	q.ring[q.tail&uint64(len(q.ring)-1)] = f
	q.tail++
}

func (q *staQueue) pop() qframe {
	i := q.head & uint64(len(q.ring)-1)
	f := q.ring[i]
	q.ring[i] = qframe{} // release retained bytes and the arena reference
	q.head++
	return f
}

// requeue reinserts failed frames at the queue head, preserving their
// relative order and original seq/arrival so FIFO position and latency
// accounting survive retries. Stepping head backwards is exact under
// modular arithmetic even past zero; the slots it re-enters were vacated
// by the pops that extracted these same frames, or freed by grow when new
// admissions refilled the ring in between.
func (q *staQueue) requeue(fs []qframe) {
	if len(fs) == 0 {
		return
	}
	q.grow(q.len()+len(fs), 1)
	mask := uint64(len(q.ring) - 1)
	q.head -= uint64(len(fs))
	for i := range fs {
		q.ring[(q.head+uint64(i))&mask] = fs[i]
	}
}
