package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/mac"
	"carpool/internal/obs"
	"carpool/internal/traffic"
)

// cbrFlows builds n identical constant-bit-rate flows: count frames of
// size bytes spaced interval apart.
func cbrFlows(n, count, size int, interval time.Duration) [][]traffic.Arrival {
	flows := make([][]traffic.Arrival, n)
	for i := range flows {
		for k := 0; k < count; k++ {
			flows[i] = append(flows[i], traffic.Arrival{Time: time.Duration(k) * interval, Size: size})
		}
	}
	return flows
}

func TestAdmissionControl(t *testing.T) {
	e, err := New(Config{NumSTAs: 2, QueueCap: 3, MaxAggBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(-1, []byte{1}); err == nil {
		t.Error("negative station accepted")
	}
	if err := e.Submit(2, []byte{1}); err == nil {
		t.Error("out-of-range station accepted")
	}
	if err := e.SubmitSize(0, 0); err == nil {
		t.Error("zero-size frame accepted")
	}
	if err := e.SubmitSize(0, 1001); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize frame: got %v, want ErrOversize", err)
	}
	for i := 0; i < 3; i++ {
		if err := e.SubmitSize(0, 100); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrQueueFull) {
		t.Errorf("full queue: got %v, want ErrQueueFull", err)
	}
	// The other station's queue is independent.
	if err := e.SubmitSize(1, 100); err != nil {
		t.Errorf("station 1 rejected: %v", err)
	}
	st := e.Stats()
	if st.Accepted != 4 || st.Rejected != 2 {
		t.Errorf("accepted=%d rejected=%d, want 4/2", st.Accepted, st.Rejected)
	}
}

func TestSubmitAfterDrainRejected(t *testing.T) {
	e, err := New(Config{NumSTAs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain submit: got %v, want ErrClosed", err)
	}
}

func TestQueueRequeuePreservesOrder(t *testing.T) {
	var q staQueue
	for i := 0; i < 5; i++ {
		q.push(qframe{seq: uint64(i), size: 100})
	}
	a, b := q.pop(), q.pop()
	// Requeue at head with fewer popped than requeued exercises the
	// reallocation path too.
	q.requeue([]qframe{a, b})
	for i := 0; i < 5; i++ {
		if got := q.pop().seq; got != uint64(i) {
			t.Fatalf("pop %d: seq %d", i, got)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
	// head == 0 with pending frames: requeue must step the ring's head
	// counter backwards (modular wraparound), not corrupt order.
	q.push(qframe{seq: 10})
	q.requeue([]qframe{{seq: 8}, {seq: 9}})
	want := []uint64{8, 9, 10}
	for i, w := range want {
		if got := q.pop().seq; got != w {
			t.Fatalf("merged pop %d: seq %d, want %d", i, got, w)
		}
	}
}

// TestQueueRingWraparound churns a small ring far past its capacity so
// head/tail lap the buffer many times, interleaving pushes, pops, and
// head-requeues, and checks strict FIFO order end to end.
func TestQueueRingWraparound(t *testing.T) {
	var q staQueue
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			q.push(qframe{seq: next})
			next++
		}
		if round%5 == 4 {
			// Fail a two-frame "transmission": pop two, put them back.
			a, b := q.pop(), q.pop()
			q.requeue([]qframe{a, b})
		}
		for i := 0; i < 3; i++ {
			if got := q.pop().seq; got != expect {
				t.Fatalf("round %d: pop seq %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for q.len() > 0 {
		if got := q.pop().seq; got != expect {
			t.Fatalf("tail drain: pop seq %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d frames, pushed %d", expect, next)
	}
	if len(q.ring) > 16 {
		t.Errorf("bounded churn grew the ring to %d slots", len(q.ring))
	}
}

// TestSubmitBatch checks the batched admission path: one call admits many
// frames across stations with per-item admission control, identical
// accounting to per-frame Submit, and at most one coalesced wakeup.
func TestSubmitBatch(t *testing.T) {
	e, err := New(Config{NumSTAs: 2, QueueCap: 3, MaxAggBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{STA: 0, Size: 100},
		{STA: 0, Payload: []byte("abc")},
		{STA: 1, Size: 200},
		{STA: 0, Size: 2000}, // oversize: rejected, batch continues
		{STA: 0, Size: 100},
		{STA: 0, Size: 100}, // queue cap 3: rejected
		{STA: 1, Size: 50},
	}
	accepted, firstErr := e.SubmitBatch(items)
	if accepted != 5 {
		t.Errorf("accepted %d, want 5", accepted)
	}
	if !errors.Is(firstErr, ErrOversize) {
		t.Errorf("first error %v, want ErrOversize", firstErr)
	}
	st := e.Stats()
	if st.Accepted != 5 || st.Rejected != 2 || st.Pending != 5 {
		t.Errorf("accepted=%d rejected=%d pending=%d, want 5/2/5", st.Accepted, st.Rejected, st.Pending)
	}
	if got := e.queues[0].len(); got != 3 {
		t.Errorf("station 0 queue %d, want 3", got)
	}
	if got := e.queues[1].len(); got != 2 {
		t.Errorf("station 1 queue %d, want 2", got)
	}
}

// TestSubmitBatchDrains pushes a batch through a running engine and checks
// every accepted frame is delivered on drain.
func TestSubmitBatchDrains(t *testing.T) {
	e, err := New(Config{NumSTAs: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 128)
	for i := range items {
		items[i] = BatchItem{STA: i % 4, Size: 300}
	}
	var accepted int
	for accepted < len(items) {
		n, err := e.SubmitBatch(items[accepted:])
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		accepted += n
		if n == 0 {
			time.Sleep(100 * time.Microsecond) // backpressure: let workers drain
		}
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Delivered != int64(len(items)) || st.Pending != 0 {
		t.Errorf("delivered=%d pending=%d, want %d/0", st.Delivered, st.Pending, len(items))
	}
}

// TestPayloadArenaRecycling checks refcounted chunk reuse: allocations are
// served from shared slabs, releases recycle chunks instead of leaking
// them, and payload contents survive aliasing.
func TestPayloadArenaRecycling(t *testing.T) {
	var a payloadArena
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}

	// A full chunk's worth of allocations shares one slab.
	type ref struct {
		p []byte
		c *arenaChunk
	}
	var refs []ref
	for i := 0; i < arenaChunkBytes/1000; i++ {
		p, c := a.alloc(payload)
		if c == nil {
			t.Fatal("nil chunk for retained payload")
		}
		refs = append(refs, ref{p, c})
	}
	first := refs[0].c
	for i, r := range refs {
		if r.c != first {
			t.Fatalf("alloc %d spilled to a new chunk with %d bytes still free", i, arenaChunkBytes-first.used)
		}
		for j := range r.p {
			if r.p[j] != byte(j) {
				t.Fatalf("alloc %d corrupted at byte %d", i, j)
			}
		}
	}

	// Releasing every reference recycles the chunk for the next fill.
	for _, r := range refs {
		a.release(r.c)
	}
	p2, c2 := a.alloc(payload)
	if c2 != first {
		t.Error("drained current chunk not reused in place")
	}
	if &p2[0] != &first.buf[0] {
		t.Error("reused chunk did not rewind to its start")
	}

	// Oversize payloads get exact-size dedicated chunks.
	big := make([]byte, arenaChunkBytes+1)
	pb, cb := a.alloc(big)
	if cb == first || len(pb) != len(big) || cap(pb) != len(big) {
		t.Errorf("oversize alloc: chunk shared=%v len=%d cap=%d", cb == first, len(pb), cap(pb))
	}
	a.release(cb)
	if len(a.free) != 0 {
		t.Error("oversize chunk entered the free list")
	}
}

func TestPlanStrictFIFOByteCap(t *testing.T) {
	// One admission lane: cross-STA FIFO is global, as pre-shard.
	e, err := New(Config{NumSTAs: 2, MaxAggBytes: 1000, AdmissionShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Admission order: sta0(600), sta1(600), sta0(100). The second frame
	// breaches the cap, and strict FIFO means the third — though it would
	// fit — must not jump the line.
	e.mu.Lock()
	_ = e.submitLocked(0, 600, nil, 0)
	_ = e.submitLocked(1, 600, nil, 0)
	_ = e.submitLocked(0, 100, nil, 0)
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 1 {
		t.Fatalf("plan = %+v, want exactly one sub", tx)
	}
	if tx.plan.Subs[0].STA != 0 || tx.plan.Subs[0].Bytes != 600 {
		t.Errorf("sub = %+v, want sta0/600B", tx.plan.Subs[0])
	}
}

func TestPlanReceiverCap(t *testing.T) {
	e, err := New(Config{NumSTAs: 4, MaxReceivers: 2, AdmissionShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	for sta := 0; sta < 4; sta++ {
		_ = e.submitLocked(sta, 200, nil, 0)
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	if tx == nil || len(tx.plan.Subs) != 2 {
		t.Fatalf("first plan has %d subs, want 2", len(tx.plan.Subs))
	}
	if tx.plan.Subs[0].STA != 0 || tx.plan.Subs[1].STA != 1 {
		t.Errorf("first plan serves %+v, want stations 0,1", tx.plan.Subs)
	}
	// Excluded stations are served by the next plan, still in FIFO order.
	tx2 := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx2 == nil || len(tx2.plan.Subs) != 2 ||
		tx2.plan.Subs[0].STA != 2 || tx2.plan.Subs[1].STA != 3 {
		t.Fatalf("second plan = %+v, want stations 2,3", tx2)
	}
}

func TestPlanAirtimeBudget(t *testing.T) {
	// Budget just over one frame's airtime: each plan carries one frame,
	// and the first frame is always admitted even when it alone exceeds
	// the budget (progress guarantee).
	e, err := New(Config{NumSTAs: 1, AirtimeBudget: 1 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	_ = e.submitLocked(0, 1400, nil, 0)
	_ = e.submitLocked(0, 1400, nil, 0)
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 1 || tx.plan.Subs[0].Bytes != 1400 {
		t.Fatalf("plan = %+v, want single 1400B frame", tx)
	}
	if tx.plan.Airtime <= 1*time.Microsecond {
		t.Errorf("airtime %v should exceed the budget (progress guarantee)", tx.plan.Airtime)
	}
}

func TestPlanGroupsFramesPerSTA(t *testing.T) {
	e, err := New(Config{NumSTAs: 2, AdmissionShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	for i := 0; i < 3; i++ {
		_ = e.submitLocked(0, 100, nil, 0)
		_ = e.submitLocked(1, 100, nil, 0)
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 2 {
		t.Fatalf("plan = %+v, want 2 subs", tx)
	}
	for i, sub := range tx.plan.Subs {
		if sub.Bytes != 300 || len(tx.frames[i]) != 3 {
			t.Errorf("sub %d: %dB/%d frames, want 300/3", i, sub.Bytes, len(tx.frames[i]))
		}
		if sub.NumSym <= 0 || sub.StartSym < mac.AHDRSymbols+mac.SIGSymbols {
			t.Errorf("sub %d span %d+%d invalid", i, sub.StartSym, sub.NumSym)
		}
	}
	// Symbol spans must be disjoint and ordered.
	if a, b := tx.plan.Subs[0], tx.plan.Subs[1]; a.StartSym+a.NumSym+mac.SIGSymbols != b.StartSym {
		t.Errorf("spans not contiguous: %+v then %+v", a, b)
	}
}

func TestBackoffProgression(t *testing.T) {
	e, err := New(Config{NumSTAs: 1, BackoffBase: 100 * time.Microsecond, BackoffCap: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		400 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := e.backoffAfter(i + 1); got != w {
			t.Errorf("streak %d: backoff %v, want %v", i+1, got, w)
		}
	}
}

func TestExpiry(t *testing.T) {
	cfg := Config{
		NumSTAs:    1,
		MaxLatency: 5 * time.Millisecond,
		// Dead station: nothing delivers, so every frame either backs off
		// until it expires or exhausts retries.
		Transport: &OracleTransport{Oracle: mac.NewLossyLocOracle(0), Locations: []int{0}},
	}
	flows := cbrFlows(1, 10, 200, time.Millisecond)
	st, err := RunDeterministic(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 0 {
		t.Errorf("delivered %d frames on a dead link", st.Delivered)
	}
	if st.Expired+st.Dropped != 10 {
		t.Errorf("expired=%d dropped=%d, want 10 total", st.Expired, st.Dropped)
	}
	if st.Expired == 0 {
		t.Errorf("MaxLatency never expired a frame (dropped=%d)", st.Dropped)
	}
	if st.Pending != 0 {
		t.Errorf("pending=%d after drain", st.Pending)
	}
}

func TestRetryLimitAttempts(t *testing.T) {
	// A dead station with no MaxLatency: every frame makes RetryLimit+1
	// attempts then drops — the simulator's retry discipline.
	cfg := Config{
		NumSTAs:    2,
		RetryLimit: 3,
		Transport:  &OracleTransport{Oracle: mac.NewLossyLocOracle(1), Locations: []int{0, 1}},
	}
	st, err := RunDeterministic(context.Background(), cfg, cbrFlows(2, 5, 300, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 5 || st.Dropped != 5 {
		t.Fatalf("delivered=%d dropped=%d, want 5/5", st.Delivered, st.Dropped)
	}
	if st.Retries != 5*4 {
		t.Errorf("retries=%d, want %d (RetryLimit+1 attempts per dropped frame)", st.Retries, 5*4)
	}
	if st.DeliveredBytesPerSTA[1] != 0 || st.DeliveredBytesPerSTA[0] != 5*300 {
		t.Errorf("per-STA bytes %v", st.DeliveredBytesPerSTA)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumSTAs: 0},
		{NumSTAs: 1, QueueCap: -1},
		{NumSTAs: 1, MaxReceivers: bloom.MaxReceivers + 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestEngineMetricsSharedNames(t *testing.T) {
	// The engine must export queue pressure under the same canonical
	// names the MAC simulator uses, on an explicit sink.
	reg := obs.NewRegistry()
	sink := &obs.Sink{Registry: reg}
	cfg := Config{NumSTAs: 1, QueueCap: 2, Obs: sink}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.SubmitSize(0, 100)
	_ = e.SubmitSize(0, 100)
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected overflow, got %v", err)
	}
	counters := reg.Snapshot().Counters
	if counters[obs.QueueDropped] != 1 {
		t.Errorf("%s = %d, want 1", obs.QueueDropped, counters[obs.QueueDropped])
	}
	if counters[obs.QueueBackpressure] != 1 {
		t.Errorf("%s = %d, want 1", obs.QueueBackpressure, counters[obs.QueueBackpressure])
	}
}

func TestStatsAccountingIdentity(t *testing.T) {
	cfg := Config{
		NumSTAs:   4,
		Transport: &OracleTransport{Oracle: mac.NewLossyLocOracle(3), Locations: []int{0, 1, 2, 3}},
	}
	st, err := RunDeterministic(context.Background(), cfg, cbrFlows(4, 25, 400, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != st.Delivered+st.Dropped+st.Expired+st.Pending {
		t.Errorf("accounting identity broken: %+v", st)
	}
	if st.MeanGroupSize <= 1 {
		t.Errorf("mean group size %.2f, want aggregation > 1", st.MeanGroupSize)
	}
	if st.SeqACKs != st.Subframes {
		t.Errorf("seqACKs=%d subframes=%d, want one ACK slot per subframe", st.SeqACKs, st.Subframes)
	}
}
