package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/mac"
	"carpool/internal/obs"
	"carpool/internal/traffic"
)

// cbrFlows builds n identical constant-bit-rate flows: count frames of
// size bytes spaced interval apart.
func cbrFlows(n, count, size int, interval time.Duration) [][]traffic.Arrival {
	flows := make([][]traffic.Arrival, n)
	for i := range flows {
		for k := 0; k < count; k++ {
			flows[i] = append(flows[i], traffic.Arrival{Time: time.Duration(k) * interval, Size: size})
		}
	}
	return flows
}

func TestAdmissionControl(t *testing.T) {
	e, err := New(Config{NumSTAs: 2, QueueCap: 3, MaxAggBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(-1, []byte{1}); err == nil {
		t.Error("negative station accepted")
	}
	if err := e.Submit(2, []byte{1}); err == nil {
		t.Error("out-of-range station accepted")
	}
	if err := e.SubmitSize(0, 0); err == nil {
		t.Error("zero-size frame accepted")
	}
	if err := e.SubmitSize(0, 1001); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize frame: got %v, want ErrOversize", err)
	}
	for i := 0; i < 3; i++ {
		if err := e.SubmitSize(0, 100); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrQueueFull) {
		t.Errorf("full queue: got %v, want ErrQueueFull", err)
	}
	// The other station's queue is independent.
	if err := e.SubmitSize(1, 100); err != nil {
		t.Errorf("station 1 rejected: %v", err)
	}
	st := e.Stats()
	if st.Accepted != 4 || st.Rejected != 2 {
		t.Errorf("accepted=%d rejected=%d, want 4/2", st.Accepted, st.Rejected)
	}
}

func TestSubmitAfterDrainRejected(t *testing.T) {
	e, err := New(Config{NumSTAs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain submit: got %v, want ErrClosed", err)
	}
}

func TestQueueRequeuePreservesOrder(t *testing.T) {
	var q staQueue
	for i := 0; i < 5; i++ {
		q.push(qframe{seq: uint64(i), size: 100})
	}
	a, b := q.pop(), q.pop()
	// Requeue at head with fewer popped than requeued exercises the
	// reallocation path too.
	q.requeue([]qframe{a, b})
	for i := 0; i < 5; i++ {
		if got := q.pop().seq; got != uint64(i) {
			t.Fatalf("pop %d: seq %d", i, got)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
	// head == 0 with pending frames: requeue must reallocate.
	q.push(qframe{seq: 10})
	q.requeue([]qframe{{seq: 8}, {seq: 9}})
	want := []uint64{8, 9, 10}
	for i, w := range want {
		if got := q.pop().seq; got != w {
			t.Fatalf("merged pop %d: seq %d, want %d", i, got, w)
		}
	}
}

func TestPlanStrictFIFOByteCap(t *testing.T) {
	e, err := New(Config{NumSTAs: 2, MaxAggBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Admission order: sta0(600), sta1(600), sta0(100). The second frame
	// breaches the cap, and strict FIFO means the third — though it would
	// fit — must not jump the line.
	e.mu.Lock()
	_ = e.submitLocked(0, 600, nil, 0)
	_ = e.submitLocked(1, 600, nil, 0)
	_ = e.submitLocked(0, 100, nil, 0)
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 1 {
		t.Fatalf("plan = %+v, want exactly one sub", tx)
	}
	if tx.plan.Subs[0].STA != 0 || tx.plan.Subs[0].Bytes != 600 {
		t.Errorf("sub = %+v, want sta0/600B", tx.plan.Subs[0])
	}
}

func TestPlanReceiverCap(t *testing.T) {
	e, err := New(Config{NumSTAs: 4, MaxReceivers: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	for sta := 0; sta < 4; sta++ {
		_ = e.submitLocked(sta, 200, nil, 0)
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	if tx == nil || len(tx.plan.Subs) != 2 {
		t.Fatalf("first plan has %d subs, want 2", len(tx.plan.Subs))
	}
	if tx.plan.Subs[0].STA != 0 || tx.plan.Subs[1].STA != 1 {
		t.Errorf("first plan serves %+v, want stations 0,1", tx.plan.Subs)
	}
	// Excluded stations are served by the next plan, still in FIFO order.
	for i := range tx.frames {
		for range tx.frames[i] {
			e.pending--
		}
	}
	tx2 := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx2 == nil || len(tx2.plan.Subs) != 2 ||
		tx2.plan.Subs[0].STA != 2 || tx2.plan.Subs[1].STA != 3 {
		t.Fatalf("second plan = %+v, want stations 2,3", tx2)
	}
}

func TestPlanAirtimeBudget(t *testing.T) {
	// Budget just over one frame's airtime: each plan carries one frame,
	// and the first frame is always admitted even when it alone exceeds
	// the budget (progress guarantee).
	e, err := New(Config{NumSTAs: 1, AirtimeBudget: 1 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	_ = e.submitLocked(0, 1400, nil, 0)
	_ = e.submitLocked(0, 1400, nil, 0)
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 1 || tx.plan.Subs[0].Bytes != 1400 {
		t.Fatalf("plan = %+v, want single 1400B frame", tx)
	}
	if tx.plan.Airtime <= 1*time.Microsecond {
		t.Errorf("airtime %v should exceed the budget (progress guarantee)", tx.plan.Airtime)
	}
}

func TestPlanGroupsFramesPerSTA(t *testing.T) {
	e, err := New(Config{NumSTAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	for i := 0; i < 3; i++ {
		_ = e.submitLocked(0, 100, nil, 0)
		_ = e.submitLocked(1, 100, nil, 0)
	}
	var sc planScratch
	tx := e.buildPlanLocked(0, &sc)
	e.mu.Unlock()
	if tx == nil || len(tx.plan.Subs) != 2 {
		t.Fatalf("plan = %+v, want 2 subs", tx)
	}
	for i, sub := range tx.plan.Subs {
		if sub.Bytes != 300 || len(tx.frames[i]) != 3 {
			t.Errorf("sub %d: %dB/%d frames, want 300/3", i, sub.Bytes, len(tx.frames[i]))
		}
		if sub.NumSym <= 0 || sub.StartSym < mac.AHDRSymbols+mac.SIGSymbols {
			t.Errorf("sub %d span %d+%d invalid", i, sub.StartSym, sub.NumSym)
		}
	}
	// Symbol spans must be disjoint and ordered.
	if a, b := tx.plan.Subs[0], tx.plan.Subs[1]; a.StartSym+a.NumSym+mac.SIGSymbols != b.StartSym {
		t.Errorf("spans not contiguous: %+v then %+v", a, b)
	}
}

func TestBackoffProgression(t *testing.T) {
	e, err := New(Config{NumSTAs: 1, BackoffBase: 100 * time.Microsecond, BackoffCap: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		400 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := e.backoffAfter(i + 1); got != w {
			t.Errorf("streak %d: backoff %v, want %v", i+1, got, w)
		}
	}
}

func TestExpiry(t *testing.T) {
	cfg := Config{
		NumSTAs:    1,
		MaxLatency: 5 * time.Millisecond,
		// Dead station: nothing delivers, so every frame either backs off
		// until it expires or exhausts retries.
		Transport: &OracleTransport{Oracle: mac.NewLossyLocOracle(0), Locations: []int{0}},
	}
	flows := cbrFlows(1, 10, 200, time.Millisecond)
	st, err := RunDeterministic(context.Background(), cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 0 {
		t.Errorf("delivered %d frames on a dead link", st.Delivered)
	}
	if st.Expired+st.Dropped != 10 {
		t.Errorf("expired=%d dropped=%d, want 10 total", st.Expired, st.Dropped)
	}
	if st.Expired == 0 {
		t.Errorf("MaxLatency never expired a frame (dropped=%d)", st.Dropped)
	}
	if st.Pending != 0 {
		t.Errorf("pending=%d after drain", st.Pending)
	}
}

func TestRetryLimitAttempts(t *testing.T) {
	// A dead station with no MaxLatency: every frame makes RetryLimit+1
	// attempts then drops — the simulator's retry discipline.
	cfg := Config{
		NumSTAs:    2,
		RetryLimit: 3,
		Transport:  &OracleTransport{Oracle: mac.NewLossyLocOracle(1), Locations: []int{0, 1}},
	}
	st, err := RunDeterministic(context.Background(), cfg, cbrFlows(2, 5, 300, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 5 || st.Dropped != 5 {
		t.Fatalf("delivered=%d dropped=%d, want 5/5", st.Delivered, st.Dropped)
	}
	if st.Retries != 5*4 {
		t.Errorf("retries=%d, want %d (RetryLimit+1 attempts per dropped frame)", st.Retries, 5*4)
	}
	if st.DeliveredBytesPerSTA[1] != 0 || st.DeliveredBytesPerSTA[0] != 5*300 {
		t.Errorf("per-STA bytes %v", st.DeliveredBytesPerSTA)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumSTAs: 0},
		{NumSTAs: 1, QueueCap: -1},
		{NumSTAs: 1, MaxReceivers: bloom.MaxReceivers + 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestEngineMetricsSharedNames(t *testing.T) {
	// The engine must export queue pressure under the same canonical
	// names the MAC simulator uses, on an explicit sink.
	reg := obs.NewRegistry()
	sink := &obs.Sink{Registry: reg}
	cfg := Config{NumSTAs: 1, QueueCap: 2, Obs: sink}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.SubmitSize(0, 100)
	_ = e.SubmitSize(0, 100)
	if err := e.SubmitSize(0, 100); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected overflow, got %v", err)
	}
	counters := reg.Snapshot().Counters
	if counters[obs.QueueDropped] != 1 {
		t.Errorf("%s = %d, want 1", obs.QueueDropped, counters[obs.QueueDropped])
	}
	if counters[obs.QueueBackpressure] != 1 {
		t.Errorf("%s = %d, want 1", obs.QueueBackpressure, counters[obs.QueueBackpressure])
	}
}

func TestStatsAccountingIdentity(t *testing.T) {
	cfg := Config{
		NumSTAs:   4,
		Transport: &OracleTransport{Oracle: mac.NewLossyLocOracle(3), Locations: []int{0, 1, 2, 3}},
	}
	st, err := RunDeterministic(context.Background(), cfg, cbrFlows(4, 25, 400, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != st.Delivered+st.Dropped+st.Expired+st.Pending {
		t.Errorf("accounting identity broken: %+v", st)
	}
	if st.MeanGroupSize <= 1 {
		t.Errorf("mean group size %.2f, want aggregation > 1", st.MeanGroupSize)
	}
	if st.SeqACKs != st.Subframes {
		t.Errorf("seqACKs=%d subframes=%d, want one ACK slot per subframe", st.SeqACKs, st.Subframes)
	}
}
