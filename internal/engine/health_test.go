package engine

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"carpool/internal/mac"
	"carpool/internal/obs"
)

func reasons(rep HealthReport) string {
	doc, _ := json.Marshal(rep.Reasons)
	return string(doc)
}

// TestHealthRetryStormAndSaturation walks a monitor through synthetic
// Stats: calm → retry storm (degraded) → storm plus a saturated backlog
// (unhealthy) → recovery (ok), checking the per-detector state, the
// transition counter, and the rising-edge fire counters along the way.
func TestHealthRetryStormAndSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewHealthMonitor(HealthConfig{
		Window:         3,
		MinRetryEvents: 10,
		Capacity:       100,
		Obs:            &obs.Sink{Registry: reg, Tracer: obs.NewTracer(64)},
	})
	if rep := m.Report(); rep.Status != HealthOK {
		t.Fatalf("pre-observation status %q, want ok", rep.Status)
	}

	st := Stats{}
	feed := func(mut func(*Stats)) HealthReport {
		mut(&st)
		return m.Observe(st)
	}
	calm := func(s *Stats) { s.Accepted += 100; s.Delivered += 100; s.DeliveredBytes += 100_000 }

	for i := 0; i < 4; i++ {
		if rep := feed(calm); rep.Status != HealthOK {
			t.Fatalf("calm sample %d: status %q reasons %s", i, rep.Status, reasons(rep))
		}
	}

	// Retry storm: retries dwarf deliveries but progress continues, so only
	// one detector fires.
	storm := func(s *Stats) { s.Accepted += 2; s.Delivered += 2; s.Retries += 200 }
	rep := feed(storm)
	if rep.Status != HealthDegraded || !rep.Detectors[DetRetryStorm].Firing {
		t.Fatalf("storm: status %q reasons %s", rep.Status, reasons(rep))
	}
	if d := rep.Detectors[DetRetryStorm]; d.Value <= d.Threshold {
		t.Errorf("storm detector value %.2f not above threshold %.2f", d.Value, d.Threshold)
	}

	// Pile a saturated backlog on top: two detectors → unhealthy.
	rep = feed(func(s *Stats) { storm(s); s.Pending = 95 })
	if rep.Status != HealthUnhealthy {
		t.Fatalf("storm+saturation: status %q reasons %s", rep.Status, reasons(rep))
	}
	if !rep.Detectors[DetQueueSaturation].Firing {
		t.Error("saturation detector not firing at 95/100 backlog")
	}

	// Recovery: the window slides past the storm samples and every delta
	// decays; the monitor must return to ok on its own.
	st.Pending = 0
	var last HealthReport
	for i := 0; i < 4; i++ {
		last = feed(calm)
	}
	if last.Status != HealthOK {
		t.Fatalf("after recovery: status %q reasons %s", last.Status, reasons(last))
	}

	snap := reg.Snapshot()
	if got := snap.Counters["health.transitions"]; got < 3 {
		t.Errorf("health.transitions = %d, want >= 3 (ok→degraded→unhealthy→ok)", got)
	}
	if got := snap.Counters["health."+DetRetryStorm+".fires"]; got != 1 {
		t.Errorf("retry-storm fires = %d, want 1 (rising edge only)", got)
	}
	if got := snap.Gauges["health.status"]; got != 0 {
		t.Errorf("health.status gauge = %v after recovery, want 0", got)
	}
}

// TestHealthFairnessCollapse fires the Jain-index detector: one station
// absorbing the whole window's deliveries while previously served stations
// starve.
func TestHealthFairnessCollapse(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{Window: 2, MinFairnessBytes: 1000})
	st := Stats{Delivered: 3, DeliveredBytes: 3, DeliveredBytesPerSTA: []int64{1, 1, 1}}
	if rep := m.Observe(st); rep.Status != HealthOK {
		t.Fatalf("seed sample: status %q", rep.Status)
	}
	st.Delivered += 9
	st.DeliveredBytes += 9000
	st.DeliveredBytesPerSTA = []int64{9001, 1, 1}
	rep := m.Observe(st)
	if rep.Status != HealthDegraded || !rep.Detectors[DetFairnessCollapse].Firing {
		t.Fatalf("status %q reasons %s, want degraded via fairness collapse", rep.Status, reasons(rep))
	}
	if v := rep.Detectors[DetFairnessCollapse].Value; v > 0.34 {
		t.Errorf("Jain over deltas = %.3f, want ~1/3 (one of three stations served)", v)
	}
}

// TestHealthGoodputStall fires the stall detector: a full window with
// backlog present and nothing delivered.
func TestHealthGoodputStall(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{Window: 2})
	st := Stats{Accepted: 10, Pending: 10}
	if rep := m.Observe(st); rep.Detectors[DetGoodputStall].Firing {
		t.Fatal("stall fired before the window filled")
	}
	rep := m.Observe(st)
	if rep.Status != HealthDegraded || !rep.Detectors[DetGoodputStall].Firing {
		t.Fatalf("status %q reasons %s, want degraded via goodput stall", rep.Status, reasons(rep))
	}
	// An idle engine (no backlog, no arrivals) must not read as stalled.
	idle := NewHealthMonitor(HealthConfig{Window: 2})
	idle.Observe(Stats{})
	if rep := idle.Observe(Stats{}); rep.Detectors[DetGoodputStall].Firing {
		t.Error("stall fired on an idle engine with no work")
	}
}

// TestHealthHandler checks the /debug/health contract: JSON body with the
// status, HTTP 200 while ok or degraded, 503 once unhealthy.
func TestHealthHandler(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{Window: 2, MinRetryEvents: 1, Capacity: 10})
	get := func() (int, HealthReport) {
		rec := httptest.NewRecorder()
		m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q", ct)
		}
		var rep HealthReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("body not JSON: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, rep
	}

	if code, rep := get(); code != 200 || rep.Status != HealthOK {
		t.Fatalf("fresh monitor: %d %q", code, rep.Status)
	}
	m.Observe(Stats{Delivered: 1})
	m.Observe(Stats{Delivered: 2, Retries: 40})
	if code, rep := get(); code != 200 || rep.Status != HealthDegraded {
		t.Fatalf("degraded: %d %q (%s)", code, rep.Status, reasons(rep))
	}
	m.Observe(Stats{Delivered: 2, Retries: 80, Pending: 10})
	if code, rep := get(); code != 503 || rep.Status != HealthUnhealthy {
		t.Fatalf("unhealthy: %d %q (%s)", code, rep.Status, reasons(rep))
	}
}

// stormTransport flips between a lossless oracle and one where stations 0
// and 1 are dead, injecting and clearing a retry storm mid-run.
type stormTransport struct {
	storm bool
	good  Transport
	bad   Transport
}

func (s *stormTransport) Deliver(ctx context.Context, plan *Plan) ([]bool, error) {
	if s.storm {
		return s.bad.Deliver(ctx, plan)
	}
	return s.good.Deliver(ctx, plan)
}

// TestHealthEndToEndRetryStorm drives a real engine under the virtual
// clock through calm → injected retry storm → recovery and requires the
// monitor to flip ok → degraded (with the retry-storm reason, and never
// unhealthy) → ok.
func TestHealthEndToEndRetryStorm(t *testing.T) {
	st := &stormTransport{
		good: &OracleTransport{},
		bad: &OracleTransport{
			Oracle:    mac.NewLossyLocOracle(0, 1),
			Locations: []int{0, 1, 2, 3},
		},
	}
	clk := &virtualClock{}
	e, err := New(Config{NumSTAs: 4, QueueCap: 512, Clock: clk, Transport: st})
	if err != nil {
		t.Fatal(err)
	}
	m := NewHealthMonitor(HealthConfig{Window: 3, MinRetryEvents: 10})

	ctx := context.Background()
	var sc planScratch
	round := func(frames int) HealthReport {
		for i := 0; i < frames; i++ {
			for sta := 0; sta < 4; sta++ {
				_ = e.submitLocked(sta, 600, nil, clk.now)
			}
		}
		for {
			if tx := e.buildPlanLocked(clk.now, &sc); tx != nil {
				ok, derr := e.cfg.Transport.Deliver(ctx, &tx.plan)
				clk.now += tx.plan.Airtime + tx.plan.ACKTime
				e.accountLocked(tx, ok, derr, clk.now, 0)
				continue
			}
			if d, ok := e.earliestEligibleLocked(clk.now); ok {
				if d <= 0 {
					d = 1
				}
				clk.now += d
				continue
			}
			break
		}
		return m.Observe(e.statsLocked(clk.now))
	}

	for i := 0; i < 3; i++ {
		if rep := round(20); rep.Status != HealthOK {
			t.Fatalf("calm round %d: status %q reasons %s", i, rep.Status, reasons(rep))
		}
	}

	st.storm = true
	sawStorm := false
	for i := 0; i < 3; i++ {
		rep := round(20)
		if rep.Status == HealthUnhealthy {
			t.Fatalf("storm round %d escalated to unhealthy: %s", i, reasons(rep))
		}
		if rep.Status == HealthDegraded && rep.Detectors[DetRetryStorm].Firing {
			sawStorm = true
		}
	}
	if !sawStorm {
		t.Fatal("injected retry storm never degraded health")
	}

	st.storm = false
	var rep HealthReport
	for i := 0; i < 5; i++ {
		rep = round(20)
	}
	if rep.Status != HealthOK {
		t.Fatalf("after storm cleared: status %q reasons %s", rep.Status, reasons(rep))
	}
	if got := e.statsLocked(clk.now); got.Retries == 0 || got.Delivered == 0 {
		t.Fatalf("scenario too weak: %+v", got)
	}
}
