package engine

import (
	"sort"
	"time"

	"carpool/internal/obs"
)

// latBoundsMs is the engine's latency bucket set — the canonical log-spaced
// bounds shared with the `engine.latency_ms` sink histogram, so the Stats
// percentiles, stats wire records, and /debug/metrics all report identical
// numbers. See obs.LatencyBucketsMs for the quantile error bound (estimates
// overshoot by at most 10^(1/20)-1 ≈ 12.2% relative).
var latBoundsMs = obs.LatencyBucketsMs

// latHist is the engine's deterministic latency histogram: plain int64
// bucket counts over latBoundsMs, guarded by e.mu rather than atomics so
// the deterministic virtual-clock mode accumulates reproducibly. It
// replaces the old fixed-capacity delay ring: observation is O(log buckets)
// with no per-sample storage, and Stats() snapshots the (small) bucket
// array under the lock instead of copying and sorting the whole sample
// window there.
type latHist struct {
	counts []int64 // len(latBoundsMs)+1, last is overflow
	count  int64
}

func newLatHist() latHist {
	return latHist{counts: make([]int64, len(latBoundsMs)+1)}
}

func (h *latHist) observe(ms float64) {
	h.counts[sort.SearchFloat64s(latBoundsMs, ms)]++
	h.count++
}

// snapshot copies the bucket counts (nil when nothing was observed, so
// finishLatency can skip quantile work entirely).
func (h *latHist) snapshot() []int64 {
	if h.count == 0 {
		return nil
	}
	return append([]int64(nil), h.counts...)
}

// quantileMs estimates the q-quantile over a snapshotted count array.
func quantileMs(counts []int64, q float64) float64 {
	return obs.BucketQuantile(latBoundsMs, counts, q)
}

// Stats is a point-in-time account of an engine run, JSON-ready for the
// carpoold stats endpoint and the carpoolload report.
type Stats struct {
	// Accepted counts frames admitted past backpressure; Rejected those
	// refused (queue full, draining, oversize).
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Delivered counts frames whose subframe was ACKed; Dropped those that
	// exhausted the retry limit; Expired those that overstayed MaxLatency.
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Expired   int64 `json:"expired"`
	// Pending is the queued backlog at snapshot time.
	Pending int64 `json:"pending"`
	// Retries counts per-frame retransmission attempts.
	Retries int64 `json:"retries"`
	// Transmissions counts aggregate TXs; Subframes the subframes across
	// them; SeqACKs the sequential-ACK slots consumed (§4.2: one per
	// receiver per transmission).
	Transmissions int64 `json:"transmissions"`
	Subframes     int64 `json:"subframes"`
	SeqACKs       int64 `json:"seq_acks"`
	// FECParityTx counts parity subframes put on the air (StrategyFEC);
	// FECRecovered subframes that were lost on the air but rebuilt from
	// parity (delivered without a retransmission); FECDecodeFail
	// subframes whose loss exceeded parity's reach and fell back to the
	// shared-fate retry path. All zero under StrategyRetry.
	FECParityTx   int64 `json:"fec_parity_tx"`
	FECRecovered  int64 `json:"fec_recovered"`
	FECDecodeFail int64 `json:"fec_decode_fail"`
	// MeanGroupSize is Subframes/Transmissions — the carpool occupancy.
	MeanGroupSize float64 `json:"mean_group_size"`
	// AirtimeBusy is the summed air occupancy (data + ACK trains) of every
	// transmission — virtual time in deterministic mode.
	AirtimeBusy time.Duration `json:"airtime_busy_ns"`
	// Elapsed is wall (or virtual) time from engine start to the snapshot.
	Elapsed time.Duration `json:"elapsed_ns"`
	// DeliveredBytes totals delivered payload; DeliveredBytesPerSTA splits
	// it by station — the series the engine-vs-macsim conformance pair
	// compares.
	DeliveredBytes       int64   `json:"delivered_bytes"`
	DeliveredBytesPerSTA []int64 `json:"delivered_bytes_per_sta"`
	// OfferedSTAs flags stations that were offered traffic — the
	// fairness denominator. Exported so a multi-AP rollup can merge
	// per-AP snapshots and recompute ByteFairnessIndex with the same
	// denominator the single engine uses (a dead station that was
	// offered but never served still counts).
	OfferedSTAs []bool `json:"offered_stas,omitempty"`
	// ByteFairnessIndex is Jain's index over DeliveredBytesPerSTA across
	// stations that were offered traffic (1 = perfectly fair), the same
	// form the MAC simulator reports.
	ByteFairnessIndex float64 `json:"byte_fairness_index"`
	// GoodputMbps is delivered payload bits over Elapsed.
	GoodputMbps float64 `json:"goodput_mbps"`
	// AirtimeGoodputMbps is delivered payload bits over AirtimeBusy — the
	// channel-efficiency view, comparable across pacing modes.
	AirtimeGoodputMbps float64 `json:"airtime_goodput_mbps"`
	// DropRate is (Dropped+Expired+Rejected)/offered.
	DropRate float64 `json:"drop_rate"`
	// Latency quantile estimates (milliseconds) from the log-bucketed
	// delivery histogram (shared bounds with engine.latency_ms; estimates
	// within +12.2% of the true quantile — see obs.LatencyBucketsMs).
	// Zero when nothing was delivered.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats snapshots the engine's accounting. Safe to call concurrently with
// a running engine: the per-shard counters and the (small) latency bucket
// arrays are read with every shard lock held — one coherent instant
// across lanes — and the quantile scan runs after the locks are released,
// so a stats poll never stalls the serving path behind percentile math.
func (e *Engine) Stats() Stats {
	e.lockAll()
	st, lat := e.statsCoreLocked(e.clock.Now())
	e.unlockAll()
	finishLatency(&st, lat)
	return st
}

// statsLocked is the single-threaded form used by the deterministic
// runners (and tests), which already own the engine exclusively.
func (e *Engine) statsLocked(now time.Duration) Stats {
	st, lat := e.statsCoreLocked(now)
	finishLatency(&st, lat)
	return st
}

// statsCoreLocked aggregates the per-shard counters into one Stats,
// returning the merged latency bucket snapshot for quantile computation
// outside the locks. Caller holds every shard lock (or is
// single-threaded); with one shard the sums reduce to the old globals,
// keeping deterministic single-shard Stats byte-identical.
func (e *Engine) statsCoreLocked(now time.Duration) (Stats, []int64) {
	st := Stats{
		Pending: e.totalPending.Load(),
		Elapsed: now,
	}
	var lat []int64
	for i := range e.shards {
		sh := &e.shards[i]
		st.Accepted += sh.accepted
		st.Rejected += sh.rejected
		st.Delivered += sh.delivered
		st.Dropped += sh.dropped
		st.Expired += sh.expired
		st.Retries += sh.retriesN
		st.Transmissions += sh.txN
		st.Subframes += sh.subN
		st.SeqACKs += sh.seqAcks
		st.FECParityTx += sh.fecParityTx
		st.FECRecovered += sh.fecRecovered
		st.FECDecodeFail += sh.fecDecodeFail
		st.AirtimeBusy += sh.busy
		if sh.lat.count > 0 {
			if lat == nil {
				lat = make([]int64, len(sh.lat.counts))
			}
			for b, c := range sh.lat.counts {
				lat[b] += c
			}
		}
	}
	if st.Transmissions > 0 {
		st.MeanGroupSize = float64(st.Subframes) / float64(st.Transmissions)
	}
	st.DeliveredBytesPerSTA = append([]int64(nil), e.deliveredBytes...)
	st.OfferedSTAs = append([]bool(nil), e.offered...)
	var sum, sumSq float64
	var offered float64
	for i, b := range e.deliveredBytes {
		st.DeliveredBytes += b
		sum += float64(b)
		sumSq += float64(b) * float64(b)
		if e.offered[i] {
			offered++
		}
	}
	if offered > 0 && sumSq > 0 {
		st.ByteFairnessIndex = sum * sum / (offered * sumSq)
	}
	if st.Elapsed > 0 {
		st.GoodputMbps = float64(st.DeliveredBytes) * 8 / st.Elapsed.Seconds() / 1e6
	}
	if st.AirtimeBusy > 0 {
		st.AirtimeGoodputMbps = float64(st.DeliveredBytes) * 8 / st.AirtimeBusy.Seconds() / 1e6
	}
	if total := st.Accepted + st.Rejected; total > 0 {
		st.DropRate = float64(st.Dropped+st.Expired+st.Rejected) / float64(total)
	}
	return st, lat
}

// finishLatency fills the latency quantiles from a bucket snapshot, run
// outside the engine lock.
func finishLatency(st *Stats, counts []int64) {
	if counts == nil {
		return
	}
	st.LatencyP50Ms = quantileMs(counts, 0.50)
	st.LatencyP95Ms = quantileMs(counts, 0.95)
	st.LatencyP99Ms = quantileMs(counts, 0.99)
}
