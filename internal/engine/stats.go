package engine

import (
	"time"

	"carpool/internal/stats"
)

// delayRing keeps the most recent delivered-frame latencies (seconds) in
// a fixed window for percentile reporting without unbounded growth.
type delayRing struct {
	buf  []float64
	pos  int
	full bool
}

func newDelayRing(capacity int) delayRing {
	return delayRing{buf: make([]float64, capacity)}
}

func (r *delayRing) add(v float64) {
	r.buf[r.pos] = v
	r.pos++
	if r.pos == len(r.buf) {
		r.pos, r.full = 0, true
	}
}

// samples returns a copy of the retained window.
func (r *delayRing) samples() []float64 {
	if r.full {
		return append([]float64(nil), r.buf...)
	}
	return append([]float64(nil), r.buf[:r.pos]...)
}

// Stats is a point-in-time account of an engine run, JSON-ready for the
// carpoold stats endpoint and the carpoolload report.
type Stats struct {
	// Accepted counts frames admitted past backpressure; Rejected those
	// refused (queue full, draining, oversize).
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Delivered counts frames whose subframe was ACKed; Dropped those that
	// exhausted the retry limit; Expired those that overstayed MaxLatency.
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Expired   int64 `json:"expired"`
	// Pending is the queued backlog at snapshot time.
	Pending int64 `json:"pending"`
	// Retries counts per-frame retransmission attempts.
	Retries int64 `json:"retries"`
	// Transmissions counts aggregate TXs; Subframes the subframes across
	// them; SeqACKs the sequential-ACK slots consumed (§4.2: one per
	// receiver per transmission).
	Transmissions int64 `json:"transmissions"`
	Subframes     int64 `json:"subframes"`
	SeqACKs       int64 `json:"seq_acks"`
	// MeanGroupSize is Subframes/Transmissions — the carpool occupancy.
	MeanGroupSize float64 `json:"mean_group_size"`
	// AirtimeBusy is the summed air occupancy (data + ACK trains) of every
	// transmission — virtual time in deterministic mode.
	AirtimeBusy time.Duration `json:"airtime_busy_ns"`
	// Elapsed is wall (or virtual) time from engine start to the snapshot.
	Elapsed time.Duration `json:"elapsed_ns"`
	// DeliveredBytes totals delivered payload; DeliveredBytesPerSTA splits
	// it by station — the series the engine-vs-macsim conformance pair
	// compares.
	DeliveredBytes       int64   `json:"delivered_bytes"`
	DeliveredBytesPerSTA []int64 `json:"delivered_bytes_per_sta"`
	// ByteFairnessIndex is Jain's index over DeliveredBytesPerSTA across
	// stations that were offered traffic (1 = perfectly fair), the same
	// form the MAC simulator reports.
	ByteFairnessIndex float64 `json:"byte_fairness_index"`
	// GoodputMbps is delivered payload bits over Elapsed.
	GoodputMbps float64 `json:"goodput_mbps"`
	// AirtimeGoodputMbps is delivered payload bits over AirtimeBusy — the
	// channel-efficiency view, comparable across pacing modes.
	AirtimeGoodputMbps float64 `json:"airtime_goodput_mbps"`
	// DropRate is (Dropped+Expired+Rejected)/offered.
	DropRate float64 `json:"drop_rate"`
	// Latency percentiles (milliseconds) over the retained delivery
	// window; zero when nothing was delivered.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats snapshots the engine's accounting. Safe to call concurrently with
// a running engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked(e.clock.Now())
}

func (e *Engine) statsLocked(now time.Duration) Stats {
	st := Stats{
		Accepted:      e.accepted,
		Rejected:      e.rejected,
		Delivered:     e.delivered,
		Dropped:       e.dropped,
		Expired:       e.expired,
		Pending:       int64(e.pending),
		Retries:       e.retriesN,
		Transmissions: e.txN,
		Subframes:     e.subN,
		SeqACKs:       e.seqAcks,
		AirtimeBusy:   e.busy,
		Elapsed:       now,
	}
	if st.Transmissions > 0 {
		st.MeanGroupSize = float64(st.Subframes) / float64(st.Transmissions)
	}
	st.DeliveredBytesPerSTA = append([]int64(nil), e.deliveredBytes...)
	var sum, sumSq float64
	var offered float64
	for i, b := range e.deliveredBytes {
		st.DeliveredBytes += b
		sum += float64(b)
		sumSq += float64(b) * float64(b)
		if e.offered[i] {
			offered++
		}
	}
	if offered > 0 && sumSq > 0 {
		st.ByteFairnessIndex = sum * sum / (offered * sumSq)
	}
	if st.Elapsed > 0 {
		st.GoodputMbps = float64(st.DeliveredBytes) * 8 / st.Elapsed.Seconds() / 1e6
	}
	if st.AirtimeBusy > 0 {
		st.AirtimeGoodputMbps = float64(st.DeliveredBytes) * 8 / st.AirtimeBusy.Seconds() / 1e6
	}
	if total := e.accepted + e.rejected; total > 0 {
		st.DropRate = float64(e.dropped+e.expired+e.rejected) / float64(total)
	}
	if s := e.delays.samples(); len(s) > 0 {
		cdf := stats.NewCDF(s)
		st.LatencyP50Ms = cdf.Quantile(0.50) * 1e3
		st.LatencyP95Ms = cdf.Quantile(0.95) * 1e3
		st.LatencyP99Ms = cdf.Quantile(0.99) * 1e3
	}
	return st
}
