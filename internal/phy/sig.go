package phy

import (
	"fmt"

	"carpool/internal/fec"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
)

// SIG is the decoded PLCP header of one (sub)frame: the modulation/coding
// scheme and payload length in bytes. In Carpool every subframe carries its
// own SIG, so different receivers can get different MCSs in one frame
// (paper §4.1).
type SIG struct {
	MCS    MCS
	Length int // payload bytes, 1..4095
}

const (
	sigBitCount = 24
	maxSIGLen   = 1<<12 - 1
	serviceBits = 16
)

// MaxPayloadBytes is the largest payload one SIG can announce: the 12-bit
// PLCP LENGTH field tops out at 4095. A Carpool subframe carrying more than
// this is unbuildable, whatever the aggregate allows.
const MaxPayloadBytes = maxSIGLen

// sigMCS is the fixed scheme the SIG symbol itself is sent with.
var sigMCS = MCS{modem.BPSK, fec.Rate1_2}

// encodeSIGBits lays out RATE(4) RESERVED(1) LENGTH(12, LSB first)
// PARITY(1) TAIL(6) per Std 802.11-2012 §18.3.4.
func encodeSIGBits(s SIG) ([]byte, error) {
	rb, ok := rateBits[s.MCS]
	if !ok {
		return nil, fmt.Errorf("phy: MCS %v has no SIG rate encoding", s.MCS)
	}
	if s.Length < 1 || s.Length > maxSIGLen {
		return nil, fmt.Errorf("phy: SIG length %d outside 1..%d", s.Length, maxSIGLen)
	}
	bits := make([]byte, sigBitCount)
	for i := 0; i < 4; i++ {
		bits[i] = (rb >> (3 - i)) & 1
	}
	// bits[4] reserved = 0
	for i := 0; i < 12; i++ {
		bits[5+i] = byte((s.Length >> i) & 1)
	}
	var parity byte
	for _, b := range bits[:17] {
		parity ^= b
	}
	bits[17] = parity
	// bits[18..23] tail = 0
	return bits, nil
}

// decodeSIGBits validates parity, tail, and the RATE pattern.
func decodeSIGBits(bits []byte) (SIG, error) {
	if len(bits) != sigBitCount {
		return SIG{}, fmt.Errorf("phy: SIG needs %d bits, got %d", sigBitCount, len(bits))
	}
	var parity byte
	for _, b := range bits[:17] {
		parity ^= b
	}
	if parity != bits[17] {
		return SIG{}, fmt.Errorf("phy: SIG parity check failed")
	}
	for i := 18; i < 24; i++ {
		if bits[i] != 0 {
			return SIG{}, fmt.Errorf("phy: SIG tail bit %d nonzero", i)
		}
	}
	var rb byte
	for i := 0; i < 4; i++ {
		rb = rb<<1 | bits[i]
	}
	mcs, ok := mcsByRateBits[rb]
	if !ok {
		return SIG{}, fmt.Errorf("phy: unknown SIG rate pattern %04b", rb)
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << i
	}
	if length == 0 {
		return SIG{}, fmt.Errorf("phy: SIG length 0")
	}
	return SIG{MCS: mcs, Length: length}, nil
}

// BuildSIGSymbol encodes a SIG into one BPSK-1/2 OFDM symbol with the given
// pilot-polarity index. SIG symbols never carry an injected phase offset.
func BuildSIGSymbol(s SIG, symIndex int) ([]complex128, error) {
	bits, err := encodeSIGBits(s)
	if err != nil {
		return nil, err
	}
	coded, err := fec.ConvEncode(bits, fec.Rate1_2)
	if err != nil {
		return nil, err
	}
	il, err := fec.CachedInterleaver(sigMCS.CodedBitsPerSymbol(), sigMCS.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	block, err := il.Interleave(coded)
	if err != nil {
		return nil, err
	}
	points, err := modem.Map(sigMCS.Mod, block)
	if err != nil {
		return nil, err
	}
	return ofdm.AssembleSymbol(points, symIndex, 0)
}

// BuildSIGPoints encodes a SIG into its 48 BPSK constellation points,
// without assembling the OFDM symbol — the MU-MIMO extension precodes these
// onto a spatial stream.
func BuildSIGPoints(s SIG) ([]complex128, error) {
	bits, err := encodeSIGBits(s)
	if err != nil {
		return nil, err
	}
	coded, err := fec.ConvEncode(bits, fec.Rate1_2)
	if err != nil {
		return nil, err
	}
	il, err := fec.CachedInterleaver(sigMCS.CodedBitsPerSymbol(), sigMCS.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	block, err := il.Interleave(coded)
	if err != nil {
		return nil, err
	}
	return modem.Map(sigMCS.Mod, block)
}

// DecodeSIGPoints inverts BuildSIGPoints from 48 equalized data points.
func DecodeSIGPoints(points []complex128) (SIG, error) {
	return decodeSIGSymbol(points)
}

// decodeSIGSymbol inverts BuildSIGSymbol from equalized, phase-compensated
// bins. Carpool decodes one SIG per subframe per receiver, so the demap and
// deinterleave scratch lives on the stack.
func decodeSIGSymbol(dataPoints []complex128) (SIG, error) {
	var block, coded [ofdm.NumData]byte // BPSK: ncbps == NumData
	if err := modem.DemapInto(block[:], sigMCS.Mod, dataPoints); err != nil {
		return SIG{}, err
	}
	il, err := fec.CachedInterleaver(sigMCS.CodedBitsPerSymbol(), sigMCS.Mod.BitsPerSymbol())
	if err != nil {
		return SIG{}, err
	}
	if err := il.DeinterleaveInto(coded[:], block[:]); err != nil {
		return SIG{}, err
	}
	bits, err := fec.ViterbiDecode(coded[:], fec.Rate1_2, sigBitCount)
	if err != nil {
		return SIG{}, err
	}
	return decodeSIGBits(bits)
}
