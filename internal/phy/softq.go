package phy

import (
	"fmt"

	"carpool/internal/fec"
)

// SoftQDecoder bundles the quantized soft Viterbi decoder with the
// deinterleave and info-bit workspaces the DATA-field decode needs, so a
// reused instance (one per worker goroutine, or a sync.Pool entry) decodes
// frames with no steady-state allocations beyond the returned payload. The
// zero value is ready to use. Not safe for concurrent use.
type SoftQDecoder struct {
	dec  fec.SoftDecoder
	llrs []int8
	info []byte
}

// DecodeDataField is the quantized counterpart of DecodeDataFieldSoft: it
// consumes per-symbol int8 LLR blocks (interleaved order, the
// modem.DemapSoftQ convention) and decodes with the integer fast-path
// Viterbi. It decodes the same path as the float64 chain on inputs that
// quantize without saturation; the float64 chain remains available as the
// reference oracle (RxConfig.SoftFloat64).
func (d *SoftQDecoder) DecodeDataField(llrqBlocks [][]int8, mcs MCS, payloadLen int) ([]byte, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %v", mcs)
	}
	if payloadLen <= 0 {
		return nil, fmt.Errorf("phy: non-positive payload length %d", payloadLen)
	}
	nsym := mcs.NumSymbols(payloadLen)
	if len(llrqBlocks) < nsym {
		return nil, fmt.Errorf("phy: %d LLR blocks, need %d for %d bytes", len(llrqBlocks), nsym, payloadLen)
	}
	ncbps := mcs.CodedBitsPerSymbol()
	il, err := fec.CachedInterleaver(ncbps, mcs.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	if cap(d.llrs) < nsym*ncbps {
		d.llrs = make([]int8, nsym*ncbps)
	}
	llrs := d.llrs[:nsym*ncbps]
	for i := 0; i < nsym; i++ {
		if err := il.DeinterleaveLLRInto(llrs[i*ncbps:(i+1)*ncbps], llrqBlocks[i]); err != nil {
			return nil, err
		}
	}
	return d.finishDataField(llrs, nsym, mcs, payloadLen)
}

// finishDataField Viterbi-decodes one subframe's already-deinterleaved
// flat LLR lanes, descrambles, and extracts the payload bytes.
func (d *SoftQDecoder) finishDataField(llrs []int8, nsym int, mcs MCS, payloadLen int) ([]byte, error) {
	numInfo := nsym * mcs.DataBitsPerSymbol()
	if cap(d.info) < numInfo {
		d.info = make([]byte, numInfo)
	}
	info := d.info[:numInfo]
	if err := d.dec.DecodeInto(info, llrs, mcs.Rate, numInfo); err != nil {
		return nil, err
	}
	descrambler := fec.ScramblerFromOutputs(info[:7])
	descrambler.Apply(info[7:])
	payloadBits := info[serviceBits : serviceBits+8*payloadLen]
	return BitsToBytes(payloadBits), nil
}

// SoftQBatchJob is one subframe in a batched DATA-field decode: the
// per-symbol interleaved int8 LLR blocks (Segment.LLRQs), the subframe's
// MCS and announced payload length, and the Payload output slot.
type SoftQBatchJob struct {
	Blocks     [][]int8
	MCS        MCS
	PayloadLen int
	// Payload receives the decoded payload bytes.
	Payload []byte
}

// DecodeDataFieldBatch decodes K subframes' DATA fields through one
// workspace: every subframe's deinterleaved LLR lanes are laid back to
// back in a single contiguous slab, and the reused 8-lane Viterbi walks
// them in sequence — one deinterleave pass and zero steady-state
// allocations beyond the returned payloads, with no per-subframe decoder
// churn. Outputs are bit-identical to calling DecodeDataField once per
// subframe. On error the failing job's index is returned (earlier jobs
// keep their decoded payloads); on success the index is -1.
func (d *SoftQDecoder) DecodeDataFieldBatch(jobs []SoftQBatchJob) (int, error) {
	// Pass 1: validate and lay out each subframe's lane range in the slab.
	total := 0
	for i := range jobs {
		job := &jobs[i]
		if !job.MCS.Valid() {
			return i, fmt.Errorf("phy: invalid MCS %v", job.MCS)
		}
		if job.PayloadLen <= 0 {
			return i, fmt.Errorf("phy: non-positive payload length %d", job.PayloadLen)
		}
		nsym := job.MCS.NumSymbols(job.PayloadLen)
		if len(job.Blocks) < nsym {
			return i, fmt.Errorf("phy: %d LLR blocks, need %d for %d bytes",
				len(job.Blocks), nsym, job.PayloadLen)
		}
		total += nsym * job.MCS.CodedBitsPerSymbol()
	}
	if cap(d.llrs) < total {
		d.llrs = make([]int8, total)
	}
	slab := d.llrs[:total]

	// Pass 2: deinterleave every subframe into its contiguous lanes, then
	// decode each range in place.
	off := 0
	for i := range jobs {
		job := &jobs[i]
		nsym := job.MCS.NumSymbols(job.PayloadLen)
		ncbps := job.MCS.CodedBitsPerSymbol()
		il, err := fec.CachedInterleaver(ncbps, job.MCS.Mod.BitsPerSymbol())
		if err != nil {
			return i, err
		}
		lanes := slab[off : off+nsym*ncbps]
		for s := 0; s < nsym; s++ {
			if err := il.DeinterleaveLLRInto(lanes[s*ncbps:(s+1)*ncbps], job.Blocks[s]); err != nil {
				return i, err
			}
		}
		payload, err := d.finishDataField(lanes, nsym, job.MCS, job.PayloadLen)
		if err != nil {
			return i, err
		}
		job.Payload = payload
		off += nsym * ncbps
	}
	return -1, nil
}

// DecodeDataFieldSoftQ decodes quantized LLR blocks with a throwaway
// workspace; hot paths should hold a SoftQDecoder and call its method.
func DecodeDataFieldSoftQ(llrqBlocks [][]int8, mcs MCS, payloadLen int) ([]byte, error) {
	var d SoftQDecoder
	return d.DecodeDataField(llrqBlocks, mcs, payloadLen)
}
