package phy

import (
	"fmt"

	"carpool/internal/fec"
)

// SoftQDecoder bundles the quantized soft Viterbi decoder with the
// deinterleave and info-bit workspaces the DATA-field decode needs, so a
// reused instance (one per worker goroutine, or a sync.Pool entry) decodes
// frames with no steady-state allocations beyond the returned payload. The
// zero value is ready to use. Not safe for concurrent use.
type SoftQDecoder struct {
	dec  fec.SoftDecoder
	llrs []int8
	info []byte
}

// DecodeDataField is the quantized counterpart of DecodeDataFieldSoft: it
// consumes per-symbol int8 LLR blocks (interleaved order, the
// modem.DemapSoftQ convention) and decodes with the integer fast-path
// Viterbi. It decodes the same path as the float64 chain on inputs that
// quantize without saturation; the float64 chain remains available as the
// reference oracle (RxConfig.SoftFloat64).
func (d *SoftQDecoder) DecodeDataField(llrqBlocks [][]int8, mcs MCS, payloadLen int) ([]byte, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %v", mcs)
	}
	if payloadLen <= 0 {
		return nil, fmt.Errorf("phy: non-positive payload length %d", payloadLen)
	}
	nsym := mcs.NumSymbols(payloadLen)
	if len(llrqBlocks) < nsym {
		return nil, fmt.Errorf("phy: %d LLR blocks, need %d for %d bytes", len(llrqBlocks), nsym, payloadLen)
	}
	ncbps := mcs.CodedBitsPerSymbol()
	il, err := fec.CachedInterleaver(ncbps, mcs.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	if cap(d.llrs) < nsym*ncbps {
		d.llrs = make([]int8, nsym*ncbps)
	}
	llrs := d.llrs[:nsym*ncbps]
	for i := 0; i < nsym; i++ {
		if err := il.DeinterleaveLLRInto(llrs[i*ncbps:(i+1)*ncbps], llrqBlocks[i]); err != nil {
			return nil, err
		}
	}
	numInfo := nsym * mcs.DataBitsPerSymbol()
	if cap(d.info) < numInfo {
		d.info = make([]byte, numInfo)
	}
	info := d.info[:numInfo]
	if err := d.dec.DecodeInto(info, llrs, mcs.Rate, numInfo); err != nil {
		return nil, err
	}
	descrambler := fec.ScramblerFromOutputs(info[:7])
	descrambler.Apply(info[7:])
	payloadBits := info[serviceBits : serviceBits+8*payloadLen]
	return BitsToBytes(payloadBits), nil
}

// DecodeDataFieldSoftQ decodes quantized LLR blocks with a throwaway
// workspace; hot paths should hold a SoftQDecoder and call its method.
func DecodeDataFieldSoftQ(llrqBlocks [][]int8, mcs MCS, payloadLen int) ([]byte, error) {
	var d SoftQDecoder
	return d.DecodeDataField(llrqBlocks, mcs, payloadLen)
}
