package phy_test

import (
	"bytes"
	"math/rand"
	"testing"

	"carpool/internal/channel"
	"carpool/internal/phy"
)

func TestSoftFECCleanLoopback(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, mcs := range []phy.MCS{phy.MCS6, phy.MCS24, phy.MCS54} {
		payload := make([]byte, 300)
		rng.Read(payload)
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: mcs})
		if err != nil {
			t.Fatal(err)
		}
		res, err := phy.Receive(frame.Samples, phy.RxConfig{KnownStart: 0, SoftFEC: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK || !bytes.Equal(res.Payload, payload) {
			t.Errorf("%v: soft loopback failed", mcs)
		}
	}
}

func TestSoftFECBeatsHardAtLowSNR(t *testing.T) {
	// Sweep a marginal SNR band: the soft receiver must recover strictly
	// more frames than the hard one.
	rng := rand.New(rand.NewSource(81))
	payload := make([]byte, 500)
	var hardOK, softOK int
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		rng.Read(payload)
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS24})
		if err != nil {
			t.Fatal(err)
		}
		mkCh := func() *channel.Model {
			ch, err := channel.New(channel.Config{
				SNRdB: 11.5, NumTaps: 3, RicianK: 15, TapDecay: 3,
				Seed: int64(trial) + 500,
			})
			if err != nil {
				t.Fatal(err)
			}
			return ch
		}
		rxHard, err := phy.Receive(mkCh().Transmit(frame.Samples),
			phy.RxConfig{KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		rxSoft, err := phy.Receive(mkCh().Transmit(frame.Samples),
			phy.RxConfig{KnownStart: 0, SoftFEC: true})
		if err != nil {
			t.Fatal(err)
		}
		if rxHard.Status == phy.StatusOK && bytes.Equal(rxHard.Payload, payload) {
			hardOK++
		}
		if rxSoft.Status == phy.StatusOK && bytes.Equal(rxSoft.Payload, payload) {
			softOK++
		}
	}
	t.Logf("hard %d/%d, soft %d/%d", hardOK, trials, softOK, trials)
	if hardOK == trials {
		t.Skip("channel too clean to separate decoders")
	}
	if softOK <= hardOK {
		t.Errorf("soft decoding (%d/%d) not better than hard (%d/%d)",
			softOK, trials, hardOK, trials)
	}
}

func TestDecodeDataFieldSoftValidation(t *testing.T) {
	if _, err := phy.DecodeDataFieldSoft(nil, phy.MCS{}, 10); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := phy.DecodeDataFieldSoft(nil, phy.MCS24, 0); err == nil {
		t.Error("accepted zero payload length")
	}
	if _, err := phy.DecodeDataFieldSoft(nil, phy.MCS24, 100); err == nil {
		t.Error("accepted missing LLR blocks")
	}
}
