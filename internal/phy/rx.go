package phy

import (
	"fmt"

	"carpool/internal/dsp"
	"carpool/internal/modem"
	"carpool/internal/obs"
	"carpool/internal/ofdm"
	"carpool/internal/sidechannel"
)

// RxStatus classifies the outcome of a reception attempt. Losing a frame in
// a lossy channel is a normal outcome, not an error.
type RxStatus int

// Reception outcomes.
const (
	// StatusOK means the full DATA field was demodulated (its bits may
	// still contain errors — check the FCS at the MAC layer).
	StatusOK RxStatus = iota + 1
	// StatusNoPreamble means packet detection failed.
	StatusNoPreamble
	// StatusBadSIG means the PLCP header did not validate.
	StatusBadSIG
	// StatusTruncated means the buffer ended before the DATA field did.
	StatusTruncated
)

// String names the status.
func (s RxStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNoPreamble:
		return "no-preamble"
	case StatusBadSIG:
		return "bad-sig"
	case StatusTruncated:
		return "truncated"
	default:
		return fmt.Sprintf("RxStatus(%d)", int(s))
	}
}

// RxConfig controls frame reception.
type RxConfig struct {
	// Tracker maintains the channel estimate across DATA symbols. Nil
	// selects the standard preamble-only tracker.
	Tracker ChannelTracker
	// SideChannel must match the transmitter's configuration to decode the
	// symbol-level CRC stream. Nil disables side-channel decoding (and with
	// it, any tracker Observe calls flagged correct).
	SideChannel *sidechannel.Scheme
	// KnownStart skips packet detection when the caller knows the preamble
	// offset (negative means "detect").
	KnownStart int
	// SkipFEC stops after demapping, leaving Payload nil. The BER harness
	// uses this: it compares Blocks against the transmitter's ground truth.
	SkipFEC bool
	// SoftFEC decodes the DATA field with per-bit log-likelihood ratios
	// and the soft-decision Viterbi instead of hard decisions, weighting
	// each subcarrier's confidence by its channel gain. Roughly a 2 dB
	// sensitivity gain over the paper's hard-decision prototype. The
	// default implementation is the quantized int8 fast path
	// (fec.SoftDecoder); see SoftFloat64.
	SoftFEC bool
	// SoftFloat64 selects the float64 soft chain (modem.DemapSoft +
	// fec.ViterbiDecodeSoft) instead of the quantized fast path. It is the
	// reference oracle the quantized path is validated against, and the
	// fallback for inputs outside the quantizer's envelope (e.g. externally
	// supplied LLRs at scales the int8 range cannot represent). Only
	// meaningful with SoftFEC.
	SoftFloat64 bool
}

// RxResult carries everything a reception produced.
type RxResult struct {
	Status RxStatus
	SIG    SIG
	// CFORad is the estimated carrier frequency offset in radians/sample.
	CFORad float64
	// Payload is the decoded DATA payload (nil when SkipFEC or not OK).
	Payload []byte
	// Blocks are the hard-demapped interleaved coded bits per DATA symbol.
	Blocks [][]byte
	// SideBits are the decoded side-channel bits per DATA symbol.
	SideBits [][]byte
	// SymbolOK flags, per DATA symbol, whether its group's side-channel
	// CRC matched (nil when the side channel is off).
	SymbolOK []bool
	// PilotPhases is the tracked common phase per DATA symbol.
	PilotPhases []float64
}

// Sync performs the front half of reception — packet detection, CFO
// estimation and correction, LTF channel estimation — and returns a
// CFO-corrected sample buffer beginning at the preamble, the channel
// estimate, and the CFO. The status is StatusOK, StatusNoPreamble, or
// StatusTruncated.
func Sync(rx []complex128, knownStart int) (buf []complex128, h []complex128, cfoRad float64, status RxStatus) {
	sink := obs.Active()
	start := knownStart
	if start < 0 {
		var found bool
		start, found = ofdm.DetectPacket(rx)
		if !found {
			sink.Counter("phy.sync_fail").Inc()
			return nil, nil, 0, StatusNoPreamble
		}
	}
	if start+ofdm.PreambleLen+ofdm.SymbolLen > len(rx) {
		sink.Counter("phy.sync_fail").Inc()
		return nil, nil, 0, StatusTruncated
	}
	buf = append([]complex128(nil), rx[start:]...)
	cfoRad = ofdm.EstimateCFO(buf, 0)
	ofdm.CorrectCFO(buf, cfoRad, 0)
	h, err := ofdm.EstimateChannel(buf, 0)
	if err != nil {
		sink.Counter("phy.sync_fail").Inc()
		return nil, nil, cfoRad, StatusTruncated
	}
	sink.Counter("phy.sync_ok").Inc()
	return buf, h, cfoRad, StatusOK
}

// DecodeSIGAt demodulates and decodes one SIG symbol at the given sample
// offset in a synchronized buffer, equalizing with h and using pilot
// polarity index symIdx. It returns the SIG and the tracked pilot phase of
// the symbol (the side-channel differential reference for the symbols that
// follow it).
func DecodeSIGAt(buf, h []complex128, offset, symIdx int) (SIG, float64, error) {
	if offset+ofdm.SymbolLen > len(buf) {
		return SIG{}, 0, fmt.Errorf("phy: buffer ends before SIG symbol")
	}
	var bins [ofdm.NumSubcarriers]complex128
	if err := ofdm.SymbolBinsInto(bins[:], buf[offset:]); err != nil {
		return SIG{}, 0, err
	}
	if err := ofdm.Equalize(bins[:], h); err != nil {
		return SIG{}, 0, err
	}
	phase, _ := ofdm.TrackPilotPhase(bins[:], symIdx)
	ofdm.CompensatePhase(bins[:], phase)
	var dataPoints [ofdm.NumData]complex128
	ofdm.ExtractDataInto(dataPoints[:], bins[:])
	sig, err := decodeSIGSymbol(dataPoints[:])
	return sig, phase, err
}

// Segment is the result of demodulating a run of DATA symbols.
type Segment struct {
	// Blocks are the hard-demapped interleaved coded bits per symbol.
	Blocks [][]byte
	// SideBits per symbol (nil without a side channel).
	SideBits [][]byte
	// SymbolOK per symbol: group CRC verdict (nil without a side channel).
	SymbolOK []bool
	// PilotPhases per symbol.
	PilotPhases []float64
	// LLRs per symbol (interleaved bit order), populated only when
	// requested; each bit's confidence is weighted by its subcarrier's
	// channel gain.
	LLRs [][]float64
	// LLRQs per symbol: quantized int8 LLRs (modem.DemapSoftQ convention,
	// channel-gain weighted), populated only when requested. The fast-path
	// input of fec.SoftDecoder.
	LLRQs [][]int8
	// Truncated is true when the buffer ended early; the slices above then
	// cover only the symbols that fit.
	Truncated bool
}

// DecodeDataSymbols demodulates nsym DATA symbols from a synchronized,
// CFO-corrected buffer. offset is the sample position of the first symbol;
// baseSymIdx its pilot-polarity index (consecutive symbols increment it).
// The tracker supplies (and may recalibrate) the channel estimate; scheme,
// when non-nil, decodes the phase-offset side channel with primePhase (the
// tracked phase of the preceding non-injected symbol) as the differential
// reference.
func DecodeDataSymbols(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64) (*Segment, error) {
	return DecodeDataSymbolsOpts(buf, offset, baseSymIdx, nsym, mod, tracker, scheme, primePhase, false)
}

// DecodeDataSymbolsOpts is DecodeDataSymbols with soft-output collection:
// when collectLLRs is set, each symbol's per-bit LLRs (weighted by channel
// gain) are stored in Segment.LLRs for soft FEC decoding.
func DecodeDataSymbolsOpts(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64,
	collectLLRs bool) (*Segment, error) {
	return decodeDataSymbols(buf, offset, baseSymIdx, nsym, mod, tracker, scheme, primePhase,
		collectLLRs, false)
}

// DecodeDataSymbolsQ is DecodeDataSymbols collecting quantized int8 LLRs
// (Segment.LLRQs) for the integer soft-decode fast path instead of float64
// LLRs.
func DecodeDataSymbolsQ(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64) (*Segment, error) {
	return decodeDataSymbols(buf, offset, baseSymIdx, nsym, mod, tracker, scheme, primePhase,
		false, true)
}

// decodeDataSymbols is the shared DATA-symbol demodulation loop.
//
// All per-symbol storage the Segment retains (coded blocks, side bits, LLRs)
// is carved out of flat buffers sized once up front, and the demodulation
// workspace lives in a scratch struct reused across symbols, so the
// steady-state symbol loop performs zero heap allocations.
func decodeDataSymbols(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64,
	collectLLRs, collectLLRQs bool) (*Segment, error) {
	if tracker == nil {
		return nil, fmt.Errorf("phy: DecodeDataSymbols requires a tracker")
	}
	if !mod.Valid() {
		return nil, fmt.Errorf("phy: invalid modulation %v", mod)
	}
	if nsym < 0 {
		nsym = 0
	}
	// Observability: resolve the hot-loop metrics once per call. With no
	// sink installed every handle is nil and the per-symbol touch points
	// reduce to inlined nil checks — zero allocations, no atomics.
	var (
		ctrSymbols, ctrCRCOK, ctrCRCFail *obs.Counter
		tracer                           *obs.Tracer
	)
	if sink := obs.Active(); sink != nil {
		ctrSymbols = sink.Counter("phy.symbols_decoded")
		ctrCRCOK = sink.Counter("phy.symbols_crc_ok")
		ctrCRCFail = sink.Counter("phy.symbols_crc_fail")
		tracer = sink.Tracer
	}
	ncbps := mod.BitsPerSymbol() * ofdm.NumData
	seg := &Segment{
		Blocks:      make([][]byte, 0, nsym),
		PilotPhases: make([]float64, 0, nsym),
	}
	var sideDecoder *sidechannel.Decoder
	groupSize := 1
	sideBps := 0
	var sideBuf []byte
	if scheme != nil {
		if err := scheme.Validate(); err != nil {
			return nil, err
		}
		var err error
		sideDecoder, err = sidechannel.NewDecoder(scheme.Alphabet)
		if err != nil {
			return nil, err
		}
		sideDecoder.Prime(primePhase)
		groupSize = scheme.GroupSize
		sideBps = scheme.Alphabet.BitsPerSymbol()
		sideBuf = make([]byte, nsym*sideBps)
		seg.SideBits = make([][]byte, 0, nsym)
		seg.SymbolOK = make([]bool, 0, nsym)
	}

	// Flat backing stores for everything the Segment keeps, plus reusable
	// demodulation workspace. rawRing holds one raw-bin buffer per group
	// position: a symbol's raw bins are needed only until its group flushes
	// into tracker.Observe, so groupSize buffers suffice.
	var scratch struct {
		eq      [ofdm.NumSubcarriers]complex128
		points  [ofdm.NumData]complex128
		weights [ofdm.NumData]float64
	}
	blockBuf := make([]byte, nsym*ncbps)
	rawRing := make([]complex128, groupSize*ofdm.NumSubcarriers)
	var llrBuf []float64
	if collectLLRs {
		llrBuf = make([]float64, nsym*ncbps)
		seg.LLRs = make([][]float64, 0, nsym)
	}
	var llrqBuf []int8
	if collectLLRQs {
		llrqBuf = make([]int8, nsym*ncbps)
		seg.LLRQs = make([][]int8, 0, nsym)
	}

	type symRecord struct {
		idx     int
		rawBins []complex128
		phase   float64
		block   []byte
	}
	group := make([]symRecord, 0, groupSize)
	groupBits := make([]byte, 0, groupSize*ncbps)
	flushGroup := func() error {
		if len(group) == 0 {
			return nil
		}
		correct := false
		if sideDecoder != nil {
			sub := *scheme
			sub.GroupSize = len(group)
			groupBits = groupBits[:0]
			for _, r := range group {
				groupBits = append(groupBits, r.block...)
			}
			first, last := group[0].idx, group[len(group)-1].idx
			ok, err := sub.VerifyFlat(groupBits, sideBuf[first*sideBps:(last+1)*sideBps])
			if err != nil {
				return err
			}
			correct = ok
			for range group {
				seg.SymbolOK = append(seg.SymbolOK, ok)
			}
			verdict := int64(0)
			if ok {
				verdict = 1
				ctrCRCOK.Add(int64(len(group)))
			} else {
				ctrCRCFail.Add(int64(len(group)))
			}
			tracer.Emit(obs.EvSideVerdict, int64(group[0].idx), verdict)
		}
		if tracer != nil {
			verdict := int64(0)
			if correct {
				verdict = 1
			}
			for _, r := range group {
				tracer.Emit(obs.EvSymbolDecode, int64(r.idx), verdict)
			}
		}
		for _, r := range group {
			tracker.Observe(r.idx, r.rawBins, r.phase, r.block, correct)
		}
		group = group[:0]
		return nil
	}

	for i := 0; i < nsym; i++ {
		symOff := offset + i*ofdm.SymbolLen
		if symOff+ofdm.SymbolLen > len(buf) {
			seg.Truncated = true
			break
		}
		rawBins := rawRing[len(group)*ofdm.NumSubcarriers:][:ofdm.NumSubcarriers]
		if err := ofdm.SymbolBinsInto(rawBins, buf[symOff:]); err != nil {
			return nil, err
		}
		copy(scratch.eq[:], rawBins)
		if err := ofdm.Equalize(scratch.eq[:], tracker.Estimate()); err != nil {
			return nil, err
		}
		phase, _ := ofdm.TrackPilotPhase(scratch.eq[:], baseSymIdx+i)
		ofdm.CompensatePhase(scratch.eq[:], phase)
		ofdm.ExtractDataInto(scratch.points[:], scratch.eq[:])
		block := blockBuf[i*ncbps : (i+1)*ncbps]
		if err := modem.DemapInto(block, mod, scratch.points[:]); err != nil {
			return nil, err
		}
		seg.Blocks = append(seg.Blocks, block)
		seg.PilotPhases = append(seg.PilotPhases, phase)
		ctrSymbols.Inc()
		if collectLLRs {
			llrs := llrBuf[i*ncbps : (i+1)*ncbps]
			if err := weightedLLRsInto(llrs, mod, scratch.points[:], tracker.Estimate()); err != nil {
				return nil, err
			}
			seg.LLRs = append(seg.LLRs, llrs)
		}
		if collectLLRQs {
			llrqs := llrqBuf[i*ncbps : (i+1)*ncbps]
			channelWeightsInto(scratch.weights[:], tracker.Estimate())
			if err := modem.DemapSoftQWeightedInto(llrqs, mod, scratch.points[:], scratch.weights[:]); err != nil {
				return nil, err
			}
			seg.LLRQs = append(seg.LLRQs, llrqs)
		}
		if sideDecoder != nil {
			sbits := sideBuf[i*sideBps : (i+1)*sideBps]
			if _, err := sideDecoder.NextInto(sbits, phase); err != nil {
				return nil, err
			}
			seg.SideBits = append(seg.SideBits, sbits)
		}
		group = append(group, symRecord{idx: i, rawBins: rawBins, phase: phase, block: block})
		if len(group) == groupSize {
			if err := flushGroup(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushGroup(); err != nil {
		return nil, err
	}
	return seg, nil
}

// Receive synchronizes, equalizes and decodes one legacy-format frame.
func Receive(rx []complex128, cfg RxConfig) (*RxResult, error) {
	buf, h, cfo, status := Sync(rx, cfg.KnownStart)
	if status != StatusOK {
		return &RxResult{Status: status, CFORad: cfo}, nil
	}
	res := &RxResult{CFORad: cfo}

	sig, sigPhase, err := DecodeSIGAt(buf, h, ofdm.PreambleLen, 0)
	if err != nil {
		res.Status = StatusBadSIG
		return res, nil
	}
	res.SIG = sig

	tracker := cfg.Tracker
	if tracker == nil {
		tracker = NewStandardTracker()
	}
	tracker.Init(h, sig.MCS.Mod)

	nsym := sig.MCS.NumSymbols(sig.Length)
	soft := cfg.SoftFEC && !cfg.SkipFEC
	seg, err := decodeDataSymbols(buf, ofdm.PreambleLen+ofdm.SymbolLen, 1, nsym,
		sig.MCS.Mod, tracker, cfg.SideChannel, sigPhase,
		soft && cfg.SoftFloat64, soft && !cfg.SoftFloat64)
	if err != nil {
		return nil, err
	}
	res.Blocks = seg.Blocks
	res.SideBits = seg.SideBits
	res.SymbolOK = seg.SymbolOK
	res.PilotPhases = seg.PilotPhases
	if seg.Truncated {
		res.Status = StatusTruncated
		return res, nil
	}

	res.Status = StatusOK
	if !cfg.SkipFEC {
		var payload []byte
		switch {
		case cfg.SoftFEC && cfg.SoftFloat64:
			payload, err = DecodeDataFieldSoft(seg.LLRs, sig.MCS, sig.Length)
		case cfg.SoftFEC:
			payload, err = DecodeDataFieldSoftQ(seg.LLRQs, sig.MCS, sig.Length)
		default:
			payload, err = DecodeDataField(res.Blocks, sig.MCS, sig.Length)
		}
		if err != nil {
			return nil, err
		}
		res.Payload = payload
	}
	return res, nil
}

// weightedLLRsInto computes per-bit LLRs for one equalized symbol into a
// caller-provided buffer, scaling each subcarrier's confidence by |H|^2:
// post-equalization noise grows as 1/|H|^2, so faded bins contribute
// proportionally weaker opinions to the soft Viterbi. The overall scale is
// irrelevant to the decoder.
func weightedLLRsInto(dst []float64, mod modem.Modulation, dataPoints, h []complex128) error {
	if err := modem.DemapSoftInto(dst, mod, dataPoints, 1); err != nil {
		return err
	}
	bps := mod.BitsPerSymbol()
	for i, k := range ofdm.DataIndices {
		g := h[ofdm.Bin(k)]
		w := real(g)*real(g) + imag(g)*imag(g)
		for j := 0; j < bps; j++ {
			dst[i*bps+j] *= w
		}
	}
	return nil
}

// channelWeightsInto fills dst (length ofdm.NumData) with |H|^2 per data
// subcarrier — the confidence weights the quantized demapper applies before
// saturation, matching weightedLLRsInto's scaling of the float chain.
func channelWeightsInto(dst []float64, h []complex128) {
	for i, k := range ofdm.DataIndices {
		g := h[ofdm.Bin(k)]
		dst[i] = real(g)*real(g) + imag(g)*imag(g)
	}
}

// CompareBlocks counts bit errors between transmitted and received coded
// blocks, per symbol. It returns per-symbol error counts and the number of
// bits per symbol compared.
func CompareBlocks(tx, rx [][]byte) (errsPerSymbol []int, bitsPerSymbol int) {
	n := min(len(tx), len(rx))
	errsPerSymbol = make([]int, n)
	for i := 0; i < n; i++ {
		m := min(len(tx[i]), len(rx[i]))
		if bitsPerSymbol == 0 {
			bitsPerSymbol = m
		}
		for j := 0; j < m; j++ {
			if tx[i][j] != rx[i][j] {
				errsPerSymbol[i]++
			}
		}
	}
	return errsPerSymbol, bitsPerSymbol
}

// PhaseUnwrapDiff returns the wrapped phase difference sequence of tracked
// pilot phases, exposed for diagnostics.
func PhaseUnwrapDiff(phases []float64) []float64 {
	if len(phases) < 2 {
		return nil
	}
	out := make([]float64, len(phases)-1)
	for i := 1; i < len(phases); i++ {
		out[i-1] = dsp.WrapPhase(phases[i] - phases[i-1])
	}
	return out
}
