package phy

import (
	"fmt"

	"carpool/internal/dsp"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
	"carpool/internal/sidechannel"
)

// RxStatus classifies the outcome of a reception attempt. Losing a frame in
// a lossy channel is a normal outcome, not an error.
type RxStatus int

// Reception outcomes.
const (
	// StatusOK means the full DATA field was demodulated (its bits may
	// still contain errors — check the FCS at the MAC layer).
	StatusOK RxStatus = iota + 1
	// StatusNoPreamble means packet detection failed.
	StatusNoPreamble
	// StatusBadSIG means the PLCP header did not validate.
	StatusBadSIG
	// StatusTruncated means the buffer ended before the DATA field did.
	StatusTruncated
)

// String names the status.
func (s RxStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNoPreamble:
		return "no-preamble"
	case StatusBadSIG:
		return "bad-sig"
	case StatusTruncated:
		return "truncated"
	default:
		return fmt.Sprintf("RxStatus(%d)", int(s))
	}
}

// RxConfig controls frame reception.
type RxConfig struct {
	// Tracker maintains the channel estimate across DATA symbols. Nil
	// selects the standard preamble-only tracker.
	Tracker ChannelTracker
	// SideChannel must match the transmitter's configuration to decode the
	// symbol-level CRC stream. Nil disables side-channel decoding (and with
	// it, any tracker Observe calls flagged correct).
	SideChannel *sidechannel.Scheme
	// KnownStart skips packet detection when the caller knows the preamble
	// offset (negative means "detect").
	KnownStart int
	// SkipFEC stops after demapping, leaving Payload nil. The BER harness
	// uses this: it compares Blocks against the transmitter's ground truth.
	SkipFEC bool
	// SoftFEC decodes the DATA field with per-bit log-likelihood ratios
	// and the soft-decision Viterbi instead of hard decisions, weighting
	// each subcarrier's confidence by its channel gain. Roughly a 2 dB
	// sensitivity gain over the paper's hard-decision prototype.
	SoftFEC bool
}

// RxResult carries everything a reception produced.
type RxResult struct {
	Status RxStatus
	SIG    SIG
	// CFORad is the estimated carrier frequency offset in radians/sample.
	CFORad float64
	// Payload is the decoded DATA payload (nil when SkipFEC or not OK).
	Payload []byte
	// Blocks are the hard-demapped interleaved coded bits per DATA symbol.
	Blocks [][]byte
	// SideBits are the decoded side-channel bits per DATA symbol.
	SideBits [][]byte
	// SymbolOK flags, per DATA symbol, whether its group's side-channel
	// CRC matched (nil when the side channel is off).
	SymbolOK []bool
	// PilotPhases is the tracked common phase per DATA symbol.
	PilotPhases []float64
}

// Sync performs the front half of reception — packet detection, CFO
// estimation and correction, LTF channel estimation — and returns a
// CFO-corrected sample buffer beginning at the preamble, the channel
// estimate, and the CFO. The status is StatusOK, StatusNoPreamble, or
// StatusTruncated.
func Sync(rx []complex128, knownStart int) (buf []complex128, h []complex128, cfoRad float64, status RxStatus) {
	start := knownStart
	if start < 0 {
		var found bool
		start, found = ofdm.DetectPacket(rx)
		if !found {
			return nil, nil, 0, StatusNoPreamble
		}
	}
	if start+ofdm.PreambleLen+ofdm.SymbolLen > len(rx) {
		return nil, nil, 0, StatusTruncated
	}
	buf = append([]complex128(nil), rx[start:]...)
	cfoRad = ofdm.EstimateCFO(buf, 0)
	ofdm.CorrectCFO(buf, cfoRad, 0)
	h, err := ofdm.EstimateChannel(buf, 0)
	if err != nil {
		return nil, nil, cfoRad, StatusTruncated
	}
	return buf, h, cfoRad, StatusOK
}

// DecodeSIGAt demodulates and decodes one SIG symbol at the given sample
// offset in a synchronized buffer, equalizing with h and using pilot
// polarity index symIdx. It returns the SIG and the tracked pilot phase of
// the symbol (the side-channel differential reference for the symbols that
// follow it).
func DecodeSIGAt(buf, h []complex128, offset, symIdx int) (SIG, float64, error) {
	if offset+ofdm.SymbolLen > len(buf) {
		return SIG{}, 0, fmt.Errorf("phy: buffer ends before SIG symbol")
	}
	bins, err := ofdm.SymbolBins(buf[offset:])
	if err != nil {
		return SIG{}, 0, err
	}
	if err := ofdm.Equalize(bins, h); err != nil {
		return SIG{}, 0, err
	}
	phase, _ := ofdm.TrackPilotPhase(bins, symIdx)
	ofdm.CompensatePhase(bins, phase)
	sig, err := decodeSIGSymbol(ofdm.ExtractData(bins))
	return sig, phase, err
}

// Segment is the result of demodulating a run of DATA symbols.
type Segment struct {
	// Blocks are the hard-demapped interleaved coded bits per symbol.
	Blocks [][]byte
	// SideBits per symbol (nil without a side channel).
	SideBits [][]byte
	// SymbolOK per symbol: group CRC verdict (nil without a side channel).
	SymbolOK []bool
	// PilotPhases per symbol.
	PilotPhases []float64
	// LLRs per symbol (interleaved bit order), populated only when
	// requested; each bit's confidence is weighted by its subcarrier's
	// channel gain.
	LLRs [][]float64
	// Truncated is true when the buffer ended early; the slices above then
	// cover only the symbols that fit.
	Truncated bool
}

// DecodeDataSymbols demodulates nsym DATA symbols from a synchronized,
// CFO-corrected buffer. offset is the sample position of the first symbol;
// baseSymIdx its pilot-polarity index (consecutive symbols increment it).
// The tracker supplies (and may recalibrate) the channel estimate; scheme,
// when non-nil, decodes the phase-offset side channel with primePhase (the
// tracked phase of the preceding non-injected symbol) as the differential
// reference.
func DecodeDataSymbols(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64) (*Segment, error) {
	return DecodeDataSymbolsOpts(buf, offset, baseSymIdx, nsym, mod, tracker, scheme, primePhase, false)
}

// DecodeDataSymbolsOpts is DecodeDataSymbols with soft-output collection:
// when collectLLRs is set, each symbol's per-bit LLRs (weighted by channel
// gain) are stored in Segment.LLRs for soft FEC decoding.
func DecodeDataSymbolsOpts(buf []complex128, offset, baseSymIdx, nsym int, mod modem.Modulation,
	tracker ChannelTracker, scheme *sidechannel.Scheme, primePhase float64,
	collectLLRs bool) (*Segment, error) {
	if tracker == nil {
		return nil, fmt.Errorf("phy: DecodeDataSymbols requires a tracker")
	}
	seg := &Segment{
		Blocks:      make([][]byte, 0, nsym),
		PilotPhases: make([]float64, 0, nsym),
	}
	var sideDecoder *sidechannel.Decoder
	groupSize := 1
	if scheme != nil {
		if err := scheme.Validate(); err != nil {
			return nil, err
		}
		var err error
		sideDecoder, err = sidechannel.NewDecoder(scheme.Alphabet)
		if err != nil {
			return nil, err
		}
		sideDecoder.Prime(primePhase)
		groupSize = scheme.GroupSize
		seg.SideBits = make([][]byte, 0, nsym)
		seg.SymbolOK = make([]bool, 0, nsym)
	}

	type symRecord struct {
		idx     int
		rawBins []complex128
		phase   float64
		block   []byte
		side    []byte
	}
	var group []symRecord
	flushGroup := func() error {
		if len(group) == 0 {
			return nil
		}
		correct := false
		if sideDecoder != nil {
			sub := *scheme
			sub.GroupSize = len(group)
			var groupBits []byte
			chunks := make([][]byte, 0, len(group))
			for _, r := range group {
				groupBits = append(groupBits, r.block...)
				chunks = append(chunks, r.side)
			}
			ok, err := sub.Verify(groupBits, chunks)
			if err != nil {
				return err
			}
			correct = ok
			for range group {
				seg.SymbolOK = append(seg.SymbolOK, ok)
			}
		}
		for _, r := range group {
			tracker.Observe(r.idx, r.rawBins, r.phase, r.block, correct)
		}
		group = group[:0]
		return nil
	}

	for i := 0; i < nsym; i++ {
		symOff := offset + i*ofdm.SymbolLen
		if symOff+ofdm.SymbolLen > len(buf) {
			seg.Truncated = true
			break
		}
		rawBins, err := ofdm.SymbolBins(buf[symOff:])
		if err != nil {
			return nil, err
		}
		eq := append([]complex128(nil), rawBins...)
		if err := ofdm.Equalize(eq, tracker.Estimate()); err != nil {
			return nil, err
		}
		phase, _ := ofdm.TrackPilotPhase(eq, baseSymIdx+i)
		ofdm.CompensatePhase(eq, phase)
		dataPoints := ofdm.ExtractData(eq)
		block, err := modem.Demap(mod, dataPoints)
		if err != nil {
			return nil, err
		}
		seg.Blocks = append(seg.Blocks, block)
		seg.PilotPhases = append(seg.PilotPhases, phase)
		if collectLLRs {
			llrs, err := weightedLLRs(mod, dataPoints, tracker.Estimate())
			if err != nil {
				return nil, err
			}
			seg.LLRs = append(seg.LLRs, llrs)
		}

		rec := symRecord{idx: i, rawBins: rawBins, phase: phase, block: block}
		if sideDecoder != nil {
			bits, err := sideDecoder.Next(phase)
			if err != nil {
				return nil, err
			}
			rec.side = bits
			seg.SideBits = append(seg.SideBits, bits)
		}
		group = append(group, rec)
		if len(group) == groupSize {
			if err := flushGroup(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushGroup(); err != nil {
		return nil, err
	}
	return seg, nil
}

// Receive synchronizes, equalizes and decodes one legacy-format frame.
func Receive(rx []complex128, cfg RxConfig) (*RxResult, error) {
	buf, h, cfo, status := Sync(rx, cfg.KnownStart)
	if status != StatusOK {
		return &RxResult{Status: status, CFORad: cfo}, nil
	}
	res := &RxResult{CFORad: cfo}

	sig, sigPhase, err := DecodeSIGAt(buf, h, ofdm.PreambleLen, 0)
	if err != nil {
		res.Status = StatusBadSIG
		return res, nil
	}
	res.SIG = sig

	tracker := cfg.Tracker
	if tracker == nil {
		tracker = NewStandardTracker()
	}
	tracker.Init(h, sig.MCS.Mod)

	nsym := sig.MCS.NumSymbols(sig.Length)
	seg, err := DecodeDataSymbolsOpts(buf, ofdm.PreambleLen+ofdm.SymbolLen, 1, nsym,
		sig.MCS.Mod, tracker, cfg.SideChannel, sigPhase, cfg.SoftFEC && !cfg.SkipFEC)
	if err != nil {
		return nil, err
	}
	res.Blocks = seg.Blocks
	res.SideBits = seg.SideBits
	res.SymbolOK = seg.SymbolOK
	res.PilotPhases = seg.PilotPhases
	if seg.Truncated {
		res.Status = StatusTruncated
		return res, nil
	}

	res.Status = StatusOK
	if !cfg.SkipFEC {
		var payload []byte
		if cfg.SoftFEC {
			payload, err = DecodeDataFieldSoft(seg.LLRs, sig.MCS, sig.Length)
		} else {
			payload, err = DecodeDataField(res.Blocks, sig.MCS, sig.Length)
		}
		if err != nil {
			return nil, err
		}
		res.Payload = payload
	}
	return res, nil
}

// weightedLLRs computes per-bit LLRs for one equalized symbol, scaling each
// subcarrier's confidence by |H|^2: post-equalization noise grows as
// 1/|H|^2, so faded bins contribute proportionally weaker opinions to the
// soft Viterbi. The overall scale is irrelevant to the decoder.
func weightedLLRs(mod modem.Modulation, dataPoints, h []complex128) ([]float64, error) {
	llrs, err := modem.DemapSoft(mod, dataPoints, 1)
	if err != nil {
		return nil, err
	}
	bps := mod.BitsPerSymbol()
	for i, k := range ofdm.DataIndices {
		g := h[ofdm.Bin(k)]
		w := real(g)*real(g) + imag(g)*imag(g)
		for j := 0; j < bps; j++ {
			llrs[i*bps+j] *= w
		}
	}
	return llrs, nil
}

// CompareBlocks counts bit errors between transmitted and received coded
// blocks, per symbol. It returns per-symbol error counts and the number of
// bits per symbol compared.
func CompareBlocks(tx, rx [][]byte) (errsPerSymbol []int, bitsPerSymbol int) {
	n := min(len(tx), len(rx))
	errsPerSymbol = make([]int, n)
	for i := 0; i < n; i++ {
		m := min(len(tx[i]), len(rx[i]))
		if bitsPerSymbol == 0 {
			bitsPerSymbol = m
		}
		for j := 0; j < m; j++ {
			if tx[i][j] != rx[i][j] {
				errsPerSymbol[i]++
			}
		}
	}
	return errsPerSymbol, bitsPerSymbol
}

// PhaseUnwrapDiff returns the wrapped phase difference sequence of tracked
// pilot phases, exposed for diagnostics.
func PhaseUnwrapDiff(phases []float64) []float64 {
	if len(phases) < 2 {
		return nil
	}
	out := make([]float64, len(phases)-1)
	for i := 1; i < len(phases); i++ {
		out[i-1] = dsp.WrapPhase(phases[i] - phases[i-1])
	}
	return out
}
