package phy_test

import (
	"math/rand"
	"testing"

	"carpool/internal/dsp"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
)

func TestTransmitSpectrumOccupancy(t *testing.T) {
	// The transmitted waveform must occupy the 52 loaded subcarriers and
	// leave the DC bin and the guard band quiet — a waveform-level check
	// that the whole TX chain maps onto the right bins.
	rng := rand.New(rand.NewSource(95))
	payload := make([]byte, 1500)
	rng.Read(payload)
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS48})
	if err != nil {
		t.Fatal(err)
	}
	// PSD over the DATA field only (the preamble's STF loads fewer bins).
	data := frame.Samples[ofdm.PreambleLen:]
	psd, err := dsp.PSD(data, ofdm.NumSubcarriers)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, v := range psd {
		if v > peak {
			peak = v
		}
	}
	// Loaded bins carry real power.
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		if psd[ofdm.Bin(k)] < peak*0.05 {
			t.Errorf("subcarrier %d nearly empty (%.2e vs peak %.2e)",
				k, psd[ofdm.Bin(k)], peak)
		}
	}
	// Deep guard bins stay far below the in-band level. (The 80-sample
	// symbol period is not the 64-sample FFT period, so the cyclic prefix
	// smears some energy into adjacent bins; the far guard must still sit
	// well down.)
	for _, k := range []int{-31, -30, 30, 31} {
		if psd[ofdm.Bin(k)] > peak*0.2 {
			t.Errorf("guard bin %d too hot: %.2e vs peak %.2e", k, psd[ofdm.Bin(k)], peak)
		}
	}
}
