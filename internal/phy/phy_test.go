package phy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"carpool/internal/channel"
	"carpool/internal/sidechannel"
)

func randomPayload(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	rng.Read(p)
	return p
}

func TestBytesToBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesToBitsLSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Errorf("got %v, want %v", bits, want)
	}
}

func TestMCSTable(t *testing.T) {
	tests := []struct {
		mcs   MCS
		ncbps int
		ndbps int
		mbps  float64
	}{
		{MCS6, 48, 24, 6}, {MCS9, 48, 36, 9}, {MCS12, 96, 48, 12}, {MCS18, 96, 72, 18},
		{MCS24, 192, 96, 24}, {MCS36, 192, 144, 36}, {MCS48, 288, 192, 48}, {MCS54, 288, 216, 54},
	}
	for _, tt := range tests {
		if got := tt.mcs.CodedBitsPerSymbol(); got != tt.ncbps {
			t.Errorf("%v: NCBPS %d, want %d", tt.mcs, got, tt.ncbps)
		}
		if got := tt.mcs.DataBitsPerSymbol(); got != tt.ndbps {
			t.Errorf("%v: NDBPS %d, want %d", tt.mcs, got, tt.ndbps)
		}
		if got := tt.mcs.DataRateMbps(); got != tt.mbps {
			t.Errorf("%v: rate %v, want %v", tt.mcs, got, tt.mbps)
		}
		if !tt.mcs.Valid() {
			t.Errorf("%v should be valid", tt.mcs)
		}
	}
	if (MCS{}).Valid() {
		t.Error("zero MCS should be invalid")
	}
	if len(AllMCS()) != 8 {
		t.Error("expected 8 MCSs")
	}
}

func TestMCSNumSymbols(t *testing.T) {
	// 100 bytes at MCS54: 16+800+6 = 822 bits / 216 = 3.8 -> 4 symbols.
	if got := MCS54.NumSymbols(100); got != 4 {
		t.Errorf("NumSymbols(100) = %d, want 4", got)
	}
	// 1 byte at MCS6: 30 bits / 24 -> 2 symbols.
	if got := MCS6.NumSymbols(1); got != 2 {
		t.Errorf("NumSymbols(1) = %d, want 2", got)
	}
}

func TestSIGBitsRoundTrip(t *testing.T) {
	for _, mcs := range AllMCS() {
		for _, length := range []int{1, 100, 1500, 4095} {
			s := SIG{MCS: mcs, Length: length}
			bits, err := encodeSIGBits(s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeSIGBits(bits)
			if err != nil {
				t.Fatalf("%v/%d: %v", mcs, length, err)
			}
			if got != s {
				t.Errorf("round trip %+v -> %+v", s, got)
			}
		}
	}
}

func TestSIGBitsValidation(t *testing.T) {
	if _, err := encodeSIGBits(SIG{MCS: MCS{}, Length: 10}); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := encodeSIGBits(SIG{MCS: MCS6, Length: 0}); err == nil {
		t.Error("accepted zero length")
	}
	if _, err := encodeSIGBits(SIG{MCS: MCS6, Length: 4096}); err == nil {
		t.Error("accepted oversized length")
	}
	bits, err := encodeSIGBits(SIG{MCS: MCS12, Length: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Parity flip detected.
	bad := append([]byte(nil), bits...)
	bad[2] ^= 1
	if _, err := decodeSIGBits(bad); err == nil {
		t.Error("accepted parity violation")
	}
	// Nonzero tail detected.
	bad = append([]byte(nil), bits...)
	bad[20] ^= 1
	if _, err := decodeSIGBits(bad); err == nil {
		t.Error("accepted nonzero tail")
	}
	if _, err := decodeSIGBits(bits[:10]); err == nil {
		t.Error("accepted short bit vector")
	}
}

func TestEncodeDecodeDataField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mcs := range AllMCS() {
		payload := randomPayload(rng, 300)
		blocks, err := EncodeDataField(payload, mcs, 0x35)
		if err != nil {
			t.Fatalf("%v: %v", mcs, err)
		}
		if len(blocks) != mcs.NumSymbols(len(payload)) {
			t.Errorf("%v: %d blocks, want %d", mcs, len(blocks), mcs.NumSymbols(len(payload)))
		}
		for _, b := range blocks {
			if len(b) != mcs.CodedBitsPerSymbol() {
				t.Fatalf("%v: block size %d, want %d", mcs, len(b), mcs.CodedBitsPerSymbol())
			}
		}
		got, err := DecodeDataField(blocks, mcs, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("%v: payload corrupted through clean encode/decode", mcs)
		}
	}
}

func TestEncodeDataFieldValidation(t *testing.T) {
	if _, err := EncodeDataField(nil, MCS6, 0); err == nil {
		t.Error("accepted empty payload")
	}
	if _, err := EncodeDataField([]byte{1}, MCS{}, 0); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := DecodeDataField(nil, MCS6, 10); err == nil {
		t.Error("accepted missing blocks")
	}
	if _, err := DecodeDataField(nil, MCS{}, 10); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := DecodeDataField(nil, MCS6, 0); err == nil {
		t.Error("accepted zero payload length")
	}
}

func TestScramblerSeedRecovery(t *testing.T) {
	// Different seeds at the transmitter must be transparent to the
	// receiver, which recovers the state from the SERVICE field.
	rng := rand.New(rand.NewSource(2))
	payload := randomPayload(rng, 64)
	for _, seed := range []byte{0x7f, 0x01, 0x35, 0x5a, 0} {
		blocks, err := EncodeDataField(payload, MCS12, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDataField(blocks, MCS12, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("seed %#x: payload corrupted", seed)
		}
	}
}

func TestTransmitFrameShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := randomPayload(rng, 200)
	frame, err := Transmit(payload, TxConfig{MCS: MCS24})
	if err != nil {
		t.Fatal(err)
	}
	wantSyms := MCS24.NumSymbols(200)
	if frame.NumDataSymbols() != wantSyms {
		t.Errorf("%d data symbols, want %d", frame.NumDataSymbols(), wantSyms)
	}
	wantSamples := 320 + (1+wantSyms)*80
	if len(frame.Samples) != wantSamples {
		t.Errorf("%d samples, want %d", len(frame.Samples), wantSamples)
	}
	if frame.SideBits != nil {
		t.Error("side bits present without side channel")
	}
	wantAirtime := float64(wantSamples) / 20e6
	if frame.AirtimeSeconds() != wantAirtime {
		t.Errorf("airtime %v, want %v", frame.AirtimeSeconds(), wantAirtime)
	}
}

func TestTransmitRejectsOversizedPayload(t *testing.T) {
	if _, err := Transmit(make([]byte, 5000), TxConfig{MCS: MCS54}); err == nil {
		t.Error("accepted payload beyond SIG limit")
	}
}

func TestLoopbackCleanChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, mcs := range AllMCS() {
		payload := randomPayload(rng, 400)
		frame, err := Transmit(payload, TxConfig{MCS: mcs, ScramblerSeed: 0x11})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Receive(frame.Samples, RxConfig{KnownStart: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOK {
			t.Fatalf("%v: status %v", mcs, res.Status)
		}
		if res.SIG != frame.SIG {
			t.Errorf("%v: SIG %+v, want %+v", mcs, res.SIG, frame.SIG)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Errorf("%v: payload corrupted over clean channel", mcs)
		}
	}
}

func TestLoopbackWithSideChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scheme := sidechannel.DefaultScheme()
	payload := randomPayload(rng, 600)
	frame, err := Transmit(payload, TxConfig{MCS: MCS48, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.SideBits) != frame.NumDataSymbols() {
		t.Fatalf("side bits for %d symbols, want %d", len(frame.SideBits), frame.NumDataSymbols())
	}
	res, err := Receive(frame.Samples, RxConfig{KnownStart: 0, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Error("payload corrupted")
	}
	// Every side-channel bit decodes cleanly, every symbol verdict is OK.
	for i := range frame.SideBits {
		if !bytes.Equal(res.SideBits[i], frame.SideBits[i]) {
			t.Fatalf("side bits of symbol %d: got %v, want %v", i, res.SideBits[i], frame.SideBits[i])
		}
		if !res.SymbolOK[i] {
			t.Errorf("symbol %d flagged incorrect on a clean channel", i)
		}
	}
}

func TestLoopbackAllGranularitySchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	payload := randomPayload(rng, 500)
	for _, a := range []sidechannel.Alphabet{sidechannel.OneBit, sidechannel.TwoBit} {
		for g := 1; g <= 3; g++ {
			scheme := sidechannel.Scheme{Alphabet: a, GroupSize: g}
			frame, err := Transmit(payload, TxConfig{MCS: MCS24, SideChannel: &scheme})
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			res, err := Receive(frame.Samples, RxConfig{KnownStart: 0, SideChannel: &scheme})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != StatusOK || !bytes.Equal(res.Payload, payload) {
				t.Errorf("%v: loopback failed", scheme)
			}
			for i, ok := range res.SymbolOK {
				if !ok {
					t.Errorf("%v: symbol %d flagged incorrect", scheme, i)
				}
			}
		}
	}
}

func TestReceiveThroughBenignChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := randomPayload(rng, 500)
	scheme := sidechannel.DefaultScheme()
	frame, err := Transmit(payload, TxConfig{MCS: MCS24, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(channel.Config{
		SNRdB: 28, NumTaps: 3, RicianK: 10, CFOHz: 800, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prepend idle noise so detection has to work.
	rx := make([]complex128, 150)
	rx = append(rx, frame.Samples...)
	rx = append(rx, make([]complex128, 50)...)
	res, err := Receive(ch.Transmit(rx), RxConfig{KnownStart: -1, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Error("payload corrupted through 28 dB channel")
	}
}

func TestReceiveNoPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	noise := make([]complex128, 2000)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	res, err := Receive(noise, RxConfig{KnownStart: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusOK {
		t.Error("decoded a frame from pure noise")
	}
}

func TestReceiveTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	payload := randomPayload(rng, 800)
	frame, err := Transmit(payload, TxConfig{MCS: MCS6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Receive(frame.Samples[:len(frame.Samples)/2], RxConfig{KnownStart: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTruncated {
		t.Errorf("status %v, want truncated", res.Status)
	}
}

func TestReceiveSkipFEC(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	payload := randomPayload(rng, 300)
	frame, err := Transmit(payload, TxConfig{MCS: MCS36})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Receive(frame.Samples, RxConfig{KnownStart: 0, SkipFEC: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if res.Payload != nil {
		t.Error("payload decoded despite SkipFEC")
	}
	errs, bits := CompareBlocks(frame.Blocks, res.Blocks)
	if bits != MCS36.CodedBitsPerSymbol() {
		t.Errorf("bits per symbol %d", bits)
	}
	for i, e := range errs {
		if e != 0 {
			t.Errorf("symbol %d has %d bit errors on a clean channel", i, e)
		}
	}
}

func TestCompareBlocksCountsErrors(t *testing.T) {
	tx := [][]byte{{0, 0, 0, 0}, {1, 1, 1, 1}}
	rx := [][]byte{{0, 1, 0, 1}, {1, 1, 1, 1}}
	errs, bits := CompareBlocks(tx, rx)
	if bits != 4 || errs[0] != 2 || errs[1] != 0 {
		t.Errorf("errs=%v bits=%d", errs, bits)
	}
}

func TestPhaseUnwrapDiff(t *testing.T) {
	if PhaseUnwrapDiff([]float64{1}) != nil {
		t.Error("single phase should yield nil")
	}
	d := PhaseUnwrapDiff([]float64{0, 1, -3})
	if len(d) != 2 {
		t.Fatalf("got %d diffs", len(d))
	}
}

func TestRxStatusString(t *testing.T) {
	for s, want := range map[RxStatus]string{
		StatusOK: "ok", StatusNoPreamble: "no-preamble",
		StatusBadSIG: "bad-sig", StatusTruncated: "truncated",
		RxStatus(99): "RxStatus(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
