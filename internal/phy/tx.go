package phy

import (
	"fmt"

	"carpool/internal/fec"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
	"carpool/internal/sidechannel"
)

// TxConfig controls frame transmission.
type TxConfig struct {
	// MCS selects modulation and coding for the DATA field.
	MCS MCS
	// ScramblerSeed is the 7-bit initial scrambler state (0 is coerced to
	// all-ones, as in the fec package).
	ScramblerSeed byte
	// SideChannel, when non-nil, rides symbol-level CRC checksums on the
	// phase-offset side channel. Nil transmits a standard PHY frame.
	SideChannel *sidechannel.Scheme
}

// TxFrame is a transmitted frame plus the ground-truth artifacts that the
// evaluation harness compares against (per-symbol coded bits, side bits).
type TxFrame struct {
	Samples []complex128
	SIG     SIG
	// Blocks holds the interleaved coded bits mapped onto each DATA symbol.
	Blocks [][]byte
	// SideBits holds the side-channel bits injected into each DATA symbol
	// (nil when the side channel is off).
	SideBits [][]byte
}

// NumDataSymbols returns the DATA field length in OFDM symbols.
func (f *TxFrame) NumDataSymbols() int { return len(f.Blocks) }

// AirtimeSeconds returns the frame duration on the air.
func (f *TxFrame) AirtimeSeconds() float64 {
	return float64(len(f.Samples)) / ofdm.SampleRate
}

// EncodeDataField runs payload bytes through the 802.11 DATA-field bit
// pipeline — SERVICE and TAIL insertion, padding, scrambling, convolutional
// encoding, per-symbol interleaving — and returns one coded-bit block per
// OFDM symbol.
func EncodeDataField(payload []byte, mcs MCS, seed byte) ([][]byte, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %v", mcs)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("phy: empty payload")
	}
	ndbps := mcs.DataBitsPerSymbol()
	nsym := mcs.NumSymbols(len(payload))
	info := make([]byte, nsym*ndbps)
	copy(info[serviceBits:], BytesToBits(payload))
	// TAIL and pad bits are already zero.
	fec.NewScrambler(seed).Apply(info)
	// Zero the six tail bits after scrambling so the trellis terminates.
	tailStart := serviceBits + 8*len(payload)
	for i := 0; i < fec.TailBits; i++ {
		info[tailStart+i] = 0
	}
	coded, err := fec.ConvEncode(info, mcs.Rate)
	if err != nil {
		return nil, err
	}
	ncbps := mcs.CodedBitsPerSymbol()
	if len(coded) != nsym*ncbps {
		return nil, fmt.Errorf("phy: internal: coded length %d, want %d", len(coded), nsym*ncbps)
	}
	il, err := fec.CachedInterleaver(ncbps, mcs.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	blockBuf := make([]byte, nsym*ncbps)
	blocks := make([][]byte, nsym)
	for i := range blocks {
		blocks[i] = blockBuf[i*ncbps : (i+1)*ncbps]
		if err := il.InterleaveInto(blocks[i], coded[i*ncbps:(i+1)*ncbps]); err != nil {
			return nil, err
		}
	}
	return blocks, nil
}

// DecodeDataField inverts EncodeDataField: deinterleaves the per-symbol
// blocks, Viterbi-decodes, recovers the scrambler state from the SERVICE
// field, and returns the payload bytes.
func DecodeDataField(blocks [][]byte, mcs MCS, payloadLen int) ([]byte, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %v", mcs)
	}
	if payloadLen <= 0 {
		return nil, fmt.Errorf("phy: non-positive payload length %d", payloadLen)
	}
	nsym := mcs.NumSymbols(payloadLen)
	if len(blocks) < nsym {
		return nil, fmt.Errorf("phy: %d symbol blocks, need %d for %d bytes", len(blocks), nsym, payloadLen)
	}
	ncbps := mcs.CodedBitsPerSymbol()
	il, err := fec.CachedInterleaver(ncbps, mcs.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	coded := make([]byte, nsym*ncbps)
	for i := 0; i < nsym; i++ {
		if err := il.DeinterleaveInto(coded[i*ncbps:(i+1)*ncbps], blocks[i]); err != nil {
			return nil, err
		}
	}
	info, err := fec.ViterbiDecode(coded, mcs.Rate, nsym*mcs.DataBitsPerSymbol())
	if err != nil {
		return nil, err
	}
	// The first 7 SERVICE bits expose the scrambling sequence.
	descrambler := fec.ScramblerFromOutputs(info[:7])
	descrambler.Apply(info[7:])
	payloadBits := info[serviceBits : serviceBits+8*payloadLen]
	return BitsToBytes(payloadBits), nil
}

// DecodeDataFieldSoft is the soft-decision counterpart of DecodeDataField:
// it consumes per-symbol LLR blocks (interleaved order, the
// modem.DemapSoft convention) and decodes with the soft Viterbi. Soft
// decoding buys roughly 2 dB over the paper's hard-decision prototype.
func DecodeDataFieldSoft(llrBlocks [][]float64, mcs MCS, payloadLen int) ([]byte, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %v", mcs)
	}
	if payloadLen <= 0 {
		return nil, fmt.Errorf("phy: non-positive payload length %d", payloadLen)
	}
	nsym := mcs.NumSymbols(payloadLen)
	if len(llrBlocks) < nsym {
		return nil, fmt.Errorf("phy: %d LLR blocks, need %d for %d bytes", len(llrBlocks), nsym, payloadLen)
	}
	ncbps := mcs.CodedBitsPerSymbol()
	il, err := fec.CachedInterleaver(ncbps, mcs.Mod.BitsPerSymbol())
	if err != nil {
		return nil, err
	}
	llrs := make([]float64, nsym*ncbps)
	for i := 0; i < nsym; i++ {
		if err := il.DeinterleaveFloatsInto(llrs[i*ncbps:(i+1)*ncbps], llrBlocks[i]); err != nil {
			return nil, err
		}
	}
	info, err := fec.ViterbiDecodeSoft(llrs, mcs.Rate, nsym*mcs.DataBitsPerSymbol())
	if err != nil {
		return nil, err
	}
	descrambler := fec.ScramblerFromOutputs(info[:7])
	descrambler.Apply(info[7:])
	payloadBits := info[serviceBits : serviceBits+8*payloadLen]
	return BitsToBytes(payloadBits), nil
}

// sideBitsForBlocks computes the per-symbol side-channel bits for a run of
// coded blocks under the given scheme. A trailing partial group uses a
// shortened checksum of the same alphabet.
func sideBitsForBlocks(blocks [][]byte, scheme sidechannel.Scheme) ([][]byte, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(blocks))
	for g := 0; g < len(blocks); g += scheme.GroupSize {
		end := min(g+scheme.GroupSize, len(blocks))
		sub := scheme
		sub.GroupSize = end - g
		var groupBits []byte
		for _, b := range blocks[g:end] {
			groupBits = append(groupBits, b...)
		}
		chunks, err := sub.Checksum(groupBits)
		if err != nil {
			return nil, err
		}
		out = append(out, chunks...)
	}
	return out, nil
}

// BuildDataSymbols maps coded-bit blocks onto OFDM DATA symbols. baseSymIdx
// is the pilot-polarity index of the first symbol (consecutive symbols
// increment it). When scheme is non-nil, each symbol carries its
// side-channel CRC bits as an injected phase offset; the differential
// encoder starts from zero, i.e. the symbol immediately before the run (a
// SIG or A-HDR symbol) is the phase reference.
func BuildDataSymbols(blocks [][]byte, mod modem.Modulation, baseSymIdx int,
	scheme *sidechannel.Scheme) (samples []complex128, sideBits [][]byte, err error) {
	var encoder *sidechannel.Encoder
	if scheme != nil {
		sideBits, err = sideBitsForBlocks(blocks, *scheme)
		if err != nil {
			return nil, nil, err
		}
		encoder, err = sidechannel.NewEncoder(scheme.Alphabet)
		if err != nil {
			return nil, nil, err
		}
	}
	samples = make([]complex128, len(blocks)*ofdm.SymbolLen)
	var points [ofdm.NumData]complex128
	for i, block := range blocks {
		if err := modem.MapInto(points[:], mod, block); err != nil {
			return nil, nil, err
		}
		inject := 0.0
		if encoder != nil {
			inject, err = encoder.Next(sideBits[i])
			if err != nil {
				return nil, nil, err
			}
		}
		dst := samples[i*ofdm.SymbolLen : (i+1)*ofdm.SymbolLen]
		if err := ofdm.AssembleSymbolInto(dst, points[:], baseSymIdx+i, inject); err != nil {
			return nil, nil, err
		}
	}
	return samples, sideBits, nil
}

// Transmit builds a complete legacy-format frame: preamble, SIG, DATA
// symbols, with the side channel injected when configured.
func Transmit(payload []byte, cfg TxConfig) (*TxFrame, error) {
	if len(payload) > maxSIGLen {
		return nil, fmt.Errorf("phy: payload %d bytes exceeds SIG limit %d", len(payload), maxSIGLen)
	}
	sig := SIG{MCS: cfg.MCS, Length: len(payload)}
	blocks, err := EncodeDataField(payload, cfg.MCS, cfg.ScramblerSeed)
	if err != nil {
		return nil, err
	}
	samples := make([]complex128, 0, ofdm.PreambleLen+(1+len(blocks))*ofdm.SymbolLen)
	samples = append(samples, ofdm.GeneratePreamble()...)
	sigSym, err := BuildSIGSymbol(sig, 0)
	if err != nil {
		return nil, err
	}
	samples = append(samples, sigSym...)
	dataSamples, sideBits, err := BuildDataSymbols(blocks, cfg.MCS.Mod, 1, cfg.SideChannel)
	if err != nil {
		return nil, err
	}
	samples = append(samples, dataSamples...)
	return &TxFrame{Samples: samples, SIG: sig, Blocks: blocks, SideBits: sideBits}, nil
}
