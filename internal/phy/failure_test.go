package phy_test

import (
	"bytes"
	"math/rand"
	"testing"

	"carpool/internal/core"
	"carpool/internal/dsp"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
)

// Failure-injection tests: the receiver must degrade gracefully — flagging,
// not crashing — under interference bursts, preamble damage, and truncation.

// burst adds strong noise over samples [from, to).
func burst(rx []complex128, from, to int, power float64, seed int64) {
	g := dsp.NewGaussianSource(rand.New(rand.NewSource(seed)))
	if to > len(rx) {
		to = len(rx)
	}
	g.AddNoise(rx[from:to], power)
}

func TestInterferenceBurstFlaggedBySymbolCRC(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	payload := make([]byte, 2000)
	rng.Read(payload)
	scheme := sidechannel.DefaultScheme()
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS24, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), frame.Samples...)
	// Jam symbols ~30..40 of the DATA field with strong interference.
	start := ofdm.PreambleLen + (1+30)*ofdm.SymbolLen
	burst(rx, start, start+10*ofdm.SymbolLen, 2.0, 70)

	res, err := phy.Receive(rx, phy.RxConfig{KnownStart: 0, SkipFEC: true, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != phy.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	// The jammed region must be flagged incorrect; the clean head must not.
	jammedFlagged, headClean := 0, 0
	for i, ok := range res.SymbolOK {
		switch {
		case i >= 30 && i < 40 && !ok:
			jammedFlagged++
		case i < 20 && ok:
			headClean++
		}
	}
	// CRC-2 detects a corrupted symbol with probability 3/4 (§5.2's
	// granularity tradeoff), so expect roughly 7-8 of 10 flagged.
	if jammedFlagged < 5 {
		t.Errorf("only %d/10 jammed symbols flagged", jammedFlagged)
	}
	if headClean < 18 {
		t.Errorf("only %d/20 clean head symbols verified", headClean)
	}
}

func TestInterferenceBurstDoesNotPoisonRTE(t *testing.T) {
	// The CRC gate is what keeps jammed symbols out of the channel
	// estimate: the tail after the burst must decode cleanly with RTE.
	rng := rand.New(rand.NewSource(71))
	payload := make([]byte, 2000)
	rng.Read(payload)
	scheme := sidechannel.DefaultScheme()
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS24, SideChannel: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), frame.Samples...)
	start := ofdm.PreambleLen + (1+25)*ofdm.SymbolLen
	burst(rx, start, start+8*ofdm.SymbolLen, 2.0, 71)

	res, err := phy.Receive(rx, phy.RxConfig{
		KnownStart: 0, SkipFEC: true, SideChannel: &scheme,
		Tracker: core.NewRTETracker(),
	})
	if err != nil {
		t.Fatal(err)
	}
	errs, _ := phy.CompareBlocks(frame.Blocks, res.Blocks)
	tailErrs := 0
	for i := 40; i < len(errs); i++ {
		tailErrs += errs[i]
	}
	if tailErrs != 0 {
		t.Errorf("%d bit errors after the burst — RTE was poisoned", tailErrs)
	}
}

func TestDestroyedPreambleReportsNoPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	payload := make([]byte, 200)
	rng.Read(payload)
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS12})
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), frame.Samples...)
	// Obliterate the STF so detection cannot lock.
	burst(rx, 0, ofdm.STFLen, 50.0, 72)
	res, err := phy.Receive(rx, phy.RxConfig{KnownStart: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == phy.StatusOK && bytes.Equal(res.Payload, payload) {
		t.Skip("receiver recovered despite the jammed STF (acceptable)")
	}
	if res.Status == phy.StatusOK {
		t.Error("claimed OK with corrupted output")
	}
}

func TestCorruptedSIGReportsBadSIG(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	payload := make([]byte, 200)
	rng.Read(payload)
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS12})
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), frame.Samples...)
	burst(rx, ofdm.PreambleLen, ofdm.PreambleLen+ofdm.SymbolLen, 20.0, 73)
	res, err := phy.Receive(rx, phy.RxConfig{KnownStart: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Either the parity/tail check catches it, or (rarely) a valid-looking
	// SIG with a wrong length leads to truncation. It must not decode.
	if res.Status == phy.StatusOK && bytes.Equal(res.Payload, payload) {
		t.Error("decoded cleanly through a jammed SIG")
	}
}

func TestTruncationAtEverySymbolBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	payload := make([]byte, 400)
	rng.Read(payload)
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS24})
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(frame.Samples) - 1; cut > ofdm.PreambleLen; cut -= ofdm.SymbolLen {
		res, err := phy.Receive(frame.Samples[:cut], phy.RxConfig{KnownStart: 0, SkipFEC: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Status == phy.StatusOK && cut < len(frame.Samples)-ofdm.SymbolLen {
			t.Fatalf("cut %d: truncated frame reported OK", cut)
		}
	}
}
