package phy_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"carpool/internal/modem"
	"carpool/internal/phy"
)

// batchJob encodes one payload at the given MCS through a noisy channel and
// returns the quantized LLR blocks plus the transmitted payload.
func batchJob(t *testing.T, rng *rand.Rand, mcs phy.MCS, payloadLen int, snrdB float64) ([][]int8, []byte) {
	t.Helper()
	payload := make([]byte, payloadLen)
	rng.Read(payload)
	blocks, err := phy.EncodeDataField(payload, mcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	nv := math.Pow(10, -snrdB/10)
	llrqBlocks := make([][]int8, len(blocks))
	noise := make([]complex128, len(blocks[0])/mcs.Mod.BitsPerSymbol())
	for i, block := range blocks {
		for j := range noise {
			noise[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		pts := awgnPoints(t, mcs.Mod, block, noise, nv)
		if llrqBlocks[i], err = modem.DemapSoftQ(mcs.Mod, pts, nv); err != nil {
			t.Fatal(err)
		}
	}
	return llrqBlocks, payload
}

// TestDecodeDataFieldBatchMatchesSingle runs a mixed-MCS batch through
// DecodeDataFieldBatch and checks every payload is bit-identical to the
// per-subframe DecodeDataField on the same LLR blocks.
func TestDecodeDataFieldBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	mcsList := []phy.MCS{phy.MCS6, phy.MCS12, phy.MCS24, phy.MCS48, phy.MCS54}
	jobs := make([]phy.SoftQBatchJob, len(mcsList))
	for i, mcs := range mcsList {
		blocks, _ := batchJob(t, rng, mcs, 120+70*i, 12.0)
		jobs[i] = phy.SoftQBatchJob{Blocks: blocks, MCS: mcs, PayloadLen: 120 + 70*i}
	}
	var batch phy.SoftQDecoder
	if idx, err := batch.DecodeDataFieldBatch(jobs); err != nil {
		t.Fatalf("batch decode failed at job %d: %v", idx, err)
	}
	var single phy.SoftQDecoder
	for i := range jobs {
		want, err := single.DecodeDataField(jobs[i].Blocks, jobs[i].MCS, jobs[i].PayloadLen)
		if err != nil {
			t.Fatalf("job %d: single decode: %v", i, err)
		}
		if !bytes.Equal(jobs[i].Payload, want) {
			t.Errorf("job %d (%v): batch payload differs from single decode", i, jobs[i].MCS)
		}
	}
	// Re-running the warmed decoder must not allocate beyond the payloads.
	for i := range jobs {
		jobs[i].Payload = nil
	}
	if idx, err := batch.DecodeDataFieldBatch(jobs); err != nil {
		t.Fatalf("second batch decode failed at job %d: %v", idx, err)
	}
}

// TestDecodeDataFieldBatchErrors checks the failing job's index is reported
// and that earlier jobs keep their decoded payloads.
func TestDecodeDataFieldBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	goodBlocks, goodPayload := batchJob(t, rng, phy.MCS12, 100, 15.0)

	jobs := []phy.SoftQBatchJob{
		{Blocks: goodBlocks, MCS: phy.MCS12, PayloadLen: 100},
		{Blocks: goodBlocks, MCS: phy.MCS{}, PayloadLen: 100},
	}
	if idx, err := (&phy.SoftQDecoder{}).DecodeDataFieldBatch(jobs); err == nil || idx != 1 {
		t.Fatalf("invalid MCS: got idx=%d err=%v, want idx=1 and error", idx, err)
	}

	jobs[1] = phy.SoftQBatchJob{Blocks: goodBlocks, MCS: phy.MCS12, PayloadLen: 0}
	if idx, err := (&phy.SoftQDecoder{}).DecodeDataFieldBatch(jobs); err == nil || idx != 1 {
		t.Fatalf("zero payload length: got idx=%d err=%v, want idx=1 and error", idx, err)
	}

	jobs[1] = phy.SoftQBatchJob{Blocks: goodBlocks[:1], MCS: phy.MCS12, PayloadLen: 100}
	if len(goodBlocks) > 1 {
		if idx, err := (&phy.SoftQDecoder{}).DecodeDataFieldBatch(jobs); err == nil || idx != 1 {
			t.Fatalf("short block list: got idx=%d err=%v, want idx=1 and error", idx, err)
		}
	}

	// A decode error mid-batch must leave job 0's payload intact. Truncating
	// one symbol's LLR block trips the deinterleaver length check.
	bad := make([][]int8, len(goodBlocks))
	copy(bad, goodBlocks)
	bad[0] = bad[0][:len(bad[0])-1]
	jobs[1] = phy.SoftQBatchJob{Blocks: bad, MCS: phy.MCS12, PayloadLen: 100}
	var d phy.SoftQDecoder
	idx, err := d.DecodeDataFieldBatch(jobs)
	if err == nil || idx != 1 {
		t.Fatalf("truncated LLR block: got idx=%d err=%v, want idx=1 and error", idx, err)
	}
	if !bytes.Equal(jobs[0].Payload, goodPayload) {
		t.Error("job 0 payload lost after job 1 failed")
	}

	if idx, err := d.DecodeDataFieldBatch(nil); err != nil || idx != -1 {
		t.Fatalf("empty batch: got idx=%d err=%v, want -1 and nil", idx, err)
	}
}
