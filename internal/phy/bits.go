package phy

// BytesToBits expands bytes into bits, LSB first within each byte, matching
// the 802.11 over-the-air bit ordering.
func BytesToBits(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (LSB first) back into bytes. Trailing bits that do
// not fill a byte are dropped.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			b |= (bits[i*8+j] & 1) << j
		}
		out[i] = b
	}
	return out
}
