package phy_test

import (
	"bytes"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"carpool/internal/modem"
	"carpool/internal/phy"
)

// awgnPoints maps one coded-bit block to constellation points and adds the
// given unit-variance complex noise scaled to noiseVar (Es/N0 with the
// unit-energy 802.11 constellations).
func awgnPoints(t *testing.T, mod modem.Modulation, block []byte,
	noise []complex128, noiseVar float64) []complex128 {
	t.Helper()
	pts, err := modem.Map(mod, block)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(noiseVar / 2)
	for i := range pts {
		pts[i] += noise[i] * complex(sigma, 0)
	}
	return pts
}

// payloadBitErrors counts bit differences between a decoded payload and the
// transmitted one; a decode error charges every bit.
func payloadBitErrors(got []byte, err error, want []byte) int {
	if err != nil || len(got) != len(want) {
		return 8 * len(want)
	}
	n := 0
	for i := range want {
		n += bits.OnesCount8(got[i] ^ want[i])
	}
	return n
}

// TestQuantizedSoftLossWithinTenthDB pins the int8 quantizer's acceptance
// bound across every MCS: the quantized decoder at SNR must be at least as
// good as the float64 oracle handicapped by 0.1 dB, i.e. the quantization
// penalty is below 0.1 dB everywhere on the rate table. Both paths see the
// same noise realization (only the noise scale differs), so the comparison
// isolates the quantizer rather than sampling luck. Each operating point
// sits on the waterfall: the float oracle must record errors for the trial
// to count, which keeps the bound from passing vacuously.
func TestQuantizedSoftLossWithinTenthDB(t *testing.T) {
	const handicapDB = 0.1
	cases := []struct {
		mcs   phy.MCS
		snrdB float64
	}{
		{phy.MCS6, -1.0},
		{phy.MCS9, 1.0},
		{phy.MCS12, 2.0},
		{phy.MCS18, 4.0},
		{phy.MCS24, 8.0},
		{phy.MCS36, 10.5},
		{phy.MCS48, 14.0},
		{phy.MCS54, 15.5},
	}
	const payloadLen = 300
	const trials = 12
	for ci, tc := range cases {
		rng := rand.New(rand.NewSource(900 + int64(ci)))
		payload := make([]byte, payloadLen)
		rng.Read(payload)
		blocks, err := phy.EncodeDataField(payload, tc.mcs, 0)
		if err != nil {
			t.Fatal(err)
		}
		pointsPerSym := len(blocks[0]) / tc.mcs.Mod.BitsPerSymbol()
		nvFloat := math.Pow(10, -(tc.snrdB-handicapDB)/10)
		nvQuant := math.Pow(10, -tc.snrdB/10)

		var floatErrs, quantErrs, total int
		noise := make([]complex128, pointsPerSym)
		for trial := 0; trial < trials; trial++ {
			llrBlocks := make([][]float64, len(blocks))
			llrqBlocks := make([][]int8, len(blocks))
			for i, block := range blocks {
				for j := range noise {
					noise[j] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				ptsF := awgnPoints(t, tc.mcs.Mod, block, noise, nvFloat)
				ptsQ := awgnPoints(t, tc.mcs.Mod, block, noise, nvQuant)
				if llrBlocks[i], err = modem.DemapSoft(tc.mcs.Mod, ptsF, nvFloat); err != nil {
					t.Fatal(err)
				}
				if llrqBlocks[i], err = modem.DemapSoftQ(tc.mcs.Mod, ptsQ, nvQuant); err != nil {
					t.Fatal(err)
				}
			}
			gotF, errF := phy.DecodeDataFieldSoft(llrBlocks, tc.mcs, payloadLen)
			gotQ, errQ := phy.DecodeDataFieldSoftQ(llrqBlocks, tc.mcs, payloadLen)
			floatErrs += payloadBitErrors(gotF, errF, payload)
			quantErrs += payloadBitErrors(gotQ, errQ, payload)
			total += 8 * payloadLen
		}
		t.Logf("%v @ %.1f dB: float(-%.1f dB) BER %.2e, quantized BER %.2e",
			tc.mcs, tc.snrdB, handicapDB,
			float64(floatErrs)/float64(total), float64(quantErrs)/float64(total))
		if floatErrs == 0 {
			t.Errorf("%v @ %.1f dB: float oracle error-free — operating point off the waterfall, bound is vacuous", tc.mcs, tc.snrdB)
		}
		if quantErrs > floatErrs {
			t.Errorf("%v: quantized decoder (%d bit errors) worse than float64 handicapped by %.1f dB (%d) — quantization loss exceeds %.1f dB",
				tc.mcs, quantErrs, handicapDB, floatErrs, handicapDB)
		}
	}
}

// TestHardSoftAgreementHighSNR checks that at high SNR — where every demap
// decision is unambiguous — the hard-decision chain and the quantized soft
// chain recover identical payloads for every MCS. Soft decoding must
// converge to hard decoding when the channel stops being marginal.
func TestHardSoftAgreementHighSNR(t *testing.T) {
	const snrdB = 30.0
	nv := math.Pow(10, -snrdB/10)
	rng := rand.New(rand.NewSource(77))
	for _, mcs := range phy.AllMCS() {
		payload := make([]byte, 200)
		rng.Read(payload)
		blocks, err := phy.EncodeDataField(payload, mcs, 0)
		if err != nil {
			t.Fatal(err)
		}
		hardBlocks := make([][]byte, len(blocks))
		llrqBlocks := make([][]int8, len(blocks))
		noise := make([]complex128, len(blocks[0])/mcs.Mod.BitsPerSymbol())
		for i, block := range blocks {
			for j := range noise {
				noise[j] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			pts := awgnPoints(t, mcs.Mod, block, noise, nv)
			if hardBlocks[i], err = modem.Demap(mcs.Mod, pts); err != nil {
				t.Fatal(err)
			}
			if llrqBlocks[i], err = modem.DemapSoftQ(mcs.Mod, pts, nv); err != nil {
				t.Fatal(err)
			}
		}
		gotHard, err := phy.DecodeDataField(hardBlocks, mcs, len(payload))
		if err != nil {
			t.Fatalf("%v: hard decode: %v", mcs, err)
		}
		gotSoft, err := phy.DecodeDataFieldSoftQ(llrqBlocks, mcs, len(payload))
		if err != nil {
			t.Fatalf("%v: quantized soft decode: %v", mcs, err)
		}
		if !bytes.Equal(gotHard, payload) {
			t.Errorf("%v: hard decode corrupted payload at %.0f dB", mcs, snrdB)
		}
		if !bytes.Equal(gotSoft, gotHard) {
			t.Errorf("%v: quantized soft decode disagrees with hard decode at %.0f dB", mcs, snrdB)
		}
	}
}
