package phy

import (
	"bytes"
	"testing"
)

// FuzzSIGRoundTrip fuzzes the per-subframe PLCP header over the full SIG
// domain: every valid (MCS, length) pair must survive the
// encode -> interleave -> map -> demap -> Viterbi -> parse loop exactly.
func FuzzSIGRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 0})
	f.Add([]byte{6, 0xff, 0x0f})
	f.Add([]byte{3, 0x2c, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		s := SIG{
			MCS:    AllMCS()[int(data[0])%8],
			Length: 1 + (int(data[1])|int(data[2])<<8)%maxSIGLen,
		}
		points, err := BuildSIGPoints(s)
		if err != nil {
			t.Fatalf("BuildSIGPoints(%+v): %v", s, err)
		}
		got, err := DecodeSIGPoints(points)
		if err != nil {
			t.Fatalf("DecodeSIGPoints of clean points: %v", err)
		}
		if got != s {
			t.Fatalf("SIG round trip: sent %+v, decoded %+v", s, got)
		}
	})
}

// FuzzSIGBitsParse fuzzes the raw 24-bit SIG parser with arbitrary bit
// patterns — the adversarial input a receiver sees when it demodulates
// noise or a foreign frame. The parser must never panic, and anything it
// accepts must re-encode to the exact bits it parsed (no two distinct
// headers may alias one decoded SIG).
func FuzzSIGBitsParse(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xfe, 0x80, 0x01, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31, 33, 35, 37, 39, 41})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < sigBitCount {
			return
		}
		bits := make([]byte, sigBitCount)
		for i := range bits {
			bits[i] = data[i] & 1
		}
		s, err := decodeSIGBits(bits)
		if err != nil {
			return // rejection is fine; panics and aliasing are not
		}
		enc, err := encodeSIGBits(s)
		if err != nil {
			t.Fatalf("accepted SIG %+v does not re-encode: %v", s, err)
		}
		if !bytes.Equal(enc, bits) {
			t.Fatalf("parse/encode aliasing: bits %v decode to %+v which encodes to %v", bits, s, enc)
		}
	})
}
