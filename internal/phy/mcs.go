// Package phy implements the complete IEEE 802.11a/g OFDM transceiver that
// Carpool's prototype is built on: PLCP framing (preamble, SIG field, DATA
// field with service/tail/pad bits), the scramble -> convolutional-encode ->
// interleave -> map -> IFFT transmit chain, and the synchronize -> CFO ->
// equalize -> phase-track -> demap -> Viterbi -> descramble receive chain.
//
// The receiver takes a pluggable ChannelTracker so Carpool's real-time
// channel estimation (internal/core) can replace the standard
// preamble-only estimate, and an optional phase-offset side channel
// (internal/sidechannel) that carries symbol-level CRCs.
package phy

import (
	"fmt"

	"carpool/internal/fec"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
)

// MCS is one 802.11a modulation-and-coding scheme.
type MCS struct {
	Mod  modem.Modulation
	Rate fec.CodeRate
}

// The eight 802.11a MCSs.
var (
	MCS6  = MCS{modem.BPSK, fec.Rate1_2}  // 6 Mbit/s
	MCS9  = MCS{modem.BPSK, fec.Rate3_4}  // 9 Mbit/s
	MCS12 = MCS{modem.QPSK, fec.Rate1_2}  // 12 Mbit/s
	MCS18 = MCS{modem.QPSK, fec.Rate3_4}  // 18 Mbit/s
	MCS24 = MCS{modem.QAM16, fec.Rate1_2} // 24 Mbit/s
	MCS36 = MCS{modem.QAM16, fec.Rate3_4} // 36 Mbit/s
	MCS48 = MCS{modem.QAM64, fec.Rate2_3} // 48 Mbit/s
	MCS54 = MCS{modem.QAM64, fec.Rate3_4} // 54 Mbit/s
)

// AllMCS lists every scheme in increasing rate order.
func AllMCS() []MCS {
	return []MCS{MCS6, MCS9, MCS12, MCS18, MCS24, MCS36, MCS48, MCS54}
}

// rateBits maps each MCS to its SIG RATE field (Std 802.11-2012 Table 18-6),
// MSB first.
var rateBits = map[MCS]byte{
	MCS6: 0b1101, MCS9: 0b1111, MCS12: 0b0101, MCS18: 0b0111,
	MCS24: 0b1001, MCS36: 0b1011, MCS48: 0b0001, MCS54: 0b0011,
}

var mcsByRateBits = invertRateBits()

func invertRateBits() map[byte]MCS {
	out := make(map[byte]MCS, len(rateBits))
	for m, b := range rateBits {
		out[b] = m
	}
	return out
}

// Valid reports whether m is one of the eight standard schemes.
func (m MCS) Valid() bool {
	_, ok := rateBits[m]
	return ok
}

// String names the scheme, e.g. "QAM64 3/4".
func (m MCS) String() string {
	return fmt.Sprintf("%v %v", m.Mod, m.Rate)
}

// CodedBitsPerSymbol returns N_CBPS for this scheme (48..288).
func (m MCS) CodedBitsPerSymbol() int {
	return ofdm.NumData * m.Mod.BitsPerSymbol()
}

// DataBitsPerSymbol returns N_DBPS: information bits per OFDM symbol.
func (m MCS) DataBitsPerSymbol() int {
	return int(float64(m.CodedBitsPerSymbol())*m.Rate.Ratio() + 0.5)
}

// DataRateMbps returns the nominal PHY rate (N_DBPS per 4 µs symbol).
func (m MCS) DataRateMbps() float64 {
	return float64(m.DataBitsPerSymbol()) / 4.0
}

// NumSymbols returns the number of OFDM data symbols needed for a payload
// of n bytes (service + tail + padding included).
func (m MCS) NumSymbols(n int) int {
	bits := serviceBits + 8*n + fec.TailBits
	ndbps := m.DataBitsPerSymbol()
	return (bits + ndbps - 1) / ndbps
}
