package phy

import "carpool/internal/modem"

// ChannelTracker abstracts how the receiver maintains its channel estimate
// across the DATA symbols of a frame. The standard 802.11 receiver freezes
// the preamble (LTF) estimate; Carpool's real-time estimator
// (internal/core) keeps calibrating from correctly decoded symbols.
type ChannelTracker interface {
	// Init hands the tracker the LTF channel estimate and the DATA-field
	// modulation before the first symbol.
	Init(preambleEstimate []complex128, mod modem.Modulation)
	// Estimate returns the 64-bin channel estimate to equalize the next
	// symbol with. Callers must not mutate the result.
	Estimate() []complex128
	// Observe reports one decoded DATA symbol: its index (0-based within
	// the DATA field), the raw (CFO-corrected, unequalized) FFT bins, the
	// tracked common pilot phase, the hard-demapped interleaved coded
	// bits, and whether the symbol's group passed its side-channel CRC.
	Observe(symIdx int, rawBins []complex128, pilotPhase float64, codedBits []byte, correct bool)
}

// StandardTracker is the baseline preamble-only estimator: the LTF estimate
// is used unchanged for every symbol of the frame, however long.
type StandardTracker struct {
	h []complex128
}

var _ ChannelTracker = (*StandardTracker)(nil)

// NewStandardTracker returns a fresh baseline tracker.
func NewStandardTracker() *StandardTracker { return &StandardTracker{} }

// Init stores the preamble estimate.
func (t *StandardTracker) Init(h []complex128, _ modem.Modulation) {
	t.h = append(t.h[:0], h...)
}

// Estimate returns the frozen preamble estimate.
func (t *StandardTracker) Estimate() []complex128 { return t.h }

// Observe ignores everything: the standard receiver never recalibrates.
func (t *StandardTracker) Observe(int, []complex128, float64, []byte, bool) {}
