package phy

import (
	"testing"

	"carpool/internal/modem"
	"carpool/internal/obs"
	"carpool/internal/ofdm"
)

// TestDecodeDataSymbolsSteadyStateAllocs pins the per-symbol allocation
// budget of the receive hot loop: DecodeDataSymbolsOpts allocates only the
// flat buffers the Segment retains (O(1) allocations per call), never per
// symbol. Doubling the symbol count must therefore not increase the
// allocation count.
func TestDecodeDataSymbolsSteadyStateAllocs(t *testing.T) {
	frame, err := Transmit(make([]byte, 1500), TxConfig{MCS: MCS24})
	if err != nil {
		t.Fatal(err)
	}
	buf, h, _, status := Sync(frame.Samples, 0)
	if status != StatusOK {
		t.Fatalf("sync status %v", status)
	}
	nsym := frame.NumDataSymbols()
	tracker := NewStandardTracker()

	decode := func(n int) {
		tracker.Init(h, MCS24.Mod)
		seg, err := DecodeDataSymbols(buf, ofdm.PreambleLen+ofdm.SymbolLen, 1, n,
			MCS24.Mod, tracker, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Blocks) != n {
			t.Fatalf("decoded %d symbols, want %d", len(seg.Blocks), n)
		}
	}
	half := testing.AllocsPerRun(20, func() { decode(nsym / 2) })
	full := testing.AllocsPerRun(20, func() { decode(nsym) })
	if full > half {
		t.Errorf("allocations grow with symbol count: %v for %d symbols vs %v for %d — the per-symbol loop is allocating",
			full, nsym, half, nsym/2)
	}
	// The flat-buffer setup itself is a handful of allocations.
	if full > 12 {
		t.Errorf("DecodeDataSymbols made %v allocations for one call, want O(1) setup only", full)
	}
}

// TestDemodSymbolZeroAllocs drives the exact per-symbol demod sequence the
// decoder runs — bins, equalize, pilot phase, extract, demap — and requires
// it to be allocation-free.
func TestDemodSymbolZeroAllocs(t *testing.T) {
	frame, err := Transmit(make([]byte, 300), TxConfig{MCS: MCS24})
	if err != nil {
		t.Fatal(err)
	}
	buf, h, _, status := Sync(frame.Samples, 0)
	if status != StatusOK {
		t.Fatalf("sync status %v", status)
	}
	off := ofdm.PreambleLen + ofdm.SymbolLen
	var bins [ofdm.NumSubcarriers]complex128
	var points [ofdm.NumData]complex128
	block := make([]byte, MCS24.CodedBitsPerSymbol())
	allocs := testing.AllocsPerRun(100, func() {
		if err := ofdm.SymbolBinsInto(bins[:], buf[off:]); err != nil {
			t.Fatal(err)
		}
		if err := ofdm.Equalize(bins[:], h); err != nil {
			t.Fatal(err)
		}
		phase, _ := ofdm.TrackPilotPhase(bins[:], 1)
		ofdm.CompensatePhase(bins[:], phase)
		ofdm.ExtractDataInto(points[:], bins[:])
		if err := modem.DemapInto(block, MCS24.Mod, points[:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("per-symbol demod sequence allocates %v times, want 0", allocs)
	}
}

// TestDecodeAllocsUnchangedByObservation pins the observability contract on
// the receive hot loop: with no sink enabled the instrumented decoder must
// allocate exactly as much as before instrumentation (the disabled path is
// one atomic load plus nil checks), and with a sink enabled the counter
// handles are hoisted per call, so allocations still must not grow with the
// symbol count.
func TestDecodeAllocsUnchangedByObservation(t *testing.T) {
	frame, err := Transmit(make([]byte, 1500), TxConfig{MCS: MCS24})
	if err != nil {
		t.Fatal(err)
	}
	buf, h, _, status := Sync(frame.Samples, 0)
	if status != StatusOK {
		t.Fatalf("sync status %v", status)
	}
	nsym := frame.NumDataSymbols()
	tracker := NewStandardTracker()
	decode := func(n int) {
		tracker.Init(h, MCS24.Mod)
		if _, err := DecodeDataSymbols(buf, ofdm.PreambleLen+ofdm.SymbolLen, 1, n,
			MCS24.Mod, tracker, nil, 0); err != nil {
			t.Fatal(err)
		}
	}

	obs.Disable()
	off := testing.AllocsPerRun(20, func() { decode(nsym) })

	// Registry-only sink: counters resolve once per DecodeDataSymbols call
	// (map hits after warmup, no allocation), so full vs half symbol counts
	// must still allocate identically.
	obs.Enable(&obs.Sink{Registry: obs.NewRegistry()})
	defer obs.Disable()
	decode(nsym) // warm up the registry so the names exist
	onHalf := testing.AllocsPerRun(20, func() { decode(nsym / 2) })
	onFull := testing.AllocsPerRun(20, func() { decode(nsym) })

	if off > 12 {
		t.Errorf("disabled-observation decode made %v allocations, want the O(1) setup budget", off)
	}
	if onFull > onHalf {
		t.Errorf("with observation on, allocations grow with symbol count: %v vs %v — per-symbol instrumentation is allocating",
			onFull, onHalf)
	}
	if onFull > off {
		t.Errorf("enabling a registry sink raised per-call allocations from %v to %v", off, onFull)
	}
}
