package sim

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines, using an atomic counter for work stealing so uneven task costs
// balance automatically. It returns once every index has completed.
//
// fn must not assume any ordering between indices, and must confine its
// writes to per-index state (e.g. results[i]): that makes the outcome
// independent of the worker schedule, so parallel runs are byte-identical to
// sequential ones. With one usable CPU (or n <= 1) the loop simply runs
// inline.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelForCtx is ParallelFor with cooperative cancellation and typed
// early exit. fn may return an error; any error stops further index
// dispatch, and among the errors actually observed the lowest-indexed one
// is returned. Cancelling ctx likewise stops dispatch and returns
// ctx.Err() when no fn error was observed.
//
// Indices already running when the stop condition arises complete normally
// — fn is never abandoned mid-call — and every worker goroutine has exited
// by the time ParallelForCtx returns, so no goroutine outlives the call.
// Like ParallelFor, fn must confine writes to per-index state.
func ParallelForCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		stop    atomic.Bool
		errMu   sync.Mutex
		firstI  int = -1
		firstEr error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if firstI < 0 || i < firstI {
			firstI, firstEr = i, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	body := func(i int) {
		if err := ctx.Err(); err != nil {
			stop.Store(true)
			return
		}
		if err := fn(i); err != nil {
			record(i, err)
		}
	}
	if workers <= 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			body(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					body(i)
				}
			}()
		}
		wg.Wait()
	}
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// splitMix64 is the SplitMix64 output function: a bijective avalanche mix
// good enough to turn (seed, index) pairs into independent RNG streams.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps a base seed and a task index to a decorrelated per-task
// seed. Tasks seeded this way get independent streams that depend only on
// (seed, i) — never on which worker ran them or in what order — which keeps
// ParallelForSeeded results schedule-independent.
func DeriveSeed(seed int64, i int) int64 {
	return int64(splitMix64(splitMix64(uint64(seed)) ^ splitMix64(uint64(i)+0x6a09e667f3bcc909)))
}

// ParallelForSeeded is ParallelFor with a deterministic per-index RNG: each
// task receives its own *rand.Rand seeded by DeriveSeed(seed, i), so results
// are bit-identical regardless of worker count or scheduling.
func ParallelForSeeded(n int, seed int64, fn func(i int, rng *rand.Rand)) {
	ParallelFor(n, func(i int) {
		fn(i, rand.New(rand.NewSource(DeriveSeed(seed, i))))
	})
}
