package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.RunUntil(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock at %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.RunUntil(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	fired := time.Duration(0)
	e.At(5*time.Millisecond, func() {
		e.After(3*time.Millisecond, func() { fired = e.Now() })
	})
	e.RunUntil(time.Second)
	if fired != 8*time.Millisecond {
		t.Errorf("nested event at %v, want 8ms", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var e Engine
	ran := false
	e.At(2*time.Second, func() { ran = true })
	e.RunUntil(time.Second)
	if ran {
		t.Error("event beyond horizon executed")
	}
	if e.Now() != time.Second {
		t.Errorf("clock at %v, want horizon", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("%d pending", e.Pending())
	}
}

func TestStepAndPeek(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue reported execution")
	}
	if _, ok := e.PeekTime(); ok {
		t.Error("PeekTime on empty queue reported an event")
	}
	e.At(time.Millisecond, func() {})
	if at, ok := e.PeekTime(); !ok || at != time.Millisecond {
		t.Error("PeekTime wrong")
	}
	if !e.Step() {
		t.Error("Step did not execute")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.AdvanceTo(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	var e Engine
	e.AdvanceTo(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.AdvanceTo(time.Millisecond)
}
