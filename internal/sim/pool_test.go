package sim

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int, n)
		ParallelFor(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times, want 1", n, i, h)
			}
		}
	}
}

func TestParallelForUnevenWork(t *testing.T) {
	const n = 64
	out := make([]int, n)
	ParallelFor(n, func(i int) {
		// Make early indices much more expensive than late ones so work
		// stealing actually redistributes.
		iters := 1
		if i < 4 {
			iters = 100000
		}
		s := 0
		for k := 0; k < iters; k++ {
			s += k
		}
		out[i] = i + min(s, 0)
	})
	for i, v := range out {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

func TestParallelForSeededMatchesSequential(t *testing.T) {
	const n, seed = 40, 12345
	draw := func(workers int) []float64 {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		out := make([]float64, n)
		ParallelForSeeded(n, seed, func(i int, rng *rand.Rand) {
			// Consume a varying amount of randomness per index.
			for k := 0; k <= i%5; k++ {
				out[i] = rng.Float64()
			}
		})
		return out
	}
	seq := draw(1)
	par := draw(runtime.NumCPU())
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %v != parallel %v", i, seq[i], par[i])
		}
	}
}

func TestDeriveSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for _, seed := range []int64{0, 1, 42} {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed is not deterministic")
	}
}
