// Package sim is a minimal deterministic discrete-event engine: a
// monotonic clock plus a stable priority queue of callbacks. The MAC
// simulator drives its traffic arrivals and timeouts through it.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	pq  eventHeap
	now time.Duration
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute time t. Scheduling in the past panics: that
// is always a simulator bug, not a recoverable condition.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after the given delay.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// PeekTime returns the time of the next event; ok is false when empty.
func (e *Engine) PeekTime() (time.Duration, bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// Step executes the next event, advancing the clock. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events until the queue empties or the next event lies
// beyond the horizon; the clock then rests at min(horizon, last event time).
func (e *Engine) RunUntil(horizon time.Duration) {
	for {
		t, ok := e.PeekTime()
		if !ok || t > horizon {
			if e.now < horizon && ok {
				e.now = horizon
			}
			return
		}
		e.Step()
	}
}

// AdvanceTo moves the clock forward without executing anything — the MAC
// round loop uses it for channel-occupancy intervals. Moving backwards
// panics.
func (e *Engine) AdvanceTo(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: advancing to %v before now %v", t, e.now))
	}
	e.now = t
}
