// Package mimo implements the paper's §8 MU-MIMO extension (Fig. 18): a
// two-antenna Carpool AP aggregates four stations' downlink into a single
// transmission. Stations are paired into spatial groups — the Bloom filter
// assigns A and B subframe index 1, C and D index 2 — and each group's two
// subframes ride simultaneously on two zero-forcing-precoded spatial
// streams. All four stations share one legacy preamble and one A-HDR; each
// group has its own VHT-style training field so receivers can estimate
// their post-precoding effective channels.
//
// The implementation reuses the scalar OFDM building blocks: per-subcarrier
// 2x2 precoding wraps the same 64-point IFFT symbols, and each station's
// receive path is the standard equalize-and-demap chain against its
// effective (precoded) channel.
package mimo

import (
	"fmt"
	"math"
	"math/cmplx"

	"carpool/internal/bloom"
	"carpool/internal/fec"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
)

// NumAntennas is the AP antenna count (and spatial streams per group).
const NumAntennas = 2

// CSI is one station's frequency response from each AP antenna: CSI[a][k]
// is the channel from antenna a on FFT bin k. The paper's AP obtains this
// via standard sounding feedback; the simulator reads it from the channel
// models ("genie" CSI — see DESIGN.md).
type CSI [NumAntennas][]complex128

// Validate checks bin counts.
func (c CSI) Validate() error {
	for a := range c {
		if len(c[a]) != ofdm.NumSubcarriers {
			return fmt.Errorf("mimo: antenna %d CSI has %d bins, want %d",
				a, len(c[a]), ofdm.NumSubcarriers)
		}
	}
	return nil
}

// Subframe is one station's share of a MU-MIMO Carpool frame.
type Subframe struct {
	Receiver bloom.MAC
	MCS      phy.MCS
	Payload  []byte
	// CSI is the AP's channel knowledge toward this receiver.
	CSI CSI
}

// Group pairs two subframes that share a zero-forcing precoder and fly
// simultaneously on the two spatial streams.
type Group [NumAntennas]Subframe

// precoder computes the per-subcarrier zero-forcing weights for a group:
// W[k] = H[k]^-1 with rows of H[k] being each receiver's channel vector,
// normalized so the total transmit power per subcarrier stays 1.
func precoder(g Group) ([][NumAntennas][NumAntennas]complex128, error) {
	for i := range g {
		if err := g[i].CSI.Validate(); err != nil {
			return nil, err
		}
	}
	out := make([][NumAntennas][NumAntennas]complex128, ofdm.NumSubcarriers)
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		a := g[0].CSI[0][k]
		b := g[0].CSI[1][k]
		c := g[1].CSI[0][k]
		d := g[1].CSI[1][k]
		det := a*d - b*c
		if cmplx.Abs(det) < 1e-9 {
			// Rank-deficient bin (both users see collinear channels):
			// fall back to identity; the bin decodes poorly but the frame
			// survives, matching how a real precoder regularizes.
			out[k] = [NumAntennas][NumAntennas]complex128{{1, 0}, {0, 1}}
			continue
		}
		inv := [NumAntennas][NumAntennas]complex128{
			{d / det, -b / det},
			{-c / det, a / det},
		}
		// Normalize columns jointly to unit average TX power.
		var p float64
		for r := 0; r < NumAntennas; r++ {
			for s := 0; s < NumAntennas; s++ {
				p += real(inv[r][s])*real(inv[r][s]) + imag(inv[r][s])*imag(inv[r][s])
			}
		}
		scale := complex(1, 0)
		if p > 0 {
			scale = complex(1/sqrt(p/NumAntennas), 0)
		}
		for r := 0; r < NumAntennas; r++ {
			for s := 0; s < NumAntennas; s++ {
				inv[r][s] *= scale
			}
		}
		out[k] = inv
	}
	return out, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Frame is a built MU-MIMO Carpool frame: one sample stream per antenna.
type Frame struct {
	Streams [NumAntennas][]complex128
	Filter  bloom.Filter
	Groups  []Group
	// groupLayout records where each group's training and data symbols
	// start, in symbols after the A-HDR.
	layout []groupLayout
}

// groupLayout locates one group inside the frame.
type groupLayout struct {
	trainStart int // absolute symbol index of the 2 VHT training symbols
	dataStart  int // absolute symbol index of the data run
	dataSyms   int
	blocks     [NumAntennas][][]byte
}

// NumSymbols returns the frame length in OFDM symbols after the preamble.
func (f *Frame) NumSymbols() int {
	if len(f.Streams[0]) == 0 {
		return 0
	}
	return (len(f.Streams[0]) - ofdm.PreambleLen) / ofdm.SymbolLen
}

// trainingPoints returns the known VHT training constellation (the LTF
// sequence mapped onto the 48 data subcarriers).
func trainingPoints() []complex128 {
	pts := make([]complex128, ofdm.NumData)
	for i, k := range ofdm.DataIndices {
		pts[i] = complex(ofdm.LTFValue(k), 0)
	}
	return pts
}

// pMatrix is the 2-stream orthogonal training map (VHT-LTF P matrix).
var pMatrix = [NumAntennas][NumAntennas]complex128{{1, 1}, {1, -1}}

// sigAMCS is the nominal rate field stored in SIG-A symbols (unused by the
// receiver, which only reads the Length field).
var sigAMCS = phy.MCS6

// BuildFrame assembles a MU-MIMO Carpool frame from up to four stations in
// up to two groups. The legacy preamble and A-HDR go out on antenna 0 only
// (receivers synchronize on them); each group then contributes two training
// symbols and its precoded data run.
func BuildFrame(groups []Group, hashes int) (*Frame, error) {
	if len(groups) == 0 || len(groups) > 2 {
		return nil, fmt.Errorf("mimo: need 1 or 2 groups, got %d", len(groups))
	}
	if hashes == 0 {
		hashes = bloom.DefaultHashes
	}
	// Bloom filter: both members of group i get subframe index i+1
	// (Fig. 18: "the indices of A,B are 1, and the indices of C,D are 2").
	var filter bloom.Filter
	for gi, g := range groups {
		for _, sf := range g {
			filter = filter.InsertAt(sf.Receiver, gi+1, hashes)
		}
	}

	// Validate subframes and compute each group's padded data length so
	// the SIG-A fields (below) can announce group boundaries.
	groupSyms := make([]int, len(groups))
	for gi, g := range groups {
		for s := 0; s < NumAntennas; s++ {
			if len(g[s].Payload) == 0 {
				return nil, fmt.Errorf("mimo: empty payload in group %d", gi)
			}
			if !g[s].MCS.Valid() {
				return nil, fmt.Errorf("mimo: invalid MCS in group %d", gi)
			}
			if n := g[s].MCS.NumSymbols(len(g[s].Payload)); n > groupSyms[gi] {
				groupSyms[gi] = n
			}
		}
	}

	frame := &Frame{Filter: filter, Groups: groups}
	preamble := ofdm.GeneratePreamble()
	ahdr, err := buildAHDRSamples(filter)
	if err != nil {
		return nil, err
	}
	for a := 0; a < NumAntennas; a++ {
		frame.Streams[a] = make([]complex128, 0, len(preamble)+len(ahdr))
		if a == 0 {
			frame.Streams[a] = append(frame.Streams[a], preamble...)
			frame.Streams[a] = append(frame.Streams[a], ahdr...)
		} else {
			frame.Streams[a] = append(frame.Streams[a], make([]complex128, len(preamble)+len(ahdr))...)
		}
	}
	symIdx := 2 // A-HDR used indices 0,1

	// One robust SIG-A per group, antenna 0 only (the VHT-SIG-A analogue):
	// its Length field carries the group's padded data-symbol count so any
	// station can locate any group without touching precoded symbols.
	for gi := range groups {
		sigA, err := phy.BuildSIGSymbol(phy.SIG{MCS: sigAMCS, Length: groupSyms[gi]}, symIdx)
		if err != nil {
			return nil, err
		}
		frame.Streams[0] = append(frame.Streams[0], sigA...)
		frame.Streams[1] = append(frame.Streams[1], make([]complex128, ofdm.SymbolLen)...)
		symIdx++
	}

	train := trainingPoints()
	for _, g := range groups {
		w, err := precoder(g)
		if err != nil {
			return nil, err
		}
		lay := groupLayout{trainStart: symIdx}

		// Two orthogonal training symbols through the precoder.
		for t := 0; t < NumAntennas; t++ {
			var perStream [NumAntennas][]complex128
			for s := 0; s < NumAntennas; s++ {
				pts := make([]complex128, ofdm.NumData)
				for i := range pts {
					pts[i] = train[i] * pMatrix[s][t]
				}
				perStream[s] = pts
			}
			if err := appendPrecodedSymbol(frame, perStream, w, symIdx); err != nil {
				return nil, err
			}
			symIdx++
		}

		// One SIG symbol: each stream carries its own subframe's SIG
		// simultaneously, so every station (member or not) can learn the
		// group's length and skip over it.
		var sigPoints [NumAntennas][]complex128
		for s := 0; s < NumAntennas; s++ {
			pts, err := phy.BuildSIGPoints(phy.SIG{MCS: g[s].MCS, Length: len(g[s].Payload)})
			if err != nil {
				return nil, err
			}
			sigPoints[s] = pts
		}
		if err := appendPrecodedSymbol(frame, sigPoints, w, symIdx); err != nil {
			return nil, err
		}
		symIdx++

		// Encode both subframes; pad the shorter to the longer run.
		var blocks [NumAntennas][][]byte
		maxSyms := 0
		for s := 0; s < NumAntennas; s++ {
			b, err := phy.EncodeDataField(g[s].Payload, g[s].MCS, 0x5d)
			if err != nil {
				return nil, err
			}
			blocks[s] = b
			if len(b) > maxSyms {
				maxSyms = len(b)
			}
		}
		lay.dataStart = symIdx
		lay.dataSyms = maxSyms
		lay.blocks = blocks

		for n := 0; n < maxSyms; n++ {
			var perStream [NumAntennas][]complex128
			for s := 0; s < NumAntennas; s++ {
				if n < len(blocks[s]) {
					pts, err := modem.Map(g[s].MCS.Mod, blocks[s][n])
					if err != nil {
						return nil, err
					}
					perStream[s] = pts
				} else {
					perStream[s] = make([]complex128, ofdm.NumData) // padding
				}
			}
			if err := appendPrecodedSymbol(frame, perStream, w, symIdx); err != nil {
				return nil, err
			}
			symIdx++
		}
		frame.layout = append(frame.layout, lay)
	}
	return frame, nil
}

// appendPrecodedSymbol maps per-stream data points through the precoder
// into per-antenna OFDM symbols and appends them to the frame.
func appendPrecodedSymbol(frame *Frame, perStream [NumAntennas][]complex128,
	w [][NumAntennas][NumAntennas]complex128, symIdx int) error {
	var antennaPoints [NumAntennas][]complex128
	for a := 0; a < NumAntennas; a++ {
		antennaPoints[a] = make([]complex128, ofdm.NumData)
	}
	for i, k := range ofdm.DataIndices {
		bin := ofdm.Bin(k)
		for a := 0; a < NumAntennas; a++ {
			var acc complex128
			for s := 0; s < NumAntennas; s++ {
				acc += w[bin][a][s] * perStream[s][i]
			}
			antennaPoints[a][i] = acc
		}
	}
	for a := 0; a < NumAntennas; a++ {
		sym, err := ofdm.AssembleSymbol(antennaPoints[a], symIdx, 0)
		if err != nil {
			return err
		}
		frame.Streams[a] = append(frame.Streams[a], sym...)
	}
	return nil
}

// buildAHDRSamples reuses the scalar A-HDR construction.
func buildAHDRSamples(f bloom.Filter) ([]complex128, error) {
	coded, err := fec.ConvEncode(f.Bits(), fec.Rate1_2)
	if err != nil {
		return nil, err
	}
	il, err := fec.NewInterleaver(ofdm.NumData, 1)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, 2*ofdm.SymbolLen)
	for s := 0; s < 2; s++ {
		block, err := il.Interleave(coded[s*ofdm.NumData : (s+1)*ofdm.NumData])
		if err != nil {
			return nil, err
		}
		points, err := modem.Map(modem.BPSK, block)
		if err != nil {
			return nil, err
		}
		sym, err := ofdm.AssembleSymbol(points, s, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}
