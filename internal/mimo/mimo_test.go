package mimo

import (
	"bytes"
	"math/rand"
	"testing"

	"carpool/internal/bloom"
	"carpool/internal/channel"
	"carpool/internal/dsp"
	"carpool/internal/phy"
)

// staLink bundles one station's two per-antenna channels and its genie CSI.
type staLink struct {
	mac   bloom.MAC
	paths [NumAntennas]*channel.Model
	csi   CSI
}

func newLink(t *testing.T, id byte, seed int64) *staLink {
	t.Helper()
	l := &staLink{mac: bloom.MAC{0x02, 0, 0, 0, 0, id}}
	for a := 0; a < NumAntennas; a++ {
		ch, err := channel.New(channel.Config{
			// Noiseless static multipath: test noise is added once, after
			// the two antenna paths are summed.
			SNRdB: 300, NumTaps: 2, RicianK: 4, TapDecay: 2,
			Seed: seed*10 + int64(a),
		})
		if err != nil {
			t.Fatal(err)
		}
		l.paths[a] = ch
		l.csi[a] = ch.FrequencyResponse()
	}
	return l
}

// hear combines the two antenna streams through the station's channels and
// adds receiver noise at the given SNR.
func (l *staLink) hear(t *testing.T, streams [NumAntennas][]complex128, snrDB float64, seed int64) []complex128 {
	t.Helper()
	rx := make([]complex128, len(streams[0]))
	var sigPower float64
	for a := 0; a < NumAntennas; a++ {
		y := l.paths[a].Transmit(streams[a])
		l.paths[a].Reset() // keep the channel (and CSI) static across frames
		for i := range rx {
			rx[i] += y[i]
		}
	}
	sigPower = dsp.MeanPower(rx)
	noise := dsp.NewGaussianSource(rand.New(rand.NewSource(seed)))
	noise.AddNoise(rx, dsp.NoiseVarianceForSNR(sigPower, snrDB))
	return rx
}

func buildTestGroups(t *testing.T, rng *rand.Rand) ([]Group, []*staLink, [][]byte) {
	t.Helper()
	links := []*staLink{
		newLink(t, 0xA, 1), newLink(t, 0xB, 2), newLink(t, 0xC, 3), newLink(t, 0xD, 4),
	}
	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = make([]byte, 200+i*80)
		rng.Read(payloads[i])
	}
	mk := func(i int, mcs phy.MCS) Subframe {
		return Subframe{Receiver: links[i].mac, MCS: mcs, Payload: payloads[i], CSI: links[i].csi}
	}
	// Rate selection mirrors what a real AP would do: group 2's channel
	// matrix is less well-conditioned, so its members run a more robust
	// MCS against the zero-forcing noise enhancement.
	groups := []Group{
		{mk(0, phy.MCS24), mk(1, phy.MCS12)},
		{mk(2, phy.MCS24), mk(3, phy.MCS12)},
	}
	return groups, links, payloads
}

func TestBuildFrameValidation(t *testing.T) {
	if _, err := BuildFrame(nil, 0); err == nil {
		t.Error("accepted zero groups")
	}
	if _, err := BuildFrame(make([]Group, 3), 0); err == nil {
		t.Error("accepted three groups")
	}
	var g Group
	if _, err := BuildFrame([]Group{g}, 0); err == nil {
		t.Error("accepted empty subframes")
	}
}

func TestCSIValidate(t *testing.T) {
	var c CSI
	if err := c.Validate(); err == nil {
		t.Error("accepted empty CSI")
	}
	for a := range c {
		c[a] = make([]complex128, 64)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("rejected valid CSI: %v", err)
	}
}

func TestFourStationsOneTransmission(t *testing.T) {
	// The Fig. 18 scenario: four stations, two ZF groups, one frame.
	rng := rand.New(rand.NewSource(5))
	groups, links, payloads := buildTestGroups(t, rng)
	frame, err := BuildFrame(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Streams[0]) != len(frame.Streams[1]) {
		t.Fatal("antenna streams differ in length")
	}
	for i, link := range links {
		rx := link.hear(t, frame.Streams, 30, int64(100+i))
		res, err := ReceiveFrame(rx, ReceiverConfig{MAC: link.mac, KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			t.Fatalf("STA %d: status %v", i, res.Status)
		}
		wantGroup := i/2 + 1
		if res.GroupIndex != wantGroup {
			t.Errorf("STA %d: group %d, want %d", i, res.GroupIndex, wantGroup)
		}
		if !bytes.Equal(res.Payload, payloads[i]) {
			t.Errorf("STA %d: payload corrupted", i)
		}
		if res.StreamSeparation < 3 {
			t.Errorf("STA %d: stream separation %.1f too low — zero-forcing failed",
				i, res.StreamSeparation)
		}
	}
}

func TestStreamsCarryDistinctData(t *testing.T) {
	// Members of one group must land on different spatial streams.
	rng := rand.New(rand.NewSource(6))
	groups, links, _ := buildTestGroups(t, rng)
	frame, err := BuildFrame(groups[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		rx := links[i].hear(t, frame.Streams, 32, int64(200+i))
		res, err := ReceiveFrame(rx, ReceiverConfig{MAC: links[i].mac, KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			t.Fatalf("STA %d: status %v", i, res.Status)
		}
		if seen[res.Stream] {
			t.Errorf("both stations decoded stream %d", res.Stream)
		}
		seen[res.Stream] = true
	}
}

func TestForeignStationDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	groups, links, _ := buildTestGroups(t, rng)
	frame, err := BuildFrame(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	foreign := newLink(t, 0xEE, 99)
	rx := foreign.hear(t, frame.Streams, 30, 300)
	res, err := ReceiveFrame(rx, ReceiverConfig{MAC: foreign.mac, KnownStart: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Error("foreign station did not drop the frame")
	}
	_ = links
}

func TestAggregationHalvesTransmissions(t *testing.T) {
	// §8: standard MU-MIMO needs two transmissions (two preambles, two
	// contention rounds) for four stations; Carpool MU-MIMO needs one.
	rng := rand.New(rand.NewSource(8))
	groups, _, _ := buildTestGroups(t, rng)
	combined, err := BuildFrame(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := BuildFrame(groups[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := BuildFrame(groups[1:], 0)
	if err != nil {
		t.Fatal(err)
	}
	separate := len(first.Streams[0]) + len(second.Streams[0])
	if len(combined.Streams[0]) >= separate {
		t.Errorf("combined frame %d samples, separate %d — aggregation saved nothing",
			len(combined.Streams[0]), separate)
	}
}

func TestLongFrameSurvivesCFOResidual(t *testing.T) {
	// Regression: without per-symbol pilot derotation, the noise-driven
	// CFO-estimate error (~hundreds of Hz) rotates the second group's data
	// by ~1 rad relative to its training symbols on a long frame.
	rng := rand.New(rand.NewSource(10))
	links := []*staLink{
		newLink(t, 0x1, 21), newLink(t, 0x2, 22), newLink(t, 0x3, 23), newLink(t, 0x4, 24),
	}
	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = make([]byte, 700)
		rng.Read(payloads[i])
	}
	mk := func(i int) Subframe {
		return Subframe{Receiver: links[i].mac, MCS: phy.MCS12,
			Payload: payloads[i], CSI: links[i].csi}
	}
	frame, err := BuildFrame([]Group{{mk(0), mk(1)}, {mk(2), mk(3)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The last station in the last group is the most exposed.
	for i := 2; i < 4; i++ {
		rx := links[i].hear(t, frame.Streams, 30, int64(400+i))
		res, err := ReceiveFrame(rx, ReceiverConfig{MAC: links[i].mac, KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK || !bytes.Equal(res.Payload, payloads[i]) {
			t.Errorf("STA %d: long-frame decode failed (status %v)", i, res.Status)
		}
	}
}

func TestBloomGroupIndices(t *testing.T) {
	// Fig. 18: A and B share index 1, C and D share index 2.
	rng := rand.New(rand.NewSource(9))
	groups, links, _ := buildTestGroups(t, rng)
	frame, err := BuildFrame(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, link := range links {
		positions := frame.Filter.Positions(link.mac, 2, bloom.DefaultHashes)
		wantPos := i/2 + 1
		found := false
		for _, p := range positions {
			if p == wantPos {
				found = true
			}
		}
		if !found {
			t.Errorf("STA %d: positions %v missing group index %d", i, positions, wantPos)
		}
	}
}
