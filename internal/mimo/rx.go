package mimo

import (
	"fmt"
	"math/cmplx"

	"carpool/internal/bloom"
	"carpool/internal/core"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
)

// ReceiverConfig configures one single-antenna station's MU-MIMO receiver.
type ReceiverConfig struct {
	MAC    bloom.MAC
	Hashes int
	// KnownStart skips packet detection (negative: detect).
	KnownStart int
}

func (c ReceiverConfig) hashes() int {
	if c.Hashes == 0 {
		return bloom.DefaultHashes
	}
	return c.Hashes
}

// FrameRx is a station's view of one MU-MIMO Carpool frame.
type FrameRx struct {
	Status phy.RxStatus
	Filter bloom.Filter
	// Dropped is true when the A-HDR matched nothing for this station.
	Dropped bool
	// GroupIndex (1-based) and Stream identify where the station found its
	// subframe; SIG and Payload are its decoded share.
	GroupIndex int
	Stream     int
	SIG        phy.SIG
	Payload    []byte
	// StreamSeparation is |heff_own| / |heff_other| averaged over
	// subcarriers — a diagnostic of how well zero-forcing isolated the
	// station's stream.
	StreamSeparation float64
}

// ReceiveFrame runs a station's MU-MIMO pipeline: synchronize on the
// antenna-0 legacy preamble, decode the A-HDR, estimate the group's
// effective (precoded) per-stream channels from its VHT training symbols,
// identify the own stream (zero-forcing leaves it dominant), and decode.
func ReceiveFrame(rx []complex128, cfg ReceiverConfig) (*FrameRx, error) {
	buf, h, _, status := phy.Sync(rx, cfg.KnownStart)
	res := &FrameRx{Status: status}
	if status != phy.StatusOK {
		return res, nil
	}

	// A-HDR: two standard-equalized BPSK symbols.
	points := make([][]complex128, 0, 2)
	for s := 0; s < 2; s++ {
		off := ofdm.PreambleLen + s*ofdm.SymbolLen
		if off+ofdm.SymbolLen > len(buf) {
			res.Status = phy.StatusTruncated
			return res, nil
		}
		bins, err := ofdm.SymbolBins(buf[off:])
		if err != nil {
			return nil, err
		}
		if err := ofdm.Equalize(bins, h); err != nil {
			return nil, err
		}
		phase, _ := ofdm.TrackPilotPhase(bins, s)
		ofdm.CompensatePhase(bins, phase)
		points = append(points, ofdm.ExtractData(bins))
	}
	filter, err := core.DecodeAHDR(points)
	if err != nil {
		res.Status = phy.StatusBadSIG
		return res, nil
	}
	res.Filter = filter

	matched := filter.Positions(cfg.MAC, maxGroups, cfg.hashes())
	if len(matched) == 0 {
		res.Dropped = true
		return res, nil
	}
	target := matched[0]
	res.GroupIndex = target

	// SIG-A fields: one robust antenna-0 symbol per group announcing its
	// padded data-symbol count. With them, any station can jump straight
	// to its group without decoding precoded symbols.
	symIdx := 2
	groupSyms := make([]int, 0, maxGroups)
	for g := 0; g < maxGroups; g++ {
		off := ofdm.PreambleLen + symIdx*ofdm.SymbolLen
		sigA, _, err := phy.DecodeSIGAt(buf, h, off, symIdx)
		if err != nil {
			// Fewer groups than the maximum: the first group's training
			// follows immediately. At least one SIG-A must decode.
			break
		}
		groupSyms = append(groupSyms, sigA.Length)
		symIdx++
	}
	if len(groupSyms) < target {
		res.Status = phy.StatusBadSIG
		return res, nil
	}

	// Skip over the groups before the target.
	for g := 0; g < target-1; g++ {
		symIdx += NumAntennas + 1 + groupSyms[g] // training + SIG + data
	}

	// Effective channel estimation from the target group's training.
	heff, err := estimateEffective(buf, symIdx)
	if err != nil {
		res.Status = phy.StatusTruncated
		return res, nil
	}
	symIdx += NumAntennas

	// The member's own stream is the one zero-forcing left dominant; the
	// partner's stream is nulled at this station's antenna.
	own := dominantStream(heff)
	res.Stream = own
	res.StreamSeparation = separation(heff, own)

	sigSym, err := dataPointsAt(buf, symIdx)
	if err != nil {
		res.Status = phy.StatusTruncated
		return res, nil
	}
	symIdx++
	eq := make([]complex128, ofdm.NumData)
	for i := range eq {
		eq[i] = safeDiv(sigSym[i], heff[own][i])
	}
	sig, err := phy.DecodeSIGPoints(eq)
	if err != nil {
		res.Status = phy.StatusBadSIG
		return res, nil
	}
	res.SIG = sig

	nsym := sig.MCS.NumSymbols(sig.Length)
	blocks := make([][]byte, 0, nsym)
	for n := 0; n < nsym; n++ {
		pts, err := dataPointsAt(buf, symIdx+n)
		if err != nil {
			res.Status = phy.StatusTruncated
			return res, nil
		}
		eqd := make([]complex128, ofdm.NumData)
		for i := range eqd {
			eqd[i] = safeDiv(pts[i], heff[own][i])
		}
		block, err := demapPoints(sig.MCS, eqd)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, block)
	}
	payload, err := phy.DecodeDataField(blocks, sig.MCS, sig.Length)
	if err != nil {
		return nil, err
	}
	res.Payload = payload
	res.Status = phy.StatusOK
	return res, nil
}

// maxGroups bounds the groups per frame (two with a 2-antenna AP).
const maxGroups = 2

// estimateEffective recovers both streams' effective channels on the 48
// data subcarriers from the two P-matrix training symbols.
func estimateEffective(buf []complex128, symIdx int) ([NumAntennas][]complex128, error) {
	var y [NumAntennas][]complex128
	for t := 0; t < NumAntennas; t++ {
		pts, err := dataPointsAt(buf, symIdx+t)
		if err != nil {
			return [NumAntennas][]complex128{}, err
		}
		y[t] = pts
	}
	train := trainingPoints()
	var heff [NumAntennas][]complex128
	for s := 0; s < NumAntennas; s++ {
		heff[s] = make([]complex128, ofdm.NumData)
	}
	for i := range train {
		t := train[i]
		if t == 0 {
			continue
		}
		// P = [[1,1],[1,-1]]: y0 = (h1+h2)T, y1 = (h1-h2)T.
		heff[0][i] = (y[0][i] + y[1][i]) / (2 * t)
		heff[1][i] = (y[0][i] - y[1][i]) / (2 * t)
	}
	return heff, nil
}

// dataPointsAt extracts the 48 data points of the OFDM symbol at index
// symIdx (counting from the end of the preamble), derotated by the symbol's
// raw pilot phase. Both antennas transmit identical standard pilots, so the
// pilots see one fixed effective channel; their per-symbol phase therefore
// isolates residual-CFO drift, which would otherwise rotate the groups far
// from their training symbols (no per-symbol equalizer phase-tracks here as
// in the scalar receiver).
func dataPointsAt(buf []complex128, symIdx int) ([]complex128, error) {
	off := ofdm.PreambleLen + symIdx*ofdm.SymbolLen
	if off+ofdm.SymbolLen > len(buf) {
		return nil, fmt.Errorf("mimo: buffer ends before symbol %d", symIdx)
	}
	bins, err := ofdm.SymbolBins(buf[off:])
	if err != nil {
		return nil, err
	}
	phase, _ := ofdm.TrackPilotPhase(bins, symIdx)
	ofdm.CompensatePhase(bins, phase)
	return ofdm.ExtractData(bins), nil
}

func safeDiv(a, b complex128) complex128 {
	if cmplx.Abs(b) < 1e-9 {
		return 0
	}
	return a / b
}

// dominantStream picks the stream with the larger mean magnitude.
func dominantStream(heff [NumAntennas][]complex128) int {
	best, bestMag := 0, -1.0
	for s := 0; s < NumAntennas; s++ {
		var m float64
		for _, v := range heff[s] {
			m += cmplx.Abs(v)
		}
		if m > bestMag {
			bestMag, best = m, s
		}
	}
	return best
}

// separation returns the mean magnitude ratio between the own stream and
// the strongest other stream.
func separation(heff [NumAntennas][]complex128, own int) float64 {
	mean := func(s int) float64 {
		var m float64
		for _, v := range heff[s] {
			m += cmplx.Abs(v)
		}
		return m / float64(len(heff[s]))
	}
	ownMag := mean(own)
	other := 0.0
	for s := 0; s < NumAntennas; s++ {
		if s != own {
			if m := mean(s); m > other {
				other = m
			}
		}
	}
	if other == 0 {
		return 0
	}
	return ownMag / other
}

// demapPoints hard-demaps 48 equalized points with the subframe's
// modulation.
func demapPoints(mcs phy.MCS, points []complex128) ([]byte, error) {
	return modem.Demap(mcs.Mod, points)
}
