package obs

import (
	"sync"
	"testing"
)

// TestSnapshotUnderConcurrentWriters hammers one registry from many
// goroutines — counters, gauges, histograms, and metric creation — while
// snapshots are taken concurrently, then checks exact totals after the
// writers drain. Run with -race; the conformance CI job repeats it.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	const (
		writers       = 8
		incsPerWriter = 1998 // divisible by 6: i%6 fills buckets evenly
	)
	r := NewRegistry()
	var wg sync.WaitGroup

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			// Mid-flight totals must never exceed the final tally or go
			// negative; exact values are checked after the drain.
			if v := s.Counters["shared"]; v < 0 || v > writers*incsPerWriter {
				t.Errorf("mid-flight shared counter %d out of range", v)
				return
			}
			if h, ok := s.Histograms["lat"]; ok {
				var n int64
				for _, b := range h.Buckets {
					n += b
				}
				if n != h.Count {
					t.Errorf("mid-flight histogram buckets sum %d != count %d", n, h.Count)
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve through the registry every time: lookup itself must
			// be race-free with concurrent creation and snapshots.
			for i := 0; i < incsPerWriter; i++ {
				r.Counter("shared").Inc()
				r.Counter("per.writer").Add(2)
				r.Gauge("gauge").Set(float64(w))
				r.Histogram("lat", []float64{1, 2, 4}).Observe(float64(i % 6))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := r.Snapshot()
	if got, want := s.Counters["shared"], int64(writers*incsPerWriter); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got, want := s.Counters["per.writer"], int64(2*writers*incsPerWriter); got != want {
		t.Errorf("per.writer counter = %d, want %d", got, want)
	}
	if g := s.Gauges["gauge"]; g < 0 || g >= writers {
		t.Errorf("gauge = %v, want one of the written values 0..%d", g, writers-1)
	}
	h := s.Histograms["lat"]
	if got, want := h.Count, int64(writers*incsPerWriter); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b
	}
	if n != h.Count {
		t.Errorf("histogram buckets sum to %d, count says %d", n, h.Count)
	}
	// i%6 over 0..5: values {0,1} -> bucket 0, {2} -> bucket 1, {3,4} ->
	// bucket 2, {5} -> overflow. Each writer contributes evenly.
	per := int64(writers * incsPerWriter / 6)
	wantBuckets := []int64{2 * per, per, 2 * per, per}
	for i, want := range wantBuckets {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], want)
		}
	}
	if got, want := h.Sum, float64(writers*incsPerWriter/6)*(0+1+2+3+4+5); got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestDiffUnderConcurrentWriters takes a baseline snapshot while writers
// are mid-flight and verifies the final Diff accounts for exactly the
// increments not yet visible at baseline time.
func TestDiffUnderConcurrentWriters(t *testing.T) {
	const total = 10000
	r := NewRegistry()
	var wg sync.WaitGroup
	release := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			for i := 0; i < total/4; i++ {
				r.Counter("work").Inc()
				r.Histogram("h", []float64{10}).Observe(1)
			}
		}()
	}
	close(release)
	base := r.Snapshot() // racing with the writers on purpose
	wg.Wait()
	diff := r.Snapshot().Diff(base)

	if got := diff.Counters["work"] + base.Counters["work"]; got != total {
		t.Errorf("baseline %d + diff %d = %d, want %d",
			base.Counters["work"], diff.Counters["work"], got, total)
	}
	if h := diff.Histograms["h"]; h.Count+base.Histograms["h"].Count != total {
		t.Errorf("histogram baseline %d + diff %d != %d",
			base.Histograms["h"].Count, h.Count, total)
	}
}

// TestHistogramBucketEdges pins the boundary convention: bucket i counts
// v <= Bounds[i], the overflow bucket the rest.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-1, 0}, {0, 0}, {0.999, 0}, {1, 0}, // at the bound counts in
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {4, 2},
		{4.000001, 3}, {1e9, 3}, // overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := r.Snapshot().Histograms["edges"]
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if snap.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (bounds %v)", i, snap.Buckets[i], want[i], snap.Bounds)
		}
	}
	if snap.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
}

// TestHistogramUnsortedBounds checks registration sorts the bounds, so
// call sites cannot accidentally shift the bucket meaning.
func TestHistogramUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("unsorted", []float64{4, 1, 2})
	if got := h.Bounds(); got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("bounds not sorted: %v", got)
	}
	h.Observe(1.5)
	if b := r.Snapshot().Histograms["unsorted"].Buckets; b[1] != 1 {
		t.Errorf("1.5 landed in buckets %v, want bucket 1", b)
	}
}

// TestHistogramFirstRegistrationWins pins that later bounds are ignored.
func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("same", []float64{1, 2})
	b := r.Histogram("same", []float64{100})
	if a != b {
		t.Fatal("same name resolved to different histograms")
	}
	if got := b.Bounds(); len(got) != 2 || got[0] != 1 {
		t.Errorf("second registration changed bounds: %v", got)
	}
}
