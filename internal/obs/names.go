package obs

// Canonical cross-layer metric names. The discrete-event MAC simulator
// (internal/mac) and the real-time aggregation engine (internal/engine)
// implement the same downlink queueing semantics — bounded per-STA queues,
// latency expiry, retry-limit drops — so they report those outcomes under
// one shared vocabulary. Dashboards and differential tests can then compare
// a simulator run and an engine run without a name-mapping layer.
const (
	// QueueDropped counts downlink frames lost to admission control (full
	// queue) or to the retry limit.
	QueueDropped = "queue.dropped"
	// QueueExpired counts downlink frames that exceeded the configured
	// latency bound while queued and were expired before transmission.
	QueueExpired = "queue.expired"
	// QueueDepth gauges the instantaneous backlog of the most recently
	// serviced queue, in frames.
	QueueDepth = "queue.depth"
	// QueueBackpressure counts producer-visible admission rejections: a
	// Submit (engine) or ingest (simulator) turned away at a full queue.
	QueueBackpressure = "queue.backpressure"
)
