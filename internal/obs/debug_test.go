package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestDebugServerEndpoints starts the server on an ephemeral port and
// checks expvar, the metrics snapshot, and the pprof index respond.
func TestDebugServerEndpoints(t *testing.T) {
	// Snapshot-relative so repeated runs (-count=N) against the shared
	// Default registry still see exactly +3.
	before := Default.Counter("debugtest.hits").Load()
	Default.Counter("debugtest.hits").Add(3)
	want := before + 3
	ds, err := StartDebugServer("127.0.0.1:0", Default)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr().String()

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var vars struct {
		Carpool struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"carpool"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if vars.Carpool.Counters["debugtest.hits"] != want {
		t.Errorf("expvar counters %v, want debugtest.hits=%d", vars.Carpool.Counters, want)
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["debugtest.hits"] != want {
		t.Errorf("snapshot counters %v, want debugtest.hits=%d", snap.Counters, want)
	}

	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Error("pprof index empty")
	}
}
