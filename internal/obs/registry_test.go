package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestConcurrentCounterHammer drives one counter from many goroutines and
// checks nothing is lost; run under -race this also proves the counter is
// data-race free.
func TestConcurrentCounterHammer(t *testing.T) {
	const workers, perWorker = 16, 10000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer.count")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer.count").Load(); got != workers*perWorker {
		t.Errorf("counter %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentHistogramHammer checks concurrent Observe keeps count, sum
// and bucket totals consistent.
func TestConcurrentHistogramHammer(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := NewRegistry()
	bounds := []float64{1, 10, 100}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("hammer.hist", bounds)
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot().Histograms["hammer.hist"]
	if s.Count != workers*perWorker {
		t.Errorf("count %d, want %d", s.Count, workers*perWorker)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != s.Count {
		t.Errorf("bucket total %d != count %d", inBuckets, s.Count)
	}
	// Each worker observes 0..199 repeating: per 200 observations the sum
	// is 199*200/2.
	wantSum := float64(workers) * float64(perWorker/200) * (199 * 200 / 2)
	if s.Sum != wantSum {
		t.Errorf("sum %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramBucketing pins the bucket edge convention: v <= bound.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.1, 10, 11} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["edges"]
	want := []int64{2, 2, 1} // (<=1)=0.5,1  (<=10)=1.1,10  overflow=11
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, b, want[i], s.Buckets)
		}
	}
}

// TestSnapshotDiff checks counter and histogram subtraction and that
// metrics born between snapshots count from zero.
func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	h := r.Histogram("h", []float64{5})
	c.Add(3)
	h.Observe(1)
	before := r.Snapshot()

	c.Add(4)
	h.Observe(2)
	h.Observe(7)
	r.Counter("born.later").Add(9)
	r.Gauge("g").Set(2.5)
	diff := r.Snapshot().Diff(before)

	if diff.Counters["a"] != 4 {
		t.Errorf("diff a = %d, want 4", diff.Counters["a"])
	}
	if diff.Counters["born.later"] != 9 {
		t.Errorf("diff born.later = %d, want 9", diff.Counters["born.later"])
	}
	if diff.Gauges["g"] != 2.5 {
		t.Errorf("diff gauge = %v, want 2.5", diff.Gauges["g"])
	}
	dh := diff.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 9 {
		t.Errorf("diff hist count=%d sum=%v, want 2 and 9", dh.Count, dh.Sum)
	}
	if dh.Buckets[0] != 1 || dh.Buckets[1] != 1 {
		t.Errorf("diff hist buckets %v, want [1 1]", dh.Buckets)
	}
}

// TestSnapshotJSONRoundTrip checks WriteJSON emits decodable JSON.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	r.Gauge("y").Set(1.5)
	r.Histogram("z", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["x"] != 7 || back.Gauges["y"] != 1.5 || back.Histograms["z"].Count != 1 {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

// TestNilSafety checks the disabled path: nil registries and metrics are
// inert, and a nil sink resolves nil metrics.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Errorf("nil registry snapshot has %d counters", n)
	}
	var s *Sink
	if s.Counter("c") != nil || s.Gauge("g") != nil || s.Histogram("h", nil) != nil {
		t.Error("nil sink must resolve nil metrics")
	}
	var tr *Tracer
	tr.Emit(EvCollision, 0, 0)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer must be inert")
	}
}

// TestEnableDisable checks the global gate.
func TestEnableDisable(t *testing.T) {
	if Active() != nil {
		t.Fatal("observation unexpectedly on at test start")
	}
	s := &Sink{Registry: NewRegistry()}
	Enable(s)
	t.Cleanup(Disable)
	if Active() != s {
		t.Error("Active() did not return the enabled sink")
	}
	Disable()
	if Active() != nil {
		t.Error("Disable() left a sink installed")
	}
}

// TestCounterResolutionStable checks hot paths may cache metric pointers.
func TestCounterResolutionStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("same") != r.Counter("same") {
		t.Error("repeated Counter() returned different pointers")
	}
}
