package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"sync"
	"testing"
)

// TestTracerWraparoundOrdering fills a small ring past capacity and checks
// the retained window is the most recent events, oldest-first.
func TestTracerWraparoundOrdering(t *testing.T) {
	tr := NewTracer(16)
	const emitted = 41
	for i := 0; i < emitted; i++ {
		tr.EmitAt(int64(i), EvSymbolDecode, int64(i), 0)
	}
	if tr.Len() != 16 {
		t.Fatalf("Len %d, want 16", tr.Len())
	}
	if tr.Dropped() != emitted-16 {
		t.Errorf("Dropped %d, want %d", tr.Dropped(), emitted-16)
	}
	evs := tr.Events()
	for i, e := range evs {
		want := int64(emitted - 16 + i)
		if e.A != want || e.TS != want {
			t.Fatalf("event %d = %+v, want A=TS=%d", i, e, want)
		}
	}
}

// TestTracerBelowCapacity checks the unwrapped read path.
func TestTracerBelowCapacity(t *testing.T) {
	tr := NewTracer(64)
	tr.EmitAt(1, EvCollision, 2, 3)
	tr.EmitAt(2, EvAggTX, 4, 5)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != EvCollision || evs[1].Kind != EvAggTX {
		t.Fatalf("events %+v", evs)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped %d, want 0", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("Len after Reset = %d", tr.Len())
	}
}

// TestTracerConcurrentEmit hammers Emit from many goroutines (ring large
// enough not to wrap) and checks every event arrived exactly once. Under
// -race this also exercises the slot-claim protocol.
func TestTracerConcurrentEmit(t *testing.T) {
	const workers, perWorker = 8, 1000
	tr := NewTracer(workers * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.EmitAt(int64(i), EvBackoffDraw, int64(w), int64(i))
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != workers*perWorker {
		t.Fatalf("%d events, want %d", len(evs), workers*perWorker)
	}
	seen := make(map[[2]int64]bool, len(evs))
	for _, e := range evs {
		key := [2]int64{e.A, e.B}
		if seen[key] {
			t.Fatalf("duplicate event %+v", e)
		}
		seen[key] = true
	}
}

// TestChromeTraceExport checks the trace_event JSON shape Perfetto needs.
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	tr.EmitAt(1500, EvAHDRMatch, 2, 0)
	tr.EmitAt(3000, EvCollision, 3, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string           `json:"name"`
			Cat   string           `json:"cat"`
			Phase string           `json:"ph"`
			TS    float64          `json:"ts"`
			Args  map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("%d trace events, want 2", len(out.TraceEvents))
	}
	e := out.TraceEvents[0]
	if e.Name != "ahdr.match" || e.Cat != "phy" || e.Phase != "i" || e.TS != 1.5 || e.Args["a"] != 2 {
		t.Errorf("first event %+v", e)
	}
	if out.TraceEvents[1].Cat != "mac" {
		t.Errorf("collision category %q, want mac", out.TraceEvents[1].Cat)
	}
}

// TestCSVExport checks the CSV layout.
func TestCSVExport(t *testing.T) {
	tr := NewTracer(16)
	tr.EmitAt(7, EvRTEUpdate, 1, 2)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	want := []string{"7", "rte.update", "1", "2"}
	for i, v := range want {
		if rows[1][i] != v {
			t.Errorf("row %v, want %v", rows[1], want)
			break
		}
	}
}

// TestEmitZeroAlloc pins the enabled emit path: claiming a slot and writing
// the record must not allocate.
func TestEmitZeroAlloc(t *testing.T) {
	tr := NewTracer(1 << 12)
	allocs := testing.AllocsPerRun(200, func() {
		tr.EmitAt(42, EvSymbolDecode, 1, 1)
	})
	if allocs != 0 {
		t.Errorf("EmitAt allocates %v times, want 0", allocs)
	}
}
