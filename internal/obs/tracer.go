package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// EventKind identifies one instrumented event type. The taxonomy covers the
// PHY receive pipeline (per-symbol decode outcomes, RTE calibration,
// side-channel verdicts, A-HDR routing), the MAC simulator (contention,
// collisions, aggregated transmissions, sequential ACKs, queue expiry), and
// the real-time engine's frame lifecycle (per-stage latency spans on sampled
// frames, terminal dispositions, health transitions).
type EventKind uint8

// Event kinds. PHY events first, MAC events after, engine lifecycle last.
const (
	// EvSymbolDecode is one DATA symbol demodulated; A is the symbol
	// index, B is 1 when its side-channel group CRC verified, 0 otherwise
	// (or when no side channel ran).
	EvSymbolDecode EventKind = iota + 1
	// EvRTEUpdate is one data-pilot fold-in (Eq. 3); A is the symbol
	// index, B the total updates so far in this subframe.
	EvRTEUpdate
	// EvSideVerdict is one side-channel group CRC check; A is the group's
	// first symbol index, B is 1 on match.
	EvSideVerdict
	// EvAHDRMatch is an A-HDR Bloom filter hit; A is the number of matched
	// subframe positions.
	EvAHDRMatch
	// EvAHDRDrop is a frame dropped after the A-HDR matched nothing.
	EvAHDRDrop
	// EvBackoffDraw is one contention backoff draw; A is the station index
	// (-1 for an AP), B the drawn slot count.
	EvBackoffDraw
	// EvCollision is a MAC collision; A is the number of colliding
	// transmitters.
	EvCollision
	// EvAggTX is one aggregated AP transmission; A is the number of
	// subframes, B the total payload bytes.
	EvAggTX
	// EvSeqACK is the sequential-ACK train of one AP transmission; A is
	// the number of ACK slots.
	EvSeqACK
	// EvQueueExpiry is a downlink frame dropped for exceeding MaxLatency;
	// A is the station index.
	EvQueueExpiry

	// Engine frame-lifecycle kinds. The stage kinds are *spans*: TS is the
	// nanosecond timestamp at which the stage ended and B its duration in
	// nanoseconds, so trace exporters can reconstruct [TS-B, TS] intervals.
	// A is always the station index. They are emitted only for sampled
	// frames (engine Config.SampleEvery) at the frame's terminal
	// disposition, one span per stage with the stage's accumulated time.

	// EvStageQueueWait is a sampled frame's total time spent waiting in
	// its queue while the STA was eligible (not backing off).
	EvStageQueueWait
	// EvStageBackoff is a sampled frame's total time queued behind its
	// STA's retry backoff gate.
	EvStageBackoff
	// EvStageAir is a sampled frame's total airtime across every TX
	// attempt it rode in (aggregate airtime + sequential ACK train).
	EvStageAir
	// EvStageDecode is a sampled frame's total transport/decode time
	// (wall time inside Transport.Deliver across its TX attempts).
	EvStageDecode
	// EvFrameDeliver is a sampled frame's terminal delivery; A is the
	// station index, B the total admit-to-deliver latency in nanoseconds.
	EvFrameDeliver
	// EvFrameDrop is a sampled frame's terminal drop or expiry; A is the
	// station index, B the retry count at the drop.
	EvFrameDrop
	// EvHealth is a health-status transition; A is the new status
	// (0 ok, 1 degraded, 2 unhealthy), B a bitmask of firing detectors
	// in engine.HealthMonitor detector order.
	EvHealth
)

// String names the kind, used as the Chrome trace event name.
func (k EventKind) String() string {
	switch k {
	case EvSymbolDecode:
		return "phy.symbol_decode"
	case EvRTEUpdate:
		return "rte.update"
	case EvSideVerdict:
		return "side.verdict"
	case EvAHDRMatch:
		return "ahdr.match"
	case EvAHDRDrop:
		return "ahdr.drop"
	case EvBackoffDraw:
		return "mac.backoff_draw"
	case EvCollision:
		return "mac.collision"
	case EvAggTX:
		return "mac.agg_tx"
	case EvSeqACK:
		return "mac.seq_ack"
	case EvQueueExpiry:
		return "mac.queue_expiry"
	case EvStageQueueWait:
		return "engine.stage.queue_wait"
	case EvStageBackoff:
		return "engine.stage.backoff"
	case EvStageAir:
		return "engine.stage.air"
	case EvStageDecode:
		return "engine.stage.decode"
	case EvFrameDeliver:
		return "engine.frame.deliver"
	case EvFrameDrop:
		return "engine.frame.drop"
	case EvHealth:
		return "health.status"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// category groups kinds into Chrome trace categories.
func (k EventKind) category() string {
	switch k {
	case EvBackoffDraw, EvCollision, EvAggTX, EvSeqACK, EvQueueExpiry:
		return "mac"
	case EvStageQueueWait, EvStageBackoff, EvStageAir, EvStageDecode,
		EvFrameDeliver, EvFrameDrop:
		return "engine"
	case EvHealth:
		return "health"
	default:
		return "phy"
	}
}

// isSpan reports whether B carries a duration in nanoseconds ending at TS,
// exported as a Chrome complete ("X") event rather than an instant.
func (k EventKind) isSpan() bool {
	switch k {
	case EvStageQueueWait, EvStageBackoff, EvStageAir, EvStageDecode:
		return true
	}
	return false
}

// Event is one fixed-size trace record. TS is nanoseconds — wall-clock for
// PHY events (Emit), simulated time for MAC events (EmitAt). For span kinds
// (isSpan) B is the span duration in nanoseconds and TS its end.
type Event struct {
	TS   int64
	Kind EventKind
	A, B int64
}

// eventSlot is one ring slot. The payload words are independent atomics and
// tag is a seqlock-style publish marker encoding the claiming position and
// kind: a writer zeroes the tag, stores the payload, then publishes the tag,
// and a reader accepts a slot only when the tag matches the position it
// expects before AND after reading the payload. A lapped or in-flight slot
// therefore yields a detectably-invalid tag instead of a torn Event.
type eventSlot struct {
	ts, a, b atomic.Int64
	tag      atomic.Uint64
}

// slotTag encodes (position, kind) into a publish tag. Zero is reserved for
// "unpublished", hence the +1. Positions keep 56 usable bits — the ring
// would take centuries to overflow at nanosecond emit rates.
func slotTag(pos uint64, kind EventKind) uint64 {
	return (pos+1)<<8 | uint64(kind)
}

// Tracer records events into a fixed-capacity ring buffer. Emit claims a
// slot with one atomic add and publishes it with atomic stores guarded by a
// per-slot tag, so concurrent emitters — even ones that lap the ring —
// never produce a torn event: readers (Events, WriteChromeTrace, WriteCSV)
// validate each slot's tag against the position they expect and skip slots
// that are mid-write or were overwritten during the read. Reading while
// emitters are live is therefore safe; it returns a consistent subset.
type Tracer struct {
	ring []eventSlot
	mask uint64
	pos  atomic.Uint64
}

// NewTracer returns a tracer holding the most recent events; capacity is
// rounded up to a power of two (minimum 16).
func NewTracer(capacity int) *Tracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Tracer{ring: make([]eventSlot, n), mask: uint64(n) - 1}
}

// Emit records an event stamped with the wall clock. Nil tracers are
// no-ops, so disabled call sites stay allocation- and branch-cheap.
func (t *Tracer) Emit(kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	t.EmitAt(time.Now().UnixNano(), kind, a, b)
}

// EmitAt records an event with an explicit timestamp (the MAC simulator
// stamps simulated time).
func (t *Tracer) EmitAt(tsNanos int64, kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	i := t.pos.Add(1) - 1
	s := &t.ring[i&t.mask]
	s.tag.Store(0) // invalidate while the payload is inconsistent
	s.ts.Store(tsNanos)
	s.a.Store(a)
	s.b.Store(b)
	s.tag.Store(slotTag(i, kind))
}

// Len returns how many events are currently retained (an upper bound while
// emitters are live: in-flight slots are skipped by Events).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n > uint64(len(t.ring)) {
		return len(t.ring)
	}
	return int(n)
}

// Dropped returns how many events were overwritten by wraparound. It is
// derived from the monotone claim counter, so it never decreases (until
// Reset).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n <= uint64(len(t.ring)) {
		return 0
	}
	return int64(n - uint64(len(t.ring)))
}

// Events returns the retained events oldest-first. Slots that are mid-write
// or were lapped by a concurrent emitter during the read are skipped; after
// emitters quiesce the returned set is exact.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.pos.Load()
	var lo uint64
	if n > uint64(len(t.ring)) {
		lo = n - uint64(len(t.ring))
	}
	out := make([]Event, 0, n-lo)
	for p := lo; p < n; p++ {
		s := &t.ring[p&t.mask]
		kind, a, b, ts, ok := s.read(p)
		if !ok {
			continue
		}
		out = append(out, Event{TS: ts, Kind: kind, A: a, B: b})
	}
	return out
}

// read performs one seqlock-style validated read of a slot expected to hold
// position p. It re-checks the tag after loading the payload so a writer
// racing the read is detected rather than surfaced as a torn event.
func (s *eventSlot) read(p uint64) (kind EventKind, a, b, ts int64, ok bool) {
	tag1 := s.tag.Load()
	if tag1>>8 != p+1 {
		return 0, 0, 0, 0, false
	}
	ts = s.ts.Load()
	a = s.a.Load()
	b = s.b.Load()
	if s.tag.Load() != tag1 {
		return 0, 0, 0, 0, false
	}
	return EventKind(tag1 & 0xff), a, b, ts, true
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.pos.Store(0)
	for i := range t.ring {
		t.ring[i].tag.Store(0)
	}
}

// chromeEvent is one entry of the Chrome trace_event format.
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Phase string           `json:"ph"`
	TS    float64          `json:"ts"` // microseconds
	Dur   float64          `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args"`
}

// WriteChromeTrace exports the retained events as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Point events become thread-scoped instants; span kinds (the engine stage
// decomposition) become complete "X" events spanning [TS-B, TS] so each
// sampled frame's queue-wait/backoff/air/decode segments render as bars.
// The tid is the event kind so each kind gets its own track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs))}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.category(),
			PID:  1,
			TID:  int(e.Kind),
			Args: map[string]int64{"a": e.A, "b": e.B},
		}
		if e.Kind.isSpan() {
			ce.Phase = "X"
			ce.TS = float64(e.TS-e.B) / 1e3
			ce.Dur = float64(e.B) / 1e3
		} else {
			ce.Phase = "i"
			ce.TS = float64(e.TS) / 1e3
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteCSV exports the retained events as ts_ns,kind,a,b rows.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_ns", "kind", "a", "b"}); err != nil {
		return err
	}
	for _, e := range t.Events() {
		rec := []string{
			strconv.FormatInt(e.TS, 10),
			e.Kind.String(),
			strconv.FormatInt(e.A, 10),
			strconv.FormatInt(e.B, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
