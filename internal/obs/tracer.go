package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// EventKind identifies one instrumented event type. The taxonomy covers the
// PHY receive pipeline (per-symbol decode outcomes, RTE calibration,
// side-channel verdicts, A-HDR routing) and the MAC simulator (contention,
// collisions, aggregated transmissions, sequential ACKs, queue expiry).
type EventKind uint8

// Event kinds. PHY events first, MAC events after.
const (
	// EvSymbolDecode is one DATA symbol demodulated; A is the symbol
	// index, B is 1 when its side-channel group CRC verified, 0 otherwise
	// (or when no side channel ran).
	EvSymbolDecode EventKind = iota + 1
	// EvRTEUpdate is one data-pilot fold-in (Eq. 3); A is the symbol
	// index, B the total updates so far in this subframe.
	EvRTEUpdate
	// EvSideVerdict is one side-channel group CRC check; A is the group's
	// first symbol index, B is 1 on match.
	EvSideVerdict
	// EvAHDRMatch is an A-HDR Bloom filter hit; A is the number of matched
	// subframe positions.
	EvAHDRMatch
	// EvAHDRDrop is a frame dropped after the A-HDR matched nothing.
	EvAHDRDrop
	// EvBackoffDraw is one contention backoff draw; A is the station index
	// (-1 for an AP), B the drawn slot count.
	EvBackoffDraw
	// EvCollision is a MAC collision; A is the number of colliding
	// transmitters.
	EvCollision
	// EvAggTX is one aggregated AP transmission; A is the number of
	// subframes, B the total payload bytes.
	EvAggTX
	// EvSeqACK is the sequential-ACK train of one AP transmission; A is
	// the number of ACK slots.
	EvSeqACK
	// EvQueueExpiry is a downlink frame dropped for exceeding MaxLatency;
	// A is the station index.
	EvQueueExpiry
)

// String names the kind, used as the Chrome trace event name.
func (k EventKind) String() string {
	switch k {
	case EvSymbolDecode:
		return "phy.symbol_decode"
	case EvRTEUpdate:
		return "rte.update"
	case EvSideVerdict:
		return "side.verdict"
	case EvAHDRMatch:
		return "ahdr.match"
	case EvAHDRDrop:
		return "ahdr.drop"
	case EvBackoffDraw:
		return "mac.backoff_draw"
	case EvCollision:
		return "mac.collision"
	case EvAggTX:
		return "mac.agg_tx"
	case EvSeqACK:
		return "mac.seq_ack"
	case EvQueueExpiry:
		return "mac.queue_expiry"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// category groups kinds into Chrome trace categories.
func (k EventKind) category() string {
	switch k {
	case EvBackoffDraw, EvCollision, EvAggTX, EvSeqACK, EvQueueExpiry:
		return "mac"
	default:
		return "phy"
	}
}

// Event is one fixed-size trace record. TS is nanoseconds — wall-clock for
// PHY events (Emit), simulated time for MAC events (EmitAt).
type Event struct {
	TS   int64
	Kind EventKind
	A, B int64
}

// Tracer records events into a fixed-capacity ring buffer. Emit claims a
// slot with one atomic add and writes it without locking: concurrent
// emitters write distinct slots as long as the buffer does not lap an
// in-flight writer, which a capacity much larger than the emitter count
// guarantees. Read the buffer (Events, WriteChromeTrace, WriteCSV) only
// after emitters quiesce.
type Tracer struct {
	ring []Event
	mask uint64
	pos  atomic.Uint64
}

// NewTracer returns a tracer holding the most recent events; capacity is
// rounded up to a power of two (minimum 16).
func NewTracer(capacity int) *Tracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Tracer{ring: make([]Event, n), mask: uint64(n) - 1}
}

// Emit records an event stamped with the wall clock. Nil tracers are
// no-ops, so disabled call sites stay allocation- and branch-cheap.
func (t *Tracer) Emit(kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	t.EmitAt(time.Now().UnixNano(), kind, a, b)
}

// EmitAt records an event with an explicit timestamp (the MAC simulator
// stamps simulated time).
func (t *Tracer) EmitAt(tsNanos int64, kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	i := t.pos.Add(1) - 1
	t.ring[i&t.mask] = Event{TS: tsNanos, Kind: kind, A: a, B: b}
}

// Len returns how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n > uint64(len(t.ring)) {
		return len(t.ring)
	}
	return int(n)
}

// Dropped returns how many events were overwritten by wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n <= uint64(len(t.ring)) {
		return 0
	}
	return int64(n - uint64(len(t.ring)))
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.pos.Load()
	if n <= uint64(len(t.ring)) {
		return append([]Event(nil), t.ring[:n]...)
	}
	out := make([]Event, 0, len(t.ring))
	start := n & t.mask
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	if t != nil {
		t.pos.Store(0)
	}
}

// chromeEvent is one entry of the Chrome trace_event format.
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Phase string           `json:"ph"`
	TS    float64          `json:"ts"` // microseconds
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s"`
	Args  map[string]int64 `json:"args"`
}

// WriteChromeTrace exports the retained events as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Events become thread-scoped instants; the tid is the event kind so each
// kind gets its own track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs))}
	for _, e := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  e.Kind.String(),
			Cat:   e.Kind.category(),
			Phase: "i",
			TS:    float64(e.TS) / 1e3,
			PID:   1,
			TID:   int(e.Kind),
			Scope: "t",
			Args:  map[string]int64{"a": e.A, "b": e.B},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteCSV exports the retained events as ts_ns,kind,a,b rows.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_ns", "kind", "a", "b"}); err != nil {
		return err
	}
	for _, e := range t.Events() {
		rec := []string{
			strconv.FormatInt(e.TS, 10),
			e.Kind.String(),
			strconv.FormatInt(e.A, 10),
			strconv.FormatInt(e.B, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
