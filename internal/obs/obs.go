package obs

import "sync/atomic"

// Sink bundles the metric registry and event tracer that instrumented
// packages write into. Either field may be nil: a metrics-only sink skips
// tracing and vice versa.
type Sink struct {
	Registry *Registry
	Tracer   *Tracer
}

// Counter resolves a named counter on the sink's registry (nil-safe).
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Registry.Counter(name)
}

// Gauge resolves a named gauge on the sink's registry (nil-safe).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Registry.Gauge(name)
}

// Histogram resolves a named histogram on the sink's registry (nil-safe).
func (s *Sink) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Registry.Histogram(name, bounds)
}

// Default is the process-wide registry served by the debug endpoint and
// used by NewDefaultSink.
var Default = NewRegistry()

// active is the globally installed sink; nil means observation is off and
// every instrumented touch point reduces to one atomic load + nil check.
var active atomic.Pointer[Sink]

// Enable installs s as the process-wide sink. Install before starting the
// work to observe: hot paths cache the sink per call, and flipping it while
// they run only affects subsequent calls.
func Enable(s *Sink) { active.Store(s) }

// Disable turns global observation off.
func Disable() { active.Store(nil) }

// Active returns the installed sink, or nil when observation is off.
func Active() *Sink { return active.Load() }

// NewDefaultSink returns a sink on the Default registry with a fresh
// tracer of the given capacity (<=0 selects 1<<16 events).
func NewDefaultSink(traceCapacity int) *Sink {
	if traceCapacity <= 0 {
		traceCapacity = 1 << 16
	}
	return &Sink{Registry: Default, Tracer: NewTracer(traceCapacity)}
}
