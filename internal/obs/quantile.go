package obs

import "math"

// LatencyBucketsMs is the canonical log-spaced latency bucket set shared by
// the engine's `engine.latency_ms` / `engine.stage.*_ms` histograms and the
// engine's Stats percentiles, so `/debug/metrics`, stats wire records, and
// streamed telemetry all quantize latency identically and report the same
// quantile estimates.
//
// Bounds run from 1 µs to 10 s with LatencyBucketsPerDecade buckets per
// decade. BucketQuantile reports a containing bucket's upper bound, so any
// quantile estimate v satisfies
//
//	true_value <= v <= true_value * 10^(1/LatencyBucketsPerDecade)
//
// i.e. the estimate overshoots by at most 10^(1/20)-1 ≈ 12.2% relative
// (values below the first bound report 1 µs; values above 10 s saturate at
// the top bound).
var LatencyBucketsMs = LogBuckets(1e-3, 1e4, LatencyBucketsPerDecade)

// LatencyBucketsPerDecade is the resolution of LatencyBucketsMs.
const LatencyBucketsPerDecade = 20

// LogBuckets returns logarithmically spaced bucket upper bounds from lo to
// hi inclusive, with perDecade buckets per factor of ten. The bounds are
// deterministic (pure arithmetic on the inputs), so every process computes
// the identical set.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("obs: LogBuckets needs 0 < lo < hi and perDecade > 0")
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades*float64(perDecade))) + 1
	out := make([]float64, 0, n)
	for i := 0; ; i++ {
		b := lo * math.Pow(10, float64(i)/float64(perDecade))
		if b > hi*(1+1e-12) {
			break
		}
		out = append(out, b)
	}
	return out
}

// BucketQuantile estimates the q-quantile (0 <= q <= 1) of a bucketed
// distribution by nearest rank over the cumulative bucket counts, reporting
// the upper bound of the bucket containing that rank. buckets must have
// len(bounds)+1 entries, the last counting overflow observations, which
// saturate to the top bound. An empty distribution yields 0.
//
// The estimate's error is bounded by the bucket width: for log-spaced
// bounds with k buckets per decade the reported value is within a factor of
// 10^(1/k) above the true quantile (≈12.2% for the canonical
// LatencyBucketsMs set).
func BucketQuantile(bounds []float64, buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest rank: the smallest rank r (1-based) with r >= q*total.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // overflow saturates
			}
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile of the snapshotted histogram. See
// BucketQuantile for the error bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	return BucketQuantile(h.Bounds, h.Buckets, q)
}
