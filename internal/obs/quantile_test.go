package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogBucketsShape(t *testing.T) {
	b := LogBuckets(1e-3, 1e4, 20)
	if b[0] != 1e-3 {
		t.Errorf("first bound %g, want 1e-3", b[0])
	}
	if math.Abs(b[len(b)-1]-1e4) > 1e-8*1e4 {
		t.Errorf("last bound %g, want 1e4", b[len(b)-1])
	}
	// 7 decades at 20 per decade, endpoints inclusive.
	if len(b) != 141 {
		t.Errorf("len %d, want 141", len(b))
	}
	ratio := math.Pow(10, 1.0/20)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-ratio) > 1e-9 {
			t.Fatalf("spacing at %d is %g, want %g", i, r, ratio)
		}
	}
	if LatencyBucketsPerDecade != 20 || len(LatencyBucketsMs) != 141 {
		t.Errorf("canonical set changed: perDecade %d, len %d", LatencyBucketsPerDecade, len(LatencyBucketsMs))
	}
}

func TestBucketQuantileNearestRank(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 observations: 3 in (0,1], 3 in (1,2], 3 in (2,4], 1 overflow.
	buckets := []int64{3, 3, 3, 0, 1}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},    // clamped to rank 1
		{0.3, 1},  // rank 3 → first bucket
		{0.31, 2}, // rank 4 → second bucket
		{0.6, 2},  // rank 6
		{0.9, 4},  // rank 9
		{1.0, 8},  // overflow saturates to the top bound
		{1.5, 8},  // q clamped to 1
		{-0.5, 1}, // q clamped to 0 → rank 1
		{0.05, 1}, // rank 1
	}
	for _, tc := range cases {
		if got := BucketQuantile(bounds, buckets, tc.q); got != tc.want {
			t.Errorf("q=%.2f: got %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := BucketQuantile(bounds, []int64{0, 0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty distribution: got %g, want 0", got)
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("no bounds: got %g, want 0", got)
	}
}

// TestBucketQuantileErrorBound checks the documented guarantee against
// exact sample quantiles: the bucketed estimate never undershoots and
// overshoots by at most a factor of 10^(1/perDecade).
func TestBucketQuantileErrorBound(t *testing.T) {
	bounds := LatencyBucketsMs
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 5000)
	buckets := make([]int64, len(bounds)+1)
	for i := range samples {
		// Log-uniform over (0.01ms, 1000ms), well inside the bucket range.
		v := math.Pow(10, -2+5*rng.Float64())
		samples[i] = v
		idx := sort.SearchFloat64s(bounds, v)
		buckets[idx]++
	}
	sort.Float64s(samples)
	factor := math.Pow(10, 1.0/LatencyBucketsPerDecade)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rank := int(math.Ceil(q * float64(len(samples))))
		exact := samples[rank-1]
		est := BucketQuantile(bounds, buckets, q)
		if est < exact*(1-1e-9) {
			t.Errorf("q=%.2f: estimate %g undershoots exact %g", q, est, exact)
		}
		if est > exact*factor*(1+1e-9) {
			t.Errorf("q=%.2f: estimate %g overshoots exact %g beyond the 10^(1/%d) bound",
				q, est, exact, LatencyBucketsPerDecade)
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["lat"]
	if got := hs.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %g, want 10", got)
	}
	if got := hs.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %g, want 100 (overflow saturates)", got)
	}
}
