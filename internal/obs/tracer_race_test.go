package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTracerConcurrentReadDuringWrap hammers a small ring with concurrent
// emitters while a reader continuously snapshots it: every returned event
// must be internally consistent (no torn payloads across the seqlock) and
// the drop counter must be monotone. Writers encode an invariant into each
// event — B = A*1e9 + TS — that only holds if kind, payload words, and
// timestamp all came from the same Emit.
func TestTracerConcurrentReadDuringWrap(t *testing.T) {
	tr := NewTracer(64) // small ring so emitters lap readers constantly
	const writers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); !stop.Load(); i++ {
				tr.EmitAt(i, EvFrameDeliver, int64(w), int64(w)*1e9+i)
			}
		}(w)
	}

	var lastDropped int64
	reads := 0
	for deadline := time.Now().Add(300 * time.Millisecond); time.Now().Before(deadline); {
		for _, e := range tr.Events() {
			if e.Kind != EvFrameDeliver {
				t.Fatalf("torn event: unexpected kind %v", e.Kind)
			}
			if e.A < 0 || e.A >= writers {
				t.Fatalf("torn event: writer id %d", e.A)
			}
			if e.B != e.A*1e9+e.TS {
				t.Fatalf("torn event: A=%d TS=%d B=%d violate the write invariant", e.A, e.TS, e.B)
			}
		}
		d := tr.Dropped()
		if d < lastDropped {
			t.Fatalf("drop counter went backwards: %d -> %d", lastDropped, d)
		}
		lastDropped = d
		reads++
	}
	stop.Store(true)
	wg.Wait()

	if lastDropped == 0 {
		t.Error("ring never wrapped — the test exercised nothing")
	}
	if reads == 0 {
		t.Error("reader never ran")
	}

	// After emitters quiesce the snapshot settles: most slots are valid
	// (a writer lapped mid-flight may have republished an older claim's
	// tag, which readers correctly skip rather than surface torn), and
	// never more than capacity.
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > 64 {
		t.Errorf("%d events after quiesce, want (0, 64]", len(evs))
	}
}
