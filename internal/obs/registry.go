// Package obs is the repository's dependency-free observability layer:
// a typed metrics registry (atomic counters, gauges and fixed-bucket
// histograms with a Snapshot/Diff API), a lock-light ring-buffer event
// tracer exportable as Chrome trace_event JSON or CSV, and a live
// introspection HTTP server (expvar + pprof).
//
// Instrumented packages gate every touch point on the globally installed
// *Sink (see Enable/Active): with no sink installed the fast path is a
// single atomic pointer load and a nil check, adding zero allocations to
// the PHY per-symbol loop.
//
// Metric names are dot-scoped, subsystem first: `phy.symbols_crc_fail`,
// `mac.collisions`, `rte.updates`. Per-entity metrics put the entity index
// between the scope and the leaf: `mac.sta.3.delivered_bytes`.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil receivers are silently ignored so
// instrumented code can hold unresolved counters on the disabled path.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (zero for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (zero for a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i]; one extra overflow bucket counts the
// rest. Observe is lock-free (atomic adds), so concurrent observation is
// safe.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// HistogramSnapshot is one histogram's state at Snapshot time.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1, last is overflow
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Registry is a named collection of metrics. Lookup is get-or-create and
// safe for concurrent use; the returned metric pointers are stable, so hot
// paths resolve them once and update through the pointer.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil, which Counter methods treat as a no-op sink.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls ignore bounds (the first registration
// wins), so call sites can share a literal.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's values, suitable for
// JSON encoding.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds:  h.Bounds(),
			Buckets: make([]int64, len(h.buckets)),
			Count:   h.count.Load(),
			Sum:     math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Diff returns the change from prev to s: counters and histogram buckets
// subtract (metrics absent from prev count from zero), gauges keep their
// current value. Use it to attribute metric deltas to one bounded piece of
// work, e.g. a single experiment figure.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		dh := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.Bounds...),
			Buckets: append([]int64(nil), h.Buckets...),
			Count:   h.Count,
			Sum:     h.Sum,
		}
		if ph, ok := prev.Histograms[name]; ok && len(ph.Buckets) == len(dh.Buckets) {
			for i := range dh.Buckets {
				dh.Buckets[i] -= ph.Buckets[i]
			}
			dh.Count -= ph.Count
			dh.Sum -= ph.Sum
		}
		d.Histograms[name] = dh
	}
	return d
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the counters sorted by name, for quick debugging.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%d\n", n, s.Counters[n])
	}
	return out
}
