package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests may start several debug servers.
var publishOnce sync.Once

// DebugServer serves live introspection endpoints for a registry:
//
//	/debug/vars        expvar, including a "carpool" map holding the
//	                   registry snapshot (counters and gauges)
//	/debug/pprof/...   the standard pprof handlers
//	/debug/metrics     the full registry snapshot as indented JSON
//	                   (counters, gauges, histograms)
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// DebugHandler is an extra endpoint mounted on a debug server, e.g. the
// engine's /debug/health report.
type DebugHandler struct {
	Pattern string
	Handler http.Handler
}

// StartDebugServer listens on addr (e.g. "localhost:6060") and serves the
// registry's debug endpoints in a background goroutine. It returns once
// the listener is bound, so the endpoints are immediately reachable.
// Additional handlers (e.g. /debug/health) mount alongside the built-ins.
func StartDebugServer(addr string, reg *Registry, extra ...DebugHandler) (*DebugServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: debug server needs a registry")
	}
	publishOnce.Do(func() {
		expvar.Publish("carpool", expvar.Func(func() any {
			s := Default.Snapshot()
			return map[string]any{"counters": s.Counters, "gauges": s.Gauges}
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	for _, h := range extra {
		if h.Pattern != "" && h.Handler != nil {
			mux.Handle(h.Pattern, h.Handler)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	ds := &DebugServer{srv: &http.Server{Handler: mux}, addr: ln.Addr()}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
