package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"

	"carpool/internal/dsp"
)

// Preamble dimensions: the legacy 802.11 PLCP preamble is 8 µs of STF (ten
// repetitions of a 16-sample pattern) followed by 8 µs of LTF (a 32-sample
// guard plus two 64-sample training symbols).
const (
	STFLen      = 160
	LTFGuardLen = 32
	LTFLen      = LTFGuardLen + 2*NumSubcarriers // 160
	PreambleLen = STFLen + LTFLen                // 320 samples, 16 µs
)

// GenerateSTF returns the 160-sample short training field.
func GenerateSTF() []complex128 {
	bins := make([]complex128, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		if v := STFValue(k); v != 0 {
			bins[Bin(k)] = v
		}
	}
	if err := dsp.IFFT(bins); err != nil {
		panic(err) // length 64 is a power of two; cannot fail
	}
	out := make([]complex128, STFLen)
	for i := range out {
		out[i] = bins[i%NumSubcarriers]
	}
	return out
}

// ltfTimeSymbol returns one 64-sample time-domain LTF symbol.
func ltfTimeSymbol() []complex128 {
	bins := make([]complex128, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		bins[Bin(k)] = complex(LTFValue(k), 0)
	}
	if err := dsp.IFFT(bins); err != nil {
		panic(err)
	}
	return bins
}

// GenerateLTF returns the 160-sample long training field: a 32-sample cyclic
// guard followed by two identical 64-sample training symbols.
func GenerateLTF() []complex128 {
	sym := ltfTimeSymbol()
	out := make([]complex128, 0, LTFLen)
	out = append(out, sym[NumSubcarriers-LTFGuardLen:]...)
	out = append(out, sym...)
	out = append(out, sym...)
	return out
}

// GeneratePreamble returns the full 320-sample legacy preamble.
func GeneratePreamble() []complex128 {
	out := make([]complex128, 0, PreambleLen)
	out = append(out, GenerateSTF()...)
	out = append(out, GenerateLTF()...)
	return out
}

// DetectPacket finds the start of a frame in rx by delay-and-correlate over
// the STF's 16-sample periodicity, then refines the preamble start with a
// cross-correlation against the known LTF symbol. It returns the index of
// the first preamble sample, or ok=false when no plateau exceeds the
// normalized threshold (0.5 works well down to ~0 dB SNR).
func DetectPacket(rx []complex128) (start int, ok bool) {
	const lag = 16
	const window = 48
	if len(rx) < PreambleLen {
		return 0, false
	}
	// Locate the autocorrelation plateau.
	plateau := -1
	for n := 0; n+lag+window < len(rx); n++ {
		var corr complex128
		var power float64
		for i := 0; i < window; i++ {
			a := rx[n+i]
			b := rx[n+i+lag]
			corr += a * cmplx.Conj(b)
			power += real(b)*real(b) + imag(b)*imag(b)
		}
		if power <= 0 {
			continue
		}
		if cmplx.Abs(corr)/power > 0.5 {
			plateau = n
			break
		}
	}
	if plateau < 0 {
		return 0, false
	}
	// Refine: cross-correlate with the known LTF time symbol in a window
	// around the plateau to pin down where the LTF's first symbol starts.
	ref := ltfTimeSymbol()
	searchLo := plateau
	searchHi := plateau + STFLen + LTFGuardLen + 2*lag
	if searchHi+NumSubcarriers > len(rx) {
		searchHi = len(rx) - NumSubcarriers
	}
	if searchHi <= searchLo {
		return 0, false
	}
	bestIdx, bestMag := -1, 0.0
	for n := searchLo; n <= searchHi; n++ {
		m := cmplx.Abs(dsp.DotConj(rx[n:n+NumSubcarriers], ref))
		if m > bestMag {
			bestMag, bestIdx = m, n
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	// The match is the first LTF symbol, which sits STF+guard after the
	// preamble start; it may also have locked on to the second LTF symbol,
	// but the first one always has the larger or equal correlation because
	// both are identical — the earliest peak is returned by strict >.
	start = bestIdx - STFLen - LTFGuardLen
	if start < 0 {
		return 0, false
	}
	return start, true
}

// EstimateCFO estimates the carrier frequency offset, in radians per sample,
// from a preamble located at start. It combines the coarse estimate from the
// STF's 16-sample periodicity with the fine estimate from the LTF's
// 64-sample repetition.
func EstimateCFO(rx []complex128, start int) float64 {
	// Coarse from STF: phase of sum r[n] conj(r[n+16]) measures -16*eps.
	stf := rx[start : start+STFLen]
	var acc complex128
	for n := 0; n+16 < len(stf); n++ {
		acc += cmplx.Conj(stf[n]) * stf[n+16]
	}
	coarse := cmplx.Phase(acc) / 16
	// Fine from LTF (ambiguity ±pi/64 resolved by the coarse estimate).
	ltfStart := start + STFLen + LTFGuardLen
	var accL complex128
	for n := 0; n < NumSubcarriers; n++ {
		accL += cmplx.Conj(rx[ltfStart+n]) * rx[ltfStart+NumSubcarriers+n]
	}
	fine := cmplx.Phase(accL) / NumSubcarriers
	// Unwrap the fine estimate onto the coarse one.
	period := 2 * math.Pi / float64(NumSubcarriers)
	k := math.Round((coarse - fine) / period)
	return fine + k*period
}

// CorrectCFO derotates rx in place by the estimated offset eps (radians per
// sample), with sample index counted from sampleOffset.
func CorrectCFO(rx []complex128, eps float64, sampleOffset int) {
	for i := range rx {
		rx[i] *= cmplx.Exp(complex(0, -eps*float64(sampleOffset+i)))
	}
}

// EstimateChannel computes the per-subcarrier channel estimate from the two
// LTF symbols of a preamble that starts at start in rx (after CFO
// correction). Bins outside the occupied -26..26 range are zero.
func EstimateChannel(rx []complex128, start int) ([]complex128, error) {
	ltfStart := start + STFLen + LTFGuardLen
	if ltfStart+2*NumSubcarriers > len(rx) {
		return nil, errShortLTF
	}
	h := make([]complex128, NumSubcarriers)
	for _, off := range []int{0, NumSubcarriers} {
		bins := make([]complex128, NumSubcarriers)
		copy(bins, rx[ltfStart+off:ltfStart+off+NumSubcarriers])
		if err := dsp.FFT(bins); err != nil {
			return nil, err
		}
		for k := -26; k <= 26; k++ {
			l := LTFValue(k)
			if l == 0 {
				continue
			}
			h[Bin(k)] += bins[Bin(k)] / complex(l, 0)
		}
	}
	for i := range h {
		h[i] /= 2
	}
	return h, nil
}

var errShortLTF = fmt.Errorf("ofdm: rx too short for LTF channel estimation")
