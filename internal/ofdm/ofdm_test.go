package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"carpool/internal/dsp"
	"carpool/internal/modem"
)

func TestLayoutCounts(t *testing.T) {
	if len(DataIndices) != 48 {
		t.Fatalf("%d data indices, want 48", len(DataIndices))
	}
	seen := map[int]bool{}
	for _, k := range DataIndices {
		if k == 0 {
			t.Error("DC bin used as data")
		}
		if k < -26 || k > 26 {
			t.Errorf("data index %d out of range", k)
		}
		for _, p := range PilotIndices {
			if k == p {
				t.Errorf("pilot index %d used as data", k)
			}
		}
		if seen[k] {
			t.Errorf("duplicate data index %d", k)
		}
		seen[k] = true
	}
}

func TestBinMapping(t *testing.T) {
	tests := []struct{ idx, bin int }{
		{0, 0}, {1, 1}, {26, 26}, {-1, 63}, {-26, 38}, {31, 31}, {-32, 32},
	}
	for _, tt := range tests {
		if got := Bin(tt.idx); got != tt.bin {
			t.Errorf("Bin(%d) = %d, want %d", tt.idx, got, tt.bin)
		}
	}
}

func TestPilotPolarityMatchesStandard(t *testing.T) {
	// First 16 values of the published 802.11 polarity sequence.
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1}
	for i, w := range want {
		if got := PilotPolarity(i); got != w {
			t.Errorf("PilotPolarity(%d) = %v, want %v", i, got, w)
		}
	}
	if PilotPolarity(127) != PilotPolarity(0) {
		t.Error("polarity sequence should have period 127")
	}
}

func TestLTFSequenceProperties(t *testing.T) {
	if LTFValue(0) != 0 {
		t.Error("DC must be null in LTF")
	}
	if LTFValue(-27) != 0 || LTFValue(27) != 0 {
		t.Error("guard bins must be null in LTF")
	}
	count := 0
	for k := -26; k <= 26; k++ {
		v := LTFValue(k)
		if v != 0 && v != 1 && v != -1 {
			t.Errorf("LTF(%d) = %v not in {-1,0,1}", k, v)
		}
		if v != 0 {
			count++
		}
	}
	if count != 52 {
		t.Errorf("%d occupied LTF bins, want 52", count)
	}
}

func TestSTFOccupiesEveryFourth(t *testing.T) {
	for k := -26; k <= 26; k++ {
		v := STFValue(k)
		if v != 0 && k%4 != 0 {
			t.Errorf("STF loads subcarrier %d not divisible by 4", k)
		}
	}
	// 12 loaded tones at the documented power normalization.
	var energy float64
	n := 0
	for k := -26; k <= 26; k++ {
		if v := STFValue(k); v != 0 {
			energy += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	if n != 12 {
		t.Fatalf("%d loaded STF tones, want 12", n)
	}
	if math.Abs(energy-12*2*13.0/6.0) > 1e-9 {
		t.Errorf("STF energy %v unexpected", energy)
	}
}

func TestSTFPeriodicity(t *testing.T) {
	stf := GenerateSTF()
	if len(stf) != STFLen {
		t.Fatalf("STF length %d, want %d", len(stf), STFLen)
	}
	// Only every 4th subcarrier is loaded -> 16-sample periodicity.
	for i := 0; i+16 < len(stf); i++ {
		if cmplx.Abs(stf[i]-stf[i+16]) > 1e-9 {
			t.Fatalf("STF not 16-periodic at sample %d", i)
		}
	}
}

func TestLTFStructure(t *testing.T) {
	ltf := GenerateLTF()
	if len(ltf) != LTFLen {
		t.Fatalf("LTF length %d, want %d", len(ltf), LTFLen)
	}
	// The two training symbols are identical.
	for i := 0; i < NumSubcarriers; i++ {
		if cmplx.Abs(ltf[LTFGuardLen+i]-ltf[LTFGuardLen+NumSubcarriers+i]) > 1e-9 {
			t.Fatalf("LTF symbols differ at %d", i)
		}
	}
	// The guard is the cyclic tail of the symbol.
	for i := 0; i < LTFGuardLen; i++ {
		if cmplx.Abs(ltf[i]-ltf[LTFGuardLen+NumSubcarriers-LTFGuardLen+i]) > 1e-9 {
			t.Fatalf("LTF guard not cyclic at %d", i)
		}
	}
}

func TestAssembleSymbolRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := make([]byte, NumData*2)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		data, err := modem.Map(modem.QPSK, bits)
		if err != nil {
			return false
		}
		sym, err := AssembleSymbol(data, 3, 0)
		if err != nil {
			return false
		}
		if len(sym) != SymbolLen {
			return false
		}
		bins, err := SymbolBins(sym)
		if err != nil {
			return false
		}
		got := ExtractData(bins)
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-9 {
				return false
			}
		}
		pilots := ExtractPilots(bins)
		want := PilotValues(3)
		for i := range pilots {
			if cmplx.Abs(pilots[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAssembleSymbolCyclicPrefix(t *testing.T) {
	data := make([]complex128, NumData)
	for i := range data {
		data[i] = complex(1, 0)
	}
	sym, err := AssembleSymbol(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < CyclicPrefixLen; i++ {
		if cmplx.Abs(sym[i]-sym[NumSubcarriers+i]) > 1e-12 {
			t.Fatalf("cyclic prefix mismatch at %d", i)
		}
	}
}

func TestAssembleSymbolBadInput(t *testing.T) {
	if _, err := AssembleSymbol(make([]complex128, 47), 0, 0); err == nil {
		t.Error("accepted 47 data points")
	}
	if _, err := SymbolBins(make([]complex128, 10)); err == nil {
		t.Error("accepted short symbol")
	}
}

func TestInjectedPhaseVisibleOnPilots(t *testing.T) {
	data := make([]complex128, NumData)
	for i := range data {
		data[i] = 1
	}
	const inject = math.Pi / 4
	sym, err := AssembleSymbol(data, 1, inject)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := SymbolBins(sym)
	if err != nil {
		t.Fatal(err)
	}
	theta, weight := TrackPilotPhase(bins, 1)
	if weight <= 0 {
		t.Fatal("zero pilot weight")
	}
	if math.Abs(dsp.WrapPhase(theta-inject)) > 1e-9 {
		t.Errorf("tracked phase %v, want %v", theta, inject)
	}
	// After compensation the data comes back clean: the side channel does
	// not disturb payload decoding.
	CompensatePhase(bins, theta)
	got := ExtractData(bins)
	for i := range got {
		if cmplx.Abs(got[i]-1) > 1e-9 {
			t.Fatalf("data point %d = %v after compensation", i, got[i])
		}
	}
}

func TestDetectPacketCleanSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	noise := dsp.NewGaussianSource(rng)
	for _, offset := range []int{0, 13, 200} {
		rx := make([]complex128, offset)
		noise.AddNoise(rx, 1e-6)
		rx = append(rx, GeneratePreamble()...)
		// Trailing payload-ish samples.
		tail := make([]complex128, 400)
		noise.AddNoise(tail, 0.05)
		rx = append(rx, tail...)
		start, ok := DetectPacket(rx)
		if !ok {
			t.Fatalf("offset %d: packet not detected", offset)
		}
		if start != offset {
			t.Errorf("offset %d: detected start %d", offset, start)
		}
	}
}

func TestDetectPacketNoisySignal(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	noise := dsp.NewGaussianSource(rng)
	preamble := GeneratePreamble()
	sigPower := dsp.MeanPower(preamble)
	const offset = 57
	detected := 0
	for trial := 0; trial < 20; trial++ {
		rx := make([]complex128, offset+len(preamble)+100)
		copy(rx[offset:], preamble)
		noise.AddNoise(rx, dsp.NoiseVarianceForSNR(sigPower, 10))
		start, ok := DetectPacket(rx)
		if ok && abs(start-offset) <= 1 {
			detected++
		}
	}
	if detected < 18 {
		t.Errorf("detected %d/20 at 10 dB SNR", detected)
	}
}

func TestDetectPacketPureNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	noise := dsp.NewGaussianSource(rng)
	falsePositives := 0
	for trial := 0; trial < 10; trial++ {
		rx := make([]complex128, 1000)
		noise.AddNoise(rx, 1)
		if _, ok := DetectPacket(rx); ok {
			falsePositives++
		}
	}
	if falsePositives > 2 {
		t.Errorf("%d/10 false detections on pure noise", falsePositives)
	}
}

func TestEstimateCFOAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	noise := dsp.NewGaussianSource(rng)
	preamble := GeneratePreamble()
	sigPower := dsp.MeanPower(preamble)
	for _, epsHz := range []float64{0, 1e3, -5e3, 20e3, -50e3} {
		eps := 2 * math.Pi * epsHz / SampleRate
		rx := append([]complex128(nil), preamble...)
		for i := range rx {
			rx[i] *= cmplx.Exp(complex(0, eps*float64(i)))
		}
		noise.AddNoise(rx, dsp.NoiseVarianceForSNR(sigPower, 25))
		got := EstimateCFO(rx, 0)
		gotHz := got * SampleRate / (2 * math.Pi)
		// The Cramér-Rao bound for a 64-sample correlation at 25 dB SNR is
		// ~350 Hz; anything inside ~3 sigma is a correct estimator.
		if math.Abs(gotHz-epsHz) > 1000 {
			t.Errorf("CFO %v Hz estimated as %.1f Hz", epsHz, gotHz)
		}
	}
}

func TestCorrectCFORemovesRotation(t *testing.T) {
	preamble := GeneratePreamble()
	const eps = 0.002
	rx := append([]complex128(nil), preamble...)
	for i := range rx {
		rx[i] *= cmplx.Exp(complex(0, eps*float64(i)))
	}
	CorrectCFO(rx, eps, 0)
	for i := range rx {
		if cmplx.Abs(rx[i]-preamble[i]) > 1e-9 {
			t.Fatalf("sample %d not restored", i)
		}
	}
}

func TestEstimateChannelFlat(t *testing.T) {
	// Through an identity channel the estimate is 1 on all occupied bins.
	rx := GeneratePreamble()
	h, err := EstimateChannel(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		if cmplx.Abs(h[Bin(k)]-1) > 1e-9 {
			t.Errorf("H(%d) = %v, want 1", k, h[Bin(k)])
		}
	}
}

func TestEstimateChannelScaledAndRotated(t *testing.T) {
	rx := GeneratePreamble()
	g := complex(0.5, 0.5)
	for i := range rx {
		rx[i] *= g
	}
	h, err := EstimateChannel(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		if cmplx.Abs(h[Bin(k)]-g) > 1e-9 {
			t.Errorf("H(%d) = %v, want %v", k, h[Bin(k)], g)
		}
	}
}

func TestEstimateChannelShortInput(t *testing.T) {
	if _, err := EstimateChannel(make([]complex128, 10), 0); err == nil {
		t.Error("accepted short input")
	}
}

func TestEqualizeInvertsChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	bits := make([]byte, NumData*2)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	data, err := modem.Map(modem.QPSK, bits)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := AssembleSymbol(data, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Apply a per-bin channel in frequency domain by time-domain circular
	// convolution equivalence: simplest is to pass through a one-tap gain.
	g := complex(0.3, -0.8)
	for i := range sym {
		sym[i] *= g
	}
	bins, err := SymbolBins(sym)
	if err != nil {
		t.Fatal(err)
	}
	channel := make([]complex128, NumSubcarriers)
	for i := range channel {
		channel[i] = g
	}
	if err := Equalize(bins, channel); err != nil {
		t.Fatal(err)
	}
	got := ExtractData(bins)
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("data %d not equalized: %v vs %v", i, got[i], data[i])
		}
	}
}

func TestEqualizeBadLengths(t *testing.T) {
	if err := Equalize(make([]complex128, 10), make([]complex128, 64)); err == nil {
		t.Error("accepted short bins")
	}
	if err := Equalize(make([]complex128, 64), make([]complex128, 63)); err == nil {
		t.Error("accepted short channel")
	}
}

func TestResidualCFOSlope(t *testing.T) {
	// Perfect linear drift with wrapping.
	const slope = 0.3
	phases := make([]float64, 40)
	for i := range phases {
		phases[i] = dsp.WrapPhase(slope * float64(i))
	}
	if got := ResidualCFOSlope(phases); math.Abs(got-slope) > 1e-9 {
		t.Errorf("slope %v, want %v", got, slope)
	}
	if got := ResidualCFOSlope(nil); got != 0 {
		t.Errorf("empty slope %v, want 0", got)
	}
	if got := ResidualCFOSlope([]float64{1}); got != 0 {
		t.Errorf("single-point slope %v, want 0", got)
	}
}

func TestSymbolDurationIs4Microseconds(t *testing.T) {
	if math.Abs(SymbolDuration-4e-6) > 1e-12 {
		t.Errorf("symbol duration %v, want 4 µs", SymbolDuration)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
