package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestEqualizeSkipsDeadBins(t *testing.T) {
	// Bins with a (near-)zero channel estimate are left untouched instead
	// of blowing up to infinity.
	bins := make([]complex128, NumSubcarriers)
	channel := make([]complex128, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		bins[Bin(k)] = 1
		channel[Bin(k)] = 2
	}
	dead := Bin(-7)
	channel[dead] = 0
	if err := Equalize(bins, channel); err != nil {
		t.Fatal(err)
	}
	if bins[dead] != 1 {
		t.Errorf("dead bin modified to %v", bins[dead])
	}
	if cmplx.Abs(bins[Bin(5)]-0.5) > 1e-12 {
		t.Errorf("live bin not equalized: %v", bins[Bin(5)])
	}
	if cmplx.IsInf(bins[dead]) || cmplx.IsNaN(bins[dead]) {
		t.Error("division by zero leaked")
	}
}

func TestTrackPilotPhaseWeightReflectsPower(t *testing.T) {
	// Stronger pilots give a larger confidence weight.
	strong := make([]complex128, NumSubcarriers)
	weak := make([]complex128, NumSubcarriers)
	for i, k := range PilotIndices {
		strong[Bin(k)] = PilotValues(0)[i] * 2
		weak[Bin(k)] = PilotValues(0)[i] * 0.1
	}
	_, ws := TrackPilotPhase(strong, 0)
	_, ww := TrackPilotPhase(weak, 0)
	if ws <= ww {
		t.Errorf("strong pilot weight %v not above weak %v", ws, ww)
	}
}

func TestTrackPilotPhaseWrapsCleanly(t *testing.T) {
	// Phases near ±180° must come back wrapped, not aliased away.
	bins := make([]complex128, NumSubcarriers)
	theta := math.Pi - 0.05
	r := cmplx.Exp(complex(0, theta))
	for i, k := range PilotIndices {
		bins[Bin(k)] = PilotValues(3)[i] * r
	}
	got, _ := TrackPilotPhase(bins, 3)
	if math.Abs(got-theta) > 1e-9 {
		t.Errorf("tracked %v, want %v", got, theta)
	}
}

func TestCompensatePhaseInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bins := make([]complex128, NumSubcarriers)
	for i := range bins {
		bins[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), bins...)
	CompensatePhase(bins, 1.234)
	CompensatePhase(bins, -1.234)
	for i := range bins {
		if cmplx.Abs(bins[i]-orig[i]) > 1e-12 {
			t.Fatalf("bin %d not restored", i)
		}
	}
}

func TestDetectPacketTooShortBuffer(t *testing.T) {
	if _, ok := DetectPacket(make([]complex128, 100)); ok {
		t.Error("detected a packet in a 100-sample buffer")
	}
}

func TestPilotValuesFlipWithPolarity(t *testing.T) {
	// Symbol indices with opposite polarity produce negated pilots.
	var flipped bool
	base := PilotValues(0)
	for n := 1; n < 127; n++ {
		v := PilotValues(n)
		if v[0] == -base[0] && v[3] == -base[3] {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("polarity never flips across the sequence")
	}
}
