package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"
)

// occupiedBins are the physical bins of the 53 occupied subcarriers
// (-26..26 including DC), precomputed for the equalizer's per-symbol loop.
var occupiedBins = buildOccupiedBins()

func buildOccupiedBins() [53]int {
	var out [53]int
	for k := -26; k <= 26; k++ {
		out[k+26] = Bin(k)
	}
	return out
}

// Equalize divides each occupied bin of a received symbol by the channel
// estimate, in place. Bins whose channel magnitude is below a small floor
// are left untouched (they carry no usable signal anyway).
func Equalize(bins, channel []complex128) error {
	if len(bins) != NumSubcarriers || len(channel) != NumSubcarriers {
		return fmt.Errorf("ofdm: Equalize needs %d bins, got %d and %d",
			NumSubcarriers, len(bins), len(channel))
	}
	const floorSq = 1e-18 // (1e-9)^2, compared against |H|^2 to skip cmplx.Abs
	for _, b := range &occupiedBins {
		h := channel[b]
		if real(h)*real(h)+imag(h)*imag(h) > floorSq {
			bins[b] /= h
		}
	}
	return nil
}

// TrackPilotPhase measures the common phase rotation of one equalized symbol
// from its four pilots, relative to their known transmitted values for
// symbol index symIndex. The returned angle includes residual-CFO phase
// drift plus any phase offset the transmitter injected (the Carpool side
// channel). weight is the summed pilot magnitude, usable as a confidence.
func TrackPilotPhase(bins []complex128, symIndex int) (theta float64, weight float64) {
	pilots := ExtractPilots(bins)
	expected := PilotValues(symIndex)
	var acc complex128
	for i := range pilots {
		acc += pilots[i] * cmplx.Conj(expected[i])
	}
	return cmplx.Phase(acc), cmplx.Abs(acc)
}

// CompensatePhase rotates all bins by -theta, in place.
func CompensatePhase(bins []complex128, theta float64) {
	r := cmplx.Exp(complex(0, -theta))
	for i := range bins {
		bins[i] *= r
	}
}

// ResidualCFOSlope fits a per-symbol phase drift from a sequence of tracked
// pilot phases. It is used by diagnostics and tests, not the main decode
// path (which compensates each symbol independently).
func ResidualCFOSlope(phases []float64) float64 {
	if len(phases) < 2 {
		return 0
	}
	// Unwrap, then least-squares slope.
	unwrapped := make([]float64, len(phases))
	unwrapped[0] = phases[0]
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		unwrapped[i] = unwrapped[i-1] + d
	}
	n := float64(len(unwrapped))
	var sx, sy, sxx, sxy float64
	for i, y := range unwrapped {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
