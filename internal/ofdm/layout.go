// Package ofdm implements the IEEE 802.11a/g/n 20 MHz OFDM waveform layer:
// the 64-subcarrier layout with 48 data and 4 pilot subcarriers, the
// short/long training fields, cyclic-prefix symbol assembly, packet
// detection, carrier-frequency-offset estimation and correction, LTF channel
// estimation, and pilot-based common phase tracking.
//
// Everything operates on complex baseband samples at the nominal 20 MHz
// sample rate (64 samples per FFT period, 16-sample cyclic prefix, 80
// samples per symbol).
package ofdm

import (
	"math"

	"carpool/internal/fec"
)

// Core 802.11 OFDM dimensions.
const (
	NumSubcarriers  = 64                               // FFT size
	NumData         = 48                               // data subcarriers per symbol
	NumPilots       = 4                                // pilot subcarriers per symbol
	CyclicPrefixLen = 16                               // samples
	SymbolLen       = NumSubcarriers + CyclicPrefixLen // 80 samples

	// SampleRate is the nominal bandwidth in samples per second.
	SampleRate = 20e6
	// SymbolDuration is the airtime of one OFDM symbol (4 µs at 20 MHz).
	SymbolDuration = float64(SymbolLen) / SampleRate
)

// PilotIndices are the logical subcarrier indices carrying pilots.
var PilotIndices = [NumPilots]int{-21, -7, 7, 21}

// pilotBase holds the un-rotated pilot values P(-21,-7,7,21).
var pilotBase = [NumPilots]float64{1, 1, 1, -1}

// DataIndices lists the 48 logical data subcarrier indices in increasing
// order (-26..26 without DC and pilots).
var DataIndices = buildDataIndices()

func buildDataIndices() [NumData]int {
	var out [NumData]int
	isPilot := map[int]bool{-21: true, -7: true, 7: true, 21: true}
	n := 0
	for k := -26; k <= 26; k++ {
		if k == 0 || isPilot[k] {
			continue
		}
		out[n] = k
		n++
	}
	return out
}

// Bin converts a logical subcarrier index (-32..31) to an FFT bin (0..63).
func Bin(idx int) int {
	return (idx + NumSubcarriers) % NumSubcarriers
}

// dataBins and pilotBins are the physical FFT bins of the data and pilot
// subcarriers, precomputed so the per-symbol loops skip the Bin() modulo.
var dataBins = buildBins(DataIndices[:])
var pilotBins = buildBins(PilotIndices[:])

func buildBins(logical []int) []int {
	out := make([]int, len(logical))
	for i, k := range logical {
		out[i] = Bin(k)
	}
	return out
}

// PilotPolarity returns the 802.11 pilot polarity p_n in {-1, +1} for OFDM
// symbol n (n = 0 is the SIG symbol). The sequence is the output of the
// all-ones-seeded frame scrambler mapped 0 -> +1, 1 -> -1, with period 127.
func PilotPolarity(n int) float64 {
	return pilotPolaritySeq[n%len(pilotPolaritySeq)]
}

var pilotPolaritySeq = buildPilotPolarity()

func buildPilotPolarity() [127]float64 {
	var seq [127]float64
	s := fec.NewScrambler(0x7f)
	for i := range seq {
		if s.NextBit() == 0 {
			seq[i] = 1
		} else {
			seq[i] = -1
		}
	}
	return seq
}

// pilotValuesPos/Neg are the two polarity variants of the transmitted pilot
// points, precomputed once: every symbol uses one or the other.
var pilotValuesPos, pilotValuesNeg = buildPilotValues()

func buildPilotValues() (pos, neg [NumPilots]complex128) {
	for i, v := range pilotBase {
		pos[i] = complex(v, 0)
		neg[i] = complex(-v, 0)
	}
	return pos, neg
}

// PilotValues returns the four transmitted pilot points for symbol n.
func PilotValues(n int) [NumPilots]complex128 {
	if PilotPolarity(n) >= 0 {
		return pilotValuesPos
	}
	return pilotValuesNeg
}

// ltfSequence is the frequency-domain long training sequence L(-26..26).
var ltfSequence = [53]float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// LTFValue returns L(k) for logical subcarrier k in -26..26, else 0.
func LTFValue(k int) float64 {
	if k < -26 || k > 26 {
		return 0
	}
	return ltfSequence[k+26]
}

// stfLoaded maps the 12 loaded STF subcarriers to their (un-normalized)
// QPSK-corner values.
var stfLoaded = map[int]complex128{
	-24: 1 + 1i, -20: -1 - 1i, -16: 1 + 1i, -12: -1 - 1i, -8: -1 - 1i, -4: 1 + 1i,
	4: -1 - 1i, 8: -1 - 1i, 12: 1 + 1i, 16: 1 + 1i, 20: 1 + 1i, 24: 1 + 1i,
}

// STFValue returns S(k) for logical subcarrier k, including the sqrt(13/6)
// power normalization.
func STFValue(k int) complex128 {
	v, ok := stfLoaded[k]
	if !ok {
		return 0
	}
	return v * complex(math.Sqrt(13.0/6.0), 0)
}
