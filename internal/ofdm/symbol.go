package ofdm

import (
	"fmt"

	"carpool/internal/dsp"
)

// AssembleSymbol builds one time-domain OFDM symbol (80 samples including
// the cyclic prefix) from 48 data constellation points. symIndex selects the
// pilot polarity (0 = SIG). An optional extra phase rotation, applied to all
// data AND pilot subcarriers, implements the Carpool phase-offset side
// channel; pass 0 for a standard symbol.
func AssembleSymbol(data []complex128, symIndex int, injectedPhase float64) ([]complex128, error) {
	if len(data) != NumData {
		return nil, fmt.Errorf("ofdm: symbol needs %d data points, got %d", NumData, len(data))
	}
	bins := make([]complex128, NumSubcarriers)
	for i, k := range DataIndices {
		bins[Bin(k)] = data[i]
	}
	for i, k := range PilotIndices {
		bins[Bin(k)] = PilotValues(symIndex)[i]
	}
	if injectedPhase != 0 {
		dsp.Rotate(bins, injectedPhase)
	}
	if err := dsp.IFFT(bins); err != nil {
		return nil, err
	}
	out := make([]complex128, SymbolLen)
	copy(out, bins[NumSubcarriers-CyclicPrefixLen:])
	copy(out[CyclicPrefixLen:], bins)
	return out, nil
}

// SymbolBins strips the cyclic prefix from one received 80-sample symbol and
// returns its 64 frequency-domain bins.
func SymbolBins(samples []complex128) ([]complex128, error) {
	if len(samples) < SymbolLen {
		return nil, fmt.Errorf("ofdm: need %d samples per symbol, got %d", SymbolLen, len(samples))
	}
	bins := make([]complex128, NumSubcarriers)
	copy(bins, samples[CyclicPrefixLen:SymbolLen])
	if err := dsp.FFT(bins); err != nil {
		return nil, err
	}
	return bins, nil
}

// ExtractData picks the 48 equalized data points out of 64 bins.
func ExtractData(bins []complex128) []complex128 {
	out := make([]complex128, NumData)
	for i, k := range DataIndices {
		out[i] = bins[Bin(k)]
	}
	return out
}

// ExtractPilots picks the 4 received pilot points out of 64 bins.
func ExtractPilots(bins []complex128) [NumPilots]complex128 {
	var out [NumPilots]complex128
	for i, k := range PilotIndices {
		out[i] = bins[Bin(k)]
	}
	return out
}
