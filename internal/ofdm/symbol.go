package ofdm

import (
	"fmt"

	"carpool/internal/dsp"
)

// AssembleSymbol builds one time-domain OFDM symbol (80 samples including
// the cyclic prefix) from 48 data constellation points. symIndex selects the
// pilot polarity (0 = SIG). An optional extra phase rotation, applied to all
// data AND pilot subcarriers, implements the Carpool phase-offset side
// channel; pass 0 for a standard symbol.
func AssembleSymbol(data []complex128, symIndex int, injectedPhase float64) ([]complex128, error) {
	out := make([]complex128, SymbolLen)
	if err := AssembleSymbolInto(out, data, symIndex, injectedPhase); err != nil {
		return nil, err
	}
	return out, nil
}

// AssembleSymbolInto is AssembleSymbol writing into a caller-provided
// SymbolLen-sample buffer, allocation-free. dst[CyclicPrefixLen:] doubles as
// the IFFT workspace; its previous contents are overwritten.
func AssembleSymbolInto(dst, data []complex128, symIndex int, injectedPhase float64) error {
	if len(dst) != SymbolLen {
		return fmt.Errorf("ofdm: symbol buffer needs %d samples, got %d", SymbolLen, len(dst))
	}
	if len(data) != NumData {
		return fmt.Errorf("ofdm: symbol needs %d data points, got %d", NumData, len(data))
	}
	bins := dst[CyclicPrefixLen:]
	for i := range bins {
		bins[i] = 0
	}
	for i, b := range dataBins {
		bins[b] = data[i]
	}
	pilots := PilotValues(symIndex)
	for i, b := range pilotBins {
		bins[b] = pilots[i]
	}
	if injectedPhase != 0 {
		dsp.Rotate(bins, injectedPhase)
	}
	if err := dsp.IFFT(bins); err != nil {
		return err
	}
	copy(dst[:CyclicPrefixLen], bins[NumSubcarriers-CyclicPrefixLen:])
	return nil
}

// SymbolBins strips the cyclic prefix from one received 80-sample symbol and
// returns its 64 frequency-domain bins.
func SymbolBins(samples []complex128) ([]complex128, error) {
	bins := make([]complex128, NumSubcarriers)
	if err := SymbolBinsInto(bins, samples); err != nil {
		return nil, err
	}
	return bins, nil
}

// SymbolBinsInto is SymbolBins writing into a caller-provided
// NumSubcarriers-bin buffer, allocation-free.
func SymbolBinsInto(bins, samples []complex128) error {
	if len(bins) != NumSubcarriers {
		return fmt.Errorf("ofdm: bin buffer needs %d entries, got %d", NumSubcarriers, len(bins))
	}
	if len(samples) < SymbolLen {
		return fmt.Errorf("ofdm: need %d samples per symbol, got %d", SymbolLen, len(samples))
	}
	copy(bins, samples[CyclicPrefixLen:SymbolLen])
	return dsp.FFT(bins)
}

// ExtractData picks the 48 equalized data points out of 64 bins.
func ExtractData(bins []complex128) []complex128 {
	out := make([]complex128, NumData)
	ExtractDataInto(out, bins)
	return out
}

// ExtractDataInto is ExtractData writing into a caller-provided NumData-point
// buffer, allocation-free. It panics on wrong buffer sizes (programmer
// error, like a slice index).
func ExtractDataInto(dst, bins []complex128) {
	if len(dst) != NumData {
		panic(fmt.Sprintf("ofdm: ExtractDataInto dst needs %d points, got %d", NumData, len(dst)))
	}
	for i, b := range dataBins {
		dst[i] = bins[b]
	}
}

// ExtractPilots picks the 4 received pilot points out of 64 bins.
func ExtractPilots(bins []complex128) [NumPilots]complex128 {
	var out [NumPilots]complex128
	for i, b := range pilotBins {
		out[i] = bins[b]
	}
	return out
}
