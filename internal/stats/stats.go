// Package stats provides the small statistical toolkit the evaluation
// harness uses: running moments, empirical CDFs, and BER counters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates mean and variance online (Welford's algorithm).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Std() / math.Sqrt(float64(r.n))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// BERCounter tallies bit errors against bits observed.
type BERCounter struct {
	Errors int64
	Bits   int64
}

// Add folds in a batch.
func (b *BERCounter) Add(errors, bits int) {
	b.Errors += int64(errors)
	b.Bits += int64(bits)
}

// Rate returns the observed bit error rate (0 when no bits were counted).
func (b *BERCounter) Rate() float64 {
	if b.Bits == 0 {
		return 0
	}
	return float64(b.Errors) / float64(b.Bits)
}

// String formats the rate in scientific notation with the sample size.
func (b *BERCounter) String() string {
	return fmt.Sprintf("%.3e (%d/%d)", b.Rate(), b.Errors, b.Bits)
}
