package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.CI95() != 0 {
		t.Error("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean %v, want 5", r.Mean())
	}
	// Unbiased variance of that classic sample is 32/7.
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Errorf("var %v, want %v", r.Var(), 32.0/7)
	}
	if r.CI95() <= 0 {
		t.Error("CI should be positive")
	}
}

func TestRunningMatchesBatchOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Running
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		r.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(r.Mean()-mean) > 1e-9 || math.Abs(r.Var()-v) > 1e-9 {
		t.Error("running moments disagree with batch computation")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("median %v", got)
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF should report zeros")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("input mutated")
	}
}

func TestBERCounter(t *testing.T) {
	var b BERCounter
	if b.Rate() != 0 {
		t.Error("empty counter rate should be 0")
	}
	b.Add(3, 1000)
	b.Add(0, 1000)
	if math.Abs(b.Rate()-0.0015) > 1e-12 {
		t.Errorf("rate %v", b.Rate())
	}
	if b.String() == "" {
		t.Error("empty String")
	}
}
