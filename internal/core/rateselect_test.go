package core

import (
	"testing"

	"carpool/internal/channel"
	"carpool/internal/phy"
)

func TestSelectMCSMonotone(t *testing.T) {
	prev := 0.0
	for snr := -5.0; snr <= 40; snr += 0.5 {
		m := SelectMCS(snr)
		if !m.Valid() {
			t.Fatalf("invalid MCS at %v dB", snr)
		}
		if r := m.DataRateMbps(); r < prev {
			t.Fatalf("rate decreased at %v dB: %v < %v", snr, r, prev)
		} else {
			prev = r
		}
	}
}

func TestSelectMCSEndpoints(t *testing.T) {
	if SelectMCS(0) != phy.MCS6 {
		t.Error("0 dB should select the most robust scheme")
	}
	if SelectMCS(35) != phy.MCS54 {
		t.Error("35 dB should select the fastest scheme")
	}
}

func randomPayloadForRate(t *testing.T, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*37 + 11)
	}
	return p
}

func officeChannel(t *testing.T, snr float64, seed int64) *channel.Model {
	t.Helper()
	ch, err := channel.New(channel.Config{
		SNRdB: snr, NumTaps: 3, RicianK: 15, TapDecay: 3,
		CoherenceSymbols: channel.DefaultCoherenceSymbols, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestSelectedMCSActuallyDecodes(t *testing.T) {
	// Property: at each threshold SNR, a frame at the selected rate decodes
	// through an office-profile channel. (Single seed; the 3 dB margin in
	// the table absorbs fading realizations.)
	for _, snr := range []float64{8, 12, 16, 20, 24, 28, 32} {
		mcs := SelectMCS(snr)
		payload := randomPayloadForRate(t, 300)
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: mcs})
		if err != nil {
			t.Fatal(err)
		}
		ch := officeChannel(t, snr, 5)
		res, err := phy.Receive(ch.Transmit(frame.Samples), phy.RxConfig{KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			t.Errorf("%v at %v dB: status %v", mcs, snr, res.Status)
			continue
		}
		if string(res.Payload) != string(payload) {
			t.Errorf("%v at %v dB: payload corrupted", mcs, snr)
		}
	}
}
