package core

import (
	"runtime"
	"sync"

	"carpool/internal/bloom"
	"carpool/internal/obs"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
	"carpool/internal/sim"
)

// ReceiverConfig configures one STA's Carpool receiver.
type ReceiverConfig struct {
	// MAC is this station's hardware address, checked against the A-HDR.
	MAC bloom.MAC
	// Hashes must match the AP's Bloom configuration; zero selects
	// bloom.DefaultHashes.
	Hashes int
	// SideChannel must match the AP's; the zero value selects the default
	// scheme. DisableSideChannel turns side-channel decoding (and with it
	// RTE data pilots) off.
	SideChannel        sidechannel.Scheme
	DisableSideChannel bool
	// UseRTE selects Carpool's real-time channel estimation for the
	// station's own subframes; false keeps the standard preamble-only
	// estimate (the MU-Aggregation baseline).
	UseRTE bool
	// KnownStart skips packet detection (negative means "detect").
	KnownStart int
	// SkipFEC stops each subframe at the demapper, for the BER harness.
	SkipFEC bool
	// SoftFEC decodes matched subframes with channel-gain-weighted soft
	// decisions through the quantized int8 Viterbi fast path
	// (fec.SoftDecoder) instead of hard decisions.
	SoftFEC bool
	// DecodeAll walks and decodes every subframe in the frame, not just
	// the A-HDR matches — the erasure-coded (FEC) receive mode, where a
	// station that loses its own subframe rebuilds it from the other data
	// and parity subframes it overheard. The A-HDR gate still applies: a
	// frame matching none of the station's positions is dropped unread.
	DecodeAll bool
}

func (c ReceiverConfig) hashes() int {
	if c.Hashes == 0 {
		return bloom.DefaultHashes
	}
	return c.Hashes
}

func (c ReceiverConfig) scheme() *sidechannel.Scheme {
	if c.DisableSideChannel {
		return nil
	}
	s := c.SideChannel
	if s == (sidechannel.Scheme{}) {
		s = sidechannel.DefaultScheme()
	}
	return &s
}

// SubframeRx is one decoded subframe.
type SubframeRx struct {
	// Position is the 1-based subframe index within the frame.
	Position int
	SIG      phy.SIG
	// StartSymbol is the absolute symbol index of the subframe's SIG.
	StartSymbol int
	// Payload is the FEC-decoded payload (nil with SkipFEC).
	Payload []byte
	// Blocks, SideBits, SymbolOK, PilotPhases mirror phy.Segment.
	Blocks      [][]byte
	SideBits    [][]byte
	SymbolOK    []bool
	PilotPhases []float64
	// RTEUpdates counts the data-pilot calibrations inside this subframe.
	RTEUpdates int
}

// FrameRx is the outcome of one station hearing one Carpool frame.
type FrameRx struct {
	Status phy.RxStatus
	// CFORad is the estimated carrier frequency offset.
	CFORad float64
	// Filter is the decoded A-HDR.
	Filter bloom.Filter
	// Matched lists the subframe positions the A-HDR matched for this
	// station (possibly including false positives).
	Matched []int
	// Dropped is true when the A-HDR matched nothing: the station dropped
	// the frame after two symbols without touching the payload.
	Dropped bool
	// Subframes are the decoded (matched) subframes.
	Subframes []SubframeRx
	// SymbolsHeard is the frame length in symbols the station observed;
	// SymbolsDecoded is how many it actually demodulated (A-HDR + the SIGs
	// it walked + matched payloads) — the energy accounting of §8.
	SymbolsHeard   int
	SymbolsDecoded int
}

// ReceiveFrame runs one station's Carpool receive pipeline (paper §3, §4.1):
// synchronize, decode the A-HDR, drop the frame if no subframe matches,
// otherwise walk the subframes — decoding only SIGs to skip over other
// stations' payloads — and decode every matched subframe, with RTE
// recalibrating the channel estimate inside each one.
func ReceiveFrame(rx []complex128, cfg ReceiverConfig) (*FrameRx, error) {
	sink := obs.Active()
	sink.Counter("core.frames_rx").Inc()
	buf, h, cfo, status := phy.Sync(rx, cfg.KnownStart)
	res := &FrameRx{Status: status, CFORad: cfo}
	if status != phy.StatusOK {
		return res, nil
	}

	// A-HDR: two standard-equalized, phase-compensated BPSK symbols. The
	// demodulation scratch lives on the stack; only the slice headers into
	// the flat point buffer reach DecodeAHDR.
	var bins [ofdm.NumSubcarriers]complex128
	var ahdrFlat [AHDRSymbols * ofdm.NumData]complex128
	var ahdrPoints [AHDRSymbols][]complex128
	for s := 0; s < AHDRSymbols; s++ {
		off := ofdm.PreambleLen + s*ofdm.SymbolLen
		if off+ofdm.SymbolLen > len(buf) {
			res.Status = phy.StatusTruncated
			return res, nil
		}
		if err := ofdm.SymbolBinsInto(bins[:], buf[off:]); err != nil {
			return nil, err
		}
		if err := ofdm.Equalize(bins[:], h); err != nil {
			return nil, err
		}
		phase, _ := ofdm.TrackPilotPhase(bins[:], s)
		ofdm.CompensatePhase(bins[:], phase)
		pts := ahdrFlat[s*ofdm.NumData : (s+1)*ofdm.NumData]
		ofdm.ExtractDataInto(pts, bins[:])
		ahdrPoints[s] = pts
	}
	filter, err := DecodeAHDR(ahdrPoints[:])
	if err != nil {
		res.Status = phy.StatusBadSIG
		return res, nil
	}
	res.Filter = filter
	res.SymbolsDecoded = AHDRSymbols
	res.SymbolsHeard = (len(buf) - ofdm.PreambleLen) / ofdm.SymbolLen

	res.Matched = filter.Positions(cfg.MAC, bloom.MaxReceivers, cfg.hashes())
	if len(res.Matched) == 0 {
		// Irrelevant frame: drop after the A-HDR without decoding payload.
		res.Dropped = true
		sink.Counter("core.ahdr_drop").Inc()
		if sink != nil {
			sink.Tracer.Emit(obs.EvAHDRDrop, 0, 0)
		}
		return res, nil
	}
	sink.Counter("core.ahdr_match").Inc()
	if sink != nil {
		sink.Tracer.Emit(obs.EvAHDRMatch, int64(len(res.Matched)), 0)
	}
	maxMatched := res.Matched[len(res.Matched)-1]
	matched := make(map[int]bool, len(res.Matched))
	for _, p := range res.Matched {
		matched[p] = true
	}

	// Phase 1: walk the SIG chain sequentially — each SIG's sample position
	// depends on the previous subframe's length, so locating is inherently
	// serial — recording where every matched subframe's payload lives.
	// Payload decoding is deferred to phase 2 so independent subframes can
	// decode concurrently.
	scheme := cfg.scheme()
	symIdx := AHDRSymbols
	badSIG := false
	var jobs []subframeJob
	for pos := 1; pos <= maxMatched || cfg.DecodeAll; pos++ {
		if cfg.DecodeAll && symIdx >= res.SymbolsHeard {
			break // clean end of frame: no SIG symbol left to walk
		}
		sigOff := ofdm.PreambleLen + symIdx*ofdm.SymbolLen
		sig, sigPhase, err := phy.DecodeSIGAt(buf, h, sigOff, symIdx)
		if err != nil {
			// Without a valid SIG the rest of the frame cannot be located.
			badSIG = true
			break
		}
		res.SymbolsDecoded++
		sigSymIdx := symIdx
		symIdx++
		nsym := sig.MCS.NumSymbols(sig.Length)

		if !matched[pos] && !cfg.DecodeAll {
			// Skip the whole subframe; only its SIG was decoded.
			symIdx += nsym
			sink.Counter("core.symbols_skipped").Add(int64(nsym))
			continue
		}
		sink.Counter("core.subframes_decoded").Inc()
		jobs = append(jobs, subframeJob{
			pos: pos, sigSymIdx: sigSymIdx, dataSymIdx: symIdx, nsym: nsym,
			sig: sig, sigPhase: sigPhase,
		})
		if ofdm.PreambleLen+(symIdx+nsym)*ofdm.SymbolLen > len(buf) {
			// The DATA field runs past the buffer. The job still decodes
			// (partially) in phase 2 for its tracker and counter side
			// effects, but the chain cannot be located past the hole.
			break
		}
		symIdx += nsym
	}

	// Phase 2: located subframes are independent — their trackers, side
	// channels and FEC state are all per-subframe — so decode them
	// concurrently, each worker confining writes to its own slot.
	subs := make([]SubframeRx, len(jobs))
	truncs := make([]int, len(jobs))
	errs := make([]error, len(jobs))
	if cfg.SoftFEC && !cfg.SkipFEC && len(jobs) > 1 && runtime.GOMAXPROCS(0) == 1 {
		// Batched soft-FEC fast path: with one usable CPU the parallel loop
		// degenerates to sequential anyway, so demodulate every subframe
		// first and run all their Viterbi walks over one contiguous LLR slab
		// (phy.DecodeDataFieldBatch) — one workspace, no pool churn per
		// subframe. Bit-identical to the per-subframe path; the seq-vs-par
		// conform pair pins this against the parallel decode.
		llrqs := make([][][]int8, len(jobs))
		// The accounting loop below consumes jobs in order and stops at the
		// first error or truncation, so only the clean prefix needs payloads.
		// Every job still demodulates (matching the parallel path's counter
		// and tracker side effects exactly).
		n := len(jobs)
		for i := range jobs {
			subs[i], llrqs[i], truncs[i], errs[i] = demodSubframe(buf, h, jobs[i], scheme, cfg)
			if (errs[i] != nil || truncs[i] >= 0) && i < n {
				n = i
			}
		}
		if n > 0 {
			batch := make([]phy.SoftQBatchJob, n)
			for i := range batch {
				batch[i] = phy.SoftQBatchJob{
					Blocks: llrqs[i], MCS: jobs[i].sig.MCS, PayloadLen: jobs[i].sig.Length,
				}
			}
			dec := softQPool.Get().(*phy.SoftQDecoder)
			_, err := dec.DecodeDataFieldBatch(batch)
			softQPool.Put(dec)
			if err != nil {
				return nil, err
			}
			for i := range batch {
				subs[i].Payload = batch[i].Payload
			}
		}
	} else {
		sim.ParallelFor(len(jobs), func(i int) {
			subs[i], truncs[i], errs[i] = decodeSubframe(buf, h, jobs[i], scheme, cfg)
		})
	}
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if truncs[i] >= 0 {
			// Only the final job can truncate (the walk stops at the hole).
			// The typed error pins which subframe was cut and where, while
			// Status keeps reporting the reception outcome for callers that
			// treat a truncated frame as a loss rather than a fault.
			res.Status = phy.StatusTruncated
			return res, &ErrTruncatedSubframe{Position: jobs[i].pos, Symbol: truncs[i]}
		}
		res.SymbolsDecoded += jobs[i].nsym
		res.Subframes = append(res.Subframes, subs[i])
	}
	if badSIG {
		res.Status = phy.StatusBadSIG
		return res, nil
	}
	res.Status = phy.StatusOK
	return res, nil
}

// subframeJob locates one matched subframe inside a synchronized buffer:
// everything phase 2 needs to decode it independently of its neighbors.
type subframeJob struct {
	pos, sigSymIdx, dataSymIdx, nsym int

	sig      phy.SIG
	sigPhase float64
}

// softQPool recycles quantized soft-decode workspaces across subframes and
// frames; each phase-2 worker checks one out for the duration of a decode.
var softQPool = sync.Pool{New: func() any { return new(phy.SoftQDecoder) }}

// demodSubframe demodulates one located subframe without touching FEC,
// returning its quantized per-symbol LLR blocks when the soft chain is
// selected (nil otherwise). It touches only per-call state plus atomic obs
// counters, so distinct jobs demodulate safely in parallel. The int result
// reports truncation: -1 for a complete subframe, otherwise the absolute
// symbol index of the first DATA symbol the buffer ended inside of.
func demodSubframe(buf, h []complex128, job subframeJob, scheme *sidechannel.Scheme, cfg ReceiverConfig) (SubframeRx, [][]int8, int, error) {
	var tracker phy.ChannelTracker
	var rte *RTETracker
	if cfg.UseRTE {
		rte = NewRTETracker()
		tracker = rte
	} else {
		tracker = phy.NewStandardTracker()
	}
	tracker.Init(h, job.sig.MCS.Mod)

	dataOff := ofdm.PreambleLen + job.dataSymIdx*ofdm.SymbolLen
	soft := cfg.SoftFEC && !cfg.SkipFEC
	var seg *phy.Segment
	var err error
	if soft {
		seg, err = phy.DecodeDataSymbolsQ(buf, dataOff, job.dataSymIdx, job.nsym,
			job.sig.MCS.Mod, tracker, scheme, job.sigPhase)
	} else {
		seg, err = phy.DecodeDataSymbols(buf, dataOff, job.dataSymIdx, job.nsym,
			job.sig.MCS.Mod, tracker, scheme, job.sigPhase)
	}
	if err != nil {
		return SubframeRx{}, nil, -1, err
	}
	if seg.Truncated {
		return SubframeRx{}, nil, job.dataSymIdx + len(seg.Blocks), nil
	}
	sub := SubframeRx{
		Position:    job.pos,
		SIG:         job.sig,
		StartSymbol: job.sigSymIdx,
		Blocks:      seg.Blocks,
		SideBits:    seg.SideBits,
		SymbolOK:    seg.SymbolOK,
		PilotPhases: seg.PilotPhases,
	}
	if rte != nil {
		sub.RTEUpdates = rte.Updates()
	}
	return sub, seg.LLRQs, -1, nil
}

// decodeSubframe demodulates and (unless SkipFEC) FEC-decodes one located
// subframe; the batched phase-2 path calls demodSubframe directly and
// defers FEC to one slab decode.
func decodeSubframe(buf, h []complex128, job subframeJob, scheme *sidechannel.Scheme, cfg ReceiverConfig) (SubframeRx, int, error) {
	sub, llrqs, trunc, err := demodSubframe(buf, h, job, scheme, cfg)
	if err != nil || trunc >= 0 {
		return sub, trunc, err
	}
	if !cfg.SkipFEC {
		var payload []byte
		if cfg.SoftFEC {
			dec := softQPool.Get().(*phy.SoftQDecoder)
			payload, err = dec.DecodeDataField(llrqs, job.sig.MCS, job.sig.Length)
			softQPool.Put(dec)
		} else {
			payload, err = phy.DecodeDataField(sub.Blocks, job.sig.MCS, job.sig.Length)
		}
		if err != nil {
			return SubframeRx{}, -1, err
		}
		sub.Payload = payload
	}
	return sub, -1, nil
}
