package core

import (
	"math/rand"
	"testing"

	"carpool/internal/channel"
	"carpool/internal/phy"
)

func TestClassifyFrameLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	payload := randomPayload(rng, 300)
	for _, mcs := range []phy.MCS{phy.MCS6, phy.MCS24, phy.MCS54} {
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: mcs})
		if err != nil {
			t.Fatal(err)
		}
		kind, err := ClassifyFrame(frame.Samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindLegacy {
			t.Errorf("%v legacy frame classified as %v", mcs, kind)
		}
	}
}

func TestClassifyFrameCarpool(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(4)
		subs := make([]Subframe, n)
		for i := range subs {
			subs[i] = Subframe{
				Receiver: mac(byte(trial*8 + i)), MCS: phy.MCS24,
				Payload: randomPayload(rng, 100+rng.Intn(400)),
			}
		}
		frame, err := BuildFrame(subs, FrameConfig{})
		if err != nil {
			t.Fatal(err)
		}
		kind, err := ClassifyFrame(frame.Samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindCarpool {
			t.Errorf("trial %d: Carpool frame classified as %v", trial, kind)
		}
	}
}

func TestClassifyFrameThroughChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ch := func(seed int64) *channel.Model {
		m, err := channel.New(channel.Config{
			SNRdB: 26, NumTaps: 3, RicianK: 15, TapDecay: 3,
			CoherenceSymbols: 2000, CFOHz: 500, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	legacy, err := phy.Transmit(randomPayload(rng, 200), phy.TxConfig{MCS: phy.MCS12})
	if err != nil {
		t.Fatal(err)
	}
	kind, err := ClassifyFrame(ch(1).Transmit(legacy.Samples), 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLegacy {
		t.Errorf("legacy over channel classified as %v", kind)
	}

	cf, err := BuildFrame([]Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: randomPayload(rng, 300)},
		{Receiver: mac(2), MCS: phy.MCS24, Payload: randomPayload(rng, 300)},
	}, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kind, err = ClassifyFrame(ch(2).Transmit(cf.Samples), 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindCarpool {
		t.Errorf("Carpool over channel classified as %v", kind)
	}
}

func TestClassifyFrameNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	noise := make([]complex128, 2000)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	kind, err := ClassifyFrame(noise, -1)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindUnknown {
		t.Errorf("pure noise classified as %v", kind)
	}
}

func TestFrameKindString(t *testing.T) {
	if KindLegacy.String() != "legacy" || KindCarpool.String() != "carpool" ||
		KindUnknown.String() != "unknown" {
		t.Error("wrong names")
	}
}
