package core

import (
	"encoding/binary"
	"fmt"

	"carpool/internal/fec"
)

// The paper's §4.1: "the MAC data can be either single data unit or
// aggregation data unit determined in IEEE 802.11 MAC aggregation". This
// file implements the 802.11n A-MPDU container a Carpool subframe can
// carry: each MPDU is prefixed by a 4-byte delimiter (length, CRC-8,
// signature 0x4E) and padded to a 4-byte boundary, so a receiver can
// re-synchronize on delimiter signatures even after a corrupt stretch.

// ampduSignature marks a valid delimiter ('N').
const ampduSignature = 0x4E

// maxMPDULen is the largest MPDU length a 12-bit delimiter field encodes.
const maxMPDULen = 1<<12 - 1

// delimiterCRC8 is CRC-8 with polynomial x^8+x^2+x+1 (0x07), the 802.11n
// delimiter checksum.
func delimiterCRC8(b []byte) byte {
	var crc byte = 0xff
	for _, x := range b {
		crc ^= x
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return ^crc
}

// AggregateMPDUs packs MPDUs into one A-MPDU byte stream suitable for a
// Carpool subframe payload. Each MPDU gets its own FCS (via
// fec.AppendFCS), a delimiter, and padding to 4 bytes.
func AggregateMPDUs(mpdus [][]byte) ([]byte, error) {
	if len(mpdus) == 0 {
		return nil, fmt.Errorf("core: no MPDUs to aggregate")
	}
	var out []byte
	for i, m := range mpdus {
		framed := fec.AppendFCS(m)
		if len(framed) > maxMPDULen {
			return nil, fmt.Errorf("core: MPDU %d is %d bytes, exceeds delimiter limit %d",
				i, len(framed), maxMPDULen)
		}
		var delim [4]byte
		binary.LittleEndian.PutUint16(delim[0:], uint16(len(framed))) // 12-bit length, 4 reserved
		delim[2] = delimiterCRC8(delim[:2])
		delim[3] = ampduSignature
		out = append(out, delim[:]...)
		out = append(out, framed...)
		for len(out)%4 != 0 {
			out = append(out, 0)
		}
	}
	return out, nil
}

// DeaggregateMPDUs parses an A-MPDU stream back into MPDUs. Corrupt
// delimiters trigger a scan for the next plausible delimiter (signature +
// CRC-8 match on a 4-byte boundary), and MPDUs whose FCS fails are counted
// but not returned — the 802.11n receiver behaviour that makes per-MPDU
// retransmission possible.
func DeaggregateMPDUs(stream []byte) (mpdus [][]byte, fcsFailures int) {
	i := 0
	for i+4 <= len(stream) {
		length := int(binary.LittleEndian.Uint16(stream[i:]) & 0xfff)
		validDelim := stream[i+3] == ampduSignature &&
			stream[i+2] == delimiterCRC8(stream[i:i+2]) &&
			length > 0 && i+4+length <= len(stream)
		if !validDelim {
			// Re-synchronize on the next 4-byte boundary with a plausible
			// delimiter.
			i += 4
			continue
		}
		framed := stream[i+4 : i+4+length]
		if payload, ok := fec.CheckFCS(framed); ok {
			mpdus = append(mpdus, append([]byte(nil), payload...))
		} else {
			fcsFailures++
		}
		i += 4 + length
		for i%4 != 0 {
			i++
		}
	}
	return mpdus, fcsFailures
}
