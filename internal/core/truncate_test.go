package core

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"carpool/internal/ofdm"
	"carpool/internal/phy"

	"math/rand"
)

// truncatedInsideSubframe cuts a multi-match frame's samples in the middle
// of the data field of the third subframe (position 3, owned by mac(1)),
// returning the cut buffer and the absolute symbol index of the first DATA
// symbol that no longer fits.
func truncatedInsideSubframe(t *testing.T) ([]complex128, int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	frame, _ := multiMatchFrame(t, rng)
	sub := frame.Subframes[2] // position 3, matched by mac(1)
	dataStart := sub.StartSymbol + 1
	// Keep the SIG and the first two DATA symbols plus half of the third.
	cutSym := dataStart + 2
	cut := ofdm.PreambleLen + cutSym*ofdm.SymbolLen + ofdm.SymbolLen/2
	return frame.Samples[:cut], 3, cutSym
}

// TestReceiveFrameTruncatedSubframeTyped pins the typed-truncation
// contract on both the sequential (GOMAXPROCS=1, phase 2 runs inline) and
// parallel paths: ReceiveFrame must return StatusTruncated plus an
// *ErrTruncatedSubframe naming the cut subframe and symbol, identically in
// both modes.
func TestReceiveFrameTruncatedSubframeTyped(t *testing.T) {
	samples, wantPos, wantSym := truncatedInsideSubframe(t)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := ReceiveFrame(samples, ReceiverConfig{MAC: mac(1), UseRTE: true, KnownStart: 0})
		runtime.GOMAXPROCS(prev)

		if res == nil || res.Status != phy.StatusTruncated {
			t.Fatalf("procs=%d: status %v, want truncated", procs, res.Status)
		}
		var te *ErrTruncatedSubframe
		if !errors.As(err, &te) {
			t.Fatalf("procs=%d: error %v (%T), want *ErrTruncatedSubframe", procs, err, err)
		}
		if te.Position != wantPos || te.Symbol != wantSym {
			t.Fatalf("procs=%d: truncated at subframe %d symbol %d, want subframe %d symbol %d",
				procs, te.Position, te.Symbol, wantPos, wantSym)
		}
	}
}

// TestReceiveFrameTruncationSeqParIdentical asserts the sequential and
// parallel paths agree on every field of the truncated result, not just
// the error.
func TestReceiveFrameTruncationSeqParIdentical(t *testing.T) {
	samples, _, _ := truncatedInsideSubframe(t)
	cfg := ReceiverConfig{MAC: mac(1), UseRTE: true, KnownStart: 0, SoftFEC: true}

	prev := runtime.GOMAXPROCS(1)
	seqRes, seqErr := ReceiveFrame(samples, cfg)
	runtime.GOMAXPROCS(4)
	parRes, parErr := ReceiveFrame(samples, cfg)
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("sequential and parallel truncated results differ")
	}
	if !reflect.DeepEqual(seqErr, parErr) {
		t.Errorf("sequential error %v, parallel error %v", seqErr, parErr)
	}
}

// TestErrTruncatedSubframeMessage pins the error text's replay-relevant
// fields.
func TestErrTruncatedSubframeMessage(t *testing.T) {
	err := &ErrTruncatedSubframe{Position: 3, Symbol: 17}
	want := "core: buffer truncated inside subframe 3's data field at symbol 17"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// TestReceiveFrameAllPropagatesTruncation checks that the fan-out wraps
// the typed error with the station index while errors.As still reaches it.
func TestReceiveFrameAllPropagatesTruncation(t *testing.T) {
	samples, wantPos, wantSym := truncatedInsideSubframe(t)
	rxs := [][]complex128{samples, samples}
	cfgs := []ReceiverConfig{
		{MAC: mac(2), KnownStart: 0}, // matches position 2 only: completes
		{MAC: mac(1), KnownStart: 0}, // matches the cut subframe
	}
	results, err := ReceiveFrameAll(rxs, cfgs)
	var te *ErrTruncatedSubframe
	if !errors.As(err, &te) {
		t.Fatalf("error %v, want wrapped *ErrTruncatedSubframe", err)
	}
	if te.Position != wantPos || te.Symbol != wantSym {
		t.Fatalf("truncation at subframe %d symbol %d, want %d/%d",
			te.Position, te.Symbol, wantPos, wantSym)
	}
	if results[0] == nil || results[0].Status != phy.StatusOK {
		t.Error("station 0 (before the error) should have completed")
	}
	if results[1] != nil {
		t.Error("station 1 (the erroring one) should be nil")
	}
}
