package core

import (
	"carpool/internal/ofdm"
	"carpool/internal/phy"
)

// FrameKind classifies what follows a preamble on the air (§4.3).
type FrameKind int

// Frame kinds.
const (
	// KindUnknown means the header region decoded as neither format.
	KindUnknown FrameKind = iota
	// KindLegacy is a standard 802.11 frame (including MAC-level A-MPDU /
	// A-MSDU aggregates, which share the legacy PLCP).
	KindLegacy
	// KindCarpool is a Carpool multi-receiver frame.
	KindCarpool
)

// String names the kind.
func (k FrameKind) String() string {
	switch k {
	case KindLegacy:
		return "legacy"
	case KindCarpool:
		return "carpool"
	default:
		return "unknown"
	}
}

// ClassifyFrame implements §4.3's coexistence rule: a Carpool node decodes
// the symbol right after the preamble; a valid legacy SIG (parity, zero
// tail, known rate pattern) marks a legacy frame, otherwise the node treats
// the first two symbols as an A-HDR. Legacy nodes cannot decode Carpool
// PLCP at all, so the asymmetric check suffices.
//
// rx must contain a synchronizable frame; knownStart below zero triggers
// packet detection.
func ClassifyFrame(rx []complex128, knownStart int) (FrameKind, error) {
	buf, h, _, status := phy.Sync(rx, knownStart)
	if status != phy.StatusOK {
		return KindUnknown, nil
	}
	if _, _, err := phy.DecodeSIGAt(buf, h, ofdm.PreambleLen, 0); err == nil {
		return KindLegacy, nil
	}
	// Not a legacy SIG: check that the two-symbol region decodes as an
	// A-HDR (the Viterbi always returns *some* 48 bits, so the real test
	// is that a legacy SIG did not validate — matching the paper's rule).
	points := make([][]complex128, 0, AHDRSymbols)
	for s := 0; s < AHDRSymbols; s++ {
		off := ofdm.PreambleLen + s*ofdm.SymbolLen
		if off+ofdm.SymbolLen > len(buf) {
			return KindUnknown, nil
		}
		bins, err := ofdm.SymbolBins(buf[off:])
		if err != nil {
			return KindUnknown, err
		}
		if err := ofdm.Equalize(bins, h); err != nil {
			return KindUnknown, err
		}
		phase, _ := ofdm.TrackPilotPhase(bins, s)
		ofdm.CompensatePhase(bins, phase)
		points = append(points, ofdm.ExtractData(bins))
	}
	if _, err := DecodeAHDR(points); err != nil {
		return KindUnknown, nil
	}
	return KindCarpool, nil
}
