package core

import "fmt"

// ErrTruncatedSubframe reports that the sample buffer ended inside a
// matched subframe's DATA field: the receiver located the subframe via its
// SIG but could not demodulate all of its symbols. ReceiveFrame returns it
// alongside a FrameRx whose Status is phy.StatusTruncated, so callers can
// distinguish a mid-payload cut (and learn exactly where it happened) from
// the benign truncations — buffer ending before the A-HDR or at a SIG
// boundary — that surface through Status alone.
type ErrTruncatedSubframe struct {
	// Position is the 1-based subframe position whose DATA field was cut.
	Position int
	// Symbol is the absolute OFDM symbol index (A-HDR = 0,1) of the first
	// DATA symbol that no longer fit in the buffer.
	Symbol int
}

func (e *ErrTruncatedSubframe) Error() string {
	return fmt.Sprintf("core: buffer truncated inside subframe %d's data field at symbol %d",
		e.Position, e.Symbol)
}
