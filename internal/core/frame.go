package core

import (
	"fmt"

	"carpool/internal/bloom"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
)

// Subframe is one receiver's share of a Carpool frame: its own SIG
// (modulation/coding + length) followed by its MAC data. Different
// subframes may use different MCSs (paper §4.1).
type Subframe struct {
	Receiver bloom.MAC
	MCS      phy.MCS
	Payload  []byte
}

// FrameConfig controls Carpool frame construction.
type FrameConfig struct {
	// Hashes is the Bloom hash-set size; zero selects bloom.DefaultHashes.
	Hashes int
	// SideChannel carries the symbol-level CRCs; the zero value selects
	// sidechannel.DefaultScheme(). Set Disable to transmit without it
	// (the MU-Aggregation baseline).
	SideChannel sidechannel.Scheme
	// DisableSideChannel turns the phase-offset side channel off.
	DisableSideChannel bool
	// ScramblerSeed is the 7-bit scrambler initial state per subframe.
	ScramblerSeed byte
}

func (c FrameConfig) hashes() int {
	if c.Hashes == 0 {
		return bloom.DefaultHashes
	}
	return c.Hashes
}

func (c FrameConfig) scheme() *sidechannel.Scheme {
	if c.DisableSideChannel {
		return nil
	}
	s := c.SideChannel
	if s == (sidechannel.Scheme{}) {
		s = sidechannel.DefaultScheme()
	}
	return &s
}

// SubframeTx records one subframe's ground truth inside a built frame.
type SubframeTx struct {
	Subframe
	SIG phy.SIG
	// StartSymbol is the absolute OFDM symbol index of the subframe's SIG;
	// the A-HDR occupies indices 0 and 1.
	StartSymbol int
	// Blocks are the interleaved coded bits per DATA symbol.
	Blocks [][]byte
	// SideBits per DATA symbol (nil when the side channel is off).
	SideBits [][]byte
}

// Frame is a built Carpool frame ready for the air.
type Frame struct {
	Samples   []complex128
	Filter    bloom.Filter
	Hashes    int
	Subframes []SubframeTx
}

// NumSymbols returns the frame length in OFDM symbols (A-HDR + subframes).
func (f *Frame) NumSymbols() int {
	return (len(f.Samples) - ofdm.PreambleLen) / ofdm.SymbolLen
}

// AirtimeSeconds returns the frame duration on the air.
func (f *Frame) AirtimeSeconds() float64 {
	return float64(len(f.Samples)) / ofdm.SampleRate
}

// BuildFrame aggregates subframes for up to bloom.MaxReceivers stations
// into one Carpool frame: preamble, two-symbol A-HDR, then each subframe's
// SIG and DATA symbols. Each subframe restarts the side-channel encoder so
// a receiver that skips ahead can use its own SIG symbol as the
// differential phase reference.
func BuildFrame(subframes []Subframe, cfg FrameConfig) (*Frame, error) {
	if len(subframes) == 0 {
		return nil, fmt.Errorf("core: no subframes")
	}
	if len(subframes) > bloom.MaxReceivers {
		return nil, fmt.Errorf("core: %d subframes exceeds limit %d", len(subframes), bloom.MaxReceivers)
	}
	receivers := make([]bloom.MAC, len(subframes))
	for i, sf := range subframes {
		if !sf.MCS.Valid() {
			return nil, fmt.Errorf("core: subframe %d has invalid MCS", i)
		}
		if len(sf.Payload) == 0 {
			return nil, fmt.Errorf("core: subframe %d has empty payload", i)
		}
		receivers[i] = sf.Receiver
	}
	filter, err := bloom.Build(receivers, cfg.hashes())
	if err != nil {
		return nil, err
	}

	frame := &Frame{Filter: filter, Hashes: cfg.hashes()}
	frame.Samples = append(frame.Samples, ofdm.GeneratePreamble()...)
	ahdr, err := BuildAHDR(filter)
	if err != nil {
		return nil, err
	}
	frame.Samples = append(frame.Samples, ahdr...)

	scheme := cfg.scheme()
	symIdx := AHDRSymbols
	for _, sf := range subframes {
		tx := SubframeTx{
			Subframe:    sf,
			SIG:         phy.SIG{MCS: sf.MCS, Length: len(sf.Payload)},
			StartSymbol: symIdx,
		}
		sigSym, err := phy.BuildSIGSymbol(tx.SIG, symIdx)
		if err != nil {
			return nil, err
		}
		frame.Samples = append(frame.Samples, sigSym...)
		symIdx++

		tx.Blocks, err = phy.EncodeDataField(sf.Payload, sf.MCS, cfg.ScramblerSeed)
		if err != nil {
			return nil, err
		}
		samples, sideBits, err := phy.BuildDataSymbols(tx.Blocks, sf.MCS.Mod, symIdx, scheme)
		if err != nil {
			return nil, err
		}
		tx.SideBits = sideBits
		frame.Samples = append(frame.Samples, samples...)
		symIdx += len(tx.Blocks)
		frame.Subframes = append(frame.Subframes, tx)
	}
	return frame, nil
}
