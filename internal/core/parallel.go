package core

import (
	"context"
	"fmt"

	"carpool/internal/sim"
)

// ReceiveFrameAll runs ReceiveFrame for every station concurrently: rxs[i]
// is station i's received sample stream and cfgs[i] its receiver
// configuration. This is the natural shape of a Carpool downlink — one
// transmission, many independent receivers — so the per-STA decodes fan out
// across GOMAXPROCS workers.
//
// ReceiveFrame touches no mutable shared state (package-level caches hold
// only immutable tables), so each result is bit-identical to what a
// sequential loop would produce; only wall-clock time changes. The first
// per-station error, if any, is reported (lowest station index wins, so the
// error too is deterministic); results[i] is nil for stations at or after an
// error.
func ReceiveFrameAll(rxs [][]complex128, cfgs []ReceiverConfig) ([]*FrameRx, error) {
	return ReceiveFrameAllCtx(context.Background(), rxs, cfgs)
}

// ReceiveFrameAllCtx is ReceiveFrameAll with cooperative cancellation: a
// cancelled ctx stops dispatching further stations and returns ctx.Err().
// Stations already decoding complete normally (their results are kept), and
// no worker goroutine outlives the call — the cancellation contract the
// real-time engine's worker pool relies on during shutdown.
func ReceiveFrameAllCtx(ctx context.Context, rxs [][]complex128, cfgs []ReceiverConfig) ([]*FrameRx, error) {
	if len(rxs) != len(cfgs) {
		return nil, fmt.Errorf("core: %d sample streams but %d receiver configs", len(rxs), len(cfgs))
	}
	results := make([]*FrameRx, len(rxs))
	errs := make([]error, len(rxs))
	if err := sim.ParallelForCtx(ctx, len(rxs), func(i int) error {
		results[i], errs[i] = ReceiveFrame(rxs[i], cfgs[i])
		return nil
	}); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			for j := i; j < len(results); j++ {
				results[j] = nil
			}
			return results, fmt.Errorf("core: station %d: %w", i, err)
		}
	}
	return results, nil
}
