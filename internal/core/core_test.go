package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/channel"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
)

func mac(b byte) bloom.MAC { return bloom.MAC{0x02, 0, 0, 0, 0, b} }

func randomPayload(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	rng.Read(p)
	return p
}

func TestBuildAHDRDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		macs := make([]bloom.MAC, 1+rng.Intn(8))
		for i := range macs {
			rng.Read(macs[i][:])
		}
		filter, err := bloom.Build(macs, bloom.DefaultHashes)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := BuildAHDR(filter)
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != AHDRSymbols*80 {
			t.Fatalf("A-HDR samples %d, want %d", len(samples), AHDRSymbols*80)
		}
		// Demodulate through an identity channel.
		points := make([][]complex128, 0, AHDRSymbols)
		for s := 0; s < AHDRSymbols; s++ {
			bins, err := symbolBinsAt(samples, s)
			if err != nil {
				t.Fatal(err)
			}
			points = append(points, bins)
		}
		got, err := DecodeAHDR(points)
		if err != nil {
			t.Fatal(err)
		}
		if got != filter {
			t.Fatalf("A-HDR round trip: got %012x, want %012x", uint64(got), uint64(filter))
		}
	}
}

// symbolBinsAt extracts the 48 data points of symbol s from a run of
// back-to-back symbols through an identity channel.
func symbolBinsAt(samples []complex128, s int) ([]complex128, error) {
	bins, err := ofdm.SymbolBins(samples[s*ofdm.SymbolLen:])
	if err != nil {
		return nil, err
	}
	return ofdm.ExtractData(bins), nil
}

func TestDecodeAHDRWrongSymbolCount(t *testing.T) {
	if _, err := DecodeAHDR(nil); err == nil {
		t.Error("accepted empty A-HDR")
	}
}

func TestBuildFrameValidation(t *testing.T) {
	if _, err := BuildFrame(nil, FrameConfig{}); err == nil {
		t.Error("accepted empty frame")
	}
	subs := make([]Subframe, 9)
	for i := range subs {
		subs[i] = Subframe{Receiver: mac(byte(i)), MCS: phy.MCS12, Payload: []byte{1}}
	}
	if _, err := BuildFrame(subs, FrameConfig{}); err == nil {
		t.Error("accepted 9 subframes")
	}
	if _, err := BuildFrame([]Subframe{{Receiver: mac(1), Payload: []byte{1}}}, FrameConfig{}); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := BuildFrame([]Subframe{{Receiver: mac(1), MCS: phy.MCS12}}, FrameConfig{}); err == nil {
		t.Error("accepted empty payload")
	}
}

func TestCarpoolFrameCleanLoopback(t *testing.T) {
	// The paper's Fig. 2 flow: the AP aggregates frames for three STAs;
	// each STA extracts exactly its own subframe.
	rng := rand.New(rand.NewSource(2))
	payloads := [][]byte{
		randomPayload(rng, 300),
		randomPayload(rng, 150),
		randomPayload(rng, 500),
	}
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: payloads[0]},
		{Receiver: mac(2), MCS: phy.MCS48, Payload: payloads[1]},
		{Receiver: mac(3), MCS: phy.MCS12, Payload: payloads[2]},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Subframes) != 3 {
		t.Fatalf("%d subframes", len(frame.Subframes))
	}
	if frame.Subframes[0].StartSymbol != AHDRSymbols {
		t.Errorf("first subframe starts at %d", frame.Subframes[0].StartSymbol)
	}

	for i, sub := range subs {
		res, err := ReceiveFrame(frame.Samples, ReceiverConfig{
			MAC: sub.Receiver, UseRTE: true, KnownStart: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			t.Fatalf("STA %d: status %v", i, res.Status)
		}
		if res.Dropped {
			t.Fatalf("STA %d: dropped its own frame (false negative!)", i)
		}
		var own *SubframeRx
		for j := range res.Subframes {
			if res.Subframes[j].Position == i+1 {
				own = &res.Subframes[j]
			}
		}
		if own == nil {
			t.Fatalf("STA %d: own subframe not decoded, matched %v", i, res.Matched)
		}
		if !bytes.Equal(own.Payload, payloads[i]) {
			t.Errorf("STA %d: payload corrupted", i)
		}
		if own.SIG.MCS != sub.MCS {
			t.Errorf("STA %d: SIG MCS %v, want %v", i, own.SIG.MCS, sub.MCS)
		}
	}
}

func TestIrrelevantSTADropsFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: randomPayload(rng, 200)},
		{Receiver: mac(2), MCS: phy.MCS24, Payload: randomPayload(rng, 200)},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Probe with many foreign MACs: the overwhelming majority must drop
	// the frame after the A-HDR, decoding only 2 symbols.
	drops, falsePos := 0, 0
	for i := 0; i < 200; i++ {
		var foreign bloom.MAC
		rng.Read(foreign[:])
		res, err := ReceiveFrame(frame.Samples, ReceiverConfig{MAC: foreign, KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped {
			drops++
			if res.SymbolsDecoded != AHDRSymbols {
				t.Fatalf("dropped frame decoded %d symbols, want %d", res.SymbolsDecoded, AHDRSymbols)
			}
		} else {
			falsePos++
		}
	}
	if drops < 180 {
		t.Errorf("only %d/200 foreign STAs dropped the frame (%d false positives)", drops, falsePos)
	}
}

func TestSkippedSubframesNotDecoded(t *testing.T) {
	// STA B (position 2) must decode subframe 1's SIG but skip its payload:
	// symbols decoded = A-HDR(2) + SIG1(1) + SIG2(1) + data2.
	rng := rand.New(rand.NewSource(4))
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS12, Payload: randomPayload(rng, 900)},
		{Receiver: mac(2), MCS: phy.MCS24, Payload: randomPayload(rng, 120)},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReceiveFrame(frame.Samples, ReceiverConfig{MAC: mac(2), KnownStart: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != phy.StatusOK || len(res.Subframes) == 0 {
		t.Fatalf("status %v, %d subframes", res.Status, len(res.Subframes))
	}
	data2 := phy.MCS24.NumSymbols(120)
	want := AHDRSymbols + 1 + 1 + data2
	if res.SymbolsDecoded != want {
		t.Errorf("decoded %d symbols, want %d (skipping subframe 1's %d data symbols)",
			res.SymbolsDecoded, want, phy.MCS12.NumSymbols(900))
	}
	if res.SymbolsHeard <= res.SymbolsDecoded {
		t.Errorf("heard %d <= decoded %d", res.SymbolsHeard, res.SymbolsDecoded)
	}
}

func TestCarpoolFrameThroughChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	payload := randomPayload(rng, 400)
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: randomPayload(rng, 300)},
		{Receiver: mac(2), MCS: phy.MCS24, Payload: payload},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(channel.Config{
		SNRdB: 26, NumTaps: 3, RicianK: 15, TapDecay: 3, CFOHz: 600, Seed: 7,
		CoherenceSymbols: channel.DefaultCoherenceSymbols,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := append(make([]complex128, 60), frame.Samples...)
	tx = append(tx, make([]complex128, 40)...) // post-frame silence
	rx := ch.Transmit(tx)
	res, err := ReceiveFrame(rx, ReceiverConfig{MAC: mac(2), UseRTE: true, KnownStart: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != phy.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if len(res.Subframes) == 0 || !bytes.Equal(res.Subframes[0].Payload, payload) {
		t.Error("payload corrupted through 26 dB channel")
	}
}

func TestRTEEliminatesBERBias(t *testing.T) {
	// The headline PHY claim (Figs. 3 and 13): on a time-varying channel,
	// the tail of a long frame decodes much worse than the head under the
	// standard preamble-only estimate, and RTE removes most of that bias.
	rng := rand.New(rand.NewSource(6))
	payload := randomPayload(rng, 3000) // ~112 symbols at MCS48
	scheme := sidechannel.DefaultScheme()

	run := func(useRTE bool, seed int64) (headBER, tailBER float64) {
		var headErr, tailErr, headBits, tailBits int
		for trial := 0; trial < 8; trial++ {
			frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS48, SideChannel: &scheme})
			if err != nil {
				t.Fatal(err)
			}
			// 30 dB keeps the head of the frame mostly clean (so RTE gets
			// data pilots) while the coherence time makes the preamble
			// estimate noticeably stale by the tail of the ~126-symbol
			// frame — the calibrated office-link regime.
			ch, err := channel.New(channel.Config{
				SNRdB: 30, NumTaps: 3, RicianK: 15, TapDecay: 3,
				CoherenceSymbols: 2000, CFOHz: 400, Seed: seed + int64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			var tracker phy.ChannelTracker
			if useRTE {
				tracker = NewRTETracker()
			}
			res, err := phy.Receive(ch.Transmit(frame.Samples), phy.RxConfig{
				KnownStart: 0, SkipFEC: true, SideChannel: &scheme, Tracker: tracker,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != phy.StatusOK {
				continue
			}
			errs, bits := phy.CompareBlocks(frame.Blocks, res.Blocks)
			n := len(errs)
			for i, e := range errs {
				if i < n/4 {
					headErr += e
					headBits += bits
				} else if i >= 3*n/4 {
					tailErr += e
					tailBits += bits
				}
			}
		}
		if headBits == 0 || tailBits == 0 {
			t.Fatal("no symbols measured")
		}
		return float64(headErr) / float64(headBits), float64(tailErr) / float64(tailBits)
	}

	stdHead, stdTail := run(false, 1000)
	rteHead, rteTail := run(true, 1000)
	if stdTail < 1e-4 {
		t.Fatalf("standard tail BER %.2e too low — channel not stressing the estimate", stdTail)
	}
	// BER bias exists under the standard estimate (Fig. 3).
	if stdTail < 3*stdHead {
		t.Errorf("no BER bias: standard head %.2e, tail %.2e", stdHead, stdTail)
	}
	// RTE removes it (Fig. 13).
	if rteTail > stdTail/2 {
		t.Errorf("RTE tail BER %.2e, expected at least 2x better than standard %.2e", rteTail, stdTail)
	}
	if rteTail > 5*rteHead+1e-4 {
		t.Errorf("RTE did not flatten the bias: head %.2e, tail %.2e", rteHead, rteTail)
	}
}

func TestRTETrackerIgnoresBadSymbols(t *testing.T) {
	tr := NewRTETracker()
	h := make([]complex128, 64)
	for i := range h {
		h[i] = 1
	}
	tr.Init(h, 0)
	before := append([]complex128(nil), tr.Estimate()...)
	tr.Observe(0, make([]complex128, 64), 0, make([]byte, 48), false)
	for i := range before {
		if tr.Estimate()[i] != before[i] {
			t.Fatal("estimate changed on an incorrect symbol")
		}
	}
	if tr.Updates() != 0 {
		t.Error("updates counted for incorrect symbol")
	}
	// Malformed inputs are ignored, not fatal.
	tr.Observe(0, make([]complex128, 10), 0, make([]byte, 48), true)
	if tr.Updates() != 0 {
		t.Error("update counted for malformed bins")
	}
}

func TestSequentialACKNAV(t *testing.T) {
	tm := Timing{
		SIFS:    10 * time.Microsecond,
		ACK:     44 * time.Microsecond,
		Payload: 500 * time.Microsecond,
	}
	// Eq. 1.
	nav, err := DataNAV(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 500*time.Microsecond + 3*(44+10)*time.Microsecond
	if nav != want {
		t.Errorf("DataNAV = %v, want %v", nav, want)
	}
	// Eq. 2.
	for i := 1; i <= 3; i++ {
		nav, err := ReceiverNAV(tm, i)
		if err != nil {
			t.Fatal(err)
		}
		want := time.Duration(i-1) * (44 + 10) * time.Microsecond
		if nav != want {
			t.Errorf("ReceiverNAV(%d) = %v, want %v", i, nav, want)
		}
	}
	// Last ACK carries NAV_1 = 0 — consistent with a legacy ACK.
	last, err := ACKNAV(tm, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Errorf("last ACK NAV = %v, want 0", last)
	}
	first, err := ACKNAV(tm, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2*(44+10)*time.Microsecond {
		t.Errorf("first ACK NAV = %v", first)
	}
	// Validation.
	if _, err := DataNAV(tm, 0); err == nil {
		t.Error("accepted zero receivers")
	}
	if _, err := ReceiverNAV(tm, 0); err == nil {
		t.Error("accepted position 0")
	}
	if _, err := ACKNAV(tm, 4, 3); err == nil {
		t.Error("accepted ACK index beyond N")
	}
}

func TestAckScheduleNoOverlap(t *testing.T) {
	tm := Timing{SIFS: 10 * time.Microsecond, ACK: 44 * time.Microsecond}
	sched, err := AckSchedule(tm, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 5 {
		t.Fatalf("%d entries", len(sched))
	}
	if sched[0] != tm.SIFS {
		t.Errorf("first ACK at %v, want SIFS", sched[0])
	}
	for i := 1; i < len(sched); i++ {
		gap := sched[i] - (sched[i-1] + tm.ACK)
		if gap != tm.SIFS {
			t.Errorf("gap before ACK %d = %v, want SIFS", i+1, gap)
		}
	}
	// The NAV from Eq. 1 covers the entire train.
	nav, err := DataNAV(tm, 5)
	if err != nil {
		t.Fatal(err)
	}
	end := sched[4] + tm.ACK
	if end > nav {
		t.Errorf("ACK train ends at %v, after NAV %v expires", end, nav)
	}
	if _, err := AckSchedule(tm, 0); err == nil {
		t.Error("accepted zero receivers")
	}
}

func TestPlanRTS(t *testing.T) {
	tm := Timing{
		SIFS: 10 * time.Microsecond, ACK: 44 * time.Microsecond,
		CTS: 44 * time.Microsecond, Payload: 300 * time.Microsecond,
	}
	plan, err := PlanRTS(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CTSStarts) != 3 {
		t.Fatalf("%d CTS slots", len(plan.CTSStarts))
	}
	if plan.CTSStarts[0] != tm.SIFS {
		t.Errorf("first CTS at %v", plan.CTSStarts[0])
	}
	for i := 1; i < 3; i++ {
		if plan.CTSStarts[i]-plan.CTSStarts[i-1] != tm.SIFS+tm.CTS {
			t.Errorf("CTS spacing wrong at %d", i)
		}
	}
	if plan.DataStart != plan.CTSStarts[2]+tm.CTS+tm.SIFS {
		t.Errorf("data starts at %v", plan.DataStart)
	}
	wantTotal := plan.DataStart + tm.Payload + 3*(tm.SIFS+tm.ACK)
	if plan.Total != wantTotal {
		t.Errorf("total %v, want %v", plan.Total, wantTotal)
	}
	if _, err := PlanRTS(tm, 0); err == nil {
		t.Error("accepted zero receivers")
	}
}

func TestAggregatePolicy(t *testing.T) {
	q := []Pending{
		{Dst: mac(1), Size: 100}, {Dst: mac(2), Size: 100},
		{Dst: mac(1), Size: 100}, {Dst: mac(3), Size: 100},
		{Dst: mac(4), Size: 100},
	}
	groups, err := Policy{MaxReceivers: 3}.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("%d destinations, want 3", len(groups))
	}
	// STA 1 gets both of its frames in one subframe.
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("subframe 1 indices %v", groups[0])
	}
	// STA 4's frame doesn't fit (receiver cap), STA 3 does.
	if len(groups[2]) != 1 || groups[2][0] != 3 {
		t.Errorf("subframe 3 indices %v", groups[2])
	}
}

func TestAggregateByteCap(t *testing.T) {
	q := []Pending{
		{Dst: mac(1), Size: 600}, {Dst: mac(2), Size: 600}, {Dst: mac(3), Size: 600},
	}
	groups, err := Policy{MaxBytes: 1300}.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		for _, idx := range g {
			total += q[idx].Size
		}
	}
	if total > 1300 {
		t.Errorf("aggregated %d bytes over the 1300 cap", total)
	}
	if len(groups) != 2 {
		t.Errorf("%d destinations, want 2", len(groups))
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := (Policy{MaxReceivers: -1}).Aggregate(nil); err == nil {
		t.Error("accepted negative receiver cap")
	}
	if _, err := (Policy{MaxReceivers: 99}).Aggregate(nil); err == nil {
		t.Error("accepted receiver cap beyond Bloom limit")
	}
	if _, err := (Policy{MaxBytes: -1}).Aggregate(nil); err == nil {
		t.Error("accepted negative byte cap")
	}
	if _, err := (Policy{}).Aggregate([]Pending{{Dst: mac(1), Size: 0}}); err == nil {
		t.Error("accepted zero-size frame")
	}
	groups, err := Policy{}.Aggregate(nil)
	if err != nil || len(groups) != 0 {
		t.Error("empty queue should aggregate to nothing")
	}
}

func TestOldestWaiting(t *testing.T) {
	if OldestWaiting(nil, time.Second) != 0 {
		t.Error("empty queue should have zero wait")
	}
	q := []Pending{{Dst: mac(1), Size: 1, Arrival: 100 * time.Millisecond}}
	if got := OldestWaiting(q, 350*time.Millisecond); got != 250*time.Millisecond {
		t.Errorf("wait %v", got)
	}
}
