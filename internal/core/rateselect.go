package core

import "carpool/internal/phy"

// SelectMCS picks the fastest 802.11a scheme whose sensitivity the link
// supports, from the estimated receive SNR. The thresholds are the
// conventional operating points with ~4-5 dB fading margin so the
// chosen rate still decodes at the frame tail as the channel drifts; the
// paper lets every Carpool subframe carry its own MCS (§4.1) and an AP
// would drive this from per-station SNR feedback.
func SelectMCS(snrDB float64) phy.MCS {
	switch {
	case snrDB >= 30:
		return phy.MCS54
	case snrDB >= 27:
		return phy.MCS48
	case snrDB >= 23:
		return phy.MCS36
	case snrDB >= 19:
		return phy.MCS24
	case snrDB >= 15:
		return phy.MCS18
	case snrDB >= 12:
		return phy.MCS12
	case snrDB >= 9:
		return phy.MCS9
	default:
		return phy.MCS6
	}
}
