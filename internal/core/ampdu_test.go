package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"carpool/internal/phy"
)

func TestAggregateMPDUsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		mpdus := make([][]byte, n)
		for i := range mpdus {
			mpdus[i] = make([]byte, 1+rng.Intn(600))
			rng.Read(mpdus[i])
		}
		stream, err := AggregateMPDUs(mpdus)
		if err != nil {
			return false
		}
		if len(stream)%4 != 0 {
			return false
		}
		got, fails := DeaggregateMPDUs(stream)
		if fails != 0 || len(got) != n {
			return false
		}
		for i := range mpdus {
			if !bytes.Equal(got[i], mpdus[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregateMPDUsValidation(t *testing.T) {
	if _, err := AggregateMPDUs(nil); err == nil {
		t.Error("accepted empty list")
	}
	if _, err := AggregateMPDUs([][]byte{make([]byte, 5000)}); err == nil {
		t.Error("accepted MPDU beyond delimiter length field")
	}
}

func TestDeaggregateSurvivesCorruptMPDU(t *testing.T) {
	// Corrupting one MPDU's body must cost exactly that MPDU, not the
	// stream: the receiver re-synchronizes on the next delimiter.
	rng := rand.New(rand.NewSource(2))
	mpdus := [][]byte{
		randomPayload(rng, 100), randomPayload(rng, 200), randomPayload(rng, 150),
	}
	stream, err := AggregateMPDUs(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle MPDU's payload (after its delimiter).
	firstUnit := 4 + 100 + 4 // delimiter + payload+FCS, already 4-aligned
	stream[firstUnit+10] ^= 0xff
	got, fails := DeaggregateMPDUs(stream)
	if fails != 1 {
		t.Errorf("%d FCS failures, want 1", fails)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d MPDUs, want 2", len(got))
	}
	if !bytes.Equal(got[0], mpdus[0]) || !bytes.Equal(got[1], mpdus[2]) {
		t.Error("wrong MPDUs recovered")
	}
}

func TestDeaggregateSurvivesCorruptDelimiter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mpdus := [][]byte{
		randomPayload(rng, 80), randomPayload(rng, 120), randomPayload(rng, 60),
	}
	stream, err := AggregateMPDUs(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the second delimiter's signature.
	secondDelim := 4 + 84 // 80+FCS=84, aligned
	stream[secondDelim+3] = 0x00
	got, _ := DeaggregateMPDUs(stream)
	// The second MPDU is lost; the third must still be found by scanning.
	found3 := false
	for _, m := range got {
		if bytes.Equal(m, mpdus[2]) {
			found3 = true
		}
	}
	if !bytes.Equal(got[0], mpdus[0]) {
		t.Error("first MPDU lost")
	}
	if !found3 {
		t.Error("receiver did not re-synchronize after a corrupt delimiter")
	}
}

func TestDeaggregateGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	garbage := randomPayload(rng, 1000)
	got, _ := DeaggregateMPDUs(garbage)
	// Random data occasionally forms a plausible delimiter, but any MPDU
	// it yields must still have passed a CRC-32 FCS — overwhelmingly
	// unlikely. Accept zero results.
	if len(got) != 0 {
		t.Errorf("recovered %d MPDUs from garbage", len(got))
	}
}

func TestAMPDUInsideCarpoolSubframe(t *testing.T) {
	// End to end: three MAC frames aggregated into ONE Carpool subframe,
	// transmitted, extracted, and de-aggregated (§4.1's "aggregation data
	// unit" case).
	rng := rand.New(rand.NewSource(5))
	mpdus := [][]byte{
		randomPayload(rng, 120), randomPayload(rng, 120), randomPayload(rng, 300),
	}
	unit, err := AggregateMPDUs(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := BuildFrame([]Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: unit},
	}, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReceiveFrame(frame.Samples, ReceiverConfig{MAC: mac(1), UseRTE: true, KnownStart: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subframes) == 0 {
		t.Fatal("subframe not decoded")
	}
	got, fails := DeaggregateMPDUs(res.Subframes[0].Payload)
	if fails != 0 || len(got) != 3 {
		t.Fatalf("recovered %d MPDUs with %d failures", len(got), fails)
	}
	for i := range mpdus {
		if !bytes.Equal(got[i], mpdus[i]) {
			t.Errorf("MPDU %d corrupted", i)
		}
	}
}
