package core

import (
	"fmt"

	"carpool/internal/bloom"
	"carpool/internal/fec"
	"carpool/internal/modem"
	"carpool/internal/ofdm"
)

// The aggregation header occupies two OFDM symbols right after the
// preamble, coded with the most robust scheme available (BPSK, rate 1/2):
// 48 information bits -> 96 coded bits -> 2 x 48 BPSK subcarriers.
const (
	// AHDRSymbols is the A-HDR length in OFDM symbols.
	AHDRSymbols = 2
	ahdrBits    = bloom.FilterBits
)

// BuildAHDR encodes a Bloom filter into the two A-HDR symbols. The symbols
// use pilot-polarity indices 0 and 1 (the positions right after the
// preamble) and never carry an injected phase offset.
func BuildAHDR(f bloom.Filter) ([]complex128, error) {
	coded, err := fec.ConvEncode(f.Bits(), fec.Rate1_2)
	if err != nil {
		return nil, err
	}
	if len(coded) != AHDRSymbols*ofdm.NumData {
		return nil, fmt.Errorf("core: A-HDR coded length %d, want %d", len(coded), AHDRSymbols*ofdm.NumData)
	}
	il, err := fec.CachedInterleaver(ofdm.NumData, 1)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, AHDRSymbols*ofdm.SymbolLen)
	var block [ofdm.NumData]byte
	var points [ofdm.NumData]complex128
	for s := 0; s < AHDRSymbols; s++ {
		if err := il.InterleaveInto(block[:], coded[s*ofdm.NumData:(s+1)*ofdm.NumData]); err != nil {
			return nil, err
		}
		if err := modem.MapInto(points[:], modem.BPSK, block[:]); err != nil {
			return nil, err
		}
		if err := ofdm.AssembleSymbolInto(out[s*ofdm.SymbolLen:(s+1)*ofdm.SymbolLen], points[:], s, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeAHDR inverts BuildAHDR from the two symbols' equalized,
// phase-compensated data points (48 per symbol).
func DecodeAHDR(dataPoints [][]complex128) (bloom.Filter, error) {
	if len(dataPoints) != AHDRSymbols {
		return 0, fmt.Errorf("core: A-HDR needs %d symbols, got %d", AHDRSymbols, len(dataPoints))
	}
	il, err := fec.CachedInterleaver(ofdm.NumData, 1)
	if err != nil {
		return 0, err
	}
	var block [ofdm.NumData]byte
	var coded [AHDRSymbols * ofdm.NumData]byte
	for s, pts := range dataPoints {
		if err := modem.DemapInto(block[:], modem.BPSK, pts); err != nil {
			return 0, err
		}
		if err := il.DeinterleaveInto(coded[s*ofdm.NumData:(s+1)*ofdm.NumData], block[:]); err != nil {
			return 0, err
		}
	}
	bits, err := fec.ViterbiDecode(coded[:], fec.Rate1_2, ahdrBits)
	if err != nil {
		return 0, err
	}
	return bloom.FromBits(bits)
}
