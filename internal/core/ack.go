package core

import (
	"fmt"
	"time"
)

// Timing carries the intervals the NAV arithmetic needs. The MAC package
// provides the 802.11n values (Table 2); they are parameters here so tests
// can use round numbers.
type Timing struct {
	SIFS    time.Duration
	ACK     time.Duration // ACK frame airtime
	CTS     time.Duration // CTS frame airtime
	Payload time.Duration // aggregated data frame airtime
}

// DataNAV returns the NAV the aggregated data frame advertises (Eq. 1):
//
//	NAV_data = t_payload + N (t_ACK + t_SIFS)
//
// reserving the medium for the whole transmission sequence — the data frame
// itself plus one SIFS+ACK slot per receiver.
func DataNAV(t Timing, numReceivers int) (time.Duration, error) {
	if numReceivers < 1 {
		return 0, fmt.Errorf("core: NAV needs at least one receiver, got %d", numReceivers)
	}
	return t.Payload + time.Duration(numReceivers)*(t.ACK+t.SIFS), nil
}

// ReceiverNAV returns the NAV counter the receiver of the i-th subframe
// (1-based) loads after the data frame ends (Eq. 2):
//
//	NAV_i = (i-1) (t_ACK + t_SIFS)
//
// so that it stays silent until the receivers before it have ACKed, then
// waits its own SIFS and transmits.
func ReceiverNAV(t Timing, i int) (time.Duration, error) {
	if i < 1 {
		return 0, fmt.Errorf("core: subframe position %d out of range", i)
	}
	return time.Duration(i-1) * (t.ACK + t.SIFS), nil
}

// ACKNAV returns the NAV carried by the j-th ACK of an N-receiver sequence:
// NAV_{N-j+1} per §4.2, announcing how much of the ACK train remains. The
// last ACK carries NAV_1 = 0, matching a legacy ACK.
func ACKNAV(t Timing, j, n int) (time.Duration, error) {
	if n < 1 || j < 1 || j > n {
		return 0, fmt.Errorf("core: ACK index %d of %d out of range", j, n)
	}
	return ReceiverNAV(t, n-j+1)
}

// AckSchedule returns, for each of n receivers, the time its ACK starts,
// measured from the end of the data frame. Receiver i waits through i-1
// earlier (SIFS + ACK) slots plus its own SIFS.
func AckSchedule(t Timing, n int) ([]time.Duration, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: schedule needs at least one receiver, got %d", n)
	}
	out := make([]time.Duration, n)
	for i := 1; i <= n; i++ {
		nav, err := ReceiverNAV(t, i)
		if err != nil {
			return nil, err
		}
		out[i-1] = nav + t.SIFS
	}
	return out, nil
}

// SequenceDuration returns the total airtime of data frame plus the full
// ACK train — what the medium is blocked for.
func SequenceDuration(t Timing, n int) (time.Duration, error) {
	nav, err := DataNAV(t, n)
	if err != nil {
		return 0, err
	}
	return nav, nil
}

// RTSPlan lays out the multicast RTS/CTS exchange Carpool uses against
// hidden terminals (§4.2, Fig. 7): one RTS carrying the A-HDR, then one CTS
// per receiver separated by SIFS, then the data frame and the sequential
// ACK train.
type RTSPlan struct {
	// CTSStarts[i] is when receiver i's CTS begins, from the RTS end.
	CTSStarts []time.Duration
	// DataStart is when the data frame begins, from the RTS end.
	DataStart time.Duration
	// Total is the full exchange duration from the RTS end: CTS train,
	// data frame, and ACK train.
	Total time.Duration
}

// PlanRTS computes the RTS/CTS timeline for n receivers.
func PlanRTS(t Timing, n int) (*RTSPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: RTS plan needs at least one receiver, got %d", n)
	}
	plan := &RTSPlan{CTSStarts: make([]time.Duration, n)}
	cursor := time.Duration(0)
	for i := 0; i < n; i++ {
		cursor += t.SIFS
		plan.CTSStarts[i] = cursor
		cursor += t.CTS
	}
	cursor += t.SIFS
	plan.DataStart = cursor
	cursor += t.Payload
	for i := 0; i < n; i++ {
		cursor += t.SIFS + t.ACK
	}
	plan.Total = cursor
	return plan, nil
}
