package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"carpool/internal/bloom"
	"carpool/internal/phy"
)

// Property tests on the aggregation policy's invariants.

// quickMCSPool holds the schemes the clean-channel round-trip property
// samples from.
var quickMCSPool = []phy.MCS{phy.MCS6, phy.MCS12, phy.MCS24, phy.MCS48, phy.MCS54}

func TestAggregateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nQueue := rng.Intn(60)
		queue := make([]Pending, nQueue)
		for i := range queue {
			queue[i] = Pending{
				Dst:  mac(byte(rng.Intn(12))),
				Size: 1 + rng.Intn(1500),
			}
		}
		policy := Policy{
			MaxReceivers: 1 + rng.Intn(bloom.MaxReceivers),
			MaxBytes:     500 + rng.Intn(20000),
		}
		groups, err := policy.Aggregate(queue)
		if err != nil {
			return false
		}
		// Invariant 1: receiver cap.
		if len(groups) > policy.MaxReceivers {
			return false
		}
		total := 0
		seenIdx := map[int]bool{}
		for _, g := range groups {
			if len(g) == 0 {
				return false // no empty subframes
			}
			dst := queue[g[0]].Dst
			prev := -1
			for _, idx := range g {
				// Invariant 2: no frame selected twice.
				if seenIdx[idx] {
					return false
				}
				seenIdx[idx] = true
				// Invariant 3: one destination per subframe.
				if queue[idx].Dst != dst {
					return false
				}
				// Invariant 4: FIFO order within a subframe.
				if idx <= prev {
					return false
				}
				prev = idx
				total += queue[idx].Size
			}
		}
		// Invariant 5: byte cap.
		maxBytes := policy.MaxBytes
		if maxBytes == 0 {
			maxBytes = 64 << 10
		}
		return total <= maxBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggregateSubframeOrderMatchesFirstArrival(t *testing.T) {
	// Subframes appear in the order their first frame arrived — the FIFO
	// priority §8 describes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queue := make([]Pending, 20)
		for i := range queue {
			queue[i] = Pending{Dst: mac(byte(rng.Intn(5))), Size: 100}
		}
		groups, err := Policy{}.Aggregate(queue)
		if err != nil {
			return false
		}
		prevFirst := -1
		for _, g := range groups {
			if g[0] <= prevFirst {
				return false
			}
			prevFirst = g[0]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildReceiveRandomConfigurations(t *testing.T) {
	// Any valid frame configuration must round-trip over a clean channel
	// for every addressed station.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		subs := make([]Subframe, n)
		payloads := make([][]byte, n)
		for i := range subs {
			payloads[i] = randomPayload(rng, 50+rng.Intn(300))
			subs[i] = Subframe{
				Receiver: mac(byte(seed%200) + byte(i)),
				MCS:      quickMCSPool[rng.Intn(len(quickMCSPool))],
				Payload:  payloads[i],
			}
		}
		frame, err := BuildFrame(subs, FrameConfig{})
		if err != nil {
			return false
		}
		for i := range subs {
			res, err := ReceiveFrame(frame.Samples, ReceiverConfig{
				MAC: subs[i].Receiver, UseRTE: true, KnownStart: 0,
			})
			if err != nil || res.Dropped {
				return false
			}
			found := false
			for _, sub := range res.Subframes {
				if sub.Position == i+1 && string(sub.Payload) == string(payloads[i]) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
